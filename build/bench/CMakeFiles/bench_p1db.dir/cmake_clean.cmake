file(REMOVE_RECURSE
  "CMakeFiles/bench_p1db.dir/bench_p1db.cpp.o"
  "CMakeFiles/bench_p1db.dir/bench_p1db.cpp.o.d"
  "bench_p1db"
  "bench_p1db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
