# Empty compiler generated dependencies file for bench_p1db.
# This may be replaced when dependencies are built.
