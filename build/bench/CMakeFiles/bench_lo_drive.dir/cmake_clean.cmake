file(REMOVE_RECURSE
  "CMakeFiles/bench_lo_drive.dir/bench_lo_drive.cpp.o"
  "CMakeFiles/bench_lo_drive.dir/bench_lo_drive.cpp.o.d"
  "bench_lo_drive"
  "bench_lo_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lo_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
