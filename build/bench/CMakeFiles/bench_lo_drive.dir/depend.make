# Empty dependencies file for bench_lo_drive.
# This may be replaced when dependencies are built.
