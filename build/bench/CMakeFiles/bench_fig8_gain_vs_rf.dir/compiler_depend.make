# Empty compiler generated dependencies file for bench_fig8_gain_vs_rf.
# This may be replaced when dependencies are built.
