file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gain_vs_rf.dir/bench_fig8_gain_vs_rf.cpp.o"
  "CMakeFiles/bench_fig8_gain_vs_rf.dir/bench_fig8_gain_vs_rf.cpp.o.d"
  "bench_fig8_gain_vs_rf"
  "bench_fig8_gain_vs_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gain_vs_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
