file(REMOVE_RECURSE
  "CMakeFiles/bench_input_impedance.dir/bench_input_impedance.cpp.o"
  "CMakeFiles/bench_input_impedance.dir/bench_input_impedance.cpp.o.d"
  "bench_input_impedance"
  "bench_input_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_input_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
