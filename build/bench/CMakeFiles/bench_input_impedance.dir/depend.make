# Empty dependencies file for bench_input_impedance.
# This may be replaced when dependencies are built.
