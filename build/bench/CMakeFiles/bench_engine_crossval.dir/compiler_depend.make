# Empty compiler generated dependencies file for bench_engine_crossval.
# This may be replaced when dependencies are built.
