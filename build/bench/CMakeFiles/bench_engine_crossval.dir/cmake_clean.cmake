file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_crossval.dir/bench_engine_crossval.cpp.o"
  "CMakeFiles/bench_engine_crossval.dir/bench_engine_crossval.cpp.o.d"
  "bench_engine_crossval"
  "bench_engine_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
