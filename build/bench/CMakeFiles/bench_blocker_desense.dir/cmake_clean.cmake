file(REMOVE_RECURSE
  "CMakeFiles/bench_blocker_desense.dir/bench_blocker_desense.cpp.o"
  "CMakeFiles/bench_blocker_desense.dir/bench_blocker_desense.cpp.o.d"
  "bench_blocker_desense"
  "bench_blocker_desense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocker_desense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
