# Empty compiler generated dependencies file for bench_blocker_desense.
# This may be replaced when dependencies are built.
