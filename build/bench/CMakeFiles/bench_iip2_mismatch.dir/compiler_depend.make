# Empty compiler generated dependencies file for bench_iip2_mismatch.
# This may be replaced when dependencies are built.
