file(REMOVE_RECURSE
  "CMakeFiles/bench_iip2_mismatch.dir/bench_iip2_mismatch.cpp.o"
  "CMakeFiles/bench_iip2_mismatch.dir/bench_iip2_mismatch.cpp.o.d"
  "bench_iip2_mismatch"
  "bench_iip2_mismatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iip2_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
