# Empty compiler generated dependencies file for bench_image_rejection.
# This may be replaced when dependencies are built.
