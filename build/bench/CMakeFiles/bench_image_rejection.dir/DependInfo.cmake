
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_image_rejection.cpp" "bench/CMakeFiles/bench_image_rejection.dir/bench_image_rejection.cpp.o" "gcc" "bench/CMakeFiles/bench_image_rejection.dir/bench_image_rejection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rfmix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/rfmix_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfmix_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/lptv/CMakeFiles/rfmix_lptv.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/rfmix_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/mathx/CMakeFiles/rfmix_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rfmix_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
