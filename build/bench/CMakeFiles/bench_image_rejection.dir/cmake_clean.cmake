file(REMOVE_RECURSE
  "CMakeFiles/bench_image_rejection.dir/bench_image_rejection.cpp.o"
  "CMakeFiles/bench_image_rejection.dir/bench_image_rejection.cpp.o.d"
  "bench_image_rejection"
  "bench_image_rejection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_image_rejection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
