# Empty compiler generated dependencies file for bench_temperature.
# This may be replaced when dependencies are built.
