# Empty dependencies file for bench_fig10_iip3.
# This may be replaced when dependencies are built.
