# Empty compiler generated dependencies file for bench_harmonic_mixing.
# This may be replaced when dependencies are built.
