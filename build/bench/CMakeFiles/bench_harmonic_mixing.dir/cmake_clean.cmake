file(REMOVE_RECURSE
  "CMakeFiles/bench_harmonic_mixing.dir/bench_harmonic_mixing.cpp.o"
  "CMakeFiles/bench_harmonic_mixing.dir/bench_harmonic_mixing.cpp.o.d"
  "bench_harmonic_mixing"
  "bench_harmonic_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_harmonic_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
