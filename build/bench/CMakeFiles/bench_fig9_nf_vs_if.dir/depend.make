# Empty dependencies file for bench_fig9_nf_vs_if.
# This may be replaced when dependencies are built.
