file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_nf_vs_if.dir/bench_fig9_nf_vs_if.cpp.o"
  "CMakeFiles/bench_fig9_nf_vs_if.dir/bench_fig9_nf_vs_if.cpp.o.d"
  "bench_fig9_nf_vs_if"
  "bench_fig9_nf_vs_if.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_nf_vs_if.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
