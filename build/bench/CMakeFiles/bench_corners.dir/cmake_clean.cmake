file(REMOVE_RECURSE
  "CMakeFiles/bench_corners.dir/bench_corners.cpp.o"
  "CMakeFiles/bench_corners.dir/bench_corners.cpp.o.d"
  "bench_corners"
  "bench_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
