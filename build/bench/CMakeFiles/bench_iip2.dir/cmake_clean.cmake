file(REMOVE_RECURSE
  "CMakeFiles/bench_iip2.dir/bench_iip2.cpp.o"
  "CMakeFiles/bench_iip2.dir/bench_iip2.cpp.o.d"
  "bench_iip2"
  "bench_iip2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iip2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
