# Empty dependencies file for bench_iip2.
# This may be replaced when dependencies are built.
