# Empty dependencies file for bench_ablation_rdeg.
# This may be replaced when dependencies are built.
