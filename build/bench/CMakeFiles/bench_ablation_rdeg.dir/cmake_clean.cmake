file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rdeg.dir/bench_ablation_rdeg.cpp.o"
  "CMakeFiles/bench_ablation_rdeg.dir/bench_ablation_rdeg.cpp.o.d"
  "bench_ablation_rdeg"
  "bench_ablation_rdeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rdeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
