# Empty dependencies file for rfmix_runtime.
# This may be replaced when dependencies are built.
