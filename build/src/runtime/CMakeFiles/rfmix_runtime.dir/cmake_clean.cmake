file(REMOVE_RECURSE
  "CMakeFiles/rfmix_runtime.dir/parallel_for.cpp.o"
  "CMakeFiles/rfmix_runtime.dir/parallel_for.cpp.o.d"
  "CMakeFiles/rfmix_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/rfmix_runtime.dir/thread_pool.cpp.o.d"
  "librfmix_runtime.a"
  "librfmix_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfmix_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
