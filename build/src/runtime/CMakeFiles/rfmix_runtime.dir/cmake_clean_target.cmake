file(REMOVE_RECURSE
  "librfmix_runtime.a"
)
