file(REMOVE_RECURSE
  "CMakeFiles/rfmix_frontend.dir/cascade.cpp.o"
  "CMakeFiles/rfmix_frontend.dir/cascade.cpp.o.d"
  "CMakeFiles/rfmix_frontend.dir/planner.cpp.o"
  "CMakeFiles/rfmix_frontend.dir/planner.cpp.o.d"
  "CMakeFiles/rfmix_frontend.dir/standards.cpp.o"
  "CMakeFiles/rfmix_frontend.dir/standards.cpp.o.d"
  "librfmix_frontend.a"
  "librfmix_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfmix_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
