# Empty dependencies file for rfmix_frontend.
# This may be replaced when dependencies are built.
