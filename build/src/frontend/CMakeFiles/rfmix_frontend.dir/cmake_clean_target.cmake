file(REMOVE_RECURSE
  "librfmix_frontend.a"
)
