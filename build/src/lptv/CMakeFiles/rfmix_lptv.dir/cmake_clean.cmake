file(REMOVE_RECURSE
  "CMakeFiles/rfmix_lptv.dir/lptv.cpp.o"
  "CMakeFiles/rfmix_lptv.dir/lptv.cpp.o.d"
  "CMakeFiles/rfmix_lptv.dir/matrix_conversion.cpp.o"
  "CMakeFiles/rfmix_lptv.dir/matrix_conversion.cpp.o.d"
  "librfmix_lptv.a"
  "librfmix_lptv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfmix_lptv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
