file(REMOVE_RECURSE
  "librfmix_lptv.a"
)
