
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lptv/lptv.cpp" "src/lptv/CMakeFiles/rfmix_lptv.dir/lptv.cpp.o" "gcc" "src/lptv/CMakeFiles/rfmix_lptv.dir/lptv.cpp.o.d"
  "/root/repo/src/lptv/matrix_conversion.cpp" "src/lptv/CMakeFiles/rfmix_lptv.dir/matrix_conversion.cpp.o" "gcc" "src/lptv/CMakeFiles/rfmix_lptv.dir/matrix_conversion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/rfmix_mathx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
