# Empty dependencies file for rfmix_lptv.
# This may be replaced when dependencies are built.
