# Empty compiler generated dependencies file for rfmix_spice.
# This may be replaced when dependencies are built.
