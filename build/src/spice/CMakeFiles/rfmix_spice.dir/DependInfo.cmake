
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/ac.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/ac.cpp.o.d"
  "/root/repo/src/spice/dcsweep.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/dcsweep.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/dcsweep.cpp.o.d"
  "/root/repo/src/spice/mosfet.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/mosfet.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/mosfet.cpp.o.d"
  "/root/repo/src/spice/noise.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/noise.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/noise.cpp.o.d"
  "/root/repo/src/spice/op.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/op.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/op.cpp.o.d"
  "/root/repo/src/spice/parser.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/parser.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/parser.cpp.o.d"
  "/root/repo/src/spice/pss.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/pss.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/pss.cpp.o.d"
  "/root/repo/src/spice/tran.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/tran.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/tran.cpp.o.d"
  "/root/repo/src/spice/twoport.cpp" "src/spice/CMakeFiles/rfmix_spice.dir/twoport.cpp.o" "gcc" "src/spice/CMakeFiles/rfmix_spice.dir/twoport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/rfmix_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rfmix_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
