file(REMOVE_RECURSE
  "librfmix_spice.a"
)
