file(REMOVE_RECURSE
  "CMakeFiles/rfmix_spice.dir/ac.cpp.o"
  "CMakeFiles/rfmix_spice.dir/ac.cpp.o.d"
  "CMakeFiles/rfmix_spice.dir/dcsweep.cpp.o"
  "CMakeFiles/rfmix_spice.dir/dcsweep.cpp.o.d"
  "CMakeFiles/rfmix_spice.dir/mosfet.cpp.o"
  "CMakeFiles/rfmix_spice.dir/mosfet.cpp.o.d"
  "CMakeFiles/rfmix_spice.dir/noise.cpp.o"
  "CMakeFiles/rfmix_spice.dir/noise.cpp.o.d"
  "CMakeFiles/rfmix_spice.dir/op.cpp.o"
  "CMakeFiles/rfmix_spice.dir/op.cpp.o.d"
  "CMakeFiles/rfmix_spice.dir/parser.cpp.o"
  "CMakeFiles/rfmix_spice.dir/parser.cpp.o.d"
  "CMakeFiles/rfmix_spice.dir/pss.cpp.o"
  "CMakeFiles/rfmix_spice.dir/pss.cpp.o.d"
  "CMakeFiles/rfmix_spice.dir/tran.cpp.o"
  "CMakeFiles/rfmix_spice.dir/tran.cpp.o.d"
  "CMakeFiles/rfmix_spice.dir/twoport.cpp.o"
  "CMakeFiles/rfmix_spice.dir/twoport.cpp.o.d"
  "librfmix_spice.a"
  "librfmix_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfmix_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
