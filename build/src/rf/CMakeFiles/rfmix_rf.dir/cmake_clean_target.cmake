file(REMOVE_RECURSE
  "librfmix_rf.a"
)
