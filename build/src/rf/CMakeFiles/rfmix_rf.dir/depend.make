# Empty dependencies file for rfmix_rf.
# This may be replaced when dependencies are built.
