file(REMOVE_RECURSE
  "CMakeFiles/rfmix_rf.dir/compression.cpp.o"
  "CMakeFiles/rfmix_rf.dir/compression.cpp.o.d"
  "CMakeFiles/rfmix_rf.dir/spectrum.cpp.o"
  "CMakeFiles/rfmix_rf.dir/spectrum.cpp.o.d"
  "CMakeFiles/rfmix_rf.dir/table.cpp.o"
  "CMakeFiles/rfmix_rf.dir/table.cpp.o.d"
  "CMakeFiles/rfmix_rf.dir/twotone.cpp.o"
  "CMakeFiles/rfmix_rf.dir/twotone.cpp.o.d"
  "librfmix_rf.a"
  "librfmix_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfmix_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
