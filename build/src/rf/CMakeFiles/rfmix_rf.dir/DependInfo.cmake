
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/compression.cpp" "src/rf/CMakeFiles/rfmix_rf.dir/compression.cpp.o" "gcc" "src/rf/CMakeFiles/rfmix_rf.dir/compression.cpp.o.d"
  "/root/repo/src/rf/spectrum.cpp" "src/rf/CMakeFiles/rfmix_rf.dir/spectrum.cpp.o" "gcc" "src/rf/CMakeFiles/rfmix_rf.dir/spectrum.cpp.o.d"
  "/root/repo/src/rf/table.cpp" "src/rf/CMakeFiles/rfmix_rf.dir/table.cpp.o" "gcc" "src/rf/CMakeFiles/rfmix_rf.dir/table.cpp.o.d"
  "/root/repo/src/rf/twotone.cpp" "src/rf/CMakeFiles/rfmix_rf.dir/twotone.cpp.o" "gcc" "src/rf/CMakeFiles/rfmix_rf.dir/twotone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/rfmix_mathx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
