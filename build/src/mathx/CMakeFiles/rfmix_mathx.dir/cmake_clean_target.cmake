file(REMOVE_RECURSE
  "librfmix_mathx.a"
)
