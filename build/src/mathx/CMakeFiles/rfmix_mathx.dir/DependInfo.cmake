
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mathx/fft.cpp" "src/mathx/CMakeFiles/rfmix_mathx.dir/fft.cpp.o" "gcc" "src/mathx/CMakeFiles/rfmix_mathx.dir/fft.cpp.o.d"
  "/root/repo/src/mathx/polyfit.cpp" "src/mathx/CMakeFiles/rfmix_mathx.dir/polyfit.cpp.o" "gcc" "src/mathx/CMakeFiles/rfmix_mathx.dir/polyfit.cpp.o.d"
  "/root/repo/src/mathx/sparse.cpp" "src/mathx/CMakeFiles/rfmix_mathx.dir/sparse.cpp.o" "gcc" "src/mathx/CMakeFiles/rfmix_mathx.dir/sparse.cpp.o.d"
  "/root/repo/src/mathx/window.cpp" "src/mathx/CMakeFiles/rfmix_mathx.dir/window.cpp.o" "gcc" "src/mathx/CMakeFiles/rfmix_mathx.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
