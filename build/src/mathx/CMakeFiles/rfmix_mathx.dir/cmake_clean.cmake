file(REMOVE_RECURSE
  "CMakeFiles/rfmix_mathx.dir/fft.cpp.o"
  "CMakeFiles/rfmix_mathx.dir/fft.cpp.o.d"
  "CMakeFiles/rfmix_mathx.dir/polyfit.cpp.o"
  "CMakeFiles/rfmix_mathx.dir/polyfit.cpp.o.d"
  "CMakeFiles/rfmix_mathx.dir/sparse.cpp.o"
  "CMakeFiles/rfmix_mathx.dir/sparse.cpp.o.d"
  "CMakeFiles/rfmix_mathx.dir/window.cpp.o"
  "CMakeFiles/rfmix_mathx.dir/window.cpp.o.d"
  "librfmix_mathx.a"
  "librfmix_mathx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfmix_mathx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
