# Empty dependencies file for rfmix_mathx.
# This may be replaced when dependencies are built.
