file(REMOVE_RECURSE
  "librfmix_core.a"
)
