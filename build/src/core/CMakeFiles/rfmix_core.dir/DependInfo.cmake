
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/rfmix_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/rfmix_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/behavioral.cpp" "src/core/CMakeFiles/rfmix_core.dir/behavioral.cpp.o" "gcc" "src/core/CMakeFiles/rfmix_core.dir/behavioral.cpp.o.d"
  "/root/repo/src/core/circuits.cpp" "src/core/CMakeFiles/rfmix_core.dir/circuits.cpp.o" "gcc" "src/core/CMakeFiles/rfmix_core.dir/circuits.cpp.o.d"
  "/root/repo/src/core/image_reject.cpp" "src/core/CMakeFiles/rfmix_core.dir/image_reject.cpp.o" "gcc" "src/core/CMakeFiles/rfmix_core.dir/image_reject.cpp.o.d"
  "/root/repo/src/core/lptv_model.cpp" "src/core/CMakeFiles/rfmix_core.dir/lptv_model.cpp.o" "gcc" "src/core/CMakeFiles/rfmix_core.dir/lptv_model.cpp.o.d"
  "/root/repo/src/core/measurements.cpp" "src/core/CMakeFiles/rfmix_core.dir/measurements.cpp.o" "gcc" "src/core/CMakeFiles/rfmix_core.dir/measurements.cpp.o.d"
  "/root/repo/src/core/pac_transistor.cpp" "src/core/CMakeFiles/rfmix_core.dir/pac_transistor.cpp.o" "gcc" "src/core/CMakeFiles/rfmix_core.dir/pac_transistor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/rfmix_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/rfmix_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/lptv/CMakeFiles/rfmix_lptv.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfmix_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/rfmix_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rfmix_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
