# Empty dependencies file for rfmix_core.
# This may be replaced when dependencies are built.
