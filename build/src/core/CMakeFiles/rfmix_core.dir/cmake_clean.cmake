file(REMOVE_RECURSE
  "CMakeFiles/rfmix_core.dir/baselines.cpp.o"
  "CMakeFiles/rfmix_core.dir/baselines.cpp.o.d"
  "CMakeFiles/rfmix_core.dir/behavioral.cpp.o"
  "CMakeFiles/rfmix_core.dir/behavioral.cpp.o.d"
  "CMakeFiles/rfmix_core.dir/circuits.cpp.o"
  "CMakeFiles/rfmix_core.dir/circuits.cpp.o.d"
  "CMakeFiles/rfmix_core.dir/image_reject.cpp.o"
  "CMakeFiles/rfmix_core.dir/image_reject.cpp.o.d"
  "CMakeFiles/rfmix_core.dir/lptv_model.cpp.o"
  "CMakeFiles/rfmix_core.dir/lptv_model.cpp.o.d"
  "CMakeFiles/rfmix_core.dir/measurements.cpp.o"
  "CMakeFiles/rfmix_core.dir/measurements.cpp.o.d"
  "CMakeFiles/rfmix_core.dir/pac_transistor.cpp.o"
  "CMakeFiles/rfmix_core.dir/pac_transistor.cpp.o.d"
  "librfmix_core.a"
  "librfmix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfmix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
