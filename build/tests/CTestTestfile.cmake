# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/mathx_tests[1]_include.cmake")
include("/root/repo/build/tests/spice_device_tests[1]_include.cmake")
include("/root/repo/build/tests/spice_analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/lptv_tests[1]_include.cmake")
include("/root/repo/build/tests/rf_tests[1]_include.cmake")
include("/root/repo/build/tests/frontend_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/core_circuit_tests[1]_include.cmake")
