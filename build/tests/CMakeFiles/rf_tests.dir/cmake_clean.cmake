file(REMOVE_RECURSE
  "CMakeFiles/rf_tests.dir/rf/test_compression.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_compression.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_nf_table.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_nf_table.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_spectrum.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_spectrum.cpp.o.d"
  "CMakeFiles/rf_tests.dir/rf/test_twotone.cpp.o"
  "CMakeFiles/rf_tests.dir/rf/test_twotone.cpp.o.d"
  "rf_tests"
  "rf_tests.pdb"
  "rf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
