file(REMOVE_RECURSE
  "CMakeFiles/mathx_tests.dir/mathx/test_fft.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_fft.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_interp.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_interp.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_lu.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_lu.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_matrix.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_matrix.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_polyfit.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_polyfit.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_rng.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_rng.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_sparse.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_sparse.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_stats.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_stats.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_units.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_units.cpp.o.d"
  "CMakeFiles/mathx_tests.dir/mathx/test_window.cpp.o"
  "CMakeFiles/mathx_tests.dir/mathx/test_window.cpp.o.d"
  "mathx_tests"
  "mathx_tests.pdb"
  "mathx_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mathx_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
