# Empty compiler generated dependencies file for mathx_tests.
# This may be replaced when dependencies are built.
