
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mathx/test_fft.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_fft.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_fft.cpp.o.d"
  "/root/repo/tests/mathx/test_interp.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_interp.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_interp.cpp.o.d"
  "/root/repo/tests/mathx/test_lu.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_lu.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_lu.cpp.o.d"
  "/root/repo/tests/mathx/test_matrix.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_matrix.cpp.o.d"
  "/root/repo/tests/mathx/test_polyfit.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_polyfit.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_polyfit.cpp.o.d"
  "/root/repo/tests/mathx/test_rng.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_rng.cpp.o.d"
  "/root/repo/tests/mathx/test_sparse.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_sparse.cpp.o.d"
  "/root/repo/tests/mathx/test_stats.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_stats.cpp.o.d"
  "/root/repo/tests/mathx/test_units.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_units.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_units.cpp.o.d"
  "/root/repo/tests/mathx/test_window.cpp" "tests/CMakeFiles/mathx_tests.dir/mathx/test_window.cpp.o" "gcc" "tests/CMakeFiles/mathx_tests.dir/mathx/test_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/rfmix_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/rfmix_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rfmix_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lptv/CMakeFiles/rfmix_lptv.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfmix_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/rfmix_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rfmix_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
