file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_baselines.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_baselines.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_behavioral.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_behavioral.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_golden_metrics.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_golden_metrics.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_image_reject.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_image_reject.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_lptv_model.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_lptv_model.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
