# Empty compiler generated dependencies file for spice_analysis_tests.
# This may be replaced when dependencies are built.
