
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spice/test_ac.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_ac.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_ac.cpp.o.d"
  "/root/repo/tests/spice/test_dc.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_dc.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_dc.cpp.o.d"
  "/root/repo/tests/spice/test_dcsweep.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_dcsweep.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_dcsweep.cpp.o.d"
  "/root/repo/tests/spice/test_magnetics.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_magnetics.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_magnetics.cpp.o.d"
  "/root/repo/tests/spice/test_noise.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_noise.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_noise.cpp.o.d"
  "/root/repo/tests/spice/test_properties.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_properties.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_properties.cpp.o.d"
  "/root/repo/tests/spice/test_pss.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_pss.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_pss.cpp.o.d"
  "/root/repo/tests/spice/test_tran.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_tran.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_tran.cpp.o.d"
  "/root/repo/tests/spice/test_twoport.cpp" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_twoport.cpp.o" "gcc" "tests/CMakeFiles/spice_analysis_tests.dir/spice/test_twoport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mathx/CMakeFiles/rfmix_mathx.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/rfmix_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rfmix_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lptv/CMakeFiles/rfmix_lptv.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/rfmix_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/rfmix_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rfmix_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
