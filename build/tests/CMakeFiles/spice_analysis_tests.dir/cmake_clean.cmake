file(REMOVE_RECURSE
  "CMakeFiles/spice_analysis_tests.dir/spice/test_ac.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_ac.cpp.o.d"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_dc.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_dc.cpp.o.d"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_dcsweep.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_dcsweep.cpp.o.d"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_magnetics.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_magnetics.cpp.o.d"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_noise.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_noise.cpp.o.d"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_properties.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_properties.cpp.o.d"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_pss.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_pss.cpp.o.d"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_tran.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_tran.cpp.o.d"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_twoport.cpp.o"
  "CMakeFiles/spice_analysis_tests.dir/spice/test_twoport.cpp.o.d"
  "spice_analysis_tests"
  "spice_analysis_tests.pdb"
  "spice_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
