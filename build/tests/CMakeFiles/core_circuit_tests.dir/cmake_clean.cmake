file(REMOVE_RECURSE
  "CMakeFiles/core_circuit_tests.dir/core/test_circuits.cpp.o"
  "CMakeFiles/core_circuit_tests.dir/core/test_circuits.cpp.o.d"
  "CMakeFiles/core_circuit_tests.dir/core/test_pac.cpp.o"
  "CMakeFiles/core_circuit_tests.dir/core/test_pac.cpp.o.d"
  "CMakeFiles/core_circuit_tests.dir/core/test_variation.cpp.o"
  "CMakeFiles/core_circuit_tests.dir/core/test_variation.cpp.o.d"
  "core_circuit_tests"
  "core_circuit_tests.pdb"
  "core_circuit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_circuit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
