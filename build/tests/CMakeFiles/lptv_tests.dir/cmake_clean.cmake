file(REMOVE_RECURSE
  "CMakeFiles/lptv_tests.dir/lptv/test_lptv.cpp.o"
  "CMakeFiles/lptv_tests.dir/lptv/test_lptv.cpp.o.d"
  "CMakeFiles/lptv_tests.dir/lptv/test_matrix_conversion.cpp.o"
  "CMakeFiles/lptv_tests.dir/lptv/test_matrix_conversion.cpp.o.d"
  "lptv_tests"
  "lptv_tests.pdb"
  "lptv_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lptv_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
