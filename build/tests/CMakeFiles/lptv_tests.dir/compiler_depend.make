# Empty compiler generated dependencies file for lptv_tests.
# This may be replaced when dependencies are built.
