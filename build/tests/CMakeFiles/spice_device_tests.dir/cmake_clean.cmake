file(REMOVE_RECURSE
  "CMakeFiles/spice_device_tests.dir/spice/test_montecarlo.cpp.o"
  "CMakeFiles/spice_device_tests.dir/spice/test_montecarlo.cpp.o.d"
  "CMakeFiles/spice_device_tests.dir/spice/test_mosfet.cpp.o"
  "CMakeFiles/spice_device_tests.dir/spice/test_mosfet.cpp.o.d"
  "CMakeFiles/spice_device_tests.dir/spice/test_parser.cpp.o"
  "CMakeFiles/spice_device_tests.dir/spice/test_parser.cpp.o.d"
  "CMakeFiles/spice_device_tests.dir/spice/test_passive.cpp.o"
  "CMakeFiles/spice_device_tests.dir/spice/test_passive.cpp.o.d"
  "CMakeFiles/spice_device_tests.dir/spice/test_sources.cpp.o"
  "CMakeFiles/spice_device_tests.dir/spice/test_sources.cpp.o.d"
  "spice_device_tests"
  "spice_device_tests.pdb"
  "spice_device_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_device_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
