# Empty dependencies file for spice_device_tests.
# This may be replaced when dependencies are built.
