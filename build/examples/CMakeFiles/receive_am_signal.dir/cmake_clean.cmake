file(REMOVE_RECURSE
  "CMakeFiles/receive_am_signal.dir/receive_am_signal.cpp.o"
  "CMakeFiles/receive_am_signal.dir/receive_am_signal.cpp.o.d"
  "receive_am_signal"
  "receive_am_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receive_am_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
