# Empty dependencies file for receive_am_signal.
# This may be replaced when dependencies are built.
