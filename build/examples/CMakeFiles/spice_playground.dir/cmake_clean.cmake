file(REMOVE_RECURSE
  "CMakeFiles/spice_playground.dir/spice_playground.cpp.o"
  "CMakeFiles/spice_playground.dir/spice_playground.cpp.o.d"
  "spice_playground"
  "spice_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
