# Empty dependencies file for spice_playground.
# This may be replaced when dependencies are built.
