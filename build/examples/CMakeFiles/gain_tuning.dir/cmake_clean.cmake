file(REMOVE_RECURSE
  "CMakeFiles/gain_tuning.dir/gain_tuning.cpp.o"
  "CMakeFiles/gain_tuning.dir/gain_tuning.cpp.o.d"
  "gain_tuning"
  "gain_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gain_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
