# Empty compiler generated dependencies file for gain_tuning.
# This may be replaced when dependencies are built.
