file(REMOVE_RECURSE
  "CMakeFiles/mos_curve_tracer.dir/mos_curve_tracer.cpp.o"
  "CMakeFiles/mos_curve_tracer.dir/mos_curve_tracer.cpp.o.d"
  "mos_curve_tracer"
  "mos_curve_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mos_curve_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
