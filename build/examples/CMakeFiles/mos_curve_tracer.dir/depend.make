# Empty dependencies file for mos_curve_tracer.
# This may be replaced when dependencies are built.
