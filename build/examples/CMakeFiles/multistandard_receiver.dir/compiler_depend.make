# Empty compiler generated dependencies file for multistandard_receiver.
# This may be replaced when dependencies are built.
