file(REMOVE_RECURSE
  "CMakeFiles/multistandard_receiver.dir/multistandard_receiver.cpp.o"
  "CMakeFiles/multistandard_receiver.dir/multistandard_receiver.cpp.o.d"
  "multistandard_receiver"
  "multistandard_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistandard_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
