#include "obs/obs.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace rfmix::obs {

#if RFMIX_OBS_ENABLED

namespace {

/// Per-thread timer accumulation. One cell per timer id; only the owning
/// thread writes, so cells stay on that thread's cache line. The deque
/// never relocates elements, and structural growth is serialized against
/// readers by `mu` — existing cells are atomics and stay lock-free.
struct TimerSlab {
  struct Cell {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
  };

  std::mutex mu;  // guards deque growth vs. aggregation reads
  std::deque<Cell> cells;

  Cell& cell(std::size_t id) {
    if (id >= cells.size()) {
      std::lock_guard<std::mutex> lk(mu);
      while (cells.size() <= id) cells.emplace_back();
    }
    return cells[id];
  }
};

struct RetiredTotals {
  std::uint64_t ns = 0;
  std::uint64_t calls = 0;
};

}  // namespace

/// Process-wide instrument registry (namespace scope so the friend
/// declarations in obs.hpp apply; the header never exposes it).
class Registry {
 public:
  static Registry& instance() {
    static Registry* r = new Registry();  // leaked: outlives thread exits
    return *r;
  }

  Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_by_name_.find(name);
    if (it != counters_by_name_.end()) return *it->second;
    counters_.push_back(std::unique_ptr<Counter>(new Counter(std::string(name))));
    Counter* c = counters_.back().get();
    counters_by_name_.emplace(c->name(), c);
    return *c;
  }

  Timer& timer(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = timers_by_name_.find(name);
    if (it != timers_by_name_.end()) return *it->second;
    const std::size_t id = timers_.size();
    timers_.push_back(std::unique_ptr<Timer>(new Timer(std::string(name), id)));
    Timer* t = timers_.back().get();
    timers_by_name_.emplace(t->name(), t);
    retired_.push_back(RetiredTotals{});
    return *t;
  }

  std::uint64_t counter_value(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_by_name_.find(name);
    return it == counters_by_name_.end() ? 0 : it->second->value();
  }

  TimerSnapshot aggregate(const Timer& t) {
    std::lock_guard<std::mutex> lk(mu_);
    return aggregate_locked(t);
  }

  TelemetrySnapshot snapshot() {
    std::lock_guard<std::mutex> lk(mu_);
    TelemetrySnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& c : counters_)
      snap.counters.push_back(CounterSnapshot{c->name(), c->value()});
    snap.timers.reserve(timers_.size());
    for (const auto& t : timers_) snap.timers.push_back(aggregate_locked(*t));
    auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.timers.begin(), snap.timers.end(), by_name);
    return snap;
  }

  void reset_all() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& c : counters_) c->value_.store(0, std::memory_order_relaxed);
    for (auto& r : retired_) r = RetiredTotals{};
    for (auto& slab : slabs_) {
      std::lock_guard<std::mutex> slk(slab->mu);
      for (auto& cell : slab->cells) {
        cell.ns.store(0, std::memory_order_relaxed);
        cell.calls.store(0, std::memory_order_relaxed);
      }
    }
  }

  std::shared_ptr<TimerSlab> adopt_slab() {
    auto slab = std::make_shared<TimerSlab>();
    std::lock_guard<std::mutex> lk(mu_);
    slabs_.push_back(slab);
    return slab;
  }

  /// Fold a dying thread's slab into the retired totals and drop it from
  /// the live list.
  void retire_slab(const std::shared_ptr<TimerSlab>& slab) {
    std::lock_guard<std::mutex> lk(mu_);
    {
      std::lock_guard<std::mutex> slk(slab->mu);
      for (std::size_t id = 0; id < slab->cells.size() && id < retired_.size(); ++id) {
        retired_[id].ns += slab->cells[id].ns.load(std::memory_order_relaxed);
        retired_[id].calls += slab->cells[id].calls.load(std::memory_order_relaxed);
      }
    }
    slabs_.erase(std::remove(slabs_.begin(), slabs_.end(), slab), slabs_.end());
  }

 private:
  Registry() = default;

  TimerSnapshot aggregate_locked(const Timer& t) {
    TimerSnapshot s;
    s.name = t.name();
    const std::size_t id = t.id_;
    if (id < retired_.size()) {
      s.total_ns += retired_[id].ns;
      s.calls += retired_[id].calls;
    }
    for (const auto& slab : slabs_) {
      std::lock_guard<std::mutex> slk(slab->mu);
      if (id < slab->cells.size()) {
        s.total_ns += slab->cells[id].ns.load(std::memory_order_relaxed);
        s.calls += slab->cells[id].calls.load(std::memory_order_relaxed);
      }
    }
    return s;
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string_view, Counter*> counters_by_name_;
  std::vector<std::unique_ptr<Timer>> timers_;
  std::unordered_map<std::string_view, Timer*> timers_by_name_;
  std::vector<RetiredTotals> retired_;  // indexed by timer id
  std::vector<std::shared_ptr<TimerSlab>> slabs_;
};

namespace {

/// RAII handle that ties a slab to its owning thread.
struct SlabHandle {
  std::shared_ptr<TimerSlab> slab = Registry::instance().adopt_slab();
  ~SlabHandle() { Registry::instance().retire_slab(slab); }
};

TimerSlab& local_slab() {
  thread_local SlabHandle handle;
  return *handle.slab;
}

}  // namespace

std::uint64_t Timer::calls() const { return Registry::instance().aggregate(*this).calls; }

std::uint64_t Timer::total_ns() const {
  return Registry::instance().aggregate(*this).total_ns;
}

void Timer::record(std::uint64_t ns) {
  TimerSlab::Cell& cell = local_slab().cell(id_);
  cell.ns.fetch_add(ns, std::memory_order_relaxed);
  cell.calls.fetch_add(1, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) { return Registry::instance().counter(name); }

Timer& timer(std::string_view name) { return Registry::instance().timer(name); }

std::uint64_t counter_value(std::string_view name) {
  return Registry::instance().counter_value(name);
}

TelemetrySnapshot snapshot() { return Registry::instance().snapshot(); }

void reset_all() { Registry::instance().reset_all(); }

#else  // !RFMIX_OBS_ENABLED

Counter& counter(std::string_view) {
  static Counter c;
  return c;
}

Timer& timer(std::string_view) {
  static Timer t;
  return t;
}

std::uint64_t counter_value(std::string_view) { return 0; }

TelemetrySnapshot snapshot() { return TelemetrySnapshot{}; }

void reset_all() {}

#endif  // RFMIX_OBS_ENABLED

}  // namespace rfmix::obs
