#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

namespace rfmix::obs::json {

std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips any double; trim to the shorter %.15g form when it
  // parses back exactly so reports stay human-readable.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string number(std::uint64_t v) { return std::to_string(v); }

Value& Value::operator[](std::string_view key) {
  if (kind_ != Kind::kObject)
    throw std::logic_error("json::Value: operator[] on non-object");
  for (auto& [k, v] : members_)
    if (k == key) return *v;
  members_.emplace_back(std::string(key), std::make_unique<Value>());
  return *members_.back().second;
}

Value& Value::append(Value v) {
  if (kind_ != Kind::kArray) throw std::logic_error("json::Value: append on non-array");
  elements_.push_back(std::make_unique<Value>(std::move(v)));
  return *elements_.back();
}

void Value::write(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      os << number(num_);
      break;
    case Kind::kUint:
      os << number(uint_);
      break;
    case Kind::kString:
      os << quoted(str_);
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        os << "{}";
        break;
      }
      os << "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        os << pad_in << quoted(members_[i].first) << ": ";
        members_[i].second->write(os, indent + 1);
        if (i + 1 < members_.size()) os << ",";
        os << "\n";
      }
      os << pad << "}";
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        os << "[]";
        break;
      }
      os << "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        os << pad_in;
        elements_[i]->write(os, indent + 1);
        if (i + 1 < elements_.size()) os << ",";
        os << "\n";
      }
      os << pad << "]";
      break;
    }
  }
}

}  // namespace rfmix::obs::json
