#include "obs/cli.hpp"

#include <iostream>
#include <string_view>

#include "obs/trace.hpp"

namespace rfmix::obs {

BenchCli::BenchCli(int argc, char** argv, std::string tool)
    : tool_(std::move(tool)), report_(tool_) {
  auto take_value = [&](int& i, std::string_view flag) -> std::string {
    const std::string_view arg(argv[i]);
    if (arg.size() > flag.size() && arg[flag.size()] == '=')
      return std::string(arg.substr(flag.size() + 1));
    if (i + 1 < argc) return std::string(argv[++i]);
    std::cerr << tool_ << ": " << flag << " requires a path argument\n";
    return {};
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--csv") {
      csv_ = true;
    } else if (arg == "--report" || arg.rfind("--report=", 0) == 0) {
      report_path_ = take_value(i, "--report");
    } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
      trace_path_ = take_value(i, "--trace");
    }
  }
  if (tracing()) trace::enable();
}

std::ostream& BenchCli::out() const { return reporting() ? std::cerr : std::cout; }

int BenchCli::finish() {
  int rc = 0;
  if (tracing()) {
    trace::disable();
    if (!trace::write_file(trace_path_)) {
      std::cerr << tool_ << ": failed to write trace to " << trace_path_ << "\n";
      rc = 1;
    }
  }
  if (reporting() && !report_.write_file(report_path_)) {
    std::cerr << tool_ << ": failed to write report to " << report_path_ << "\n";
    rc = 1;
  }
  return rc;
}

}  // namespace rfmix::obs
