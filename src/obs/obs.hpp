// Solver observability: named counters and scoped wall-clock timers.
//
// Every hot analysis loop in the simulator (Newton, transient stepping,
// AC/noise sweeps, LPTV conversion solves, the thread pool) reports what it
// did through this registry, so benches and tests can ask "how many Newton
// iterations / LU factorizations / rejected steps did that run take, and
// where did the time go" without perturbing the numerics. Telemetry is
// strictly out-of-band: nothing in here ever feeds back into solver state,
// so the PR 2 determinism contract (bit-identical results at any thread
// count) is untouched.
//
// Concurrency model:
//  * Counters are single atomics with relaxed increments. For analyses that
//    are deterministic under the runtime pool, the *work* per index is
//    schedule-independent, so counter totals are identical at any thread
//    count even though increment order is not.
//  * Timers accumulate into thread-local slabs (one cell per timer per
//    thread, no sharing on the hot path); reads aggregate live slabs plus
//    totals retired by exited threads. This is what keeps ScopedTimer cheap
//    on pool workers under work stealing.
//
// Compile-time gate: configure with -DRFMIX_OBS=OFF and RFMIX_OBS_ENABLED
// becomes 0 — the RFMIX_OBS_* macros expand to nothing and the classes
// below collapse to stateless no-ops, so instrumented code compiles
// unchanged at zero cost.
//
// See docs/observability.md for the counter/timer catalogue and naming
// conventions.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef RFMIX_OBS_ENABLED
#define RFMIX_OBS_ENABLED 1
#endif

#if RFMIX_OBS_ENABLED
#include <atomic>
#endif

namespace rfmix::obs {

/// Point-in-time value of one named counter.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

/// Point-in-time aggregate of one named timer.
struct TimerSnapshot {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
};

/// Everything the registry knows, with entries sorted by name so snapshots
/// compare and serialize deterministically.
struct TelemetrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<TimerSnapshot> timers;
};

#if RFMIX_OBS_ENABLED

/// Monotonic event counter. Created through obs::counter(); references stay
/// valid for the life of the process.
class Counter {
 public:
  void add(std::uint64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() noexcept { add(1); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Wall-clock accumulator fed by ScopedTimer. Aggregation (calls/total_ns)
/// sums the per-thread slabs, so concurrent scopes on pool workers never
/// contend with each other.
class Timer {
 public:
  std::uint64_t calls() const;
  std::uint64_t total_ns() const;
  double total_s() const { return static_cast<double>(total_ns()) * 1e-9; }
  const std::string& name() const noexcept { return name_; }

  /// Credit one call of `ns` nanoseconds without a ScopedTimer (used by
  /// tests and by code that measures intervals itself).
  void record(std::uint64_t ns);

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

 private:
  friend class Registry;
  friend class ScopedTimer;
  Timer(std::string name, std::size_t id) : name_(std::move(name)), id_(id) {}

  std::string name_;
  std::size_t id_;
};

/// RAII wall-clock scope: measures construction-to-destruction and credits
/// the interval to the timer on the thread that ran the scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    timer_.record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& timer_;
  std::chrono::steady_clock::time_point start_;
};

#else  // !RFMIX_OBS_ENABLED — stateless stand-ins, same API surface.

class Counter {
 public:
  void add(std::uint64_t) noexcept {}
  void increment() noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  const std::string& name() const noexcept {
    static const std::string kEmpty;
    return kEmpty;
  }
};

class Timer {
 public:
  std::uint64_t calls() const { return 0; }
  std::uint64_t total_ns() const { return 0; }
  double total_s() const { return 0.0; }
  const std::string& name() const noexcept {
    static const std::string kEmpty;
    return kEmpty;
  }
  void record(std::uint64_t) {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Timer&) {}
};

#endif  // RFMIX_OBS_ENABLED

/// Look up (creating on first use) the counter / timer with this name.
/// Thread-safe; the returned reference is stable for the process lifetime.
/// In a disabled build both return a shared no-op instance.
Counter& counter(std::string_view name);
Timer& timer(std::string_view name);

/// Value of the named counter, or 0 if it was never created.
std::uint64_t counter_value(std::string_view name);

/// Sorted snapshot of every registered counter and timer.
TelemetrySnapshot snapshot();

/// Zero every counter and timer. Only meaningful while no instrumented
/// work is in flight (tests call this between phases; benches never do).
void reset_all();

// ---------------------------------------------------------------------------
// Instrumentation macros. The `name` argument must be a string literal (the
// registry reference is cached in a function-local static, so one call site
// must always name the same instrument). With RFMIX_OBS_ENABLED=0 they
// expand to nothing.
// ---------------------------------------------------------------------------

#if RFMIX_OBS_ENABLED

#define RFMIX_OBS_CONCAT_IMPL(a, b) a##b
#define RFMIX_OBS_CONCAT(a, b) RFMIX_OBS_CONCAT_IMPL(a, b)

/// Add `n` to the named counter.
#define RFMIX_OBS_COUNT_N(name, n)                                     \
  do {                                                                 \
    static ::rfmix::obs::Counter& rfmix_obs_counter_ =                 \
        ::rfmix::obs::counter(name);                                   \
    rfmix_obs_counter_.add(static_cast<std::uint64_t>(n));             \
  } while (0)

/// Increment the named counter by one.
#define RFMIX_OBS_COUNT(name) RFMIX_OBS_COUNT_N(name, 1)

/// Time the rest of the enclosing block against the named timer. Declares
/// local objects — use inside a braced scope.
#define RFMIX_OBS_SCOPED_TIMER(name)                                   \
  static ::rfmix::obs::Timer& RFMIX_OBS_CONCAT(rfmix_obs_timer_,       \
                                               __LINE__) =            \
      ::rfmix::obs::timer(name);                                       \
  ::rfmix::obs::ScopedTimer RFMIX_OBS_CONCAT(rfmix_obs_timer_scope_,   \
                                             __LINE__)(               \
      RFMIX_OBS_CONCAT(rfmix_obs_timer_, __LINE__))

#else

#define RFMIX_OBS_COUNT_N(name, n) \
  do {                             \
  } while (0)
#define RFMIX_OBS_COUNT(name) \
  do {                        \
  } while (0)
#define RFMIX_OBS_SCOPED_TIMER(name) \
  do {                               \
  } while (0)

#endif  // RFMIX_OBS_ENABLED

}  // namespace rfmix::obs
