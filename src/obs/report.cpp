#include "obs/report.hpp"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <thread>

#include "obs/json_writer.hpp"
#include "obs/obs.hpp"

#ifndef RFMIX_GIT_SHA
#define RFMIX_GIT_SHA "unknown"
#endif
#ifndef RFMIX_BUILD_TYPE
#define RFMIX_BUILD_TYPE "unknown"
#endif

namespace rfmix::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string utc_now_iso8601() {
  const std::time_t t = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &t);
#else
  gmtime_r(&t, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

json::Value config_value(const std::variant<double, std::string>& v) {
  if (std::holds_alternative<double>(v)) return json::Value(std::get<double>(v));
  return json::Value(std::get<std::string>(v));
}

}  // namespace

RunReport::RunReport(std::string tool)
    : tool_(std::move(tool)), started_utc_(utc_now_iso8601()), start_ns_(steady_now_ns()) {}

void RunReport::set_config(std::string key, double value) {
  config_.emplace_back(std::move(key), ConfigValue(value));
}

void RunReport::set_config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), ConfigValue(std::move(value)));
}

void RunReport::add_metric(std::string name, double value) {
  metrics_.emplace_back(std::move(name), ConfigValue(value));
}

void RunReport::add_metric(std::string name, std::string value) {
  metrics_.emplace_back(std::move(name), ConfigValue(std::move(value)));
}

const char* RunReport::git_sha() { return RFMIX_GIT_SHA; }

void RunReport::write(std::ostream& os) const {
  json::Value root = json::Value::object();
  root["schema_version"] = json::Value(kSchemaVersion);
  root["tool"] = json::Value(tool_);
  root["git_sha"] = json::Value(git_sha());
  root["started_utc"] = json::Value(started_utc_);
  root["wall_s"] =
      json::Value(static_cast<double>(steady_now_ns() - start_ns_) * 1e-9);

  root["build"] = json::Value::object();
  json::Value& build = root["build"];
  build["obs_enabled"] = json::Value(static_cast<bool>(RFMIX_OBS_ENABLED));
  build["build_type"] = json::Value(RFMIX_BUILD_TYPE);

  root["environment"] = json::Value::object();
  json::Value& env = root["environment"];
  const char* threads_env = std::getenv("RFMIX_THREADS");
  env["rfmix_threads_env"] =
      threads_env != nullptr ? json::Value(threads_env) : json::Value();
  env["hardware_concurrency"] =
      json::Value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  root["config"] = json::Value::object();
  json::Value& config = root["config"];
  for (const auto& [k, v] : config_) config[k] = config_value(v);

  root["metrics"] = json::Value::object();
  json::Value& metrics = root["metrics"];
  for (const auto& [k, v] : metrics_) metrics[k] = config_value(v);

  const TelemetrySnapshot snap = snapshot();
  root["counters"] = json::Value::object();
  json::Value& counters = root["counters"];
  for (const CounterSnapshot& c : snap.counters)
    counters[c.name] = json::Value(c.value);
  root["timers"] = json::Value::object();
  json::Value& timers = root["timers"];
  for (const TimerSnapshot& t : snap.timers) {
    timers[t.name] = json::Value::object();
    json::Value& entry = timers[t.name];
    entry["calls"] = json::Value(t.calls);
    entry["total_s"] = json::Value(static_cast<double>(t.total_ns) * 1e-9);
  }

  root.write(os);
  os << "\n";
}

bool RunReport::write_file(const std::string& path) const {
  if (path == "-") {
    write(std::cout);
    return static_cast<bool>(std::cout);
  }
  std::ofstream f(path);
  if (!f) return false;
  write(f);
  return static_cast<bool>(f);
}

}  // namespace rfmix::obs
