#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#if RFMIX_OBS_ENABLED
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#endif

#include "obs/json_writer.hpp"

namespace rfmix::obs {

#if RFMIX_OBS_ENABLED

namespace {

/// Events land in per-thread buffers (one short lock on the thread's own
/// mutex per event); export snapshots every buffer under the registry lock.
struct TraceBuf {
  std::uint32_t tid = 0;
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceBuf>> bufs;
  std::uint32_t next_tid = 1;

  static TraceRegistry& instance() {
    static TraceRegistry* r = new TraceRegistry();  // leaked: outlives threads
    return *r;
  }
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_epoch_ns{0};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceBuf& local_buf() {
  thread_local std::shared_ptr<TraceBuf> buf = [] {
    auto b = std::make_shared<TraceBuf>();
    TraceRegistry& reg = TraceRegistry::instance();
    std::lock_guard<std::mutex> lk(reg.mu);
    b->tid = reg.next_tid++;
    reg.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

TraceScope::TraceScope(const char* name) : name_(name) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    armed_ = true;
    start_ns_ = steady_now_ns();
  }
}

TraceScope::~TraceScope() {
  if (!armed_) return;
  const std::uint64_t end = steady_now_ns();
  const std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  TraceEvent ev;
  ev.name = name_;
  ev.ts_ns = start_ns_ > epoch ? start_ns_ - epoch : 0;
  ev.dur_ns = end > start_ns_ ? end - start_ns_ : 0;
  TraceBuf& buf = local_buf();
  ev.tid = buf.tid;
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.events.push_back(std::move(ev));
}

namespace trace {

void enable() {
  std::uint64_t expected = 0;
  g_epoch_ns.compare_exchange_strong(expected, steady_now_ns(),
                                     std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { g_enabled.store(false, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void clear() {
  TraceRegistry& reg = TraceRegistry::instance();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (auto& buf : reg.bufs) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->events.clear();
  }
}

std::vector<TraceEvent> events() {
  TraceRegistry& reg = TraceRegistry::instance();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(reg.mu);
    for (auto& buf : reg.bufs) {
      std::lock_guard<std::mutex> blk(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.dur_ns > b.dur_ns;  // parent (longer) before child at equal start
  });
  return out;
}

}  // namespace trace

#else  // !RFMIX_OBS_ENABLED

namespace trace {

void enable() {}
void disable() {}
bool enabled() { return false; }
void clear() {}
std::vector<TraceEvent> events() { return {}; }

}  // namespace trace

#endif  // RFMIX_OBS_ENABLED

namespace trace {

void export_json(std::ostream& os) {
  const std::vector<TraceEvent> evs = events();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) os << ",";
    first = false;
    // Complete ("X") events; chrome://tracing expects microseconds.
    os << "\n{\"name\":" << json::quoted(ev.name) << ",\"ph\":\"X\",\"pid\":1,"
       << "\"tid\":" << ev.tid << ",\"ts\":" << json::number(ev.ts_ns / 1e3)
       << ",\"dur\":" << json::number(ev.dur_ns / 1e3) << "}";
  }
  if (!first) os << "\n";
  os << "]}\n";
}

bool write_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  export_json(f);
  return static_cast<bool>(f);
}

}  // namespace trace

}  // namespace rfmix::obs
