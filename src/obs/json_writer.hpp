// Minimal JSON serialization helpers shared by the trace exporter and the
// run-report writer. Only what those two need: string escaping, locale-free
// number formatting, and an ordered tree value for report documents.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rfmix::obs::json {

/// `s` escaped and wrapped in double quotes, per RFC 8259.
std::string quoted(std::string_view s);

/// Shortest round-trip decimal for a double; NaN/Inf (not representable in
/// JSON) serialize as null.
std::string number(double v);
std::string number(std::uint64_t v);

/// Ordered JSON value: objects keep insertion order so reports serialize
/// the way they were built (and diff cleanly).
class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  Value(std::uint64_t u) : kind_(Kind::kUint), uint_(u) {}
  Value(int i) : kind_(Kind::kUint), uint_(static_cast<std::uint64_t>(i < 0 ? 0 : i)) {
    if (i < 0) {
      kind_ = Kind::kNumber;
      num_ = i;
    }
  }
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}

  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }

  bool is_object() const { return kind_ == Kind::kObject; }

  /// Object member access, creating the key on first use (insertion order
  /// is preserved). Only valid on objects.
  Value& operator[](std::string_view key);

  /// Append to an array. Only valid on arrays.
  Value& append(Value v);

  /// Serialize with 2-space indentation.
  void write(std::ostream& os, int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kUint, kString, kObject, kArray };

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t uint_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, std::unique_ptr<Value>>> members_;
  std::vector<std::unique_ptr<Value>> elements_;
};

}  // namespace rfmix::obs::json
