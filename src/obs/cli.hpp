// Shared command-line plumbing for the bench binaries.
//
// Every bench constructs a BenchCli from (argc, argv) and gets, uniformly:
//
//   --csv              machine-readable table output (bench-interpreted)
//   --report <path>    write a JSON run report (obs::RunReport) on finish();
//                      "-" writes the report to stdout
//   --trace <path>     record a Chrome trace of the run and write it on
//                      finish()
//
// When a report is requested, all human-facing output (out()) is routed to
// stderr so stdout stays clean for machine consumers — `bench --report - |
// jq .metrics` works with no stray table rows in the pipe.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/report.hpp"

namespace rfmix::obs {

class BenchCli {
 public:
  /// Parses the flags above out of argv; unrecognized arguments are
  /// ignored (benches with extra flags scan argv themselves). `tool` names
  /// the binary in the report.
  BenchCli(int argc, char** argv, std::string tool);

  bool csv() const { return csv_; }
  bool reporting() const { return !report_path_.empty(); }
  bool tracing() const { return !trace_path_.empty(); }

  /// Stream for human-facing output: stdout normally, stderr when a
  /// report was requested.
  std::ostream& out() const;

  /// The run report (always available; only written when reporting()).
  RunReport& report() { return report_; }
  void add_metric(std::string name, double value) {
    report_.add_metric(std::move(name), value);
  }
  void set_config(std::string key, double value) {
    report_.set_config(std::move(key), value);
  }
  void set_config(std::string key, std::string value) {
    report_.set_config(std::move(key), std::move(value));
  }

  /// Write the report and/or trace if requested. Returns the process exit
  /// code (1 when an output file could not be written).
  int finish();

 private:
  std::string tool_;
  std::string report_path_;
  std::string trace_path_;
  bool csv_ = false;
  RunReport report_;
};

}  // namespace rfmix::obs
