// Structured JSON run reports for benches and tools.
//
// A RunReport captures one process invocation: which tool ran, against
// which git revision and build, with what configuration, what it measured
// (tool-supplied metrics) and what the solver telemetry says it cost
// (counters + timers, snapshotted at write time). The schema is documented
// in docs/observability.md; BENCH_*.json trajectories are produced by
// pointing `--report` at a file and collecting the `metrics` section.
//
// Reports work in RFMIX_OBS=OFF builds too — the `counters`/`timers`
// sections are simply empty, everything else is unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace rfmix::obs {

class RunReport {
 public:
  /// `tool` names the producing binary (e.g. "bench_fig8_gain_vs_rf").
  /// Wall time is measured from construction to write().
  explicit RunReport(std::string tool);

  /// Add a configuration entry (swept ranges, mode flags, point counts...).
  void set_config(std::string key, double value);
  void set_config(std::string key, std::string value);

  /// Add a measured result. Metrics keep insertion order in the output.
  void add_metric(std::string name, double value);
  void add_metric(std::string name, std::string value);

  /// Serialize the report, snapshotting telemetry and wall time now.
  void write(std::ostream& os) const;

  /// write() to `path`, or to stdout when `path` is "-". Returns false if
  /// the file cannot be opened or the stream fails.
  bool write_file(const std::string& path) const;

  /// Git revision baked in at configure time ("unknown" outside a
  /// checkout; stale until CMake re-runs after a commit).
  static const char* git_sha();

  /// Bumped when the report layout changes incompatibly.
  static constexpr int kSchemaVersion = 1;

 private:
  using ConfigValue = std::variant<double, std::string>;

  std::string tool_;
  std::string started_utc_;
  std::uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, ConfigValue>> config_;
  std::vector<std::pair<std::string, ConfigValue>> metrics_;
};

}  // namespace rfmix::obs
