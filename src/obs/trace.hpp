// Trace-event recorder with Chrome trace-viewer JSON export.
//
// TraceScope marks a wall-clock interval on the current thread; when
// recording is enabled (trace::enable(), or a bench's --trace flag) each
// completed scope appends one event to a per-thread buffer. trace::
// export_json() writes the collected events in the Chrome trace-event
// format ("X" complete events), so a run can be dropped straight into
// chrome://tracing or https://ui.perfetto.dev.
//
// Recording is off by default and rechecked at every scope entry, so the
// cost of an un-traced run is one relaxed atomic load per scope. With
// RFMIX_OBS_ENABLED=0 the recorder compiles away entirely: enable() is a
// no-op, events() is empty, and export_json() emits an empty trace.
//
// Nesting: scopes on one thread destruct in LIFO order, so for any two
// events with the same tid the intervals are either disjoint or strictly
// nested — the invariant tests/obs/test_trace_export.cpp pins down.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace rfmix::obs {

/// One completed interval ("X" event in the Chrome trace format).
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;       // small per-process thread ordinal
  std::uint64_t ts_ns = 0;     // start, relative to the recorder epoch
  std::uint64_t dur_ns = 0;
};

namespace trace {

/// Start recording. The first enable() fixes the trace epoch.
void enable();
/// Stop recording (already-captured events are kept until clear()).
void disable();
bool enabled();
/// Drop every captured event.
void clear();

/// All captured events, sorted by (tid, ts_ns). In a disabled build or
/// with recording off this is empty.
std::vector<TraceEvent> events();

/// Write {"traceEvents": [...]} for chrome://tracing. Timestamps are
/// exported in microseconds (the format's native unit).
void export_json(std::ostream& os);

/// export_json() to `path`; returns false if the file cannot be opened.
bool write_file(const std::string& path);

}  // namespace trace

#if RFMIX_OBS_ENABLED

/// RAII trace interval. `name` must outlive the scope (string literals in
/// practice; the name is copied into the event only when recording).
class TraceScope {
 public:
  explicit TraceScope(const char* name);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool armed_ = false;
};

#define RFMIX_OBS_TRACE_SCOPE(name)                                  \
  ::rfmix::obs::TraceScope RFMIX_OBS_CONCAT(rfmix_obs_trace_scope_, \
                                            __LINE__)(name)

#else

class TraceScope {
 public:
  explicit TraceScope(const char*) {}
};

#define RFMIX_OBS_TRACE_SCOPE(name) \
  do {                              \
  } while (0)

#endif  // RFMIX_OBS_ENABLED

}  // namespace rfmix::obs
