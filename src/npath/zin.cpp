#include "npath/zin.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"

namespace rfmix::npath {

namespace {

using Complex = std::complex<double>;

/// One frequency point: factor the block system at absolute frequency f,
/// inject a unit current into the RF node at sideband 0, and read the port
/// voltage (sideband 0) plus the re-radiated sidebands.
ZinPoint zin_point(const lptv::ConversionAnalysis& an, const NpathSpec& spec,
                   int rf_node, double f_hz) {
  RFMIX_OBS_SCOPED_TIMER("npath.zin.point");
  RFMIX_OBS_COUNT("npath.zin.points");
  const lptv::ConversionAnalysis::Factored sys = an.factor(f_hz);
  // Current from ground into the RF node (p=0, m=rf): the b-vector gets +1
  // at rf, so v(0, rf) is the port impedance seen by the source, Rs
  // included.
  const lptv::PacSolution sol = sys.solve_current_injection(0, rf_node, 0);
  const Complex v0 = sol.v(0, rf_node);

  ZinPoint pt;
  pt.f_hz = f_hz;
  // v0 = Rs || Zin: the source resistance is part of the network (it
  // terminates the harmonic re-radiation, which matters physically), so
  // de-embed it to get the mixer-first input impedance itself.
  const Complex y_total = 1.0 / v0;
  const Complex y_mixer = y_total - 1.0 / spec.r_source;
  pt.zin = 1.0 / y_mixer;
  pt.s11 = (pt.zin - spec.r_source) / (pt.zin + spec.r_source);

  const int k_hi = an.harmonics();
  const double v0_mag = std::abs(v0);
  const int n = spec.lo.phases;
  if (v0_mag > 0.0) {
    // Ideal N-phase commutation only re-radiates at k = multiples of +-N;
    // report the first pair (absolute frequencies |f -+ N f_LO|, i.e.
    // (N-+1) f_LO for f near f_LO).
    if (n <= k_hi) {
      pt.rerad_minus = std::abs(sol.v(-n, rf_node)) / v0_mag;
      pt.rerad_plus = std::abs(sol.v(+n, rf_node)) / v0_mag;
    }
    // Re-radiated amplitude near the 3rd LO harmonic: the sidebands whose
    // absolute frequency lands closest to +-3 f_LO. For a 4-phase set and
    // f near f_LO this is the k = -4 term (3 f_LO = (N-1) f_LO); an
    // 8-phase set cancels it — the harmonic-rejection advantage.
    const double ratio = f_hz / spec.f_lo_hz;
    double acc = 0.0;
    for (const double target : {3.0, -3.0}) {
      const int k = static_cast<int>(std::lround(target - ratio));
      if (k == 0 || std::abs(k) > k_hi) continue;
      const double a = std::abs(sol.v(k, rf_node)) / v0_mag;
      acc += a * a;
    }
    pt.rerad_3lo = std::sqrt(acc);
  }
  return pt;
}

/// Linear-interpolated crossing of |zin| through `level` between adjacent
/// sweep points, searching outward from `peak` in direction `step`.
/// Returns the crossing frequency, or 0 when the level is never crossed
/// inside the sweep.
double find_crossing(const ZinSweep& sw, std::size_t peak, int step, double level) {
  std::size_t i = peak;
  while (true) {
    const std::size_t j = static_cast<std::size_t>(static_cast<long>(i) + step);
    if (step < 0 && i == 0) return 0.0;
    if (step > 0 && j >= sw.points.size()) return 0.0;
    const double mi = std::abs(sw.points[i].zin);
    const double mj = std::abs(sw.points[j].zin);
    if (mj <= level) {
      const double t = (mi - level) / (mi - mj);  // mi > level >= mj
      return sw.freqs_hz[i] + t * (sw.freqs_hz[j] - sw.freqs_hz[i]);
    }
    i = j;
  }
}

void summarize(ZinSweep& sw) {
  if (sw.points.empty()) return;
  std::size_t peak = 0;
  double peak_mag = -1.0, floor_mag = 0.0;
  for (std::size_t i = 0; i < sw.points.size(); ++i) {
    const double mag = std::abs(sw.points[i].zin);
    if (mag > peak_mag) {
      peak_mag = mag;
      peak = i;
    }
    if (i == 0 || mag < floor_mag) floor_mag = mag;
    sw.summary.rerad_3lo_max = std::max(sw.summary.rerad_3lo_max, sw.points[i].rerad_3lo);
  }
  sw.summary.f_peak_hz = sw.freqs_hz[peak];
  sw.summary.zin_peak_ohm = peak_mag;
  sw.summary.zin_floor_ohm = floor_mag;
  const double level = peak_mag / std::sqrt(2.0);
  const double lo = find_crossing(sw, peak, -1, level);
  const double hi = find_crossing(sw, peak, +1, level);
  if (lo > 0.0 && hi > 0.0) {
    sw.summary.bw_3db_hz = hi - lo;
    if (sw.summary.bw_3db_hz > 0.0)
      sw.summary.q = sw.summary.f_peak_hz / sw.summary.bw_3db_hz;
  }
}

}  // namespace

void validate(const NpathSpec& spec) {
  validate(spec.lo);
  if (!(spec.f_lo_hz > 0.0))
    throw std::invalid_argument("NpathSpec: f_lo_hz must be positive");
  if (!(spec.r_source > 0.0))
    throw std::invalid_argument("NpathSpec: r_source must be positive");
  if (!(spec.switch_ron > 0.0))
    throw std::invalid_argument("NpathSpec: switch_ron must be positive");
  if (!(spec.zbb_r > 0.0))
    throw std::invalid_argument("NpathSpec: zbb_r must be positive");
  if (spec.zbb_c < 0.0)
    throw std::invalid_argument("NpathSpec: zbb_c must be >= 0");
  if (spec.c_rf < 0.0)
    throw std::invalid_argument("NpathSpec: c_rf must be >= 0");
  if (spec.harmonics > 64)
    throw std::invalid_argument("NpathSpec: harmonics must be <= 64");
  // K must retain the +-N re-radiation sidebands or the analysis silently
  // under-reports the very terms this subsystem exists to expose.
  if (spec.harmonics < spec.lo.phases + 1)
    throw std::invalid_argument("NpathSpec: harmonics must be >= phases + 1");
  if (spec.lo.samples < 4 * spec.harmonics + 2)
    throw std::invalid_argument(
        "NpathSpec: lo.samples must be >= 4*harmonics + 2 (waveform "
        "resolution bounds the usable harmonic count)");
}

NpathCircuit build_npath_circuit(const NpathSpec& spec) {
  validate(spec);
  NpathCircuit out{lptv::LptvCircuit(spec.lo.samples), 0, {}};
  out.rf = out.ckt.add_node();
  out.ckt.add_resistor(out.rf, 0, spec.r_source);
  if (spec.c_rf > 0.0) out.ckt.add_capacitance(out.rf, 0, spec.c_rf);
  const std::vector<lptv::PeriodicWave> waves =
      lo_waveforms(spec.lo, 0.0, 1.0 / spec.switch_ron);
  out.bb.reserve(static_cast<std::size_t>(spec.lo.phases));
  for (int p = 0; p < spec.lo.phases; ++p) {
    const int bb = out.ckt.add_node();
    out.bb.push_back(bb);
    out.ckt.add_periodic_conductance(out.rf, bb, waves[static_cast<std::size_t>(p)]);
    out.ckt.add_resistor(bb, 0, spec.zbb_r);
    if (spec.zbb_c > 0.0) out.ckt.add_capacitance(bb, 0, spec.zbb_c);
  }
  return out;
}

ZinSweep zin_sweep(const NpathSpec& spec, std::vector<double> freqs_hz) {
  validate(spec);
  RFMIX_OBS_SCOPED_TIMER("npath.zin.sweep");
  RFMIX_OBS_TRACE_SCOPE("npath.zin.sweep");
  RFMIX_OBS_COUNT("npath.zin.sweeps");
  const NpathCircuit nc = build_npath_circuit(spec);
  const lptv::ConversionAnalysis an(nc.ckt, {spec.f_lo_hz, spec.harmonics});

  ZinSweep out;
  out.freqs_hz = std::move(freqs_hz);
  out.points.resize(out.freqs_hz.size());
  if (!out.points.empty()) {
    // Prime the shared analyze-once symbolic at the first point, then
    // refactor every other point in parallel (same discipline as the AC
    // sweep fast path): results and counters are independent of
    // scheduling, so 1-thread and 8-thread runs are byte-identical.
    out.points[0] = zin_point(an, spec, nc.rf, out.freqs_hz[0]);
    runtime::parallel_for(1, out.points.size(), [&](std::size_t i) {
      out.points[i] = zin_point(an, spec, nc.rf, out.freqs_hz[i]);
    });
  }
  summarize(out);
  return out;
}

}  // namespace rfmix::npath
