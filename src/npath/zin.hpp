// Mixer-first / N-path input-impedance analysis.
//
// A passive mixer-first front end is N switches clocked by non-overlapping
// phases (lo_gen.hpp), each connecting the shared RF node to one baseband
// impedance Zbb (R, or R || C). Around every LO harmonic the switches
// frequency-translate Zbb up to RF, so the port sees a high-Q bandpass
// impedance centered at f_LO whose bandwidth is set by the *baseband* pole
// — the N-path filter (Roy & Sharad, arXiv:1903.09564; Al Kubaisy et al.,
// arXiv:2212.03162).
//
// This is exactly the mathematical object the LPTV conversion-matrix
// engine computes: we build the switch set as periodic conductances, inject
// a unit AC current at the RF port at absolute frequency f (sideband 0 of
// the conversion system), and read
//   * Zin(f)  — the port voltage at sideband 0, with the source resistance
//               de-embedded,
//   * S11(f)  — the reflection coefficient versus r_source,
//   * harmonic re-radiation — the voltages at sidebands k != 0, i.e. at
//     |f + k*f_LO|. For an ideal N-phase set only k = multiples of +-N
//     survive, so a tone near f_LO re-radiates near (N-1)*f_LO and
//     (N+1)*f_LO; a 4-phase set therefore re-emits (and folds) at 3*f_LO
//     while an 8-phase set pushes that to 7*f_LO — the harmonic-rejection
//     argument for more phases.
//
// Frequency sweeps follow the PR-7 solver discipline: one ConversionAnalysis
// per spec (analyze-once symbolic LU per direction), the first point primed
// serially, every later point refactored in parallel on the runtime pool —
// byte-identical at any thread count and in classic vs reuse solver mode.
#pragma once

#include <complex>
#include <vector>

#include "lptv/lptv.hpp"
#include "npath/lo_gen.hpp"

namespace rfmix::npath {

/// Full description of one N-path front end + analysis resolution.
struct NpathSpec {
  LoSpec lo;                  // clock phase set (N, duty, edges, guard)
  double f_lo_hz = 1e9;       // LO frequency
  double r_source = 50.0;     // source/port resistance (also the S11 Z0)
  double switch_ron = 10.0;   // switch ON resistance (g_on = 1/ron)
  double zbb_r = 1e3;         // per-path baseband resistance to ground
  double zbb_c = 0.0;         // per-path baseband capacitance (R || C); 0 = none
  double c_rf = 0.0;          // optional shunt capacitance at the RF node
  int harmonics = 16;         // K: conversion-matrix sidebands -K..K
};

/// Throws std::invalid_argument on an unphysical or under-resolved spec
/// (validates the LoSpec too; requires lo.samples >= 4*harmonics + 2 and
/// harmonics >= phases + 1 so the +-N re-radiation sidebands are retained).
void validate(const NpathSpec& spec);

/// The assembled LPTV network: RF port node, N baseband nodes, source
/// resistance and baseband loads attached. ckt owns the waveforms, so keep
/// it alive for the lifetime of any ConversionAnalysis built on it.
struct NpathCircuit {
  lptv::LptvCircuit ckt;
  int rf = 0;
  std::vector<int> bb;
};

NpathCircuit build_npath_circuit(const NpathSpec& spec);

/// One frequency point of the port sweep.
struct ZinPoint {
  double f_hz = 0.0;
  std::complex<double> zin;   // mixer input impedance, source de-embedded
  std::complex<double> s11;   // (zin - r_source) / (zin + r_source)
  double rerad_minus = 0.0;   // |V(k=-N)| / |V(0)|: re-radiation at |f - N f_LO|
  double rerad_plus = 0.0;    // |V(k=+N)| / |V(0)|: re-radiation at f + N f_LO
  double rerad_3lo = 0.0;     // relative re-radiated amplitude near 3 f_LO
};

/// Sweep-level figures of merit, derived deterministically from the points.
struct ZinSummary {
  double f_peak_hz = 0.0;      // frequency of max |zin|
  double zin_peak_ohm = 0.0;   // |zin| at the peak
  double zin_floor_ohm = 0.0;  // min |zin| over the sweep (out-of-band floor)
  double bw_3db_hz = 0.0;      // width of |zin| >= peak/sqrt(2), interpolated
                               // (0 when an edge lies outside the sweep)
  double q = 0.0;              // f_peak / bw_3db (0 when bw unresolved)
  double rerad_3lo_max = 0.0;  // max over points of rerad_3lo
};

struct ZinSweep {
  std::vector<double> freqs_hz;
  std::vector<ZinPoint> points;
  ZinSummary summary;
};

/// Zin/S11 at every frequency in `freqs_hz` (absolute frequencies, need not
/// relate to f_lo). Points after the first run concurrently on the runtime
/// pool; results are bit-identical at any thread count.
ZinSweep zin_sweep(const NpathSpec& spec, std::vector<double> freqs_hz);

}  // namespace rfmix::npath
