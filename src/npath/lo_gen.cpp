#include "npath/lo_gen.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "mathx/units.hpp"

namespace rfmix::npath {

using mathx::kTwoPi;

void validate(const LoSpec& spec) {
  if (spec.phases < 2 || spec.phases > 64)
    throw std::invalid_argument("LoSpec: phases must be in [2, 64], got " +
                                std::to_string(spec.phases));
  if (spec.samples < 8 || spec.samples > 4096)
    throw std::invalid_argument("LoSpec: samples must be in [8, 4096], got " +
                                std::to_string(spec.samples));
  if (!(spec.duty > 0.0))
    throw std::invalid_argument("LoSpec: duty must be positive");
  // duty > 1/N would make adjacent ON windows intersect — the defining
  // non-overlap constraint of an N-path clock set.
  if (spec.duty * spec.phases > 1.0 + 1e-12)
    throw std::invalid_argument(
        "LoSpec: duty must not exceed 1/phases (non-overlapping clocks)");
  if (spec.overlap_guard < 0.0 || spec.overlap_guard >= spec.duty)
    throw std::invalid_argument("LoSpec: overlap_guard must be in [0, duty)");
  const double width = spec.duty - spec.overlap_guard;
  if (spec.rise_frac < 0.0)
    throw std::invalid_argument("LoSpec: rise_frac must be >= 0");
  if (2.0 * spec.rise_frac > width)
    throw std::invalid_argument(
        "LoSpec: rise and fall edges (2*rise_frac) must fit inside the ON "
        "window (duty - overlap_guard)");
}

lptv::PeriodicWave phase_wave(const LoSpec& spec, int phase, double lo, double hi) {
  validate(spec);
  if (phase < 0 || phase >= spec.phases)
    throw std::invalid_argument("phase_wave: phase must be in [0, phases)");
  const int m = spec.samples;
  const double width = spec.duty - spec.overlap_guard;
  const double start =
      static_cast<double>(phase) / spec.phases + spec.overlap_guard / 2.0;
  const double rise = spec.rise_frac;
  lptv::PeriodicWave w(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    // Position relative to the window start, wrapped into [0, 1).
    double r = static_cast<double>(i) / m - start;
    r -= std::floor(r);
    double v;
    if (r >= width) {
      v = lo;
    } else if (rise <= 0.0) {
      v = hi;
    } else if (r < rise) {
      v = lo + (hi - lo) * (r / rise);  // rising edge
    } else if (r < width - rise) {
      v = hi;
    } else {
      v = hi + (lo - hi) * (r - (width - rise)) / rise;  // falling edge
    }
    w[static_cast<std::size_t>(i)] = v;
  }
  return w;
}

std::vector<lptv::PeriodicWave> lo_waveforms(const LoSpec& spec, double lo, double hi) {
  validate(spec);
  std::vector<lptv::PeriodicWave> waves;
  waves.reserve(static_cast<std::size_t>(spec.phases));
  for (int p = 0; p < spec.phases; ++p) waves.push_back(phase_wave(spec, p, lo, hi));
  return waves;
}

bool non_overlapping(const std::vector<lptv::PeriodicWave>& waves,
                     double on_threshold) {
  if (waves.empty()) return true;
  const std::size_t m = waves.front().size();
  for (const auto& w : waves)
    if (w.size() != m)
      throw std::invalid_argument("non_overlapping: waveform lengths differ");
  for (std::size_t i = 0; i < m; ++i) {
    int on = 0;
    for (const auto& w : waves)
      if (w[i] > on_threshold && ++on > 1) return false;
  }
  return true;
}

std::complex<double> fourier_coeff(const lptv::PeriodicWave& w, int m) {
  const int big_m = static_cast<int>(w.size());
  if (big_m == 0) throw std::invalid_argument("fourier_coeff: empty waveform");
  std::complex<double> acc{};
  for (int n = 0; n < big_m; ++n) {
    const double theta = -kTwoPi * m * n / big_m;
    acc += w[static_cast<std::size_t>(n)] *
           std::complex<double>(std::cos(theta), std::sin(theta));
  }
  return acc / static_cast<double>(big_m);
}

}  // namespace rfmix::npath
