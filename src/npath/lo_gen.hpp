// Multi-phase non-overlapping LO synthesis for N-path front ends.
//
// An N-path filter/mixer is driven by N clock phases of nominal duty 1/N,
// each one period-shifted by 1/N of the LO period, switching one path's
// baseband impedance onto the shared RF node. The waveforms produced here
// are *conductance* waveforms (g_on while the switch conducts, g_off while
// it is open) sampled uniformly over one LO period, which is exactly the
// periodic-drive format the LPTV conversion-matrix engine consumes
// (lptv::LptvCircuit::add_periodic_conductance).
//
// The generator is parameterized by phase count, duty cycle, trapezoidal
// rise/fall width and an overlap guard (enforced dead time), and it
// guarantees by construction that phases never conduct simultaneously as
// long as the spec validates: the ON window of phase i is
// [i/N + guard/2, i/N + duty - guard/2) with the rise and fall ramps
// contained inside the window, and validate() rejects duty > 1/N.
#pragma once

#include <complex>
#include <vector>

#include "lptv/lptv.hpp"

namespace rfmix::npath {

/// One multi-phase LO clocking scheme. All widths are fractions of the LO
/// period. The defaults are the canonical 4-phase 25%-duty quadrature set.
struct LoSpec {
  int phases = 4;            // N: number of clock phases (>= 2)
  double duty = 0.25;        // nominal ON fraction per phase, in (0, 1/N]
  double rise_frac = 0.0;    // trapezoidal edge width per transition (>= 0)
  double overlap_guard = 0.0;  // enforced dead time subtracted from the ON
                               // window (split evenly between both edges)
  int samples = 256;         // waveform resolution per LO period
};

/// Throws std::invalid_argument unless the spec describes a realizable
/// non-overlapping phase set: 2 <= phases <= 64, 0 < duty <= 1/phases,
/// 0 <= overlap_guard < duty, both edges fit inside the ON window
/// (2*rise_frac <= duty - overlap_guard), and samples >= 8.
void validate(const LoSpec& spec);

/// Conductance waveform of clock phase `phase` in [0, phases): `lo` while
/// the switch is open, `hi` while it conducts, with linear ramps of width
/// rise_frac at both edges (rise_frac == 0 gives the ideal rectangular
/// clock). Sampled at spec.samples points over one period.
lptv::PeriodicWave phase_wave(const LoSpec& spec, int phase, double lo, double hi);

/// All `phases` conductance waveforms, phase i shifted by i/N of a period.
std::vector<lptv::PeriodicWave> lo_waveforms(const LoSpec& spec, double lo, double hi);

/// True iff at every sample index at most one waveform is strictly above
/// `on_threshold` — the non-overlap guarantee the switch quad needs (two
/// simultaneously conducting paths would short their baseband impedances).
/// All waveforms must have the same length.
bool non_overlapping(const std::vector<lptv::PeriodicWave>& waves,
                     double on_threshold);

/// m-th complex Fourier coefficient of a sampled periodic waveform, using
/// the same convention as the LPTV engine:
///   W_m = (1/M) * sum_n w[n] * exp(-j 2 pi m n / M).
/// Direct O(M) evaluation — a closed-form cross-check for tests and small
/// harmonic counts, not a bulk transform.
std::complex<double> fourier_coeff(const lptv::PeriodicWave& w, int m);

}  // namespace rfmix::npath
