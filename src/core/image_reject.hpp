// Quadrature (I/Q) demodulation and image rejection — the extension the
// Fig. 2 wide-band front end needs in a real receiver: a single mixer
// cannot separate the wanted channel at f_lo + f_if from the image at
// f_lo - f_if; an I/Q pair with a 90-degree LO split can, limited by its
// gain and phase matching.
//
// Built on the LPTV engine: the I and Q paths are two instances of the
// reconfigurable mixer whose LO phases differ by a quarter period (plus an
// injected phase error), and whose transconductances differ by an injected
// gain error. The complex IF combination Z = I -+ jQ selects one sideband;
// the image-rejection ratio is |Z(wanted)|^2 / |Z(image)|^2.
#pragma once

#include "core/mixer_config.hpp"

namespace rfmix::core {

struct ImageRejectionResult {
  double wanted_gain_db = 0.0;  // conversion gain for the wanted sideband
  double image_gain_db = 0.0;   // conversion gain for the image sideband
  double irr_db = 0.0;          // image-rejection ratio
};

/// Compute the I/Q image rejection of the reconfigurable mixer in
/// `config.mode` at IF `f_if_hz`, with the given quadrature imperfections.
/// The IF combiner polarity is chosen to maximize the wanted sideband
/// (as a designer would).
ImageRejectionResult lptv_image_rejection(const MixerConfig& config,
                                          double f_if_hz = 5e6,
                                          double lo_phase_error_deg = 0.0,
                                          double gain_error_db = 0.0);

/// Textbook IRR bound for gain ratio error eps (linear) and phase error
/// theta [rad]: IRR = (1 + 2(1+eps)cos(theta) + (1+eps)^2) /
///                    (1 - 2(1+eps)cos(theta) + (1+eps)^2).
double analytic_irr_db(double gain_error_db, double phase_error_deg);

}  // namespace rfmix::core
