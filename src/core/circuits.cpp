#include "core/circuits.hpp"

#include <cmath>

#include "mathx/units.hpp"
#include "spice/devices_passive.hpp"
#include "spice/mosfet.hpp"
#include "spice/tech65.hpp"
#include "spice/waveform.hpp"

namespace rfmix::core {

using spice::Capacitor;
using spice::Circuit;
using spice::CurrentSource;
using spice::kGround;
using spice::Mosfet;
using spice::NodeId;
using spice::Resistor;
using spice::Vccs;
using spice::VoltageSource;
using spice::Waveform;
namespace tech = spice::tech65;

namespace {

/// Shared front: supply, LO sources, RF sources, and the fully differential
/// transconductance amplifier of Fig. 3 (diff pair, resistive loads sized
/// for a 0.6 V output common mode = VDD/2, per section II-A).
struct TcaStage {
  NodeId out_p, out_m;
};

TcaStage add_tca(TransistorMixer& m, const MixerConfig& cfg,
                 const DeviceVariation& var) {
  Circuit& c = m.circuit;
  const NodeId vdd = c.node("vdd");

  m.rf_p = c.node("rf_p");
  m.rf_m = c.node("rf_m");
  if (cfg.rf_series_r > 0.0) {
    const NodeId bias_p = c.node("rf_bias_p");
    const NodeId bias_m = c.node("rf_bias_m");
    m.vrf_p = &c.add<VoltageSource>("vrf_p", bias_p, kGround, Waveform::dc(0.55));
    m.vrf_m = &c.add<VoltageSource>("vrf_m", bias_m, kGround, Waveform::dc(0.55));
    c.add<Resistor>("rf_rs_p", bias_p, m.rf_p, cfg.rf_series_r);
    c.add<Resistor>("rf_rs_m", bias_m, m.rf_m, cfg.rf_series_r);
  } else {
    m.vrf_p = &c.add<VoltageSource>("vrf_p", m.rf_p, kGround, Waveform::dc(0.55));
    m.vrf_m = &c.add<VoltageSource>("vrf_m", m.rf_m, kGround, Waveform::dc(0.55));
  }

  const NodeId t = c.node("tca_tail");
  const NodeId out_p = c.node("tca_out_p");
  const NodeId out_m = c.node("tca_out_m");
  // Tail current: 4 mA total, split 2 mA per side at a healthy overdrive for
  // linearity; loads sized so the DC drop puts the output common mode at
  // VDD/2 (paper: "common mode voltage is designed at VDD/2").
  c.add<CurrentSource>("tca_itail", t, kGround, Waveform::dc(4.0e-3));
  c.add<Mosfet>("tca_m1", out_m, m.rf_p, t, kGround, var.apply(tech::nmos(25e-6)));
  c.add<Mosfet>("tca_m2", out_p, m.rf_m, t, kGround, var.apply(tech::nmos(25e-6)));
  c.add<Resistor>("tca_rl_p", vdd, out_p, 300.0);
  c.add<Resistor>("tca_rl_m", vdd, out_m, 300.0);
  // CPAR at the transconductor output (section II: minimized by design).
  c.add<Capacitor>("tca_cp_p", out_p, kGround, cfg.tca_cpar);
  c.add<Capacitor>("tca_cp_m", out_m, kGround, cfg.tca_cpar);
  return {out_p, out_m};
}

void add_supply_and_lo(TransistorMixer& m, const MixerConfig& cfg) {
  Circuit& c = m.circuit;
  const NodeId vdd = c.node("vdd");
  m.vdd = &c.add<VoltageSource>("vdd_src", vdd, kGround, Waveform::dc(cfg.vdd));

  m.lo_p = c.node("lo_p");
  m.lo_m = c.node("lo_m");
  m.vlo_p = &c.add<VoltageSource>(
      "vlo_p", m.lo_p, kGround,
      Waveform::sine(cfg.lo_amplitude, cfg.f_lo_hz, cfg.lo_common_mode));
  m.vlo_m = &c.add<VoltageSource>(
      "vlo_m", m.lo_m, kGround,
      Waveform::sine(-cfg.lo_amplitude, cfg.f_lo_hz, cfg.lo_common_mode));
}

/// The 4-NMOS switching quad (Fig. 4): sources at (src_p, src_m), drains
/// cross-coupled into (out_p, out_m).
void add_quad(Circuit& c, const MixerConfig& cfg, const DeviceVariation& var,
              const std::string& prefix,
              NodeId src_p, NodeId src_m, NodeId lo_p, NodeId lo_m, NodeId out_p,
              NodeId out_m) {
  const QuadGeometry geo = quad_geometry(cfg);
  const auto nominal = tech::nmos(geo.w, geo.l);
  c.add<Mosfet>(prefix + "_m3", out_p, lo_p, src_p, kGround, var.apply(nominal));
  c.add<Mosfet>(prefix + "_m4", out_m, lo_m, src_p, kGround, var.apply(nominal));
  c.add<Mosfet>(prefix + "_m5", out_p, lo_m, src_m, kGround, var.apply(nominal));
  c.add<Mosfet>(prefix + "_m6", out_m, lo_p, src_m, kGround, var.apply(nominal));
}

/// TIA opamp macromodel (one side): inverting transimpedance stage around a
/// single-pole OTA referenced to the mid-rail common mode.
void add_tia_side(Circuit& c, const MixerConfig& cfg, const std::string& side,
                  NodeId vcm, NodeId b, NodeId o) {
  // OTA: i(o -> gnd) = gm * (v(b) - v(vcm)): output pulls down when the
  // virtual ground rises, i.e. inverting.
  c.add<Vccs>("tia_ota_" + side, o, kGround, b, vcm, cfg.tia_ota_gm);
  c.add<Resistor>("tia_ro_" + side, o, vcm, cfg.tia_ota_rout);
  const double c_out = cfg.tia_ota_gm / (mathx::kTwoPi * cfg.tia_ota_gbw_hz);
  c.add<Capacitor>("tia_co_" + side, o, kGround, c_out);
  c.add<Resistor>("tia_rf_" + side, b, o, cfg.tia_rf);
  c.add<Capacitor>("tia_cf_" + side, b, o, cfg.tia_cf);
}

}  // namespace

QuadGeometry quad_geometry(const MixerConfig& config) {
  return QuadGeometry{config.quad_w, config.quad_l};
}

std::unique_ptr<TransistorMixer> build_transistor_mixer(const MixerConfig& cfg,
                                                         const DeviceVariation& var) {
  auto m = std::make_unique<TransistorMixer>();
  m->config = cfg;
  Circuit& c = m->circuit;
  add_supply_and_lo(*m, cfg);
  const TcaStage tca = add_tca(*m, cfg, var);
  const NodeId vdd = c.node("vdd");
  m->if_p = c.node("if_p");
  m->if_m = c.node("if_m");

  if (cfg.mode == MixerMode::kActive) {
    // Path 2 (Fig. 4): TCA output drives the common-source Gm MOS Mn1/Mn2
    // (Sw5-6 closed), tail current via the Sw7 current source, quad on top,
    // transmission-gate loads to VDD with the Cc low-pass (Fig. 5b).
    const NodeId gt = c.node("gm_tail");
    const NodeId c_p = c.node("core_p");
    const NodeId c_m = c.node("core_m");
    c.add<CurrentSource>("sw7_itail", gt, kGround, Waveform::dc(0.5e-3));
    c.add<Mosfet>("mn1", c_p, tca.out_p, gt, kGround, var.apply(tech::nmos(60e-6)));
    c.add<Mosfet>("mn2", c_m, tca.out_m, gt, kGround, var.apply(tech::nmos(60e-6)));
    add_quad(c, cfg, var, "quad", c_p, c_m, m->lo_p, m->lo_m, m->if_p, m->if_m);

    // Transmission gates (Fig. 5b): PMOS gate at 0, NMOS gate at VDD, sized
    // long so Rtol = Rp || Rn preserves headroom at the 0.6 mA core bias
    // (the IF common mode must stay well above mid-rail).
    const auto pm_nom = tech::pmos(1.8e-6, 260e-9);
    const auto nm_nom = tech::nmos(0.9e-6, 260e-9);
    c.add<Mosfet>("tg_p_p", m->if_p, kGround, vdd, vdd, var.apply(pm_nom));
    c.add<Mosfet>("tg_n_p", vdd, vdd, m->if_p, kGround, var.apply(nm_nom));
    c.add<Mosfet>("tg_p_m", m->if_m, kGround, vdd, vdd, var.apply(pm_nom));
    c.add<Mosfet>("tg_n_m", vdd, vdd, m->if_m, kGround, var.apply(nm_nom));
    c.add<Capacitor>("cc_p", m->if_p, kGround, cfg.cc_load);
    c.add<Capacitor>("cc_m", m->if_m, kGround, cfg.cc_load);
    return m;
  }

  // Passive mode — path 1: TCA output current, DC-decoupled, routed through
  // the PMOS switches Sw1-2 (on, in triode: degeneration resistance Rdeg)
  // into the quad sources; the quad commutates into the TIA virtual grounds.
  const NodeId vcm = c.node("vcm");
  c.add<VoltageSource>("vcm_src", vcm, kGround, Waveform::dc(cfg.vdd / 2.0));

  const NodeId x_p = c.node("x_p");  // after coupling capacitors
  const NodeId x_m = c.node("x_m");
  c.add<Capacitor>("cc1_p", tca.out_p, x_p, 10e-12);
  c.add<Capacitor>("cc1_m", tca.out_m, x_m, 10e-12);
  // DC bias for the floating coupled nodes.
  c.add<Resistor>("rb_p", x_p, vcm, 20e3);
  c.add<Resistor>("rb_m", x_m, vcm, 20e3);

  // PMOS Sw1-2: gates at 0 (Vlogic low), fully on, triode.
  const NodeId a_p = c.node("a_p");
  const NodeId a_m = c.node("a_m");
  const auto psw_nom = tech::pmos(cfg.sw12_w);
  if (cfg.rdeg_ideal_extra > 0.0) {
    const NodeId ai_p = c.node("ai_p");
    const NodeId ai_m = c.node("ai_m");
    c.add<Mosfet>("mp1", ai_p, kGround, x_p, vdd, var.apply(psw_nom));
    c.add<Mosfet>("mp2", ai_m, kGround, x_m, vdd, var.apply(psw_nom));
    c.add<Resistor>("rdeg_x_p", ai_p, a_p, cfg.rdeg_ideal_extra);
    c.add<Resistor>("rdeg_x_m", ai_m, a_m, cfg.rdeg_ideal_extra);
  } else {
    c.add<Mosfet>("mp1", a_p, kGround, x_p, vdd, var.apply(psw_nom));
    c.add<Mosfet>("mp2", a_m, kGround, x_m, vdd, var.apply(psw_nom));
  }

  add_quad(c, cfg, var, "quad", a_p, a_m, m->lo_p, m->lo_m, m->if_p, m->if_m);

  add_tia_side(c, cfg, "p", vcm, m->if_p, c.node("tia_out_p"));
  add_tia_side(c, cfg, "m", vcm, m->if_m, c.node("tia_out_m"));
  // The harness reads the TIA outputs as the IF port in passive mode.
  m->if_p = c.find_node("tia_out_p");
  m->if_m = c.find_node("tia_out_m");
  return m;
}

void set_rf_stimulus(TransistorMixer& mixer, const RfStimulus& stim) {
  spice::MultiToneWave p, n;
  p.offset = 0.55;
  n.offset = 0.55;
  for (const double f : stim.freqs_hz) {
    p.tones.push_back({stim.amplitude / 2.0, f, 0.0});
    n.tones.push_back({-stim.amplitude / 2.0, f, 0.0});
  }
  mixer.vrf_p->set_waveform(Waveform(p));
  mixer.vrf_m->set_waveform(Waveform(n));
}

std::unique_ptr<TransistorMixer> build_gilbert_baseline(const MixerConfig& cfg) {
  MixerConfig active = cfg;
  active.mode = MixerMode::kActive;
  return build_transistor_mixer(active);
}

std::unique_ptr<TransistorMixer> build_passive_baseline(const MixerConfig& cfg) {
  // No TCA: the 50-ohm source drives the degenerated quad directly into the
  // TIA — the classic low-gain, high-linearity passive mixer of refs [5][6].
  auto m = std::make_unique<TransistorMixer>();
  m->config = cfg;
  m->config.mode = MixerMode::kPassive;
  Circuit& c = m->circuit;
  add_supply_and_lo(*m, m->config);
  const NodeId vdd = c.node("vdd");

  const NodeId vcm = c.node("vcm");
  c.add<VoltageSource>("vcm_src", vcm, kGround, Waveform::dc(cfg.vdd / 2.0));

  m->rf_p = c.node("rf_p");
  m->rf_m = c.node("rf_m");
  m->vrf_p = &c.add<VoltageSource>("vrf_p", m->rf_p, kGround, Waveform::dc(0.55));
  m->vrf_m = &c.add<VoltageSource>("vrf_m", m->rf_m, kGround, Waveform::dc(0.55));

  const NodeId s_p = c.node("s_p");
  const NodeId s_m = c.node("s_m");
  c.add<Resistor>("rs_p", m->rf_p, s_p, 25.0);  // 50-ohm differential source
  c.add<Resistor>("rs_m", m->rf_m, s_m, 25.0);
  const NodeId a_p = c.node("a_p");
  const NodeId a_m = c.node("a_m");
  c.add<Resistor>("rdeg_p", s_p, a_p, cfg.rdeg);
  c.add<Resistor>("rdeg_m", s_m, a_m, cfg.rdeg);

  m->if_p = c.node("b_p");
  m->if_m = c.node("b_m");
  add_quad(c, m->config, DeviceVariation{}, "quad", a_p, a_m, m->lo_p, m->lo_m, m->if_p, m->if_m);
  (void)vdd;

  add_tia_side(c, m->config, "p", vcm, m->if_p, c.node("tia_out_p"));
  add_tia_side(c, m->config, "m", vcm, m->if_m, c.node("tia_out_m"));
  m->if_p = c.find_node("tia_out_p");
  m->if_m = c.find_node("tia_out_m");
  return m;
}

std::unique_ptr<OtaCircuit> build_two_stage_ota(double vdd_v, bool unity_feedback) {
  auto o = std::make_unique<OtaCircuit>();
  Circuit& c = o->circuit;
  const NodeId vdd = c.node("vdd");
  c.add<VoltageSource>("vdd_src", vdd, kGround, Waveform::dc(vdd_v));

  o->in_p = c.node("in_p");
  o->out = c.node("out");
  o->in_m = unity_feedback ? o->out : c.node("in_m");
  o->vin_p = &c.add<VoltageSource>("vin_p", o->in_p, kGround, Waveform::dc(0.6));
  if (!unity_feedback) {
    o->vin_m = &c.add<VoltageSource>("vin_m", o->in_m, kGround, Waveform::dc(0.6));
  }

  // First stage: NMOS input pair, PMOS mirror load, ideal tail sink
  // (high gain, per Fig. 7b's description).
  const NodeId tail = c.node("tail");
  const NodeId d1 = c.node("d1");   // mirror side
  const NodeId d2 = c.node("d2");   // first-stage output
  c.add<CurrentSource>("itail", tail, kGround, Waveform::dc(200e-6));
  // Signal-path polarity: raising m2's gate lowers d2 and raises the
  // output, so m2's gate is the non-inverting input (in_p); m1's gate is
  // the inverting input that takes the feedback.
  c.add<Mosfet>("m1", d1, o->in_m, tail, kGround, tech::nmos(20e-6, 130e-9));
  c.add<Mosfet>("m2", d2, o->in_p, tail, kGround, tech::nmos(20e-6, 130e-9));
  c.add<Mosfet>("m3", d1, d1, vdd, vdd, tech::pmos(10e-6, 130e-9));
  c.add<Mosfet>("m4", d2, d1, vdd, vdd, tech::pmos(10e-6, 130e-9));

  // Second stage: common-source NMOS with a current-source load (high
  // swing), Miller compensated with a zero-nulling resistor. Sized so the
  // 400 uA load bias corresponds to the ~0.7 V first-stage output level.
  c.add<Mosfet>("m6", o->out, d2, kGround, kGround, tech::nmos(3e-6, 130e-9));
  c.add<CurrentSource>("iload2", vdd, o->out, Waveform::dc(400e-6));
  const NodeId z = c.node("zc");
  c.add<Resistor>("rz", d2, z, 1e3);
  c.add<Capacitor>("cm", z, o->out, 1e-12);
  c.add<Capacitor>("cl", o->out, kGround, 2e-12);
  return o;
}

}  // namespace rfmix::core
