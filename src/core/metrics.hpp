// Named mixer metrics behind one uniform entry point.
//
// The service layer (src/svc) caches results by value identity, which
// needs a single function that maps (metric name, config, frequencies) to
// a number — the same shape a request carries over the wire. Each metric
// dispatches to the engine the benches already use: conversion gain and
// DSB NF come from the LPTV conversion-matrix model, IIP3 from the
// calibrated behavioral model through the standard two-tone intercept
// extraction.
#pragma once

#include <string>
#include <string_view>

#include "core/mixer_config.hpp"

namespace rfmix::core {

enum class MixerMetric {
  kGainDb,    // LPTV conversion gain [dB]
  kNfDsbDb,   // LPTV DSB noise figure [dB]
  kIip3Dbm,   // behavioral two-tone input intercept [dBm]
};

/// Wire name ("gain_db", "nf_dsb_db", "iip3_dbm").
std::string_view metric_name(MixerMetric metric);

/// Inverse of metric_name; throws std::invalid_argument on unknown names.
MixerMetric metric_from_name(std::string_view name);

struct MetricQuery {
  MixerMetric metric = MixerMetric::kGainDb;
  MixerConfig config;
  double f_if_hz = 5e6;
  /// When > 0 the LO is retuned so f_rf = f_lo + f_if (Fig. 8 convention);
  /// when 0 the config's own f_lo_hz anchors the RF. Ignored for IIP3.
  double f_rf_hz = 0.0;
};

/// Evaluate one metric. Deterministic for a given query at any thread
/// count (the LPTV batch engines guarantee bit-identical parallel
/// reductions), which is what makes the result cacheable by content hash.
double evaluate_metric(const MetricQuery& query);

}  // namespace rfmix::core
