// Configuration of the reconfigurable down-conversion mixer (paper Fig. 4).
//
// One structure drives all three analysis engines (transistor-level SPICE,
// LPTV conversion matrix, calibrated behavioral model), so a parameter
// change propagates consistently through every bench.
#pragma once

#include "frontend/planner.hpp"

namespace rfmix::core {

using frontend::MixerMode;

struct MixerConfig {
  MixerMode mode = MixerMode::kActive;

  // Environment ----------------------------------------------------------
  double temperature_k = 300.0;  // junction temperature for noise and gm

  // Supply / LO --------------------------------------------------------
  double vdd = 1.2;            // [V], the paper's headline supply
  double f_lo_hz = 2.4e9;      // LO frequency
  double lo_amplitude = 0.6;   // LO drive amplitude around its common mode [V]
  double lo_common_mode = 0.6; // LO common-mode level [V]
  double lo_rise_fraction = 0.05;  // transition width as fraction of period
  double lo_phase_frac = 0.0;  // LO phase offset as a fraction of the period
                               // (0.25 = quadrature path of an I/Q pair)

  // RF port ---------------------------------------------------------------
  // Series resistance between the RF bias/stimulus sources and the gm-stage
  // gates. Zero keeps the gates ideally driven (transient benches); the PAC
  // harness sets 50 ohm so small-signal current can be injected at the
  // gates.
  double rf_series_r = 0.0;

  // Transconductance amplifier (Fig. 3) ---------------------------------
  double tca_gm = 20e-3;        // effective differential transconductance [S]
  double tca_rout = 8e3;        // TCA output resistance per side [ohm]
  double tca_cpar = 60e-15;     // CPAR at the TCA output node (paper stresses
                                // minimizing this for op-amp noise reasons)
  double tca_bias_ma = 1.5;     // per-side bias current for power accounting
  double tca_nf_gamma = 0.85;   // effective channel-noise factor of the gm devices
  double tca_flicker_corner_hz = 300e3;  // input-referred 1/f corner of the TCA

  // Switching quad ------------------------------------------------------
  double quad_w = 40e-6;        // LO switch width [m]
  double quad_ron = 34.0;       // on-resistance per switch used by the LPTV model
  double quad_l = 65e-9;

  // PMOS reconfiguration switches Sw1-2 (passive-mode degeneration) ------
  double sw12_w = 30e-6;
  double rdeg = 45.0;           // Sw1-2 on-resistance = degeneration resistor
  // Extra ideal series resistance in the passive path (transistor-level
  // ablation knob separating "linear degeneration" from the PMOS's own
  // nonlinear triode resistance).
  double rdeg_ideal_extra = 0.0;

  // Transmission-gate load (active mode, Fig. 5b) -----------------------
  double tg_resistance = 4.15e3; // Rtol = Rp || Rn
  double cc_load = 3.84e-12;    // Cc low-pass capacitor at the IF output

  // Transimpedance amplifier (Fig. 7) ------------------------------------
  double tia_rf = 2.46e3;       // feedback resistor RF
  double tia_cf = 5.39e-12;     // feedback capacitor CF
  double tia_ota_gm = 40e-3;    // OTA first-stage transconductance
  double tia_ota_rout = 40e3;   // OTA output resistance
  double tia_ota_gbw_hz = 900e6; // gain-bandwidth of the two-stage OTA model
  double tia_bias_ma = 3.3;     // the paper: "TIA draws a total of 3.3 mA"
  double tia_input_noise_nv = 6.8;  // OTA input-referred noise [nV/sqrt(Hz)]
  double tia_flicker_corner_hz = 60e3;  // OTA 1/f corner (sets the passive-mode
                                        // IF noise corner, < 100 kHz per §III)

  // Switching-pair direct noise in active mode (Terrovitis-Meyer): effective
  // transconductance of the pair during commutation overlap.
  double active_pair_noise_gm = 2.7e-3;
  double active_pair_flicker_corner_hz = 900e3;

  // Misc power bookkeeping -----------------------------------------------
  double lo_buffer_ma = 1.0;     // LO buffer current (both modes)
  double bias_overhead_ma = 0.5;
  double core_bias_ma = 3.3;     // Sw7 current source feeding the Gilbert core
                                 // (active mode only)

  /// Total supply current for the configured mode [A]. In active mode the
  /// TIA is switched off (p3 open) but the Gilbert core carries the Sw7 tail
  /// current; in passive mode the core is unbiased and the TIA's 3.3 mA is
  /// on — the paper's power-saving argument, sections II-B/II-C. The two
  /// land within ~0.1 mA of each other, matching Table I (9.36 vs 9.24 mW).
  double supply_current_a() const {
    const double common = (lo_buffer_ma + bias_overhead_ma) * 1e-3;
    const double tca = 2.0 * tca_bias_ma * 1e-3;
    if (mode == MixerMode::kActive) {
      return common + tca + core_bias_ma * 1e-3;
    }
    // Passive: the TCA sees a lighter DC load (no core current mirrored).
    return common + tca + tia_bias_ma * 1e-3 - 0.1e-3;
  }

  double power_mw() const { return supply_current_a() * vdd * 1e3; }
};

}  // namespace rfmix::core
