#include "core/image_reject.hpp"

#include <cmath>
#include <complex>

#include "core/lptv_model.hpp"
#include "lptv/lptv.hpp"
#include "mathx/units.hpp"

namespace rfmix::core {

namespace {

/// Complex conversion transfers of one mixer path: wanted sideband
/// (+1 -> 0) and image sideband (-1 -> 0), EMF-referenced.
struct PathTransfers {
  std::complex<double> wanted;
  std::complex<double> image;
};

PathTransfers path_transfers(const MixerConfig& cfg, double f_if) {
  const auto model = build_lptv_mixer(cfg);
  lptv::ConversionAnalysis an(model->circuit, {cfg.f_lo_hz, 8});
  PathTransfers t;
  t.wanted = an.conversion_transimpedance(f_if, 0, model->in, +1, model->out_p,
                                          model->out_m, 0);
  t.image = an.conversion_transimpedance(f_if, 0, model->in, -1, model->out_p,
                                         model->out_m, 0);
  return t;
}

}  // namespace

ImageRejectionResult lptv_image_rejection(const MixerConfig& config, double f_if_hz,
                                          double lo_phase_error_deg,
                                          double gain_error_db) {
  MixerConfig i_cfg = config;
  MixerConfig q_cfg = config;
  q_cfg.lo_phase_frac = config.lo_phase_frac + 0.25 + lo_phase_error_deg / 360.0;
  q_cfg.tca_gm = config.tca_gm * mathx::voltage_ratio_from_db(gain_error_db);

  const PathTransfers i_path = path_transfers(i_cfg, f_if_hz);
  const PathTransfers q_path = path_transfers(q_cfg, f_if_hz);

  // Complex IF combination Z = I -+ jQ. The engine's sideband -1 transfer
  // already is the (negative-frequency) image response at the +f_if output,
  // so both sidebands combine with the same operator; the quadrature LO's
  // e^{-+j pi/2} conversion phases make one sideband add and the other
  // cancel.
  const std::complex<double> j(0.0, 1.0);
  auto combine = [&](double sign) {
    const std::complex<double> wanted = i_path.wanted + sign * j * q_path.wanted;
    const std::complex<double> image = i_path.image + sign * j * q_path.image;
    return std::pair<double, double>(std::abs(wanted), std::abs(image));
  };
  const auto [w_plus, im_plus] = combine(+1.0);
  const auto [w_minus, im_minus] = combine(-1.0);

  // Pick the combiner polarity that selects the wanted sideband.
  const double wanted = std::max(w_plus, w_minus);
  const double image = w_plus > w_minus ? im_plus : im_minus;

  ImageRejectionResult r;
  // The complex combination doubles the single-path amplitude; report the
  // per-path-equivalent gain (divide by 2) so it matches FIG8's numbers.
  r.wanted_gain_db = mathx::db_from_voltage_ratio(wanted / 2.0);
  r.image_gain_db = mathx::db_from_voltage_ratio(std::max(image / 2.0, 1e-12));
  r.irr_db = mathx::db_from_voltage_ratio(wanted / std::max(image, 1e-12));
  return r;
}

double analytic_irr_db(double gain_error_db, double phase_error_deg) {
  const double g = mathx::voltage_ratio_from_db(gain_error_db);
  const double th = phase_error_deg * mathx::kPi / 180.0;
  const double num = 1.0 + 2.0 * g * std::cos(th) + g * g;
  const double den = 1.0 - 2.0 * g * std::cos(th) + g * g;
  return mathx::db_from_power_ratio(num / den);
}

}  // namespace rfmix::core
