#include "core/metrics.hpp"

#include <stdexcept>
#include <vector>

#include "core/behavioral.hpp"
#include "core/lptv_model.hpp"
#include "rf/twotone.hpp"

namespace rfmix::core {

std::string_view metric_name(MixerMetric metric) {
  switch (metric) {
    case MixerMetric::kGainDb: return "gain_db";
    case MixerMetric::kNfDsbDb: return "nf_dsb_db";
    case MixerMetric::kIip3Dbm: return "iip3_dbm";
  }
  return "unknown";
}

MixerMetric metric_from_name(std::string_view name) {
  if (name == "gain_db") return MixerMetric::kGainDb;
  if (name == "nf_dsb_db") return MixerMetric::kNfDsbDb;
  if (name == "iip3_dbm") return MixerMetric::kIip3Dbm;
  throw std::invalid_argument("unknown mixer metric '" + std::string(name) +
                              "' (expected gain_db, nf_dsb_db, or iip3_dbm)");
}

double evaluate_metric(const MetricQuery& query) {
  switch (query.metric) {
    case MixerMetric::kGainDb:
      if (query.f_rf_hz > 0.0)
        return lptv_conversion_gain_at_rf_db(query.config, query.f_rf_hz, query.f_if_hz);
      return lptv_conversion_gain_db(query.config, query.f_if_hz);
    case MixerMetric::kNfDsbDb:
      return lptv_nf_dsb(query.config, query.f_if_hz).nf_dsb_db;
    case MixerMetric::kIip3Dbm: {
      const BehavioralMixer mixer(query.config);
      const std::vector<double> pins = {-40.0, -35.0, -30.0, -25.0, -20.0};
      const rf::InterceptResult r = rf::sweep_and_extract(
          pins, [&](double pin) { return mixer.two_tone(pin); });
      return r.iip3_dbm;
    }
  }
  throw std::invalid_argument("unhandled mixer metric");
}

}  // namespace rfmix::core
