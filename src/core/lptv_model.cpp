#include "core/lptv_model.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/units.hpp"
#include "rf/nf.hpp"
#include "runtime/parallel_for.hpp"

namespace rfmix::core {

using mathx::kBoltzmann;
using mathx::kTwoPi;

namespace {

/// 4kT at the configured junction temperature [W/Hz per ohm-conductance].
double four_kt(const MixerConfig& cfg) { return 4.0 * kBoltzmann * cfg.temperature_k; }

/// Mobility degradation scales the achievable transconductance at fixed
/// bias current: gm ~ sqrt(kp * I) with kp ~ (T/300)^-1.5.
double gm_at_temperature(const MixerConfig& cfg) {
  return cfg.tca_gm * std::pow(300.0 / cfg.temperature_k, 0.75);
}

/// Input-network pole frequencies per mode. These are NOT the -3 dB band
/// edges themselves: the paper's bandwidths (1-5.5 GHz active, 0.5-5.1 GHz
/// passive) are relative to the 2.45 GHz reference gain, so the first-order
/// poles are placed where the *relative* response crosses -3 dB at the
/// Table I edges.
struct BandPoles {
  double f_hp, f_lp;
};

BandPoles band_poles(MixerMode mode) {
  // Two cascaded first-order sections per edge; each pole contributes half
  // the 3 dB of relative roll-off at the Table I edge frequencies.
  if (mode == MixerMode::kActive) return {0.66e9, 5.6e9};
  return {0.31e9, 6.5e9};
}

/// Stationary MOS-like noise PSD: white with a 1/f corner.
std::function<double(double)> mos_noise_psd(double white_a2_hz, double corner_hz) {
  return [white_a2_hz, corner_hz](double f) {
    return white_a2_hz * (1.0 + corner_hz / std::max(f, 1e-3));
  };
}

}  // namespace

std::unique_ptr<LptvMixerModel> build_lptv_mixer(const MixerConfig& cfg) {
  const double kFourKT = four_kt(cfg);
  auto model = std::make_unique<LptvMixerModel>();
  lptv::LptvCircuit& c = model->circuit;
  const int n_samp = c.num_samples();
  const BandPoles edges = band_poles(cfg.mode);

  // ---- input network: EMF injection, source resistance, input pole,
  //      coupling high-pass ------------------------------------------------
  const int in = c.add_node();   // EMF node: 1 S to ground, inject 1 A -> 1 V
  const int n1 = c.add_node();
  const int g1 = c.add_node();   // first low-pass section output
  const int g = c.add_node();    // TCA gate node (second low-pass section)
  const int ga = c.add_node();   // first coupling high-pass output
  const int gq = c.add_node();   // effective gm input after both couplings

  model->in = in;
  model->rs = 50.0;

  c.add_conductance(in, 0, 1.0);
  c.add_resistor(in, n1, model->rs);
  // Two cascaded low-pass sections model the TCA's input and internal poles
  // (gate resistance + Cgs, then an internal node at a higher impedance
  // level so the sections do not load each other).
  const double r_pole = 25.0;
  const double r_pole2 = 500.0;
  c.add_resistor(n1, g1, r_pole);
  c.add_capacitance(g1, 0, 1.0 / (kTwoPi * (model->rs + r_pole) * edges.f_lp));
  c.add_resistor(g1, g, r_pole2);
  c.add_capacitance(g, 0, 1.0 / (kTwoPi * r_pole2 * edges.f_lp));

  // Two cascaded coupling high-pass sections ("DC decoupled to switching
  // stage", section II): each CR corner sits at f_hp.
  const double r_bias = 10e3;
  c.add_capacitance(g, ga, 1.0 / (kTwoPi * r_bias * edges.f_hp));
  c.add_resistor(ga, 0, r_bias);
  c.add_capacitance(ga, gq, 1.0 / (kTwoPi * r_bias * edges.f_hp));
  c.add_resistor(gq, 0, r_bias);

  // Input-network noise. The gate bias elements are treated as noiseless:
  // the design biases through large choke/current-reuse networks whose noise
  // is negligible in-band; the r_bias resistors above only shape the
  // low-frequency edge.
  c.add_noise_current(in, n1, [rs = model->rs, kFourKT](double) { return kFourKT / rs; },
                      "source");
  // Only the physical gate resistance contributes noise; the second section
  // models the TCA's internal gm roll-off (not a physical resistor), so it
  // is noiseless.
  c.add_noise_current(n1, g1, [r_pole, kFourKT](double) { return kFourKT / r_pole; },
                      "tca.rin");

  const double gm_half = gm_at_temperature(cfg) / 2.0;

  if (cfg.mode == MixerMode::kPassive) {
    // ---- TCA -> Rdeg -> switch quad -> TIA --------------------------------
    const int x_p = c.add_node(), x_m = c.add_node();  // TCA outputs
    const int a_p = c.add_node(), a_m = c.add_node();  // quad inputs
    const int b_p = c.add_node(), b_m = c.add_node();  // TIA virtual grounds
    const int o_p = c.add_node(), o_m = c.add_node();  // IF outputs
    model->out_p = o_p;
    model->out_m = o_m;

    // Differential transconductor: +gm/2 into x_p, -gm/2 into x_m.
    c.add_vccs(0, x_p, gq, 0, gm_half);
    c.add_vccs(x_m, 0, gq, 0, gm_half);
    for (const int x : {x_p, x_m}) {
      c.add_resistor(x, 0, cfg.tca_rout);
      c.add_capacitance(x, 0, cfg.tca_cpar);
    }
    // TCA channel noise: white + flicker, one source per side.
    const double tca_white = kFourKT * cfg.tca_nf_gamma * gm_half;
    c.add_noise_current(x_p, 0, mos_noise_psd(tca_white, cfg.tca_flicker_corner_hz),
                        "tca.m1");
    c.add_noise_current(x_m, 0, mos_noise_psd(tca_white, cfg.tca_flicker_corner_hz),
                        "tca.m2");

    // PMOS Sw1-2 acting as degeneration resistance (paper: "width of PMOS is
    // chosen to provide degeneration resistance").
    c.add_resistor(x_p, a_p, cfg.rdeg);
    c.add_resistor(x_m, a_m, cfg.rdeg);
    c.add_noise_current(x_p, a_p, [r = cfg.rdeg, kFourKT](double) { return kFourKT / r; },
                        "sw12.rdeg_p");
    c.add_noise_current(x_m, a_m, [r = cfg.rdeg, kFourKT](double) { return kFourKT / r; },
                        "sw12.rdeg_m");

    // Switch quad: periodic conductances with cyclostationary 4kT g(t).
    const double g_on = 1.0 / cfg.quad_ron;
    const double g_off = 1e-9;
    auto add_switch = [&](int a, int b, double phase, const std::string& label) {
      lptv::PeriodicWave gw =
          lptv::square_wave(n_samp, g_off, g_on, cfg.lo_rise_fraction,
                            phase + cfg.lo_phase_frac);
      lptv::PeriodicWave sn(gw.size());
      for (std::size_t i = 0; i < gw.size(); ++i) sn[i] = kFourKT * gw[i];
      c.add_periodic_conductance(a, b, gw);
      c.add_cyclo_noise_current(a, b, sn, label);
    };
    add_switch(a_p, b_p, 0.0, "quad.m3");
    add_switch(a_p, b_m, 0.5, "quad.m4");
    add_switch(a_m, b_p, 0.5, "quad.m5");
    add_switch(a_m, b_m, 0.0, "quad.m6");

    // TIA per side: inverting opamp macromodel with RF || CF feedback.
    const double c_out = cfg.tia_ota_gm / (kTwoPi * cfg.tia_ota_gbw_hz);
    auto add_tia = [&](int b, int o, const std::string& side) {
      c.add_vccs(o, 0, b, 0, cfg.tia_ota_gm);
      c.add_resistor(o, 0, cfg.tia_ota_rout);
      c.add_capacitance(o, 0, c_out);
      c.add_resistor(b, o, cfg.tia_rf);
      c.add_capacitance(b, o, cfg.tia_cf);
      // Opamp input-referred voltage noise en maps to gm*en output current
      // in this macromodel; includes the OTA's own 1/f corner.
      const double en = cfg.tia_input_noise_nv * 1e-9;
      const double iout2 = cfg.tia_ota_gm * en * cfg.tia_ota_gm * en;
      c.add_noise_current(o, 0, mos_noise_psd(iout2, cfg.tia_flicker_corner_hz),
                          "tia.ota_" + side);
      c.add_noise_current(b, o, [r = cfg.tia_rf, kFourKT](double) { return kFourKT / r; },
                          "tia.rf_" + side);
    };
    add_tia(b_p, o_p, "p");
    add_tia(b_m, o_m, "m");
    return model;
  }

  // ---- Active mode: commutated Gm into the transmission-gate load --------
  const int out_p = c.add_node(), out_m = c.add_node();
  model->out_p = out_p;
  model->out_m = out_m;

  // Double-balanced commutation: each output sees +-gm/2 square-wave
  // transconductance from the RF gate voltage.
  c.add_periodic_vccs(0, out_p, gq, 0,
                      lptv::square_wave(n_samp, -gm_half, gm_half,
                                        cfg.lo_rise_fraction, cfg.lo_phase_frac));
  c.add_periodic_vccs(0, out_m, gq, 0,
                      lptv::square_wave(n_samp, -gm_half, gm_half,
                                        cfg.lo_rise_fraction, 0.5 + cfg.lo_phase_frac));

  // Gm-MOS channel noise is commutated with the signal (chopped): model as
  // cyclostationary with constant intensity split across the two branches.
  const double gm_noise = kFourKT * cfg.tca_nf_gamma * gm_half;
  c.add_noise_current(out_p, 0, mos_noise_psd(gm_noise, cfg.tca_flicker_corner_hz),
                      "gmstage.m1");
  c.add_noise_current(out_m, 0, mos_noise_psd(gm_noise, cfg.tca_flicker_corner_hz),
                      "gmstage.m2");

  // Switching-pair direct noise: the LO pair injects white + 1/f noise at
  // the output during commutation transitions (Terrovitis-Meyer mechanism).
  // Modeled as a stationary output current source with an effective pair
  // transconductance and the pair's own flicker corner, which sets the
  // active mode's IF noise corner.
  const double sw_white = kFourKT * cfg.tca_nf_gamma * cfg.active_pair_noise_gm;
  c.add_noise_current(out_p, 0,
                      mos_noise_psd(sw_white, cfg.active_pair_flicker_corner_hz),
                      "quad.pair_p");
  c.add_noise_current(out_m, 0,
                      mos_noise_psd(sw_white, cfg.active_pair_flicker_corner_hz),
                      "quad.pair_m");

  // Transmission-gate resistive load to (AC-ground) VDD plus Cc low-pass
  // (Fig. 5b): gain tunes with tg_resistance, pole with cc_load.
  for (const int o : {out_p, out_m}) {
    c.add_resistor(o, 0, cfg.tg_resistance);
    c.add_capacitance(o, 0, cfg.cc_load);
    c.add_noise_current(o, 0, [r = cfg.tg_resistance, kFourKT](double) { return kFourKT / r; },
                        "tg.load");
  }
  return model;
}

namespace {

lptv::ConversionOptions conversion_options(const MixerConfig& cfg) {
  lptv::ConversionOptions opts;
  opts.f_lo = cfg.f_lo_hz;
  opts.harmonics = 8;
  return opts;
}

}  // namespace

double lptv_conversion_gain_db(const MixerConfig& cfg, double f_if_hz) {
  const auto model = build_lptv_mixer(cfg);
  lptv::ConversionAnalysis an(model->circuit, conversion_options(cfg));
  // 1 A into the 1 S input conductance = 1 V EMF at sideband +1 (RF =
  // f_lo + f_if); read the differential IF output at sideband 0.
  const lptv::Complex h = an.conversion_transimpedance(
      f_if_hz, 0, model->in, +1, model->out_p, model->out_m, 0);
  return mathx::db_from_voltage_ratio(std::abs(h));
}

double lptv_conversion_gain_at_rf_db(const MixerConfig& cfg, double f_rf_hz,
                                     double f_if_hz) {
  if (f_rf_hz <= f_if_hz)
    throw std::invalid_argument("lptv_conversion_gain_at_rf_db: f_rf must exceed f_if");
  MixerConfig tuned = cfg;
  tuned.f_lo_hz = f_rf_hz - f_if_hz;  // low-side LO tracking the RF sweep
  return lptv_conversion_gain_db(tuned, f_if_hz);
}

LptvNfPoint lptv_nf_dsb(const MixerConfig& cfg, double f_if_hz) {
  const auto model = build_lptv_mixer(cfg);
  lptv::ConversionAnalysis an(model->circuit, conversion_options(cfg));

  // Factor the block system once; both sideband injections reuse the forward
  // LU and the noise solve reuses the adjoint LU (2 factorizations, not 6).
  const lptv::ConversionAnalysis::Factored sys = an.factor(f_if_hz);
  const lptv::Complex h_up = sys.solve_current_injection(0, model->in, +1)
                                 .vd(0, model->out_p, model->out_m);
  const lptv::Complex h_dn = sys.solve_current_injection(0, model->in, -1)
                                 .vd(0, model->out_p, model->out_m);

  const lptv::LptvNoiseResult noise = sys.output_noise(model->out_p, model->out_m);

  // DSB noise figure: the signal is taken as arriving in both sidebands
  // (|H+1|^2 + |H-1|^2 in the denominator).
  const double gain2 = std::norm(h_up) + std::norm(h_dn);
  // NF is referenced to the IEEE 290 K source temperature regardless of the
  // junction temperature the devices run at.
  const double source_part = 4.0 * kBoltzmann * 290.0 * model->rs * gain2;

  LptvNfPoint pt;
  pt.f_if_hz = f_if_hz;
  pt.output_noise_v2_hz = noise.total_output_psd_v2_hz;
  pt.gain_db = mathx::db_from_voltage_ratio(std::abs(h_up));
  pt.nf_dsb_db =
      mathx::db_from_power_ratio(noise.total_output_psd_v2_hz / source_part);
  return pt;
}

std::vector<double> lptv_gain_vs_rf_sweep_db(const MixerConfig& cfg,
                                             const std::vector<double>& f_rf_hz,
                                             double f_if_hz) {
  // Each point retunes the LO and builds a private model, so points are
  // independent and run concurrently on the runtime pool.
  return runtime::parallel_map(f_rf_hz.size(), [&](std::size_t i) {
    return lptv_conversion_gain_at_rf_db(cfg, f_rf_hz[i], f_if_hz);
  });
}

std::vector<LptvNfPoint> lptv_nf_sweep(const MixerConfig& cfg,
                                       const std::vector<double>& f_if_hz) {
  return runtime::parallel_map(f_if_hz.size(), [&](std::size_t i) {
    return lptv_nf_dsb(cfg, f_if_hz[i]);
  });
}

}  // namespace rfmix::core
