#include "core/behavioral.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mathx/units.hpp"

namespace rfmix::core {

using mathx::dbm_from_sine_amplitude;
using mathx::sine_amplitude_from_dbm;

BehavioralModeSpec paper_active_spec() {
  BehavioralModeSpec s;
  s.gain_db = 29.2;
  s.f_low_3db_hz = 1.0e9;
  s.f_high_3db_hz = 5.5e9;
  s.if_3db_hz = 12e6;
  s.nf_db_at_5mhz = 7.6;
  // Active Gilbert cells commutate a DC bias current, so the switching pair
  // contributes 1/f at the output; the paper's Fig. 9 shows the active curve
  // rising earlier than the passive one.
  s.flicker_corner_hz = 900e3;
  s.iip3_dbm = -11.9;
  s.iip2_dbm = 66.0;  // "IIP2 > 65 for both cases" (section IV)
  s.p1db_dbm = -24.5;
  return s;
}

BehavioralModeSpec paper_passive_spec() {
  BehavioralModeSpec s;
  s.gain_db = 25.5;
  s.f_low_3db_hz = 0.5e9;
  s.f_high_3db_hz = 5.1e9;
  s.if_3db_hz = 12e6;
  s.nf_db_at_5mhz = 10.2;
  s.flicker_corner_hz = 80e3;  // "corner frequency is less than 100 kHz"
  s.iip3_dbm = 6.57;
  s.iip2_dbm = 67.0;
  s.p1db_dbm = -14.0;
  return s;
}

namespace {

constexpr double kRefRf = 2.45e9;  // Fig. 9's RF anchor frequency
constexpr double kRefIf = 5e6;     // the paper quotes everything at 5 MHz IF

/// Second-order band-pass magnitude: two cascaded first-order sections per
/// edge, matching the LPTV model's input network.
double band_mag(double f, double f_hp_pole, double f_lp_pole) {
  const double x = f / f_hp_pole;
  const double y = f / f_lp_pole;
  const double hp = (x * x) / (1.0 + x * x);  // |H|^2 of one section
  const double lp = 1.0 / (1.0 + y * y);
  return hp * hp * lp * lp;  // |H|^2 of the two-section-per-edge cascade
}

/// Solve for pole frequencies such that the response *relative to kRefRf*
/// is exactly -3 dB at the spec's band edges (the Table I bandwidths are
/// relative figures). Alternating bisection; converges in a few rounds
/// because the two edges couple weakly.
void solve_band_poles(double f_low_edge, double f_high_edge, double& f_hp,
                      double& f_lp) {
  f_hp = f_low_edge;
  f_lp = f_high_edge;
  const double target = std::pow(10.0, -3.0 / 10.0);  // -3 dB in |H|^2
  for (int round = 0; round < 60; ++round) {
    // Adjust the high-pass pole for the low edge.
    double lo = f_low_edge / 20.0, hi = f_low_edge * 20.0;
    for (int it = 0; it < 60; ++it) {
      const double mid = std::sqrt(lo * hi);
      const double rel = band_mag(f_low_edge, mid, f_lp) / band_mag(kRefRf, mid, f_lp);
      (rel > target ? lo : hi) = mid;
    }
    f_hp = std::sqrt(lo * hi);
    // Adjust the low-pass pole for the high edge.
    lo = f_high_edge / 20.0;
    hi = f_high_edge * 20.0;
    for (int it = 0; it < 60; ++it) {
      const double mid = std::sqrt(lo * hi);
      const double rel = band_mag(f_high_edge, f_hp, mid) / band_mag(kRefRf, f_hp, mid);
      (rel > target ? hi : lo) = mid;
    }
    f_lp = std::sqrt(lo * hi);
  }
}

double if_pole_mag(double f, double f_pole) {
  return 1.0 / std::sqrt(1.0 + (f / f_pole) * (f / f_pole));
}

}  // namespace

BehavioralMixer::BehavioralMixer(const MixerConfig& config)
    : BehavioralMixer(config, config.mode == MixerMode::kActive ? paper_active_spec()
                                                                : paper_passive_spec()) {}

BehavioralMixer::BehavioralMixer(const MixerConfig& config, BehavioralModeSpec spec)
    : config_(config), spec_(spec) {
  if (spec_.f_low_3db_hz <= 0.0 || spec_.f_high_3db_hz <= spec_.f_low_3db_hz)
    throw std::invalid_argument("BehavioralMixer: bad band edges");
  if (spec_.if_3db_hz <= 0.0 || spec_.flicker_corner_hz <= 0.0)
    throw std::invalid_argument("BehavioralMixer: bad IF/flicker parameters");
  solve_band_poles(spec_.f_low_3db_hz, spec_.f_high_3db_hz, f_hp_pole_, f_lp_pole_);
}

double BehavioralMixer::a1() const {
  return mathx::voltage_ratio_from_db(spec_.gain_db);
}

double BehavioralMixer::a3() const {
  // A_IIP3^2 = (4/3)|a1/a3|  ->  |a3| = (4/3) a1 / A_IIP3^2, compressive sign.
  const double a_iip3 = sine_amplitude_from_dbm(spec_.iip3_dbm);
  return -(4.0 / 3.0) * a1() / (a_iip3 * a_iip3);
}

double BehavioralMixer::a2() const {
  // A_IIP2 = a1/a2.
  const double a_iip2 = sine_amplitude_from_dbm(spec_.iip2_dbm);
  return a1() / a_iip2;
}

double BehavioralMixer::conversion_gain_db(double f_rf_hz, double f_if_hz) const {
  if (f_rf_hz <= 0.0) throw std::invalid_argument("conversion_gain_db: f_rf must be > 0");
  // band_mag returns |H|^2, so the band term is a power ratio.
  const double band = band_mag(f_rf_hz, f_hp_pole_, f_lp_pole_) /
                      band_mag(kRefRf, f_hp_pole_, f_lp_pole_);
  const double ifr = if_pole_mag(f_if_hz, spec_.if_3db_hz) /
                     if_pole_mag(kRefIf, spec_.if_3db_hz);
  return spec_.gain_db + mathx::db_from_power_ratio(band) +
         mathx::db_from_voltage_ratio(ifr);
}

double BehavioralMixer::gain_vs_if_db(double f_if_hz) const {
  return conversion_gain_db(kRefRf, f_if_hz);
}

double BehavioralMixer::nf_dsb_db(double f_if_hz) const {
  if (f_if_hz <= 0.0) throw std::invalid_argument("nf_dsb_db: f_if must be > 0");
  // White floor calibrated so the 5 MHz anchor lands exactly on the spec.
  const double f_anchor = mathx::nf_factor_from_db(spec_.nf_db_at_5mhz);
  const double white = f_anchor / (1.0 + spec_.flicker_corner_hz / kRefIf);
  return mathx::nf_db_from_factor(white * (1.0 + spec_.flicker_corner_hz / f_if_hz));
}

namespace {

/// Output swing soft-clamp: amplitude-domain saturation with a sharp knee,
/// modeling the op-amp/TG output compression the paper blames for the
/// 1 dB point ("the output compression point of the OPAMP limits the input
/// referred linearity", section III).
double soft_clamp(double amp, double vmax) {
  const double r = amp / vmax;
  return amp / std::pow(1.0 + r * r * r * r, 0.25);
}

}  // namespace

double BehavioralMixer::single_tone_pout_dbm(double pin_dbm) const {
  const double a = sine_amplitude_from_dbm(pin_dbm);
  const double g1 = a1(), g3 = a3();
  // Single-tone cubic compression of the fundamental.
  double fund = g1 * a + 0.75 * g3 * a * a * a;
  fund = std::max(fund, 1e-12);
  // Output swing limit calibrated so P1dB matches the spec: solve for the
  // clamp level that produces exactly 1 dB of total compression at the
  // reported P1dB input. Bisection on vmax (monotone).
  const double a_1db = sine_amplitude_from_dbm(spec_.p1db_dbm);
  double ideal_1db = g1 * a_1db + 0.75 * g3 * a_1db * a_1db * a_1db;
  ideal_1db = std::max(ideal_1db, 1e-12);
  const double target = g1 * a_1db * mathx::voltage_ratio_from_db(-1.0);
  double lo = 1e-4, hi = 100.0;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    (soft_clamp(ideal_1db, mid) < target ? lo : hi) = mid;
  }
  const double vmax = 0.5 * (lo + hi);
  return dbm_from_sine_amplitude(soft_clamp(fund, vmax));
}

rf::ToneLevels BehavioralMixer::two_tone(double pin_dbm) const {
  const double a = sine_amplitude_from_dbm(pin_dbm);
  const double g1 = a1(), g2 = a2(), g3 = a3();
  rf::ToneLevels t;
  t.pin_dbm = pin_dbm;
  // Two-tone fundamental including the 9/4 cross-compression term.
  const double fund = std::max(g1 * a + 2.25 * g3 * a * a * a, 1e-12);
  t.fund_dbm = dbm_from_sine_amplitude(fund);
  t.im3_dbm = dbm_from_sine_amplitude(0.75 * std::abs(g3) * a * a * a);
  t.im2_dbm = dbm_from_sine_amplitude(g2 * a * a);
  return t;
}

frontend::MixerModePerf BehavioralMixer::perf() const {
  frontend::MixerModePerf p;
  p.gain_db = spec_.gain_db;
  p.nf_db = spec_.nf_db_at_5mhz;
  p.iip3_dbm = spec_.iip3_dbm;
  p.power_mw = power_mw();
  return p;
}

}  // namespace rfmix::core
