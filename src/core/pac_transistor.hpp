// True periodic AC analysis of the transistor-level mixer — the fourth
// engine. Pipeline:
//   1. find the large-signal periodic steady state (PSS) of the transistor
//      circuit under the LO drive (spice/pss.hpp);
//   2. linearize the nonlinear devices at every time sample of the orbit,
//      producing the sampled small-signal Jacobian G(t_k) plus the constant
//      capacitance matrix C;
//   3. solve the harmonic conversion-matrix system over those samples
//      (lptv/matrix_conversion.hpp) to get the sideband transfer functions.
//
// Unlike core/lptv_model.* (hand-built element values) this path involves
// no modeling choices: whatever commutation waveforms, overlap, and
// conduction angles the transistor circuit actually produces are what the
// analysis linearizes. Agreement between this engine and the transient
// two-tone measurements validates both.
#pragma once

#include "core/circuits.hpp"
#include "core/mixer_config.hpp"

namespace rfmix::core {

struct PacResult {
  bool pss_converged = false;
  int pss_periods = 0;
  /// Conversion gain from the RF gate voltage at f_lo + f_if to the
  /// differential IF output at f_if [dB].
  double conversion_gain_db = 0.0;
  /// Gain from the image sideband (f_lo - f_if) for reference.
  double image_gain_db = 0.0;
};

struct PacOptions {
  int samples_per_period = 64;
  int harmonics = 6;
};

/// Run PSS + PAC on a freshly built transistor-level mixer in
/// `config.mode`.
PacResult pac_conversion_gain(const MixerConfig& config, double f_if_hz = 5e6,
                              const PacOptions& opts = {});

struct PnoiseResult {
  bool pss_converged = false;
  double output_noise_v2_hz = 0.0;  // total differential output PSD at f_if
  double nf_dsb_db = 0.0;           // DSB NF referenced to the 50-ohm source
  double gain_db = 0.0;             // EMF-referenced conversion gain
};

/// Transistor-level PNOISE: every device's noise sources are evaluated at
/// each point of the PSS orbit (cyclostationary intensities) and folded
/// through the conversion matrix with full inter-sideband correlation. The
/// DSB noise figure is referenced to the RF port's 50-ohm source.
PnoiseResult pac_nf_dsb(const MixerConfig& config, double f_if_hz = 5e6,
                        const PacOptions& opts = {});

}  // namespace rfmix::core
