// Table I comparison rows: the published numbers of the designs the paper
// compares against ([2], [3], [5], [6], [4], [10], [11], [12]), plus
// helpers to render "this work" rows from our own measurements.
#pragma once

#include <string>
#include <vector>

namespace rfmix::core {

/// One column of the paper's Table I. Ranges are kept as printed strings
/// (several references report min-max spans); numeric mid-band values are
/// provided where the benches need them for ordering checks.
struct BaselineDesign {
  std::string label;          // e.g. "[2]"
  std::string gain_db;        // as printed in Table I
  std::string nf_db;
  std::string iip3_dbm;
  std::string p1db_dbm;
  std::string power_mw;
  std::string bandwidth_ghz;
  std::string technology;
  std::string supply_v;

  double gain_mid_db = 0.0;   // representative numeric values
  double nf_mid_db = 0.0;
  double iip3_mid_dbm = 0.0;
};

/// The eight published comparison columns of Table I.
std::vector<BaselineDesign> table1_baselines();

}  // namespace rfmix::core
