// LPTV models of the reconfigurable mixer, built for the conversion-matrix
// engine. These models reproduce the paper's frequency-translation physics
// from first principles: square-wave commutation, switch Ron, TCA output
// pole (CPAR), coupling-capacitor low-frequency edge, the TIA's finite
// gain-bandwidth, and every noise mechanism (stationary TCA channel noise
// with its 1/f corner, cyclostationary switch noise 4kT g(t), TIA input
// noise, feedback/load resistor noise).
//
// Passive mode (Fig. 6a):  Vin -> [input pole] -> gm stage -> Rdeg (PMOS
//   Sw1-2 on-resistance) -> 4-switch quad -> TIA virtual grounds (RF || CF).
// Active mode (Fig. 6b):   Vin -> [input pole] -> commutated gm (Gilbert) ->
//   transmission-gate load Rtol with Cc low-pass.
#pragma once

#include <memory>

#include "core/mixer_config.hpp"
#include "lptv/lptv.hpp"

namespace rfmix::core {

/// Handles into the constructed LPTV circuit.
struct LptvMixerModel {
  lptv::LptvCircuit circuit;
  int in = 0;      // EMF injection node (1 ohm to ground: 1 A -> 1 V)
  int out_p = 0;   // differential IF output
  int out_m = 0;
  double rs = 50.0;  // modeled source resistance for NF referencing

  LptvMixerModel() : circuit(256) {}
};

/// Build the LPTV model for `config.mode`.
std::unique_ptr<LptvMixerModel> build_lptv_mixer(const MixerConfig& config);

/// Conversion gain [dB]: RF applied at f_lo + f_if (sideband +1), IF output
/// read at f_if (sideband 0), referenced to the source EMF.
double lptv_conversion_gain_db(const MixerConfig& config, double f_if_hz = 5e6);

/// Conversion gain vs RF frequency at fixed IF (Fig. 8 series): the LO is
/// retuned so that f_rf = f_lo + f_if for each point.
double lptv_conversion_gain_at_rf_db(const MixerConfig& config, double f_rf_hz,
                                     double f_if_hz = 5e6);

struct LptvNfPoint {
  double f_if_hz = 0.0;
  double nf_dsb_db = 0.0;
  double gain_db = 0.0;
  double output_noise_v2_hz = 0.0;
};

/// DSB noise figure at IF frequency f_if (Fig. 9 series), RF anchored at
/// config.f_lo_hz + f_if.
LptvNfPoint lptv_nf_dsb(const MixerConfig& config, double f_if_hz);

/// Fig. 8 batch: conversion gain at each RF frequency, every point solved
/// concurrently on the runtime pool (one model + factorization per point).
/// Bit-identical to calling lptv_conversion_gain_at_rf_db point by point.
std::vector<double> lptv_gain_vs_rf_sweep_db(const MixerConfig& config,
                                             const std::vector<double>& f_rf_hz,
                                             double f_if_hz = 5e6);

/// Fig. 9 batch: NF/gain at each IF frequency, points solved concurrently.
/// Bit-identical to calling lptv_nf_dsb point by point.
std::vector<LptvNfPoint> lptv_nf_sweep(const MixerConfig& config,
                                       const std::vector<double>& f_if_hz);

}  // namespace rfmix::core
