// Transient measurement harness: drives a transistor-level mixer with
// coherently-gridded stimuli, captures the IF output, and extracts gain,
// intermodulation and compression through the rf:: measurement stack — the
// same flow a bench instrument would run.
#pragma once

#include "core/circuits.hpp"
#include "rf/compression.hpp"
#include "rf/spectrum.hpp"
#include "rf/twotone.hpp"

namespace rfmix::core {

struct TransientMeasureOptions {
  /// All stimulus and response tones are placed on this grid so the FFT
  /// measurement is exactly coherent.
  double grid_hz = 1e6;
  /// Record length after settling, in grid periods.
  int grid_periods = 1;
  /// Start-up transient discarded before measurement, in grid periods.
  double settle_periods = 0.5;
  /// Time step: 1 / (f_lo * samples_per_lo).
  int samples_per_lo = 20;
};

/// Run the mixer and capture the differential IF output as a uniform
/// waveform (settling removed, coherent window).
rf::SampledWaveform capture_if_output(TransistorMixer& mixer, const RfStimulus& stim,
                                      const TransientMeasureOptions& opts = {});

/// Conversion gain [dB] for an RF tone at f_lo + if_offset with differential
/// amplitude `amp_v`: 20*log10(A_if / A_rf).
double measure_conversion_gain_db(TransistorMixer& mixer, double if_offset_hz,
                                  double amp_v = 2e-3,
                                  const TransientMeasureOptions& opts = {});

/// One two-tone point: tones at f_lo + f1_off and f_lo + f2_off, per-tone
/// input power pin_dbm (into the 50-ohm reference). Returns output tone
/// levels at the IF fundamental (f1_off), IM3 (2*f1_off - f2_off) and IM2
/// (f2_off - f1_off).
rf::ToneLevels measure_two_tone_point(TransistorMixer& mixer, double pin_dbm,
                                      double f1_off_hz = 5e6, double f2_off_hz = 6e6,
                                      const TransientMeasureOptions& opts = {});

/// Single-tone output power [dBm] at the IF for a given input power —
/// building block of the compression sweep.
double measure_single_tone_pout_dbm(TransistorMixer& mixer, double pin_dbm,
                                    double if_offset_hz = 5e6,
                                    const TransientMeasureOptions& opts = {});

}  // namespace rfmix::core
