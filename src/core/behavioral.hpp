// Calibrated behavioral model of the reconfigurable mixer.
//
// This is the engine that regenerates the paper's reported numbers exactly
// (Table I anchor points), with physically-shaped interpolation between
// them:
//   * conversion gain vs RF frequency: first-order band edges fitted to the
//     reported -3 dB band (1-5.5 GHz active, 0.5-5.1 GHz passive);
//   * gain and DSB NF vs IF frequency: single-pole IF roll-off plus a 1/f
//     noise corner (< 100 kHz in passive mode, per section III);
//   * a memoryless weakly-nonlinear polynomial whose a3/a1 ratio reproduces
//     the reported IIP3 (and a2 term for the reported IIP2 > 65 dBm), which
//     the two-tone and P1dB benches exercise end to end.
//
// The transistor-level and LPTV engines (circuits.hpp / lptv_model.hpp)
// independently verify the *shape* claims; see DESIGN.md's three-engine
// strategy.
#pragma once

#include "core/mixer_config.hpp"
#include "frontend/planner.hpp"
#include "rf/twotone.hpp"

namespace rfmix::core {

/// Anchor numbers for one mode, defaulting to the paper's Table I /
/// section III values.
struct BehavioralModeSpec {
  double gain_db = 0.0;        // mid-band conversion gain at 5 MHz IF
  double f_low_3db_hz = 0.0;   // RF band lower -3 dB edge
  double f_high_3db_hz = 0.0;  // RF band upper -3 dB edge
  double if_3db_hz = 0.0;      // IF bandwidth (gain vs IF pole)
  double nf_db_at_5mhz = 0.0;  // DSB NF at 5 MHz IF
  double flicker_corner_hz = 0.0;
  double iip3_dbm = 0.0;
  double iip2_dbm = 0.0;
  double p1db_dbm = 0.0;       // input-referred 1 dB compression at 5 MHz
};

/// Paper values for each mode.
BehavioralModeSpec paper_active_spec();
BehavioralModeSpec paper_passive_spec();

class BehavioralMixer {
 public:
  /// Build from a config: mode selects the paper anchor set; the spec can
  /// then be customized for ablations.
  explicit BehavioralMixer(const MixerConfig& config);
  BehavioralMixer(const MixerConfig& config, BehavioralModeSpec spec);

  const BehavioralModeSpec& spec() const { return spec_; }
  const MixerConfig& config() const { return config_; }

  /// Conversion gain [dB] at RF frequency f_rf, IF fixed at `f_if`.
  double conversion_gain_db(double f_rf_hz, double f_if_hz = 5e6) const;

  /// Conversion gain [dB] vs IF frequency at fixed RF (Fig. 9 companion).
  double gain_vs_if_db(double f_if_hz) const;

  /// DSB noise figure [dB] at IF frequency f_if (RF at 2.45 GHz, Fig. 9).
  double nf_dsb_db(double f_if_hz) const;

  /// Output fundamental/IM3/IM2 for a two-tone test at per-tone input
  /// power `pin_dbm` (tones near mid-band, IF in-band). Exercised by the
  /// Fig. 10 bench through the same rf:: extraction path a lab would use.
  rf::ToneLevels two_tone(double pin_dbm) const;

  /// Output power [dBm] of a single tone at `pin_dbm` (compression bench).
  double single_tone_pout_dbm(double pin_dbm) const;

  /// Total power drawn from the 1.2 V supply [mW].
  double power_mw() const { return config_.power_mw(); }

  /// Summary for the front-end planner.
  frontend::MixerModePerf perf() const;

 private:
  /// Polynomial coefficients derived from the anchors.
  double a1() const;  // linear voltage gain (mid-band)
  double a3() const;  // from IIP3
  double a2() const;  // from IIP2

  MixerConfig config_;
  BehavioralModeSpec spec_;
  // Pole frequencies of the two-section band shape, solved so the response
  // relative to 2.45 GHz crosses -3 dB exactly at the spec's band edges.
  double f_hp_pole_ = 0.0;
  double f_lp_pole_ = 0.0;
};

}  // namespace rfmix::core
