// Transistor-level builders for the paper's circuits on the spice:: engine:
//
//  * the reconfigurable mixer (Fig. 4/6): fully differential Gm stage,
//    4-NMOS switching quad, PMOS reconfiguration switches Sw1-2 (triode
//    degeneration in passive mode), transmission-gate load + Cc (active
//    mode), TIA with an OTA macromodel and RF || CF feedback (passive mode);
//  * a plain double-balanced Gilbert mixer and a current-commutating
//    resistively-degenerated passive mixer as circuit-level baselines
//    (refs [5]/[6] style) for the comparison benches;
//  * the two-stage Miller-compensated OTA of Fig. 7(b) at transistor level.
//
// These circuits verify the topology's behaviour (commutation, compression,
// mode ordering) with genuine device physics; the LPTV and behavioral
// engines regenerate the paper's exact figures. See DESIGN.md.
#pragma once

#include <memory>

#include "core/mixer_config.hpp"
#include "mathx/rng.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_sources.hpp"
#include "spice/montecarlo.hpp"

namespace rfmix::core {

/// Device-level variation applied to every MOSFET a builder instantiates:
/// a (correlated) process corner and, when `mismatch_rng` is set, an
/// independent Pelgrom mismatch draw per device.
struct DeviceVariation {
  spice::tech65::Corner corner = spice::tech65::Corner::kTT;
  mathx::Rng* mismatch_rng = nullptr;
  spice::tech65::MismatchSpec mismatch;

  spice::MosParams apply(const spice::MosParams& nominal) const {
    spice::MosParams p = spice::tech65::at_corner(nominal, corner);
    if (mismatch_rng != nullptr)
      p = spice::tech65::with_mismatch(p, *mismatch_rng, mismatch);
    return p;
  }
};

/// Switching-quad device geometry for a given config. Shared by the
/// transistor-level builders here and the src/gen `mixer_slice` template,
/// so programmatically generated array slices track the paper's sizing
/// (and any future re-sizing) instead of hard-coding their own.
struct QuadGeometry {
  double w = 0.0;  // gate width [m]
  double l = 0.0;  // gate length [m]
};
QuadGeometry quad_geometry(const MixerConfig& config);

/// Handles into a constructed transistor-level mixer.
struct TransistorMixer {
  spice::Circuit circuit;

  spice::NodeId rf_p{}, rf_m{};   // RF gate nodes
  spice::NodeId lo_p{}, lo_m{};   // LO nodes
  spice::NodeId if_p{}, if_m{};   // IF output nodes
  spice::VoltageSource* vrf_p = nullptr;  // drive these for stimulus
  spice::VoltageSource* vrf_m = nullptr;
  spice::VoltageSource* vlo_p = nullptr;
  spice::VoltageSource* vlo_m = nullptr;
  spice::VoltageSource* vdd = nullptr;

  MixerConfig config;
};

/// RF stimulus description for the mixer harness.
struct RfStimulus {
  /// Tone frequencies [Hz] and per-tone amplitude [V] of the differential
  /// RF input (each single-ended source gets half the amplitude).
  std::vector<double> freqs_hz;
  double amplitude = 1e-3;
};

/// Build the reconfigurable mixer in the mode chosen by `config`, with the
/// LO running at config.f_lo_hz and the RF sources initially silent.
/// `variation` selects the process corner and (optionally) per-device
/// mismatch for Monte-Carlo studies.
std::unique_ptr<TransistorMixer> build_transistor_mixer(
    const MixerConfig& config, const DeviceVariation& variation = {});

/// Apply an RF stimulus (replaces the RF source waveforms).
void set_rf_stimulus(TransistorMixer& mixer, const RfStimulus& stim);

/// Baseline: conventional double-balanced Gilbert mixer (always active).
std::unique_ptr<TransistorMixer> build_gilbert_baseline(const MixerConfig& config);

/// Baseline: current-commutating passive mixer with resistive degeneration
/// (refs [5]/[6] style; always passive).
std::unique_ptr<TransistorMixer> build_passive_baseline(const MixerConfig& config);

/// Two-stage Miller OTA (Fig. 7b) for standalone studies. Because an
/// open-loop op-amp rails at DC, the builder wires it either as a
/// unity-gain buffer (in_m tied to out; vin_m is null) or open-loop with
/// both inputs driven (for small-signal experiments around a forced bias).
struct OtaCircuit {
  spice::Circuit circuit;
  spice::NodeId in_p{}, in_m{}, out{};
  spice::VoltageSource* vin_p = nullptr;
  spice::VoltageSource* vin_m = nullptr;  // null in unity-gain configuration
};

std::unique_ptr<OtaCircuit> build_two_stage_ota(double vdd = 1.2,
                                                bool unity_feedback = true);

}  // namespace rfmix::core
