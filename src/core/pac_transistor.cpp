#include "core/pac_transistor.hpp"

#include <cmath>
#include <map>

#include "lptv/matrix_conversion.hpp"
#include "mathx/units.hpp"
#include "spice/mna.hpp"
#include "spice/pss.hpp"

namespace rfmix::core {

namespace {

/// Assemble the real small-signal Jacobian of the circuit at state `x`
/// (DC-mode stamps: conductances and nonlinear-device derivatives; no
/// capacitor companions — the reactive part is handled separately).
mathx::MatrixD jacobian_at(const spice::Circuit& ckt, const spice::Solution& x) {
  const spice::MnaLayout layout = ckt.layout();
  const std::size_t n = static_cast<std::size_t>(layout.size());
  mathx::TripletMatrix<double> g(n, n);
  mathx::VectorD b(n, 0.0);
  spice::StampParams sp;
  sp.mode = spice::AnalysisMode::kDc;
  assemble_real(ckt, x, sp, 0.0, g, b);
  return g.to_dense();
}

/// Extract the constant capacitance matrix: C = Im(Y(w0)) / w0 where Y is
/// the AC system at the operating point (all capacitances in this circuit
/// are bias-independent, so any operating point works).
mathx::MatrixD capacitance_matrix(const spice::Circuit& ckt, const spice::Solution& op) {
  const spice::MnaLayout layout = ckt.layout();
  const std::size_t n = static_cast<std::size_t>(layout.size());
  const double w0 = 1.0;  // 1 rad/s: Im(Y)/w0 = C exactly for linear C
  mathx::TripletMatrix<std::complex<double>> y(n, n);
  mathx::VectorC b(n, std::complex<double>{});
  assemble_ac(ckt, op, w0, 0.0, y, b);
  const mathx::MatrixC dense = y.to_dense();
  mathx::MatrixD c(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) c(i, j) = dense(i, j).imag() / w0;
  return c;
}

}  // namespace

PacResult pac_conversion_gain(const MixerConfig& config, double f_if_hz,
                              const PacOptions& opts) {
  MixerConfig cfg = config;
  if (cfg.rf_series_r <= 0.0) cfg.rf_series_r = 50.0;  // enable gate injection
  auto mixer = build_transistor_mixer(cfg);
  spice::Circuit& ckt = mixer->circuit;

  // PSS under LO only (RF sources stay at their DC bias).
  spice::PssOptions pss_opts;
  pss_opts.samples_per_period = opts.samples_per_period;
  const double period = 1.0 / config.f_lo_hz;
  const spice::PssResult pss = spice::periodic_steady_state(ckt, period, pss_opts);

  // Sampled Jacobians over the orbit + the constant C matrix.
  std::vector<mathx::MatrixD> g_samples;
  g_samples.reserve(pss.samples.size());
  for (const auto& x : pss.samples) g_samples.push_back(jacobian_at(ckt, x));
  const mathx::MatrixD c = capacitance_matrix(ckt, pss.samples.front());

  lptv::MatrixConversionAnalysis pac(std::move(g_samples), c, config.f_lo_hz,
                                     opts.harmonics);

  // Inject a differential unit AC current at the RF gates; gains are read
  // as ratios so the injection impedance drops out.
  const spice::MnaLayout layout = ckt.layout();
  const int u_rfp = layout.node_unknown(mixer->rf_p);
  const int u_rfm = layout.node_unknown(mixer->rf_m);
  const int u_ifp = layout.node_unknown(mixer->if_p);
  const int u_ifm = layout.node_unknown(mixer->if_m);

  PacResult result;
  result.pss_converged = pss.converged;
  result.pss_periods = pss.periods_used;

  for (const int k_in : {+1, -1}) {
    const lptv::MatrixPacSolution sol =
        pac.solve_injection(f_if_hz, u_rfp, u_rfm, k_in);
    const std::complex<double> v_in =
        sol.at(k_in, u_rfp) - sol.at(k_in, u_rfm);
    const std::complex<double> v_out = sol.at(0, u_ifp) - sol.at(0, u_ifm);
    const double gain_db =
        mathx::db_from_voltage_ratio(std::abs(v_out) / std::max(std::abs(v_in), 1e-30));
    if (k_in == +1) {
      result.conversion_gain_db = gain_db;
    } else {
      result.image_gain_db = gain_db;
    }
  }
  return result;
}

PnoiseResult pac_nf_dsb(const MixerConfig& config, double f_if_hz,
                        const PacOptions& opts) {
  MixerConfig cfg = config;
  if (cfg.rf_series_r <= 0.0) cfg.rf_series_r = 50.0;
  auto mixer = build_transistor_mixer(cfg);
  spice::Circuit& ckt = mixer->circuit;

  spice::PssOptions pss_opts;
  pss_opts.samples_per_period = opts.samples_per_period;
  const spice::PssResult pss =
      spice::periodic_steady_state(ckt, 1.0 / cfg.f_lo_hz, pss_opts);

  std::vector<mathx::MatrixD> g_samples;
  g_samples.reserve(pss.samples.size());
  for (const auto& x : pss.samples) g_samples.push_back(jacobian_at(ckt, x));
  const mathx::MatrixD c = capacitance_matrix(ckt, pss.samples.front());
  const spice::MnaLayout layout = ckt.layout();

  lptv::MatrixConversionAnalysis pac(std::move(g_samples), c, cfg.f_lo_hz,
                                     opts.harmonics);

  // Sample every device noise source along the orbit: same label = same
  // physical source, intensity evaluated at the baseband frequency.
  const int m_samp = static_cast<int>(pss.samples.size());
  struct Accum {
    int u_p, u_m;
    std::vector<double> wave;
  };
  std::map<std::string, Accum> by_label;
  for (int s = 0; s < m_samp; ++s) {
    std::vector<spice::NoiseSource> sources;
    for (const auto& dev : ckt.devices())
      dev->append_noise(sources, pss.samples[static_cast<std::size_t>(s)]);
    for (const auto& src : sources) {
      auto [it, inserted] = by_label.try_emplace(
          src.label, Accum{layout.node_unknown(src.p), layout.node_unknown(src.m),
                           std::vector<double>(static_cast<std::size_t>(m_samp), 0.0)});
      it->second.wave[static_cast<std::size_t>(s)] = src.psd(f_if_hz);
    }
  }
  std::vector<lptv::MatrixConversionAnalysis::NoiseSourceSamples> noise_sources;
  noise_sources.reserve(by_label.size());
  for (auto& [label, acc] : by_label) {
    lptv::MatrixConversionAnalysis::NoiseSourceSamples ns;
    ns.u_p = acc.u_p;
    ns.u_m = acc.u_m;
    ns.intensity = std::move(acc.wave);
    ns.label = label;
    noise_sources.push_back(std::move(ns));
  }

  const int u_rfp = layout.node_unknown(mixer->rf_p);
  const int u_rfm = layout.node_unknown(mixer->rf_m);
  const int u_ifp = layout.node_unknown(mixer->if_p);
  const int u_ifm = layout.node_unknown(mixer->if_m);

  const auto noise = pac.output_noise(f_if_hz, u_ifp, u_ifm, noise_sources);

  // EMF-referenced conversion gains for both signal sidebands: injecting a
  // unit current at the gate behind the series Rs is a Thevenin EMF of
  // Rs volts per side (2*Rs differentially).
  double gain2 = 0.0;
  double gain_up = 0.0;
  for (const int k_in : {+1, -1}) {
    const lptv::MatrixPacSolution sol =
        pac.solve_injection(f_if_hz, u_rfp, u_rfm, k_in);
    const std::complex<double> v_out = sol.at(0, u_ifp) - sol.at(0, u_ifm);
    const double av = std::abs(v_out) / (2.0 * cfg.rf_series_r);
    gain2 += av * av;
    if (k_in == +1) gain_up = av;
  }

  PnoiseResult r;
  r.pss_converged = pss.converged;
  r.output_noise_v2_hz = noise.total_output_psd_v2_hz;
  r.gain_db = mathx::db_from_voltage_ratio(gain_up);
  // DSB NF against the differential source resistance 2*Rs at 290 K.
  const double source_part =
      4.0 * mathx::kBoltzmann * 290.0 * (2.0 * cfg.rf_series_r) * gain2;
  r.nf_dsb_db = mathx::db_from_power_ratio(noise.total_output_psd_v2_hz / source_part);
  return r;
}

}  // namespace rfmix::core
