#include "core/measurements.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/units.hpp"
#include "spice/tran.hpp"

namespace rfmix::core {

using mathx::dbm_from_sine_amplitude;
using mathx::sine_amplitude_from_dbm;

rf::SampledWaveform capture_if_output(TransistorMixer& mixer, const RfStimulus& stim,
                                      const TransientMeasureOptions& opts) {
  const double f_lo = mixer.config.f_lo_hz;
  if (std::fmod(f_lo, opts.grid_hz) > 1e-3)
    throw std::invalid_argument("capture_if_output: f_lo must sit on the grid");
  for (const double f : stim.freqs_hz)
    if (std::fmod(f, opts.grid_hz) > 1e-3)
      throw std::invalid_argument("capture_if_output: stimulus tone off grid");

  set_rf_stimulus(mixer, stim);

  const double dt = 1.0 / (f_lo * opts.samples_per_lo);
  const double t_record = opts.grid_periods / opts.grid_hz;
  const double t_settle = opts.settle_periods / opts.grid_hz;
  const double t_stop = t_settle + t_record;

  spice::TranOptions topt;
  topt.newton.max_iterations = 80;
  const spice::TranResult res = spice::transient(
      mixer.circuit, t_stop, dt, {{mixer.if_p, mixer.if_m, "if"}}, topt);

  rf::SampledWaveform w;
  w.sample_rate_hz = 1.0 / dt;
  w.samples = res.waveform(0);
  // Keep exactly the final `grid_periods` worth of samples.
  const std::size_t keep =
      static_cast<std::size_t>(std::llround(t_record / dt));
  if (w.samples.size() <= keep)
    throw std::logic_error("capture_if_output: record shorter than requested window");
  w.samples.erase(w.samples.begin(),
                  w.samples.end() - static_cast<std::ptrdiff_t>(keep));
  return w;
}

double measure_conversion_gain_db(TransistorMixer& mixer, double if_offset_hz,
                                  double amp_v, const TransientMeasureOptions& opts) {
  RfStimulus stim;
  stim.freqs_hz = {mixer.config.f_lo_hz + if_offset_hz};
  stim.amplitude = amp_v;
  const rf::SampledWaveform w = capture_if_output(mixer, stim, opts);
  const double a_if = rf::tone_amplitude(w, if_offset_hz);
  return mathx::db_from_voltage_ratio(a_if / amp_v);
}

rf::ToneLevels measure_two_tone_point(TransistorMixer& mixer, double pin_dbm,
                                      double f1_off_hz, double f2_off_hz,
                                      const TransientMeasureOptions& opts) {
  const double amp = sine_amplitude_from_dbm(pin_dbm);
  RfStimulus stim;
  stim.freqs_hz = {mixer.config.f_lo_hz + f1_off_hz, mixer.config.f_lo_hz + f2_off_hz};
  stim.amplitude = amp;
  const rf::SampledWaveform w = capture_if_output(mixer, stim, opts);

  rf::ToneLevels t;
  t.pin_dbm = pin_dbm;
  t.fund_dbm = dbm_from_sine_amplitude(rf::tone_amplitude(w, f1_off_hz));
  const double f_im3 = 2.0 * f1_off_hz - f2_off_hz;
  const double f_im2 = f2_off_hz - f1_off_hz;
  t.im3_dbm = dbm_from_sine_amplitude(rf::tone_amplitude(w, f_im3));
  t.im2_dbm = dbm_from_sine_amplitude(rf::tone_amplitude(w, f_im2));
  return t;
}

double measure_single_tone_pout_dbm(TransistorMixer& mixer, double pin_dbm,
                                    double if_offset_hz,
                                    const TransientMeasureOptions& opts) {
  const double amp = sine_amplitude_from_dbm(pin_dbm);
  RfStimulus stim;
  stim.freqs_hz = {mixer.config.f_lo_hz + if_offset_hz};
  stim.amplitude = amp;
  const rf::SampledWaveform w = capture_if_output(mixer, stim, opts);
  return dbm_from_sine_amplitude(rf::tone_amplitude(w, if_offset_hz));
}

}  // namespace rfmix::core
