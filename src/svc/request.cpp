#include "svc/request.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/json_writer.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/op.hpp"
#include "spice/parser.hpp"
#include "svc/canonical.hpp"
#include "svc/json_parse.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

/// Every MixerConfig field, in declaration order. The record is
/// append-only: new fields go at the end; renaming or reordering requires
/// a kCanonicalEpoch bump.
void append_mixer_config(CanonicalWriter& w, const core::MixerConfig& c) {
  w.begin_record("mixerconfig");
  w.field("mode", std::string_view(frontend::mode_name(c.mode)));
  w.field("temperature_k", c.temperature_k);
  w.field("vdd", c.vdd);
  w.field("f_lo_hz", c.f_lo_hz);
  w.field("lo_amplitude", c.lo_amplitude);
  w.field("lo_common_mode", c.lo_common_mode);
  w.field("lo_rise_fraction", c.lo_rise_fraction);
  w.field("lo_phase_frac", c.lo_phase_frac);
  w.field("rf_series_r", c.rf_series_r);
  w.field("tca_gm", c.tca_gm);
  w.field("tca_rout", c.tca_rout);
  w.field("tca_cpar", c.tca_cpar);
  w.field("tca_bias_ma", c.tca_bias_ma);
  w.field("tca_nf_gamma", c.tca_nf_gamma);
  w.field("tca_flicker_corner_hz", c.tca_flicker_corner_hz);
  w.field("quad_w", c.quad_w);
  w.field("quad_ron", c.quad_ron);
  w.field("quad_l", c.quad_l);
  w.field("sw12_w", c.sw12_w);
  w.field("rdeg", c.rdeg);
  w.field("rdeg_ideal_extra", c.rdeg_ideal_extra);
  w.field("tg_resistance", c.tg_resistance);
  w.field("cc_load", c.cc_load);
  w.field("tia_rf", c.tia_rf);
  w.field("tia_cf", c.tia_cf);
  w.field("tia_ota_gm", c.tia_ota_gm);
  w.field("tia_ota_rout", c.tia_ota_rout);
  w.field("tia_ota_gbw_hz", c.tia_ota_gbw_hz);
  w.field("tia_bias_ma", c.tia_bias_ma);
  w.field("tia_input_noise_nv", c.tia_input_noise_nv);
  w.field("tia_flicker_corner_hz", c.tia_flicker_corner_hz);
  w.field("active_pair_noise_gm", c.active_pair_noise_gm);
  w.field("active_pair_flicker_corner_hz", c.active_pair_flicker_corner_hz);
  w.field("lo_buffer_ma", c.lo_buffer_ma);
  w.field("bias_overhead_ma", c.bias_overhead_ma);
  w.field("core_bias_ma", c.core_bias_ma);
  w.end_record();
}

std::vector<double> ac_freq_grid(const AcSpec& ac) {
  return ac.log_scale ? spice::log_space(ac.f_start_hz, ac.f_stop_hz, ac.points)
                      : spice::lin_space(ac.f_start_hz, ac.f_stop_hz, ac.points);
}

std::string execute_op(const Request& req) {
  spice::Circuit ckt = spice::parse_netlist(req.netlist);
  const spice::Solution op = spice::dc_operating_point(ckt);
  // Node names sorted so the payload bytes are independent of declaration
  // order, matching the key's normalization.
  std::map<std::string, double> nodes;
  for (spice::NodeId n = 1; n < ckt.num_nodes(); ++n) nodes[ckt.node_name(n)] = op.v(n);
  std::string out = "{\"analysis\":\"op\",\"nodes\":{";
  bool first = true;
  for (const auto& [name, v] : nodes) {
    if (!first) out.push_back(',');
    first = false;
    out += json::quoted(name);
    out.push_back(':');
    out += json::number(v);
  }
  out += "},\"power_w\":";
  out += json::number(spice::total_dissipated_power(ckt, op));
  out.push_back('}');
  return out;
}

std::string execute_ac(const Request& req) {
  if (req.ac.probe.empty())
    throw std::invalid_argument("ac request requires a probe node");
  if (req.ac.points < 2)
    throw std::invalid_argument("ac request requires at least 2 points");
  spice::Circuit ckt = spice::parse_netlist(req.netlist);
  const spice::NodeId probe = ckt.find_node(req.ac.probe);
  const spice::NodeId ref =
      req.ac.probe_ref.empty() ? spice::kGround : ckt.find_node(req.ac.probe_ref);
  const spice::Solution op = spice::dc_operating_point(ckt);
  const std::vector<double> freqs = ac_freq_grid(req.ac);
  const spice::AcResult res = spice::ac_sweep(ckt, op, freqs);
  std::string out = "{\"analysis\":\"ac\",\"probe\":";
  out += json::quoted(req.ac.probe);
  out += ",\"freqs_hz\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(freqs[i]);
  }
  out += "],\"real\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(res.vd(i, probe, ref).real());
  }
  out += "],\"imag\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(res.vd(i, probe, ref).imag());
  }
  out += "]}";
  return out;
}

std::vector<double> npath_freq_grid(const NpathSweepSpec& ns) {
  return ns.log_scale ? spice::log_space(ns.f_start_hz, ns.f_stop_hz, ns.points)
                      : spice::lin_space(ns.f_start_hz, ns.f_stop_hz, ns.points);
}

std::string execute_npath_zin(const Request& req) {
  const NpathSweepSpec& ns = req.npath;
  const npath::ZinSweep sw = npath::zin_sweep(ns.spec, npath_freq_grid(ns));
  const auto append_array = [](std::string& out, std::string_view name, auto&& value) {
    out += ",\"";
    out += name;
    out += "\":[";
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += json::number(value[i]);
    }
    out.push_back(']');
  };
  std::vector<double> zin_re, zin_im, s11_db, rerad3;
  zin_re.reserve(sw.points.size());
  zin_im.reserve(sw.points.size());
  s11_db.reserve(sw.points.size());
  rerad3.reserve(sw.points.size());
  for (const npath::ZinPoint& pt : sw.points) {
    zin_re.push_back(pt.zin.real());
    zin_im.push_back(pt.zin.imag());
    // |S11| of a passive one-port is > 0; the clamp only guards the exact-
    // match singularity (log of 0 is not representable in JSON).
    s11_db.push_back(20.0 * std::log10(std::max(std::abs(pt.s11), 1e-12)));
    rerad3.push_back(pt.rerad_3lo);
  }
  std::string out = "{\"analysis\":\"npath_zin\",\"phases\":";
  out += json::number(double(ns.spec.lo.phases));
  out += ",\"f_lo_hz\":";
  out += json::number(ns.spec.f_lo_hz);
  append_array(out, "freqs_hz", sw.freqs_hz);
  append_array(out, "zin_real", zin_re);
  append_array(out, "zin_imag", zin_im);
  append_array(out, "s11_db", s11_db);
  append_array(out, "rerad3_rel", rerad3);
  out += ",\"summary\":{\"f_peak_hz\":";
  out += json::number(sw.summary.f_peak_hz);
  out += ",\"zin_peak_ohm\":";
  out += json::number(sw.summary.zin_peak_ohm);
  out += ",\"zin_floor_ohm\":";
  out += json::number(sw.summary.zin_floor_ohm);
  out += ",\"bw_3db_hz\":";
  out += json::number(sw.summary.bw_3db_hz);
  out += ",\"q\":";
  out += json::number(sw.summary.q);
  out += ",\"rerad3_max\":";
  out += json::number(sw.summary.rerad_3lo_max);
  out += "}}";
  return out;
}

std::string execute_metric(const Request& req) {
  const double value = core::evaluate_metric(req.metric);
  std::string out = "{\"analysis\":\"metric\",\"metric\":";
  out += json::quoted(core::metric_name(req.metric.metric));
  out += ",\"mode\":";
  out += json::quoted(frontend::mode_name(req.metric.config.mode));
  out += ",\"value\":";
  out += json::number(value);
  out.push_back('}');
  return out;
}

// ---------------------------------------------------------------------------
// Protocol parsing
// ---------------------------------------------------------------------------

double number_field(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  return v->as_number();
}

/// Client-supplied ints arrive as JSON numbers; casting an out-of-range or
/// non-finite double to int is UB, so validate before converting.
int int_field(const JsonValue& obj, std::string_view key, int fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  const double d = v->as_number();
  if (!std::isfinite(d) || d != std::floor(d) || d < static_cast<double>(INT_MIN) ||
      d > static_cast<double>(INT_MAX))
    throw std::invalid_argument("field '" + std::string(key) +
                                "' must be an integer in int range");
  return static_cast<int>(d);
}

std::string string_field(const JsonValue& obj, std::string_view key,
                         const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  return v->as_string();
}

const std::string& required_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr)
    throw std::invalid_argument("missing required field '" + std::string(key) + "'");
  return v->as_string();
}

bool set_config_number(core::MixerConfig& c, std::string_view key, double v) {
  if (key == "temperature_k") { c.temperature_k = v; return true; }
  if (key == "vdd") { c.vdd = v; return true; }
  if (key == "f_lo_hz") { c.f_lo_hz = v; return true; }
  if (key == "lo_amplitude") { c.lo_amplitude = v; return true; }
  if (key == "lo_common_mode") { c.lo_common_mode = v; return true; }
  if (key == "lo_rise_fraction") { c.lo_rise_fraction = v; return true; }
  if (key == "lo_phase_frac") { c.lo_phase_frac = v; return true; }
  if (key == "rf_series_r") { c.rf_series_r = v; return true; }
  if (key == "tca_gm") { c.tca_gm = v; return true; }
  if (key == "tca_rout") { c.tca_rout = v; return true; }
  if (key == "tca_cpar") { c.tca_cpar = v; return true; }
  if (key == "tca_bias_ma") { c.tca_bias_ma = v; return true; }
  if (key == "tca_nf_gamma") { c.tca_nf_gamma = v; return true; }
  if (key == "tca_flicker_corner_hz") { c.tca_flicker_corner_hz = v; return true; }
  if (key == "quad_w") { c.quad_w = v; return true; }
  if (key == "quad_ron") { c.quad_ron = v; return true; }
  if (key == "quad_l") { c.quad_l = v; return true; }
  if (key == "sw12_w") { c.sw12_w = v; return true; }
  if (key == "rdeg") { c.rdeg = v; return true; }
  if (key == "rdeg_ideal_extra") { c.rdeg_ideal_extra = v; return true; }
  if (key == "tg_resistance") { c.tg_resistance = v; return true; }
  if (key == "cc_load") { c.cc_load = v; return true; }
  if (key == "tia_rf") { c.tia_rf = v; return true; }
  if (key == "tia_cf") { c.tia_cf = v; return true; }
  if (key == "tia_ota_gm") { c.tia_ota_gm = v; return true; }
  if (key == "tia_ota_rout") { c.tia_ota_rout = v; return true; }
  if (key == "tia_ota_gbw_hz") { c.tia_ota_gbw_hz = v; return true; }
  if (key == "tia_bias_ma") { c.tia_bias_ma = v; return true; }
  if (key == "tia_input_noise_nv") { c.tia_input_noise_nv = v; return true; }
  if (key == "tia_flicker_corner_hz") { c.tia_flicker_corner_hz = v; return true; }
  if (key == "active_pair_noise_gm") { c.active_pair_noise_gm = v; return true; }
  if (key == "active_pair_flicker_corner_hz") {
    c.active_pair_flicker_corner_hz = v;
    return true;
  }
  if (key == "lo_buffer_ma") { c.lo_buffer_ma = v; return true; }
  if (key == "bias_overhead_ma") { c.bias_overhead_ma = v; return true; }
  if (key == "core_bias_ma") { c.core_bias_ma = v; return true; }
  return false;
}

AcSpec parse_ac_spec(const JsonValue& obj) {
  AcSpec ac;
  ac.f_start_hz = number_field(obj, "f_start_hz", ac.f_start_hz);
  ac.f_stop_hz = number_field(obj, "f_stop_hz", ac.f_stop_hz);
  ac.points = int_field(obj, "points", ac.points);
  if (const JsonValue* v = obj.find("log_scale")) ac.log_scale = v->as_bool();
  ac.probe = string_field(obj, "probe", "");
  ac.probe_ref = string_field(obj, "probe_ref", "");
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    if (key != "f_start_hz" && key != "f_stop_hz" && key != "points" &&
        key != "log_scale" && key != "probe" && key != "probe_ref")
      throw std::invalid_argument("unknown ac field '" + key + "'");
  }
  return ac;
}

/// Strict npath_zin parameter object: every NpathSpec knob plus the sweep
/// grid. Unknown fields are errors (a silently dropped knob would collide
/// two different front ends on one cache key), and the spec is validated
/// here so an unrealizable clock set fails as bad_params, not mid-solve.
NpathSweepSpec parse_npath_params(const JsonValue& obj) {
  NpathSweepSpec ns;
  npath::NpathSpec& s = ns.spec;
  s.lo.phases = int_field(obj, "phases", s.lo.phases);
  s.lo.duty = number_field(obj, "duty", s.lo.duty);
  s.lo.rise_frac = number_field(obj, "rise_frac", s.lo.rise_frac);
  s.lo.overlap_guard = number_field(obj, "overlap_guard", s.lo.overlap_guard);
  s.lo.samples = int_field(obj, "samples", s.lo.samples);
  s.f_lo_hz = number_field(obj, "f_lo_hz", s.f_lo_hz);
  s.r_source = number_field(obj, "r_source", s.r_source);
  s.switch_ron = number_field(obj, "switch_ron", s.switch_ron);
  s.zbb_r = number_field(obj, "zbb_r", s.zbb_r);
  s.zbb_c = number_field(obj, "zbb_c", s.zbb_c);
  s.c_rf = number_field(obj, "c_rf", s.c_rf);
  s.harmonics = int_field(obj, "harmonics", s.harmonics);
  if (const JsonValue* sweep = obj.find("sweep")) {
    ns.f_start_hz = number_field(*sweep, "f_start_hz", ns.f_start_hz);
    ns.f_stop_hz = number_field(*sweep, "f_stop_hz", ns.f_stop_hz);
    ns.points = int_field(*sweep, "points", ns.points);
    if (const JsonValue* v = sweep->find("log_scale")) ns.log_scale = v->as_bool();
    for (const auto& [key, value] : sweep->as_object()) {
      (void)value;
      if (key != "f_start_hz" && key != "f_stop_hz" && key != "points" &&
          key != "log_scale")
        throw std::invalid_argument("unknown sweep field '" + key + "'");
    }
  }
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    if (key != "phases" && key != "duty" && key != "rise_frac" &&
        key != "overlap_guard" && key != "samples" && key != "f_lo_hz" &&
        key != "r_source" && key != "switch_ron" && key != "zbb_r" &&
        key != "zbb_c" && key != "c_rf" && key != "harmonics" && key != "sweep")
      throw std::invalid_argument("unknown npath_zin field '" + key + "'");
  }
  if (ns.points < 2 || ns.points > 4096)
    throw std::invalid_argument("npath_zin sweep points must be in [2, 4096]");
  if (!(ns.f_start_hz > 0.0) || !(ns.f_stop_hz > ns.f_start_hz))
    throw std::invalid_argument(
        "npath_zin sweep requires 0 < f_start_hz < f_stop_hz");
  npath::validate(ns.spec);
  return ns;
}

Request parse_analysis_params(const std::string& kind, const JsonValue& params) {
  Request req;
  if (kind == "npath_zin") {
    req.kind = RequestKind::kNpathZin;
    req.npath = parse_npath_params(params);
    return req;
  }
  if (kind == "op" || kind == "ac") {
    req.kind = kind == "op" ? RequestKind::kOp : RequestKind::kAc;
    req.netlist = required_string(params, "netlist");
    if (req.kind == RequestKind::kAc) {
      const JsonValue* ac = params.find("ac");
      if (ac == nullptr) throw std::invalid_argument("ac request requires an 'ac' object");
      req.ac = parse_ac_spec(*ac);
    }
    return req;
  }
  req.kind = RequestKind::kMixerMetric;
  req.metric.metric = core::metric_from_name(required_string(params, "metric"));
  if (const JsonValue* cfg = params.find("config")) apply_mixer_config(*cfg, req.metric.config);
  req.metric.f_if_hz = number_field(params, "f_if_hz", req.metric.f_if_hz);
  req.metric.f_rf_hz = number_field(params, "f_rf_hz", req.metric.f_rf_hz);
  return req;
}

/// Re-serialize the request's "id" member for echoing (number, string, or
/// absent -> "null"). Anything else would make responses unroutable, so it
/// is an invalid_request, not a silent null.
std::string id_of(const JsonValue& doc) {
  const JsonValue* id = doc.find("id");
  if (id == nullptr || id->is_null()) return "null";
  if (id->is_number()) {
    if (!std::isfinite(id->as_number()))
      throw RequestError(ErrorCode::kInvalidRequest,
                         "request id must be a finite number or a string");
    return json::number(id->as_number());
  }
  if (id->is_string()) return json::quoted(id->as_string());
  throw RequestError(ErrorCode::kInvalidRequest,
                     "request id must be a number or a string");
}

std::string serialize_target(const JsonValue& v) {
  if (v.is_number()) {
    if (!std::isfinite(v.as_number()))
      throw RequestError(ErrorCode::kBadParams,
                         "cancel target must be a finite number or a string");
    return json::number(v.as_number());
  }
  if (v.is_string()) return json::quoted(v.as_string());
  throw RequestError(ErrorCode::kBadParams,
                     "cancel target must be a number or a string");
}

const JsonValue kEmptyObject = JsonValue::object({});

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kUnsupportedVersion: return "unsupported_version";
    case ErrorCode::kUnknownKind: return "unknown_kind";
    case ErrorCode::kBadParams: return "bad_params";
    case ErrorCode::kExecFailed: return "exec_failed";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "internal_error";
}

void apply_mixer_config(const JsonValue& obj, core::MixerConfig& config) {
  for (const auto& [key, value] : obj.as_object()) {
    if (key == "mode") {
      const std::string& mode = value.as_string();
      if (mode == "active") {
        config.mode = core::MixerMode::kActive;
      } else if (mode == "passive") {
        config.mode = core::MixerMode::kPassive;
      } else {
        throw RequestError(ErrorCode::kBadParams, "unknown mixer mode '" + mode +
                                                      "' (expected active or passive)");
      }
      continue;
    }
    if (!set_config_number(config, key, value.as_number()))
      throw RequestError(ErrorCode::kBadParams, "unknown config field '" + key + "'");
  }
}

bool is_analysis_kind(std::string_view kind) {
  return kind == "op" || kind == "ac" || kind == "mixer_metric" ||
         kind == "npath_zin";
}

ParsedRequest parse_request(const JsonValue& doc) {
  if (!doc.is_object())
    throw RequestError(ErrorCode::kInvalidRequest, "request must be a JSON object");

  ParsedRequest out;
  out.id_json = id_of(doc);

  // Version detection: no "v" (or an explicit 1) is the deprecated v1
  // layout with analysis fields at the top level; 2 is the envelope with
  // params; anything else is a client from the future.
  if (const JsonValue* v = doc.find("v")) {
    if (!v->is_number() || (v->as_number() != 1.0 && v->as_number() != 2.0))
      throw RequestError(ErrorCode::kUnsupportedVersion,
                         "unsupported protocol version (this server speaks v1 and v2)");
    out.version = static_cast<int>(v->as_number());
  }

  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr)
    throw RequestError(ErrorCode::kInvalidRequest, "missing required field 'kind'");
  if (!kind->is_string())
    throw RequestError(ErrorCode::kInvalidRequest, "field 'kind' must be a string");
  out.kind = kind->as_string();

  // npath_zin (like cancel) postdates the v1 freeze, so v1 rejects it as
  // unknown rather than growing new top-level fields.
  const bool base_kind = out.kind == "ping" || out.kind == "stats" ||
                         out.kind == "op" || out.kind == "ac" ||
                         out.kind == "mixer_metric";
  const bool known_kind =
      base_kind ||
      (out.version == 2 && (out.kind == "cancel" || out.kind == "npath_zin"));
  if (!known_kind)
    throw RequestError(
        ErrorCode::kUnknownKind,
        "unknown request kind '" + out.kind +
            (out.version == 2
                 ? "' (expected ping, stats, cancel, op, ac, mixer_metric, or "
                   "npath_zin)"
                 : "' (expected ping, stats, op, ac, or mixer_metric)"));

  try {
    out.priority = int_field(doc, "priority", 0);
  } catch (const std::exception& e) {
    throw RequestError(ErrorCode::kBadParams, e.what());
  }

  // v1: analysis fields live at the top level; unknown extras are ignored
  // for back-compat. Parsed here and frozen — new capability goes to v2.
  if (out.version == 1) {
    if (is_analysis_kind(out.kind)) {
      try {
        out.request = parse_analysis_params(out.kind, doc);
      } catch (const RequestError&) {
        throw;
      } catch (const std::exception& e) {
        throw RequestError(ErrorCode::kBadParams, e.what());
      }
    }
    return out;
  }

  // v2: a strict envelope. Everything kind-specific lives under "params";
  // an unknown envelope field is an error so typos fail loudly instead of
  // silently changing meaning.
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (key != "v" && key != "id" && key != "kind" && key != "priority" &&
        key != "timeout_ms" && key != "params")
      throw RequestError(ErrorCode::kInvalidRequest,
                         "unknown envelope field '" + key +
                             "' (v2 request parameters live under \"params\")");
  }
  const JsonValue* params = doc.find("params");
  if (params != nullptr && !params->is_object())
    throw RequestError(ErrorCode::kInvalidRequest, "field 'params' must be an object");
  const JsonValue& p = params != nullptr ? *params : kEmptyObject;

  try {
    out.timeout_ms = number_field(doc, "timeout_ms", 0.0);
    if (!std::isfinite(out.timeout_ms) || out.timeout_ms < 0.0)
      throw std::invalid_argument("field 'timeout_ms' must be a finite number >= 0");
  } catch (const std::exception& e) {
    throw RequestError(ErrorCode::kInvalidRequest, e.what());
  }

  if (out.kind == "cancel") {
    const JsonValue* target = p.find("target");
    if (target == nullptr)
      throw RequestError(ErrorCode::kBadParams,
                         "cancel requires params.target (the id to cancel)");
    out.cancel_target = serialize_target(*target);
    return out;
  }
  if (is_analysis_kind(out.kind)) {
    try {
      out.request = parse_analysis_params(out.kind, p);
    } catch (const RequestError&) {
      throw;
    } catch (const std::exception& e) {
      throw RequestError(ErrorCode::kBadParams, e.what());
    }
  }
  return out;
}

std::string request_canonical(const Request& req) {
  CanonicalWriter w;
  append_version_record(w);
  switch (req.kind) {
    case RequestKind::kOp: {
      const spice::Circuit ckt = spice::parse_netlist(req.netlist);
      append_canonical_circuit(w, ckt);
      w.begin_record("analysis");
      w.field("kind", "op");
      w.end_record();
      break;
    }
    case RequestKind::kAc: {
      const spice::Circuit ckt = spice::parse_netlist(req.netlist);
      append_canonical_circuit(w, ckt);
      w.begin_record("analysis");
      w.field("kind", "ac");
      w.field("f_start_hz", req.ac.f_start_hz);
      w.field("f_stop_hz", req.ac.f_stop_hz);
      w.field("points", req.ac.points);
      w.field("scale", req.ac.log_scale ? "log" : "lin");
      w.field("probe", req.ac.probe);
      w.field("probe_ref", req.ac.probe_ref);
      w.end_record();
      break;
    }
    case RequestKind::kMixerMetric: {
      append_mixer_config(w, req.metric.config);
      w.begin_record("analysis");
      w.field("kind", "metric");
      w.field("metric", core::metric_name(req.metric.metric));
      w.field("f_if_hz", req.metric.f_if_hz);
      w.field("f_rf_hz", req.metric.f_rf_hz);
      w.end_record();
      break;
    }
    case RequestKind::kNpathZin: {
      // New record tags under the kCanonicalEpoch append-only rule: npath
      // requests hash over every front-end knob plus the sweep grid, so
      // two sweeps collide iff they describe the same physics.
      const npath::NpathSpec& s = req.npath.spec;
      w.begin_record("npath");
      w.field("phases", s.lo.phases);
      w.field("duty", s.lo.duty);
      w.field("rise_frac", s.lo.rise_frac);
      w.field("overlap_guard", s.lo.overlap_guard);
      w.field("samples", s.lo.samples);
      w.field("f_lo_hz", s.f_lo_hz);
      w.field("r_source", s.r_source);
      w.field("switch_ron", s.switch_ron);
      w.field("zbb_r", s.zbb_r);
      w.field("zbb_c", s.zbb_c);
      w.field("c_rf", s.c_rf);
      w.field("harmonics", s.harmonics);
      w.end_record();
      w.begin_record("analysis");
      w.field("kind", "npath_zin");
      w.field("f_start_hz", req.npath.f_start_hz);
      w.field("f_stop_hz", req.npath.f_stop_hz);
      w.field("points", req.npath.points);
      w.field("scale", req.npath.log_scale ? "log" : "lin");
      w.end_record();
      break;
    }
  }
  return w.str();
}

Hash128 request_key(const Request& req) { return hash128(request_canonical(req)); }

namespace {

/// Every MixerConfig field, spelled exactly the way set_config_number
/// accepts it (the worker parses strictly: an unknown field is an error,
/// a missing one silently keeps its default — so serialize all of them).
void serialize_mixer_config(std::string& out, const core::MixerConfig& c) {
  out += "{\"mode\":";
  out += json::quoted(frontend::mode_name(c.mode));
  const auto field = [&out](std::string_view name, double v) {
    out += ",\"";
    out += name;
    out += "\":";
    out += json::number(v);
  };
  field("temperature_k", c.temperature_k);
  field("vdd", c.vdd);
  field("f_lo_hz", c.f_lo_hz);
  field("lo_amplitude", c.lo_amplitude);
  field("lo_common_mode", c.lo_common_mode);
  field("lo_rise_fraction", c.lo_rise_fraction);
  field("lo_phase_frac", c.lo_phase_frac);
  field("rf_series_r", c.rf_series_r);
  field("tca_gm", c.tca_gm);
  field("tca_rout", c.tca_rout);
  field("tca_cpar", c.tca_cpar);
  field("tca_bias_ma", c.tca_bias_ma);
  field("tca_nf_gamma", c.tca_nf_gamma);
  field("tca_flicker_corner_hz", c.tca_flicker_corner_hz);
  field("quad_w", c.quad_w);
  field("quad_ron", c.quad_ron);
  field("quad_l", c.quad_l);
  field("sw12_w", c.sw12_w);
  field("rdeg", c.rdeg);
  field("rdeg_ideal_extra", c.rdeg_ideal_extra);
  field("tg_resistance", c.tg_resistance);
  field("cc_load", c.cc_load);
  field("tia_rf", c.tia_rf);
  field("tia_cf", c.tia_cf);
  field("tia_ota_gm", c.tia_ota_gm);
  field("tia_ota_rout", c.tia_ota_rout);
  field("tia_ota_gbw_hz", c.tia_ota_gbw_hz);
  field("tia_bias_ma", c.tia_bias_ma);
  field("tia_input_noise_nv", c.tia_input_noise_nv);
  field("tia_flicker_corner_hz", c.tia_flicker_corner_hz);
  field("active_pair_noise_gm", c.active_pair_noise_gm);
  field("active_pair_flicker_corner_hz", c.active_pair_flicker_corner_hz);
  field("lo_buffer_ma", c.lo_buffer_ma);
  field("bias_overhead_ma", c.bias_overhead_ma);
  field("core_bias_ma", c.core_bias_ma);
  out.push_back('}');
}

}  // namespace

std::string serialize_v2_request(const ParsedRequest& req, const std::string& id_json) {
  std::string out = "{\"v\":2,\"id\":" + id_json + ",\"kind\":" + json::quoted(req.kind);
  if (req.priority != 0) out += ",\"priority\":" + json::number(double(req.priority));
  if (req.timeout_ms > 0.0) out += ",\"timeout_ms\":" + json::number(req.timeout_ms);
  if (req.kind == "cancel") {
    out += ",\"params\":{\"target\":" + req.cancel_target + "}}";
    return out;
  }
  if (!is_analysis_kind(req.kind)) {  // ping / stats: no params
    out.push_back('}');
    return out;
  }
  out += ",\"params\":{";
  const Request& r = req.request;
  switch (r.kind) {
    case RequestKind::kOp:
      out += "\"netlist\":" + json::quoted(r.netlist);
      break;
    case RequestKind::kAc:
      out += "\"netlist\":" + json::quoted(r.netlist);
      out += ",\"ac\":{\"f_start_hz\":" + json::number(r.ac.f_start_hz);
      out += ",\"f_stop_hz\":" + json::number(r.ac.f_stop_hz);
      out += ",\"points\":" + json::number(double(r.ac.points));
      out += ",\"log_scale\":";
      out += r.ac.log_scale ? "true" : "false";
      out += ",\"probe\":" + json::quoted(r.ac.probe);
      if (!r.ac.probe_ref.empty()) out += ",\"probe_ref\":" + json::quoted(r.ac.probe_ref);
      out.push_back('}');
      break;
    case RequestKind::kMixerMetric:
      out += "\"metric\":" + json::quoted(core::metric_name(r.metric.metric));
      out += ",\"f_if_hz\":" + json::number(r.metric.f_if_hz);
      out += ",\"f_rf_hz\":" + json::number(r.metric.f_rf_hz);
      out += ",\"config\":";
      serialize_mixer_config(out, r.metric.config);
      break;
    case RequestKind::kNpathZin: {
      // Serialize every knob (the parser is strict on unknowns but quiet
      // on missing ones) so the replayed line parses to the same Request,
      // same canonical bytes, same key.
      const npath::NpathSpec& s = r.npath.spec;
      out += "\"phases\":" + json::number(double(s.lo.phases));
      out += ",\"duty\":" + json::number(s.lo.duty);
      out += ",\"rise_frac\":" + json::number(s.lo.rise_frac);
      out += ",\"overlap_guard\":" + json::number(s.lo.overlap_guard);
      out += ",\"samples\":" + json::number(double(s.lo.samples));
      out += ",\"f_lo_hz\":" + json::number(s.f_lo_hz);
      out += ",\"r_source\":" + json::number(s.r_source);
      out += ",\"switch_ron\":" + json::number(s.switch_ron);
      out += ",\"zbb_r\":" + json::number(s.zbb_r);
      out += ",\"zbb_c\":" + json::number(s.zbb_c);
      out += ",\"c_rf\":" + json::number(s.c_rf);
      out += ",\"harmonics\":" + json::number(double(s.harmonics));
      out += ",\"sweep\":{\"f_start_hz\":" + json::number(r.npath.f_start_hz);
      out += ",\"f_stop_hz\":" + json::number(r.npath.f_stop_hz);
      out += ",\"points\":" + json::number(double(r.npath.points));
      out += ",\"log_scale\":";
      out += r.npath.log_scale ? "true" : "false";
      out += "}";
      break;
    }
  }
  out += "}}";
  return out;
}

std::string execute_request(const Request& req) {
  switch (req.kind) {
    case RequestKind::kOp: return execute_op(req);
    case RequestKind::kAc: return execute_ac(req);
    case RequestKind::kMixerMetric: return execute_metric(req);
    case RequestKind::kNpathZin: return execute_npath_zin(req);
  }
  throw std::invalid_argument("unhandled request kind");
}

}  // namespace rfmix::svc
