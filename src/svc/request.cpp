#include "svc/request.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/json_writer.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/op.hpp"
#include "spice/parser.hpp"
#include "svc/canonical.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

/// Every MixerConfig field, in declaration order. The record is
/// append-only: new fields go at the end; renaming or reordering requires
/// a kCanonicalEpoch bump.
void append_mixer_config(CanonicalWriter& w, const core::MixerConfig& c) {
  w.begin_record("mixerconfig");
  w.field("mode", std::string_view(frontend::mode_name(c.mode)));
  w.field("temperature_k", c.temperature_k);
  w.field("vdd", c.vdd);
  w.field("f_lo_hz", c.f_lo_hz);
  w.field("lo_amplitude", c.lo_amplitude);
  w.field("lo_common_mode", c.lo_common_mode);
  w.field("lo_rise_fraction", c.lo_rise_fraction);
  w.field("lo_phase_frac", c.lo_phase_frac);
  w.field("rf_series_r", c.rf_series_r);
  w.field("tca_gm", c.tca_gm);
  w.field("tca_rout", c.tca_rout);
  w.field("tca_cpar", c.tca_cpar);
  w.field("tca_bias_ma", c.tca_bias_ma);
  w.field("tca_nf_gamma", c.tca_nf_gamma);
  w.field("tca_flicker_corner_hz", c.tca_flicker_corner_hz);
  w.field("quad_w", c.quad_w);
  w.field("quad_ron", c.quad_ron);
  w.field("quad_l", c.quad_l);
  w.field("sw12_w", c.sw12_w);
  w.field("rdeg", c.rdeg);
  w.field("rdeg_ideal_extra", c.rdeg_ideal_extra);
  w.field("tg_resistance", c.tg_resistance);
  w.field("cc_load", c.cc_load);
  w.field("tia_rf", c.tia_rf);
  w.field("tia_cf", c.tia_cf);
  w.field("tia_ota_gm", c.tia_ota_gm);
  w.field("tia_ota_rout", c.tia_ota_rout);
  w.field("tia_ota_gbw_hz", c.tia_ota_gbw_hz);
  w.field("tia_bias_ma", c.tia_bias_ma);
  w.field("tia_input_noise_nv", c.tia_input_noise_nv);
  w.field("tia_flicker_corner_hz", c.tia_flicker_corner_hz);
  w.field("active_pair_noise_gm", c.active_pair_noise_gm);
  w.field("active_pair_flicker_corner_hz", c.active_pair_flicker_corner_hz);
  w.field("lo_buffer_ma", c.lo_buffer_ma);
  w.field("bias_overhead_ma", c.bias_overhead_ma);
  w.field("core_bias_ma", c.core_bias_ma);
  w.end_record();
}

std::vector<double> ac_freq_grid(const AcSpec& ac) {
  return ac.log_scale ? spice::log_space(ac.f_start_hz, ac.f_stop_hz, ac.points)
                      : spice::lin_space(ac.f_start_hz, ac.f_stop_hz, ac.points);
}

std::string execute_op(const Request& req) {
  spice::Circuit ckt = spice::parse_netlist(req.netlist);
  const spice::Solution op = spice::dc_operating_point(ckt);
  // Node names sorted so the payload bytes are independent of declaration
  // order, matching the key's normalization.
  std::map<std::string, double> nodes;
  for (spice::NodeId n = 1; n < ckt.num_nodes(); ++n) nodes[ckt.node_name(n)] = op.v(n);
  std::string out = "{\"analysis\":\"op\",\"nodes\":{";
  bool first = true;
  for (const auto& [name, v] : nodes) {
    if (!first) out.push_back(',');
    first = false;
    out += json::quoted(name);
    out.push_back(':');
    out += json::number(v);
  }
  out += "},\"power_w\":";
  out += json::number(spice::total_dissipated_power(ckt, op));
  out.push_back('}');
  return out;
}

std::string execute_ac(const Request& req) {
  if (req.ac.probe.empty())
    throw std::invalid_argument("ac request requires a probe node");
  if (req.ac.points < 2)
    throw std::invalid_argument("ac request requires at least 2 points");
  spice::Circuit ckt = spice::parse_netlist(req.netlist);
  const spice::NodeId probe = ckt.find_node(req.ac.probe);
  const spice::NodeId ref =
      req.ac.probe_ref.empty() ? spice::kGround : ckt.find_node(req.ac.probe_ref);
  const spice::Solution op = spice::dc_operating_point(ckt);
  const std::vector<double> freqs = ac_freq_grid(req.ac);
  const spice::AcResult res = spice::ac_sweep(ckt, op, freqs);
  std::string out = "{\"analysis\":\"ac\",\"probe\":";
  out += json::quoted(req.ac.probe);
  out += ",\"freqs_hz\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(freqs[i]);
  }
  out += "],\"real\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(res.vd(i, probe, ref).real());
  }
  out += "],\"imag\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(res.vd(i, probe, ref).imag());
  }
  out += "]}";
  return out;
}

std::string execute_metric(const Request& req) {
  const double value = core::evaluate_metric(req.metric);
  std::string out = "{\"analysis\":\"metric\",\"metric\":";
  out += json::quoted(core::metric_name(req.metric.metric));
  out += ",\"mode\":";
  out += json::quoted(frontend::mode_name(req.metric.config.mode));
  out += ",\"value\":";
  out += json::number(value);
  out.push_back('}');
  return out;
}

}  // namespace

std::string request_canonical(const Request& req) {
  CanonicalWriter w;
  append_version_record(w);
  switch (req.kind) {
    case RequestKind::kOp: {
      const spice::Circuit ckt = spice::parse_netlist(req.netlist);
      append_canonical_circuit(w, ckt);
      w.begin_record("analysis");
      w.field("kind", "op");
      w.end_record();
      break;
    }
    case RequestKind::kAc: {
      const spice::Circuit ckt = spice::parse_netlist(req.netlist);
      append_canonical_circuit(w, ckt);
      w.begin_record("analysis");
      w.field("kind", "ac");
      w.field("f_start_hz", req.ac.f_start_hz);
      w.field("f_stop_hz", req.ac.f_stop_hz);
      w.field("points", req.ac.points);
      w.field("scale", req.ac.log_scale ? "log" : "lin");
      w.field("probe", req.ac.probe);
      w.field("probe_ref", req.ac.probe_ref);
      w.end_record();
      break;
    }
    case RequestKind::kMixerMetric: {
      append_mixer_config(w, req.metric.config);
      w.begin_record("analysis");
      w.field("kind", "metric");
      w.field("metric", core::metric_name(req.metric.metric));
      w.field("f_if_hz", req.metric.f_if_hz);
      w.field("f_rf_hz", req.metric.f_rf_hz);
      w.end_record();
      break;
    }
  }
  return w.str();
}

Hash128 request_key(const Request& req) { return hash128(request_canonical(req)); }

std::string execute_request(const Request& req) {
  switch (req.kind) {
    case RequestKind::kOp: return execute_op(req);
    case RequestKind::kAc: return execute_ac(req);
    case RequestKind::kMixerMetric: return execute_metric(req);
  }
  throw std::invalid_argument("unhandled request kind");
}

}  // namespace rfmix::svc
