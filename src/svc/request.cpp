// Protocol framing + op-agnostic dispatch. Everything kind-specific —
// parameter schemas, canonical cache records, execution, router
// re-serialization — lives in the OpRegistry (src/svc/ops/*); this file
// only knows the envelope: id echoing, version detection, the v2 strict
// envelope scan, and how to hand the params object to whichever OpSpec the
// "kind" names. The v1 (version-less) layout is the same table applied
// leniently to the whole document.
#include "svc/request.hpp"

#include <climits>
#include <cmath>
#include <stdexcept>

#include "obs/json_writer.hpp"
#include "svc/canonical.hpp"
#include "svc/json_parse.hpp"
#include "svc/op_registry.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

double number_field(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  return v->as_number();
}

/// Re-serialize the request's "id" member for echoing (number, string, or
/// absent -> "null"). Anything else would make responses unroutable, so it
/// is an invalid_request, not a silent null.
std::string id_of(const JsonValue& doc) {
  const JsonValue* id = doc.find("id");
  if (id == nullptr || id->is_null()) return "null";
  if (id->is_number()) {
    if (!std::isfinite(id->as_number()))
      throw RequestError(ErrorCode::kInvalidRequest,
                         "request id must be a finite number or a string");
    return json::number(id->as_number());
  }
  if (id->is_string()) return json::quoted(id->as_string());
  throw RequestError(ErrorCode::kInvalidRequest,
                     "request id must be a number or a string");
}

/// Apply an op's schema + cross-field checks onto a fresh Request, mapping
/// any schema throw to kBadParams. `strict` is the v2 top-level setting
/// (v1 is always lenient: the params *are* the whole document, envelope
/// fields included).
Request build_analysis_request(const OpSpec& spec, const JsonValue& params,
                               bool strict) {
  Request req;
  req.kind = spec.kind;
  try {
    spec.params.apply(params, req, strict);
    if (spec.finish) spec.finish(req);
  } catch (const RequestError&) {
    throw;
  } catch (const std::exception& e) {
    throw RequestError(ErrorCode::kBadParams, e.what());
  }
  return req;
}

const JsonValue kEmptyObject = JsonValue::object({});

}  // namespace

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kUnsupportedVersion: return "unsupported_version";
    case ErrorCode::kUnknownKind: return "unknown_kind";
    case ErrorCode::kBadParams: return "bad_params";
    case ErrorCode::kExecFailed: return "exec_failed";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "internal_error";
}

bool is_analysis_kind(std::string_view kind) {
  const OpSpec* op = OpRegistry::instance().find(kind);
  return op != nullptr && op->analysis;
}

ParsedRequest parse_request(const JsonValue& doc) {
  if (!doc.is_object())
    throw RequestError(ErrorCode::kInvalidRequest, "request must be a JSON object");

  ParsedRequest out;
  out.id_json = id_of(doc);

  // Version detection: no "v" (or an explicit 1) is the deprecated v1
  // layout with analysis fields at the top level; 2 is the envelope with
  // params; anything else is a client from the future.
  if (const JsonValue* v = doc.find("v")) {
    if (!v->is_number() || (v->as_number() != 1.0 && v->as_number() != 2.0))
      throw RequestError(ErrorCode::kUnsupportedVersion,
                         "unsupported protocol version (this server speaks v1 and v2)");
    out.version = static_cast<int>(v->as_number());
  }

  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr)
    throw RequestError(ErrorCode::kInvalidRequest, "missing required field 'kind'");
  if (!kind->is_string())
    throw RequestError(ErrorCode::kInvalidRequest, "field 'kind' must be a string");
  out.kind = kind->as_string();

  // Kind resolution against the registry. Ops that postdate the v1 freeze
  // (cancel, npath_zin, gen, ...) are not in_v1, so v1 rejects them as
  // unknown rather than growing new top-level fields.
  const OpRegistry& registry = OpRegistry::instance();
  const OpSpec* spec = registry.find(out.kind);
  if (spec == nullptr || (out.version == 1 && !spec->in_v1))
    throw RequestError(ErrorCode::kUnknownKind,
                       "unknown request kind '" + out.kind + "' (expected " +
                           registry.kinds_list(out.version) + ")");

  try {
    const JsonValue* v = doc.find("priority");
    if (v != nullptr) {
      const double d = v->as_number();
      if (!std::isfinite(d) || d != std::floor(d) ||
          d < static_cast<double>(INT_MIN) || d > static_cast<double>(INT_MAX))
        throw std::invalid_argument("field 'priority' must be an integer in int range");
      out.priority = static_cast<int>(d);
    }
  } catch (const std::exception& e) {
    throw RequestError(ErrorCode::kBadParams, e.what());
  }

  // v1: analysis fields live at the top level; unknown extras are ignored
  // for back-compat. Parsed here and frozen — new capability goes to v2.
  if (out.version == 1) {
    if (spec->analysis)
      out.request = build_analysis_request(*spec, doc, /*strict=*/false);
    return out;
  }

  // v2: a strict envelope. Everything kind-specific lives under "params";
  // an unknown envelope field is an error so typos fail loudly instead of
  // silently changing meaning.
  for (const auto& [key, value] : doc.as_object()) {
    (void)value;
    if (key != "v" && key != "id" && key != "kind" && key != "priority" &&
        key != "timeout_ms" && key != "params")
      throw RequestError(ErrorCode::kInvalidRequest,
                         "unknown envelope field '" + key +
                             "' (v2 request parameters live under \"params\")");
  }
  const JsonValue* params = doc.find("params");
  if (params != nullptr && !params->is_object())
    throw RequestError(ErrorCode::kInvalidRequest, "field 'params' must be an object");
  const JsonValue& p = params != nullptr ? *params : kEmptyObject;

  try {
    out.timeout_ms = number_field(doc, "timeout_ms", 0.0);
    if (!std::isfinite(out.timeout_ms) || out.timeout_ms < 0.0)
      throw std::invalid_argument("field 'timeout_ms' must be a finite number >= 0");
  } catch (const std::exception& e) {
    throw RequestError(ErrorCode::kInvalidRequest, e.what());
  }

  if (spec->parse_control) {
    spec->parse_control(p, out);
    return out;
  }
  if (spec->analysis)
    out.request = build_analysis_request(*spec, p, spec->strict_params);
  return out;
}

std::string request_canonical(const Request& req) {
  const OpSpec* spec = OpRegistry::instance().find(req.kind);
  if (spec == nullptr || !spec->canonical)
    throw std::invalid_argument("unhandled request kind");
  CanonicalWriter w;
  append_version_record(w);
  spec->canonical(w, req);
  return w.str();
}

Hash128 request_key(const Request& req) { return hash128(request_canonical(req)); }

std::string serialize_v2_request(const ParsedRequest& req, const std::string& id_json) {
  std::string out = "{\"v\":2,\"id\":" + id_json + ",\"kind\":" + json::quoted(req.kind);
  if (req.priority != 0) out += ",\"priority\":" + json::number(double(req.priority));
  if (req.timeout_ms > 0.0) out += ",\"timeout_ms\":" + json::number(req.timeout_ms);
  if (req.kind == "cancel") {
    out += ",\"params\":{\"target\":" + req.cancel_target + "}}";
    return out;
  }
  const OpSpec* spec = OpRegistry::instance().find(req.kind);
  if (spec == nullptr || !spec->serialize_params) {  // ping / stats: no params
    out.push_back('}');
    return out;
  }
  out += ",\"params\":{";
  spec->serialize_params(out, req.request);
  out += "}}";
  return out;
}

std::string execute_request(const Request& req) {
  const OpSpec* spec = OpRegistry::instance().find(req.kind);
  if (spec == nullptr || !spec->execute)
    throw std::invalid_argument("unhandled request kind");
  return spec->execute(req);
}

}  // namespace rfmix::svc
