#include "svc/hash.hpp"

#include <cstring>

namespace rfmix::svc {

namespace {

inline std::uint64_t rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Little-endian load regardless of host endianness.
inline std::uint64_t load64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

constexpr std::uint64_t kC1 = 0x87c37b91114253d5ull;
constexpr std::uint64_t kC2 = 0x4cf5ad432745937full;

}  // namespace

Hash128 hash128(std::string_view data, std::uint64_t seed) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  const std::size_t len = data.size();
  const std::size_t nblocks = len / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load64(p + i * 16);
    std::uint64_t k2 = load64(p + i * 16 + 8);

    k1 *= kC1;
    k1 = rotl64(k1, 31);
    k1 *= kC2;
    h1 ^= k1;
    h1 = rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;

    k2 *= kC2;
    k2 = rotl64(k2, 33);
    k2 *= kC1;
    h2 ^= k2;
    h2 = rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  const unsigned char* tail = p + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15u) {
    case 15: k2 ^= std::uint64_t(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= std::uint64_t(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= std::uint64_t(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= std::uint64_t(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= std::uint64_t(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= std::uint64_t(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= std::uint64_t(tail[8]);
      k2 *= kC2;
      k2 = rotl64(k2, 33);
      k2 *= kC1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= std::uint64_t(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= std::uint64_t(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= std::uint64_t(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= std::uint64_t(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= std::uint64_t(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= std::uint64_t(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= std::uint64_t(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= std::uint64_t(tail[0]);
      k1 *= kC1;
      k1 = rotl64(k1, 31);
      k1 *= kC2;
      h1 ^= k1;
      break;
    default: break;
  }

  h1 ^= std::uint64_t(len);
  h2 ^= std::uint64_t(len);
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

std::string Hash128::hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) out[15 - i] = kDigits[(hi >> (4 * i)) & 0xf];
  for (int i = 0; i < 16; ++i) out[31 - i] = kDigits[(lo >> (4 * i)) & 0xf];
  return out;
}

bool parse_hash128(std::string_view hex, Hash128* out) {
  if (hex.size() != 32 || out == nullptr) return false;
  std::uint64_t lanes[2] = {0, 0};
  for (int lane = 0; lane < 2; ++lane) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(lane * 16 + i)];
      std::uint64_t d = 0;
      if (c >= '0' && c <= '9') {
        d = std::uint64_t(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = std::uint64_t(c - 'a') + 10;
      } else {
        return false;
      }
      lanes[lane] = (lanes[lane] << 4) | d;
    }
  }
  out->hi = lanes[0];
  out->lo = lanes[1];
  return true;
}

}  // namespace rfmix::svc
