// rfmixd: the simulation service daemon.
//
// Speaks the newline-delimited JSON protocol from docs/service.md (v2
// envelope; version-less v1 requests still accepted) over stdin/stdout
// (default) or a Unix domain socket (--socket PATH). Socket mode serves
// many clients concurrently through a poll(2) event loop; all requests
// share one ResultCache and one JobScheduler, so repeated and
// concurrent-identical requests are served from cache / single-flight
// execution. SIGINT/SIGTERM trigger a graceful drain: stop accepting,
// finish every dispatched job, flush every response, exit.
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "runtime/thread_pool.hpp"
#include "svc/cache.hpp"
#include "svc/event_loop.hpp"
#include "svc/fault.hpp"
#include "svc/server.hpp"

#ifndef _WIN32
#include <csignal>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

void print_usage(std::ostream& os) {
  os << "usage: rfmixd [options]\n"
        "\n"
        "Serve rfmix simulation requests as newline-delimited JSON\n"
        "(one request per line in, one response per line out).\n"
        "\n"
        "options:\n"
        "  --socket PATH      listen on a Unix domain socket instead of stdin/stdout\n"
        "                     (concurrent clients; SIGINT/SIGTERM drain gracefully)\n"
        "  --cache-dir DIR    persist results to DIR (default: $RFMIX_CACHE_DIR)\n"
        "  --max-entries N    in-memory LRU capacity (default: $RFMIX_CACHE_ENTRIES or 4096)\n"
        "  --timeout-ms MS    default per-request deadline, 0 = none (socket mode)\n"
        "  --max-inflight N   per-connection concurrent request cap (default 64)\n"
        "  --max-output-kb N  per-connection unread-response cap before the\n"
        "                     connection stops being read (default 4096)\n"
        "  --help             show this help\n"
        "\n"
        "Request/response schema: docs/service.md\n";
}

#ifndef _WIN32
rfmix::svc::ServerLoop* g_loop = nullptr;

extern "C" void handle_shutdown_signal(int) {
  if (g_loop != nullptr) g_loop->request_shutdown();
}
#endif

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string cache_dir;
  if (const char* env = std::getenv("RFMIX_CACHE_DIR")) cache_dir = env;
  std::size_t max_entries = 4096;
  if (const char* env = std::getenv("RFMIX_CACHE_ENTRIES")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) max_entries = static_cast<std::size_t>(v);
  }
  rfmix::svc::ServerLoop::Options loop_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rfmixd: " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--cache-dir") {
      cache_dir = value();
    } else if (arg == "--max-entries") {
      const long v = std::strtol(value().c_str(), nullptr, 10);
      if (v < 1) {
        std::cerr << "rfmixd: --max-entries must be >= 1\n";
        return 2;
      }
      max_entries = static_cast<std::size_t>(v);
    } else if (arg == "--timeout-ms") {
      const double v = std::strtod(value().c_str(), nullptr);
      if (v < 0.0) {
        std::cerr << "rfmixd: --timeout-ms must be >= 0\n";
        return 2;
      }
      loop_opts.default_timeout_ms = v;
    } else if (arg == "--max-inflight") {
      const long v = std::strtol(value().c_str(), nullptr, 10);
      if (v < 1) {
        std::cerr << "rfmixd: --max-inflight must be >= 1\n";
        return 2;
      }
      loop_opts.max_inflight = static_cast<std::size_t>(v);
    } else if (arg == "--max-output-kb") {
      const long v = std::strtol(value().c_str(), nullptr, 10);
      if (v < 1) {
        std::cerr << "rfmixd: --max-output-kb must be >= 1\n";
        return 2;
      }
      loop_opts.max_output_bytes = static_cast<std::size_t>(v) * 1024;
    } else {
      std::cerr << "rfmixd: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  try {
    rfmix::svc::fault::init_from_env();
  } catch (const std::exception& e) {
    std::cerr << "rfmixd: bad RFMIX_FAULT: " << e.what() << "\n";
    return 2;
  }

#ifndef _WIN32
  // In every mode, not just socket mode: a stdin-mode client that closes
  // its read end mid-response must surface as a write error, not SIGPIPE
  // killing the daemon.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  rfmix::svc::ResultCache cache(max_entries, cache_dir);
  rfmix::svc::ServerSession session(cache, rfmix::runtime::ThreadPool::global());

  if (socket_path.empty()) {
    session.serve(std::cin, std::cout);
    return 0;
  }

#ifndef _WIN32
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "rfmixd: socket path too long\n";
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  // Only ever remove a *stale* socket: refuse to clobber a regular file
  // (or anything else) at the path, and refuse to steal a socket another
  // live server is still accepting on.
  struct stat st {};
  if (::lstat(socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      std::cerr << "rfmixd: " << socket_path
                << " exists and is not a socket; refusing to remove it\n";
      return 1;
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool live =
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
      ::close(probe);
      if (live) {
        std::cerr << "rfmixd: another server is listening on " << socket_path << "\n";
        return 1;
      }
    }
    ::unlink(socket_path.c_str());
  }

  rfmix::svc::ServerLoop loop(session, loop_opts);
  std::string err;
  if (!loop.listen_unix(socket_path, &err)) {
    std::cerr << "rfmixd: " << socket_path << ": " << err << "\n";
    return 1;
  }

  g_loop = &loop;
  struct sigaction sa {};
  sa.sa_handler = handle_shutdown_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::cerr << "rfmixd: listening on " << socket_path << "\n";
  loop.run();
  g_loop = nullptr;
  ::unlink(socket_path.c_str());
  std::cerr << "rfmixd: drained, shutting down\n";
  return 0;
#else
  std::cerr << "rfmixd: --socket is not supported on this platform\n";
  return 1;
#endif
}
