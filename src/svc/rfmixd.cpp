// rfmixd: the simulation service daemon.
//
// Speaks the newline-delimited JSON protocol from docs/service.md over
// stdin/stdout (default) or a Unix domain socket (--socket PATH, clients
// served one at a time). All requests share one ResultCache and one
// JobScheduler, so repeated and concurrent-identical requests are served
// from cache / single-flight execution.
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "runtime/thread_pool.hpp"
#include "svc/cache.hpp"
#include "svc/server.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>  // libstdc++: iostream over an accepted fd
#endif

namespace {

void print_usage(std::ostream& os) {
  os << "usage: rfmixd [options]\n"
        "\n"
        "Serve rfmix simulation requests as newline-delimited JSON\n"
        "(one request per line in, one response per line out).\n"
        "\n"
        "options:\n"
        "  --socket PATH     listen on a Unix domain socket instead of stdin/stdout\n"
        "  --cache-dir DIR   persist results to DIR (default: $RFMIX_CACHE_DIR)\n"
        "  --max-entries N   in-memory LRU capacity (default: $RFMIX_CACHE_ENTRIES or 4096)\n"
        "  --help            show this help\n"
        "\n"
        "Request/response schema: docs/service.md\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string cache_dir;
  if (const char* env = std::getenv("RFMIX_CACHE_DIR")) cache_dir = env;
  std::size_t max_entries = 4096;
  if (const char* env = std::getenv("RFMIX_CACHE_ENTRIES")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) max_entries = static_cast<std::size_t>(v);
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rfmixd: " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--cache-dir") {
      cache_dir = value();
    } else if (arg == "--max-entries") {
      const long v = std::strtol(value().c_str(), nullptr, 10);
      if (v < 1) {
        std::cerr << "rfmixd: --max-entries must be >= 1\n";
        return 2;
      }
      max_entries = static_cast<std::size_t>(v);
    } else {
      std::cerr << "rfmixd: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  rfmix::svc::ResultCache cache(max_entries, cache_dir);
  rfmix::svc::ServerSession session(cache, rfmix::runtime::ThreadPool::global());

  if (socket_path.empty()) {
    session.serve(std::cin, std::cout);
    return 0;
  }

#ifndef _WIN32
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "rfmixd: socket path too long\n";
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);

  // Only ever remove a *stale* socket: refuse to clobber a regular file
  // (or anything else) at the path, and refuse to steal a socket another
  // live server is still accepting on.
  struct stat st {};
  if (::lstat(socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      std::cerr << "rfmixd: " << socket_path
                << " exists and is not a socket; refusing to remove it\n";
      return 1;
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool live =
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
      ::close(probe);
      if (live) {
        std::cerr << "rfmixd: another server is listening on " << socket_path << "\n";
        return 1;
      }
    }
    ::unlink(socket_path.c_str());
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "rfmixd: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 8) != 0) {
    std::cerr << "rfmixd: bind/listen " << socket_path << ": " << std::strerror(errno)
              << "\n";
    ::close(listener);
    return 1;
  }
  std::cerr << "rfmixd: listening on " << socket_path << "\n";
  while (true) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      std::cerr << "rfmixd: accept: " << std::strerror(errno) << "\n";
      break;
    }
    {
      __gnu_cxx::stdio_filebuf<char> inbuf(client, std::ios::in);
      __gnu_cxx::stdio_filebuf<char> outbuf(::dup(client), std::ios::out);
      std::istream in(&inbuf);
      std::ostream out(&outbuf);
      session.serve(in, out);
    }  // filebufs close both fds
  }
  ::close(listener);
  ::unlink(socket_path.c_str());
  return 0;
#else
  std::cerr << "rfmixd: --socket is not supported on this platform\n";
  return 1;
#endif
}
