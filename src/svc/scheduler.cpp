#include "svc/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"

namespace rfmix::svc {

JobScheduler::Outcome JobScheduler::submit(const Job& job) {
  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.submitted;
  RFMIX_OBS_COUNT("svc.jobs.submitted");
  // Single-flight: the in-flight check and the cache probe happen under one
  // lock, so a key is either joined, served, or enqueued — never raced into
  // a second execution.
  if (const auto it = inflight_.find(job.key); it != inflight_.end()) {
    ++stats_.deduped;
    RFMIX_OBS_COUNT("svc.jobs.deduped");
    return Outcome{it->second.future, job.key, /*cache_hit=*/false, /*deduped=*/true};
  }
  if (auto hit = cache_.get(job.key)) {
    ++stats_.cache_hits;
    std::promise<std::string> ready;
    ready.set_value(std::move(*hit));
    return Outcome{ready.get_future().share(), job.key, /*cache_hit=*/true,
                   /*deduped=*/false};
  }
  auto promise = std::make_shared<std::promise<std::string>>();
  std::shared_future<std::string> fut = promise->get_future().share();
  inflight_.emplace(job.key, Inflight{fut, {}});
  heap_.push(Pending{job.key, job.compute, std::move(promise), job.priority, next_seq_++});
  lk.unlock();
  // Each pool task drains one pending job — not necessarily the one pushed
  // above; the heap decides, which is what makes priority work.
  pool_.submit([this] { drain_one(); });
  return Outcome{std::move(fut), job.key, /*cache_hit=*/false, /*deduped=*/false};
}

void JobScheduler::submit_async(const Job& job, Completion done) {
  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.submitted;
  RFMIX_OBS_COUNT("svc.jobs.submitted");
  if (const auto it = inflight_.find(job.key); it != inflight_.end()) {
    ++stats_.deduped;
    RFMIX_OBS_COUNT("svc.jobs.deduped");
    it->second.callbacks.emplace_back(std::move(done), /*deduped=*/true);
    return;
  }
  if (auto hit = cache_.get(job.key)) {
    ++stats_.cache_hits;
    lk.unlock();
    const std::string payload = std::move(*hit);
    done(&payload, nullptr, /*cache_hit=*/true, /*deduped=*/false);
    return;
  }
  auto promise = std::make_shared<std::promise<std::string>>();
  Inflight entry{promise->get_future().share(), {}};
  entry.callbacks.emplace_back(std::move(done), /*deduped=*/false);
  inflight_.emplace(job.key, std::move(entry));
  heap_.push(Pending{job.key, job.compute, std::move(promise), job.priority, next_seq_++});
  lk.unlock();
  // On a serial pool this runs the job (and the completion) inline before
  // returning — callers must tolerate synchronous completion.
  pool_.submit([this] { drain_one(); });
}

void JobScheduler::drain_one() {
  Pending p;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (heap_.empty()) return;
    p = heap_.top();
    heap_.pop();
  }
  std::string payload;
  std::exception_ptr err;
  {
    RFMIX_OBS_SCOPED_TIMER("svc.jobs.exec");
    try {
      payload = p.compute();
    } catch (...) {
      err = std::current_exception();
    }
  }
  if (!err) {
    // Publish to the cache before leaving the in-flight set so a submitter
    // arriving in between sees a hit rather than re-executing.
    cache_.put(p.key, payload);
  }
  std::vector<std::pair<Completion, bool>> callbacks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (const auto it = inflight_.find(p.key); it != inflight_.end()) {
      callbacks = std::move(it->second.callbacks);
      inflight_.erase(it);
    }
    ++stats_.executed;
    if (err) ++stats_.failed;
  }
  RFMIX_OBS_COUNT("svc.jobs.executed");
  if (err) {
    RFMIX_OBS_COUNT("svc.jobs.failed");
    p.promise->set_exception(err);
  } else {
    p.promise->set_value(payload);
  }
  // Callbacks run after the promise so blocking waiters of the same key
  // are never held behind callback work.
  for (auto& [done, deduped] : callbacks) {
    if (err)
      done(nullptr, err, /*cache_hit=*/false, deduped);
    else
      done(&payload, nullptr, /*cache_hit=*/false, deduped);
  }
}

std::string JobScheduler::await(const Outcome& outcome) {
  using namespace std::chrono_literals;
  // Lend this thread to the pool while the result is pending; the pool
  // parks it on the worker wake signal when there is nothing to help with.
  pool_.assist_until(
      [&] { return outcome.result.wait_for(0s) == std::future_status::ready; });
  return outcome.result.get();
}

std::string JobScheduler::run(const Job& job) { return await(submit(job)); }

std::vector<std::string> JobScheduler::run_batch(const std::vector<Job>& jobs) {
  // Pre-sort submissions so priority order also holds on a serial pool,
  // where submit() executes inline.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].priority > jobs[b].priority;
  });
  std::vector<Outcome> outcomes(jobs.size());
  for (const std::size_t idx : order) outcomes[idx] = submit(jobs[idx]);
  std::vector<std::string> results;
  results.reserve(jobs.size());
  for (const Outcome& o : outcomes) results.push_back(await(o));
  return results;
}

JobScheduler::Stats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace rfmix::svc
