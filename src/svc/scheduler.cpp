#include "svc/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"

namespace rfmix::svc {

JobScheduler::Outcome JobScheduler::submit(const Job& job) {
  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.submitted;
  RFMIX_OBS_COUNT("svc.jobs.submitted");
  // Single-flight: the in-flight check and the cache probe happen under one
  // lock, so a key is either joined, served, or enqueued — never raced into
  // a second execution.
  if (const auto it = inflight_.find(job.key); it != inflight_.end()) {
    ++stats_.deduped;
    RFMIX_OBS_COUNT("svc.jobs.deduped");
    return Outcome{it->second, job.key, /*cache_hit=*/false, /*deduped=*/true};
  }
  if (auto hit = cache_.get(job.key)) {
    ++stats_.cache_hits;
    std::promise<std::string> ready;
    ready.set_value(std::move(*hit));
    return Outcome{ready.get_future().share(), job.key, /*cache_hit=*/true,
                   /*deduped=*/false};
  }
  auto promise = std::make_shared<std::promise<std::string>>();
  std::shared_future<std::string> fut = promise->get_future().share();
  inflight_.emplace(job.key, fut);
  heap_.push(Pending{job.key, job.compute, std::move(promise), job.priority, next_seq_++});
  lk.unlock();
  // Each pool task drains one pending job — not necessarily the one pushed
  // above; the heap decides, which is what makes priority work.
  pool_.submit([this] { drain_one(); });
  return Outcome{std::move(fut), job.key, /*cache_hit=*/false, /*deduped=*/false};
}

void JobScheduler::drain_one() {
  Pending p;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (heap_.empty()) return;
    p = heap_.top();
    heap_.pop();
  }
  std::string payload;
  std::exception_ptr err;
  {
    RFMIX_OBS_SCOPED_TIMER("svc.jobs.exec");
    try {
      payload = p.compute();
    } catch (...) {
      err = std::current_exception();
    }
  }
  if (!err) {
    // Publish to the cache before leaving the in-flight set so a submitter
    // arriving in between sees a hit rather than re-executing.
    cache_.put(p.key, payload);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    inflight_.erase(p.key);
    ++stats_.executed;
    if (err) ++stats_.failed;
  }
  RFMIX_OBS_COUNT("svc.jobs.executed");
  if (err) {
    RFMIX_OBS_COUNT("svc.jobs.failed");
    p.promise->set_exception(err);
  } else {
    p.promise->set_value(std::move(payload));
  }
}

std::string JobScheduler::await(const Outcome& outcome) {
  using namespace std::chrono_literals;
  while (outcome.result.wait_for(0s) != std::future_status::ready) {
    if (!pool_.help_one()) outcome.result.wait_for(200us);
  }
  return outcome.result.get();
}

std::string JobScheduler::run(const Job& job) { return await(submit(job)); }

std::vector<std::string> JobScheduler::run_batch(const std::vector<Job>& jobs) {
  // Pre-sort submissions so priority order also holds on a serial pool,
  // where submit() executes inline.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].priority > jobs[b].priority;
  });
  std::vector<Outcome> outcomes(jobs.size());
  for (const std::size_t idx : order) outcomes[idx] = submit(jobs[idx]);
  std::vector<std::string> results;
  results.reserve(jobs.size());
  for (const Outcome& o : outcomes) results.push_back(await(o));
  return results;
}

JobScheduler::Stats JobScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace rfmix::svc
