// Minimal JSON parser for the rfmixd request protocol.
//
// The repo's obs layer writes JSON but never reads it; the service layer
// needs to accept newline-delimited JSON requests, so this adds the
// missing half. Scope is deliberately small: full RFC 8259 value grammar,
// UTF-8 passed through verbatim, \uXXXX escapes decoded (surrogate pairs
// included), and objects keep insertion order so error messages can point
// at the offending key. Parse failures throw JsonParseError with a byte
// offset into the input line.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rfmix::svc {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& what)
      : std::runtime_error("json offset " + std::to_string(offset) + ": " + what),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(std::string_view key) const;

  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
JsonValue json_parse(std::string_view text);

}  // namespace rfmix::svc
