// The npath_zin op (v2 only): mixer-first N-path Zin/S11 sweep. Strict
// parameter object — a silently dropped knob would collide two different
// front ends on one cache key — with the sweep grid nested under "sweep".
#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "npath/zin.hpp"
#include "obs/json_writer.hpp"
#include "spice/ac.hpp"
#include "svc/canonical.hpp"
#include "svc/json_parse.hpp"
#include "svc/op_registry.hpp"
#include "svc/ops/registrations.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

std::vector<double> npath_freq_grid(const NpathSweepSpec& ns) {
  return ns.log_scale ? spice::log_space(ns.f_start_hz, ns.f_stop_hz, ns.points)
                      : spice::lin_space(ns.f_start_hz, ns.f_stop_hz, ns.points);
}

std::string execute_npath_zin(const Request& req) {
  const NpathSweepSpec& ns = req.npath;
  const npath::ZinSweep sw = npath::zin_sweep(ns.spec, npath_freq_grid(ns));
  const auto append_array = [](std::string& out, std::string_view name, auto&& value) {
    out += ",\"";
    out += name;
    out += "\":[";
    for (std::size_t i = 0; i < value.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += json::number(value[i]);
    }
    out.push_back(']');
  };
  std::vector<double> zin_re, zin_im, s11_db, rerad3;
  zin_re.reserve(sw.points.size());
  zin_im.reserve(sw.points.size());
  s11_db.reserve(sw.points.size());
  rerad3.reserve(sw.points.size());
  for (const npath::ZinPoint& pt : sw.points) {
    zin_re.push_back(pt.zin.real());
    zin_im.push_back(pt.zin.imag());
    // |S11| of a passive one-port is > 0; the clamp only guards the exact-
    // match singularity (log of 0 is not representable in JSON).
    s11_db.push_back(20.0 * std::log10(std::max(std::abs(pt.s11), 1e-12)));
    rerad3.push_back(pt.rerad_3lo);
  }
  std::string out = "{\"analysis\":\"npath_zin\",\"phases\":";
  out += json::number(double(ns.spec.lo.phases));
  out += ",\"f_lo_hz\":";
  out += json::number(ns.spec.f_lo_hz);
  append_array(out, "freqs_hz", sw.freqs_hz);
  append_array(out, "zin_real", zin_re);
  append_array(out, "zin_imag", zin_im);
  append_array(out, "s11_db", s11_db);
  append_array(out, "rerad3_rel", rerad3);
  out += ",\"summary\":{\"f_peak_hz\":";
  out += json::number(sw.summary.f_peak_hz);
  out += ",\"zin_peak_ohm\":";
  out += json::number(sw.summary.zin_peak_ohm);
  out += ",\"zin_floor_ohm\":";
  out += json::number(sw.summary.zin_floor_ohm);
  out += ",\"bw_3db_hz\":";
  out += json::number(sw.summary.bw_3db_hz);
  out += ",\"q\":";
  out += json::number(sw.summary.q);
  out += ",\"rerad3_max\":";
  out += json::number(sw.summary.rerad_3lo_max);
  out += "}}";
  return out;
}

}  // namespace

void register_npath_zin_op(OpRegistry& r) {
  OpSpec np;
  np.name = "npath_zin";  // v2 only: postdates the v1 freeze
  np.analysis = true;
  np.kind = RequestKind::kNpathZin;
  np.strict_params = true;
  np.params = Schema("npath_zin");
  np.params.integer("phases", [](double v, Request& q) { q.npath.spec.lo.phases = int(v); });
  np.params.number("duty", [](double v, Request& q) { q.npath.spec.lo.duty = v; });
  np.params.number("rise_frac", [](double v, Request& q) { q.npath.spec.lo.rise_frac = v; });
  np.params.number("overlap_guard",
                   [](double v, Request& q) { q.npath.spec.lo.overlap_guard = v; });
  np.params.integer("samples", [](double v, Request& q) { q.npath.spec.lo.samples = int(v); });
  np.params.number("f_lo_hz", [](double v, Request& q) { q.npath.spec.f_lo_hz = v; });
  np.params.number("r_source", [](double v, Request& q) { q.npath.spec.r_source = v; });
  np.params.number("switch_ron", [](double v, Request& q) { q.npath.spec.switch_ron = v; });
  np.params.number("zbb_r", [](double v, Request& q) { q.npath.spec.zbb_r = v; });
  np.params.number("zbb_c", [](double v, Request& q) { q.npath.spec.zbb_c = v; });
  np.params.number("c_rf", [](double v, Request& q) { q.npath.spec.c_rf = v; });
  np.params.integer("harmonics", [](double v, Request& q) { q.npath.spec.harmonics = int(v); });
  {
    Schema sweep("sweep");
    sweep.number("f_start_hz", [](double v, Request& q) { q.npath.f_start_hz = v; });
    sweep.number("f_stop_hz", [](double v, Request& q) { q.npath.f_stop_hz = v; });
    sweep.integer("points", [](double v, Request& q) { q.npath.points = int(v); });
    sweep.boolean("log_scale", [](bool v, Request& q) { q.npath.log_scale = v; });
    np.params.object("sweep", [sweep](const JsonValue& v, Request& q) {
      sweep.apply(v, q, /*strict=*/true);
    });
  }
  // Cross-field checks after the schema: the grid has to be sane and the
  // clock set realizable, so an impossible spec fails as bad_params, not
  // mid-solve.
  np.finish = [](Request& q) {
    if (q.npath.points < 2 || q.npath.points > 4096)
      throw std::invalid_argument("npath_zin sweep points must be in [2, 4096]");
    if (!(q.npath.f_start_hz > 0.0) || !(q.npath.f_stop_hz > q.npath.f_start_hz))
      throw std::invalid_argument(
          "npath_zin sweep requires 0 < f_start_hz < f_stop_hz");
    npath::validate(q.npath.spec);
  };
  np.canonical = [](CanonicalWriter& w, const Request& req) {
    // New record tags under the kCanonicalEpoch append-only rule: npath
    // requests hash over every front-end knob plus the sweep grid, so
    // two sweeps collide iff they describe the same physics.
    const npath::NpathSpec& s = req.npath.spec;
    w.begin_record("npath");
    w.field("phases", s.lo.phases);
    w.field("duty", s.lo.duty);
    w.field("rise_frac", s.lo.rise_frac);
    w.field("overlap_guard", s.lo.overlap_guard);
    w.field("samples", s.lo.samples);
    w.field("f_lo_hz", s.f_lo_hz);
    w.field("r_source", s.r_source);
    w.field("switch_ron", s.switch_ron);
    w.field("zbb_r", s.zbb_r);
    w.field("zbb_c", s.zbb_c);
    w.field("c_rf", s.c_rf);
    w.field("harmonics", s.harmonics);
    w.end_record();
    w.begin_record("analysis");
    w.field("kind", "npath_zin");
    w.field("f_start_hz", req.npath.f_start_hz);
    w.field("f_stop_hz", req.npath.f_stop_hz);
    w.field("points", req.npath.points);
    w.field("scale", req.npath.log_scale ? "log" : "lin");
    w.end_record();
  };
  np.execute = execute_npath_zin;
  np.serialize_params = [](std::string& out, const Request& req) {
    // Serialize every knob (the parser is strict on unknowns but quiet
    // on missing ones) so the replayed line parses to the same Request,
    // same canonical bytes, same key.
    const npath::NpathSpec& s = req.npath.spec;
    out += "\"phases\":" + json::number(double(s.lo.phases));
    out += ",\"duty\":" + json::number(s.lo.duty);
    out += ",\"rise_frac\":" + json::number(s.lo.rise_frac);
    out += ",\"overlap_guard\":" + json::number(s.lo.overlap_guard);
    out += ",\"samples\":" + json::number(double(s.lo.samples));
    out += ",\"f_lo_hz\":" + json::number(s.f_lo_hz);
    out += ",\"r_source\":" + json::number(s.r_source);
    out += ",\"switch_ron\":" + json::number(s.switch_ron);
    out += ",\"zbb_r\":" + json::number(s.zbb_r);
    out += ",\"zbb_c\":" + json::number(s.zbb_c);
    out += ",\"c_rf\":" + json::number(s.c_rf);
    out += ",\"harmonics\":" + json::number(double(s.harmonics));
    out += ",\"sweep\":{\"f_start_hz\":" + json::number(req.npath.f_start_hz);
    out += ",\"f_stop_hz\":" + json::number(req.npath.f_stop_hz);
    out += ",\"points\":" + json::number(double(req.npath.points));
    out += ",\"log_scale\":";
    out += req.npath.log_scale ? "true" : "false";
    out += "}";
  };
  r.register_op(std::move(np));
}

}  // namespace rfmix::svc
