// The mixer_metric op: core::evaluate_metric over a MixerConfig. Also
// home to the MixerConfig wire <-> struct plumbing (apply_mixer_config and
// its serialization twin): every config field is spelled once here, in
// canonical-record order, and the strict parse / serialize-everything pair
// is what keeps router replay and cache identity exact.
#include "core/metrics.hpp"
#include "obs/json_writer.hpp"
#include "svc/canonical.hpp"
#include "svc/json_parse.hpp"
#include "svc/op_registry.hpp"
#include "svc/ops/registrations.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

bool set_config_number(core::MixerConfig& c, std::string_view key, double v) {
  if (key == "temperature_k") { c.temperature_k = v; return true; }
  if (key == "vdd") { c.vdd = v; return true; }
  if (key == "f_lo_hz") { c.f_lo_hz = v; return true; }
  if (key == "lo_amplitude") { c.lo_amplitude = v; return true; }
  if (key == "lo_common_mode") { c.lo_common_mode = v; return true; }
  if (key == "lo_rise_fraction") { c.lo_rise_fraction = v; return true; }
  if (key == "lo_phase_frac") { c.lo_phase_frac = v; return true; }
  if (key == "rf_series_r") { c.rf_series_r = v; return true; }
  if (key == "tca_gm") { c.tca_gm = v; return true; }
  if (key == "tca_rout") { c.tca_rout = v; return true; }
  if (key == "tca_cpar") { c.tca_cpar = v; return true; }
  if (key == "tca_bias_ma") { c.tca_bias_ma = v; return true; }
  if (key == "tca_nf_gamma") { c.tca_nf_gamma = v; return true; }
  if (key == "tca_flicker_corner_hz") { c.tca_flicker_corner_hz = v; return true; }
  if (key == "quad_w") { c.quad_w = v; return true; }
  if (key == "quad_ron") { c.quad_ron = v; return true; }
  if (key == "quad_l") { c.quad_l = v; return true; }
  if (key == "sw12_w") { c.sw12_w = v; return true; }
  if (key == "rdeg") { c.rdeg = v; return true; }
  if (key == "rdeg_ideal_extra") { c.rdeg_ideal_extra = v; return true; }
  if (key == "tg_resistance") { c.tg_resistance = v; return true; }
  if (key == "cc_load") { c.cc_load = v; return true; }
  if (key == "tia_rf") { c.tia_rf = v; return true; }
  if (key == "tia_cf") { c.tia_cf = v; return true; }
  if (key == "tia_ota_gm") { c.tia_ota_gm = v; return true; }
  if (key == "tia_ota_rout") { c.tia_ota_rout = v; return true; }
  if (key == "tia_ota_gbw_hz") { c.tia_ota_gbw_hz = v; return true; }
  if (key == "tia_bias_ma") { c.tia_bias_ma = v; return true; }
  if (key == "tia_input_noise_nv") { c.tia_input_noise_nv = v; return true; }
  if (key == "tia_flicker_corner_hz") { c.tia_flicker_corner_hz = v; return true; }
  if (key == "active_pair_noise_gm") { c.active_pair_noise_gm = v; return true; }
  if (key == "active_pair_flicker_corner_hz") {
    c.active_pair_flicker_corner_hz = v;
    return true;
  }
  if (key == "lo_buffer_ma") { c.lo_buffer_ma = v; return true; }
  if (key == "bias_overhead_ma") { c.bias_overhead_ma = v; return true; }
  if (key == "core_bias_ma") { c.core_bias_ma = v; return true; }
  return false;
}

/// Every MixerConfig field, in declaration order. The record is
/// append-only: new fields go at the end; renaming or reordering requires
/// a kCanonicalEpoch bump.
void append_mixer_config(CanonicalWriter& w, const core::MixerConfig& c) {
  w.begin_record("mixerconfig");
  w.field("mode", std::string_view(frontend::mode_name(c.mode)));
  w.field("temperature_k", c.temperature_k);
  w.field("vdd", c.vdd);
  w.field("f_lo_hz", c.f_lo_hz);
  w.field("lo_amplitude", c.lo_amplitude);
  w.field("lo_common_mode", c.lo_common_mode);
  w.field("lo_rise_fraction", c.lo_rise_fraction);
  w.field("lo_phase_frac", c.lo_phase_frac);
  w.field("rf_series_r", c.rf_series_r);
  w.field("tca_gm", c.tca_gm);
  w.field("tca_rout", c.tca_rout);
  w.field("tca_cpar", c.tca_cpar);
  w.field("tca_bias_ma", c.tca_bias_ma);
  w.field("tca_nf_gamma", c.tca_nf_gamma);
  w.field("tca_flicker_corner_hz", c.tca_flicker_corner_hz);
  w.field("quad_w", c.quad_w);
  w.field("quad_ron", c.quad_ron);
  w.field("quad_l", c.quad_l);
  w.field("sw12_w", c.sw12_w);
  w.field("rdeg", c.rdeg);
  w.field("rdeg_ideal_extra", c.rdeg_ideal_extra);
  w.field("tg_resistance", c.tg_resistance);
  w.field("cc_load", c.cc_load);
  w.field("tia_rf", c.tia_rf);
  w.field("tia_cf", c.tia_cf);
  w.field("tia_ota_gm", c.tia_ota_gm);
  w.field("tia_ota_rout", c.tia_ota_rout);
  w.field("tia_ota_gbw_hz", c.tia_ota_gbw_hz);
  w.field("tia_bias_ma", c.tia_bias_ma);
  w.field("tia_input_noise_nv", c.tia_input_noise_nv);
  w.field("tia_flicker_corner_hz", c.tia_flicker_corner_hz);
  w.field("active_pair_noise_gm", c.active_pair_noise_gm);
  w.field("active_pair_flicker_corner_hz", c.active_pair_flicker_corner_hz);
  w.field("lo_buffer_ma", c.lo_buffer_ma);
  w.field("bias_overhead_ma", c.bias_overhead_ma);
  w.field("core_bias_ma", c.core_bias_ma);
  w.end_record();
}

/// Every MixerConfig field, spelled exactly the way set_config_number
/// accepts it (the worker parses strictly: an unknown field is an error,
/// a missing one silently keeps its default — so serialize all of them).
void serialize_mixer_config(std::string& out, const core::MixerConfig& c) {
  out += "{\"mode\":";
  out += json::quoted(frontend::mode_name(c.mode));
  const auto field = [&out](std::string_view name, double v) {
    out += ",\"";
    out += name;
    out += "\":";
    out += json::number(v);
  };
  field("temperature_k", c.temperature_k);
  field("vdd", c.vdd);
  field("f_lo_hz", c.f_lo_hz);
  field("lo_amplitude", c.lo_amplitude);
  field("lo_common_mode", c.lo_common_mode);
  field("lo_rise_fraction", c.lo_rise_fraction);
  field("lo_phase_frac", c.lo_phase_frac);
  field("rf_series_r", c.rf_series_r);
  field("tca_gm", c.tca_gm);
  field("tca_rout", c.tca_rout);
  field("tca_cpar", c.tca_cpar);
  field("tca_bias_ma", c.tca_bias_ma);
  field("tca_nf_gamma", c.tca_nf_gamma);
  field("tca_flicker_corner_hz", c.tca_flicker_corner_hz);
  field("quad_w", c.quad_w);
  field("quad_ron", c.quad_ron);
  field("quad_l", c.quad_l);
  field("sw12_w", c.sw12_w);
  field("rdeg", c.rdeg);
  field("rdeg_ideal_extra", c.rdeg_ideal_extra);
  field("tg_resistance", c.tg_resistance);
  field("cc_load", c.cc_load);
  field("tia_rf", c.tia_rf);
  field("tia_cf", c.tia_cf);
  field("tia_ota_gm", c.tia_ota_gm);
  field("tia_ota_rout", c.tia_ota_rout);
  field("tia_ota_gbw_hz", c.tia_ota_gbw_hz);
  field("tia_bias_ma", c.tia_bias_ma);
  field("tia_input_noise_nv", c.tia_input_noise_nv);
  field("tia_flicker_corner_hz", c.tia_flicker_corner_hz);
  field("active_pair_noise_gm", c.active_pair_noise_gm);
  field("active_pair_flicker_corner_hz", c.active_pair_flicker_corner_hz);
  field("lo_buffer_ma", c.lo_buffer_ma);
  field("bias_overhead_ma", c.bias_overhead_ma);
  field("core_bias_ma", c.core_bias_ma);
  out.push_back('}');
}

std::string execute_metric(const Request& req) {
  const double value = core::evaluate_metric(req.metric);
  std::string out = "{\"analysis\":\"metric\",\"metric\":";
  out += json::quoted(core::metric_name(req.metric.metric));
  out += ",\"mode\":";
  out += json::quoted(frontend::mode_name(req.metric.config.mode));
  out += ",\"value\":";
  out += json::number(value);
  out.push_back('}');
  return out;
}

}  // namespace

void apply_mixer_config(const JsonValue& obj, core::MixerConfig& config) {
  for (const auto& [key, value] : obj.as_object()) {
    if (key == "mode") {
      const std::string& mode = value.as_string();
      if (mode == "active") {
        config.mode = core::MixerMode::kActive;
      } else if (mode == "passive") {
        config.mode = core::MixerMode::kPassive;
      } else {
        throw RequestError(ErrorCode::kBadParams, "unknown mixer mode '" + mode +
                                                      "' (expected active or passive)");
      }
      continue;
    }
    if (!set_config_number(config, key, value.as_number()))
      throw RequestError(ErrorCode::kBadParams, "unknown config field '" + key + "'");
  }
}

void register_mixer_metric_op(OpRegistry& r) {
  OpSpec m;
  m.name = "mixer_metric";
  m.analysis = true;
  m.in_v1 = true;
  m.kind = RequestKind::kMixerMetric;
  m.params.string("metric", [](const std::string& v, Request& req) {
    req.metric.metric = core::metric_from_name(v);
  });
  m.params.required();
  m.params.object("config", [](const JsonValue& v, Request& req) {
    apply_mixer_config(v, req.metric.config);
  });
  m.params.number("f_if_hz", [](double v, Request& req) { req.metric.f_if_hz = v; });
  m.params.number("f_rf_hz", [](double v, Request& req) { req.metric.f_rf_hz = v; });
  m.canonical = [](CanonicalWriter& w, const Request& req) {
    append_mixer_config(w, req.metric.config);
    w.begin_record("analysis");
    w.field("kind", "metric");
    w.field("metric", core::metric_name(req.metric.metric));
    w.field("f_if_hz", req.metric.f_if_hz);
    w.field("f_rf_hz", req.metric.f_rf_hz);
    w.end_record();
  };
  m.execute = execute_metric;
  m.serialize_params = [](std::string& out, const Request& req) {
    out += "\"metric\":" + json::quoted(core::metric_name(req.metric.metric));
    out += ",\"f_if_hz\":" + json::number(req.metric.f_if_hz);
    out += ",\"f_rf_hz\":" + json::number(req.metric.f_rf_hz);
    out += ",\"config\":";
    serialize_mixer_config(out, req.metric.config);
  };
  r.register_op(std::move(m));
}

}  // namespace rfmix::svc
