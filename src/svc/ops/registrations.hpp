// Internal: the built-in op registration functions, one per ops/*.cpp
// translation unit, called by OpRegistry's constructor in the canonical
// (wire-visible, append-only) order. Explicit calls instead of static
// registrar objects: rfmix_svc is a static library, and a self-registering
// global in an otherwise-unreferenced object file would be dead-stripped.
#pragma once

namespace rfmix::svc {

class OpRegistry;

void register_control_ops(OpRegistry& r);      // ping, stats, cancel
void register_netlist_ops(OpRegistry& r);      // op, ac
void register_mixer_metric_op(OpRegistry& r);  // mixer_metric
void register_npath_zin_op(OpRegistry& r);     // npath_zin
void register_gen_op(OpRegistry& r);           // gen

}  // namespace rfmix::svc
