// Netlist analysis ops: `op` (DC operating point) and `ac` (small-signal
// sweep probed at one node pair). Both take a SPICE deck as text; their
// cache keys hash the *elaborated* canonical circuit, so two spellings of
// the same physics share an entry.
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/json_writer.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/op.hpp"
#include "spice/parser.hpp"
#include "svc/canonical.hpp"
#include "svc/json_parse.hpp"
#include "svc/op_registry.hpp"
#include "svc/ops/registrations.hpp"
#include "svc/ops/shared.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

std::vector<double> ac_freq_grid(const AcSpec& ac) {
  return ac.log_scale ? spice::log_space(ac.f_start_hz, ac.f_stop_hz, ac.points)
                      : spice::lin_space(ac.f_start_hz, ac.f_stop_hz, ac.points);
}

std::string execute_op(const Request& req) {
  spice::Circuit ckt = spice::parse_netlist(req.netlist);
  const spice::Solution op = spice::dc_operating_point(ckt);
  // Node names sorted so the payload bytes are independent of declaration
  // order, matching the key's normalization.
  std::map<std::string, double> nodes;
  for (spice::NodeId n = 1; n < ckt.num_nodes(); ++n) nodes[ckt.node_name(n)] = op.v(n);
  std::string out = "{\"analysis\":\"op\",\"nodes\":{";
  bool first = true;
  for (const auto& [name, v] : nodes) {
    if (!first) out.push_back(',');
    first = false;
    out += json::quoted(name);
    out.push_back(':');
    out += json::number(v);
  }
  out += "},\"power_w\":";
  out += json::number(spice::total_dissipated_power(ckt, op));
  out.push_back('}');
  return out;
}

std::string execute_ac(const Request& req) {
  if (req.ac.probe.empty())
    throw std::invalid_argument("ac request requires a probe node");
  if (req.ac.points < 2)
    throw std::invalid_argument("ac request requires at least 2 points");
  spice::Circuit ckt = spice::parse_netlist(req.netlist);
  const spice::NodeId probe = ckt.find_node(req.ac.probe);
  const spice::NodeId ref =
      req.ac.probe_ref.empty() ? spice::kGround : ckt.find_node(req.ac.probe_ref);
  const spice::Solution op = spice::dc_operating_point(ckt);
  const std::vector<double> freqs = ac_freq_grid(req.ac);
  const spice::AcResult res = spice::ac_sweep(ckt, op, freqs);
  std::string out = "{\"analysis\":\"ac\",\"probe\":";
  out += json::quoted(req.ac.probe);
  out += ",\"freqs_hz\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(freqs[i]);
  }
  out += "],\"real\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(res.vd(i, probe, ref).real());
  }
  out += "],\"imag\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(res.vd(i, probe, ref).imag());
  }
  out += "]}";
  return out;
}

void serialize_ac_object(std::string& out, const AcSpec& ac) {
  out += "\"ac\":{\"f_start_hz\":" + json::number(ac.f_start_hz);
  out += ",\"f_stop_hz\":" + json::number(ac.f_stop_hz);
  out += ",\"points\":" + json::number(double(ac.points));
  out += ",\"log_scale\":";
  out += ac.log_scale ? "true" : "false";
  out += ",\"probe\":" + json::quoted(ac.probe);
  if (!ac.probe_ref.empty()) out += ",\"probe_ref\":" + json::quoted(ac.probe_ref);
  out.push_back('}');
}

}  // namespace

Schema make_ac_object_schema(AcSpec& (*get)(Request&)) {
  Schema s("ac");
  s.number("f_start_hz", [get](double v, Request& r) { get(r).f_start_hz = v; });
  s.number("f_stop_hz", [get](double v, Request& r) { get(r).f_stop_hz = v; });
  s.integer("points", [get](double v, Request& r) { get(r).points = int(v); });
  s.boolean("log_scale", [get](bool v, Request& r) { get(r).log_scale = v; });
  s.string("probe", [get](const std::string& v, Request& r) { get(r).probe = v; });
  s.string("probe_ref",
           [get](const std::string& v, Request& r) { get(r).probe_ref = v; });
  return s;
}

void append_ac_params_json(std::string& out, const AcSpec& ac) {
  serialize_ac_object(out, ac);
}

void register_netlist_ops(OpRegistry& r) {
  OpSpec op;
  op.name = "op";
  op.analysis = true;
  op.in_v1 = true;
  op.kind = RequestKind::kOp;
  op.params.string("netlist",
                   [](const std::string& v, Request& req) { req.netlist = v; });
  op.params.required();
  op.canonical = [](CanonicalWriter& w, const Request& req) {
    const spice::Circuit ckt = spice::parse_netlist(req.netlist);
    append_canonical_circuit(w, ckt);
    w.begin_record("analysis");
    w.field("kind", "op");
    w.end_record();
  };
  op.execute = execute_op;
  op.serialize_params = [](std::string& out, const Request& req) {
    out += "\"netlist\":" + json::quoted(req.netlist);
  };
  r.register_op(std::move(op));

  OpSpec ac;
  ac.name = "ac";
  ac.analysis = true;
  ac.in_v1 = true;
  ac.kind = RequestKind::kAc;
  ac.params.string("netlist",
                   [](const std::string& v, Request& req) { req.netlist = v; });
  ac.params.required();
  {
    const Schema sub = make_ac_object_schema(+[](Request& r) -> AcSpec& { return r.ac; });
    ac.params.object("ac", [sub](const JsonValue& v, Request& req) {
      sub.apply(v, req, /*strict=*/true);
    });
    ac.params.required("ac request requires an 'ac' object");
  }
  ac.canonical = [](CanonicalWriter& w, const Request& req) {
    const spice::Circuit ckt = spice::parse_netlist(req.netlist);
    append_canonical_circuit(w, ckt);
    w.begin_record("analysis");
    w.field("kind", "ac");
    w.field("f_start_hz", req.ac.f_start_hz);
    w.field("f_stop_hz", req.ac.f_stop_hz);
    w.field("points", req.ac.points);
    w.field("scale", req.ac.log_scale ? "log" : "lin");
    w.field("probe", req.ac.probe);
    w.field("probe_ref", req.ac.probe_ref);
    w.end_record();
  };
  ac.execute = execute_ac;
  ac.serialize_params = [](std::string& out, const Request& req) {
    out += "\"netlist\":" + json::quoted(req.netlist);
    out.push_back(',');
    serialize_ac_object(out, req.ac);
  };
  r.register_op(std::move(ac));
}

}  // namespace rfmix::svc
