// Control ops: ping, stats, cancel. Answered in place by the server loop
// (never scheduled), so they carry no analysis handlers — registering them
// here still gives them a single source of truth for kind-name validity
// and the v1/v2 availability split (cancel postdates the v1 freeze).
#include <cmath>

#include "obs/json_writer.hpp"
#include "svc/json_parse.hpp"
#include "svc/op_registry.hpp"
#include "svc/ops/registrations.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

std::string serialize_target(const JsonValue& v) {
  if (v.is_number()) {
    if (!std::isfinite(v.as_number()))
      throw RequestError(ErrorCode::kBadParams,
                         "cancel target must be a finite number or a string");
    return json::number(v.as_number());
  }
  if (v.is_string()) return json::quoted(v.as_string());
  throw RequestError(ErrorCode::kBadParams,
                     "cancel target must be a number or a string");
}

}  // namespace

void register_control_ops(OpRegistry& r) {
  OpSpec ping;
  ping.name = "ping";
  ping.in_v1 = true;
  r.register_op(std::move(ping));

  OpSpec stats;
  stats.name = "stats";
  stats.in_v1 = true;
  r.register_op(std::move(stats));

  OpSpec cancel;
  cancel.name = "cancel";  // v2 only
  cancel.parse_control = [](const JsonValue& params, ParsedRequest& out) {
    const JsonValue* target = params.find("target");
    if (target == nullptr)
      throw RequestError(ErrorCode::kBadParams,
                         "cancel requires params.target (the id to cancel)");
    out.cancel_target = serialize_target(*target);
  };
  r.register_op(std::move(cancel));
}

}  // namespace rfmix::svc
