// Internal: schema/serialization pieces shared between op registrations
// (the `ac` parameter object is used by both the ac op and the gen op's
// piped-ac analysis).
#pragma once

#include <string>

#include "svc/op_registry.hpp"

namespace rfmix::svc {

/// The `ac` parameter-object schema (f_start_hz, f_stop_hz, points,
/// log_scale, probe, probe_ref; strict), bound onto whichever AcSpec `get`
/// selects out of the request being built.
Schema make_ac_object_schema(AcSpec& (*get)(Request&));

/// Append `"ac":{...}` (no leading comma) serializing every field the
/// schema reads.
void append_ac_params_json(std::string& out, const AcSpec& ac);

}  // namespace rfmix::svc
