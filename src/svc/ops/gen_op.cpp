// The gen op (v2 only): programmatic netlist generation served through
// rfmixd. A request names a template (src/gen) and its parameters; the
// server renders the deck and either returns it ("analysis":"netlist") or
// pipes it straight into a DC op, AC sweep, or per-element N-path Zin
// analysis. The cache key hashes the (template, parameters) pair — never
// the expanded deck — so a 100k-device array request keys in microseconds,
// and flat vs hierarchical rendering of the same array is the only
// parameter that distinguishes otherwise-identical requests (the netlist
// payload differs; the solved results are bit-identical by construction).
#include <algorithm>
#include <stdexcept>
#include <vector>

#include "gen/templates.hpp"
#include "obs/json_writer.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/op.hpp"
#include "spice/parser.hpp"
#include "svc/canonical.hpp"
#include "svc/json_parse.hpp"
#include "svc/op_registry.hpp"
#include "svc/ops/registrations.hpp"
#include "svc/ops/shared.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

std::vector<double> grid(double f_start, double f_stop, int points, bool log_scale) {
  return log_scale ? spice::log_space(f_start, f_stop, points)
                   : spice::lin_space(f_start, f_stop, points);
}

std::string execute_gen(const Request& req) {
  const GenRequestSpec& g = req.gen;
  const std::string deck = gen::render_netlist(g.spec);
  const std::size_t devices = gen::device_count(g.spec);
  const std::string head = "{\"analysis\":\"gen\",\"template\":" +
                           json::quoted(g.spec.template_id) +
                           ",\"devices\":" + json::number(double(devices));

  if (g.analysis == "netlist") {
    std::string out = head;
    out += ",\"hierarchical\":";
    out += g.spec.hierarchical ? "true" : "false";
    out += ",\"netlist\":";
    out += json::quoted(deck);
    out.push_back('}');
    return out;
  }

  if (g.analysis == "npath_zin") {
    // Per-element front-end sweep: each element maps to its own
    // (mismatched) NpathSpec, and the payload reports the across-array
    // statistics a beamforming designer actually wants — where each
    // element's impedance peak landed and how far the array spreads.
    const std::vector<double> freqs =
        grid(g.f_start_hz, g.f_stop_hz, g.points, g.log_scale);
    std::vector<double> f_peak, q, zin_peak;
    for (int i = 0; i < g.spec.elements; ++i) {
      const npath::ZinSweep sw =
          npath::zin_sweep(gen::element_npath_spec(g.spec, i), freqs);
      f_peak.push_back(sw.summary.f_peak_hz);
      q.push_back(sw.summary.q);
      zin_peak.push_back(sw.summary.zin_peak_ohm);
    }
    const auto append_array = [](std::string& out, std::string_view name,
                                 const std::vector<double>& v) {
      out += ",\"";
      out += name;
      out += "\":[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += json::number(v[i]);
      }
      out.push_back(']');
    };
    double mn = f_peak[0], mx = f_peak[0], sum = 0.0;
    for (const double f : f_peak) {
      mn = std::min(mn, f);
      mx = std::max(mx, f);
      sum += f;
    }
    std::string out = head;
    out += ",\"elements\":" + json::number(double(g.spec.elements));
    append_array(out, "f_peak_hz", f_peak);
    append_array(out, "q", q);
    append_array(out, "zin_peak_ohm", zin_peak);
    out += ",\"spread\":{\"f_peak_min_hz\":" + json::number(mn);
    out += ",\"f_peak_max_hz\":" + json::number(mx);
    out += ",\"f_peak_mean_hz\":" + json::number(sum / double(f_peak.size()));
    out += "}}";
    return out;
  }

  // op / ac: elaborate the deck once and solve.
  spice::Circuit ckt = spice::parse_netlist(deck);
  const spice::Solution dc = spice::dc_operating_point(ckt);

  if (g.analysis == "op") {
    // A 100k-node voltage map would dwarf the result it serves; report
    // the template's probe nodes plus the whole-circuit aggregates.
    std::string out = head;
    out += ",\"nodes\":" + json::number(double(ckt.num_nodes() - 1));
    out += ",\"power_w\":" + json::number(spice::total_dissipated_power(ckt, dc));
    out += ",\"probes\":{";
    bool first = true;
    for (const std::string& name : gen::probe_nodes(g.spec)) {
      if (!first) out.push_back(',');
      first = false;
      out += json::quoted(name);
      out.push_back(':');
      out += json::number(dc.v(ckt.find_node(name)));
    }
    out += "}}";
    return out;
  }

  // g.analysis == "ac" (finish() guarantees the probe is set).
  const spice::NodeId probe = ckt.find_node(g.ac.probe);
  const spice::NodeId ref =
      g.ac.probe_ref.empty() ? spice::kGround : ckt.find_node(g.ac.probe_ref);
  const std::vector<double> freqs =
      grid(g.ac.f_start_hz, g.ac.f_stop_hz, g.ac.points, g.ac.log_scale);
  const spice::AcResult res = spice::ac_sweep(ckt, dc, freqs);
  std::string out = head;
  out += ",\"probe\":" + json::quoted(g.ac.probe);
  out += ",\"freqs_hz\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(freqs[i]);
  }
  out += "],\"real\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(res.vd(i, probe, ref).real());
  }
  out += "],\"imag\":[";
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += json::number(res.vd(i, probe, ref).imag());
  }
  out += "]}";
  return out;
}

}  // namespace

void register_gen_op(OpRegistry& r) {
  OpSpec op;
  op.name = "gen";  // v2 only
  op.analysis = true;
  op.kind = RequestKind::kGen;
  op.strict_params = true;
  op.params = Schema("gen");
  op.params.string("template", [](const std::string& v, Request& q) {
    q.gen.spec.template_id = v;
  });
  op.params.required();
  op.params.integer("elements", [](double v, Request& q) { q.gen.spec.elements = int(v); });
  op.params.range(1, 65536);
  op.params.integer("paths", [](double v, Request& q) { q.gen.spec.paths = int(v); });
  op.params.range(1, 32);
  op.params.integer("sections", [](double v, Request& q) { q.gen.spec.sections = int(v); });
  op.params.range(1, 64);
  op.params.integer("depth", [](double v, Request& q) { q.gen.spec.depth = int(v); });
  op.params.range(0, 18);
  op.params.integer("seed", [](double v, Request& q) {
    q.gen.spec.seed = static_cast<std::uint64_t>(v);
  });
  op.params.range(0, 2147483647);
  op.params.number("mismatch", [](double v, Request& q) { q.gen.spec.mismatch = v; });
  op.params.boolean("hierarchical", [](bool v, Request& q) { q.gen.spec.hierarchical = v; });
  op.params.number("r_source", [](double v, Request& q) { q.gen.spec.r_source = v; });
  op.params.number("switch_ron", [](double v, Request& q) { q.gen.spec.switch_ron = v; });
  op.params.number("zbb_r", [](double v, Request& q) { q.gen.spec.zbb_r = v; });
  op.params.number("zbb_c", [](double v, Request& q) { q.gen.spec.zbb_c = v; });
  op.params.number("f_lo_hz", [](double v, Request& q) { q.gen.spec.f_lo_hz = v; });
  op.params.string("analysis", [](const std::string& v, Request& q) { q.gen.analysis = v; });
  {
    const Schema sub =
        make_ac_object_schema(+[](Request& q) -> AcSpec& { return q.gen.ac; });
    op.params.object("ac", [sub](const JsonValue& v, Request& q) {
      sub.apply(v, q, /*strict=*/true);
    });
  }
  {
    Schema sweep("sweep");
    sweep.number("f_start_hz", [](double v, Request& q) { q.gen.f_start_hz = v; });
    sweep.number("f_stop_hz", [](double v, Request& q) { q.gen.f_stop_hz = v; });
    sweep.integer("points", [](double v, Request& q) { q.gen.points = int(v); });
    sweep.boolean("log_scale", [](bool v, Request& q) { q.gen.log_scale = v; });
    op.params.object("sweep", [sweep](const JsonValue& v, Request& q) {
      sweep.apply(v, q, /*strict=*/true);
    });
  }
  op.finish = [](Request& q) {
    GenRequestSpec& g = q.gen;
    gen::validate(g.spec);
    const bool known = g.analysis == "netlist" || g.analysis == "op" ||
                       g.analysis == "ac" || g.analysis == "npath_zin";
    if (!known)
      throw std::invalid_argument("unknown gen analysis '" + g.analysis +
                                  "' (expected netlist, op, ac, or npath_zin)");
    if (g.analysis == "ac") {
      // Normalize the probe before keying: an empty probe means "the
      // template's first probe node", and the canonical record must name
      // the node it resolves to.
      if (g.ac.probe.empty()) g.ac.probe = gen::probe_nodes(g.spec).front();
      if (g.ac.points < 2 || g.ac.points > 4096)
        throw std::invalid_argument("gen ac points must be in [2, 4096]");
      if (!(g.ac.f_start_hz > 0.0) || !(g.ac.f_stop_hz > g.ac.f_start_hz))
        throw std::invalid_argument("gen ac requires 0 < f_start_hz < f_stop_hz");
    }
    if (g.analysis == "npath_zin") {
      if (g.points < 2 || g.points > 4096)
        throw std::invalid_argument("gen sweep points must be in [2, 4096]");
      if (!(g.f_start_hz > 0.0) || !(g.f_stop_hz > g.f_start_hz))
        throw std::invalid_argument("gen sweep requires 0 < f_start_hz < f_stop_hz");
      if (g.spec.elements > 256)
        throw std::invalid_argument(
            "gen npath_zin analysis supports at most 256 elements");
      // Fails early (bad_params) if the template has no N-path mapping or
      // the derived clock set is unrealizable.
      npath::validate(gen::element_npath_spec(g.spec, 0));
    }
  };
  op.canonical = [](CanonicalWriter& w, const Request& req) {
    // The whole point of the op: the key hashes the generator parameters,
    // not the rendered deck. `hierarchical` IS part of the key — the
    // netlist payload differs between renderings even though solved
    // results do not.
    const gen::GenSpec& s = req.gen.spec;
    w.begin_record("gen");
    w.field("template", s.template_id);
    w.field("elements", s.elements);
    w.field("paths", s.paths);
    w.field("sections", s.sections);
    w.field("depth", s.depth);
    w.field("seed", s.seed);
    w.field("mismatch", s.mismatch);
    w.field("hierarchical", s.hierarchical ? 1 : 0);
    w.field("r_source", s.r_source);
    w.field("switch_ron", s.switch_ron);
    w.field("zbb_r", s.zbb_r);
    w.field("zbb_c", s.zbb_c);
    w.field("f_lo_hz", s.f_lo_hz);
    w.end_record();
    w.begin_record("analysis");
    w.field("kind", "gen");
    w.field("analysis", req.gen.analysis);
    if (req.gen.analysis == "ac") {
      w.field("f_start_hz", req.gen.ac.f_start_hz);
      w.field("f_stop_hz", req.gen.ac.f_stop_hz);
      w.field("points", req.gen.ac.points);
      w.field("scale", req.gen.ac.log_scale ? "log" : "lin");
      w.field("probe", req.gen.ac.probe);
      w.field("probe_ref", req.gen.ac.probe_ref);
    } else if (req.gen.analysis == "npath_zin") {
      w.field("f_start_hz", req.gen.f_start_hz);
      w.field("f_stop_hz", req.gen.f_stop_hz);
      w.field("points", req.gen.points);
      w.field("scale", req.gen.log_scale ? "log" : "lin");
    }
    w.end_record();
  };
  op.execute = execute_gen;
  op.serialize_params = [](std::string& out, const Request& req) {
    const gen::GenSpec& s = req.gen.spec;
    out += "\"template\":" + json::quoted(s.template_id);
    out += ",\"elements\":" + json::number(double(s.elements));
    out += ",\"paths\":" + json::number(double(s.paths));
    out += ",\"sections\":" + json::number(double(s.sections));
    out += ",\"depth\":" + json::number(double(s.depth));
    out += ",\"seed\":" + json::number(double(s.seed));
    out += ",\"mismatch\":" + json::number(s.mismatch);
    out += ",\"hierarchical\":";
    out += s.hierarchical ? "true" : "false";
    out += ",\"r_source\":" + json::number(s.r_source);
    out += ",\"switch_ron\":" + json::number(s.switch_ron);
    out += ",\"zbb_r\":" + json::number(s.zbb_r);
    out += ",\"zbb_c\":" + json::number(s.zbb_c);
    out += ",\"f_lo_hz\":" + json::number(s.f_lo_hz);
    out += ",\"analysis\":" + json::quoted(req.gen.analysis);
    if (req.gen.analysis == "ac") {
      out.push_back(',');
      append_ac_params_json(out, req.gen.ac);
    } else if (req.gen.analysis == "npath_zin") {
      out += ",\"sweep\":{\"f_start_hz\":" + json::number(req.gen.f_start_hz);
      out += ",\"f_stop_hz\":" + json::number(req.gen.f_stop_hz);
      out += ",\"points\":" + json::number(double(req.gen.points));
      out += ",\"log_scale\":";
      out += req.gen.log_scale ? "true" : "false";
      out.push_back('}');
    }
  };
  r.register_op(std::move(op));
}

}  // namespace rfmix::svc
