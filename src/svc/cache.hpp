// Content-addressed result cache: Hash128 -> serialized result payload.
//
// In-memory LRU over the canonical result bytes, with optional write-
// through persistence to a directory of one-file-per-key entries
// (RFMIX_CACHE_DIR). Payloads are stored and returned verbatim, so a cache
// hit is bit-identical to the run that populated the entry — the property
// the svc/ bit-exactness tests pin down.
//
// Disk entries are self-validating: each file is a header line
// `rfmix-cache 1 <payload_bytes>` followed by the payload and a trailing
// newline. Reads verify the header, the exact length, and the trailing
// newline; anything else (truncated write that survived a crash, torn or
// hand-edited file, a pre-header-format entry) is quarantined by renaming
// it to `<name>.bad` and treated as a miss — a corrupt entry can cost a
// recompute, never a wrong or torn payload.
//
// Thread safety: every public method is safe to call concurrently; the
// cache never calls user code while holding its lock. Counters
// (svc.cache.hit/miss/evict/store, svc.cache.disk_hit/disk_store/
// disk_corrupt) mirror the Stats struct into the obs registry so run
// reports carry them.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "svc/hash.hpp"

namespace rfmix::svc {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;        // memory or disk
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t stores = 0;
    std::uint64_t disk_hits = 0;   // subset of hits satisfied from disk
    std::uint64_t disk_stores = 0;
    std::uint64_t disk_corrupt = 0;  // entries quarantined to <name>.bad
  };

  /// `max_entries` bounds the in-memory LRU; `disk_dir` enables
  /// persistence when non-empty (the directory is created on first store).
  explicit ResultCache(std::size_t max_entries = 4096, std::string disk_dir = {});

  /// Payload for `key`, or nullopt. Promotes the entry to most recent;
  /// falls back to the disk tier (and re-inserts in memory) when enabled.
  std::optional<std::string> get(const Hash128& key);

  /// Insert/overwrite. Evicts least-recently-used entries above capacity
  /// and writes through to disk when enabled (atomic tmp+rename, so a
  /// concurrent reader never observes a torn file).
  void put(const Hash128& key, std::string payload);

  Stats stats() const;
  std::size_t size() const;
  void clear();  // memory only; the disk tier is left intact

  const std::string& disk_dir() const { return disk_dir_; }

  /// Process-wide instance configured from the environment:
  /// RFMIX_CACHE_DIR (persistence directory, empty = memory only) and
  /// RFMIX_CACHE_ENTRIES (LRU capacity, default 4096).
  static ResultCache& global();

 private:
  std::string disk_path(const Hash128& key) const;
  std::optional<std::string> disk_get(const Hash128& key);
  void disk_put(const Hash128& key, const std::string& payload);

  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::string disk_dir_;
  // MRU-first list; the map points into it.
  std::list<std::pair<Hash128, std::string>> lru_;
  std::unordered_map<Hash128, std::list<std::pair<Hash128, std::string>>::iterator,
                     Hash128Hasher>
      index_;
  Stats stats_;
};

}  // namespace rfmix::svc
