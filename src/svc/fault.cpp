#include "svc/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace rfmix::svc::fault {

namespace {

Spec g_spec;  // written once at startup (install), read from I/O threads
std::atomic<Kind> g_kind{Kind::kNone};
std::atomic<std::uint64_t> g_hits{0};

std::uint64_t parse_u64(std::string_view tok, std::string_view what) {
  if (tok.empty()) throw std::invalid_argument("fault spec: empty " + std::string(what));
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("fault spec: bad " + std::string(what) + " '" +
                                  std::string(tok) + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

Spec parse_spec(std::string_view text) {
  Spec spec;
  std::size_t start = 0;
  bool have_kind = false;
  while (start <= text.size()) {
    const std::size_t semi = text.find(';', start);
    std::string_view tok = text.substr(
        start, semi == std::string_view::npos ? std::string_view::npos : semi - start);
    if (tok.empty())
      throw std::invalid_argument("fault spec: empty token in '" + std::string(text) + "'");
    const std::size_t colon = tok.find(':');
    const std::string_view name = tok.substr(0, colon);
    const std::string_view arg =
        colon == std::string_view::npos ? std::string_view{} : tok.substr(colon + 1);
    if (name == "seed") {
      spec.seed = parse_u64(arg, "seed");
    } else if (have_kind) {
      throw std::invalid_argument("fault spec: more than one fault in '" +
                                  std::string(text) + "'");
    } else if (name == "crash_after") {
      spec.kind = Kind::kCrashAfter;
      spec.n = parse_u64(arg, "crash_after count");
      if (spec.n == 0)
        throw std::invalid_argument("fault spec: crash_after count must be >= 1");
      have_kind = true;
    } else if (name == "stall_ms") {
      spec.kind = Kind::kStallMs;
      spec.ms = static_cast<double>(parse_u64(arg, "stall_ms duration"));
      have_kind = true;
    } else if (name == "torn_write") {
      if (colon != std::string_view::npos)
        throw std::invalid_argument("fault spec: torn_write takes no argument");
      spec.kind = Kind::kTornWrite;
      have_kind = true;
    } else if (name == "drop_conn") {
      if (colon != std::string_view::npos)
        throw std::invalid_argument("fault spec: drop_conn takes no argument");
      spec.kind = Kind::kDropConn;
      have_kind = true;
    } else {
      throw std::invalid_argument("fault spec: unknown fault '" + std::string(name) +
                                  "' (crash_after:N, stall_ms:M, torn_write, drop_conn)");
    }
    if (semi == std::string_view::npos) break;
    start = semi + 1;
  }
  if (!have_kind)
    throw std::invalid_argument("fault spec: no fault named in '" + std::string(text) + "'");
  return spec;
}

void install(const Spec& spec) {
  g_spec = spec;
  g_hits.store(spec.seed, std::memory_order_relaxed);
  g_kind.store(spec.kind, std::memory_order_release);
}

void init_from_env() {
  const char* env = std::getenv("RFMIX_FAULT");
  if (env == nullptr || *env == '\0') return;
  install(parse_spec(env));
}

const Spec& spec() { return g_spec; }

void on_response_write() {
  if (g_kind.load(std::memory_order_acquire) != Kind::kCrashAfter) return;
  const std::uint64_t hit = g_hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit >= g_spec.n) {
#ifndef _WIN32
    ::_exit(kCrashExitCode);
#else
    std::_Exit(kCrashExitCode);
#endif
  }
}

void maybe_stall() {
  if (g_kind.load(std::memory_order_acquire) != Kind::kStallMs) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(g_spec.ms));
}

std::size_t clamp_write(std::size_t want) {
  if (g_kind.load(std::memory_order_acquire) != Kind::kTornWrite) return want;
  return want == 0 ? 0 : 1;
}

bool should_drop_conn() {
  return g_kind.load(std::memory_order_acquire) == Kind::kDropConn;
}

}  // namespace rfmix::svc::fault
