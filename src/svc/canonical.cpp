#include "svc/canonical.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "obs/json_writer.hpp"
#include "obs/report.hpp"
#include "spice/circuit.hpp"

namespace rfmix::svc {

namespace {

/// Values may contain arbitrary bytes (node names, waveform tags); escape
/// the three characters that have structural meaning in the record format.
std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '|': out += "%7C"; break;
      case '\n': out += "%0A"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void CanonicalWriter::begin_record(std::string_view tag) {
  if (in_record_) end_record();
  buf_ += escaped(tag);
  in_record_ = true;
}

void CanonicalWriter::field(std::string_view key, std::string_view value) {
  buf_.push_back('|');
  buf_ += escaped(key);
  buf_.push_back('=');
  buf_ += escaped(value);
}

void CanonicalWriter::field(std::string_view key, double value) {
  field(key, std::string_view(obs::json::number(value)));
}

void CanonicalWriter::field(std::string_view key, std::uint64_t value) {
  field(key, std::string_view(std::to_string(value)));
}

void CanonicalWriter::field(std::string_view key, int value) {
  field(key, std::string_view(std::to_string(value)));
}

void CanonicalWriter::end_record() {
  buf_.push_back('\n');
  in_record_ = false;
}

void CanonicalWriter::raw_record(const std::string& line) {
  if (in_record_) end_record();
  buf_ += line;
  buf_.push_back('\n');
}

std::string canonical_device_record(const spice::Circuit& ckt, std::size_t device_index) {
  const spice::Device& dev = *ckt.devices().at(device_index);
  const spice::DeviceDesc desc = dev.describe();
  if (desc.kind.empty())
    throw std::invalid_argument("device '" + dev.name() +
                                "' is not canonically describable; cannot build "
                                "a content-addressed key for this circuit");
  CanonicalWriter w;
  w.begin_record("device");
  w.field("kind", desc.kind);
  w.field("name", dev.name());
  std::string nodes;
  for (std::size_t i = 0; i < desc.nodes.size(); ++i) {
    if (i > 0) nodes.push_back(',');
    nodes += ckt.node_name(desc.nodes[i]);
  }
  w.field("nodes", nodes);
  for (const auto& [k, v] : desc.text) w.field(k, std::string_view(v));
  for (const auto& [k, v] : desc.params) w.field(k, v);
  w.end_record();
  std::string line = w.str();
  line.pop_back();  // strip the record terminator; raw_record re-adds it
  return line;
}

void append_canonical_circuit(CanonicalWriter& w, const spice::Circuit& ckt) {
  w.begin_record("circuit");
  w.field("devices", std::uint64_t(ckt.devices().size()));
  w.end_record();

  std::vector<std::string> records;
  std::set<std::string> names;
  records.reserve(ckt.devices().size());
  for (std::size_t i = 0; i < ckt.devices().size(); ++i) {
    if (!names.insert(ckt.devices()[i]->name()).second)
      throw std::invalid_argument("duplicate device name '" +
                                  ckt.devices()[i]->name() +
                                  "' makes the circuit identity ambiguous");
    records.push_back(canonical_device_record(ckt, i));
  }
  // Names are unique, and each record embeds its name, so sorting whole
  // records is a deterministic order independent of declaration order.
  std::sort(records.begin(), records.end());
  for (const auto& r : records) w.raw_record(r);
}

void append_version_record(CanonicalWriter& w) {
  w.begin_record("version");
  w.field("epoch", kCanonicalEpoch);
  w.field("git", std::string_view(obs::RunReport::git_sha()));
  w.end_record();
}

}  // namespace rfmix::svc
