#include "svc/cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"

namespace rfmix::svc {

ResultCache::ResultCache(std::size_t max_entries, std::string disk_dir)
    : max_entries_(max_entries == 0 ? 1 : max_entries), disk_dir_(std::move(disk_dir)) {}

std::optional<std::string> ResultCache::get(const Hash128& key) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
      ++stats_.hits;
      RFMIX_OBS_COUNT("svc.cache.hit");
      return it->second->second;
    }
  }
  // Disk probe outside the lock: file IO must not serialize the hot path.
  if (!disk_dir_.empty()) {
    if (auto payload = disk_get(key)) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.hits;
      ++stats_.disk_hits;
      RFMIX_OBS_COUNT("svc.cache.hit");
      RFMIX_OBS_COUNT("svc.cache.disk_hit");
      if (index_.find(key) == index_.end()) {
        lru_.emplace_front(key, *payload);
        index_[key] = lru_.begin();
        while (lru_.size() > max_entries_) {
          index_.erase(lru_.back().first);
          lru_.pop_back();
          ++stats_.evictions;
          RFMIX_OBS_COUNT("svc.cache.evict");
        }
      }
      return payload;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.misses;
  RFMIX_OBS_COUNT("svc.cache.miss");
  return std::nullopt;
}

void ResultCache::put(const Hash128& key, std::string payload) {
  if (!disk_dir_.empty()) disk_put(key, payload);
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.stores;
  RFMIX_OBS_COUNT("svc.cache.store");
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_[key] = lru_.begin();
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    RFMIX_OBS_COUNT("svc.cache.evict");
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lru_.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  index_.clear();
}

std::string ResultCache::disk_path(const Hash128& key) const {
  return disk_dir_ + "/" + key.hex() + ".json";
}

namespace {

// On-disk entry format, version 1: "rfmix-cache 1 <payload_bytes>\n"
// followed by exactly that many payload bytes and one trailing newline.
constexpr const char kDiskMagic[] = "rfmix-cache 1 ";

/// Extract the payload from raw file bytes, or nullopt when the file is
/// not a well-formed entry (bad header, wrong length, missing trailing
/// newline — i.e. a torn, truncated, or foreign file).
std::optional<std::string> parse_disk_entry(const std::string& raw) {
  constexpr std::size_t magic_len = sizeof(kDiskMagic) - 1;
  if (raw.compare(0, magic_len, kDiskMagic) != 0) return std::nullopt;
  std::size_t pos = magic_len;
  std::uint64_t len = 0;
  bool any_digit = false;
  while (pos < raw.size() && raw[pos] >= '0' && raw[pos] <= '9') {
    len = len * 10 + static_cast<std::uint64_t>(raw[pos] - '0');
    ++pos;
    any_digit = true;
  }
  if (!any_digit || pos >= raw.size() || raw[pos] != '\n') return std::nullopt;
  ++pos;
  if (raw.size() != pos + len + 1 || raw.back() != '\n') return std::nullopt;
  return raw.substr(pos, len);
}

}  // namespace

std::optional<std::string> ResultCache::disk_get(const Hash128& key) {
  const std::string path = disk_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  if (std::optional<std::string> payload = parse_disk_entry(ss.str()))
    return payload;
  // Corrupt or truncated entry: quarantine it for post-mortems (never
  // served, never retried every lookup) and fall through to a miss.
  std::rename(path.c_str(), (path + ".bad").c_str());
  RFMIX_OBS_COUNT("svc.cache.disk_corrupt");
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.disk_corrupt;
  return std::nullopt;
}

void ResultCache::disk_put(const Hash128& key, const std::string& payload) {
  std::error_code ec;
  std::filesystem::create_directories(disk_dir_, ec);
  if (ec) return;  // persistence is best-effort; the memory tier still works
  const std::string final_path = disk_path(key);
  // Unique temp per writer so concurrent stores of the same key cannot
  // interleave; rename() makes the publish atomic.
  std::ostringstream tmp;
  tmp << final_path << ".tmp." << std::this_thread::get_id();
  {
    std::ofstream out(tmp.str(), std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << kDiskMagic << payload.size() << '\n' << payload << '\n';
    if (!out.good()) {
      out.close();
      std::remove(tmp.str().c_str());
      return;
    }
  }
  if (std::rename(tmp.str().c_str(), final_path.c_str()) != 0) {
    std::remove(tmp.str().c_str());
    return;  // nothing was published; don't count it as a disk store
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.disk_stores;
  RFMIX_OBS_COUNT("svc.cache.disk_store");
}

ResultCache& ResultCache::global() {
  static ResultCache* cache = [] {
    std::size_t entries = 4096;
    if (const char* env = std::getenv("RFMIX_CACHE_ENTRIES")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) entries = static_cast<std::size_t>(v);
    }
    const char* dir = std::getenv("RFMIX_CACHE_DIR");
    return new ResultCache(entries, dir ? dir : "");
  }();
  return *cache;
}

}  // namespace rfmix::svc
