// Canonical serialization: the byte string a cache key is hashed over.
//
// Two requests must share a key exactly when the solver is guaranteed to
// produce the same answer for both. The encoding therefore normalizes away
// everything that cannot influence results:
//  * device declaration order — records are sorted by device name;
//  * node declaration order and ground spelling — terminals are encoded as
//    node *names* ("0" for ground, however it was written);
//  * float formatting — values are printed with the shortest decimal that
//    round-trips the exact double (obs::json::number).
// and keeps everything that can: device type tags, terminal order, every
// model parameter (via Device::describe), the analysis kind and its full
// configuration, and the code version (git SHA + format epoch) so a new
// build never serves results computed by an old solver.
//
// The record format is line-oriented `tag|key=value|...` with '%', '|' and
// newline percent-escaped in values. It is append-only: changing the
// meaning of an existing field requires bumping kCanonicalEpoch, which
// invalidates every persisted key at once (see docs/service.md).
#pragma once

#include <string>
#include <string_view>

#include "svc/hash.hpp"

namespace rfmix::spice {
class Circuit;
}

namespace rfmix::svc {

/// Bump to invalidate all previously persisted cache entries when the
/// canonical format or any solver semantics change incompatibly.
inline constexpr int kCanonicalEpoch = 2;  // 2: device records were truncated by one byte in epoch 1

/// Builds the canonical byte string record by record.
class CanonicalWriter {
 public:
  /// Start a record; fields follow, end_record() terminates it.
  void begin_record(std::string_view tag);
  void field(std::string_view key, std::string_view value);
  void field(std::string_view key, double value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, int value);
  void end_record();

  /// Append a fully formed record line (used for sorted blocks).
  void raw_record(const std::string& line);

  const std::string& str() const { return buf_; }
  Hash128 hash() const { return hash128(buf_); }

 private:
  std::string buf_;
  bool in_record_ = false;
};

/// One `device|...` record line (no trailing newline) for a described
/// device. Throws std::invalid_argument if the device is opaque
/// (Device::describe returned an empty kind).
std::string canonical_device_record(const spice::Circuit& ckt, std::size_t device_index);

/// Append the whole circuit: a header record plus one record per device,
/// sorted by device name. Throws std::invalid_argument on opaque devices
/// or duplicate device names (both would corrupt cache identity).
void append_canonical_circuit(CanonicalWriter& w, const spice::Circuit& ckt);

/// Append the code-version record (canonical epoch + configure-time git
/// SHA). Every cache key includes this.
void append_version_record(CanonicalWriter& w);

}  // namespace rfmix::svc
