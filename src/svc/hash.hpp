// Stable 128-bit content hash for cache keys.
//
// The svc/ layer persists hashes to disk (RFMIX_CACHE_DIR file names) and
// compares them across processes, so the function must be fully specified
// here and never drift with platform, endianness of std::hash, or library
// version: this is a from-scratch implementation of the public-domain
// MurmurHash3 x64/128 scheme over little-endian 64-bit lanes. A collision
// would serve the wrong cached result (not merely cost a miss), which is
// why the key is 128 bits: negligible collision probability at any
// realistic request volume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rfmix::svc {

struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Hash128&) const = default;

  /// 32 lowercase hex digits, hi lane first — the on-disk key format.
  std::string hex() const;
};

/// Hash `data` with an optional seed. Deterministic across platforms.
Hash128 hash128(std::string_view data, std::uint64_t seed = 0);

/// Parse Hash128::hex() output; returns false on malformed input.
bool parse_hash128(std::string_view hex, Hash128* out);

/// For unordered_map keys.
struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const noexcept {
    return static_cast<std::size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ull));
  }
};

}  // namespace rfmix::svc
