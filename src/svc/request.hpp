// Service requests: the unit of work the cache keys and the scheduler runs,
// plus the one place both wire-protocol versions are parsed.
//
// A request is either a netlist analysis (DC operating point or AC sweep
// over a parsed SPICE deck) or a mixer metric query (conversion gain, DSB
// NF, IIP3 of the paper's mixer at a given configuration). request_key()
// maps a request to its content hash — same physics in, same key out,
// regardless of declaration order or float spelling (see canonical.hpp) —
// and execute_request() produces the canonical compact-JSON payload that
// gets cached and returned to clients byte-for-byte.
//
// parse_request() is the single entry point for both protocol versions
// (version-less v1 and the {"v":2,...} envelope — see docs/service.md):
// the blocking stdin path, the poll(2) event loop, and the tests all parse
// through it, so a request means the same thing on every transport.
// Failures throw RequestError carrying a stable ErrorCode that v2 clients
// can dispatch on.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/metrics.hpp"
#include "gen/templates.hpp"
#include "npath/zin.hpp"
#include "svc/hash.hpp"

namespace rfmix::svc {

class JsonValue;

enum class RequestKind {
  kOp,           // DC operating point of a netlist
  kAc,           // AC sweep of a netlist, probed at one node (pair)
  kMixerMetric,  // core::evaluate_metric over a MixerConfig
  kNpathZin,     // N-path mixer-first Zin/S11 sweep (v2 only)
  kGen,          // generated netlist (template + params), optionally piped
                 // into an op/ac/npath_zin analysis (v2 only)
};

struct AcSpec {
  double f_start_hz = 1e3;
  double f_stop_hz = 1e9;
  int points = 11;
  bool log_scale = true;     // log_space vs lin_space grid
  std::string probe;         // probed node name (required)
  std::string probe_ref;     // optional reference node: probe - probe_ref
};

/// Sweep grid for the npath_zin op: the NpathSpec names the front end, the
/// grid names the absolute frequencies Zin/S11 are evaluated at.
struct NpathSweepSpec {
  npath::NpathSpec spec;
  double f_start_hz = 5e8;
  double f_stop_hz = 1.5e9;
  int points = 21;
  bool log_scale = false;
};

/// The gen op: a template spec plus the analysis the generated circuit is
/// piped into. The cache key is derived from these parameters — never from
/// the expanded deck — so a 100k-device array request hashes in
/// microseconds and hits the same entry however it was rendered.
struct GenRequestSpec {
  gen::GenSpec spec;
  std::string analysis = "netlist";  // netlist | op | ac | npath_zin
  AcSpec ac;              // grid + probe for analysis == "ac" (probe
                          // defaults to the template's first probe node)
  double f_start_hz = 5e8;   // npath_zin sweep grid
  double f_stop_hz = 1.5e9;
  int points = 21;
  bool log_scale = false;
};

struct Request {
  RequestKind kind = RequestKind::kOp;
  std::string netlist;        // kOp / kAc
  AcSpec ac;                  // kAc
  core::MetricQuery metric;   // kMixerMetric
  NpathSweepSpec npath;       // kNpathZin
  GenRequestSpec gen;         // kGen
};

/// Full canonical byte string (version record included). Exposed so tests
/// can pin the normalization rules; hash128 of this is the cache key.
std::string request_canonical(const Request& req);

/// Content hash of the request — the cache / single-flight key.
Hash128 request_key(const Request& req);

/// Execute the request and serialize its result as one line of compact
/// JSON (no newlines). Deterministic: a given request always produces the
/// same bytes, so cached payloads are bit-identical to fresh runs. Throws
/// (ParseError, ConvergenceError, std::invalid_argument) on bad input.
std::string execute_request(const Request& req);

// ---------------------------------------------------------------------------
// Wire protocol (v1 + v2)
// ---------------------------------------------------------------------------

/// Stable error codes for the v2 structured error object. The names are
/// wire format — never renumber or rename, only append.
enum class ErrorCode {
  kParseError,          // the line is not valid JSON
  kInvalidRequest,      // valid JSON, but not a usable envelope (not an
                        // object, bad id type, unknown v2 envelope field)
  kUnsupportedVersion,  // "v" present but not a supported version
  kUnknownKind,         // "kind" is not one this server implements
  kBadParams,           // the kind is known but its parameters are not
  kExecFailed,          // the analysis itself threw (netlist errors,
                        // convergence failures)
  kTimeout,             // the request's deadline passed before completion
  kCancelled,           // a cancel op removed the request before completion
  kUnavailable,         // no live worker can take the request (cluster
                        // degraded); the error object carries
                        // retry_after_ms as a backoff hint
};

/// The stable wire name of `code` (e.g. "parse_error").
std::string_view error_code_name(ErrorCode code);

/// Thrown by parse_request(); carries the structured code so the server
/// can answer v2 clients with something machine-dispatchable.
class RequestError : public std::runtime_error {
 public:
  RequestError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One fully parsed request line, protocol version included. `request` is
/// only meaningful for the analysis kinds (op / ac / mixer_metric);
/// `cancel_target` only for kind == "cancel" (v2).
struct ParsedRequest {
  int version = 1;            // 1 (version-less or explicit) or 2
  std::string id_json = "null";  // client id re-serialized for echoing
  std::string kind;
  int priority = 0;           // higher drains first
  double timeout_ms = 0.0;    // v2 envelope; <= 0 means no deadline
  Request request;
  std::string cancel_target;  // serialized id the cancel op targets
};

/// True for the kinds that run through the scheduler (op, ac,
/// mixer_metric) as opposed to being answered in place (ping, stats,
/// cancel).
bool is_analysis_kind(std::string_view kind);

/// Parse one request document (any protocol version) into a ParsedRequest.
/// Throws RequestError on every failure; never partially succeeds.
ParsedRequest parse_request(const JsonValue& doc);

/// Re-serialize a parsed analysis/control request as one v2 request line
/// (no trailing newline) with `id_json` substituted for the client's id.
/// The router forwards through this: parse → re-serialize round-trips to
/// an identical Request (same canonical bytes, same content key, and so a
/// byte-identical payload), which is what makes replay after a worker
/// death transparent.
std::string serialize_v2_request(const ParsedRequest& req, const std::string& id_json);

/// Parse a mixer-config JSON object (field name -> number, "mode" ->
/// "active"/"passive") onto `config`. Unknown fields and type mismatches
/// throw RequestError(kBadParams) — a silently dropped field would make
/// two different requests collide on one cache key.
void apply_mixer_config(const JsonValue& obj, core::MixerConfig& config);

}  // namespace rfmix::svc
