// Service requests: the unit of work the cache keys and the scheduler runs.
//
// A request is either a netlist analysis (DC operating point or AC sweep
// over a parsed SPICE deck) or a mixer metric query (conversion gain, DSB
// NF, IIP3 of the paper's mixer at a given configuration). request_key()
// maps a request to its content hash — same physics in, same key out,
// regardless of declaration order or float spelling (see canonical.hpp) —
// and execute_request() produces the canonical compact-JSON payload that
// gets cached and returned to clients byte-for-byte.
#pragma once

#include <string>

#include "core/metrics.hpp"
#include "svc/hash.hpp"

namespace rfmix::svc {

enum class RequestKind {
  kOp,           // DC operating point of a netlist
  kAc,           // AC sweep of a netlist, probed at one node (pair)
  kMixerMetric,  // core::evaluate_metric over a MixerConfig
};

struct AcSpec {
  double f_start_hz = 1e3;
  double f_stop_hz = 1e9;
  int points = 11;
  bool log_scale = true;     // log_space vs lin_space grid
  std::string probe;         // probed node name (required)
  std::string probe_ref;     // optional reference node: probe - probe_ref
};

struct Request {
  RequestKind kind = RequestKind::kOp;
  std::string netlist;        // kOp / kAc
  AcSpec ac;                  // kAc
  core::MetricQuery metric;   // kMixerMetric
};

/// Full canonical byte string (version record included). Exposed so tests
/// can pin the normalization rules; hash128 of this is the cache key.
std::string request_canonical(const Request& req);

/// Content hash of the request — the cache / single-flight key.
Hash128 request_key(const Request& req);

/// Execute the request and serialize its result as one line of compact
/// JSON (no newlines). Deterministic: a given request always produces the
/// same bytes, so cached payloads are bit-identical to fresh runs. Throws
/// (ParseError, ConvergenceError, std::invalid_argument) on bad input.
std::string execute_request(const Request& req);

}  // namespace rfmix::svc
