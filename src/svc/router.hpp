// rfmix-router: the fault-tolerant front process of the rfmixd cluster.
//
// One poll(2) loop speaks the v2 envelope on both sides: clients connect
// to the router's Unix socket exactly as they would to a single rfmixd,
// and the router maintains one NDJSON connection to each supervised
// worker daemon (supervisor.hpp owns the processes). Analysis requests
// are admitted through parse_request, keyed by their content hash, and
// rendezvous-hashed (highest-random-weight over the live workers) so a
// key always lands on the same worker while that worker lives — each
// worker's LRU cache stays disjoint and maximally warm — and migrates
// minimally when the live set changes.
//
// Fault tolerance, per request:
//  * every dispatched request sits in an inflight table keyed by a router
//    ticket (the id forwarded to the worker; the client's id is restored
//    on the way back, so routing is invisible in the response bytes);
//  * a worker death (connection EOF, SIGCHLD) replays that worker's
//    inflight tickets to the surviving workers — safe to do blindly
//    because results are content-addressed: re-executing the same key is
//    idempotent down to the payload bytes;
//  * worker responses feed a read-through cache tier in the router, so
//    repeated keys are answered without touching a worker at all;
//  * when no worker is live but the supervisor is bringing one back
//    (scheduled respawn, kill in flight), tickets park for a bounded
//    window and re-dispatch the moment a worker link comes up — a
//    crash-restart blip costs latency, not errors;
//  * when no worker is live and none is coming back (restarts disabled,
//    open circuit breaker past its window) the router answers cached keys
//    from its own tier and everything else with a structured
//    `unavailable` error carrying retry_after_ms — it degrades, it never
//    hangs;
//  * a ping heartbeat on every worker connection turns a hung-but-alive
//    worker (stall fault, livelock) into a kill + restart + replay.
//
// Counters: svc.router.{connections,disconnects,requests,responses,
// cache_hits,replays,unavailable,dropped_responses,protocol_errors,
// worker_disconnects,heartbeat_failures,bytes_in,bytes_out}.
// See docs/robustness.md for the supervision tree and replay semantics.
#pragma once

#ifndef _WIN32

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "svc/cache.hpp"
#include "svc/request.hpp"
#include "svc/server.hpp"
#include "svc/supervisor.hpp"

namespace rfmix::svc {

class RouterLoop {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    std::size_t max_inflight = 256;          // per-client running requests
    std::size_t max_output_bytes = 4 << 20;  // per-client unsent responses
    std::size_t max_line_bytes = 8 << 20;    // one request line; above: close
    int backlog = 64;
    int max_replays = 4;                 // per ticket, before giving up
    double connect_timeout_ms = 5000.0;  // spawn -> connected, else kill
    double heartbeat_interval_ms = 500.0;
    double heartbeat_timeout_ms = 2000.0;  // ping unanswered -> kill worker
    double drain_timeout_ms = 30000.0;
    /// retry_after_ms floor for unavailable answers when the supervisor
    /// has nothing scheduled (e.g. restarts disabled).
    double unavailable_retry_floor_ms = 250.0;
    /// How long a ticket may wait for a pending respawn when no worker is
    /// routable, before degrading to cache-tier / unavailable.
    double park_timeout_ms = 5000.0;
  };

  struct Stats {
    std::uint64_t requests = 0;      // analysis requests admitted
    std::uint64_t cache_hits = 0;    // answered from the router tier
    std::uint64_t replays = 0;       // tickets re-dispatched after a death
    std::uint64_t unavailable = 0;   // degraded answers
    std::uint64_t worker_disconnects = 0;
    std::uint64_t heartbeat_failures = 0;
  };

  /// `cache` is the router's read-through tier (typically router-private;
  /// sharing a disk dir with workers also works — entries are
  /// content-addressed and torn files are quarantined on read).
  RouterLoop(Supervisor& sup, ResultCache& cache, Options opts);
  ~RouterLoop();

  RouterLoop(const RouterLoop&) = delete;
  RouterLoop& operator=(const RouterLoop&) = delete;

  /// Bind the client-facing Unix socket. Same contract as
  /// ServerLoop::listen_unix.
  bool listen_unix(const std::string& path, std::string* err);

  /// Serve until request_shutdown() completes a drain. The supervisor's
  /// workers must already be started; the loop connects to them as their
  /// sockets appear.
  void run();

  /// Async-signal-safe graceful shutdown (also wired to SIGCHLD in the
  /// binary: any wake just makes the loop re-check children sooner).
  void request_shutdown();

  /// Async-signal-safe wake (SIGCHLD handler): re-check children now.
  void notify();

  Stats stats() const { return stats_; }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    std::string rbuf;
    std::size_t rpos = 0;
    std::string wbuf;
    std::size_t wpos = 0;
    std::size_t inflight = 0;  // tickets referencing this client
    bool read_closed = false;
    bool discard_input = false;
    bool paused = false;
    bool dead = false;
    bool drop_after_flush = false;  // fault drop_conn / oversized line
  };

  enum class LinkState { kDisconnected, kConnecting, kConnected };

  /// The router's connection to one worker. Bytes queued while
  /// kConnecting flush on connect; a link failure replays its tickets.
  struct WorkerLink {
    int fd = -1;
    LinkState state = LinkState::kDisconnected;
    std::string rbuf;
    std::size_t rpos = 0;
    std::string wbuf;
    std::size_t wpos = 0;
    Clock::time_point connect_deadline{};
    /// Set when the link (or its worker) failed; cleared by a respawn.
    /// A failed worker is ineligible for routing until it comes back, so
    /// a heartbeat-killed worker cannot win the rendezvous again while
    /// its SIGKILL is still in flight.
    bool failed = false;
    bool hb_outstanding = false;
    Clock::time_point hb_deadline{};
    Clock::time_point hb_next{};
  };

  struct Ticket {
    std::uint64_t client_gen = 0;
    std::string id_json;  // the client's id, restored on the response
    int version = 2;
    Hash128 key;
    std::string forward_line;  // v2 line with the ticket as id
    int worker = -1;
    int replays = 0;
  };

  void wake();
  void accept_clients();
  void dispatch_buffered(Conn& conn);
  void process_line(Conn& conn, const std::string& line);
  void do_cancel(Conn& conn, const ParsedRequest& req);
  void enqueue_response(Conn& conn, const Response& r);
  std::string router_stats_json() const;

  /// Rendezvous winner among live (supervisor-kRunning) workers, or -1.
  int pick_worker(const Hash128& key) const;
  void send_to_worker(int idx, const std::string& line);
  /// Answer the ticket's client (if still connected) and release its
  /// inflight slot.
  void finish_ticket(const Ticket& t, const Response& r);
  /// Dispatch to the rendezvous winner; with no winner, park (a respawn
  /// is pending) or degrade: answer from the router's cache tier when the
  /// key is known, else `unavailable`. Returns true when the ticket is
  /// still in flight afterwards.
  bool route_or_degrade(std::uint64_t ticket_id);
  /// Re-dispatch (or park/degrade) every ticket assigned to a dead worker.
  void reroute_worker(int idx);
  /// True when a currently-unroutable fleet is expected to recover: the
  /// supervisor has a respawn scheduled, or a kill is still in flight.
  bool fleet_may_recover() const;
  /// Answer a ticket from the degraded path (cache tier / unavailable)
  /// and retire it.
  void degrade_ticket(std::map<std::uint64_t, Ticket>::iterator it);
  /// Re-dispatch parked tickets (a worker link just came up).
  void flush_parked();
  /// Degrade parked tickets whose wait expired or whose fleet stopped
  /// being recoverable.
  void expire_parked();
  double retry_after_ms() const;

  void maintain_workers();  // reap, respawn, connect, heartbeat
  void on_worker_spawned(int idx);
  void try_connect(int idx);
  void link_down(int idx, bool and_kill);
  void process_worker_line(int idx, const std::string& line);
  /// Extract error.message from a worker's structured-error tail (for
  /// re-serializing toward a v1 client, whose errors are plain strings).
  static std::string error_message_of(const std::string& tail);
  /// Feed the router cache tier from a successful analysis tail.
  void maybe_cache_fill(const Hash128& key, const std::string& tail);
  void worker_io(int idx, short revents);

  void read_from(Conn& conn);
  void write_client(Conn& conn);
  void write_worker(WorkerLink& link, int idx);
  void reap_connections();
  int poll_timeout_ms() const;

  Supervisor& sup_;
  ResultCache& cache_;
  Options opts_;
  int listener_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  std::uint64_t next_gen_ = 1;
  std::uint64_t next_ticket_ = 1;
  std::map<std::uint64_t, Conn> conns_;
  std::vector<WorkerLink> links_;  // index-aligned with sup_.workers()
  std::map<std::uint64_t, Ticket> tickets_;
  /// Tickets waiting out a fleet blip: (ticket id, give-up time). Entries
  /// whose ticket vanished (cancel, client gone) or was re-dispatched are
  /// skipped lazily.
  std::deque<std::pair<std::uint64_t, Clock::time_point>> parked_;
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;
  Clock::time_point drain_deadline_{};
  Stats stats_;
};

}  // namespace rfmix::svc

#endif  // _WIN32
