#include "svc/supervisor.hpp"

#ifndef _WIN32

#include <csignal>
#include <cstring>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "obs/obs.hpp"

extern char** environ;

namespace rfmix::svc {

namespace {

std::chrono::steady_clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Supervisor::Supervisor(Options opts) : opts_(std::move(opts)) {
  workers_.resize(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    Worker& w = workers_[static_cast<std::size_t>(i)];
    w.index = i;
    w.socket_path = opts_.socket_dir + "/worker-" + std::to_string(i) + ".sock";
    w.backoff_ms = opts_.backoff_initial_ms;
  }
}

Supervisor::~Supervisor() {
  for (Worker& w : workers_) {
    if (w.state == WorkerState::kRunning && w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
    }
    ::unlink(w.socket_path.c_str());
  }
}

bool Supervisor::spawn(Worker& w, std::string* err) {
  // A dead worker leaves its socket file behind; rfmixd itself refuses to
  // steal a *live* socket, so pre-unlinking here is safe and spares the
  // child the connect-probe on its own corpse.
  ::unlink(w.socket_path.c_str());

  std::vector<std::string> args;
  args.push_back(opts_.worker_bin);
  args.push_back("--socket");
  args.push_back(w.socket_path);
  for (const std::string& a : opts_.worker_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_strings;
  std::vector<char*> envp;
  if (!opts_.worker_env.empty()) {
    for (char** e = environ; *e != nullptr; ++e) env_strings.emplace_back(*e);
    for (const std::string& kv : opts_.worker_env) env_strings.push_back(kv);
    envp.reserve(env_strings.size() + 1);
    for (std::string& s : env_strings) envp.push_back(s.data());
    envp.push_back(nullptr);
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (err != nullptr) *err = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (pid == 0) {
    // Child. The worker must not inherit the router's signal disposition
    // for the shutdown signals (the router drains; workers get SIGTERM
    // from Supervisor::shutdown explicitly).
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    if (envp.empty()) {
      ::execv(argv[0], argv.data());
    } else {
      ::execve(argv[0], argv.data(), envp.data());
    }
    // exec failed: exit through _exit so no parent state (streams, atexit)
    // runs twice. 127 matches the shell's command-not-found convention.
    ::_exit(127);
  }
  w.pid = pid;
  w.state = WorkerState::kRunning;
  w.spawned_at = Clock::now();
  ++w.spawn_count;
  RFMIX_OBS_COUNT("svc.supervisor.spawns");
  return true;
}

bool Supervisor::start(std::string* err) {
  for (Worker& w : workers_) {
    if (!spawn(w, err)) return false;
  }
  return true;
}

void Supervisor::on_death(Worker& w, int status) {
  w.pid = -1;
  w.last_exit_status = status;
  RFMIX_OBS_COUNT("svc.supervisor.deaths");
  if (!opts_.restart) {
    w.state = WorkerState::kStopped;
    return;
  }
  const Clock::time_point now = Clock::now();
  const double uptime_ms =
      std::chrono::duration<double, std::milli>(now - w.spawned_at).count();
  if (uptime_ms < opts_.fast_failure_ms) {
    ++w.fast_failures;
    w.backoff_ms = std::min(w.backoff_ms * 2.0, opts_.backoff_cap_ms);
  } else {
    // A long-lived worker that finally died is not a crash loop: restart
    // eagerly and forget the history.
    w.fast_failures = 0;
    w.backoff_ms = opts_.backoff_initial_ms;
  }
  if (w.fast_failures >= opts_.breaker_threshold) {
    w.state = WorkerState::kBroken;
    w.breaker_until = now + ms_duration(opts_.breaker_cooloff_ms);
    RFMIX_OBS_COUNT("svc.supervisor.breaker_opens");
    return;
  }
  w.state = WorkerState::kDown;
  w.restart_at = now + ms_duration(w.backoff_ms);
}

std::vector<int> Supervisor::poll_children() {
  std::vector<int> died;
  for (Worker& w : workers_) {
    if (w.state != WorkerState::kRunning || w.pid <= 0) continue;
    int status = 0;
    const pid_t rc = ::waitpid(w.pid, &status, WNOHANG);
    if (rc == w.pid) {
      on_death(w, status);
      died.push_back(w.index);
    } else if (rc < 0 && errno == ECHILD) {
      // Someone reaped it behind our back (should not happen; be safe).
      on_death(w, 0);
      died.push_back(w.index);
    }
  }
  return died;
}

std::vector<int> Supervisor::spawn_due() {
  std::vector<int> spawned;
  const Clock::time_point now = Clock::now();
  for (Worker& w : workers_) {
    if (w.state == WorkerState::kBroken && now >= w.breaker_until) {
      // Half-open: one probe respawn. A fast death re-opens the breaker
      // (fast_failures is still at the threshold), success is recognized
      // by the next slow failure or by never failing again.
      w.fast_failures = opts_.breaker_threshold - 1;
      w.backoff_ms = opts_.backoff_cap_ms;
      w.state = WorkerState::kDown;
      w.restart_at = now;
    }
    if (w.state == WorkerState::kDown && now >= w.restart_at) {
      std::string err;
      if (spawn(w, &err)) {
        spawned.push_back(w.index);
        RFMIX_OBS_COUNT("svc.supervisor.restarts");
      } else {
        // fork failed (resource exhaustion); retry after the current
        // backoff rather than spinning.
        w.restart_at = now + ms_duration(w.backoff_ms);
      }
    }
  }
  return spawned;
}

Supervisor::Clock::time_point Supervisor::next_event() const {
  Clock::time_point nearest = Clock::time_point::max();
  for (const Worker& w : workers_) {
    if (w.state == WorkerState::kDown) nearest = std::min(nearest, w.restart_at);
    if (w.state == WorkerState::kBroken) nearest = std::min(nearest, w.breaker_until);
  }
  return nearest;
}

void Supervisor::kill_worker(int index) {
  Worker& w = workers_[static_cast<std::size_t>(index)];
  if (w.state == WorkerState::kRunning && w.pid > 0) ::kill(w.pid, SIGKILL);
}

int Supervisor::alive_count() const {
  int n = 0;
  for (const Worker& w : workers_)
    if (w.state == WorkerState::kRunning) ++n;
  return n;
}

void Supervisor::shutdown(double grace_ms) {
  for (Worker& w : workers_) {
    if (w.state == WorkerState::kRunning && w.pid > 0) ::kill(w.pid, SIGTERM);
  }
  const Clock::time_point deadline = Clock::now() + ms_duration(grace_ms);
  for (Worker& w : workers_) {
    if (w.pid <= 0 || w.state != WorkerState::kRunning) {
      w.state = WorkerState::kStopped;
      continue;
    }
    int status = 0;
    while (true) {
      const pid_t rc = ::waitpid(w.pid, &status, WNOHANG);
      if (rc == w.pid || (rc < 0 && errno == ECHILD)) break;
      if (Clock::now() >= deadline) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    w.pid = -1;
    w.state = WorkerState::kStopped;
    ::unlink(w.socket_path.c_str());
  }
}

}  // namespace rfmix::svc

#endif  // _WIN32
