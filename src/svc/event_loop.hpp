// Concurrent multi-client transport for rfmixd: a poll(2) event loop over
// a Unix-domain listening socket.
//
// The loop owns all connection state on one thread and never blocks on a
// simulation: analysis requests are dispatched through
// ServerSession::submit_async, pool workers hand finished responses back
// through a mutex-guarded completion queue plus a self-pipe wakeup, and
// the loop routes them to the right connection by (connection generation,
// request sequence) — so responses complete out of order and clients match
// them up by the echoed id (which is why v2 makes the echo mandatory).
//
// Flow control and lifecycle, per connection:
//  * partial-line reads are buffered until a '\n' arrives; a line may span
//    any number of reads, and one read may carry many lines;
//  * backpressure — a connection with max_inflight requests running or
//    max_output_bytes of unread responses stops being read (POLLIN off)
//    until it drains, so one greedy client queues against itself instead
//    of the server;
//  * every in-flight request can carry a deadline (v2 timeout_ms or the
//    server default); expiry answers with code "timeout" and the eventual
//    compute result is dropped on arrival;
//  * the v2 "cancel" op removes a still-pending request: the target
//    answers with code "cancelled", the cancel itself reports whether
//    anything was found;
//  * request_shutdown() (async-signal-safe — rfmixd calls it from SIGINT/
//    SIGTERM handlers) stops accepting and reading, drains every
//    dispatched job, flushes every response, then returns from run().
//
// Counters: svc.server.{connections,disconnects,requests,responses,
// protocol_errors,timeouts,cancelled,backpressure_pauses,
// dropped_responses,bytes_in,bytes_out}; timer svc.server.turnaround
// (dispatch -> response queued). See docs/service.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/server.hpp"

namespace rfmix::svc {

class ServerLoop {
 public:
  struct Options {
    std::size_t max_inflight = 64;           // per-connection running requests
    std::size_t max_output_bytes = 4 << 20;  // per-connection unsent responses
    std::size_t max_line_bytes = 8 << 20;    // one request line; above: close
    double default_timeout_ms = 0.0;         // applied when a request has none
    double drain_timeout_ms = 30000.0;       // graceful-shutdown hard cap
    int backlog = 64;
  };

  explicit ServerLoop(ServerSession& session) : ServerLoop(session, Options{}) {}
  ServerLoop(ServerSession& session, Options opts);
  ~ServerLoop();

  ServerLoop(const ServerLoop&) = delete;
  ServerLoop& operator=(const ServerLoop&) = delete;

  /// Bind and listen on a fresh Unix-domain socket at `path`. Returns
  /// false with a human-readable reason in `*err` (the caller handles
  /// stale-socket policy before calling this).
  bool listen_unix(const std::string& path, std::string* err);

  /// Serve until request_shutdown() completes a drain. Must be called
  /// after a successful listen_unix, and only once.
  void run();

  /// Begin graceful shutdown. Async-signal-safe and thread-safe: an atomic
  /// flag plus one write(2) to the loop's wake pipe.
  void request_shutdown();

 private:
  struct PendingReq {
    std::string id_json;
    int version = 2;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point start{};
  };

  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    std::string rbuf;           // bytes read, not yet consumed as lines
    std::size_t rpos = 0;       // consumed prefix of rbuf
    std::string wbuf;           // response bytes not yet written
    std::size_t wpos = 0;       // written prefix of wbuf
    std::map<std::uint64_t, PendingReq> inflight;  // by request sequence
    std::uint64_t next_seq = 0;
    bool read_closed = false;   // EOF seen (buffered lines still drain)
    bool discard_input = false; // shutdown: unparsed bytes are dropped
    bool paused = false;        // backpressure: POLLIN disabled
    bool dead = false;          // I/O error: reaped without draining
    bool drop_after_flush = false;  // fault drop_conn: hang up once drained
  };

  struct Completion {
    std::uint64_t gen = 0;
    std::uint64_t seq = 0;
    Response response;
  };

  void wake();
  void accept_clients();
  void read_from(Conn& conn);
  void write_to(Conn& conn);
  void dispatch_buffered(Conn& conn);
  void process_line(Conn& conn, const std::string& line);
  void do_cancel(Conn& conn, const ParsedRequest& req);
  void enqueue_response(Conn& conn, const Response& r);
  void process_completions();
  void process_timeouts();
  void reap_connections();
  void drop_connection(std::uint64_t gen);
  /// Thread-safe handoff from completion callbacks (any thread).
  void complete(std::uint64_t gen, std::uint64_t seq, Response r);
  int poll_timeout_ms() const;

  ServerSession& session_;
  Options opts_;
  int listener_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  std::string socket_path_;
  std::uint64_t next_gen_ = 1;
  // Keyed by generation, not fd: fds are reused by the kernel, and a late
  // completion must never route to a different client on a recycled fd.
  std::map<std::uint64_t, Conn> conns_;
  std::atomic<bool> shutdown_requested_{false};
  // Dispatched-but-unrouted completions; run() waits for zero before
  // returning so no callback can outlive the loop object.
  std::atomic<int> outstanding_{0};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  std::mutex cq_mu_;
  std::vector<Completion> cq_;
};

}  // namespace rfmix::svc
