#include "svc/op_registry.hpp"

#include <climits>
#include <cmath>
#include <stdexcept>

#include "svc/json_parse.hpp"
#include "svc/ops/registrations.hpp"

namespace rfmix::svc {

Schema& Schema::number(std::string name, std::function<void(double, Request&)> bind) {
  FieldSpec f;
  f.name = std::move(name);
  f.type = FieldType::kNumber;
  f.bind_number = std::move(bind);
  fields_.push_back(std::move(f));
  return *this;
}

Schema& Schema::integer(std::string name, std::function<void(double, Request&)> bind) {
  FieldSpec f;
  f.name = std::move(name);
  f.type = FieldType::kInt;
  f.bind_number = std::move(bind);
  fields_.push_back(std::move(f));
  return *this;
}

Schema& Schema::string(std::string name,
                       std::function<void(const std::string&, Request&)> bind) {
  FieldSpec f;
  f.name = std::move(name);
  f.type = FieldType::kString;
  f.bind_string = std::move(bind);
  fields_.push_back(std::move(f));
  return *this;
}

Schema& Schema::boolean(std::string name, std::function<void(bool, Request&)> bind) {
  FieldSpec f;
  f.name = std::move(name);
  f.type = FieldType::kBool;
  f.bind_bool = std::move(bind);
  fields_.push_back(std::move(f));
  return *this;
}

Schema& Schema::object(std::string name,
                       std::function<void(const JsonValue&, Request&)> bind) {
  FieldSpec f;
  f.name = std::move(name);
  f.type = FieldType::kObject;
  f.bind_object = std::move(bind);
  fields_.push_back(std::move(f));
  return *this;
}

Schema& Schema::required(std::string missing_message) {
  fields_.back().required = true;
  fields_.back().missing_message = std::move(missing_message);
  return *this;
}

Schema& Schema::range(double min, double max) {
  fields_.back().min = min;
  fields_.back().max = max;
  return *this;
}

void Schema::apply(const JsonValue& obj, Request& req, bool strict) const {
  for (const FieldSpec& f : fields_) {
    const JsonValue* v = obj.find(f.name);
    if (v == nullptr) {
      if (f.required)
        throw std::invalid_argument(f.missing_message.empty()
                                        ? "missing required field '" + f.name + "'"
                                        : f.missing_message);
      continue;
    }
    switch (f.type) {
      case FieldType::kNumber: {
        const double d = v->as_number();
        if (f.min <= f.max && (!(d >= f.min) || !(d <= f.max)))
          throw std::invalid_argument("field '" + f.name + "' must be in [" +
                                      std::to_string(f.min) + ", " +
                                      std::to_string(f.max) + "]");
        f.bind_number(d, req);
        break;
      }
      case FieldType::kInt: {
        // Client ints arrive as JSON numbers; casting an out-of-range or
        // non-finite double to int is UB, so validate before converting.
        const double d = v->as_number();
        if (!std::isfinite(d) || d != std::floor(d) ||
            d < static_cast<double>(INT_MIN) || d > static_cast<double>(INT_MAX))
          throw std::invalid_argument("field '" + f.name +
                                      "' must be an integer in int range");
        if (f.min <= f.max && (d < f.min || d > f.max))
          throw std::invalid_argument(
              "field '" + f.name + "' must be in [" +
              std::to_string(static_cast<long long>(f.min)) + ", " +
              std::to_string(static_cast<long long>(f.max)) + "]");
        f.bind_number(d, req);
        break;
      }
      case FieldType::kString:
        f.bind_string(v->as_string(), req);
        break;
      case FieldType::kBool:
        f.bind_bool(v->as_bool(), req);
        break;
      case FieldType::kObject:
        f.bind_object(*v, req);
        break;
    }
  }
  if (!strict) return;
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    bool known = false;
    for (const FieldSpec& f : fields_) {
      if (f.name == key) {
        known = true;
        break;
      }
    }
    if (!known)
      throw std::invalid_argument("unknown " + label_ + " field '" + key + "'");
  }
}

OpRegistry& OpRegistry::instance() {
  static OpRegistry registry;
  return registry;
}

OpRegistry::OpRegistry() {
  // Canonical registration order — wire-visible via kinds_list, append
  // only.
  register_control_ops(*this);
  register_netlist_ops(*this);
  register_mixer_metric_op(*this);
  register_npath_zin_op(*this);
  register_gen_op(*this);
}

void OpRegistry::register_op(OpSpec spec) {
  if (find(spec.name) != nullptr)
    throw std::logic_error("duplicate op registration: " + spec.name);
  ops_.push_back(std::move(spec));
}

const OpSpec* OpRegistry::find(std::string_view name) const {
  for (const OpSpec& op : ops_)
    if (op.name == name) return &op;
  return nullptr;
}

const OpSpec* OpRegistry::find(RequestKind kind) const {
  for (const OpSpec& op : ops_)
    if (op.analysis && op.kind == kind) return &op;
  return nullptr;
}

std::string OpRegistry::kinds_list(int version) const {
  std::vector<std::string_view> names;
  for (const OpSpec& op : ops_)
    if (version >= 2 || op.in_v1) names.push_back(op.name);
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    if (i + 1 == names.size()) out += "or ";
    out += names[i];
  }
  return out;
}

}  // namespace rfmix::svc
