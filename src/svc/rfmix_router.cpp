// rfmix-router: fault-tolerant front process for a cluster of rfmixd
// workers.
//
// Clients connect to the router's Unix socket and speak the exact
// protocol rfmixd speaks (docs/service.md); the router forks N rfmixd
// workers (each on a private socket under --worker-dir), routes every
// analysis request to a worker by content-hash affinity, replays requests
// whose worker died, restarts crashed workers with backoff and a circuit
// breaker, and degrades to its own cache tier / structured `unavailable`
// errors when no worker is live. See docs/robustness.md.
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "svc/cache.hpp"
#include "svc/fault.hpp"
#include "svc/router.hpp"
#include "svc/supervisor.hpp"

#ifndef _WIN32
#include <csignal>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

void print_usage(std::ostream& os) {
  os << "usage: rfmix-router --socket PATH [options]\n"
        "\n"
        "Serve rfmix requests through a supervised cluster of rfmixd\n"
        "workers: key-affine routing, transparent replay on worker death,\n"
        "restart with backoff + circuit breaker, graceful degradation.\n"
        "\n"
        "options:\n"
        "  --socket PATH      client-facing Unix socket (required)\n"
        "  --workers N        worker processes to supervise (default 2)\n"
        "  --worker-bin PATH  rfmixd binary (default: next to this binary)\n"
        "  --worker-dir DIR   directory for worker sockets\n"
        "                     (default: <socket>.workers, created 0700)\n"
        "  --cache-dir DIR    disk cache for router AND workers\n"
        "                     (default: $RFMIX_CACHE_DIR; safe to share —\n"
        "                     entries are content-addressed)\n"
        "  --max-entries N    router in-memory LRU capacity (default 4096)\n"
        "  --no-restart       treat any worker death as permanent\n"
        "  --help             show this help\n"
        "\n"
        "RFMIX_FAULT=crash_after:N|stall_ms:M|torn_write|drop_conn injects\n"
        "deterministic faults into this process; export it in a worker's\n"
        "environment to fault the workers instead (docs/robustness.md).\n";
}

#ifndef _WIN32
rfmix::svc::RouterLoop* g_loop = nullptr;

extern "C" void handle_shutdown_signal(int) {
  if (g_loop != nullptr) g_loop->request_shutdown();
}

extern "C" void handle_sigchld(int) {
  // Just a wake: the loop reaps via waitpid(WNOHANG) on its own thread.
  if (g_loop != nullptr) g_loop->notify();
}

std::string sibling_rfmixd(const char* argv0) {
  std::string self = argv0;
  const std::size_t slash = self.rfind('/');
  return slash == std::string::npos ? std::string("rfmixd")
                                    : self.substr(0, slash + 1) + "rfmixd";
}
#endif

}  // namespace

int main(int argc, char** argv) {
#ifdef _WIN32
  (void)argc;
  (void)argv;
  std::cerr << "rfmix-router: not supported on this platform\n";
  return 1;
#else
  std::string socket_path;
  std::string worker_dir;
  rfmix::svc::Supervisor::Options sup_opts;
  sup_opts.worker_bin = sibling_rfmixd(argv[0]);
  std::string cache_dir;
  if (const char* env = std::getenv("RFMIX_CACHE_DIR")) cache_dir = env;
  std::size_t max_entries = 4096;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rfmix-router: " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--workers") {
      const long v = std::strtol(value().c_str(), nullptr, 10);
      if (v < 1 || v > 256) {
        std::cerr << "rfmix-router: --workers must be in [1, 256]\n";
        return 2;
      }
      sup_opts.workers = static_cast<int>(v);
    } else if (arg == "--worker-bin") {
      sup_opts.worker_bin = value();
    } else if (arg == "--worker-dir") {
      worker_dir = value();
    } else if (arg == "--cache-dir") {
      cache_dir = value();
    } else if (arg == "--max-entries") {
      const long v = std::strtol(value().c_str(), nullptr, 10);
      if (v < 1) {
        std::cerr << "rfmix-router: --max-entries must be >= 1\n";
        return 2;
      }
      max_entries = static_cast<std::size_t>(v);
    } else if (arg == "--no-restart") {
      sup_opts.restart = false;
    } else {
      std::cerr << "rfmix-router: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::cerr << "rfmix-router: --socket is required\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    rfmix::svc::fault::init_from_env();
  } catch (const std::exception& e) {
    std::cerr << "rfmix-router: bad RFMIX_FAULT: " << e.what() << "\n";
    return 2;
  }

  if (worker_dir.empty()) worker_dir = socket_path + ".workers";
  if (::mkdir(worker_dir.c_str(), 0700) != 0 && errno != EEXIST) {
    std::cerr << "rfmix-router: mkdir " << worker_dir << ": "
              << std::strerror(errno) << "\n";
    return 1;
  }
  sup_opts.socket_dir = worker_dir;
  if (!cache_dir.empty()) {
    sup_opts.worker_args.push_back("--cache-dir");
    sup_opts.worker_args.push_back(cache_dir);
  }

  // Same stale-socket policy as rfmixd: only remove a socket nobody is
  // accepting on; never clobber a non-socket.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "rfmix-router: socket path too long\n";
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  struct stat st {};
  if (::lstat(socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      std::cerr << "rfmix-router: " << socket_path
                << " exists and is not a socket; refusing to remove it\n";
      return 1;
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const bool live =
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
      ::close(probe);
      if (live) {
        std::cerr << "rfmix-router: another server is listening on " << socket_path
                  << "\n";
        return 1;
      }
    }
    ::unlink(socket_path.c_str());
  }

  // Writes race worker crashes and client disconnects by design; EPIPE is
  // a per-connection event, never process death.
  std::signal(SIGPIPE, SIG_IGN);

  rfmix::svc::Supervisor sup(sup_opts);
  std::string err;
  if (!sup.start(&err)) {
    std::cerr << "rfmix-router: starting workers: " << err << "\n";
    return 1;
  }

  rfmix::svc::ResultCache cache(max_entries, cache_dir);
  rfmix::svc::RouterLoop loop(sup, cache, {});
  if (!loop.listen_unix(socket_path, &err)) {
    std::cerr << "rfmix-router: " << socket_path << ": " << err << "\n";
    sup.shutdown();
    return 1;
  }

  g_loop = &loop;
  struct sigaction sa {};
  sa.sa_handler = handle_shutdown_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  struct sigaction chld {};
  chld.sa_handler = handle_sigchld;
  ::sigemptyset(&chld.sa_mask);
  chld.sa_flags = SA_NOCLDSTOP;
  ::sigaction(SIGCHLD, &chld, nullptr);

  std::cerr << "rfmix-router: listening on " << socket_path << " ("
            << sup_opts.workers << " workers, sockets in " << worker_dir << ")\n";
  loop.run();
  g_loop = nullptr;
  ::unlink(socket_path.c_str());
  sup.shutdown();
  std::cerr << "rfmix-router: drained, shutting down\n";
  return 0;
#endif
}
