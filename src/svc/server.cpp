#include "svc/server.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <utility>

#include "mathx/solver_config.hpp"
#include "obs/json_writer.hpp"
#include "runtime/thread_pool.hpp"
#include "svc/canonical.hpp"
#include "svc/json_parse.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

std::string stats_json(JobScheduler& sched) {
  const JobScheduler::Stats js = sched.stats();
  const ResultCache::Stats cs = sched.cache().stats();
  std::string out = "{\"jobs\":{";
  out += "\"submitted\":" + json::number(js.submitted);
  out += ",\"cache_hits\":" + json::number(js.cache_hits);
  out += ",\"deduped\":" + json::number(js.deduped);
  out += ",\"executed\":" + json::number(js.executed);
  out += ",\"failed\":" + json::number(js.failed);
  out += "},\"cache\":{";
  out += "\"hits\":" + json::number(cs.hits);
  out += ",\"misses\":" + json::number(cs.misses);
  out += ",\"evictions\":" + json::number(cs.evictions);
  out += ",\"stores\":" + json::number(cs.stores);
  out += ",\"disk_hits\":" + json::number(cs.disk_hits);
  out += ",\"disk_stores\":" + json::number(cs.disk_stores);
  out += ",\"disk_corrupt\":" + json::number(cs.disk_corrupt);
  out += ",\"entries\":" + json::number(std::uint64_t(sched.cache().size()));
  // Numeric provenance: which solver path produced the cached payloads and
  // which canonicalization epoch keyed them. Both modes are byte-identical
  // by construction, but a client debugging a mismatch wants this pinned.
  out += "},\"solver_mode\":" + json::quoted(mathx::solver_mode_name(mathx::solver_mode()));
  out += ",\"canonical_epoch\":" + json::number(std::uint64_t(kCanonicalEpoch));
  out.push_back('}');
  return out;
}

}  // namespace

std::string response_head(int version, const std::string& id_json, bool ok) {
  std::string out = version == 2 ? "{\"v\":2,\"id\":" : "{\"id\":";
  out += id_json;
  out += ok ? ",\"ok\":true" : ",\"ok\":false";
  if (version != 2) out += ",\"deprecated\":true";
  return out;
}

Response make_unavailable_response(int version, const std::string& id_json,
                                   std::string_view message, double retry_after_ms) {
  Response r;
  r.ok = false;
  r.line = response_head(version, id_json, /*ok=*/false);
  if (version == 2) {
    r.line += ",\"error\":{\"code\":\"unavailable\",\"message\":";
    r.line += json::quoted(message);
    r.line += ",\"retry_after_ms\":";
    r.line += json::number(retry_after_ms);
    r.line += "}}";
  } else {
    r.line += ",\"error\":";
    r.line += json::quoted(message);
    r.line += "}";
  }
  return r;
}

Response make_error_response(int version, const std::string& id_json, ErrorCode code,
                             std::string_view message, std::size_t offset) {
  Response r;
  r.ok = false;
  r.line = response_head(version, id_json, /*ok=*/false);
  if (version == 2) {
    r.line += ",\"error\":{\"code\":";
    r.line += json::quoted(error_code_name(code));
    r.line += ",\"message\":";
    r.line += json::quoted(message);
    if (offset != kNoOffset)
      r.line += ",\"offset\":" + json::number(std::uint64_t(offset));
    r.line += "}}";
  } else {
    r.line += ",\"error\":";
    r.line += json::quoted(message);
    r.line += "}";
  }
  return r;
}

Response make_result_response(const ParsedRequest& req, std::string_view result_json) {
  Response r;
  r.ok = true;
  r.line = response_head(req.version, req.id_json, /*ok=*/true);
  r.line += ",\"result\":";
  r.line += result_json;
  r.line += "}";
  return r;
}

Response make_analysis_response(const ParsedRequest& req, bool cached, bool deduped,
                                const Hash128& key, std::string_view payload) {
  Response r;
  r.ok = true;
  r.line = response_head(req.version, req.id_json, /*ok=*/true);
  r.line += ",\"cached\":";
  r.line += cached ? "true" : "false";
  r.line += ",\"deduped\":";
  r.line += deduped ? "true" : "false";
  r.line += ",\"key\":";
  r.line += json::quoted(key.hex());
  r.line += ",\"result\":";
  r.line += payload;
  r.line += "}";
  return r;
}

ServerSession::ServerSession(ResultCache& cache, runtime::ThreadPool& pool)
    : sched_(cache, pool) {}

std::optional<Response> ServerSession::parse_line(const std::string& line,
                                                 ParsedRequest* req) {
  // Failures before the envelope is understood answer in the current (v2)
  // error shape: the version is unknowable, and a structured code is the
  // only thing a client of either vintage can dispatch on.
  try {
    const JsonValue doc = json_parse(line);
    try {
      *req = parse_request(doc);
      return std::nullopt;
    } catch (const RequestError& e) {
      // The id (when readable) is still echoed so the failure is routable.
      std::string id = "null";
      int version = 2;
      if (doc.is_object()) {
        if (const JsonValue* id_field = doc.find("id")) {
          if (id_field->is_string()) id = json::quoted(id_field->as_string());
          if (id_field->is_number() && std::isfinite(id_field->as_number()))
            id = json::number(id_field->as_number());
        }
        const JsonValue* v = doc.find("v");
        if (v == nullptr || (v->is_number() && v->as_number() == 1.0)) version = 1;
      }
      return make_error_response(version, id, e.code(), e.what());
    }
  } catch (const JsonParseError& e) {
    return make_error_response(2, "null", ErrorCode::kParseError, e.what(), e.offset());
  } catch (const std::exception& e) {
    return make_error_response(2, "null", ErrorCode::kParseError, e.what());
  } catch (...) {
    return make_error_response(2, "null", ErrorCode::kParseError,
                               "unknown parse failure");
  }
}

Response ServerSession::respond_control(const ParsedRequest& req) {
  if (req.kind == "ping") return make_result_response(req, "{\"pong\":true}");
  if (req.kind == "stats") return make_result_response(req, stats_json(sched_));
  // cancel with no connection-level pending state: nothing to cancel. The
  // blocking transports answer every request before reading the next, so
  // by construction no earlier request is still in flight.
  return make_result_response(
      req, "{\"cancelled\":false,\"target\":" + req.cancel_target + "}");
}

Response ServerSession::handle_line(const std::string& line) {
  ParsedRequest req;
  if (std::optional<Response> err = parse_line(line, &req)) return *err;
  if (!is_analysis_kind(req.kind)) return respond_control(req);
  try {
    const Request& r = req.request;
    const Hash128 key = request_key(r);
    const JobScheduler::Outcome outcome =
        sched_.submit(JobScheduler::Job{key, [r] { return execute_request(r); },
                                        req.priority});
    const std::string payload = sched_.await(outcome);
    return make_analysis_response(req, outcome.cache_hit, outcome.deduped, key, payload);
  } catch (const std::exception& e) {
    return make_error_response(req.version, req.id_json, ErrorCode::kExecFailed,
                               e.what());
  } catch (...) {
    return make_error_response(req.version, req.id_json, ErrorCode::kExecFailed,
                               "unknown execution failure");
  }
}

void ServerSession::submit_async(const ParsedRequest& req,
                                 std::function<void(Response)> done) {
  // Keying can fail (the netlist is parsed to canonicalize it); that is a
  // synchronous structured error, same as a failed execution.
  Hash128 key;
  try {
    key = request_key(req.request);
  } catch (const std::exception& e) {
    done(make_error_response(req.version, req.id_json, ErrorCode::kExecFailed,
                             e.what()));
    return;
  }
  const Request r = req.request;
  // `req` is dead by the time a worker completes; copy what the formatter
  // needs into the completion.
  ParsedRequest meta = req;
  sched_.submit_async(
      JobScheduler::Job{key, [r] { return execute_request(r); }, req.priority},
      [meta = std::move(meta), key, done = std::move(done)](
          const std::string* payload, std::exception_ptr err, bool cached,
          bool deduped) {
        if (err) {
          std::string what = "unknown execution failure";
          try {
            std::rethrow_exception(err);
          } catch (const std::exception& e) {
            what = e.what();
          } catch (...) {
          }
          done(make_error_response(meta.version, meta.id_json, ErrorCode::kExecFailed,
                                   what));
          return;
        }
        done(make_analysis_response(meta, cached, deduped, key, *payload));
      });
}

void ServerSession::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF client
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    out << handle_line(line).line << '\n' << std::flush;
  }
}

}  // namespace rfmix::svc
