#include "svc/server.hpp"

#include <climits>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/json_writer.hpp"
#include "svc/json_parse.hpp"
#include "svc/request.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;

double number_field(const JsonValue& obj, std::string_view key, double fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  return v->as_number();
}

/// Client-supplied ints arrive as JSON numbers; casting an out-of-range or
/// non-finite double to int is UB, so validate before converting.
int int_field(const JsonValue& obj, std::string_view key, int fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  const double d = v->as_number();
  if (!std::isfinite(d) || d != std::floor(d) || d < static_cast<double>(INT_MIN) ||
      d > static_cast<double>(INT_MAX))
    throw std::invalid_argument("field '" + std::string(key) +
                                "' must be an integer in int range");
  return static_cast<int>(d);
}

std::string string_field(const JsonValue& obj, std::string_view key,
                         const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  return v->as_string();
}

const std::string& required_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr)
    throw std::invalid_argument("missing required field '" + std::string(key) + "'");
  return v->as_string();
}

bool set_config_number(core::MixerConfig& c, std::string_view key, double v) {
  if (key == "temperature_k") { c.temperature_k = v; return true; }
  if (key == "vdd") { c.vdd = v; return true; }
  if (key == "f_lo_hz") { c.f_lo_hz = v; return true; }
  if (key == "lo_amplitude") { c.lo_amplitude = v; return true; }
  if (key == "lo_common_mode") { c.lo_common_mode = v; return true; }
  if (key == "lo_rise_fraction") { c.lo_rise_fraction = v; return true; }
  if (key == "lo_phase_frac") { c.lo_phase_frac = v; return true; }
  if (key == "rf_series_r") { c.rf_series_r = v; return true; }
  if (key == "tca_gm") { c.tca_gm = v; return true; }
  if (key == "tca_rout") { c.tca_rout = v; return true; }
  if (key == "tca_cpar") { c.tca_cpar = v; return true; }
  if (key == "tca_bias_ma") { c.tca_bias_ma = v; return true; }
  if (key == "tca_nf_gamma") { c.tca_nf_gamma = v; return true; }
  if (key == "tca_flicker_corner_hz") { c.tca_flicker_corner_hz = v; return true; }
  if (key == "quad_w") { c.quad_w = v; return true; }
  if (key == "quad_ron") { c.quad_ron = v; return true; }
  if (key == "quad_l") { c.quad_l = v; return true; }
  if (key == "sw12_w") { c.sw12_w = v; return true; }
  if (key == "rdeg") { c.rdeg = v; return true; }
  if (key == "rdeg_ideal_extra") { c.rdeg_ideal_extra = v; return true; }
  if (key == "tg_resistance") { c.tg_resistance = v; return true; }
  if (key == "cc_load") { c.cc_load = v; return true; }
  if (key == "tia_rf") { c.tia_rf = v; return true; }
  if (key == "tia_cf") { c.tia_cf = v; return true; }
  if (key == "tia_ota_gm") { c.tia_ota_gm = v; return true; }
  if (key == "tia_ota_rout") { c.tia_ota_rout = v; return true; }
  if (key == "tia_ota_gbw_hz") { c.tia_ota_gbw_hz = v; return true; }
  if (key == "tia_bias_ma") { c.tia_bias_ma = v; return true; }
  if (key == "tia_input_noise_nv") { c.tia_input_noise_nv = v; return true; }
  if (key == "tia_flicker_corner_hz") { c.tia_flicker_corner_hz = v; return true; }
  if (key == "active_pair_noise_gm") { c.active_pair_noise_gm = v; return true; }
  if (key == "active_pair_flicker_corner_hz") {
    c.active_pair_flicker_corner_hz = v;
    return true;
  }
  if (key == "lo_buffer_ma") { c.lo_buffer_ma = v; return true; }
  if (key == "bias_overhead_ma") { c.bias_overhead_ma = v; return true; }
  if (key == "core_bias_ma") { c.core_bias_ma = v; return true; }
  return false;
}

AcSpec parse_ac_spec(const JsonValue& obj) {
  AcSpec ac;
  ac.f_start_hz = number_field(obj, "f_start_hz", ac.f_start_hz);
  ac.f_stop_hz = number_field(obj, "f_stop_hz", ac.f_stop_hz);
  ac.points = int_field(obj, "points", ac.points);
  if (const JsonValue* v = obj.find("log_scale")) ac.log_scale = v->as_bool();
  ac.probe = string_field(obj, "probe", "");
  ac.probe_ref = string_field(obj, "probe_ref", "");
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    if (key != "f_start_hz" && key != "f_stop_hz" && key != "points" &&
        key != "log_scale" && key != "probe" && key != "probe_ref")
      throw std::invalid_argument("unknown ac field '" + key + "'");
  }
  return ac;
}

Request parse_analysis_request(const std::string& kind, const JsonValue& doc) {
  Request req;
  if (kind == "op" || kind == "ac") {
    req.kind = kind == "op" ? RequestKind::kOp : RequestKind::kAc;
    req.netlist = required_string(doc, "netlist");
    if (req.kind == RequestKind::kAc) {
      const JsonValue* ac = doc.find("ac");
      if (ac == nullptr) throw std::invalid_argument("ac request requires an 'ac' object");
      req.ac = parse_ac_spec(*ac);
    }
    return req;
  }
  if (kind == "mixer_metric") {
    req.kind = RequestKind::kMixerMetric;
    req.metric.metric = core::metric_from_name(required_string(doc, "metric"));
    if (const JsonValue* cfg = doc.find("config")) apply_mixer_config(*cfg, req.metric.config);
    req.metric.f_if_hz = number_field(doc, "f_if_hz", req.metric.f_if_hz);
    req.metric.f_rf_hz = number_field(doc, "f_rf_hz", req.metric.f_rf_hz);
    return req;
  }
  throw std::invalid_argument("unknown request kind '" + kind +
                              "' (expected ping, stats, op, ac, or mixer_metric)");
}

/// Echo the request's "id" member (number, string, or absent -> null).
std::string id_of(const JsonValue& doc) {
  const JsonValue* id = doc.find("id");
  if (id == nullptr || id->is_null()) return "null";
  if (id->is_number()) return json::number(id->as_number());
  if (id->is_string()) return json::quoted(id->as_string());
  throw std::invalid_argument("request id must be a number or a string");
}

std::string error_response(const std::string& id, const std::string& what) {
  return "{\"id\":" + id + ",\"ok\":false,\"error\":" + json::quoted(what) + "}";
}

}  // namespace

void apply_mixer_config(const JsonValue& obj, core::MixerConfig& config) {
  for (const auto& [key, value] : obj.as_object()) {
    if (key == "mode") {
      const std::string& mode = value.as_string();
      if (mode == "active") {
        config.mode = core::MixerMode::kActive;
      } else if (mode == "passive") {
        config.mode = core::MixerMode::kPassive;
      } else {
        throw std::invalid_argument("unknown mixer mode '" + mode +
                                    "' (expected active or passive)");
      }
      continue;
    }
    if (!set_config_number(config, key, value.as_number()))
      throw std::invalid_argument("unknown config field '" + key + "'");
  }
}

ServerSession::ServerSession(ResultCache& cache, runtime::ThreadPool& pool)
    : sched_(cache, pool) {}

std::string ServerSession::handle_line(const std::string& line) {
  std::string id = "null";
  try {
    const JsonValue doc = json_parse(line);
    if (!doc.is_object()) throw std::invalid_argument("request must be a JSON object");
    id = id_of(doc);
    const std::string& kind = required_string(doc, "kind");

    if (kind == "ping") return "{\"id\":" + id + ",\"ok\":true,\"result\":{\"pong\":true}}";
    if (kind == "stats") {
      const JobScheduler::Stats js = sched_.stats();
      const ResultCache::Stats cs = sched_.cache().stats();
      std::string out = "{\"id\":" + id + ",\"ok\":true,\"result\":{\"jobs\":{";
      out += "\"submitted\":" + json::number(js.submitted);
      out += ",\"cache_hits\":" + json::number(js.cache_hits);
      out += ",\"deduped\":" + json::number(js.deduped);
      out += ",\"executed\":" + json::number(js.executed);
      out += ",\"failed\":" + json::number(js.failed);
      out += "},\"cache\":{";
      out += "\"hits\":" + json::number(cs.hits);
      out += ",\"misses\":" + json::number(cs.misses);
      out += ",\"evictions\":" + json::number(cs.evictions);
      out += ",\"stores\":" + json::number(cs.stores);
      out += ",\"disk_hits\":" + json::number(cs.disk_hits);
      out += ",\"disk_stores\":" + json::number(cs.disk_stores);
      out += ",\"entries\":" + json::number(std::uint64_t(sched_.cache().size()));
      out += "}}}";
      return out;
    }

    const Request req = parse_analysis_request(kind, doc);
    const int priority = int_field(doc, "priority", 0);
    const Hash128 key = request_key(req);
    const JobScheduler::Outcome outcome =
        sched_.submit(JobScheduler::Job{key, [req] { return execute_request(req); }, priority});
    const std::string payload = sched_.await(outcome);
    std::string out = "{\"id\":" + id + ",\"ok\":true";
    out += ",\"cached\":" + std::string(outcome.cache_hit ? "true" : "false");
    out += ",\"deduped\":" + std::string(outcome.deduped ? "true" : "false");
    out += ",\"key\":" + json::quoted(key.hex());
    out += ",\"result\":" + payload + "}";
    return out;
  } catch (const std::exception& e) {
    return error_response(id, e.what());
  }
}

void ServerSession::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line) << '\n' << std::flush;
  }
}

}  // namespace rfmix::svc
