// Declarative op registry: one table from op name to everything the
// service layer needs to know about it.
//
// Before this existed, every new rfmixd op re-implemented its own slice of
// request handling by hand across request.cpp — parameter parsing,
// strictness rules, canonical cache records, execution, and the router's
// re-serialization — and the per-op if/else chains grew with each PR. An
// OpSpec packages those per-op concerns declaratively:
//
//   name  ->  field schema {type, required, range}  ->  handlers
//
// and parse_request / request_canonical / execute_request /
// serialize_v2_request in request.cpp become thin, op-agnostic dispatch
// over the registry. The v1 (version-less) protocol is the same table with
// `in_v1` gating which kinds exist and schemas applied leniently to the
// whole document (v1's frozen top-level-fields layout) — one construction
// path for both wire versions.
//
// Error-message compatibility is part of the contract: schemas reproduce
// the exact bytes the hand-rolled parsers emitted ("missing required field
// 'netlist'", "unknown ac field 'x'", "field 'points' must be an integer
// in int range", ...), and tests/svc/test_protocol_golden.cpp pins them.
//
// See docs/service.md ("The op registry").
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "svc/request.hpp"

namespace rfmix::svc {

class JsonValue;
class CanonicalWriter;

enum class FieldType {
  kNumber,  // JSON number -> double
  kInt,     // JSON number, validated as an integer in int range
  kString,
  kBool,
  kObject,  // nested object, handed to bind_object (sub-schema or custom)
};

/// One declared parameter field. `min > max` (the default) means "no range
/// check"; ranges are inclusive and apply to kNumber/kInt.
struct FieldSpec {
  std::string name;
  FieldType type = FieldType::kNumber;
  bool required = false;
  std::string missing_message;  // empty -> "missing required field '<name>'"
  double min = 1.0;
  double max = 0.0;
  std::function<void(double, Request&)> bind_number;  // kNumber / kInt
  std::function<void(const std::string&, Request&)> bind_string;
  std::function<void(bool, Request&)> bind_bool;
  std::function<void(const JsonValue&, Request&)> bind_object;
};

/// An ordered field schema plus the label used in unknown-field errors
/// ("unknown <label> field 'x'"). Fields apply in declaration order (which
/// fixes error precedence); the unknown-field scan, when requested, runs
/// last.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string label) : label_(std::move(label)) {}

  Schema& number(std::string name, std::function<void(double, Request&)> bind);
  Schema& integer(std::string name, std::function<void(double, Request&)> bind);
  Schema& string(std::string name, std::function<void(const std::string&, Request&)> bind);
  Schema& boolean(std::string name, std::function<void(bool, Request&)> bind);
  Schema& object(std::string name, std::function<void(const JsonValue&, Request&)> bind);

  /// Mark the most recently added field required; a custom message
  /// overrides the default "missing required field '<name>'".
  Schema& required(std::string missing_message = "");
  /// Inclusive range check on the most recently added kNumber/kInt field.
  Schema& range(double min, double max);

  /// Apply `obj` onto `req`. `strict` additionally rejects keys not in the
  /// schema ("unknown <label> field 'x'"). Throws std::invalid_argument /
  /// whatever the JSON accessors throw; the caller maps to kBadParams.
  void apply(const JsonValue& obj, Request& req, bool strict) const;

  bool empty() const { return fields_.empty(); }
  const std::vector<FieldSpec>& fields() const { return fields_; }
  const std::string& label() const { return label_; }

 private:
  std::string label_;
  std::vector<FieldSpec> fields_;
};

/// Everything the service layer knows about one op.
struct OpSpec {
  std::string name;
  bool analysis = false;  // scheduled through the cache/job layer (vs
                          // answered in place: ping, stats, cancel)
  bool in_v1 = false;     // part of the frozen v1 protocol surface
  RequestKind kind = RequestKind::kOp;  // meaningful when analysis

  Schema params;               // parameter schema (may be empty)
  bool strict_params = false;  // v2: reject unknown top-level params keys
  /// Cross-field validation / normalization after the schema applied.
  std::function<void(Request&)> finish;

  /// Append this op's canonical cache-key records (analysis ops).
  std::function<void(CanonicalWriter&, const Request&)> canonical;
  /// Execute and serialize the result payload (analysis ops).
  std::function<std::string(const Request&)> execute;
  /// Append the `"k":v,...` body of the v2 params object for router
  /// replay (analysis ops). Must serialize every field the schema reads so
  /// parse(serialize(req)) reproduces the identical Request.
  std::function<void(std::string&, const Request&)> serialize_params;

  /// Control-op parameter parsing (cancel). Applied to the v2 params.
  std::function<void(const JsonValue& params, ParsedRequest&)> parse_control;
};

/// The process-wide op table. Built-ins register in constructor order —
/// which is also the order the "unknown request kind" suggestion lists
/// them in, so registration order is wire-visible and append-only.
class OpRegistry {
 public:
  static OpRegistry& instance();

  /// Append an op. Throws std::logic_error on duplicate names.
  void register_op(OpSpec spec);

  const OpSpec* find(std::string_view name) const;
  /// Lookup by request kind (analysis ops only; nullptr otherwise).
  const OpSpec* find(RequestKind kind) const;
  const std::vector<OpSpec>& ops() const { return ops_; }

  /// Human-readable kind list for the unknown-kind error: all ops for
  /// version 2, the `in_v1` subset for version 1 ("a, b, ..., or z").
  std::string kinds_list(int version) const;

 private:
  OpRegistry();
  std::vector<OpSpec> ops_;
};

}  // namespace rfmix::svc
