#include "svc/event_loop.hpp"

#ifndef _WIN32

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "obs/obs.hpp"
#include "svc/fault.hpp"

namespace rfmix::svc {

namespace {

using Clock = std::chrono::steady_clock;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void record_turnaround(Clock::time_point start) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count();
  static obs::Timer& timer = obs::timer("svc.server.turnaround");
  timer.record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
}

}  // namespace

ServerLoop::ServerLoop(ServerSession& session, Options opts)
    : session_(session), opts_(opts) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_r_ = fds[0];
    wake_w_ = fds[1];
    set_nonblocking(wake_r_);
    set_nonblocking(wake_w_);
  }
}

ServerLoop::~ServerLoop() {
  for (auto& [gen, conn] : conns_) {
    (void)gen;
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listener_ >= 0) ::close(listener_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

bool ServerLoop::listen_unix(const std::string& path, std::string* err) {
  if (wake_r_ < 0 || wake_w_ < 0) {
    if (err != nullptr) *err = "wake pipe unavailable";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "socket path too long";
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener_, opts_.backlog) != 0 || !set_nonblocking(listener_)) {
    if (err != nullptr) *err = std::string("bind/listen: ") + std::strerror(errno);
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  socket_path_ = path;
  return true;
}

void ServerLoop::request_shutdown() {
  // Async-signal-safe: one relaxed store plus one write(2). Everything
  // else happens on the loop thread once the wake byte lands.
  shutdown_requested_.store(true, std::memory_order_release);
  wake();
}

void ServerLoop::wake() {
  const char b = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
}

void ServerLoop::complete(std::uint64_t gen, std::uint64_t seq, Response r) {
  {
    std::lock_guard<std::mutex> lk(cq_mu_);
    cq_.push_back(Completion{gen, seq, std::move(r)});
  }
  wake();
  outstanding_.fetch_sub(1, std::memory_order_release);
}

int ServerLoop::poll_timeout_ms() const {
  Clock::time_point nearest = Clock::time_point::max();
  for (const auto& [gen, conn] : conns_) {
    (void)gen;
    for (const auto& [seq, rec] : conn.inflight) {
      (void)seq;
      if (rec.has_deadline) nearest = std::min(nearest, rec.deadline);
    }
  }
  if (draining_) nearest = std::min(nearest, drain_deadline_);
  if (nearest == Clock::time_point::max()) return -1;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(nearest - Clock::now())
          .count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<long long>(ms + 1, 60000));
}

void ServerLoop::run() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> gens;
  while (true) {
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      drain_deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double, std::milli>(
                                               opts_.drain_timeout_ms));
      if (listener_ >= 0) {
        ::close(listener_);
        listener_ = -1;
      }
      // Stop consuming input; already-dispatched work drains, buffered
      // bytes that never became a dispatched request are dropped.
      for (auto& [gen, conn] : conns_) {
        (void)gen;
        conn.discard_input = true;
      }
    }

    process_completions();
    process_timeouts();
    for (auto& [gen, conn] : conns_) {
      (void)gen;
      dispatch_buffered(conn);
    }
    reap_connections();
    if (draining_ && conns_.empty()) break;

    fds.clear();
    gens.clear();
    fds.push_back(pollfd{wake_r_, POLLIN, 0});
    gens.push_back(0);
    if (listener_ >= 0) {
      fds.push_back(pollfd{listener_, POLLIN, 0});
      gens.push_back(0);
    }
    for (auto& [gen, conn] : conns_) {
      short events = 0;
      if (!conn.read_closed && !conn.discard_input && !conn.paused) events |= POLLIN;
      if (conn.wpos < conn.wbuf.size()) events |= POLLOUT;
      if (events == 0) continue;  // progress arrives via the wake pipe
      fds.push_back(pollfd{conn.fd, events, 0});
      gens.push_back(gen);
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure; drain state dies with the loop
    }

    std::size_t idx = 0;
    if ((fds[idx].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof buf) > 0) {
      }
    }
    ++idx;
    if (listener_ >= 0) {
      if ((fds[idx].revents & POLLIN) != 0) accept_clients();
      ++idx;
    }
    for (; idx < fds.size(); ++idx) {
      const auto it = conns_.find(gens[idx]);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      const short re = fds[idx].revents;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        conn.dead = true;
        continue;
      }
      if ((re & POLLOUT) != 0) write_to(conn);
      if ((re & (POLLIN | POLLHUP)) != 0 && !conn.read_closed && !conn.dead)
        read_from(conn);
    }
  }

  // Force-dropped connections can leave compute jobs still running; their
  // completions capture `this`, so wait them out before returning control
  // (the results themselves are discarded).
  using namespace std::chrono_literals;
  while (outstanding_.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(200us);
}

void ServerLoop::accept_clients() {
  while (true) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept failure: poll again
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.gen = next_gen_++;
    conns_.emplace(conn.gen, std::move(conn));
    RFMIX_OBS_COUNT("svc.server.connections");
  }
}

void ServerLoop::read_from(Conn& conn) {
  char buf[65536];
  const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
  if (n > 0) {
    RFMIX_OBS_COUNT_N("svc.server.bytes_in", n);
    conn.rbuf.append(buf, static_cast<std::size_t>(n));
    return;
  }
  if (n == 0) {
    conn.read_closed = true;  // buffered complete lines still drain
    return;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
  conn.dead = true;
}

void ServerLoop::write_to(Conn& conn) {
  while (conn.wpos < conn.wbuf.size()) {
    fault::maybe_stall();
    const std::size_t want = fault::clamp_write(conn.wbuf.size() - conn.wpos);
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.wpos, want,
                             MSG_NOSIGNAL);
    if (n > 0) {
      RFMIX_OBS_COUNT_N("svc.server.bytes_out", n);
      conn.wpos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET: the peer hung up with responses still queued.
    // Strictly that peer's problem — reap this connection, serve the rest.
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
      RFMIX_OBS_COUNT("svc.server.peer_resets");
    conn.dead = true;
    return;
  }
  if (conn.wpos == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.wpos = 0;
    if (conn.drop_after_flush) conn.dead = true;
  } else if (conn.wpos > (1u << 16)) {
    conn.wbuf.erase(0, conn.wpos);
    conn.wpos = 0;
  }
}

void ServerLoop::enqueue_response(Conn& conn, const Response& r) {
  fault::on_response_write();
  conn.wbuf += r.line;
  conn.wbuf.push_back('\n');
  if (fault::should_drop_conn()) conn.drop_after_flush = true;
  RFMIX_OBS_COUNT("svc.server.responses");
  // Eager flush: put the response on the wire now instead of waiting a
  // full poll round-trip (EAGAIN leaves the tail for POLLOUT as before).
  // Besides the latency, this bounds what a mid-batch crash can destroy
  // to the single response being built, not a whole drained batch.
  if (!conn.dead) write_to(conn);
}

void ServerLoop::dispatch_buffered(Conn& conn) {
  if (conn.dead || conn.discard_input) return;
  while (true) {
    const bool at_capacity = conn.inflight.size() >= opts_.max_inflight ||
                             conn.wbuf.size() - conn.wpos >= opts_.max_output_bytes;
    if (at_capacity) {
      if (!conn.paused) RFMIX_OBS_COUNT("svc.server.backpressure_pauses");
      conn.paused = true;
      break;
    }
    conn.paused = false;
    const std::size_t nl = conn.rbuf.find('\n', conn.rpos);
    if (nl == std::string::npos) {
      if (conn.rbuf.size() - conn.rpos > opts_.max_line_bytes) {
        // A line this long cannot be resynchronized; answer and hang up.
        enqueue_response(conn, make_error_response(2, "null", ErrorCode::kParseError,
                                                   "request line exceeds size limit"));
        RFMIX_OBS_COUNT("svc.server.protocol_errors");
        conn.read_closed = true;
        conn.rpos = conn.rbuf.size();
      } else if (conn.read_closed && conn.rpos < conn.rbuf.size()) {
        // EOF with an unterminated final line: getline parity with the
        // stdin transport — process it as the last request.
        std::string line = conn.rbuf.substr(conn.rpos);
        conn.rpos = conn.rbuf.size();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.find_first_not_of(" \t") != std::string::npos)
          process_line(conn, line);
        continue;
      }
      break;
    }
    std::string line = conn.rbuf.substr(conn.rpos, nl - conn.rpos);
    conn.rpos = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    process_line(conn, line);
  }
  // Compact the consumed prefix so a long-lived connection does not grow
  // its read buffer without bound.
  if (conn.rpos == conn.rbuf.size()) {
    conn.rbuf.clear();
    conn.rpos = 0;
  } else if (conn.rpos > (1u << 16)) {
    conn.rbuf.erase(0, conn.rpos);
    conn.rpos = 0;
  }
}

void ServerLoop::process_line(Conn& conn, const std::string& line) {
  ParsedRequest req;
  if (std::optional<Response> err = ServerSession::parse_line(line, &req)) {
    RFMIX_OBS_COUNT("svc.server.protocol_errors");
    enqueue_response(conn, *err);
    return;
  }
  if (req.kind == "cancel") {
    do_cancel(conn, req);
    return;
  }
  if (!is_analysis_kind(req.kind)) {
    enqueue_response(conn, session_.respond_control(req));
    return;
  }

  const std::uint64_t seq = conn.next_seq++;
  PendingReq rec;
  rec.id_json = req.id_json;
  rec.version = req.version;
  rec.start = Clock::now();
  const double timeout_ms =
      req.timeout_ms > 0.0 ? req.timeout_ms : opts_.default_timeout_ms;
  if (timeout_ms > 0.0) {
    rec.has_deadline = true;
    rec.deadline = rec.start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(timeout_ms));
  }
  conn.inflight.emplace(seq, std::move(rec));
  RFMIX_OBS_COUNT("svc.server.requests");

  const std::uint64_t gen = conn.gen;
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  session_.submit_async(
      req, [this, gen, seq](Response r) { complete(gen, seq, std::move(r)); });
}

void ServerLoop::do_cancel(Conn& conn, const ParsedRequest& req) {
  bool found = false;
  for (auto it = conn.inflight.begin(); it != conn.inflight.end();) {
    if (it->second.id_json == req.cancel_target) {
      enqueue_response(conn,
                       make_error_response(it->second.version, it->second.id_json,
                                           ErrorCode::kCancelled,
                                           "request cancelled by client"));
      RFMIX_OBS_COUNT("svc.server.cancelled");
      it = conn.inflight.erase(it);
      found = true;
    } else {
      ++it;
    }
  }
  enqueue_response(conn, make_result_response(
                             req, std::string("{\"cancelled\":") +
                                      (found ? "true" : "false") +
                                      ",\"target\":" + req.cancel_target + "}"));
}

void ServerLoop::process_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lk(cq_mu_);
    batch.swap(cq_);
  }
  for (Completion& c : batch) {
    const auto conn_it = conns_.find(c.gen);
    if (conn_it == conns_.end()) {
      RFMIX_OBS_COUNT("svc.server.dropped_responses");  // client went away
      continue;
    }
    Conn& conn = conn_it->second;
    const auto rec_it = conn.inflight.find(c.seq);
    if (rec_it == conn.inflight.end()) {
      RFMIX_OBS_COUNT("svc.server.dropped_responses");  // timed out / cancelled
      continue;
    }
    record_turnaround(rec_it->second.start);
    conn.inflight.erase(rec_it);
    enqueue_response(conn, c.response);
  }
}

void ServerLoop::process_timeouts() {
  const Clock::time_point now = Clock::now();
  for (auto& [gen, conn] : conns_) {
    (void)gen;
    for (auto it = conn.inflight.begin(); it != conn.inflight.end();) {
      if (it->second.has_deadline && it->second.deadline <= now) {
        enqueue_response(conn,
                         make_error_response(it->second.version, it->second.id_json,
                                             ErrorCode::kTimeout,
                                             "request deadline exceeded"));
        RFMIX_OBS_COUNT("svc.server.timeouts");
        it = conn.inflight.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ServerLoop::reap_connections() {
  const bool past_drain = draining_ && Clock::now() >= drain_deadline_;
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = it->second;
    const bool no_more_input =
        conn.discard_input || (conn.read_closed && conn.rpos == conn.rbuf.size());
    const bool finished =
        no_more_input && conn.inflight.empty() && conn.wpos == conn.wbuf.size();
    if (conn.dead || finished || past_drain) {
      ::close(conn.fd);
      RFMIX_OBS_COUNT("svc.server.disconnects");
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServerLoop::drop_connection(std::uint64_t gen) {
  const auto it = conns_.find(gen);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  RFMIX_OBS_COUNT("svc.server.disconnects");
  conns_.erase(it);
}

}  // namespace rfmix::svc

#else  // _WIN32

namespace rfmix::svc {

ServerLoop::ServerLoop(ServerSession& session, Options opts)
    : session_(session), opts_(opts) {}
ServerLoop::~ServerLoop() = default;
bool ServerLoop::listen_unix(const std::string&, std::string* err) {
  if (err != nullptr) *err = "unix sockets are not supported on this platform";
  return false;
}
void ServerLoop::run() {}
void ServerLoop::request_shutdown() {}

}  // namespace rfmix::svc

#endif  // _WIN32
