// Deterministic fault injection for the service transports.
//
// A single process-wide FaultSpec — parsed from RFMIX_FAULT by the
// daemon binaries (rfmixd, rfmix-router), or installed programmatically by
// tests — is honored at well-defined injection sites in the I/O paths:
//
//   RFMIX_FAULT=crash_after:N   _exit(66) immediately after the N-th
//                               response is queued for writing (a crash
//                               with work in flight, the replay test case)
//   RFMIX_FAULT=stall_ms:M      sleep M ms before every socket write (a
//                               hung-but-alive worker, the heartbeat case)
//   RFMIX_FAULT=torn_write      every send(2) moves at most one byte, so
//                               responses are torn across many packets
//   RFMIX_FAULT=drop_conn       hang up on a connection right after its
//                               first response flushes
//
// A spec may carry ";seed:K": the hit counter starts at K, shifting which
// hit fires without changing anything else — runs are reproducible by
// construction (counter-based, no wall clock, no entropy). With no spec
// installed every hook compiles down to a cheap atomic load of "off".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace rfmix::svc::fault {

enum class Kind {
  kNone,
  kCrashAfter,  // _exit after the n-th response write
  kStallMs,     // sleep before every write
  kTornWrite,   // 1-byte writes
  kDropConn,    // close a connection after its first response
};

/// What crash_after exits with — distinct from every exit code the
/// daemons use for real errors, so the supervisor's logs tell an injected
/// crash from a genuine one.
inline constexpr int kCrashExitCode = 66;

struct Spec {
  Kind kind = Kind::kNone;
  std::uint64_t n = 0;      // crash_after threshold (1-based)
  double ms = 0.0;          // stall duration
  std::uint64_t seed = 0;   // initial hit-counter value
};

/// Parse "crash_after:N" / "stall_ms:M" / "torn_write" / "drop_conn",
/// optionally followed by ";seed:K". Throws std::invalid_argument with the
/// offending token on anything else (a typo'd fault plan must fail loudly,
/// not silently run fault-free).
Spec parse_spec(std::string_view text);

/// Install `spec` process-wide (replacing any previous one) and reset the
/// hit counter to spec.seed.
void install(const Spec& spec);

/// install(parse_spec($RFMIX_FAULT)) when the variable is set and
/// non-empty; no-op otherwise. Called once from daemon main()s — library
/// code never reads the environment, so in-process tests stay fault-free
/// unless they opt in via install().
void init_from_env();

/// The active spec (kind == kNone when faults are off).
const Spec& spec();
inline bool enabled() { return spec().kind != Kind::kNone; }

// --- Injection sites -------------------------------------------------------

/// Response-queued site. Counts one hit; fires crash_after when the
/// counter reaches n.
void on_response_write();

/// Pre-write site: blocks the calling thread for spec.ms under stall_ms.
void maybe_stall();

/// Write-size site: the byte budget for one send(2) (1 under torn_write,
/// `want` otherwise).
std::size_t clamp_write(std::size_t want);

/// Post-flush site: true under drop_conn — the caller should hang up.
bool should_drop_conn();

}  // namespace rfmix::svc::fault
