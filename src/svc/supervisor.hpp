// Worker supervision for the rfmixd cluster: fork/exec N rfmixd worker
// daemons (each on its own Unix socket), detect crashes, and restart them
// with capped exponential backoff and a circuit breaker.
//
// The supervisor owns *processes*; the router (router.hpp) owns the
// *connections* to them. Division of labor per failure mode:
//  * worker exits (crash, kill -9, crash_after fault) — the router sees
//    EOF on the worker connection immediately and replays that worker's
//    in-flight requests elsewhere; the supervisor reaps the child on the
//    next poll_children() (SIGCHLD wakes the router loop so "next" is
//    "now") and schedules the respawn;
//  * worker hangs (stall_ms fault, livelock) — the router's ping
//    heartbeat times out and it asks the supervisor to kill_worker(),
//    which turns the hang into the crash case above;
//  * worker crash-loops — each death within fast_failure_ms of its spawn
//    doubles the restart delay (capped), and after breaker_threshold
//    consecutive fast failures the breaker opens: no restarts for
//    breaker_cooloff_ms, after which one probe respawn is attempted
//    (half-open) and either closes the breaker or re-opens it.
//
// Not thread-safe: every method is called from the router's loop thread.
// Nothing here blocks — spawning is fork+execv, reaping is WNOHANG, and
// timed decisions (backoff, breaker) are driven by the caller's clock via
// poll_children()/spawn_due()/next_event().
#pragma once

#ifndef _WIN32

#include <sys/types.h>

#include <chrono>
#include <string>
#include <vector>

namespace rfmix::svc {

class Supervisor {
 public:
  using Clock = std::chrono::steady_clock;

  enum class WorkerState {
    kDown,      // not running, respawn scheduled (restart_at)
    kRunning,   // process alive as far as we know
    kBroken,    // circuit breaker open: respawn deferred to breaker_until
    kStopped,   // deliberately stopped (shutdown / restart disabled)
  };

  struct Options {
    std::string worker_bin;                // path to the rfmixd binary
    std::vector<std::string> worker_args;  // extra argv (e.g. --max-entries)
    std::string socket_dir;                // worker sockets live here
    int workers = 2;
    bool restart = true;                   // false: a death is permanent
    double backoff_initial_ms = 50.0;
    double backoff_cap_ms = 2000.0;
    double fast_failure_ms = 1000.0;       // uptime below this is a "fast" failure
    int breaker_threshold = 5;             // consecutive fast failures to open
    double breaker_cooloff_ms = 10000.0;
    /// Environment for workers, as "KEY=VALUE" strings appended to the
    /// parent environment (e.g. a per-worker RFMIX_FAULT plan).
    std::vector<std::string> worker_env;
  };

  struct Worker {
    int index = 0;
    pid_t pid = -1;
    std::string socket_path;
    WorkerState state = WorkerState::kDown;
    Clock::time_point spawned_at{};
    Clock::time_point restart_at{};   // kDown: earliest respawn time
    Clock::time_point breaker_until{};// kBroken: when half-open probing starts
    double backoff_ms = 0.0;          // next restart delay
    int fast_failures = 0;            // consecutive, resets on a slow failure
    std::uint64_t spawn_count = 0;    // restarts = spawn_count - 1
    int last_exit_status = 0;         // raw waitpid status of the last death
  };

  explicit Supervisor(Options opts);
  ~Supervisor();  // kills every running worker (SIGKILL; shutdown() is the
                  // polite path and should normally run first)

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawn every worker. Returns false (with a reason in *err) when any
  /// fork/exec setup fails — a worker that execs and then dies is a
  /// restart case, not a start failure.
  bool start(std::string* err);

  /// Reap dead children (waitpid WNOHANG loop) and schedule their
  /// restarts. Returns the indices of workers that died since the last
  /// call — the router replays their in-flight requests.
  std::vector<int> poll_children();

  /// Respawn every kDown worker whose restart_at has passed (and probe
  /// kBroken ones whose cooloff ended). Returns the indices respawned.
  std::vector<int> spawn_due();

  /// Earliest future time at which spawn_due() would do something, or
  /// time_point::max() when nothing is scheduled. Bounds the router's
  /// poll timeout.
  Clock::time_point next_event() const;

  /// SIGKILL one worker (the heartbeat-timeout path; also the chaos
  /// hook). The death is then observed by poll_children like any crash.
  void kill_worker(int index);

  /// Stop everything: SIGTERM all workers, wait up to grace_ms for them
  /// to exit, SIGKILL stragglers. Workers end kStopped (never restarted).
  void shutdown(double grace_ms = 2000.0);

  const std::vector<Worker>& workers() const { return workers_; }
  const Worker& worker(int index) const { return workers_[static_cast<std::size_t>(index)]; }
  int alive_count() const;
  const Options& options() const { return opts_; }

 private:
  bool spawn(Worker& w, std::string* err);
  void on_death(Worker& w, int status);

  Options opts_;
  std::vector<Worker> workers_;
};

}  // namespace rfmix::svc

#endif  // _WIN32
