// Job scheduler: batched, deduplicated, priority-ordered execution of
// cacheable computations on the runtime thread pool.
//
// A job is (content hash, compute closure). The scheduler is the only
// writer of its ResultCache, which gives the two service guarantees:
//  * cache coherence — a key is computed at most once per process even
//    under concurrent submission (single-flight: later submitters of an
//    in-flight key join the first run's future instead of re-executing);
//  * priority — pending jobs drain highest-priority first, FIFO within a
//    priority level. With a serial pool (no workers) jobs run inline at
//    submit time, so run_batch additionally pre-sorts its submissions and
//    batch priority order holds at any thread count.
//
// await() never parks a pool worker while work is queued: the waiting
// thread lends itself to the pool via ThreadPool::help_one, so a worker
// blocked on a deduplicated neighbour cannot starve the pool.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "svc/cache.hpp"
#include "svc/hash.hpp"

namespace rfmix::runtime {
class ThreadPool;
}

namespace rfmix::svc {

class JobScheduler {
 public:
  struct Stats {
    std::uint64_t submitted = 0;   // submit() calls
    std::uint64_t cache_hits = 0;  // served from the cache, no execution
    std::uint64_t deduped = 0;     // joined an in-flight identical job
    std::uint64_t executed = 0;    // compute closures actually run
    std::uint64_t failed = 0;      // executions that threw
  };

  /// What submit() resolved a job to. `result` is always valid; get()
  /// rethrows the compute closure's exception on failure.
  struct Outcome {
    std::shared_future<std::string> result;
    Hash128 key;
    bool cache_hit = false;
    bool deduped = false;
  };

  struct Job {
    Hash128 key;
    std::function<std::string()> compute;
    int priority = 0;  // higher drains first
  };

  /// Completion callback for submit_async: exactly one of `payload` /
  /// `err` is set; `cache_hit` / `deduped` carry the same provenance the
  /// blocking Outcome does. Runs on whichever thread resolves the job —
  /// inline in submit_async for cache hits (and inline execution on a
  /// serial pool), else on the pool worker that finished the compute — so
  /// it must not block on pool work itself.
  using Completion = std::function<void(const std::string* payload,
                                        std::exception_ptr err, bool cache_hit,
                                        bool deduped)>;

  JobScheduler(ResultCache& cache, runtime::ThreadPool& pool)
      : cache_(cache), pool_(pool) {}

  /// Resolve a job: cache probe, then single-flight join, then enqueue.
  /// The compute closure must be a pure function of the key's content —
  /// its payload is cached under `key` on success.
  Outcome submit(const Job& job);

  /// submit() without the blocking await: `done` is invoked exactly once
  /// with the result. Deduplicated submissions of an in-flight key attach
  /// their callback to the running execution instead of re-executing —
  /// one compute can fan out to many completions.
  void submit_async(const Job& job, Completion done);

  /// Block until `outcome` is ready, executing queued jobs on this thread
  /// while waiting. Returns the payload; rethrows on failure.
  std::string await(const Outcome& outcome);

  /// submit + await.
  std::string run(const Job& job);

  /// Submit every job (highest priority first, FIFO within a level), then
  /// await all; results are returned in input order.
  std::vector<std::string> run_batch(const std::vector<Job>& jobs);

  Stats stats() const;
  ResultCache& cache() { return cache_; }

 private:
  struct Pending {
    Hash128 key;
    std::function<std::string()> compute;
    std::shared_ptr<std::promise<std::string>> promise;
    int priority = 0;
    std::uint64_t seq = 0;
  };
  struct PendingOrder {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;  // FIFO within a priority level
    }
  };

  /// One in-flight key: the future blocking submitters join, plus the
  /// callbacks async submitters attached (each with its own deduped flag).
  struct Inflight {
    std::shared_future<std::string> future;
    std::vector<std::pair<Completion, bool>> callbacks;
  };

  /// Pool task body: pop the highest-priority pending job and execute it.
  void drain_one();

  ResultCache& cache_;
  runtime::ThreadPool& pool_;
  mutable std::mutex mu_;
  std::unordered_map<Hash128, Inflight, Hash128Hasher> inflight_;
  std::priority_queue<Pending, std::vector<Pending>, PendingOrder> heap_;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace rfmix::svc
