// rfmixd request handling: newline-delimited JSON in, newline-delimited
// JSON out, protocol versions 1 (deprecated) and 2 (docs/service.md).
//
// One ServerSession wraps a JobScheduler over a ResultCache and a thread
// pool. The session is transport-free: handle_line() is a pure
// request->response function (no streams, no flushing) used by the
// blocking stdin path and the tests, and submit_async() is the
// callback-completion entry the poll(2) event loop (event_loop.hpp) routes
// through so responses can finish out of order. The binary in rfmixd.cpp
// is a thin transport shell around these two.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "svc/request.hpp"
#include "svc/scheduler.hpp"

namespace rfmix::runtime {
class ThreadPool;
}

namespace rfmix::svc {

/// One response line (no trailing newline) plus the success flag the
/// transports key their accounting on.
struct Response {
  std::string line;
  bool ok = false;
};

/// Sentinel for "no byte offset" in make_error_response.
inline constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

/// Serialize an error in the request's protocol version: v1 keeps the
/// legacy string `"error":"..."` (plus `"deprecated":true`), v2 emits the
/// structured `{"code","message"[,"offset"]}` object. Pure — shared by the
/// session, the event loop (timeouts, cancels), and the golden tests.
Response make_error_response(int version, const std::string& id_json, ErrorCode code,
                             std::string_view message, std::size_t offset = kNoOffset);

/// The response prefix through the "ok" flag: `{"v":2,"id":<id>,"ok":b`
/// for v2, `{"id":<id>,"ok":b,"deprecated":true` for v1. Exposed for the
/// router, which splices a worker response's tail (everything after this
/// prefix) onto a head rebuilt in the client's protocol version — so a
/// routed response is byte-identical to talking to the worker directly.
std::string response_head(int version, const std::string& id_json, bool ok);

/// The cluster's graceful-degradation answer: an `unavailable` error
/// carrying `retry_after_ms`, the router's hint for when capacity is
/// expected back (next restart attempt or breaker cooloff expiry).
Response make_unavailable_response(int version, const std::string& id_json,
                                   std::string_view message, double retry_after_ms);

/// Serialize a non-analysis result (ping, stats, cancel) in the request's
/// protocol version. `result_json` must be one compact JSON value.
Response make_result_response(const ParsedRequest& req, std::string_view result_json);

/// Serialize an analysis result with its cache provenance.
Response make_analysis_response(const ParsedRequest& req, bool cached, bool deduped,
                                const Hash128& key, std::string_view payload);

class ServerSession {
 public:
  ServerSession(ResultCache& cache, runtime::ThreadPool& pool);

  /// Parse one raw line into `req`. Returns std::nullopt on success; on
  /// failure returns the ready-to-send error response (every parse
  /// failure is answerable — the session never gives up on a stream).
  static std::optional<Response> parse_line(const std::string& line, ParsedRequest* req);

  /// Answer a non-analysis request in place (ping, stats, cancel). For
  /// cancel this is the no-op "nothing pending" answer — the event loop
  /// intercepts cancel before calling this when it has in-flight state.
  Response respond_control(const ParsedRequest& req);

  /// Handle one request line start to finish; blocks until the result is
  /// ready. Never throws: every failure becomes a structured error
  /// response.
  Response handle_line(const std::string& line);

  /// Submit an analysis request (is_analysis_kind(req.kind) must hold) and
  /// invoke `done` with the final response exactly once — synchronously on
  /// a cache hit or inline execution, otherwise from a pool worker thread.
  void submit_async(const ParsedRequest& req, std::function<void(Response)> done);

  /// Read request lines from `in` until EOF, writing one response line
  /// each (blank lines are skipped, CRLF tolerated). Flushes after every
  /// response so a pipe client can interleave.
  void serve(std::istream& in, std::ostream& out);

  JobScheduler& scheduler() { return sched_; }

 private:
  JobScheduler sched_;
};

}  // namespace rfmix::svc
