// rfmixd request handling: newline-delimited JSON in, newline-delimited
// JSON out.
//
// One ServerSession wraps a JobScheduler over a ResultCache and a thread
// pool; handle_line() maps one request line to one response line, serve()
// loops a stream pair until EOF. The binary in rfmixd.cpp is a thin
// transport shell (stdin/stdout or a Unix socket) around this class, so
// the whole protocol is testable in-process. See docs/service.md for the
// request/response schema.
#pragma once

#include <iosfwd>
#include <string>

#include "core/mixer_config.hpp"
#include "svc/scheduler.hpp"

namespace rfmix::runtime {
class ThreadPool;
}

namespace rfmix::svc {

class JsonValue;

/// Parse a mixer-config JSON object (field name -> number, "mode" ->
/// "active"/"passive") onto `config`. Unknown fields and type mismatches
/// throw std::invalid_argument — a silently dropped field would make two
/// different requests collide on one cache key.
void apply_mixer_config(const JsonValue& obj, core::MixerConfig& config);

class ServerSession {
 public:
  ServerSession(ResultCache& cache, runtime::ThreadPool& pool);

  /// Handle one request line; returns the response line (no trailing
  /// newline). Never throws: every failure becomes an ok=false response.
  std::string handle_line(const std::string& line);

  /// Read request lines from `in` until EOF, writing one response line
  /// each (blank lines are skipped). Flushes after every response so a
  /// pipe client can interleave.
  void serve(std::istream& in, std::ostream& out);

  JobScheduler& scheduler() { return sched_; }

 private:
  JobScheduler sched_;
};

}  // namespace rfmix::svc
