#include "svc/router.hpp"

#ifndef _WIN32

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/json_writer.hpp"
#include "obs/obs.hpp"
#include "svc/fault.hpp"
#include "svc/json_parse.hpp"

namespace rfmix::svc {

namespace {

namespace json = obs::json;
using Clock = std::chrono::steady_clock;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

/// The analysis-success line make_analysis_response would build, from the
/// raw pieces a Ticket carries (no ParsedRequest at hand on the replay and
/// degrade paths).
Response analysis_response_line(int version, const std::string& id_json, bool cached,
                                const Hash128& key, std::string_view payload) {
  Response r;
  r.ok = true;
  r.line = response_head(version, id_json, /*ok=*/true);
  r.line += ",\"cached\":";
  r.line += cached ? "true" : "false";
  r.line += ",\"deduped\":false,\"key\":";
  r.line += json::quoted(key.hex());
  r.line += ",\"result\":";
  r.line += payload;
  r.line += "}";
  return r;
}

/// Flush `wbuf[wpos..]` to `fd` honoring the write-side fault sites.
/// Returns false on a fatal write error (EPIPE/ECONNRESET included — the
/// peer is gone, which is a per-connection cleanup, never process death).
bool flush_buffer(int fd, std::string& wbuf, std::size_t& wpos) {
  while (wpos < wbuf.size()) {
    fault::maybe_stall();
    const std::size_t want = fault::clamp_write(wbuf.size() - wpos);
    const ssize_t n = ::send(fd, wbuf.data() + wpos, want, MSG_NOSIGNAL);
    if (n > 0) {
      RFMIX_OBS_COUNT_N("svc.router.bytes_out", n);
      wpos += static_cast<std::size_t>(n);
      if (want < wbuf.size() - (wpos - static_cast<std::size_t>(n))) break;  // torn
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (wpos == wbuf.size()) {
    wbuf.clear();
    wpos = 0;
  } else if (wpos > (1u << 16)) {
    wbuf.erase(0, wpos);
    wpos = 0;
  }
  return true;
}

}  // namespace

RouterLoop::RouterLoop(Supervisor& sup, ResultCache& cache, Options opts)
    : sup_(sup), cache_(cache), opts_(opts) {
  links_.resize(sup_.workers().size());
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    wake_r_ = fds[0];
    wake_w_ = fds[1];
    set_nonblocking(wake_r_);
    set_nonblocking(wake_w_);
  }
}

RouterLoop::~RouterLoop() {
  for (auto& [gen, conn] : conns_) {
    (void)gen;
    if (conn.fd >= 0) ::close(conn.fd);
  }
  for (WorkerLink& l : links_)
    if (l.fd >= 0) ::close(l.fd);
  if (listener_ >= 0) ::close(listener_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

bool RouterLoop::listen_unix(const std::string& path, std::string* err) {
  if (wake_r_ < 0 || wake_w_ < 0) {
    if (err != nullptr) *err = "wake pipe unavailable";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "socket path too long";
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener_, opts_.backlog) != 0 || !set_nonblocking(listener_)) {
    if (err != nullptr) *err = std::string("bind/listen: ") + std::strerror(errno);
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  return true;
}

void RouterLoop::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  wake();
}

void RouterLoop::notify() { wake(); }

void RouterLoop::wake() {
  const char b = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_w_, &b, 1);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

int RouterLoop::pick_worker(const Hash128& key) const {
  // Rendezvous (highest-random-weight) hashing: every (key, worker) pair
  // gets a deterministic score, the live worker with the top score wins.
  // Key affinity while the live set is stable, minimal migration when it
  // changes, and no ring state to maintain.
  int best = -1;
  Hash128 best_score{};
  const auto& workers = sup_.workers();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (workers[i].state != Supervisor::WorkerState::kRunning) continue;
    if (links_[i].failed) continue;  // kill in flight; not routable
    const Hash128 score = hash128(key.hex(), 0x9e3779b9u + static_cast<std::uint64_t>(i));
    if (best < 0 || score.hi > best_score.hi ||
        (score.hi == best_score.hi && score.lo > best_score.lo)) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

double RouterLoop::retry_after_ms() const {
  const Clock::time_point ev = sup_.next_event();
  if (ev == Clock::time_point::max()) return opts_.unavailable_retry_floor_ms;
  const double ms =
      std::chrono::duration<double, std::milli>(ev - Clock::now()).count();
  return std::max(ms, opts_.unavailable_retry_floor_ms);
}

void RouterLoop::send_to_worker(int idx, const std::string& line) {
  WorkerLink& l = links_[static_cast<std::size_t>(idx)];
  l.wbuf += line;
  l.wbuf.push_back('\n');
  if (l.state == LinkState::kConnected) write_worker(l, idx);
}

void RouterLoop::finish_ticket(const Ticket& t, const Response& r) {
  const auto it = conns_.find(t.client_gen);
  if (it == conns_.end()) {
    RFMIX_OBS_COUNT("svc.router.dropped_responses");
    return;
  }
  if (it->second.inflight > 0) --it->second.inflight;
  enqueue_response(it->second, r);
}

bool RouterLoop::route_or_degrade(std::uint64_t ticket_id) {
  const auto it = tickets_.find(ticket_id);
  if (it == tickets_.end()) return false;
  Ticket& t = it->second;
  const int w = pick_worker(t.key);
  if (w >= 0) {
    t.worker = w;
    send_to_worker(w, t.forward_line);
    return true;
  }
  if (fleet_may_recover()) {
    // Every worker is momentarily down but at least one is coming back
    // (crash-loop respawn, kill in flight). Failing now would turn a
    // restart blip into client-visible errors; park instead and
    // re-dispatch when a link comes up. The deadline bounds the wait.
    t.worker = -1;
    parked_.emplace_back(ticket_id,
                         Clock::now() + ms_duration(opts_.park_timeout_ms));
    return true;
  }
  degrade_ticket(it);
  return false;
}

bool RouterLoop::fleet_may_recover() const {
  if (sup_.next_event() != Clock::time_point::max()) return true;
  const auto& workers = sup_.workers();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    // Link failed but the process is not yet reaped: the supervisor will
    // observe the death on its next poll and schedule a respawn.
    if (workers[i].state == Supervisor::WorkerState::kRunning &&
        links_[i].failed)
      return true;
  }
  return false;
}

void RouterLoop::degrade_ticket(std::map<std::uint64_t, Ticket>::iterator it) {
  // A key someone computed before still answers from the router's own
  // tier; everything else gets a bounded, structured refusal instead of
  // an unbounded wait.
  Ticket& t = it->second;
  Response r;
  if (std::optional<std::string> payload = cache_.get(t.key)) {
    ++stats_.cache_hits;
    RFMIX_OBS_COUNT("svc.router.cache_hits");
    r = analysis_response_line(t.version, t.id_json, /*cached=*/true, t.key, *payload);
  } else {
    ++stats_.unavailable;
    RFMIX_OBS_COUNT("svc.router.unavailable");
    r = make_unavailable_response(t.version, t.id_json,
                                  "no live worker for this request", retry_after_ms());
  }
  finish_ticket(t, r);
  tickets_.erase(it);
}

void RouterLoop::flush_parked() {
  if (parked_.empty()) return;
  std::deque<std::pair<std::uint64_t, Clock::time_point>> waiting;
  waiting.swap(parked_);
  for (const auto& [id, deadline] : waiting) {
    const auto it = tickets_.find(id);
    if (it == tickets_.end() || it->second.worker >= 0) continue;  // stale
    route_or_degrade(id);  // may re-park with a fresh deadline
  }
}

void RouterLoop::expire_parked() {
  if (parked_.empty()) return;
  const Clock::time_point now = Clock::now();
  std::deque<std::pair<std::uint64_t, Clock::time_point>> waiting;
  waiting.swap(parked_);
  for (const auto& [id, deadline] : waiting) {
    const auto it = tickets_.find(id);
    if (it == tickets_.end() || it->second.worker >= 0) continue;  // stale
    if (now >= deadline) {
      degrade_ticket(it);
      continue;
    }
    // A respawned worker is routable the moment it is kRunning — bytes
    // queue on the link and flush on connect — so dispatch eagerly
    // rather than waiting for the connect to complete.
    const int w = pick_worker(it->second.key);
    if (w >= 0) {
      it->second.worker = w;
      send_to_worker(w, it->second.forward_line);
      continue;
    }
    if (fleet_may_recover()) {
      parked_.emplace_back(id, deadline);  // keep the original give-up time
    } else {
      degrade_ticket(it);
    }
  }
}

void RouterLoop::reroute_worker(int idx) {
  std::vector<std::uint64_t> affected;
  for (const auto& [id, t] : tickets_)
    if (t.worker == idx) affected.push_back(id);
  for (const std::uint64_t id : affected) {
    const auto tit = tickets_.find(id);
    if (tit == tickets_.end()) continue;
    Ticket& t = tit->second;
    t.worker = -1;
    ++t.replays;
    if (t.replays > opts_.max_replays) {
      ++stats_.unavailable;
      RFMIX_OBS_COUNT("svc.router.unavailable");
      finish_ticket(t, make_unavailable_response(
                           t.version, t.id_json,
                           "request replayed too many times across worker failures",
                           retry_after_ms()));
      tickets_.erase(tit);
      continue;
    }
    ++stats_.replays;
    RFMIX_OBS_COUNT("svc.router.replays");
    route_or_degrade(id);
  }
}

// ---------------------------------------------------------------------------
// Worker link management
// ---------------------------------------------------------------------------

void RouterLoop::link_down(int idx, bool and_kill) {
  WorkerLink& l = links_[static_cast<std::size_t>(idx)];
  if (l.fd >= 0) {
    ::close(l.fd);
    ++stats_.worker_disconnects;
    RFMIX_OBS_COUNT("svc.router.worker_disconnects");
  }
  l = WorkerLink{};
  l.failed = true;
  if (and_kill) sup_.kill_worker(idx);
  reroute_worker(idx);
}

void RouterLoop::on_worker_spawned(int idx) {
  WorkerLink& l = links_[static_cast<std::size_t>(idx)];
  if (l.fd >= 0) ::close(l.fd);
  l = WorkerLink{};
  l.connect_deadline = Clock::now() + ms_duration(opts_.connect_timeout_ms);
}

void RouterLoop::try_connect(int idx) {
  WorkerLink& l = links_[static_cast<std::size_t>(idx)];
  const std::string& path = sup_.worker(idx).socket_path;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    l.fd = fd;
    l.state = LinkState::kConnected;
    l.hb_next = Clock::now() + ms_duration(opts_.heartbeat_interval_ms);
    flush_parked();  // a routable worker exists again
    write_worker(l, idx);
    return;
  }
  if (errno == EINPROGRESS) {
    l.fd = fd;
    l.state = LinkState::kConnecting;
    return;
  }
  // ENOENT / ECONNREFUSED: the worker has not bound its socket yet.
  // Retry on the next tick until the connect deadline, then give up on
  // this incarnation (kill; the supervisor respawns it).
  ::close(fd);
  if (Clock::now() >= l.connect_deadline) {
    ++stats_.heartbeat_failures;
    RFMIX_OBS_COUNT("svc.router.heartbeat_failures");
    link_down(idx, /*and_kill=*/true);
  }
}

void RouterLoop::maintain_workers() {
  for (const int idx : sup_.poll_children()) link_down(idx, /*and_kill=*/false);
  for (const int idx : sup_.spawn_due()) on_worker_spawned(idx);

  const Clock::time_point now = Clock::now();
  const auto& workers = sup_.workers();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    WorkerLink& l = links_[i];
    const int idx = static_cast<int>(i);
    if (workers[i].state != Supervisor::WorkerState::kRunning) continue;
    if (l.failed) continue;
    if (l.state == LinkState::kDisconnected) {
      try_connect(idx);
      continue;
    }
    if (l.state == LinkState::kConnecting && now >= l.connect_deadline) {
      ++stats_.heartbeat_failures;
      RFMIX_OBS_COUNT("svc.router.heartbeat_failures");
      link_down(idx, /*and_kill=*/true);
      continue;
    }
    if (l.state != LinkState::kConnected) continue;
    if (l.hb_outstanding && now >= l.hb_deadline) {
      // The worker accepted our connection but stopped answering pings:
      // hung, not dead. Make it dead; replay handles the rest.
      ++stats_.heartbeat_failures;
      RFMIX_OBS_COUNT("svc.router.heartbeat_failures");
      link_down(idx, /*and_kill=*/true);
      continue;
    }
    if (!l.hb_outstanding && now >= l.hb_next) {
      l.hb_outstanding = true;
      l.hb_deadline = now + ms_duration(opts_.heartbeat_timeout_ms);
      l.hb_next = now + ms_duration(opts_.heartbeat_interval_ms);
      send_to_worker(idx, "{\"v\":2,\"id\":\"hb\",\"kind\":\"ping\"}");
    }
  }
  expire_parked();
}

void RouterLoop::process_worker_line(int idx, const std::string& line) {
  WorkerLink& l = links_[static_cast<std::size_t>(idx)];
  static const std::string kHbPrefix = "{\"v\":2,\"id\":\"hb\",";
  if (line.compare(0, kHbPrefix.size(), kHbPrefix) == 0) {
    l.hb_outstanding = false;
    return;
  }
  // Everything else carries a numeric ticket id the router assigned:
  // {"v":2,"id":<ticket>,"ok":<bool><tail>
  static const std::string kHead = "{\"v\":2,\"id\":";
  static const std::string kOk = ",\"ok\":";
  std::size_t pos = kHead.size();
  std::uint64_t ticket = 0;
  bool any_digit = false;
  if (line.compare(0, kHead.size(), kHead) == 0) {
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      ticket = ticket * 10 + static_cast<std::uint64_t>(line[pos] - '0');
      ++pos;
      any_digit = true;
    }
  }
  if (!any_digit || line.compare(pos, kOk.size(), kOk) != 0) {
    // A worker speaking something other than our protocol is as broken as
    // a dead one.
    RFMIX_OBS_COUNT("svc.router.protocol_errors");
    link_down(idx, /*and_kill=*/true);
    return;
  }
  pos += kOk.size();
  bool ok = false;
  if (line.compare(pos, 4, "true") == 0) {
    ok = true;
    pos += 4;
  } else if (line.compare(pos, 5, "false") == 0) {
    pos += 5;
  } else {
    RFMIX_OBS_COUNT("svc.router.protocol_errors");
    link_down(idx, /*and_kill=*/true);
    return;
  }
  const std::string tail = line.substr(pos);

  const auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    // Cancelled client-side, or a replay raced the original worker's
    // answer; either way the result is already spoken for.
    RFMIX_OBS_COUNT("svc.router.dropped_responses");
    return;
  }
  const Ticket t = std::move(it->second);
  tickets_.erase(it);

  if (ok) maybe_cache_fill(t.key, tail);

  Response r;
  r.ok = ok;
  if (!ok && t.version == 1) {
    // v1 errors are a plain string, not the v2 object the worker sent.
    // The message round-trips; make_error_response ignores the code for
    // v1 — bytes match a direct v1 session.
    r = make_error_response(1, t.id_json, ErrorCode::kExecFailed,
                            error_message_of(tail));
  } else {
    r.line = response_head(t.version, t.id_json, ok) + tail;
  }
  finish_ticket(t, r);
}

std::string RouterLoop::error_message_of(const std::string& tail) {
  // tail = ,"error":{"code":"...","message":<quoted>[,...]}}  — lift the
  // message text back out through the real JSON parser (it may contain
  // escapes); fall back to the raw tail on any surprise.
  try {
    const JsonValue doc = json_parse("{\"_\":0" + tail);
    if (const JsonValue* err = doc.find("error"))
      if (const JsonValue* msg = err->find("message")) return msg->as_string();
  } catch (const std::exception&) {
  }
  return "worker error";
}

void RouterLoop::maybe_cache_fill(const Hash128& key, const std::string& tail) {
  // Successful analysis tails have the fixed shape
  //   ,"cached":B,"deduped":B,"key":"<32 hex>","result":<payload>}
  // parsed positionally (the payload is client-influenced bytes; searching
  // it for markers would be spoofable). Control results (pong, stats)
  // simply fail the match and are not cached.
  std::size_t pos = 0;
  const auto eat = [&](std::string_view lit) {
    if (tail.compare(pos, lit.size(), lit) != 0) return false;
    pos += lit.size();
    return true;
  };
  if (!eat(",\"cached\":")) return;
  if (!eat("true") && !eat("false")) return;
  if (!eat(",\"deduped\":")) return;
  if (!eat("true") && !eat("false")) return;
  if (!eat(",\"key\":\"")) return;
  if (pos + 32 > tail.size()) return;
  const std::string_view hex(tail.data() + pos, 32);
  pos += 32;
  if (!eat("\",\"result\":")) return;
  if (tail.size() <= pos || tail.back() != '}') return;
  if (hex != key.hex()) return;  // defensive: worker disagreed on the key
  cache_.put(key, tail.substr(pos, tail.size() - pos - 1));
}

void RouterLoop::worker_io(int idx, short revents) {
  WorkerLink& l = links_[static_cast<std::size_t>(idx)];
  if (l.fd < 0) return;
  if ((revents & (POLLERR | POLLNVAL)) != 0) {
    link_down(idx, /*and_kill=*/false);
    return;
  }
  if (l.state == LinkState::kConnecting && (revents & (POLLOUT | POLLHUP)) != 0) {
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(l.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(l.fd);
      l.fd = -1;
      l.state = LinkState::kDisconnected;  // retried until connect_deadline
      return;
    }
    l.state = LinkState::kConnected;
    l.hb_next = Clock::now() + ms_duration(opts_.heartbeat_interval_ms);
    flush_parked();  // a routable worker exists again
  }
  if (l.state != LinkState::kConnected) return;
  if ((revents & POLLOUT) != 0) write_worker(l, idx);
  if (l.fd < 0) return;  // write failure tore the link down
  if ((revents & (POLLIN | POLLHUP)) != 0) {
    char buf[65536];
    const ssize_t n = ::recv(l.fd, buf, sizeof buf, 0);
    if (n > 0) {
      RFMIX_OBS_COUNT_N("svc.router.bytes_in", n);
      l.rbuf.append(buf, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = l.rbuf.find('\n', l.rpos)) != std::string::npos) {
        const std::string line = l.rbuf.substr(l.rpos, nl - l.rpos);
        l.rpos = nl + 1;
        if (!line.empty()) process_worker_line(idx, line);
        if (links_[static_cast<std::size_t>(idx)].fd < 0) return;  // went down
      }
      if (l.rpos == l.rbuf.size()) {
        l.rbuf.clear();
        l.rpos = 0;
      } else if (l.rpos > (1u << 16)) {
        l.rbuf.erase(0, l.rpos);
        l.rpos = 0;
      }
      return;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      // EOF: the worker died (crash, kill -9, crash_after). Replay.
      link_down(idx, /*and_kill=*/false);
    }
  }
}

void RouterLoop::write_worker(WorkerLink& l, int idx) {
  if (l.fd < 0 || l.state != LinkState::kConnected) return;
  if (!flush_buffer(l.fd, l.wbuf, l.wpos)) link_down(idx, /*and_kill=*/false);
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

void RouterLoop::accept_clients() {
  while (true) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.gen = next_gen_++;
    conns_.emplace(conn.gen, std::move(conn));
    RFMIX_OBS_COUNT("svc.router.connections");
  }
}

void RouterLoop::read_from(Conn& conn) {
  char buf[65536];
  const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
  if (n > 0) {
    RFMIX_OBS_COUNT_N("svc.router.bytes_in", n);
    conn.rbuf.append(buf, static_cast<std::size_t>(n));
    return;
  }
  if (n == 0) {
    conn.read_closed = true;
    return;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
  conn.dead = true;
}

void RouterLoop::write_client(Conn& conn) {
  if (!flush_buffer(conn.fd, conn.wbuf, conn.wpos)) {
    conn.dead = true;  // peer went away mid-response: reap, don't die
    return;
  }
  if (conn.drop_after_flush && conn.wpos == conn.wbuf.size()) conn.dead = true;
}

void RouterLoop::enqueue_response(Conn& conn, const Response& r) {
  fault::on_response_write();
  conn.wbuf += r.line;
  conn.wbuf.push_back('\n');
  if (fault::should_drop_conn()) conn.drop_after_flush = true;
  RFMIX_OBS_COUNT("svc.router.responses");
}

void RouterLoop::dispatch_buffered(Conn& conn) {
  if (conn.dead || conn.discard_input) return;
  while (true) {
    const bool at_capacity = conn.inflight >= opts_.max_inflight ||
                             conn.wbuf.size() - conn.wpos >= opts_.max_output_bytes;
    if (at_capacity) {
      if (!conn.paused) RFMIX_OBS_COUNT("svc.router.backpressure_pauses");
      conn.paused = true;
      break;
    }
    conn.paused = false;
    const std::size_t nl = conn.rbuf.find('\n', conn.rpos);
    if (nl == std::string::npos) {
      if (conn.rbuf.size() - conn.rpos > opts_.max_line_bytes) {
        enqueue_response(conn, make_error_response(2, "null", ErrorCode::kParseError,
                                                   "request line exceeds size limit"));
        RFMIX_OBS_COUNT("svc.router.protocol_errors");
        conn.read_closed = true;
        conn.rpos = conn.rbuf.size();
      } else if (conn.read_closed && conn.rpos < conn.rbuf.size()) {
        std::string line = conn.rbuf.substr(conn.rpos);
        conn.rpos = conn.rbuf.size();
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.find_first_not_of(" \t") != std::string::npos)
          process_line(conn, line);
        continue;
      }
      break;
    }
    std::string line = conn.rbuf.substr(conn.rpos, nl - conn.rpos);
    conn.rpos = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    process_line(conn, line);
  }
  if (conn.rpos == conn.rbuf.size()) {
    conn.rbuf.clear();
    conn.rpos = 0;
  } else if (conn.rpos > (1u << 16)) {
    conn.rbuf.erase(0, conn.rpos);
    conn.rpos = 0;
  }
}

void RouterLoop::process_line(Conn& conn, const std::string& line) {
  ParsedRequest req;
  if (std::optional<Response> err = ServerSession::parse_line(line, &req)) {
    RFMIX_OBS_COUNT("svc.router.protocol_errors");
    enqueue_response(conn, *err);
    return;
  }
  if (req.kind == "cancel") {
    do_cancel(conn, req);
    return;
  }
  if (req.kind == "ping") {
    enqueue_response(conn, make_result_response(req, "{\"pong\":true}"));
    return;
  }
  if (req.kind == "stats") {
    enqueue_response(conn, make_result_response(req, router_stats_json()));
    return;
  }

  Hash128 key;
  try {
    key = request_key(req.request);
  } catch (const std::exception& e) {
    enqueue_response(conn, make_error_response(req.version, req.id_json,
                                               ErrorCode::kExecFailed, e.what()));
    return;
  } catch (...) {
    enqueue_response(conn, make_error_response(req.version, req.id_json,
                                               ErrorCode::kExecFailed,
                                               "unknown keying failure"));
    return;
  }
  ++stats_.requests;
  RFMIX_OBS_COUNT("svc.router.requests");

  if (std::optional<std::string> payload = cache_.get(key)) {
    ++stats_.cache_hits;
    RFMIX_OBS_COUNT("svc.router.cache_hits");
    enqueue_response(conn, analysis_response_line(req.version, req.id_json,
                                                  /*cached=*/true, key, *payload));
    return;
  }

  const std::uint64_t ticket_id = next_ticket_++;
  Ticket t;
  t.client_gen = conn.gen;
  t.id_json = req.id_json;
  t.version = req.version;
  t.key = key;
  t.forward_line = serialize_v2_request(req, std::to_string(ticket_id));
  tickets_.emplace(ticket_id, std::move(t));
  ++conn.inflight;
  route_or_degrade(ticket_id);
}

void RouterLoop::do_cancel(Conn& conn, const ParsedRequest& req) {
  bool found = false;
  for (auto it = tickets_.begin(); it != tickets_.end();) {
    Ticket& t = it->second;
    if (t.client_gen == conn.gen && t.id_json == req.cancel_target) {
      enqueue_response(conn, make_error_response(t.version, t.id_json,
                                                 ErrorCode::kCancelled,
                                                 "request cancelled by client"));
      if (conn.inflight > 0) --conn.inflight;
      it = tickets_.erase(it);
      found = true;
      // The worker still answers the ticket eventually; the unknown-ticket
      // path drops that result on the floor.
    } else {
      ++it;
    }
  }
  enqueue_response(conn, make_result_response(
                             req, std::string("{\"cancelled\":") +
                                      (found ? "true" : "false") +
                                      ",\"target\":" + req.cancel_target + "}"));
}

std::string RouterLoop::router_stats_json() const {
  const ResultCache::Stats cs = cache_.stats();
  std::uint64_t restarts = 0;
  for (const Supervisor::Worker& w : sup_.workers())
    restarts += w.spawn_count > 0 ? w.spawn_count - 1 : 0;
  std::string out = "{\"router\":{";
  out += "\"workers\":" + json::number(std::uint64_t(sup_.workers().size()));
  out += ",\"alive\":" + json::number(std::uint64_t(sup_.alive_count()));
  out += ",\"inflight\":" + json::number(std::uint64_t(tickets_.size()));
  out += ",\"requests\":" + json::number(stats_.requests);
  out += ",\"cache_hits\":" + json::number(stats_.cache_hits);
  out += ",\"replays\":" + json::number(stats_.replays);
  out += ",\"unavailable\":" + json::number(stats_.unavailable);
  out += ",\"worker_restarts\":" + json::number(restarts);
  out += ",\"heartbeat_failures\":" + json::number(stats_.heartbeat_failures);
  out += "},\"cache\":{";
  out += "\"hits\":" + json::number(cs.hits);
  out += ",\"misses\":" + json::number(cs.misses);
  out += ",\"entries\":" + json::number(std::uint64_t(cache_.size()));
  out += "}}";
  return out;
}

void RouterLoop::reap_connections() {
  const bool past_drain = draining_ && Clock::now() >= drain_deadline_;
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = it->second;
    const bool no_more_input =
        conn.discard_input || (conn.read_closed && conn.rpos == conn.rbuf.size());
    const bool finished =
        no_more_input && conn.inflight == 0 && conn.wpos == conn.wbuf.size();
    if (conn.dead || finished || past_drain) {
      if (conn.inflight > 0) {
        // Dying with tickets outstanding: orphan them now so workers'
        // eventual answers are dropped instead of replayed pointlessly.
        for (auto tit = tickets_.begin(); tit != tickets_.end();) {
          if (tit->second.client_gen == conn.gen) {
            tit = tickets_.erase(tit);
          } else {
            ++tit;
          }
        }
      }
      ::close(conn.fd);
      RFMIX_OBS_COUNT("svc.router.disconnects");
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// The loop
// ---------------------------------------------------------------------------

int RouterLoop::poll_timeout_ms() const {
  Clock::time_point nearest = Clock::time_point::max();
  if (draining_) nearest = std::min(nearest, drain_deadline_);
  nearest = std::min(nearest, sup_.next_event());
  if (!parked_.empty()) nearest = std::min(nearest, parked_.front().second);
  const Clock::time_point now = Clock::now();
  const auto& workers = sup_.workers();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const WorkerLink& l = links_[i];
    if (workers[i].state == Supervisor::WorkerState::kRunning && l.failed) {
      // Dead or killed worker awaiting waitpid. The supervisor cannot
      // timestamp the reap, and without the binary's SIGCHLD hook
      // nothing else wakes the loop — poll soon so the respawn (and any
      // parked tickets) are not stuck behind a long idle sleep.
      nearest = std::min(nearest, now + ms_duration(10.0));
      continue;
    }
    if (workers[i].state != Supervisor::WorkerState::kRunning || l.failed) continue;
    if (l.state == LinkState::kDisconnected) {
      nearest = std::min(nearest, now + ms_duration(10.0));  // connect retry
    } else if (l.state == LinkState::kConnecting) {
      nearest = std::min(nearest, l.connect_deadline);
    } else {
      nearest = std::min(nearest, l.hb_outstanding ? l.hb_deadline : l.hb_next);
    }
  }
  if (nearest == Clock::time_point::max()) return -1;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(nearest - now).count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<long long>(ms + 1, 60000));
}

void RouterLoop::run() {
  const Clock::time_point start = Clock::now();
  for (WorkerLink& l : links_)
    l.connect_deadline = start + ms_duration(opts_.connect_timeout_ms);

  std::vector<pollfd> fds;
  // Parallel tags: the two sentinels, [0, links) worker index, else the
  // client generation offset by kGenTagBase.
  constexpr std::uint64_t kGenTagBase = 1ull << 32;
  std::vector<std::uint64_t> tags;

  while (true) {
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      drain_deadline_ = Clock::now() + ms_duration(opts_.drain_timeout_ms);
      if (listener_ >= 0) {
        ::close(listener_);
        listener_ = -1;
      }
      for (auto& [gen, conn] : conns_) {
        (void)gen;
        conn.discard_input = true;
      }
    }

    maintain_workers();
    for (auto& [gen, conn] : conns_) {
      (void)gen;
      dispatch_buffered(conn);
    }
    reap_connections();
    if (draining_ && conns_.empty()) break;

    fds.clear();
    tags.clear();
    fds.push_back(pollfd{wake_r_, POLLIN, 0});
    tags.push_back(kGenTagBase - 1);
    if (listener_ >= 0) {
      fds.push_back(pollfd{listener_, POLLIN, 0});
      tags.push_back(kGenTagBase - 2);
    }
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const WorkerLink& l = links_[i];
      if (l.fd < 0) continue;
      short events = 0;
      if (l.state == LinkState::kConnecting) events = POLLOUT;
      if (l.state == LinkState::kConnected) {
        events = POLLIN;
        if (l.wpos < l.wbuf.size()) events |= POLLOUT;
      }
      if (events == 0) continue;
      fds.push_back(pollfd{l.fd, events, 0});
      tags.push_back(i);
    }
    for (auto& [gen, conn] : conns_) {
      short events = 0;
      if (!conn.read_closed && !conn.discard_input && !conn.paused) events |= POLLIN;
      if (conn.wpos < conn.wbuf.size()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{conn.fd, events, 0});
      tags.push_back(kGenTagBase + gen);
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const std::uint64_t tag = tags[i];
      const short re = fds[i].revents;
      if (tag == kGenTagBase - 1) {
        if ((re & POLLIN) != 0) {
          char buf[256];
          while (::read(wake_r_, buf, sizeof buf) > 0) {
          }
        }
        continue;
      }
      if (tag == kGenTagBase - 2) {
        if ((re & POLLIN) != 0 && listener_ >= 0) accept_clients();
        continue;
      }
      if (re == 0) continue;
      if (tag < kGenTagBase) {
        worker_io(static_cast<int>(tag), re);
        continue;
      }
      const auto it = conns_.find(tag - kGenTagBase);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        conn.dead = true;
        continue;
      }
      if ((re & POLLOUT) != 0) write_client(conn);
      if ((re & (POLLIN | POLLHUP)) != 0 && !conn.read_closed && !conn.dead)
        read_from(conn);
    }
  }
}

}  // namespace rfmix::svc

#endif  // _WIN32
