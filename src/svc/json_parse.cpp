#include "svc/json_parse.hpp"

#include <cerrno>
#include <cstdlib>
#include <utility>

namespace rfmix::svc {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json value is not a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json value is not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(pos_, what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::object(std::move(members));
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::array(std::move(items));
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = peek();
      unsigned d = 0;
      if (c >= '0' && c <= '9') {
        d = unsigned(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = unsigned(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = unsigned(c - 'A') + 10;
      } else {
        fail("invalid hex digit in \\u escape");
      }
      code = (code << 4) | d;
      ++pos_;
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(char(cp));
    } else if (cp < 0x800) {
      out.push_back(char(0xC0 | (cp >> 6)));
      out.push_back(char(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(char(0xE0 | (cp >> 12)));
      out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(char(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(char(0xF0 | (cp >> 18)));
      out.push_back(char(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(char(0x80 | (cp & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("truncated escape");
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (eof() || peek() != '\\') fail("unpaired surrogate");
            ++pos_;
            if (eof() || peek() != 'u') fail("unpaired surrogate");
            ++pos_;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("digit required after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("digit required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return JsonValue::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace rfmix::svc
