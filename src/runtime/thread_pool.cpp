#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/obs.hpp"

namespace rfmix::runtime {

namespace {

// Worker identity for the nested-submission fast path.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker_id = -1;

// Innermost ScopedPool override; guarded by being set only from the thread
// that owns the ScopedPool and read before any work is fanned out.
std::atomic<ThreadPool*> g_override{nullptr};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(threads, 1) - 1;
  queues_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) workers_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (queues_.empty()) {  // serial fallback: no workers to hand off to
    RFMIX_OBS_COUNT("runtime.pool.tasks_inline");
    job();
    return;
  }
  std::size_t target;
  if (tl_pool == this && tl_worker_id >= 0) {
    target = static_cast<std::size_t>(tl_worker_id);
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mu);
    queues_[target]->jobs.push_back(std::move(job));
  }
  {
    // Publish under sleep_mu_ so a worker between its predicate check and
    // the wait cannot miss the notification.
    std::lock_guard<std::mutex> lk(sleep_mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_run_one(int id) {
  std::function<void()> job;
  {
    WorkerQueue& own = *queues_[static_cast<std::size_t>(id)];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.jobs.empty()) {
      job = std::move(own.jobs.back());
      own.jobs.pop_back();
    }
  }
  if (!job) {
    const std::size_t n = queues_.size();
    for (std::size_t off = 1; off < n && !job; ++off) {
      WorkerQueue& victim = *queues_[(static_cast<std::size_t>(id) + off) % n];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.jobs.empty()) {
        job = std::move(victim.jobs.front());
        victim.jobs.pop_front();
      }
    }
    if (job) RFMIX_OBS_COUNT("runtime.pool.tasks_stolen");
  }
  if (!job) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  RFMIX_OBS_COUNT("runtime.pool.tasks_executed");
  job();
  return true;
}

void ThreadPool::worker_main(int id) {
  tl_pool = this;
  tl_worker_id = id;
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_run_one(id)) continue;
    std::unique_lock<std::mutex> lk(sleep_mu_);
    sleep_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
  }
  // Drain whatever was queued before shutdown so no job is dropped.
  while (try_run_one(id)) {
  }
}

bool ThreadPool::on_worker_thread() const { return tl_pool == this; }

bool ThreadPool::help_one() {
  if (queues_.empty()) return false;
  // A worker starts from its own deque (LIFO); an outside thread scans from
  // queue 0 and effectively steals.
  const int id = (tl_pool == this && tl_worker_id >= 0) ? tl_worker_id : 0;
  return try_run_one(id);
}

void ThreadPool::assist_until(const std::function<bool()>& done) {
  using namespace std::chrono_literals;
  if (queues_.empty()) {
    // Serial fallback: jobs ran inline at submit, so `done` is normally
    // already true; yield-wait covers conditions completed off-pool.
    while (!done()) std::this_thread::sleep_for(50us);
    return;
  }
  const int id = (tl_pool == this && tl_worker_id >= 0) ? tl_worker_id : 0;
  while (!done()) {
    if (try_run_one(id)) continue;
    std::unique_lock<std::mutex> lk(sleep_mu_);
    if (done()) return;
    // Park on the same signal the workers use; a submit wakes us to help,
    // and the bounded wait re-checks `done` for completions signalled
    // through other channels (futures, completion queues).
    sleep_cv_.wait_for(lk, 200us, [this] {
      return pending_.load(std::memory_order_relaxed) > 0 ||
             stop_.load(std::memory_order_acquire);
    });
  }
}

int ThreadPool::configured_threads() {
  if (const char* env = std::getenv("RFMIX_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return static_cast<int>(std::min<long>(v, 512));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_threads());
  return pool;
}

ThreadPool& ThreadPool::current() {
  if (ThreadPool* p = g_override.load(std::memory_order_acquire)) return *p;
  return global();
}

ScopedPool::ScopedPool(int threads)
    : pool_(threads), saved_(g_override.load(std::memory_order_acquire)) {
  g_override.store(&pool_, std::memory_order_release);
}

ScopedPool::~ScopedPool() { g_override.store(saved_, std::memory_order_release); }

}  // namespace rfmix::runtime
