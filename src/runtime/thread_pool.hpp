// Work-stealing thread pool shared by every parallel analysis in the repo.
//
// One pool, sized once from RFMIX_THREADS (or hardware concurrency), runs
// the Monte-Carlo trials, DC/AC/noise sweep points and LPTV solves that are
// embarrassingly parallel across the benches. A pool of `threads` provides
// `threads` lanes of concurrency: `threads - 1` workers plus the calling
// thread, which always participates in parallel_for — so RFMIX_THREADS=1
// spawns no threads at all and every loop degrades to its plain serial
// form.
//
// Scheduling never influences results: the job APIs in parallel_for.hpp
// write each index's output to a fixed slot, and randomized analyses derive
// per-trial streams with mathx::Rng::fork. See docs/runtime.md for the
// determinism contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rfmix::runtime {

class ThreadPool {
 public:
  /// `threads` is the total concurrency (callers + workers); the pool
  /// spawns `threads - 1` worker threads. Values below 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of spawned worker threads (0 in serial fallback).
  int worker_count() const { return static_cast<int>(workers_.size()); }
  /// Total concurrency: workers plus the submitting thread.
  int concurrency() const { return worker_count() + 1; }

  /// Enqueue a job. From a worker thread the job lands on that worker's own
  /// deque (LIFO pop keeps nested submissions live); from outside, deques
  /// are fed round-robin and idle workers steal FIFO from each other. With
  /// no workers the job runs inline before submit returns.
  void submit(std::function<void()> job);

  /// The process-wide pool, sized from RFMIX_THREADS or, when unset,
  /// std::thread::hardware_concurrency(). Built on first use.
  static ThreadPool& global();

  /// The pool parallel_for uses by default: the innermost ScopedPool
  /// override if one is active, else global().
  static ThreadPool& current();

  /// Concurrency global() would be built with (env override applied).
  static int configured_threads();

  /// True when called from one of this pool's worker threads.
  bool on_worker_thread() const;

  /// Pop-or-steal one queued job and run it on the calling thread; false
  /// when every deque is empty (or in the serial fallback, which has no
  /// queues). Lets a thread that must block on a future lend itself to the
  /// pool instead — the scheduler in src/svc awaits this way so a worker
  /// waiting on a deduplicated job cannot deadlock the pool.
  bool help_one();

  /// Run queued jobs on the calling thread until `done()` returns true.
  /// While the queues are empty the caller parks on the pool's wake signal
  /// (bounded waits, so an externally-completed `done` is noticed within
  /// ~200us) instead of spinning. This is how blocking waiters — the
  /// svc JobScheduler's await, graceful-shutdown drains — wait without
  /// starving the pool of a lane.
  void assist_until(const std::function<bool()>& done);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> jobs;
  };

  friend class ScopedPool;

  void worker_main(int id);
  /// Pop (own deque, back) or steal (other deques, front) and run one job.
  bool try_run_one(int id);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<int> pending_{0};
  std::atomic<bool> stop_{false};
  std::atomic<unsigned> next_queue_{0};
};

/// RAII override of ThreadPool::current() — lets tests and tools pin the
/// concurrency of everything downstream without touching the environment:
///
///   runtime::ScopedPool serial(1);   // all parallel_for calls now inline
class ScopedPool {
 public:
  explicit ScopedPool(int threads);
  ~ScopedPool();

  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
  ThreadPool* saved_;
};

}  // namespace rfmix::runtime
