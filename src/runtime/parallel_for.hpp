// Deterministic data-parallel loops on top of the work-stealing pool.
//
// parallel_for(begin, end, body) runs body(i) for every index exactly once,
// with the calling thread participating alongside the pool workers. Because
// each index writes only to its own output slot, the result of a
// parallel_for is a pure function of the per-index computation — identical
// for any thread count, grain size or schedule. This is the property the
// determinism suite (tests/runtime/test_determinism.cpp) pins down.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace rfmix::runtime {

struct ParallelOptions {
  /// Consecutive indices handed to one task. Larger grains amortize
  /// scheduling for cheap bodies; the grain never affects results.
  std::size_t grain = 1;
  /// Pool to run on; nullptr means ThreadPool::current().
  ThreadPool* pool = nullptr;
};

/// Run body(i) for i in [begin, end); blocks until every index completed.
/// Safe to call from inside a pool worker (the caller drains its own
/// chunks, so nesting cannot deadlock) and equivalent to a plain serial
/// loop when the pool has no workers. If any body throws, the loop drains
/// and the first captured exception is rethrown here.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ParallelOptions& opts = {});

/// Ordered map: out[i] = fn(i). The output type must be default- and
/// move-constructible; slots are written in place, so the result is
/// bit-identical to the serial loop at any thread count.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, const ParallelOptions& opts = {})
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = fn(i); }, opts);
  return out;
}

}  // namespace rfmix::runtime
