#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "obs/obs.hpp"

namespace rfmix::runtime {

namespace {

// Shared between the caller and its helper jobs; kept alive by shared_ptr
// so helpers that start after the loop already drained can still exit
// cleanly through the claim counter.
struct ForState {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t n_chunks = 0;
  const std::function<void(std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;  // guarded by mu
  std::exception_ptr error;
};

void drain(const std::shared_ptr<ForState>& st) {
  for (;;) {
    const std::size_t c = st->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= st->n_chunks) return;
    if (!st->failed.load(std::memory_order_acquire)) {
      const std::size_t lo = st->begin + c * st->grain;
      const std::size_t hi = std::min(st->end, lo + st->grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) (*st->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(st->mu);
        if (!st->error) st->error = std::current_exception();
        st->failed.store(true, std::memory_order_release);
      }
    }
    std::lock_guard<std::mutex> lk(st->mu);
    if (++st->done == st->n_chunks) st->cv.notify_all();
  }
}

}  // namespace

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  const ParallelOptions& opts) {
  if (end <= begin) return;
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : ThreadPool::current();
  const std::size_t grain = std::max<std::size_t>(opts.grain, 1);
  const std::size_t n_chunks = (end - begin + grain - 1) / grain;

  RFMIX_OBS_COUNT("runtime.parallel_for.calls");
  RFMIX_OBS_COUNT_N("runtime.parallel_for.chunks", n_chunks);

  if (pool.worker_count() == 0 || n_chunks == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto st = std::make_shared<ForState>();
  st->begin = begin;
  st->end = end;
  st->grain = grain;
  st->n_chunks = n_chunks;
  st->body = &body;

  // One helper per worker (capped by the chunks the caller won't take);
  // helpers and caller race on the claim counter, so an oversubscribed or
  // busy pool just means the caller does more of the work itself.
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(pool.worker_count()), n_chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) pool.submit([st] { drain(st); });

  drain(st);
  {
    std::unique_lock<std::mutex> lk(st->mu);
    st->cv.wait(lk, [&] { return st->done == st->n_chunks; });
  }
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace rfmix::runtime
