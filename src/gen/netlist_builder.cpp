#include "gen/netlist_builder.hpp"

#include <stdexcept>

#include "obs/json_writer.hpp"

namespace rfmix::gen {

namespace {

/// The parser types a card by the first letter of the last '.'-separated
/// name segment; enforce that here so a template can never emit a card the
/// parser will read as a different device.
void check_leaf_type(char type, std::string_view name) {
  if (name.empty()) throw std::invalid_argument("device name must not be empty");
  const std::size_t dot = name.rfind('.');
  const std::size_t leaf = (dot == std::string_view::npos) ? 0 : dot + 1;
  if (leaf >= name.size())
    throw std::invalid_argument("device name '" + std::string(name) +
                                "' has an empty leaf segment");
  if (name[leaf] != type)
    throw std::invalid_argument("device name '" + std::string(name) +
                                "' does not start with '" + std::string(1, type) +
                                "' (parser types cards by leaf-segment initial)");
}

}  // namespace

std::string value_token(double v) { return obs::json::number(v); }

NetlistBuilder& NetlistBuilder::comment(std::string_view text) {
  buf_ += "* ";
  buf_ += text;
  buf_ += '\n';
  return *this;
}

NetlistBuilder& NetlistBuilder::raw(std::string_view line) {
  buf_ += line;
  buf_ += '\n';
  return *this;
}

NetlistBuilder& NetlistBuilder::device_card(
    char type, std::string_view name,
    std::initializer_list<std::string_view> nodes, std::string_view tail) {
  check_leaf_type(type, name);
  buf_ += name;
  for (const std::string_view n : nodes) {
    buf_ += ' ';
    buf_ += n;
  }
  if (!tail.empty()) {
    buf_ += ' ';
    buf_ += tail;
  }
  buf_ += '\n';
  ++cards_;
  return *this;
}

NetlistBuilder& NetlistBuilder::resistor(std::string_view name, std::string_view a,
                                         std::string_view b, double ohms) {
  return device_card('r', name, {a, b}, value_token(ohms));
}

NetlistBuilder& NetlistBuilder::capacitor(std::string_view name, std::string_view a,
                                          std::string_view b, double farads) {
  return device_card('c', name, {a, b}, value_token(farads));
}

NetlistBuilder& NetlistBuilder::inductor(std::string_view name, std::string_view a,
                                         std::string_view b, double henries) {
  return device_card('l', name, {a, b}, value_token(henries));
}

NetlistBuilder& NetlistBuilder::vsource_dc(std::string_view name, std::string_view p,
                                           std::string_view m, double volts) {
  return device_card('v', name, {p, m}, "dc " + value_token(volts));
}

NetlistBuilder& NetlistBuilder::isource_dc(std::string_view name, std::string_view p,
                                           std::string_view m, double amps) {
  return device_card('i', name, {p, m}, "dc " + value_token(amps));
}

NetlistBuilder& NetlistBuilder::mosfet(std::string_view name, std::string_view d,
                                       std::string_view g, std::string_view s,
                                       std::string_view b, std::string_view model,
                                       double w, double l) {
  std::string tail;
  tail += model;
  tail += " w=";
  tail += value_token(w);
  tail += " l=";
  tail += value_token(l);
  return device_card('m', name, {d, g, s, b}, tail);
}

NetlistBuilder& NetlistBuilder::instance(std::string_view name,
                                         const std::vector<std::string>& nodes,
                                         std::string_view subckt) {
  check_leaf_type('x', name);
  buf_ += name;
  for (const std::string& n : nodes) {
    buf_ += ' ';
    buf_ += n;
  }
  buf_ += ' ';
  buf_ += subckt;
  buf_ += '\n';
  ++cards_;
  return *this;
}

NetlistBuilder& NetlistBuilder::begin_subckt(std::string_view name,
                                             const std::vector<std::string>& ports) {
  if (in_subckt_)
    throw std::invalid_argument("nested .subckt definitions are not supported");
  if (ports.empty())
    throw std::invalid_argument(".subckt needs at least one port");
  in_subckt_ = true;
  buf_ += ".subckt ";
  buf_ += name;
  for (const std::string& p : ports) {
    buf_ += ' ';
    buf_ += p;
  }
  buf_ += '\n';
  return *this;
}

NetlistBuilder& NetlistBuilder::end_subckt() {
  if (!in_subckt_) throw std::invalid_argument(".ends without .subckt");
  in_subckt_ = false;
  buf_ += ".ends\n";
  return *this;
}

}  // namespace rfmix::gen
