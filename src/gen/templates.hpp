// Parameterized circuit templates: GenSpec -> netlist text.
//
// A GenSpec names a template and its parameters; render_netlist() turns it
// into a deck in either of two equivalent renderings:
//
//  * hierarchical — .subckt definitions + one instance card per element,
//    the form the parser's structural-sharing elaborator compiles once and
//    replays per instance (linear in emitted devices, not deck text);
//  * flat — every elaborated device written out with its hierarchical name
//    ("xe0.rsw0") and hierarchical node names.
//
// The two renderings elaborate to the *same* spice::Circuit: identical
// device names, node names, and declaration order, hence identical
// canonical cache keys and bit-identical solves. Tests pin this property;
// the svc `gen` op depends on it (cache keys are derived from the GenSpec,
// never from the expanded deck).
//
// Per-element mismatch is drawn from mathx::Rng::fork(element) off the
// spec's seed — deterministic, order-independent, and shared between the
// netlist rendering and element_npath_spec() so a generated array and its
// N-path per-element analysis describe the same hardware.
//
// Templates:
//  * rx_array    — M-element mixer-first receiver array (per 2212.03162):
//                  source + R_s per element feeding `paths` switched
//                  RC-ladder baseband branches. Linear; scales to 100k+
//                  devices.
//  * mixer_slice — M transistor-level single-balanced mixer slices
//                  (switching pair at core::quad_geometry sizing): small,
//                  nonlinear, exercises Newton at array scale.
//  * ladder      — binary tree of nested .subckt sections, 4*2^depth - 1
//                  devices from a deck of ~4 lines per level: the
//                  structural-sharing stress case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "npath/zin.hpp"

namespace rfmix::gen {

struct GenSpec {
  std::string template_id = "rx_array";  // rx_array | mixer_slice | ladder
  int elements = 4;       // array elements (rx_array, mixer_slice)
  int paths = 4;          // switched baseband paths per element (rx_array)
  int sections = 6;       // RC-ladder sections per path (rx_array)
  int depth = 4;          // nesting depth (ladder)
  std::uint64_t seed = 1; // mismatch stream seed
  double mismatch = 0.0;  // per-element sigma as a fraction (0 = nominal)
  bool hierarchical = true;
  double r_source = 50.0;   // per-element source resistance [ohm]
  double switch_ron = 10.0; // switch ON resistance [ohm]
  double zbb_r = 1e3;       // per-path baseband resistance [ohm]
  double zbb_c = 0.0;       // per-path baseband capacitance [F]; 0 = none
  double f_lo_hz = 1e9;     // LO frequency for the npath mapping
};

/// Throws std::invalid_argument on unknown template ids or out-of-range
/// parameters (the svc layer surfaces these as bad_params).
void validate(const GenSpec& spec);

/// Render the deck text (flat or hierarchical per spec.hierarchical).
std::string render_netlist(const GenSpec& spec);

/// Closed-form count of devices the deck elaborates to (instances fully
/// expanded). Pinned against the parsed circuit in tests.
std::size_t device_count(const GenSpec& spec);

/// A bounded set of interesting node names in the elaborated circuit
/// (element RF ports, slice outputs, ladder output) for analysis payloads.
std::vector<std::string> probe_nodes(const GenSpec& spec);

/// The per-element mismatch draw (fork(element) off spec.seed; fixed draw
/// order). With spec.mismatch == 0 this returns the nominal values.
struct ElementDraw {
  double switch_ron = 0.0;
  double zbb_r = 0.0;
};
ElementDraw element_draw(const GenSpec& spec, int element);

/// Map one rx_array element onto the N-path front-end model (paths ->
/// phases, per-element mismatched ron / zbb_r): the bridge that lets a
/// generated array pipe into the npath_zin analysis. Throws for templates
/// without an N-path interpretation.
npath::NpathSpec element_npath_spec(const GenSpec& spec, int element);

}  // namespace rfmix::gen
