#include "gen/templates.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/circuits.hpp"
#include "gen/netlist_builder.hpp"
#include "mathx/rng.hpp"

namespace rfmix::gen {

namespace {

// A template-design rule both renderings depend on: every node passed as
// an instance argument must already exist (be referenced by an earlier
// device card in the same scope) before the X-card. The elaborator
// resolves instance arguments eagerly, so a fresh node minted by an X-card
// would be created *before* the instance body's internals — a different
// node-id order than the flat rendering, hence different matrix
// permutation and different result bits. With the rule obeyed, flat and
// hierarchical renderings create nodes (and devices) in exactly the same
// order and solve bit-identically. Tests pin this for every template.

std::string itos(int v) { return std::to_string(v); }

bool has_caps(const GenSpec& s) { return s.zbb_c > 0.0; }

std::size_t slice_devices(const GenSpec& s) {
  // Per path: rsw + sections * (rsec [+ csec]) + rterm.
  const std::size_t per_section = has_caps(s) ? 2 : 1;
  return static_cast<std::size_t>(s.paths) *
         (2 + static_cast<std::size_t>(s.sections) * per_section);
}

/// One receiver-slice body: `paths` switched RC-ladder baseband branches
/// off the shared RF node. Used verbatim for the .subckt body (pre = "",
/// rf = "rf") and for the flat rendering (pre = "xe<i>.", rf = "rf<i>"),
/// which is what makes the two renderings card-for-card identical.
void emit_slice_body(NetlistBuilder& nl, const std::string& pre,
                     const std::string& rf, const GenSpec& s, double ron,
                     double rbb) {
  const double rsec = rbb / s.sections;
  const double csec = has_caps(s) ? s.zbb_c / s.sections : 0.0;
  for (int p = 0; p < s.paths; ++p) {
    const std::string bp = pre + "b" + itos(p) + "_";
    nl.resistor(pre + "rsw" + itos(p), rf, bp + "0", ron);
    for (int k = 0; k < s.sections; ++k) {
      nl.resistor(pre + "rsec" + itos(p) + "_" + itos(k), bp + itos(k),
                  bp + itos(k + 1), rsec);
      if (csec > 0.0)
        nl.capacitor(pre + "csec" + itos(p) + "_" + itos(k), bp + itos(k + 1),
                     "0", csec);
    }
    nl.resistor(pre + "rterm" + itos(p), bp + itos(s.sections), "0", rbb);
  }
}

std::string render_rx_array(const GenSpec& s) {
  NetlistBuilder nl;
  nl.comment("gen rx_array elements=" + itos(s.elements) + " paths=" +
             itos(s.paths) + " sections=" + itos(s.sections) +
             (s.hierarchical ? " hierarchical" : " flat"));
  const bool shared = s.mismatch <= 0.0;
  if (s.hierarchical) {
    if (shared) {
      nl.begin_subckt("slice", {"rf"});
      emit_slice_body(nl, "", "rf", s, s.switch_ron, s.zbb_r);
      nl.end_subckt();
    } else {
      for (int i = 0; i < s.elements; ++i) {
        const ElementDraw d = element_draw(s, i);
        nl.begin_subckt("slice_" + itos(i), {"rf"});
        emit_slice_body(nl, "", "rf", s, d.switch_ron, d.zbb_r);
        nl.end_subckt();
      }
    }
  }
  for (int i = 0; i < s.elements; ++i) {
    const std::string e = itos(i);
    nl.vsource_dc("vin_e" + e, "ant" + e, "0", 1.0);
    nl.resistor("rs_e" + e, "ant" + e, "rf" + e, s.r_source);
    if (s.hierarchical) {
      nl.instance("xe" + e, {"rf" + e}, shared ? "slice" : "slice_" + e);
    } else {
      const ElementDraw d = element_draw(s, i);
      emit_slice_body(nl, "xe" + e + ".", "rf" + e, s, d.switch_ron, d.zbb_r);
    }
  }
  return std::move(nl).str();
}

/// One transistor-level single-balanced mixer slice: source resistor into
/// a switching pair at the paper's quad sizing, resistive loads to VDD.
void emit_qslice_body(NetlistBuilder& nl, const std::string& pre,
                      const std::string& rf, const std::string& lop,
                      const std::string& lom, const std::string& vdd, double w1,
                      double w2, double l) {
  nl.resistor(pre + "rsrc", rf, pre + "s", 100.0);
  nl.mosfet(pre + "m1", pre + "outp", lop, pre + "s", "0", "nmos", w1, l);
  nl.mosfet(pre + "m2", pre + "outm", lom, pre + "s", "0", "nmos", w2, l);
  nl.resistor(pre + "rlp", vdd, pre + "outp", 500.0);
  nl.resistor(pre + "rlm", vdd, pre + "outm", 500.0);
}

std::string render_mixer_slice(const GenSpec& s) {
  const core::QuadGeometry geo = core::quad_geometry(core::MixerConfig{});
  NetlistBuilder nl;
  nl.comment("gen mixer_slice elements=" + itos(s.elements) +
             (s.hierarchical ? " hierarchical" : " flat"));
  const bool shared = s.mismatch <= 0.0;
  const auto widths = [&](int i) {
    // Reuse the rx_array draw stream as pure scale factors so one seed
    // describes one consistent piece of mismatched hardware per element.
    const ElementDraw d = element_draw(s, i);
    return std::pair<double, double>{geo.w * (d.switch_ron / s.switch_ron),
                                     geo.w * (d.zbb_r / s.zbb_r)};
  };
  if (s.hierarchical) {
    if (shared) {
      nl.begin_subckt("qslice", {"rf", "lop", "lom", "vdd"});
      emit_qslice_body(nl, "", "rf", "lop", "lom", "vdd", geo.w, geo.w, geo.l);
      nl.end_subckt();
    } else {
      for (int i = 0; i < s.elements; ++i) {
        const auto [w1, w2] = widths(i);
        nl.begin_subckt("qslice_" + itos(i), {"rf", "lop", "lom", "vdd"});
        emit_qslice_body(nl, "", "rf", "lop", "lom", "vdd", w1, w2, geo.l);
        nl.end_subckt();
      }
    }
  }
  for (int i = 0; i < s.elements; ++i) {
    const std::string e = itos(i);
    nl.vsource_dc("vrf_e" + e, "rf" + e, "0", 0.55);
    nl.vsource_dc("vlop_e" + e, "lop" + e, "0", 1.2);
    nl.vsource_dc("vlom_e" + e, "lom" + e, "0", 0.3);
    nl.vsource_dc("vdd_e" + e, "vdd" + e, "0", 1.2);
    if (s.hierarchical) {
      nl.instance("xm" + e, {"rf" + e, "lop" + e, "lom" + e, "vdd" + e},
                  shared ? "qslice" : "qslice_" + e);
    } else {
      const auto [w1, w2] = widths(i);
      emit_qslice_body(nl, "xm" + e + ".", "rf" + e, "lop" + e, "lom" + e,
                       "vdd" + e, w1, w2, geo.l);
    }
  }
  return std::move(nl).str();
}

/// Flat rendering of one ladder section subtree, mirroring the .subckt
/// body card order (rt, then left child, then right child).
void emit_ladder_flat(NetlistBuilder& nl, int depth, const std::string& pre,
                      const std::string& a, const std::string& b,
                      const GenSpec& s) {
  if (depth == 0) {
    nl.resistor(pre + "rs0", a, pre + "m", s.r_source);
    nl.resistor(pre + "rt0", pre + "m", "0", s.zbb_r);
    nl.resistor(pre + "rs1", pre + "m", b, s.r_source);
    return;
  }
  nl.resistor(pre + "rt", pre + "m", "0", s.zbb_r);
  emit_ladder_flat(nl, depth - 1, pre + "x0.", a, pre + "m", s);
  emit_ladder_flat(nl, depth - 1, pre + "x1.", pre + "m", b, s);
}

std::string render_ladder(const GenSpec& s) {
  NetlistBuilder nl;
  nl.comment("gen ladder depth=" + itos(s.depth) +
             (s.hierarchical ? " hierarchical" : " flat"));
  if (s.hierarchical) {
    nl.begin_subckt("sec0", {"a", "b"});
    nl.resistor("rs0", "a", "m", s.r_source);
    nl.resistor("rt0", "m", "0", s.zbb_r);
    nl.resistor("rs1", "m", "b", s.r_source);
    nl.end_subckt();
    for (int d = 1; d <= s.depth; ++d) {
      nl.begin_subckt("sec" + itos(d), {"a", "b"});
      // rt references m before the instances do, so the midpoint node is
      // created by a device card in both renderings (see the rule above).
      nl.resistor("rt", "m", "0", s.zbb_r);
      nl.instance("x0", {"a", "m"}, "sec" + itos(d - 1));
      nl.instance("x1", {"m", "b"}, "sec" + itos(d - 1));
      nl.end_subckt();
    }
  }
  nl.vsource_dc("vin", "in", "0", 1.0);
  nl.resistor("rload", "out", "0", s.zbb_r);
  if (s.hierarchical) {
    nl.instance("xl0", {"in", "out"}, "sec" + itos(s.depth));
  } else {
    emit_ladder_flat(nl, s.depth, "xl0.", "in", "out", s);
  }
  return std::move(nl).str();
}

std::size_t ladder_section_devices(int depth) {
  // f(0) = 3; f(d) = 2 f(d-1) + 1  =>  f(d) = 4 * 2^d - 1.
  return (std::size_t{4} << depth) - 1;
}

void range_check(const char* name, double v, double lo, double hi) {
  if (!(v >= lo) || !(v <= hi))
    throw std::invalid_argument("gen field '" + std::string(name) +
                                "' must be in [" + value_token(lo) + ", " +
                                value_token(hi) + "]");
}

constexpr std::size_t kMaxDevices = 2'000'000;

}  // namespace

void validate(const GenSpec& spec) {
  const bool known = spec.template_id == "rx_array" ||
                     spec.template_id == "mixer_slice" ||
                     spec.template_id == "ladder";
  if (!known)
    throw std::invalid_argument("unknown gen template '" + spec.template_id +
                                "' (expected rx_array, mixer_slice, or ladder)");
  range_check("elements", spec.elements, 1, 65536);
  range_check("paths", spec.paths, 1, 32);
  range_check("sections", spec.sections, 1, 64);
  range_check("depth", spec.depth, 0, 18);
  range_check("mismatch", spec.mismatch, 0.0, 0.5);
  if (spec.template_id == "ladder" && spec.mismatch > 0.0)
    throw std::invalid_argument("template 'ladder' does not support mismatch");
  if (!(spec.r_source > 0.0) || !(spec.switch_ron > 0.0) || !(spec.zbb_r > 0.0))
    throw std::invalid_argument(
        "gen resistances (r_source, switch_ron, zbb_r) must be > 0");
  if (spec.zbb_c < 0.0) throw std::invalid_argument("gen field 'zbb_c' must be >= 0");
  if (!(spec.f_lo_hz > 0.0)) throw std::invalid_argument("gen field 'f_lo_hz' must be > 0");
  const std::size_t n = device_count(spec);
  if (n > kMaxDevices)
    throw std::invalid_argument("gen spec elaborates to " + std::to_string(n) +
                                " devices (limit " + std::to_string(kMaxDevices) +
                                ")");
}

std::string render_netlist(const GenSpec& spec) {
  validate(spec);
  if (spec.template_id == "rx_array") return render_rx_array(spec);
  if (spec.template_id == "mixer_slice") return render_mixer_slice(spec);
  return render_ladder(spec);
}

std::size_t device_count(const GenSpec& spec) {
  const std::size_t m = static_cast<std::size_t>(spec.elements);
  if (spec.template_id == "rx_array") return m * (2 + slice_devices(spec));
  if (spec.template_id == "mixer_slice") return m * (4 + 5);
  return ladder_section_devices(spec.depth) + 2;  // + vin + rload
}

std::vector<std::string> probe_nodes(const GenSpec& spec) {
  std::vector<std::string> probes;
  if (spec.template_id == "ladder") {
    probes = {"in", "out"};
  } else if (spec.template_id == "mixer_slice") {
    probes = {"rf0", "xm0.outp", "xm0.outm"};
  } else {
    const int shown = std::min(spec.elements, 4);
    for (int i = 0; i < shown; ++i) probes.push_back("rf" + itos(i));
    probes.push_back("xe0.b0_" + itos(spec.sections));
  }
  return probes;
}

ElementDraw element_draw(const GenSpec& spec, int element) {
  ElementDraw d{spec.switch_ron, spec.zbb_r};
  if (spec.mismatch <= 0.0) return d;
  mathx::Rng rng = mathx::Rng(spec.seed).fork(static_cast<std::uint64_t>(element));
  // Fixed draw order (ron first, then zbb_r); the multiplicative factor is
  // floored so a deep-sigma draw can never flip a resistance negative.
  const double f_ron = std::max(1.0 + spec.mismatch * rng.normal(), 0.05);
  const double f_rbb = std::max(1.0 + spec.mismatch * rng.normal(), 0.05);
  d.switch_ron *= f_ron;
  d.zbb_r *= f_rbb;
  return d;
}

npath::NpathSpec element_npath_spec(const GenSpec& spec, int element) {
  if (spec.template_id != "rx_array")
    throw std::invalid_argument("template '" + spec.template_id +
                                "' has no N-path interpretation (use rx_array)");
  const ElementDraw d = element_draw(spec, element);
  npath::NpathSpec ns;
  ns.lo.phases = spec.paths;
  ns.f_lo_hz = spec.f_lo_hz;
  ns.r_source = spec.r_source;
  ns.switch_ron = d.switch_ron;
  ns.zbb_r = d.zbb_r;
  ns.zbb_c = spec.zbb_c;
  ns.harmonics = std::max(16, spec.paths + 1);
  return ns;
}

}  // namespace rfmix::gen
