// Programmatic SPICE-deck construction (the FPGA-SPICE pattern: generate
// enormous decks from a higher-level description instead of writing them).
//
// NetlistBuilder is a thin, append-only emitter for the dialect
// spice::parse_netlist speaks: device cards, .subckt/.ends blocks, and
// subcircuit instances. Two properties matter more than convenience:
//
//  * Value round-trip: every numeric value is printed with the shortest
//    decimal that round-trips the exact double (obs::json::number), so a
//    generated deck parses back to bit-identical device parameters — the
//    precondition for flat and hierarchical renderings of the same design
//    solving bit-identically.
//  * Name discipline: the parser types a device card by the first letter
//    of its name's last '.'-separated segment, so flat renderings can
//    carry elaboration-style names ("xe0.rsw0"). The builder checks each
//    emitted name against the device type it is asked to emit and throws
//    on a mismatch, turning template bugs into immediate errors instead of
//    mis-typed circuits.
//
// See docs/gen.md.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace rfmix::gen {

class NetlistBuilder {
 public:
  /// '*'-prefixed comment line (stripped by the parser).
  NetlistBuilder& comment(std::string_view text);

  /// Raw line, emitted verbatim. Escape hatch for cards the typed helpers
  /// do not cover; no name checking.
  NetlistBuilder& raw(std::string_view line);

  NetlistBuilder& resistor(std::string_view name, std::string_view a,
                           std::string_view b, double ohms);
  NetlistBuilder& capacitor(std::string_view name, std::string_view a,
                            std::string_view b, double farads);
  NetlistBuilder& inductor(std::string_view name, std::string_view a,
                           std::string_view b, double henries);
  NetlistBuilder& vsource_dc(std::string_view name, std::string_view p,
                             std::string_view m, double volts);
  NetlistBuilder& isource_dc(std::string_view name, std::string_view p,
                             std::string_view m, double amps);
  /// `model` is "nmos" or "pmos"; w/l in meters.
  NetlistBuilder& mosfet(std::string_view name, std::string_view d,
                         std::string_view g, std::string_view s,
                         std::string_view b, std::string_view model, double w,
                         double l);

  /// Xname n1 n2 ... subckt_name.
  NetlistBuilder& instance(std::string_view name,
                           const std::vector<std::string>& nodes,
                           std::string_view subckt);

  /// .subckt blocks. Nesting definitions is rejected (as in the parser).
  NetlistBuilder& begin_subckt(std::string_view name,
                               const std::vector<std::string>& ports);
  NetlistBuilder& end_subckt();

  /// Number of device/instance cards emitted so far. Cards inside a
  /// .subckt body count once (what elaboration multiplies them into is the
  /// template's business, see gen::device_count).
  std::size_t cards() const { return cards_; }

  /// Finish (closes nothing; .end is optional in the dialect) and take the
  /// deck text.
  std::string str() && { return std::move(buf_); }
  const std::string& text() const { return buf_; }

 private:
  NetlistBuilder& device_card(char type, std::string_view name,
                              std::initializer_list<std::string_view> nodes,
                              std::string_view tail);

  std::string buf_;
  std::size_t cards_ = 0;
  bool in_subckt_ = false;
};

/// Shortest-round-trip decimal spelling of `v` as a SPICE value token
/// (delegates to obs::json::number; parse_spice_number reads it back to
/// the exact same double).
std::string value_token(double v);

}  // namespace rfmix::gen
