// Spectrum estimation over uniformly sampled waveforms.
//
// The simulation benches use coherent sampling: record lengths are chosen so
// every tone of interest lands on an exact number of cycles per record. Tone
// amplitudes are then read with the single-bin DFT (no window, no scalloping
// loss). The windowed full-FFT path exists for exploratory spur hunting.
#pragma once

#include <complex>
#include <vector>

#include "mathx/units.hpp"
#include "mathx/window.hpp"

namespace rfmix::rf {

/// A uniformly sampled real waveform.
struct SampledWaveform {
  std::vector<double> samples;
  double sample_rate_hz = 0.0;

  double duration_s() const {
    return samples.empty() ? 0.0 : static_cast<double>(samples.size()) / sample_rate_hz;
  }
};

/// Complex phasor (amplitude/phase) of the tone at `freq_hz`, measured
/// coherently. The returned magnitude is the tone's *peak amplitude* in the
/// waveform's units. freq_hz need not be an exact bin.
std::complex<double> tone_phasor(const SampledWaveform& w, double freq_hz);

/// Peak amplitude of the tone at freq_hz.
double tone_amplitude(const SampledWaveform& w, double freq_hz);

/// Tone power in dBm, interpreting the waveform as a voltage across
/// `r_ohms`.
double tone_power_dbm(const SampledWaveform& w, double freq_hz,
                      double r_ohms = mathx::kRefImpedance);

/// One bin of a windowed power spectrum.
struct SpectrumBin {
  double freq_hz = 0.0;
  double amplitude = 0.0;  // window-corrected peak amplitude
};

/// Windowed amplitude spectrum (positive frequencies only, DC excluded from
/// peak search helpers).
std::vector<SpectrumBin> amplitude_spectrum(const SampledWaveform& w,
                                            mathx::WindowKind window);

/// Largest bin in [f_lo, f_hi] of a precomputed spectrum.
SpectrumBin peak_in_band(const std::vector<SpectrumBin>& spec, double f_lo, double f_hi);

/// Spurious-free dynamic range [dB]: ratio of the signal tone to the
/// largest other bin (DC and bins within `exclude_hz` of the signal are
/// ignored). Computed over a windowed amplitude spectrum.
double sfdr_db(const SampledWaveform& w, double f_signal_hz, double exclude_hz,
               mathx::WindowKind window = mathx::WindowKind::kBlackmanHarris);

/// Drop the first `settle_fraction` of the record (start-up transient) and
/// keep an integer number of periods of `f_fundamental` so coherent
/// measurements stay exact.
SampledWaveform trim_to_coherent_window(const SampledWaveform& w, double settle_fraction,
                                        double f_fundamental);

}  // namespace rfmix::rf
