#include "rf/twotone.hpp"

#include <stdexcept>

#include "mathx/polyfit.hpp"

namespace rfmix::rf {

InterceptResult extract_intercepts(const std::vector<ToneLevels>& sweep,
                                   double floor_dbm) {
  std::vector<double> pin_f, fund, pin_3, im3, pin_2, im2;
  for (const auto& pt : sweep) {
    if (pt.fund_dbm > floor_dbm) {
      pin_f.push_back(pt.pin_dbm);
      fund.push_back(pt.fund_dbm);
    }
    if (pt.im3_dbm > floor_dbm) {
      pin_3.push_back(pt.pin_dbm);
      im3.push_back(pt.im3_dbm);
    }
    if (pt.im2_dbm > floor_dbm) {
      pin_2.push_back(pt.pin_dbm);
      im2.push_back(pt.im2_dbm);
    }
  }
  if (pin_f.size() < 2 || pin_3.size() < 2)
    throw std::invalid_argument(
        "extract_intercepts: need >= 2 sweep points above the floor");

  // Fixed theoretical slopes: fundamental 1 dB/dB, IM3 3 dB/dB, IM2 2 dB/dB.
  const mathx::LineFit f1 = mathx::fit_line_fixed_slope(pin_f, fund, 1.0);
  const mathx::LineFit f3 = mathx::fit_line_fixed_slope(pin_3, im3, 3.0);

  InterceptResult r;
  r.gain_db = f1.intercept;  // slope-1 line: out = pin + gain
  r.iip3_dbm = mathx::line_intersection_x(f1, f3);
  r.oip3_dbm = f1(r.iip3_dbm);
  r.fund_fit_rms = f1.rms_residual;
  r.im3_fit_rms = f3.rms_residual;

  if (pin_2.size() >= 2) {
    const mathx::LineFit f2 = mathx::fit_line_fixed_slope(pin_2, im2, 2.0);
    r.iip2_dbm = mathx::line_intersection_x(f1, f2);
    r.has_iip2 = true;
  }
  return r;
}

InterceptResult sweep_and_extract(const std::vector<double>& pins_dbm,
                                  const std::function<ToneLevels(double)>& measure,
                                  double floor_dbm) {
  std::vector<ToneLevels> sweep;
  sweep.reserve(pins_dbm.size());
  for (const double pin : pins_dbm) sweep.push_back(measure(pin));
  return extract_intercepts(sweep, floor_dbm);
}

}  // namespace rfmix::rf
