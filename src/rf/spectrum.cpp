#include "rf/spectrum.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/fft.hpp"

namespace rfmix::rf {

std::complex<double> tone_phasor(const SampledWaveform& w, double freq_hz) {
  if (w.samples.empty() || w.sample_rate_hz <= 0.0)
    throw std::invalid_argument("tone_phasor: empty waveform");
  const double n = static_cast<double>(w.samples.size());
  const double cycles = freq_hz * n / w.sample_rate_hz;
  const std::complex<double> bin = mathx::single_bin_dft(w.samples, cycles);
  // Real signal: amplitude = 2|X|/N (except DC).
  const double scale = freq_hz == 0.0 ? 1.0 / n : 2.0 / n;
  return bin * scale;
}

double tone_amplitude(const SampledWaveform& w, double freq_hz) {
  return std::abs(tone_phasor(w, freq_hz));
}

double tone_power_dbm(const SampledWaveform& w, double freq_hz, double r_ohms) {
  return mathx::dbm_from_sine_amplitude(tone_amplitude(w, freq_hz), r_ohms);
}

std::vector<SpectrumBin> amplitude_spectrum(const SampledWaveform& w,
                                            mathx::WindowKind window) {
  if (w.samples.empty() || w.sample_rate_hz <= 0.0)
    throw std::invalid_argument("amplitude_spectrum: empty waveform");
  const std::size_t n = w.samples.size();
  const auto win = mathx::make_window(window, n);
  const double cg = mathx::coherent_gain(window, n);
  std::vector<double> xw(n);
  for (std::size_t i = 0; i < n; ++i) xw[i] = w.samples[i] * win[i];
  const auto spec = mathx::fft_real(xw);
  const std::size_t half = n / 2 + 1;
  std::vector<SpectrumBin> out;
  out.reserve(half);
  for (std::size_t k = 0; k < half; ++k) {
    SpectrumBin bin;
    bin.freq_hz = static_cast<double>(k) * w.sample_rate_hz / static_cast<double>(n);
    const double scale = (k == 0 || 2 * k == n) ? 1.0 : 2.0;
    bin.amplitude = scale * std::abs(spec[k]) / (static_cast<double>(n) * cg);
    out.push_back(bin);
  }
  return out;
}

SpectrumBin peak_in_band(const std::vector<SpectrumBin>& spec, double f_lo, double f_hi) {
  SpectrumBin best;
  best.amplitude = -1.0;
  for (const auto& b : spec) {
    if (b.freq_hz < f_lo || b.freq_hz > f_hi) continue;
    if (b.amplitude > best.amplitude) best = b;
  }
  if (best.amplitude < 0.0) throw std::invalid_argument("peak_in_band: empty band");
  return best;
}

double sfdr_db(const SampledWaveform& w, double f_signal_hz, double exclude_hz,
               mathx::WindowKind window) {
  const auto spec = amplitude_spectrum(w, window);
  const double sig = tone_amplitude(w, f_signal_hz);
  if (sig <= 0.0) throw std::invalid_argument("sfdr_db: no signal at f_signal");
  double worst = 0.0;
  const double bin_hz = w.sample_rate_hz / static_cast<double>(w.samples.size());
  for (const auto& b : spec) {
    if (b.freq_hz < 2.0 * bin_hz) continue;  // skip DC leakage region
    if (std::abs(b.freq_hz - f_signal_hz) <= exclude_hz) continue;
    worst = std::max(worst, b.amplitude);
  }
  return mathx::db_from_voltage_ratio(sig / std::max(worst, 1e-30));
}

SampledWaveform trim_to_coherent_window(const SampledWaveform& w, double settle_fraction,
                                        double f_fundamental) {
  if (settle_fraction < 0.0 || settle_fraction >= 1.0)
    throw std::invalid_argument("settle_fraction must be in [0, 1)");
  const std::size_t n = w.samples.size();
  const std::size_t skip_raw = static_cast<std::size_t>(settle_fraction * n);
  const double samples_per_period = w.sample_rate_hz / f_fundamental;
  // Keep the largest integer number of fundamental periods that fits.
  const std::size_t avail = n - skip_raw;
  const std::size_t periods =
      static_cast<std::size_t>(static_cast<double>(avail) / samples_per_period);
  if (periods == 0)
    throw std::invalid_argument("trim_to_coherent_window: record shorter than one period");
  const std::size_t keep =
      static_cast<std::size_t>(std::llround(periods * samples_per_period));
  SampledWaveform out;
  out.sample_rate_hz = w.sample_rate_hz;
  out.samples.assign(w.samples.end() - keep, w.samples.end());
  return out;
}

}  // namespace rfmix::rf
