#include "rf/compression.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/interp.hpp"

namespace rfmix::rf {

CompressionResult find_p1db(const std::vector<double>& pins_dbm,
                            const std::function<double(double)>& pout_dbm_of_pin,
                            int ss_points) {
  if (static_cast<int>(pins_dbm.size()) < ss_points + 2)
    throw std::invalid_argument("find_p1db: sweep too short");

  CompressionResult r;
  r.pin_dbm = pins_dbm;
  r.gain_db.reserve(pins_dbm.size());
  for (const double pin : pins_dbm) r.gain_db.push_back(pout_dbm_of_pin(pin) - pin);

  double ss = 0.0;
  for (int i = 0; i < ss_points; ++i) ss += r.gain_db[static_cast<std::size_t>(i)];
  ss /= ss_points;
  r.small_signal_gain_db = ss;

  const double pin_cross = mathx::first_crossing(r.pin_dbm, r.gain_db, ss - 1.0);
  if (std::isnan(pin_cross)) {
    r.found = false;
    return r;
  }
  r.found = true;
  r.p1db_in_dbm = pin_cross;
  r.p1db_out_dbm = pin_cross + (ss - 1.0);
  return r;
}

}  // namespace rfmix::rf
