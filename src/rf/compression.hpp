// 1 dB compression point measurement.
#pragma once

#include <functional>
#include <vector>

namespace rfmix::rf {

struct CompressionResult {
  double p1db_in_dbm = 0.0;   // input-referred 1 dB compression point
  double p1db_out_dbm = 0.0;  // output power at compression
  double small_signal_gain_db = 0.0;
  bool found = false;         // false if the sweep never compressed by 1 dB
  std::vector<double> pin_dbm;
  std::vector<double> gain_db;
};

/// Sweep input power and find where gain has fallen 1 dB below its
/// small-signal value (average of the first `ss_points` sweep points),
/// interpolating between sweep samples.
CompressionResult find_p1db(const std::vector<double>& pins_dbm,
                            const std::function<double(double)>& pout_dbm_of_pin,
                            int ss_points = 3);

}  // namespace rfmix::rf
