#include "rf/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rfmix::rf {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("ConsoleTable: no headers");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("ConsoleTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string ConsoleTable::num(double v, int precision) {
  std::ostringstream os;
  if (std::isnan(v)) return "n/a";
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c])) << row[c] << " ";
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void ConsoleTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace rfmix::rf
