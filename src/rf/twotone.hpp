// Two-tone intermodulation measurements: IIP3 / IIP2 extraction by the
// standard intercept-point construction (fixed-slope line fits on a dB/dB
// grid, intersected with the fundamental line).
#pragma once

#include <functional>
#include <vector>

namespace rfmix::rf {

/// Output levels of one two-tone measurement at a given input power.
struct ToneLevels {
  double pin_dbm = 0.0;   // per-tone input power
  double fund_dbm = 0.0;  // output fundamental (per tone)
  double im3_dbm = -400.0;  // third-order product (2f1-f2 or 2f2-f1)
  double im2_dbm = -400.0;  // second-order product (f2-f1), optional
};

struct InterceptResult {
  double iip3_dbm = 0.0;
  double oip3_dbm = 0.0;
  double gain_db = 0.0;      // small-signal gain from the fundamental fit
  double iip2_dbm = 0.0;     // only meaningful when IM2 data was provided
  bool has_iip2 = false;
  double fund_fit_rms = 0.0;  // residuals diagnose sweep-range problems
  double im3_fit_rms = 0.0;
};

/// Extract intercept points from a per-tone power sweep. Points whose IM
/// levels are below `floor_dbm` (numerical noise) are excluded from fits.
/// Requires at least two usable points; throws std::invalid_argument
/// otherwise.
InterceptResult extract_intercepts(const std::vector<ToneLevels>& sweep,
                                   double floor_dbm = -250.0);

/// Convenience driver: run `measure` across pin values and extract.
InterceptResult sweep_and_extract(const std::vector<double>& pins_dbm,
                                  const std::function<ToneLevels(double)>& measure,
                                  double floor_dbm = -250.0);

}  // namespace rfmix::rf
