// Noise-figure bookkeeping helpers.
#pragma once

#include <cmath>
#include <stdexcept>

#include "mathx/units.hpp"

namespace rfmix::rf {

/// Noise figure [dB] from measured output noise.
///
/// F = Sout_total / (Sout due to source resistance alone)
///   = Sout_total / (4 k T0 Rs * |Av|^2)
/// where Av is the voltage gain from the source EMF to the output.
inline double nf_db_from_output_noise(double sout_v2_hz, double av_magnitude,
                                      double rs_ohms,
                                      double temperature_k = mathx::kT0) {
  if (sout_v2_hz <= 0.0 || av_magnitude <= 0.0 || rs_ohms <= 0.0)
    throw std::invalid_argument("nf_db_from_output_noise: non-positive input");
  const double source_part =
      4.0 * mathx::kBoltzmann * temperature_k * rs_ohms * av_magnitude * av_magnitude;
  return mathx::db_from_power_ratio(sout_v2_hz / source_part);
}

/// Input-referred noise voltage density [V/sqrt(Hz)] from output noise.
inline double input_referred_density(double sout_v2_hz, double av_magnitude) {
  if (av_magnitude <= 0.0)
    throw std::invalid_argument("input_referred_density: non-positive gain");
  return std::sqrt(sout_v2_hz) / av_magnitude;
}

/// Single-sideband NF from a double-sideband NF for a mixer whose signal
/// occupies one sideband but whose noise folds from both (+3 dB classical
/// relation for equal sideband gains).
inline double ssb_nf_from_dsb(double dsb_nf_db) { return dsb_nf_db + 3.0103; }

}  // namespace rfmix::rf
