// Console table / CSV emission used by the benchmark binaries to print the
// paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rfmix::rf {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles to the given precision.
  static std::string num(double v, int precision = 2);

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Comma-separated form for downstream plotting.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rfmix::rf
