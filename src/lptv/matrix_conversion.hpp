// Conversion-matrix analysis over *sampled MNA matrices* — the back end of
// a true PAC analysis. Where lptv.hpp builds the harmonic system from
// named periodic elements, this variant accepts the raw periodically
// sampled small-signal Jacobian G(t_k) (plus a constant capacitance matrix
// C) extracted from a nonlinear circuit's periodic steady state, and
// solves the same block system
//
//   sum_m G_m X_{k-m} + j 2 pi (f + k f_lo) C X_k = B_k .
//
// This is how core/pac_transistor.cpp turns the transistor-level mixer
// into a rigorous periodic AC analysis with no hand modeling.
#pragma once

#include <complex>
#include <vector>

#include "mathx/matrix.hpp"

namespace rfmix::lptv {

struct MatrixPacSolution {
  int harmonics = 0;
  double f_base = 0.0;
  double f_lo = 0.0;
  int n_unknowns = 0;
  std::vector<std::complex<double>> x;

  /// Phasor of MNA unknown `u` at sideband k.
  std::complex<double> at(int k, int u) const {
    return x[static_cast<std::size_t>((k + harmonics) * n_unknowns + u)];
  }
};

class MatrixConversionAnalysis {
 public:
  /// `g_samples`: the small-signal MNA Jacobian at uniformly spaced times
  /// over one LO period (all same square dimension). `c`: the constant
  /// capacitance/reactance matrix (same dimension). Requires
  /// samples >= 4*harmonics + 2.
  MatrixConversionAnalysis(std::vector<mathx::MatrixD> g_samples, mathx::MatrixD c,
                           double f_lo, int harmonics);

  int n_unknowns() const { return n_; }
  int harmonics() const { return k_hi_; }

  /// Solve with a unit AC current injected into MNA unknown `u_inject`
  /// (pass the node's unknown index; use -1 to skip, e.g. ground) at
  /// sideband k_in. For a differential injection pass both indices.
  MatrixPacSolution solve_injection(double f_base, int u_inject_p, int u_inject_m,
                                    int k_in) const;

  /// A cyclostationary white noise current source between two MNA unknowns,
  /// with its intensity sampled along the periodic orbit [A^2/Hz]. The
  /// intensity samples are evaluated at the analysis baseband frequency
  /// (exact for white sources; for 1/f sources this captures the baseband
  /// flicker and neglects its negligible value at the LO sidebands).
  struct NoiseSourceSamples {
    int u_p = -1;
    int u_m = -1;
    std::vector<double> intensity;  // one value per time sample
    std::string label;
  };

  struct NoiseContribution {
    std::string label;
    double output_psd_v2_hz = 0.0;
  };

  struct NoiseResult {
    double total_output_psd_v2_hz = 0.0;
    std::vector<NoiseContribution> contributions;
  };

  /// Output noise PSD at the differential output (u_out_p, u_out_m),
  /// sideband 0, folding every source across all sidebands with full
  /// inter-sideband correlation (PNOISE).
  NoiseResult output_noise(double f_base, int u_out_p, int u_out_m,
                           const std::vector<NoiseSourceSamples>& sources) const;

  // Fourier coefficients of one nonzero (i, j) entry of G(t), m in
  // [-2K, 2K]. Public so the implementation's free assembly helper can
  // take a span of them.
  struct Entry {
    int row, col;
    std::vector<std::complex<double>> coeff;  // size 4K+1
  };

 private:
  std::vector<mathx::MatrixD> g_samples_;
  mathx::MatrixD c_;
  double f_lo_;
  int k_hi_;
  int n_;
  std::vector<Entry> entries_;
};

}  // namespace rfmix::lptv
