#include "lptv/matrix_conversion.hpp"

#include <stdexcept>

#include "mathx/fft.hpp"
#include "mathx/sparse.hpp"
#include "mathx/units.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace rfmix::lptv {

using Complex = std::complex<double>;
using MatrixConversionAnalysis_Entry = MatrixConversionAnalysis::Entry;

MatrixConversionAnalysis::MatrixConversionAnalysis(std::vector<mathx::MatrixD> g_samples,
                                                   mathx::MatrixD c, double f_lo,
                                                   int harmonics)
    : g_samples_(std::move(g_samples)), c_(std::move(c)), f_lo_(f_lo), k_hi_(harmonics) {
  if (g_samples_.empty()) throw std::invalid_argument("MatrixConversion: no samples");
  n_ = static_cast<int>(g_samples_.front().rows());
  const int m_samp = static_cast<int>(g_samples_.size());
  if (m_samp < 4 * k_hi_ + 2)
    throw std::invalid_argument("MatrixConversion: need >= 4K+2 time samples");
  for (const auto& g : g_samples_)
    if (static_cast<int>(g.rows()) != n_ || static_cast<int>(g.cols()) != n_)
      throw std::invalid_argument("MatrixConversion: inconsistent sample dimensions");
  if (static_cast<int>(c_.rows()) != n_ || static_cast<int>(c_.cols()) != n_)
    throw std::invalid_argument("MatrixConversion: C dimension mismatch");

  // Fourier-analyze each matrix entry that is nonzero anywhere in time.
  const int m_max = 2 * k_hi_;
  std::vector<Complex> series(static_cast<std::size_t>(m_samp));
  for (int i = 0; i < n_; ++i) {
    for (int j = 0; j < n_; ++j) {
      bool any = false;
      for (int s = 0; s < m_samp; ++s) {
        const double v = g_samples_[static_cast<std::size_t>(s)](
            static_cast<std::size_t>(i), static_cast<std::size_t>(j));
        series[static_cast<std::size_t>(s)] = v;
        if (v != 0.0) any = true;
      }
      if (!any) continue;
      auto spec = series;
      mathx::fft(spec);
      Entry e;
      e.row = i;
      e.col = j;
      e.coeff.resize(static_cast<std::size_t>(2 * m_max + 1));
      for (int m = -m_max; m <= m_max; ++m) {
        const int idx = ((m % m_samp) + m_samp) % m_samp;
        e.coeff[static_cast<std::size_t>(m + m_max)] =
            spec[static_cast<std::size_t>(idx)] / static_cast<double>(m_samp);
      }
      entries_.push_back(std::move(e));
    }
  }
}

namespace {

/// Assemble the harmonic block system; when `transpose` is set the matrix
/// is built transposed (for adjoint/noise solves).
template <typename AddFn>
void assemble_blocks(int n, int k_hi, double f_base, double f_lo,
                     const std::vector<MatrixConversionAnalysis_Entry>& entries,
                     const mathx::MatrixD& c, bool transpose, AddFn&& add) {
  auto idx = [&](int k, int u) { return (k + k_hi) * n + u; };
  const int m_max = 2 * k_hi;
  for (const auto& e : entries) {
    for (int k = -k_hi; k <= k_hi; ++k) {
      for (int l = -k_hi; l <= k_hi; ++l) {
        const int m = k - l;
        if (m < -m_max || m > m_max) continue;
        const Complex v = e.coeff[static_cast<std::size_t>(m + m_max)];
        if (v == Complex{}) continue;
        const int r = idx(k, e.row), cc = idx(l, e.col);
        add(transpose ? cc : r, transpose ? r : cc, v);
      }
    }
  }
  for (int k = -k_hi; k <= k_hi; ++k) {
    const Complex jw(0.0, mathx::kTwoPi * (f_base + k * f_lo));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const double cv = c(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
        if (cv == 0.0) continue;
        const int r = idx(k, i), cc = idx(k, j);
        add(transpose ? cc : r, transpose ? r : cc, jw * cv);
      }
    }
    for (int i = 0; i < n; ++i) add(idx(k, i), idx(k, i), Complex(1e-12));
  }
}

}  // namespace

MatrixPacSolution MatrixConversionAnalysis::solve_injection(double f_base,
                                                            int u_inject_p,
                                                            int u_inject_m,
                                                            int k_in) const {
  RFMIX_OBS_SCOPED_TIMER("lptv.matrix.solve");
  RFMIX_OBS_TRACE_SCOPE("lptv.matrix.solve");
  RFMIX_OBS_COUNT("lptv.matrix.solves");
  if (std::abs(k_in) > k_hi_)
    throw std::invalid_argument("MatrixConversion: k_in outside harmonics");
  const int blocks = 2 * k_hi_ + 1;
  const std::size_t dim = static_cast<std::size_t>(blocks * n_);
  mathx::TripletMatrix<Complex> a(dim, dim);
  assemble_blocks(n_, k_hi_, f_base, f_lo_, entries_, c_, false,
                  [&](int r, int cc, Complex v) {
                    a.add(static_cast<std::size_t>(r), static_cast<std::size_t>(cc), v);
                  });

  auto idx = [&](int k, int u) { return (k + k_hi_) * n_ + u; };
  std::vector<Complex> b(dim, Complex{});
  if (u_inject_p >= 0) b[static_cast<std::size_t>(idx(k_in, u_inject_p))] -= 1.0;
  if (u_inject_m >= 0) b[static_cast<std::size_t>(idx(k_in, u_inject_m))] += 1.0;

  const mathx::CscMatrix<Complex> csc(a);
  RFMIX_OBS_COUNT("lptv.lu.factorizations");
  mathx::SparseLu<Complex> lu(csc);

  MatrixPacSolution sol;
  sol.harmonics = k_hi_;
  sol.f_base = f_base;
  sol.f_lo = f_lo_;
  sol.n_unknowns = n_;
  sol.x = lu.solve(b);
  return sol;
}

MatrixConversionAnalysis::NoiseResult MatrixConversionAnalysis::output_noise(
    double f_base, int u_out_p, int u_out_m,
    const std::vector<NoiseSourceSamples>& sources) const {
  RFMIX_OBS_SCOPED_TIMER("lptv.matrix.noise");
  RFMIX_OBS_TRACE_SCOPE("lptv.matrix.noise");
  RFMIX_OBS_COUNT("lptv.matrix.noise_solves");
  const int blocks = 2 * k_hi_ + 1;
  const std::size_t dim = static_cast<std::size_t>(blocks * n_);
  mathx::TripletMatrix<Complex> at(dim, dim);
  assemble_blocks(n_, k_hi_, f_base, f_lo_, entries_, c_, true,
                  [&](int r, int cc, Complex v) {
                    at.add(static_cast<std::size_t>(r), static_cast<std::size_t>(cc), v);
                  });

  auto idx = [&](int k, int u) { return (k + k_hi_) * n_ + u; };
  std::vector<Complex> e(dim, Complex{});
  if (u_out_p >= 0) e[static_cast<std::size_t>(idx(0, u_out_p))] += 1.0;
  if (u_out_m >= 0) e[static_cast<std::size_t>(idx(0, u_out_m))] -= 1.0;

  const mathx::CscMatrix<Complex> csc(at);
  RFMIX_OBS_COUNT("lptv.lu.factorizations");
  mathx::SparseLu<Complex> lu(csc);
  const std::vector<Complex> y = lu.solve(e);

  // Transfer from a unit current (p -> m) injected at sideband k: with the
  // rhs convention (-1 at p, +1 at m), T_k = y[m] - y[p].
  auto transfer = [&](int k, int up, int um) {
    Complex t{};
    if (up >= 0) t -= y[static_cast<std::size_t>(idx(k, up))];
    if (um >= 0) t += y[static_cast<std::size_t>(idx(k, um))];
    return t;
  };

  NoiseResult result;
  const int m_max = 2 * k_hi_;
  for (const auto& src : sources) {
    // Fourier coefficients of the intensity waveform.
    std::vector<Complex> w(src.intensity.begin(), src.intensity.end());
    const int m_samp = static_cast<int>(w.size());
    if (m_samp < 4 * k_hi_ + 2)
      throw std::invalid_argument("output_noise: intensity waveform too short");
    mathx::fft(w);
    auto coeff = [&](int m) {
      const int i = ((m % m_samp) + m_samp) % m_samp;
      return w[static_cast<std::size_t>(i)] / static_cast<double>(m_samp);
    };
    Complex acc{};
    for (int k = -k_hi_; k <= k_hi_; ++k) {
      const Complex tk = transfer(k, src.u_p, src.u_m);
      if (tk == Complex{}) continue;
      for (int l = -k_hi_; l <= k_hi_; ++l) {
        const int m = k - l;
        if (m < -m_max || m > m_max) continue;
        acc += tk * std::conj(transfer(l, src.u_p, src.u_m)) * coeff(m);
      }
    }
    const double psd = std::max(acc.real(), 0.0);
    result.total_output_psd_v2_hz += psd;
    result.contributions.push_back({src.label, psd});
  }
  return result;
}

}  // namespace rfmix::lptv
