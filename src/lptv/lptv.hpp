// Linear periodically-time-varying (LPTV) circuit analysis by the harmonic
// conversion-matrix method — the formulation behind commercial PAC/PNOISE.
//
// Model: a linear circuit in which some conductances / transconductances
// vary periodically with the LO, G(t) = sum_m G_m e^{j m w_lo t}. In
// sinusoidal steady state at baseband frequency f the solution is a set of
// sideband phasors X_k at frequencies f + k*f_lo, coupled by
//
//    sum_m  G_m X_{k-m}  +  j 2 pi (f + k f_lo) C X_k  =  B_k .
//
// Truncating to |k| <= K gives a block linear system of size (2K+1)*N.
// Solving it yields every sideband transfer function at once: conversion
// gain (input sideband +-1 -> output sideband 0 for a down-converter) and,
// via one adjoint solve, the noise folded from every sideband of every
// source into the output — including cyclostationary switch noise with its
// inter-sideband correlations.
#pragma once

#include <complex>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace rfmix::lptv {

using Complex = std::complex<double>;

/// Periodic waveform sampled uniformly over one LO period.
using PeriodicWave = std::vector<double>;

/// Generate a trapezoidal square wave over `n` samples: value `lo` for the
/// first half, `hi` for the second, with linear transitions of fractional
/// width `rise_frac` (of the full period) centered on the switching
/// instants, and an optional phase shift in samples.
PeriodicWave square_wave(int n, double lo, double hi, double rise_frac = 0.02,
                         double phase_frac = 0.0);

/// Raised-cosine (sinusoidal) waveform: offset + amp * cos(theta + phase).
PeriodicWave cosine_wave(int n, double offset, double amp, double phase_rad = 0.0);

class LptvCircuit {
 public:
  /// `num_samples` is the waveform resolution per LO period; it bounds the
  /// highest usable harmonic count (K <= num_samples/4 is safe).
  explicit LptvCircuit(int num_samples = 256) : num_samples_(num_samples) {}

  int num_samples() const { return num_samples_; }

  /// Nodes are dense integers; 0 is ground. Returns the new node id.
  int add_node() { return ++max_node_; }
  int num_nodes() const { return max_node_ + 1; }

  // -- static (time-invariant) elements --------------------------------
  void add_conductance(int a, int b, double g);
  void add_resistor(int a, int b, double ohms) { add_conductance(a, b, 1.0 / ohms); }
  void add_capacitance(int a, int b, double c);
  /// Current gm*(v(cp)-v(cm)) flows from p to m.
  void add_vccs(int p, int m, int cp, int cm, double gm);

  // -- periodic elements ------------------------------------------------
  /// Conductance g(theta) between a and b (e.g. a MOS switch channel).
  void add_periodic_conductance(int a, int b, PeriodicWave g);
  /// Transconductance gm(theta): current gm(theta)*(v(cp)-v(cm)) from p to m
  /// (e.g. a commutated Gm stage).
  void add_periodic_vccs(int p, int m, int cp, int cm, PeriodicWave gm);

  // -- noise sources ----------------------------------------------------
  /// Stationary current noise between p and m with one-sided PSD psd(f)
  /// [A^2/Hz]. Folds from every sideband with the PSD evaluated at that
  /// sideband's absolute frequency.
  void add_noise_current(int p, int m, std::function<double(double)> psd,
                         std::string label);
  /// Cyclostationary white current noise with periodic intensity s(theta)
  /// [A^2/Hz] (e.g. 4kT*g(theta) for a switch). Sideband correlations are
  /// handled through the Fourier coefficients of s.
  void add_cyclo_noise_current(int p, int m, PeriodicWave s_theta, std::string label);

  // introspection used by the analysis ---------------------------------
  struct StaticG { int a, b; double g; };
  struct StaticC { int a, b; double c; };
  struct StaticGm { int p, m, cp, cm; double gm; };
  struct PeriodicG { int a, b; PeriodicWave g; };
  struct PeriodicGm { int p, m, cp, cm; PeriodicWave gm; };
  struct StationaryNoise { int p, m; std::function<double(double)> psd; std::string label; };
  struct CycloNoise { int p, m; PeriodicWave s; std::string label; };

  const std::vector<StaticG>& static_g() const { return static_g_; }
  const std::vector<StaticC>& static_c() const { return static_c_; }
  const std::vector<StaticGm>& static_gm() const { return static_gm_; }
  const std::vector<PeriodicG>& periodic_g() const { return periodic_g_; }
  const std::vector<PeriodicGm>& periodic_gm() const { return periodic_gm_; }
  const std::vector<StationaryNoise>& stationary_noise() const { return stationary_noise_; }
  const std::vector<CycloNoise>& cyclo_noise() const { return cyclo_noise_; }

  /// Track node ids referenced by devices so num_nodes() is correct even if
  /// callers pass raw ints instead of add_node() results.
  void note_node(int n) { max_node_ = std::max(max_node_, n); }

 private:
  void check_wave(const PeriodicWave& w) const;

  int num_samples_;
  int max_node_ = 0;
  std::vector<StaticG> static_g_;
  std::vector<StaticC> static_c_;
  std::vector<StaticGm> static_gm_;
  std::vector<PeriodicG> periodic_g_;
  std::vector<PeriodicGm> periodic_gm_;
  std::vector<StationaryNoise> stationary_noise_;
  std::vector<CycloNoise> cyclo_noise_;
};

struct ConversionOptions {
  double f_lo = 1e9;   // LO frequency [Hz]
  int harmonics = 8;   // K: sidebands -K..K are retained
};

/// Result of a periodic AC solve: node voltages at each sideband.
struct PacSolution {
  int harmonics = 0;
  double f_base = 0.0;
  double f_lo = 0.0;
  int num_nodes = 0;
  /// x[(k + K) * num_unknowns + (node-1)]: sideband-k phasor of each node.
  std::vector<Complex> x;

  Complex v(int k, int node) const;
  Complex vd(int k, int p, int m) const { return v(k, p) - v(k, m); }
  double sideband_freq(int k) const { return f_base + k * f_lo; }
};

/// Per-source noise contribution at the output.
struct LptvNoiseContribution {
  std::string label;
  double output_psd_v2_hz = 0.0;
};

struct LptvNoiseResult {
  double f_base = 0.0;
  double total_output_psd_v2_hz = 0.0;
  std::vector<LptvNoiseContribution> contributions;
};

/// The conversion-matrix engine for one (circuit, f_lo, K) combination.
/// Assembly is per base frequency; factorizations are cached per call.
class ConversionAnalysis {
 public:
  ConversionAnalysis(const LptvCircuit& ckt, ConversionOptions opts);
  ~ConversionAnalysis();
  ConversionAnalysis(const ConversionAnalysis&) = delete;
  ConversionAnalysis& operator=(const ConversionAnalysis&) = delete;

  /// The assembled block system at one base frequency, reusable across any
  /// number of injection and adjoint solves. Forward and adjoint LU
  /// factorizations are built lazily on first use, so a gain point pays
  /// one factorization and a gain + noise point two — instead of one per
  /// solve. Move-only; cheap to return by value.
  class Factored {
   public:
    ~Factored();
    Factored(Factored&&) noexcept;
    Factored& operator=(Factored&&) noexcept;

    /// Unit AC current from p to m at sideband k_in (cf. the analysis-level
    /// wrapper of the same name).
    PacSolution solve_current_injection(int p, int m, int k_in) const;

    /// Output noise at (out_p, out_m), sideband 0 (one adjoint solve).
    LptvNoiseResult output_noise(int out_p, int out_m) const;

    double f_base() const { return f_base_; }

   private:
    friend class ConversionAnalysis;
    Factored(const ConversionAnalysis* an, double f_base);

    const ConversionAnalysis* an_;
    double f_base_;
    struct System;
    std::shared_ptr<System> sys_;
  };

  /// Assemble the block system once at f_base; solve against it repeatedly.
  Factored factor(double f_base) const;

  /// Solve with a unit AC current injected from node p to node m at sideband
  /// k_in, at baseband frequency f_base. Returns all node voltages at all
  /// sidebands (transimpedances, V/A).
  PacSolution solve_current_injection(double f_base, int p, int m, int k_in) const;

  /// Conversion transimpedance: inject at (in_p, in_m) sideband k_in, read
  /// differential voltage at (out_p, out_m) sideband k_out [V/A].
  Complex conversion_transimpedance(double f_base, int in_p, int in_m, int k_in,
                                    int out_p, int out_m, int k_out) const;

  /// Output noise PSD at (out_p, out_m), sideband 0, baseband frequency
  /// f_base, folding all sources across all sidebands.
  LptvNoiseResult output_noise(double f_base, int out_p, int out_m) const;

  int harmonics() const { return opts_.harmonics; }
  double f_lo() const { return opts_.f_lo; }

 private:

  /// Fourier coefficients of a periodic waveform, index m in [-2K, 2K].
  std::vector<Complex> fourier_coeffs(const PeriodicWave& w) const;

  const LptvCircuit& ckt_;
  ConversionOptions opts_;
  int n_unknowns_;  // nodes minus ground
  int block_count_; // 2K+1

  // Shared analyze-once symbolic LU patterns (mathx::SparseLuSymbolic behind
  // an opaque holder so this header stays light). The block-system sparsity
  // is fixed by (circuit, K), not by f_base, so the first factor() pays a
  // full analysis per direction and every later base-frequency point only
  // refactors. Mutable: factor() is const but warms these caches.
  struct LuShared;
  mutable std::unique_ptr<LuShared> lu_fwd_, lu_adj_;
};

}  // namespace rfmix::lptv
