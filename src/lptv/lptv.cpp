#include "lptv/lptv.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "mathx/fft.hpp"
#include "mathx/solver_config.hpp"
#include "mathx/sparse.hpp"
#include "mathx/units.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace rfmix::lptv {

using mathx::kTwoPi;

PeriodicWave square_wave(int n, double lo, double hi, double rise_frac, double phase_frac) {
  if (n <= 0) throw std::invalid_argument("square_wave: n must be positive");
  PeriodicWave w(static_cast<std::size_t>(n));
  const double rise = std::max(rise_frac, 1e-9);
  for (int i = 0; i < n; ++i) {
    // Phase in [0,1); waveform is `hi` in [0, 0.5), `lo` in [0.5, 1), with
    // linear transitions of width `rise` centered at 0 and 0.5.
    double ph = static_cast<double>(i) / n - phase_frac;
    ph -= std::floor(ph);
    double v;
    if (ph < rise / 2.0) {
      v = lo + (hi - lo) * (0.5 + ph / rise);          // rising edge around 0
    } else if (ph < 0.5 - rise / 2.0) {
      v = hi;
    } else if (ph < 0.5 + rise / 2.0) {
      v = hi + (lo - hi) * (ph - (0.5 - rise / 2.0)) / rise;  // falling edge
    } else if (ph < 1.0 - rise / 2.0) {
      v = lo;
    } else {
      v = lo + (hi - lo) * (ph - (1.0 - rise / 2.0)) / rise;  // wrap of rising edge
    }
    w[static_cast<std::size_t>(i)] = v;
  }
  return w;
}

PeriodicWave cosine_wave(int n, double offset, double amp, double phase_rad) {
  if (n <= 0) throw std::invalid_argument("cosine_wave: n must be positive");
  PeriodicWave w(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    w[static_cast<std::size_t>(i)] =
        offset + amp * std::cos(kTwoPi * i / n + phase_rad);
  return w;
}

void LptvCircuit::check_wave(const PeriodicWave& w) const {
  if (static_cast<int>(w.size()) != num_samples_)
    throw std::invalid_argument("periodic waveform must have num_samples() entries");
}

void LptvCircuit::add_conductance(int a, int b, double g) {
  note_node(a);
  note_node(b);
  static_g_.push_back({a, b, g});
}

void LptvCircuit::add_capacitance(int a, int b, double c) {
  note_node(a);
  note_node(b);
  static_c_.push_back({a, b, c});
}

void LptvCircuit::add_vccs(int p, int m, int cp, int cm, double gm) {
  note_node(p);
  note_node(m);
  note_node(cp);
  note_node(cm);
  static_gm_.push_back({p, m, cp, cm, gm});
}

void LptvCircuit::add_periodic_conductance(int a, int b, PeriodicWave g) {
  check_wave(g);
  note_node(a);
  note_node(b);
  periodic_g_.push_back({a, b, std::move(g)});
}

void LptvCircuit::add_periodic_vccs(int p, int m, int cp, int cm, PeriodicWave gm) {
  check_wave(gm);
  note_node(p);
  note_node(m);
  note_node(cp);
  note_node(cm);
  periodic_gm_.push_back({p, m, cp, cm, std::move(gm)});
}

void LptvCircuit::add_noise_current(int p, int m, std::function<double(double)> psd,
                                    std::string label) {
  note_node(p);
  note_node(m);
  stationary_noise_.push_back({p, m, std::move(psd), std::move(label)});
}

void LptvCircuit::add_cyclo_noise_current(int p, int m, PeriodicWave s_theta,
                                          std::string label) {
  check_wave(s_theta);
  note_node(p);
  note_node(m);
  cyclo_noise_.push_back({p, m, std::move(s_theta), std::move(label)});
}

Complex PacSolution::v(int k, int node) const {
  if (node == 0) return {};
  const int n_unknowns = num_nodes - 1;
  const int block = k + harmonics;
  return x[static_cast<std::size_t>(block * n_unknowns + (node - 1))];
}

// ---------------------------------------------------------------------------

/// Shared analyze-once state for one direction (forward or adjoint) of the
/// block system: the first base-frequency point to factor publishes the
/// pivot order and symbolic structure under the once_flag; every later
/// point refactors against the immutable symbolic.
struct ConversionAnalysis::LuShared {
  std::once_flag once;
  std::shared_ptr<const mathx::SparseLuSymbolic<Complex>> sym;

  /// Numerically factor `mat`, reusing (or, first time through, publishing)
  /// this cache's shared symbolic. Counts one lptv.lu.factorizations per
  /// call regardless of path, so the 2-per-(gain+noise)-point invariant is
  /// unchanged from the analyze-every-time implementation.
  std::unique_ptr<mathx::SparseLu<Complex>> factor(const mathx::CscMatrix<Complex>& mat);
};

std::unique_ptr<mathx::SparseLu<Complex>> ConversionAnalysis::LuShared::factor(
    const mathx::CscMatrix<Complex>& mat) {
  LuShared& cache = *this;
  RFMIX_OBS_COUNT("lptv.lu.factorizations");
  if (mathx::solver_mode() == mathx::SolverMode::kClassic) {
    RFMIX_OBS_COUNT("lptv.lu.analyze");
    return std::make_unique<mathx::SparseLu<Complex>>(mat);
  }
  std::unique_ptr<mathx::SparseLu<Complex>> analyzed;
  std::call_once(cache.once, [&] {
    auto sym = std::make_shared<mathx::SparseLuSymbolic<Complex>>();
    RFMIX_OBS_COUNT("lptv.lu.analyze");
    analyzed = std::make_unique<mathx::SparseLu<Complex>>(mat, *sym);
    cache.sym = std::move(sym);
  });
  if (analyzed) return analyzed;
  if (cache.sym->pattern_matches(mat)) {
    auto lu = std::make_unique<mathx::SparseLu<Complex>>();
    if (lu->refactor_from(*cache.sym, mat)) {
      RFMIX_OBS_COUNT("lptv.lu.refactor");
      return lu;
    }
  }
  // Pattern or pivot disagreement at this base frequency: analyze privately
  // without touching the shared symbolic (still bit-identical to classic).
  RFMIX_OBS_COUNT("lptv.lu.fallback");
  RFMIX_OBS_COUNT("lptv.lu.analyze");
  return std::make_unique<mathx::SparseLu<Complex>>(mat);
}

/// Assembled block system at one base frequency. The forward and adjoint
/// factorizations are built lazily (and thread-safely) on first use: a
/// gain-only point never pays for the adjoint factor, and a noise-only
/// point never pays for the forward one.
struct ConversionAnalysis::Factored::System {
  const ConversionAnalysis* an;
  mathx::CscMatrix<Complex> a;
  mathx::CscMatrix<Complex> at;
  mutable std::once_flag once_fwd, once_adj;
  mutable std::unique_ptr<mathx::SparseLu<Complex>> fwd, adj;

  System(const ConversionAnalysis* an_in, mathx::CscMatrix<Complex> a_in,
         mathx::CscMatrix<Complex> at_in)
      : an(an_in), a(std::move(a_in)), at(std::move(at_in)) {}

  const mathx::SparseLu<Complex>& forward() const {
    std::call_once(once_fwd, [&] { fwd = an->lu_fwd_->factor(a); });
    return *fwd;
  }
  const mathx::SparseLu<Complex>& adjoint() const {
    std::call_once(once_adj, [&] { adj = an->lu_adj_->factor(at); });
    return *adj;
  }
};

ConversionAnalysis::ConversionAnalysis(const LptvCircuit& ckt, ConversionOptions opts)
    : ckt_(ckt), opts_(opts),
      lu_fwd_(std::make_unique<LuShared>()), lu_adj_(std::make_unique<LuShared>()) {
  if (opts_.harmonics < 1) throw std::invalid_argument("harmonics must be >= 1");
  if (ckt_.num_samples() < 4 * opts_.harmonics + 2)
    throw std::invalid_argument(
        "num_samples too small for requested harmonic count (need >= 4K+2)");
  n_unknowns_ = ckt_.num_nodes() - 1;
  block_count_ = 2 * opts_.harmonics + 1;
  if (n_unknowns_ < 1) throw std::invalid_argument("LPTV circuit has no nodes");
}

ConversionAnalysis::~ConversionAnalysis() = default;

std::vector<Complex> ConversionAnalysis::fourier_coeffs(const PeriodicWave& w) const {
  // W_m = (1/M) sum_n w[n] e^{-j 2 pi m n / M}; FFT gives all m in one pass.
  std::vector<Complex> data(w.begin(), w.end());
  mathx::fft(data);
  const int m_max = 2 * opts_.harmonics;
  const int big_m = static_cast<int>(w.size());
  std::vector<Complex> coeffs(static_cast<std::size_t>(2 * m_max + 1));
  for (int m = -m_max; m <= m_max; ++m) {
    const int idx = ((m % big_m) + big_m) % big_m;
    coeffs[static_cast<std::size_t>(m + m_max)] =
        data[static_cast<std::size_t>(idx)] / static_cast<double>(big_m);
  }
  return coeffs;
}

ConversionAnalysis::Factored::Factored(const ConversionAnalysis* an, double f_base)
    : an_(an), f_base_(f_base) {
  const ConversionAnalysis& self = *an;
  const int k_hi = self.opts_.harmonics;
  const int n = self.n_unknowns_;
  const int block_count_ = self.block_count_;
  const ConversionOptions& opts_ = self.opts_;
  const LptvCircuit& ckt_ = self.ckt_;
  auto fourier_coeffs = [&self](const PeriodicWave& w) { return self.fourier_coeffs(w); };
  const std::size_t dim = static_cast<std::size_t>(block_count_ * n);
  mathx::TripletMatrix<Complex> a(dim, dim);
  mathx::TripletMatrix<Complex> at(dim, dim);

  auto unknown = [&](int k, int node) -> int {
    if (node == 0) return -1;
    return (k + k_hi) * n + (node - 1);
  };
  auto add = [&](int row, int col, Complex v) {
    if (row < 0 || col < 0 || v == Complex{}) return;
    a.add(static_cast<std::size_t>(row), static_cast<std::size_t>(col), v);
    at.add(static_cast<std::size_t>(col), static_cast<std::size_t>(row), v);
  };
  auto stamp_g_block = [&](int na, int nb, int krow, int kcol, Complex g) {
    add(unknown(krow, na), unknown(kcol, na), g);
    add(unknown(krow, nb), unknown(kcol, nb), g);
    add(unknown(krow, na), unknown(kcol, nb), -g);
    add(unknown(krow, nb), unknown(kcol, na), -g);
  };
  auto stamp_gm_block = [&](int p, int m, int cp, int cm, int krow, int kcol, Complex gm) {
    add(unknown(krow, p), unknown(kcol, cp), gm);
    add(unknown(krow, p), unknown(kcol, cm), -gm);
    add(unknown(krow, m), unknown(kcol, cp), -gm);
    add(unknown(krow, m), unknown(kcol, cm), gm);
  };

  // Static elements: block-diagonal.
  for (int k = -k_hi; k <= k_hi; ++k) {
    const double f_k = f_base + k * opts_.f_lo;
    const Complex jw(0.0, kTwoPi * f_k);
    for (const auto& e : ckt_.static_g()) stamp_g_block(e.a, e.b, k, k, e.g);
    for (const auto& e : ckt_.static_c()) stamp_g_block(e.a, e.b, k, k, jw * e.c);
    for (const auto& e : ckt_.static_gm())
      stamp_gm_block(e.p, e.m, e.cp, e.cm, k, k, e.gm);
    // Tiny gmin keeps isolated sidebands solvable.
    for (int node = 1; node <= n; ++node) add(unknown(k, node), unknown(k, node), 1e-12);
  }

  // Periodic elements: G_{k-l} couples sideband l into equation k.
  for (const auto& e : ckt_.periodic_g()) {
    const auto cf = fourier_coeffs(e.g);
    const int m_max = 2 * k_hi;
    for (int k = -k_hi; k <= k_hi; ++k)
      for (int l = -k_hi; l <= k_hi; ++l) {
        const int m = k - l;
        if (m < -m_max || m > m_max) continue;
        stamp_g_block(e.a, e.b, k, l, cf[static_cast<std::size_t>(m + m_max)]);
      }
  }
  for (const auto& e : ckt_.periodic_gm()) {
    const auto cf = fourier_coeffs(e.gm);
    const int m_max = 2 * k_hi;
    for (int k = -k_hi; k <= k_hi; ++k)
      for (int l = -k_hi; l <= k_hi; ++l) {
        const int m = k - l;
        if (m < -m_max || m > m_max) continue;
        stamp_gm_block(e.p, e.m, e.cp, e.cm, k, l, cf[static_cast<std::size_t>(m + m_max)]);
      }
  }

  sys_ = std::make_shared<System>(an, mathx::CscMatrix<Complex>(a),
                                  mathx::CscMatrix<Complex>(at));
}

ConversionAnalysis::Factored::~Factored() = default;
ConversionAnalysis::Factored::Factored(Factored&&) noexcept = default;
ConversionAnalysis::Factored& ConversionAnalysis::Factored::operator=(
    Factored&&) noexcept = default;

ConversionAnalysis::Factored ConversionAnalysis::factor(double f_base) const {
  return Factored(this, f_base);
}

PacSolution ConversionAnalysis::Factored::solve_current_injection(int p, int m,
                                                                  int k_in) const {
  RFMIX_OBS_SCOPED_TIMER("lptv.conversion.solve");
  RFMIX_OBS_TRACE_SCOPE("lptv.conversion.solve");
  RFMIX_OBS_COUNT("lptv.conversion.solves");
  const ConversionAnalysis& self = *an_;
  if (std::abs(k_in) > self.opts_.harmonics)
    throw std::invalid_argument("k_in outside retained harmonics");
  const int n = self.n_unknowns_;
  std::vector<Complex> b(static_cast<std::size_t>(self.block_count_ * n), Complex{});
  auto unknown = [&](int k, int node) -> int {
    if (node == 0) return -1;
    return (k + self.opts_.harmonics) * n + (node - 1);
  };
  // Unit current from p to m through the source: leaves p, enters m.
  const int up = unknown(k_in, p);
  const int um = unknown(k_in, m);
  if (up >= 0) b[static_cast<std::size_t>(up)] -= 1.0;
  if (um >= 0) b[static_cast<std::size_t>(um)] += 1.0;

  PacSolution sol;
  sol.harmonics = self.opts_.harmonics;
  sol.f_base = f_base_;
  sol.f_lo = self.opts_.f_lo;
  sol.num_nodes = self.ckt_.num_nodes();
  sol.x = sys_->forward().solve(b);
  return sol;
}

PacSolution ConversionAnalysis::solve_current_injection(double f_base, int p, int m,
                                                        int k_in) const {
  return factor(f_base).solve_current_injection(p, m, k_in);
}

Complex ConversionAnalysis::conversion_transimpedance(double f_base, int in_p, int in_m,
                                                      int k_in, int out_p, int out_m,
                                                      int k_out) const {
  const PacSolution sol = solve_current_injection(f_base, in_p, in_m, k_in);
  return sol.vd(k_out, out_p, out_m);
}

LptvNoiseResult ConversionAnalysis::Factored::output_noise(int out_p, int out_m) const {
  RFMIX_OBS_SCOPED_TIMER("lptv.conversion.noise");
  RFMIX_OBS_TRACE_SCOPE("lptv.conversion.noise");
  RFMIX_OBS_COUNT("lptv.conversion.noise_solves");
  const ConversionAnalysis& self = *an_;
  const double f_base = f_base_;
  const int n = self.n_unknowns_;
  const int k_hi = self.opts_.harmonics;
  auto unknown = [&](int k, int node) -> int {
    if (node == 0) return -1;
    return (k + k_hi) * n + (node - 1);
  };

  // Adjoint solve: A^T y = e_out with e_out selecting the differential
  // output at sideband 0.
  std::vector<Complex> e(static_cast<std::size_t>(self.block_count_ * n), Complex{});
  const int up = unknown(0, out_p);
  const int um = unknown(0, out_m);
  if (up >= 0) e[static_cast<std::size_t>(up)] += 1.0;
  if (um >= 0) e[static_cast<std::size_t>(um)] -= 1.0;
  const std::vector<Complex> y = sys_->adjoint().solve(e);

  // Transfer from a unit current injected (p -> m) at sideband k to the
  // output: T_k = y[m,k] - y[p,k] (rhs convention: -1 at p, +1 at m).
  auto transfer = [&](int k, int p, int m) -> Complex {
    Complex t{};
    const int ip = unknown(k, p);
    const int im = unknown(k, m);
    if (ip >= 0) t -= y[static_cast<std::size_t>(ip)];
    if (im >= 0) t += y[static_cast<std::size_t>(im)];
    return t;
  };

  LptvNoiseResult result;
  result.f_base = f_base;

  // Stationary sources: uncorrelated across sidebands; PSD evaluated at the
  // absolute sideband frequency.
  for (const auto& src : self.ckt_.stationary_noise()) {
    double psd_out = 0.0;
    for (int k = -k_hi; k <= k_hi; ++k) {
      const double f_k = std::abs(f_base + k * self.opts_.f_lo);
      psd_out += std::norm(transfer(k, src.p, src.m)) * src.psd(f_k);
    }
    result.total_output_psd_v2_hz += psd_out;
    result.contributions.push_back({src.label, psd_out});
  }

  // Cyclostationary white sources: S_out = sum_{k,l} T_k T_l^* S_{k-l},
  // where S_m are the Fourier coefficients of the periodic intensity.
  for (const auto& src : self.ckt_.cyclo_noise()) {
    const auto cf = self.fourier_coeffs(src.s);
    const int m_max = 2 * k_hi;
    Complex acc{};
    for (int k = -k_hi; k <= k_hi; ++k) {
      const Complex tk = transfer(k, src.p, src.m);
      if (tk == Complex{}) continue;
      for (int l = -k_hi; l <= k_hi; ++l) {
        const int m = k - l;
        if (m < -m_max || m > m_max) continue;
        const Complex tl = transfer(l, src.p, src.m);
        acc += tk * std::conj(tl) * cf[static_cast<std::size_t>(m + m_max)];
      }
    }
    // The bilinear form is Hermitian; the imaginary part is numerical noise.
    const double psd_out = std::max(acc.real(), 0.0);
    result.total_output_psd_v2_hz += psd_out;
    result.contributions.push_back({src.label, psd_out});
  }

  return result;
}

LptvNoiseResult ConversionAnalysis::output_noise(double f_base, int out_p,
                                                 int out_m) const {
  return factor(f_base).output_noise(out_p, out_m);
}

}  // namespace rfmix::lptv
