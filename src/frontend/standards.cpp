#include "frontend/standards.hpp"

#include <stdexcept>

namespace rfmix::frontend {

std::vector<WirelessStandard> standard_catalog() {
  // Values are representative receiver requirements for each standard's
  // reference data rate; see EXPERIMENTS.md for sources and caveats. The NF
  // and IIP3 budgets are the slices allocated to the balun+LNA+mixer chain
  // of Fig. 2: sensitivity-critical standards carry tight NF budgets (the
  // planner must pick the active mode), blocker-rich environments carry
  // tight IIP3 budgets (passive mode).
  return {
      {"zigbee-2450", 2.445e9, 2e6, -85.0, 5.0, -20.0, 19.0, -16.0},
      {"ble-1m", 2.440e9, 1e6, -70.0, 8.0, -35.0, 4.8, -25.0},
      {"wifi-11g-54", 2.442e9, 16.6e6, -65.0, 20.0, -15.0, 10.0, -10.0},
      {"uwb-band3", 4.488e9, 528e6, -73.0, 6.0, -15.0, 7.0, -9.0},
      {"cognitive-700", 0.7e9, 6e6, -84.0, 12.0, -35.0, 4.9, -24.0},
      {"wifi-11n-5g", 5.250e9, 20e6, -64.0, 22.0, -35.0, 4.8, -24.0},
  };
}

const WirelessStandard& find_standard(const std::vector<WirelessStandard>& catalog,
                                      const std::string& name) {
  for (const auto& s : catalog)
    if (s.name == name) return s;
  throw std::invalid_argument("unknown standard: " + name);
}

}  // namespace rfmix::frontend
