#include "frontend/cascade.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/units.hpp"

namespace rfmix::frontend {

CascadeResult cascade(const std::vector<StageSpec>& stages) {
  if (stages.empty()) throw std::invalid_argument("cascade: no stages");

  double gain_lin = 1.0;         // running power gain
  double f_total = 0.0;          // running noise factor
  double inv_iip3 = 0.0;         // running 1/IIP3 [1/W]
  CascadeResult result;
  result.per_stage.reserve(stages.size());

  bool first = true;
  for (const auto& s : stages) {
    const double g = mathx::power_ratio_from_db(s.gain_db);
    const double f = mathx::nf_factor_from_db(s.nf_db);
    if (first) {
      f_total = f;
      first = false;
    } else {
      f_total += (f - 1.0) / gain_lin;
    }
    if (s.iip3_dbm < kLinearStage) {
      // Distortion at this stage referred to the chain input: divide the
      // stage IIP3 by the gain in front of it.
      inv_iip3 += gain_lin / mathx::watts_from_dbm(s.iip3_dbm);
    }
    gain_lin *= g;

    CascadeStagePoint pt;
    pt.name = s.name;
    pt.cumulative_gain_db = mathx::db_from_power_ratio(gain_lin);
    pt.cumulative_nf_db = mathx::nf_db_from_factor(f_total);
    pt.cumulative_iip3_dbm =
        inv_iip3 > 0.0 ? mathx::dbm_from_watts(1.0 / inv_iip3) : kLinearStage;
    result.per_stage.push_back(pt);
  }

  result.gain_db = result.per_stage.back().cumulative_gain_db;
  result.nf_db = result.per_stage.back().cumulative_nf_db;
  result.iip3_dbm = result.per_stage.back().cumulative_iip3_dbm;
  return result;
}

double sensitivity_dbm(double nf_db, double bandwidth_hz, double snr_required_db) {
  if (bandwidth_hz <= 0.0) throw std::invalid_argument("sensitivity: bandwidth must be > 0");
  const double noise_floor_dbm = mathx::dbm_from_watts(mathx::thermal_noise_psd());
  return noise_floor_dbm + nf_db + 10.0 * std::log10(bandwidth_hz) + snr_required_db;
}

}  // namespace rfmix::frontend
