// Receiver chain budget analysis: Friis noise figure and IIP3 cascading
// over behavioral stage specifications (the Fig. 2 wide-band front end:
// balun -> LNA/gm stage -> mixer -> TIA/filter).
#pragma once

#include <string>
#include <vector>

namespace rfmix::frontend {

/// Behavioral description of one stage.
struct StageSpec {
  std::string name;
  double gain_db = 0.0;
  double nf_db = 0.0;
  /// Input-referred third-order intercept; use kLinearStage for stages with
  /// no meaningful third-order distortion.
  double iip3_dbm = 1e9;
};

inline constexpr double kLinearStage = 1e9;

struct CascadeStagePoint {
  std::string name;
  double cumulative_gain_db = 0.0;
  double cumulative_nf_db = 0.0;
  double cumulative_iip3_dbm = 0.0;
};

struct CascadeResult {
  double gain_db = 0.0;
  double nf_db = 0.0;
  double iip3_dbm = 0.0;
  std::vector<CascadeStagePoint> per_stage;
};

/// Friis NF and the standard coherent-worst-case IIP3 cascade:
///   F_total  = F1 + (F2 - 1)/G1 + (F3 - 1)/(G1 G2) + ...
///   1/P_iip3 = 1/P1 + G1/P2 + G1 G2/P3 ...   (linear watts)
CascadeResult cascade(const std::vector<StageSpec>& stages);

/// Receiver sensitivity [dBm] for a given NF, channel bandwidth and
/// required SNR: -174 dBm/Hz + NF + 10 log10(BW) + SNR.
double sensitivity_dbm(double nf_db, double bandwidth_hz, double snr_required_db);

}  // namespace rfmix::frontend
