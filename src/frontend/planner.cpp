#include "frontend/planner.hpp"

#include <sstream>

namespace rfmix::frontend {

namespace {

CascadeResult chain_for(const FrontEndSpec& fe, const MixerModePerf& mixer) {
  return cascade({fe.balun, fe.lna,
                  StageSpec{"mixer", mixer.gain_db, mixer.nf_db, mixer.iip3_dbm}});
}

}  // namespace

ModeDecision choose_mixer_mode(const WirelessStandard& std_spec,
                               const FrontEndSpec& fe, const MixerModePerf& active,
                               const MixerModePerf& passive) {
  struct Candidate {
    MixerMode mode;
    const MixerModePerf* perf;
    CascadeResult chain;
    double nf_margin;
    double iip3_margin;
    bool pass;
  };

  auto evaluate = [&](MixerMode mode, const MixerModePerf& perf) {
    Candidate c{mode, &perf, chain_for(fe, perf), 0.0, 0.0, false};
    c.nf_margin = std_spec.nf_budget_db - c.chain.nf_db;
    c.iip3_margin = c.chain.iip3_dbm - std_spec.iip3_budget_dbm;
    c.pass = c.nf_margin >= 0.0 && c.iip3_margin >= 0.0;
    return c;
  };

  const Candidate a = evaluate(MixerMode::kActive, active);
  const Candidate p = evaluate(MixerMode::kPassive, passive);

  auto decide = [&](const Candidate& chosen, const std::string& why) {
    ModeDecision d;
    d.mode = chosen.mode;
    d.feasible = chosen.pass;
    d.nf_margin_db = chosen.nf_margin;
    d.iip3_margin_db = chosen.iip3_margin;
    d.chain = chosen.chain;
    std::ostringstream os;
    os << why << " (NF " << d.chain.nf_db << " dB vs budget " << std_spec.nf_budget_db
       << ", IIP3 " << d.chain.iip3_dbm << " dBm vs budget " << std_spec.iip3_budget_dbm
       << ")";
    d.rationale = os.str();
    return d;
  };

  if (a.pass && p.pass) {
    // Both meet the standard: prefer lower power; tie-break toward the mode
    // with more NF margin (sensitivity headroom).
    if (active.power_mw < passive.power_mw - 0.01)
      return decide(a, "both modes pass; active chosen for lower power");
    if (passive.power_mw < active.power_mw - 0.01)
      return decide(p, "both modes pass; passive chosen for lower power");
    return decide(a.nf_margin >= p.nf_margin ? a : p,
                  "both modes pass; chose larger NF margin");
  }
  if (a.pass) return decide(a, "only active mode meets the budgets");
  if (p.pass) return decide(p, "only passive mode meets the budgets");

  // Neither passes: report the closer one (smallest total shortfall).
  const double short_a = std::min(a.nf_margin, 0.0) + std::min(a.iip3_margin, 0.0);
  const double short_p = std::min(p.nf_margin, 0.0) + std::min(p.iip3_margin, 0.0);
  return decide(short_a >= short_p ? a : p,
                "no mode meets the budgets; reporting closest");
}

}  // namespace rfmix::frontend
