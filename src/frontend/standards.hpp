// Catalog of the wireless standards the paper's introduction targets
// (IoT multi-standard receivers: Zigbee, Bluetooth, Wi-Fi, UWB, cognitive
// radio). Figures are representative published receiver requirements.
#pragma once

#include <string>
#include <vector>

namespace rfmix::frontend {

struct WirelessStandard {
  std::string name;
  double f_center_hz = 0.0;
  double channel_bw_hz = 0.0;
  double sensitivity_dbm = 0.0;   // required sensitivity at the antenna
  double snr_required_db = 0.0;   // demodulator SNR for the reference rate
  double max_blocker_dbm = 0.0;   // strongest in-band blocker the radio sees
  double nf_budget_db = 0.0;      // receiver NF budget implied by sensitivity
  double iip3_budget_dbm = 0.0;   // receiver linearity budget with blockers
};

/// The standards considered by the multi-standard benches and examples.
std::vector<WirelessStandard> standard_catalog();

/// Find a standard by name (case-sensitive); throws if absent.
const WirelessStandard& find_standard(const std::vector<WirelessStandard>& catalog,
                                      const std::string& name);

}  // namespace rfmix::frontend
