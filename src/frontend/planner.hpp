// Mode-selection planner: given a standard's requirements and the measured
// performance of the reconfigurable mixer in each mode, decide which mode
// the radio should configure — the paper's Fig. 1 trade-off, automated.
#pragma once

#include <string>
#include <vector>

#include "frontend/cascade.hpp"
#include "frontend/standards.hpp"

namespace rfmix::frontend {

enum class MixerMode { kActive, kPassive };

inline const char* mode_name(MixerMode m) {
  return m == MixerMode::kActive ? "active" : "passive";
}

/// Behavioral summary of one mixer mode (produced by core's models or
/// measured by the benches).
struct MixerModePerf {
  double gain_db = 0.0;
  double nf_db = 0.0;
  double iip3_dbm = 0.0;
  double power_mw = 0.0;
};

struct ModeDecision {
  MixerMode mode = MixerMode::kActive;
  bool feasible = false;          // does any mode meet the standard?
  double nf_margin_db = 0.0;      // budget minus achieved (positive = pass)
  double iip3_margin_db = 0.0;
  std::string rationale;
  CascadeResult chain;            // full front-end budget in the chosen mode
};

/// The front end around the mixer (balun + LNA/gm stage specs).
struct FrontEndSpec {
  StageSpec balun{"balun", -1.0, 1.0, kLinearStage};
  StageSpec lna{"lna/gm", 12.0, 3.0, 0.0};
};

/// Pick the mixer mode for `std_spec`: prefer the lowest-noise mode that
/// meets both the NF and IIP3 budgets; when blockers push the linearity
/// requirement past what the active mode delivers, switch to passive (the
/// paper's reconfiguration argument). Ties break toward lower power.
ModeDecision choose_mixer_mode(const WirelessStandard& std_spec,
                               const FrontEndSpec& fe, const MixerModePerf& active,
                               const MixerModePerf& passive);

}  // namespace rfmix::frontend
