#include "mathx/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/units.hpp"

namespace rfmix::mathx {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

// Iterative radix-2 Cooley–Tukey; sign = -1 forward, +1 inverse (no scaling).
void fft_pow2(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * kTwoPi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z: arbitrary-N DFT via a power-of-two convolution.
void fft_bluestein(std::vector<Complex>& a, int sign) {
  const std::size_t n = a.size();
  const std::size_t m = next_power_of_two(2 * n + 1);
  std::vector<Complex> chirp(n);
  for (std::size_t i = 0; i < n; ++i) {
    // exp(sign * i * pi * k^2 / n); compute k^2 mod 2n to keep the angle
    // argument small and the twiddles exact for large records.
    const std::size_t k2 = static_cast<std::size_t>(
        (static_cast<unsigned long long>(i) * i) % (2ull * n));
    const double ang = sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[i] = Complex(std::cos(ang), std::sin(ang));
  }
  std::vector<Complex> x(m, Complex{});
  std::vector<Complex> y(m, Complex{});
  for (std::size_t i = 0; i < n; ++i) x[i] = a[i] * chirp[i];
  y[0] = std::conj(chirp[0]);
  for (std::size_t i = 1; i < n; ++i) y[i] = y[m - i] = std::conj(chirp[i]);
  fft_pow2(x, -1);
  fft_pow2(y, -1);
  for (std::size_t i = 0; i < m; ++i) x[i] *= y[i];
  fft_pow2(x, +1);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t i = 0; i < n; ++i) a[i] = x[i] * chirp[i] * scale;
}

void dft_dispatch(std::vector<Complex>& a, int sign) {
  if (a.size() <= 1) return;
  if (is_power_of_two(a.size())) {
    fft_pow2(a, sign);
  } else {
    fft_bluestein(a, sign);
  }
}

}  // namespace

void fft(std::vector<Complex>& data) { dft_dispatch(data, -1); }

void ifft(std::vector<Complex>& data) {
  dft_dispatch(data, +1);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= scale;
}

std::vector<Complex> fft_real(const std::vector<double>& data) {
  std::vector<Complex> c(data.begin(), data.end());
  fft(c);
  return c;
}

Complex single_bin_dft(const std::vector<double>& data, double cycles_per_record) {
  const std::size_t n = data.size();
  if (n == 0) throw std::invalid_argument("single_bin_dft on empty record");
  const double w = kTwoPi * cycles_per_record / static_cast<double>(n);
  // Recurrence-based oscillator would drift over long records; direct
  // evaluation with double angles stays accurate to ~1e-12 for our sizes.
  Complex acc{};
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = w * static_cast<double>(i);
    acc += data[i] * Complex(std::cos(ang), -std::sin(ang));
  }
  return acc;
}

}  // namespace rfmix::mathx
