#include "mathx/window.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/units.hpp"

namespace rfmix::mathx {

namespace {

// Generalized cosine window: w[i] = sum_k a[k] * cos(2*pi*k*i/N) with
// alternating signs folded into the coefficients.
std::vector<double> cosine_window(std::size_t n, const std::vector<double>& a) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      v += a[k] * std::cos(kTwoPi * static_cast<double>(k) * static_cast<double>(i) /
                           static_cast<double>(n));
    }
    w[i] = v;
  }
  return w;
}

}  // namespace

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  if (n == 0) throw std::invalid_argument("window of length zero");
  switch (kind) {
    case WindowKind::kRect:
      return std::vector<double>(n, 1.0);
    case WindowKind::kHann:
      return cosine_window(n, {0.5, -0.5});
    case WindowKind::kHamming:
      return cosine_window(n, {0.54, -0.46});
    case WindowKind::kBlackman:
      return cosine_window(n, {0.42, -0.5, 0.08});
    case WindowKind::kBlackmanHarris:
      return cosine_window(n, {0.35875, -0.48829, 0.14128, -0.01168});
    case WindowKind::kFlatTop:
      return cosine_window(n, {0.21557895, -0.41663158, 0.277263158, -0.083578947,
                               0.006947368});
  }
  throw std::invalid_argument("unknown window kind");
}

double coherent_gain(WindowKind kind, std::size_t n) {
  const auto w = make_window(kind, n);
  double s = 0.0;
  for (const double v : w) s += v;
  return s / static_cast<double>(n);
}

double equivalent_noise_bandwidth(WindowKind kind, std::size_t n) {
  const auto w = make_window(kind, n);
  double s1 = 0.0, s2 = 0.0;
  for (const double v : w) {
    s1 += v;
    s2 += v * v;
  }
  return static_cast<double>(n) * s2 / (s1 * s1);
}

std::string window_name(WindowKind kind) {
  switch (kind) {
    case WindowKind::kRect: return "rect";
    case WindowKind::kHann: return "hann";
    case WindowKind::kHamming: return "hamming";
    case WindowKind::kBlackman: return "blackman";
    case WindowKind::kBlackmanHarris: return "blackman-harris";
    case WindowKind::kFlatTop: return "flattop";
  }
  return "unknown";
}

}  // namespace rfmix::mathx
