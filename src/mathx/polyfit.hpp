// Least-squares polynomial fitting and line fitting.
//
// Used by the RF harness to extrapolate IIP3/IIP2 intercept points: the
// fundamental and IM products are fit with fixed-slope lines (1:1 and 3:1 on
// a dB scale) in the small-signal region and intersected.
#pragma once

#include <cstddef>
#include <vector>

namespace rfmix::mathx {

struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Root-mean-square residual of the fit.
  double rms_residual = 0.0;

  double operator()(double x) const { return slope * x + intercept; }
};

/// Ordinary least-squares line fit y ~= slope*x + intercept.
LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Least-squares fit with the slope fixed (only the intercept is free).
LineFit fit_line_fixed_slope(const std::vector<double>& x, const std::vector<double>& y,
                             double slope);

/// x-coordinate where two lines intersect. Throws if parallel.
double line_intersection_x(const LineFit& a, const LineFit& b);

/// Least-squares polynomial fit of given degree; returns coefficients in
/// ascending power order (c[0] + c[1] x + ...). Uses normal equations with
/// column scaling; adequate for the low degrees (<= 5) used here.
std::vector<double> fit_polynomial(const std::vector<double>& x,
                                   const std::vector<double>& y, std::size_t degree);

/// Evaluate polynomial with ascending-power coefficients (Horner).
double eval_polynomial(const std::vector<double>& coeffs, double x);

}  // namespace rfmix::mathx
