// Window functions for spectral estimation and their amplitude/noise
// correction factors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rfmix::mathx {

enum class WindowKind {
  kRect,            // no window (use with coherent sampling)
  kHann,
  kHamming,
  kBlackman,
  kBlackmanHarris,  // 4-term, ~-92 dB sidelobes; default for spur hunting
  kFlatTop,         // amplitude-accurate for non-coherent tones
};

/// Window samples, length n (periodic form, suitable for FFT analysis).
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Coherent gain: mean of the window (amplitude correction = 1/gain).
double coherent_gain(WindowKind kind, std::size_t n);

/// Equivalent noise bandwidth in bins (for noise-density correction).
double equivalent_noise_bandwidth(WindowKind kind, std::size_t n);

/// Human-readable name.
std::string window_name(WindowKind kind);

}  // namespace rfmix::mathx
