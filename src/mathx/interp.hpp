// Piecewise-linear interpolation over tabulated data.
#pragma once

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace rfmix::mathx {

/// Linear interpolation of (xs, ys) at x. xs must be strictly increasing.
/// Values outside the table clamp to the end values (flat extrapolation),
/// which is the right behaviour for tabulated gain/NF curves.
inline double interp_linear(const std::vector<double>& xs, const std::vector<double>& ys,
                            double x) {
  if (xs.size() != ys.size() || xs.empty())
    throw std::invalid_argument("interp_linear: bad table");
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

/// First x (by linear interpolation) where ys crosses `level`, scanning left
/// to right. Returns nullopt-like NaN when no crossing exists.
inline double first_crossing(const std::vector<double>& xs, const std::vector<double>& ys,
                             double level) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("first_crossing: bad table");
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double a = ys[i - 1] - level;
    const double b = ys[i] - level;
    if (a == 0.0) return xs[i - 1];
    if ((a < 0.0) != (b < 0.0)) {
      const double t = a / (a - b);
      return xs[i - 1] + t * (xs[i] - xs[i - 1]);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace rfmix::mathx
