// Physical constants and RF unit conversions (dB, dBm, volts, watts).
//
// All power conversions assume the system reference impedance unless an
// explicit impedance is passed. The paper's front end is matched to 50 ohm
// (RF balun with 50 ohm termination, section II), so 50 ohm is the default.
#pragma once

#include <cmath>

namespace rfmix::mathx {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Standard noise-figure reference temperature [K] (290 K per IEEE).
inline constexpr double kT0 = 290.0;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Vacuum permittivity [F/m].
inline constexpr double kEps0 = 8.8541878128e-12;

/// Relative permittivity of SiO2.
inline constexpr double kEpsSiO2 = 3.9;

/// Default system reference impedance [ohm].
inline constexpr double kRefImpedance = 50.0;

/// Power ratio -> decibels. Clamps at -400 dB for non-positive ratios so
/// spectrum plots of empty bins stay finite.
inline double db_from_power_ratio(double ratio) {
  if (ratio <= 0.0) return -400.0;
  return 10.0 * std::log10(ratio);
}

/// Voltage (amplitude) ratio -> decibels.
inline double db_from_voltage_ratio(double ratio) {
  if (ratio <= 0.0) return -400.0;
  return 20.0 * std::log10(ratio);
}

/// Decibels -> power ratio.
inline double power_ratio_from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Decibels -> voltage ratio.
inline double voltage_ratio_from_db(double db) { return std::pow(10.0, db / 20.0); }

/// Watts -> dBm.
inline double dbm_from_watts(double watts) {
  return db_from_power_ratio(watts / 1e-3);
}

/// dBm -> watts.
inline double watts_from_dbm(double dbm) { return 1e-3 * power_ratio_from_db(dbm); }

/// Available power in dBm of a sine with the given peak amplitude driving
/// a matched load of impedance `r` (average power V^2 / (2R)).
inline double dbm_from_sine_amplitude(double amplitude, double r = kRefImpedance) {
  return dbm_from_watts(amplitude * amplitude / (2.0 * r));
}

/// Peak amplitude of a sine whose average power into `r` equals `dbm`.
inline double sine_amplitude_from_dbm(double dbm, double r = kRefImpedance) {
  return std::sqrt(2.0 * r * watts_from_dbm(dbm));
}

/// RMS of a sine of the given peak amplitude.
inline double rms_from_sine_amplitude(double amplitude) {
  return amplitude / std::sqrt(2.0);
}

/// Noise figure [dB] from noise factor (linear).
inline double nf_db_from_factor(double factor) { return db_from_power_ratio(factor); }

/// Noise factor (linear) from noise figure [dB].
inline double nf_factor_from_db(double nf_db) { return power_ratio_from_db(nf_db); }

/// Thermal noise available power spectral density kT [W/Hz] at temperature T.
inline double thermal_noise_psd(double temperature_k = kT0) {
  return kBoltzmann * temperature_k;
}

}  // namespace rfmix::mathx
