#include "mathx/polyfit.hpp"

#include <cmath>
#include <stdexcept>

#include "mathx/lu.hpp"
#include "mathx/matrix.hpp"

namespace rfmix::mathx {

namespace {

void require_same_nonempty(const std::vector<double>& x, const std::vector<double>& y,
                           std::size_t min_points) {
  if (x.size() != y.size()) throw std::invalid_argument("fit: x/y size mismatch");
  if (x.size() < min_points) throw std::invalid_argument("fit: too few points");
}

double rms_residual_of(const std::vector<double>& x, const std::vector<double>& y,
                       const LineFit& f) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - f(x[i]);
    s += r * r;
  }
  return std::sqrt(s / static_cast<double>(x.size()));
}

}  // namespace

LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  require_same_nonempty(x, y, 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-300) throw std::invalid_argument("fit_line: degenerate x");
  LineFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  f.rms_residual = rms_residual_of(x, y, f);
  return f;
}

LineFit fit_line_fixed_slope(const std::vector<double>& x, const std::vector<double>& y,
                             double slope) {
  require_same_nonempty(x, y, 1);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += y[i] - slope * x[i];
  LineFit f;
  f.slope = slope;
  f.intercept = acc / static_cast<double>(x.size());
  f.rms_residual = rms_residual_of(x, y, f);
  return f;
}

double line_intersection_x(const LineFit& a, const LineFit& b) {
  const double ds = a.slope - b.slope;
  if (std::abs(ds) < 1e-12) throw std::invalid_argument("line_intersection_x: parallel lines");
  return (b.intercept - a.intercept) / ds;
}

std::vector<double> fit_polynomial(const std::vector<double>& x,
                                   const std::vector<double>& y, std::size_t degree) {
  require_same_nonempty(x, y, degree + 1);
  const std::size_t m = degree + 1;
  MatrixD ata(m, m);
  VectorD atb(m, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Row of the Vandermonde matrix for sample i.
    std::vector<double> row(m);
    double p = 1.0;
    for (std::size_t j = 0; j < m; ++j) {
      row[j] = p;
      p *= x[i];
    }
    for (std::size_t a = 0; a < m; ++a) {
      atb[a] += row[a] * y[i];
      for (std::size_t b = 0; b < m; ++b) ata(a, b) += row[a] * row[b];
    }
  }
  return lu_solve(ata, atb);
}

double eval_polynomial(const std::vector<double>& coeffs, double x) {
  double v = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) v = v * x + coeffs[i];
  return v;
}

}  // namespace rfmix::mathx
