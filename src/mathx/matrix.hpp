// Dense matrix over real or complex scalars, row-major.
//
// Circuit MNA systems in this project are small (tens of unknowns), so a
// cache-friendly dense representation is the primary storage; the sparse
// path (sparse.hpp) exists for the large-harmonic-count LPTV systems.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace rfmix::mathx {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* row_data(std::size_t r) { return data_.data() + r * cols_; }
  const T* row_data(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  Matrix& operator+=(const Matrix& o) {
    require_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    require_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows()) throw std::invalid_argument("Matrix multiply shape mismatch");
    Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
      }
    }
    return out;
  }

  friend std::vector<T> operator*(const Matrix& a, const std::vector<T>& x) {
    if (a.cols() != x.size()) throw std::invalid_argument("Matrix-vector shape mismatch");
    std::vector<T> y(a.rows(), T{});
    for (std::size_t i = 0; i < a.rows(); ++i) {
      T acc{};
      const T* row = a.row_data(i);
      for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
      y[i] = acc;
    }
    return y;
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

 private:
  void require_same_shape(const Matrix& o) const {
    if (rows_ != o.rows_ || cols_ != o.cols_)
      throw std::invalid_argument("Matrix shape mismatch");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;
using VectorD = std::vector<double>;
using VectorC = std::vector<std::complex<double>>;

/// Infinity norm of a vector (real or complex).
template <typename T>
double inf_norm(const std::vector<T>& v) {
  double m = 0.0;
  for (const auto& x : v) m = std::max(m, std::abs(x));
  return m;
}

/// Euclidean norm.
template <typename T>
double two_norm(const std::vector<T>& v) {
  double s = 0.0;
  for (const auto& x : v) {
    const double a = std::abs(x);
    s += a * a;
  }
  return std::sqrt(s);
}

}  // namespace rfmix::mathx
