// Deterministic pseudo-random generation for tests and Monte-Carlo sweeps.
//
// A fixed, seedable generator (xoshiro256**) keeps every test and benchmark
// reproducible across platforms, unlike std::default_random_engine.
#pragma once

#include <cmath>
#include <cstdint>

#include "mathx/units.hpp"

namespace rfmix::mathx {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : seed_(seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    spare_ = r * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return r * std::cos(kTwoPi * u2);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Counter-based stream splitter: derive an independent generator for
  /// `index` from this generator's *original seed*, not its current state.
  /// fork(i) therefore yields the same stream no matter how many draws the
  /// parent has taken or which thread calls it — the property that lets
  /// Monte-Carlo trial i run anywhere in a pool and still produce the
  /// bit-identical result of the serial loop.
  Rng fork(std::uint64_t index) const {
    // Two SplitMix64 finalizer rounds over (seed, index); the +1 offset
    // keeps fork(0) from collapsing onto the parent stream.
    std::uint64_t z = seed_ + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }

  /// The seed this generator (and any fork of it) derives from.
  std::uint64_t seed() const { return seed_; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_;
  std::uint64_t state_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace rfmix::mathx
