// FFT: iterative radix-2 Cooley–Tukey for power-of-two sizes and Bluestein's
// chirp-z algorithm for arbitrary sizes, plus real-signal helpers.
//
// The RF measurement harness relies on coherent sampling (integer number of
// signal periods per record), so arbitrary-N support matters: it lets the
// two-tone and conversion-gain benches pick record lengths that make every
// tone of interest land exactly on a bin.
#pragma once

#include <complex>
#include <vector>

namespace rfmix::mathx {

using Complex = std::complex<double>;

/// In-place forward DFT: X[k] = sum_n x[n] exp(-2*pi*i*n*k/N).
/// Accepts any size (radix-2 fast path, Bluestein otherwise).
void fft(std::vector<Complex>& data);

/// In-place inverse DFT, normalized by 1/N.
void ifft(std::vector<Complex>& data);

/// Forward DFT of a real signal; returns the full complex spectrum.
std::vector<Complex> fft_real(const std::vector<double>& data);

/// Single-bin DFT (Goertzel-style direct evaluation) of a real signal at an
/// arbitrary normalized frequency f = cycles-per-record (not necessarily an
/// integer). Returns the complex correlation sum_n x[n] exp(-2*pi*i*f*n/N).
Complex single_bin_dft(const std::vector<double>& data, double cycles_per_record);

/// True if n is a power of two (and nonzero).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

}  // namespace rfmix::mathx
