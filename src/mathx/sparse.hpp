// Sparse matrix support: triplet (COO) builder, compressed sparse column
// storage, and a left-looking sparse LU with partial pivoting.
//
// The LPTV conversion-matrix engine produces block systems of dimension
// (2K+1)*N for K harmonics and N circuit unknowns; with K=15 and a 40-node
// mixer that is ~1200 unknowns with strong block sparsity, where dense LU
// becomes noticeably slower than a sparse factorization.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "mathx/matrix.hpp"

namespace rfmix::mathx {

/// Triplet accumulator. Duplicate (row, col) entries sum, matching the
/// "stamping" idiom used by MNA assembly.
template <typename T>
class TripletMatrix {
 public:
  TripletMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entry_count() const { return rows_idx_.size(); }

  /// Exact-zero values are kept as structural entries: a slot stamped T{}
  /// (e.g. a device whose conductance is zero at this Newton iterate) stays
  /// in the sparsity pattern, so the pattern cannot change between
  /// factorizations when the value later becomes nonzero.
  void add(std::size_t r, std::size_t c, T v) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("TripletMatrix::add out of range");
    rows_idx_.push_back(r);
    cols_idx_.push_back(c);
    values_.push_back(v);
  }

  const std::vector<std::size_t>& row_indices() const { return rows_idx_; }
  const std::vector<std::size_t>& col_indices() const { return cols_idx_; }
  const std::vector<T>& values() const { return values_; }

  Matrix<T> to_dense() const {
    Matrix<T> m(rows_, cols_);
    for (std::size_t k = 0; k < values_.size(); ++k)
      m(rows_idx_[k], cols_idx_[k]) += values_[k];
    return m;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> rows_idx_;
  std::vector<std::size_t> cols_idx_;
  std::vector<T> values_;
};

/// Compressed sparse column matrix (immutable once built).
template <typename T>
class CscMatrix {
 public:
  CscMatrix() = default;

  explicit CscMatrix(const TripletMatrix<T>& t);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::size_t>& row_idx() const { return row_idx_; }
  const std::vector<T>& values() const { return values_; }

  std::vector<T> multiply(const std::vector<T>& x) const;

  Matrix<T> to_dense() const {
    Matrix<T> m(rows_, cols_);
    for (std::size_t j = 0; j < cols_; ++j)
      for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p)
        m(row_idx_[p], j) = values_[p];
    return m;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> col_ptr_;  // size cols+1
  std::vector<std::size_t> row_idx_;  // size nnz, sorted within column
  std::vector<T> values_;             // size nnz
};

/// Left-looking (Gilbert–Peierls) sparse LU with partial pivoting.
template <typename T>
class SparseLu {
 public:
  explicit SparseLu(const CscMatrix<T>& a, double pivot_tol = 0.0);

  std::size_t size() const { return n_; }

  std::vector<T> solve(const std::vector<T>& b) const;

 private:
  std::size_t n_ = 0;
  // L is unit-diagonal; stored without the diagonal. U includes diagonal.
  std::vector<std::size_t> l_col_ptr_, l_row_idx_;
  std::vector<T> l_values_;
  std::vector<std::size_t> u_col_ptr_, u_row_idx_;
  std::vector<T> u_values_;
  std::vector<std::size_t> perm_;      // row permutation: pivot row of each step
  std::vector<std::size_t> perm_inv_;  // original row -> pivoted position
};

extern template class TripletMatrix<double>;
extern template class TripletMatrix<std::complex<double>>;
extern template class CscMatrix<double>;
extern template class CscMatrix<std::complex<double>>;
extern template class SparseLu<double>;
extern template class SparseLu<std::complex<double>>;

}  // namespace rfmix::mathx
