// Sparse matrix support: triplet (COO) builder, compressed sparse column
// storage, and a left-looking sparse LU with partial pivoting, split into an
// analyze-once phase (pivot order + symbolic update structure) and a cheap
// refactor-per-step phase for Newton loops and sweep engines.
//
// The LPTV conversion-matrix engine produces block systems of dimension
// (2K+1)*N for K harmonics and N circuit unknowns; with K=15 and a 40-node
// mixer that is ~1200 unknowns with strong block sparsity, where dense LU
// becomes noticeably slower than a sparse factorization.
//
// Bit-exactness contract (docs/solver.md): a successful refactor_from()
// produces factors that are byte-identical to what the analyzing
// constructor would compute on the same matrix. The refactor replays the
// same elimination arithmetic in the same order and verifies per column
// that partial pivoting would choose the pinned pivot; a disagreement
// (pivot drift, pattern mismatch, singular pivot) aborts the refactor so
// the caller can fall back to a full re-analysis — or, in the opt-in
// drift-repair mode, switches to a fresh analysis mid-factorization,
// reusing the columns already eliminated instead of restarting.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "mathx/matrix.hpp"

namespace rfmix::mathx {

/// Triplet accumulator. Duplicate (row, col) entries sum, matching the
/// "stamping" idiom used by MNA assembly.
template <typename T>
class TripletMatrix {
 public:
  TripletMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t entry_count() const { return rows_idx_.size(); }

  /// Exact-zero values are kept as structural entries: a slot stamped T{}
  /// (e.g. a device whose conductance is zero at this Newton iterate) stays
  /// in the sparsity pattern, so the pattern cannot change between
  /// factorizations when the value later becomes nonzero.
  void add(std::size_t r, std::size_t c, T v) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("TripletMatrix::add out of range");
    rows_idx_.push_back(r);
    cols_idx_.push_back(c);
    values_.push_back(v);
  }

  /// Drop all entries but keep the allocated capacity, so a Newton loop can
  /// restamp into the same buffers every iteration.
  void clear() {
    rows_idx_.clear();
    cols_idx_.clear();
    values_.clear();
  }

  const std::vector<std::size_t>& row_indices() const { return rows_idx_; }
  const std::vector<std::size_t>& col_indices() const { return cols_idx_; }
  const std::vector<T>& values() const { return values_; }

  Matrix<T> to_dense() const {
    Matrix<T> m(rows_, cols_);
    for (std::size_t k = 0; k < values_.size(); ++k)
      m(rows_idx_[k], cols_idx_[k]) += values_[k];
    return m;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> rows_idx_;
  std::vector<std::size_t> cols_idx_;
  std::vector<T> values_;
};

/// Compressed sparse column matrix (pattern immutable once built; values may
/// be refilled in place through mutable_values for the refactor fast path).
template <typename T>
class CscMatrix {
 public:
  CscMatrix() = default;

  explicit CscMatrix(const TripletMatrix<T>& t);

  /// Adopt a prebuilt pattern + value array (the StampMap fast path). The
  /// caller guarantees row indices are sorted and unique within each column.
  CscMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> col_ptr,
            std::vector<std::size_t> row_idx, std::vector<T> values)
      : rows_(rows), cols_(cols), col_ptr_(std::move(col_ptr)),
        row_idx_(std::move(row_idx)), values_(std::move(values)) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::size_t>& row_idx() const { return row_idx_; }
  const std::vector<T>& values() const { return values_; }

  /// In-place value refill for pattern-preserving updates.
  std::vector<T>& mutable_values() { return values_; }

  std::vector<T> multiply(const std::vector<T>& x) const;

  Matrix<T> to_dense() const {
    Matrix<T> m(rows_, cols_);
    for (std::size_t j = 0; j < cols_; ++j)
      for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p)
        m(row_idx_[p], j) = values_[p];
    return m;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> col_ptr_;  // size cols+1
  std::vector<std::size_t> row_idx_;  // size nnz, sorted within column
  std::vector<T> values_;             // size nnz
};

/// Caches the triplet -> CSC conversion for a fixed stamp pattern. MNA
/// assembly restamps the same (row, col) sequence every Newton iteration
/// with new values; once the mapping from triplet arrival order to CSC slot
/// is recorded, each subsequent conversion is a single gather-add pass with
/// no counting, sorting or allocation.
///
/// fill() replays the exact assign/accumulate order of the
/// CscMatrix(TripletMatrix) constructor (including its duplicate-merge
/// summation order), so the produced values are byte-identical to a fresh
/// conversion of the same triplets — a prerequisite for the solver modes'
/// bit-exactness contract.
template <typename T>
class TripletCscMap {
 public:
  TripletCscMap() = default;

  bool empty() const { return cols_ == 0 && rows_ == 0; }

  /// True if `t` has exactly the recorded (row, col) entry sequence.
  bool matches(const TripletMatrix<T>& t) const {
    return t.rows() == rows_ && t.cols() == cols_ && t.row_indices() == trip_rows_ &&
           t.col_indices() == trip_cols_;
  }

  /// Record the mapping for this triplet's entry sequence.
  void build(const TripletMatrix<T>& t);

  /// Convert `t` (which must match()) into `csc`, reusing csc's pattern
  /// storage when it already carries this map's pattern.
  void fill(const TripletMatrix<T>& t, CscMatrix<T>& csc) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> trip_rows_, trip_cols_;  // recorded entry sequence
  // One record per triplet entry, in the constructor's per-column sorted
  // walk order: source arrival index, destination CSC slot, and whether the
  // walk assigns the slot (first hit) or accumulates into it (duplicate).
  std::vector<std::size_t> walk_src_, walk_dst_;
  std::vector<char> walk_first_;
  std::vector<std::size_t> col_ptr_, row_idx_;  // resulting CSC pattern
};

template <typename T>
class SparseLu;

/// Output of the analyze phase: the pinned pivot sequence plus the
/// structural elimination pattern (which earlier columns can update each
/// column, closed over structure alone, not the values seen at analysis
/// time). Immutable once built, so sweep engines can share one symbolic
/// across threads while each point refactors privately.
template <typename T>
class SparseLuSymbolic {
 public:
  SparseLuSymbolic() = default;

  bool empty() const { return n_ == 0; }
  std::size_t size() const { return n_; }

  /// Structural factor sizes, used to pre-reserve numeric buffers.
  std::size_t l_capacity() const { return l_capacity_; }
  std::size_t u_capacity() const { return u_capacity_; }

  /// True if `a` has exactly the pattern this symbolic was analyzed on.
  bool pattern_matches(const CscMatrix<T>& a) const {
    return a.rows() == n_ && a.cols() == n_ && a.col_ptr() == pat_col_ptr_ &&
           a.row_idx() == pat_row_idx_;
  }

 private:
  friend class SparseLu<T>;
  std::size_t n_ = 0;
  std::vector<std::size_t> perm_;      // elimination step -> pinned pivot row
  std::vector<std::size_t> perm_inv_;  // original row -> elimination step
  // Per-column structural update lists (CSR-style): columns k < j whose L
  // column can structurally reach column j, in ascending k. This is exactly
  // the structural nonzero set of U(k, j).
  std::vector<std::size_t> upd_ptr_;   // size n+1
  std::vector<std::size_t> upd_step_;  // flattened lists
  std::size_t l_capacity_ = 0;
  std::size_t u_capacity_ = 0;
  // Pattern fingerprint of the analyzed matrix.
  std::vector<std::size_t> pat_col_ptr_;
  std::vector<std::size_t> pat_row_idx_;
};

/// Left-looking (Gilbert–Peierls) sparse LU with partial pivoting.
///
/// Two ways to build the numeric factors:
///  * the constructors run the full analyze path (pattern discovery +
///    value-based partial pivoting); the three-argument form additionally
///    exports the symbolic structure for later reuse;
///  * refactor_from() replays the elimination with a previously analyzed
///    symbolic, skipping pattern discovery over all prior columns and
///    reusing this object's buffers, and reports failure instead of
///    producing factors that deviate from the analyze path.
template <typename T>
class SparseLu {
 public:
  /// Empty factorization; only useful as a refactor_from target.
  SparseLu() = default;

  explicit SparseLu(const CscMatrix<T>& a, double pivot_tol = 0.0);

  /// Analyze and export the symbolic structure into `sym_out`.
  SparseLu(const CscMatrix<T>& a, SparseLuSymbolic<T>& sym_out, double pivot_tol = 0.0);

  /// Numeric refactorization of `a` against a pinned symbolic. On success
  /// the factors are byte-identical to SparseLu(a, pivot_tol). Returns false
  /// (leaving *this empty) when the pattern does not match the symbolic,
  /// when partial pivoting on the current values would choose a different
  /// pivot than the pinned one (pivot drift), or when a pivot is singular —
  /// the caller then falls back to a fresh analyzing construction.
  /// Buffers are reused across calls, so a Newton loop allocates only on
  /// the first iteration.
  ///
  /// With `repair` non-null, pivot drift no longer aborts: up to the drift
  /// column the replayed elimination state is identical to a fresh analysis
  /// (the restricted update scan visits exactly the updates a full scan
  /// would, and the pivot scan is the same code), so the factorization
  /// adopts the freshly scanned pivot, continues in analyze mode, and
  /// rewrites *repair with the new pivot sequence — producing factors
  /// byte-identical to SparseLu(a, pivot_tol) without restarting from
  /// column zero. `repair` may alias `sym` (it is only written after the
  /// last read, on complete success); it must NOT be a symbolic shared
  /// with concurrent readers. A singular pivot at the drift column throws
  /// SingularMatrixError, matching the analyzing constructors. `repaired`,
  /// when non-null, reports whether the repair path ran.
  bool refactor_from(const SparseLuSymbolic<T>& sym, const CscMatrix<T>& a,
                     double pivot_tol = 0.0, SparseLuSymbolic<T>* repair = nullptr,
                     bool* repaired = nullptr);

  std::size_t size() const { return n_; }

  std::vector<T> solve(const std::vector<T>& b) const;

  /// Solve A^T x = b (adjoint / noise analyses).
  std::vector<T> solve_transposed(const std::vector<T>& b) const;

 private:
  // Shared elimination core: factor `a`, choosing pivots by partial
  // pivoting. When `sym` is non-null, verify each chosen pivot against the
  // pinned sequence and restrict the per-column update scan to the symbolic
  // update lists; on drift, returns false — unless `sym_out` is also
  // non-null, in which case the elimination degrades to analyze mode at the
  // drift column and continues (drift repair). When `sym_out` is non-null,
  // record the symbolic structure of this factorization (in replay mode,
  // only if a drift actually occurred). `drifted`, when non-null, reports
  // whether the repair path ran.
  bool factorize(const CscMatrix<T>& a, double pivot_tol, const SparseLuSymbolic<T>* sym,
                 SparseLuSymbolic<T>* sym_out, bool* drifted = nullptr);

  std::size_t n_ = 0;
  // L is unit-diagonal; stored without the diagonal. U includes diagonal.
  std::vector<std::size_t> l_col_ptr_, l_row_idx_;
  std::vector<T> l_values_;
  std::vector<std::size_t> u_col_ptr_, u_row_idx_;
  std::vector<T> u_values_;
  std::vector<std::size_t> perm_;      // row permutation: pivot row of each step
  std::vector<std::size_t> perm_inv_;  // original row -> pivoted position
  // Scratch reused across refactor_from calls.
  std::vector<T> work_;
  std::vector<char> occupied_;
  std::vector<std::size_t> pattern_;
  std::vector<char> pivoted_;
};

extern template class TripletMatrix<double>;
extern template class TripletMatrix<std::complex<double>>;
extern template class CscMatrix<double>;
extern template class CscMatrix<std::complex<double>>;
extern template class TripletCscMap<double>;
extern template class TripletCscMap<std::complex<double>>;
extern template class SparseLuSymbolic<double>;
extern template class SparseLuSymbolic<std::complex<double>>;
extern template class SparseLu<double>;
extern template class SparseLu<std::complex<double>>;

}  // namespace rfmix::mathx
