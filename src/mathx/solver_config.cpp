#include "mathx/solver_config.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rfmix::mathx {

namespace {

std::atomic<int> g_mode{-1};  // -1 = not yet read from the environment

int mode_from_env() {
  const char* e = std::getenv("RFMIX_SOLVER");
  if (e == nullptr || *e == '\0') return static_cast<int>(SolverMode::kReuse);
  const std::string v(e);
  if (v == "classic") return static_cast<int>(SolverMode::kClassic);
  if (v == "reuse") return static_cast<int>(SolverMode::kReuse);
  throw std::invalid_argument("RFMIX_SOLVER must be 'classic' or 'reuse', got '" + v + "'");
}

}  // namespace

SolverMode solver_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    // Benign race: concurrent first calls parse the same environment value.
    m = mode_from_env();
    g_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<SolverMode>(m);
}

void set_solver_mode(SolverMode m) {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

const char* solver_mode_name(SolverMode m) {
  return m == SolverMode::kClassic ? "classic" : "reuse";
}

}  // namespace rfmix::mathx
