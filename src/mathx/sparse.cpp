#include "mathx/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mathx/lu.hpp"

namespace rfmix::mathx {

template <typename T>
CscMatrix<T>::CscMatrix(const TripletMatrix<T>& t)
    : rows_(t.rows()), cols_(t.cols()), col_ptr_(t.cols() + 1, 0) {
  const auto& tr = t.row_indices();
  const auto& tc = t.col_indices();
  const auto& tv = t.values();

  // Count entries per column, then prefix-sum into col_ptr.
  std::vector<std::size_t> count(cols_, 0);
  for (std::size_t k = 0; k < tv.size(); ++k) ++count[tc[k]];
  for (std::size_t j = 0; j < cols_; ++j) col_ptr_[j + 1] = col_ptr_[j] + count[j];

  // Scatter unsorted, then sort and merge duplicates per column.
  std::vector<std::size_t> next(col_ptr_.begin(), col_ptr_.end() - 1);
  std::vector<std::size_t> ri(tv.size());
  std::vector<T> va(tv.size());
  for (std::size_t k = 0; k < tv.size(); ++k) {
    const std::size_t p = next[tc[k]]++;
    ri[p] = tr[k];
    va[p] = tv[k];
  }

  row_idx_.reserve(tv.size());
  values_.reserve(tv.size());
  std::vector<std::size_t> new_col_ptr(cols_ + 1, 0);
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < cols_; ++j) {
    const std::size_t lo = col_ptr_[j], hi = col_ptr_[j + 1];
    order.resize(hi - lo);
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = lo + k;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return ri[a] < ri[b]; });
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t p = order[k];
      if (new_col_ptr[j + 1] > new_col_ptr[j] && row_idx_.back() == ri[p]) {
        values_.back() += va[p];  // merge duplicate stamp
      } else {
        row_idx_.push_back(ri[p]);
        values_.push_back(va[p]);
        ++new_col_ptr[j + 1];
      }
    }
    new_col_ptr[j + 1] += new_col_ptr[j];
  }
  col_ptr_ = std::move(new_col_ptr);
}

template <typename T>
std::vector<T> CscMatrix<T>::multiply(const std::vector<T>& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CscMatrix::multiply size mismatch");
  std::vector<T> y(rows_, T{});
  for (std::size_t j = 0; j < cols_; ++j) {
    const T xj = x[j];
    if (xj == T{}) continue;
    for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p)
      y[row_idx_[p]] += values_[p] * xj;
  }
  return y;
}

// Left-looking column LU with partial pivoting, using a dense work column in
// *original* row coordinates. L columns store original row indices so no
// renumbering pass is needed; the permutation maps elimination step -> chosen
// pivot row. The per-column update loop scans all previous columns, which is
// O(n^2) in symbolic terms but with O(1) work per empty hit — entirely
// adequate for the <= few-thousand-unknown systems this project builds, and
// straightforward to reason about.
template <typename T>
SparseLu<T>::SparseLu(const CscMatrix<T>& a, double pivot_tol) : n_(a.rows()) {
  if (a.rows() != a.cols()) throw std::invalid_argument("SparseLu requires square matrix");
  const std::size_t n = n_;
  l_col_ptr_.assign(n + 1, 0);
  u_col_ptr_.assign(n + 1, 0);
  perm_.assign(n, static_cast<std::size_t>(-1));
  perm_inv_.assign(n, static_cast<std::size_t>(-1));

  std::vector<T> work(n, T{});      // dense column, original row coords
  std::vector<char> occupied(n, 0); // nonzero-pattern flags for `work`
  std::vector<std::size_t> pattern; // rows currently occupied
  std::vector<char> pivoted(n, 0);  // original row already chosen as pivot?

  const auto& acp = a.col_ptr();
  const auto& ari = a.row_idx();
  const auto& av = a.values();

  auto scatter = [&](std::size_t row, T value) {
    if (!occupied[row]) {
      occupied[row] = 1;
      pattern.push_back(row);
    }
    work[row] += value;
  };

  for (std::size_t j = 0; j < n; ++j) {
    pattern.clear();
    for (std::size_t p = acp[j]; p < acp[j + 1]; ++p) scatter(ari[p], av[p]);

    // Apply updates from all previous elimination steps in order.
    for (std::size_t k = 0; k < j; ++k) {
      const std::size_t piv_row_k = perm_[k];
      if (!occupied[piv_row_k]) continue;
      const T ukj = work[piv_row_k];
      if (ukj == T{}) continue;
      for (std::size_t p = l_col_ptr_[k]; p < l_col_ptr_[k + 1]; ++p)
        scatter(l_row_idx_[p], -l_values_[p] * ukj);
    }

    // Choose pivot among rows not yet pivoted.
    std::size_t piv_row = static_cast<std::size_t>(-1);
    double best = pivot_tol;
    for (const std::size_t r : pattern) {
      if (pivoted[r]) continue;
      const double mag = std::abs(work[r]);
      if (mag > best) {
        best = mag;
        piv_row = r;
      }
    }
    if (piv_row == static_cast<std::size_t>(-1)) throw SingularMatrixError(j);
    const T piv_val = work[piv_row];

    // Emit U column j: previously pivoted rows, ordered by elimination step,
    // then the diagonal last (solve() relies on diagonal-last).
    std::vector<std::pair<std::size_t, T>> ucol;  // (elim step, value)
    for (const std::size_t r : pattern) {
      if (pivoted[r] && work[r] != T{}) ucol.emplace_back(perm_inv_[r], work[r]);
    }
    std::sort(ucol.begin(), ucol.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [step, v] : ucol) {
      u_row_idx_.push_back(step);
      u_values_.push_back(v);
    }
    u_row_idx_.push_back(j);
    u_values_.push_back(piv_val);
    u_col_ptr_[j + 1] = u_values_.size();

    // Emit L column j (original row indices, scaled by pivot).
    for (const std::size_t r : pattern) {
      if (!pivoted[r] && r != piv_row && work[r] != T{}) {
        l_row_idx_.push_back(r);
        l_values_.push_back(work[r] / piv_val);
      }
    }
    l_col_ptr_[j + 1] = l_values_.size();

    perm_[j] = piv_row;
    perm_inv_[piv_row] = j;
    pivoted[piv_row] = 1;

    for (const std::size_t r : pattern) {
      work[r] = T{};
      occupied[r] = 0;
    }
  }
}

template <typename T>
std::vector<T> SparseLu<T>::solve(const std::vector<T>& b) const {
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve size mismatch");
  // Forward substitution in elimination-step coordinates: y = L^{-1} P b.
  std::vector<T> y(n_);
  for (std::size_t j = 0; j < n_; ++j) y[j] = b[perm_[j]];
  for (std::size_t j = 0; j < n_; ++j) {
    const T yj = y[j];
    if (yj == T{}) continue;
    for (std::size_t p = l_col_ptr_[j]; p < l_col_ptr_[j + 1]; ++p)
      y[perm_inv_[l_row_idx_[p]]] -= l_values_[p] * yj;
  }
  // Back substitution with U (diagonal stored last in each column).
  std::vector<T>& x = y;
  for (std::size_t jj = n_; jj-- > 0;) {
    const std::size_t lo = u_col_ptr_[jj], hi = u_col_ptr_[jj + 1];
    const T xj = x[jj] / u_values_[hi - 1];
    x[jj] = xj;
    if (xj == T{}) continue;
    for (std::size_t p = lo; p + 1 < hi; ++p) x[u_row_idx_[p]] -= u_values_[p] * xj;
  }
  return x;
}

template class TripletMatrix<double>;
template class TripletMatrix<std::complex<double>>;
template class CscMatrix<double>;
template class CscMatrix<std::complex<double>>;
template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace rfmix::mathx
