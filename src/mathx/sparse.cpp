#include "mathx/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mathx/lu.hpp"

namespace rfmix::mathx {

template <typename T>
CscMatrix<T>::CscMatrix(const TripletMatrix<T>& t)
    : rows_(t.rows()), cols_(t.cols()), col_ptr_(t.cols() + 1, 0) {
  const auto& tr = t.row_indices();
  const auto& tc = t.col_indices();
  const auto& tv = t.values();

  // Count entries per column, then prefix-sum into col_ptr.
  std::vector<std::size_t> count(cols_, 0);
  for (std::size_t k = 0; k < tv.size(); ++k) ++count[tc[k]];
  for (std::size_t j = 0; j < cols_; ++j) col_ptr_[j + 1] = col_ptr_[j] + count[j];

  // Scatter unsorted, then sort and merge duplicates per column.
  std::vector<std::size_t> next(col_ptr_.begin(), col_ptr_.end() - 1);
  std::vector<std::size_t> ri(tv.size());
  std::vector<T> va(tv.size());
  for (std::size_t k = 0; k < tv.size(); ++k) {
    const std::size_t p = next[tc[k]]++;
    ri[p] = tr[k];
    va[p] = tv[k];
  }

  row_idx_.reserve(tv.size());
  values_.reserve(tv.size());
  std::vector<std::size_t> new_col_ptr(cols_ + 1, 0);
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < cols_; ++j) {
    const std::size_t lo = col_ptr_[j], hi = col_ptr_[j + 1];
    order.resize(hi - lo);
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = lo + k;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return ri[a] < ri[b]; });
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t p = order[k];
      if (new_col_ptr[j + 1] > new_col_ptr[j] && row_idx_.back() == ri[p]) {
        values_.back() += va[p];  // merge duplicate stamp
      } else {
        row_idx_.push_back(ri[p]);
        values_.push_back(va[p]);
        ++new_col_ptr[j + 1];
      }
    }
    new_col_ptr[j + 1] += new_col_ptr[j];
  }
  col_ptr_ = std::move(new_col_ptr);
}

template <typename T>
std::vector<T> CscMatrix<T>::multiply(const std::vector<T>& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CscMatrix::multiply size mismatch");
  std::vector<T> y(rows_, T{});
  for (std::size_t j = 0; j < cols_; ++j) {
    const T xj = x[j];
    if (xj == T{}) continue;
    for (std::size_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p)
      y[row_idx_[p]] += values_[p] * xj;
  }
  return y;
}

template <typename T>
void TripletCscMap<T>::build(const TripletMatrix<T>& t) {
  rows_ = t.rows();
  cols_ = t.cols();
  trip_rows_ = t.row_indices();
  trip_cols_ = t.col_indices();
  const auto& tr = trip_rows_;
  const auto& tc = trip_cols_;
  const std::size_t m = tr.size();

  // Mirror the CscMatrix(TripletMatrix) constructor step for step — count,
  // prefix-sum, scatter in arrival order, per-column sort by row — but
  // record where each entry lands instead of accumulating values, so the
  // sort sees the identical index sequence (and thus produces the identical
  // permutation, ties included).
  std::vector<std::size_t> cp(cols_ + 1, 0);
  std::vector<std::size_t> count(cols_, 0);
  for (std::size_t k = 0; k < m; ++k) ++count[tc[k]];
  for (std::size_t j = 0; j < cols_; ++j) cp[j + 1] = cp[j] + count[j];

  std::vector<std::size_t> next(cp.begin(), cp.end() - 1);
  std::vector<std::size_t> ri(m);
  std::vector<std::size_t> arrival(m);  // scatter position -> arrival index
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t p = next[tc[k]]++;
    ri[p] = tr[k];
    arrival[p] = k;
  }

  walk_src_.clear();
  walk_dst_.clear();
  walk_first_.clear();
  walk_src_.reserve(m);
  walk_dst_.reserve(m);
  walk_first_.reserve(m);
  col_ptr_.assign(cols_ + 1, 0);
  row_idx_.clear();
  row_idx_.reserve(m);
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < cols_; ++j) {
    const std::size_t lo = cp[j], hi = cp[j + 1];
    order.resize(hi - lo);
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = lo + k;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return ri[a] < ri[b]; });
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t p = order[k];
      const bool dup = col_ptr_[j + 1] > col_ptr_[j] && row_idx_.back() == ri[p];
      if (!dup) {
        row_idx_.push_back(ri[p]);
        ++col_ptr_[j + 1];
      }
      walk_src_.push_back(arrival[p]);
      walk_dst_.push_back(row_idx_.size() - 1);
      walk_first_.push_back(dup ? 0 : 1);
    }
    col_ptr_[j + 1] += col_ptr_[j];
  }
}

template <typename T>
void TripletCscMap<T>::fill(const TripletMatrix<T>& t, CscMatrix<T>& csc) const {
  const auto& tv = t.values();
  if (tv.size() != walk_src_.size())
    throw std::invalid_argument("TripletCscMap::fill: triplet does not match map");
  if (csc.rows() != rows_ || csc.cols() != cols_ || csc.col_ptr() != col_ptr_ ||
      csc.row_idx() != row_idx_) {
    csc = CscMatrix<T>(rows_, cols_, col_ptr_, row_idx_,
                       std::vector<T>(row_idx_.size(), T{}));
  }
  std::vector<T>& v = csc.mutable_values();
  // Assign-then-accumulate matches the constructor's push_back/+= merge
  // exactly (an initial `T{} + x` would flip the sign of a -0.0 stamp).
  for (std::size_t w = 0; w < walk_src_.size(); ++w) {
    if (walk_first_[w])
      v[walk_dst_[w]] = tv[walk_src_[w]];
    else
      v[walk_dst_[w]] += tv[walk_src_[w]];
  }
}

template <typename T>
SparseLu<T>::SparseLu(const CscMatrix<T>& a, double pivot_tol) {
  factorize(a, pivot_tol, nullptr, nullptr);
}

template <typename T>
SparseLu<T>::SparseLu(const CscMatrix<T>& a, SparseLuSymbolic<T>& sym_out, double pivot_tol) {
  factorize(a, pivot_tol, nullptr, &sym_out);
}

template <typename T>
bool SparseLu<T>::refactor_from(const SparseLuSymbolic<T>& sym, const CscMatrix<T>& a,
                                double pivot_tol, SparseLuSymbolic<T>* repair,
                                bool* repaired) {
  if (repaired) *repaired = false;
  if (!sym.pattern_matches(a)) {
    n_ = 0;
    return false;
  }
  return factorize(a, pivot_tol, &sym, repair, repaired);
}

// Left-looking column LU with partial pivoting, using a dense work column in
// *original* row coordinates. L columns store original row indices so no
// renumbering pass is needed; the permutation maps elimination step -> chosen
// pivot row.
//
// Analyze mode (sym == nullptr): the per-column update loop scans all
// previous columns, which is O(n^2) in symbolic terms but with O(1) work per
// empty hit — entirely adequate for the <= few-thousand-unknown systems this
// project builds, and straightforward to reason about.
//
// Replay mode (sym != nullptr): the scan is restricted to the symbolic
// update lists. Those lists are a structural superset of the updates any
// value assignment can trigger (closure over structure alone, see below), so
// applying the same value-dependent skips to the restricted list visits
// exactly the updates the full scan would, in the same ascending order; the
// scatter sequence — and therefore the discovered pattern order, the pivot
// scan, and every emitted byte of L and U — is identical to analyze mode as
// long as the pivot-selection scan picks the pinned pivot. The ascending
// update order is topologically valid because L column k only holds rows not
// yet pivoted at step k, so a later update can never touch an earlier pivot
// row.
template <typename T>
bool SparseLu<T>::factorize(const CscMatrix<T>& a, double pivot_tol,
                            const SparseLuSymbolic<T>* sym, SparseLuSymbolic<T>* sym_out,
                            bool* drifted) {
  if (a.rows() != a.cols()) throw std::invalid_argument("SparseLu requires square matrix");
  const bool replay = sym != nullptr;
  bool drift_repaired = false;
  const std::size_t n = a.rows();
  n_ = n;
  l_col_ptr_.assign(n + 1, 0);
  u_col_ptr_.assign(n + 1, 0);
  l_row_idx_.clear();
  l_values_.clear();
  u_row_idx_.clear();
  u_values_.clear();
  perm_.assign(n, static_cast<std::size_t>(-1));
  perm_inv_.assign(n, static_cast<std::size_t>(-1));
  if (sym) {
    l_row_idx_.reserve(sym->l_capacity_);
    l_values_.reserve(sym->l_capacity_);
    u_row_idx_.reserve(sym->u_capacity_);
    u_values_.reserve(sym->u_capacity_);
  }

  work_.assign(n, T{});      // dense column, original row coords
  occupied_.assign(n, 0);    // nonzero-pattern flags for `work_`
  pattern_.clear();          // rows currently occupied
  pivoted_.assign(n, 0);     // original row already chosen as pivot?

  const auto& acp = a.col_ptr();
  const auto& ari = a.row_idx();
  const auto& av = a.values();

  auto scatter = [&](std::size_t row, T value) {
    if (!occupied_[row]) {
      occupied_[row] = 1;
      pattern_.push_back(row);
    }
    work_[row] += value;
  };

  auto apply_update = [&](std::size_t k) {
    const std::size_t piv_row_k = perm_[k];
    if (!occupied_[piv_row_k]) return;
    const T ukj = work_[piv_row_k];
    if (ukj == T{}) return;
    for (std::size_t p = l_col_ptr_[k]; p < l_col_ptr_[k + 1]; ++p)
      scatter(l_row_idx_[p], -l_values_[p] * ukj);
  };

  std::vector<std::pair<std::size_t, T>> ucol;  // (elim step, value)
  for (std::size_t j = 0; j < n; ++j) {
    pattern_.clear();
    for (std::size_t p = acp[j]; p < acp[j + 1]; ++p) scatter(ari[p], av[p]);

    // Apply updates from previous elimination steps in ascending order.
    if (sym) {
      for (std::size_t q = sym->upd_ptr_[j]; q < sym->upd_ptr_[j + 1]; ++q)
        apply_update(sym->upd_step_[q]);
    } else {
      for (std::size_t k = 0; k < j; ++k) apply_update(k);
    }

    // Choose pivot among rows not yet pivoted.
    std::size_t piv_row = static_cast<std::size_t>(-1);
    double best = pivot_tol;
    for (const std::size_t r : pattern_) {
      if (pivoted_[r]) continue;
      const double mag = std::abs(work_[r]);
      if (mag > best) {
        best = mag;
        piv_row = r;
      }
    }
    if (sym) {
      if (piv_row != sym->perm_[j]) {
        if (sym_out) {
          // Drift repair: everything eliminated so far is identical to a
          // fresh analysis (the restricted scan visits exactly the updates
          // a full scan would; the pivot scan above is the analyze-mode
          // scan), so adopt the freshly scanned pivot and continue in
          // analyze mode — the remaining columns can no longer trust the
          // old symbolic's update lists.
          if (piv_row == static_cast<std::size_t>(-1)) throw SingularMatrixError(j);
          drift_repaired = true;
          sym = nullptr;
        } else {
          // Strict replay: abort so the caller re-analyzes (keeping the
          // analyze path the only source of pivot decisions).
          for (const std::size_t r : pattern_) {
            work_[r] = T{};
            occupied_[r] = 0;
          }
          n_ = 0;
          return false;
        }
      }
    } else if (piv_row == static_cast<std::size_t>(-1)) {
      throw SingularMatrixError(j);
    }
    const T piv_val = work_[piv_row];

    // Emit U column j: previously pivoted rows, ordered by elimination step,
    // then the diagonal last (solve() relies on diagonal-last).
    ucol.clear();
    for (const std::size_t r : pattern_) {
      if (pivoted_[r] && work_[r] != T{}) ucol.emplace_back(perm_inv_[r], work_[r]);
    }
    std::sort(ucol.begin(), ucol.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [step, v] : ucol) {
      u_row_idx_.push_back(step);
      u_values_.push_back(v);
    }
    u_row_idx_.push_back(j);
    u_values_.push_back(piv_val);
    u_col_ptr_[j + 1] = u_values_.size();

    // Emit L column j (original row indices, scaled by pivot).
    for (const std::size_t r : pattern_) {
      if (!pivoted_[r] && r != piv_row && work_[r] != T{}) {
        l_row_idx_.push_back(r);
        l_values_.push_back(work_[r] / piv_val);
      }
    }
    l_col_ptr_[j + 1] = l_values_.size();

    perm_[j] = piv_row;
    perm_inv_[piv_row] = j;
    pivoted_[piv_row] = 1;

    for (const std::size_t r : pattern_) {
      work_[r] = T{};
      occupied_[r] = 0;
    }
  }

  // Structure-only closure under the now-pinned permutation. The numeric
  // factors above drop entries that are exactly zero at the analyzed values;
  // a symbolic built from them could miss updates that become nonzero at
  // other values. This pass re-runs the reachability with every structural
  // entry treated as nonzero, so the update lists cover any value
  // assignment with this pattern.
  // In replay mode the caller's symbolic is only rewritten when a drift
  // actually invalidated it — a clean replay leaves it untouched (it may
  // alias `sym`; all reads of `sym` happened in the column loop above).
  if (sym_out && (!replay || drift_repaired)) {
    SparseLuSymbolic<T>& s = *sym_out;
    s.n_ = n;
    s.perm_ = perm_;
    s.perm_inv_ = perm_inv_;
    s.pat_col_ptr_ = acp;
    s.pat_row_idx_ = ari;
    s.upd_ptr_.assign(n + 1, 0);
    s.upd_step_.clear();
    s.l_capacity_ = 0;
    s.u_capacity_ = 0;

    std::vector<std::size_t> sl_col_ptr(n + 1, 0);
    std::vector<std::size_t> sl_row_idx;
    std::vector<char> occ(n, 0);
    std::vector<std::size_t> pat;
    for (std::size_t j = 0; j < n; ++j) {
      pat.clear();
      auto touch = [&](std::size_t row) {
        if (!occ[row]) {
          occ[row] = 1;
          pat.push_back(row);
        }
      };
      for (std::size_t p = acp[j]; p < acp[j + 1]; ++p) touch(ari[p]);
      for (std::size_t k = 0; k < j; ++k) {
        if (!occ[perm_[k]]) continue;
        s.upd_step_.push_back(k);
        for (std::size_t p = sl_col_ptr[k]; p < sl_col_ptr[k + 1]; ++p)
          touch(sl_row_idx[p]);
      }
      s.upd_ptr_[j + 1] = s.upd_step_.size();
      for (const std::size_t r : pat) {
        if (perm_inv_[r] > j) sl_row_idx.push_back(r);
        occ[r] = 0;
      }
      sl_col_ptr[j + 1] = sl_row_idx.size();
    }
    s.l_capacity_ = sl_row_idx.size();
    s.u_capacity_ = s.upd_step_.size() + n;
  }
  if (drifted) *drifted = drift_repaired;
  return true;
}

template <typename T>
std::vector<T> SparseLu<T>::solve(const std::vector<T>& b) const {
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve size mismatch");
  // Forward substitution in elimination-step coordinates: y = L^{-1} P b.
  std::vector<T> y(n_);
  for (std::size_t j = 0; j < n_; ++j) y[j] = b[perm_[j]];
  for (std::size_t j = 0; j < n_; ++j) {
    const T yj = y[j];
    if (yj == T{}) continue;
    for (std::size_t p = l_col_ptr_[j]; p < l_col_ptr_[j + 1]; ++p)
      y[perm_inv_[l_row_idx_[p]]] -= l_values_[p] * yj;
  }
  // Back substitution with U (diagonal stored last in each column).
  std::vector<T>& x = y;
  for (std::size_t jj = n_; jj-- > 0;) {
    const std::size_t lo = u_col_ptr_[jj], hi = u_col_ptr_[jj + 1];
    const T xj = x[jj] / u_values_[hi - 1];
    x[jj] = xj;
    if (xj == T{}) continue;
    for (std::size_t p = lo; p + 1 < hi; ++p) x[u_row_idx_[p]] -= u_values_[p] * xj;
  }
  return x;
}

// With P A = L U (elimination-step coordinates, as in solve()), A^T x = b
// becomes U^T L^T (P x) = b: a forward solve with U^T (gather form, columns
// ascending, diagonal stored last), a backward solve with L^T (unit
// diagonal, entries gathered through perm_inv_), then undo the permutation.
template <typename T>
std::vector<T> SparseLu<T>::solve_transposed(const std::vector<T>& b) const {
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve_transposed size mismatch");
  std::vector<T> w(b);
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t lo = u_col_ptr_[j], hi = u_col_ptr_[j + 1];
    T s = w[j];
    for (std::size_t p = lo; p + 1 < hi; ++p) s -= u_values_[p] * w[u_row_idx_[p]];
    w[j] = s / u_values_[hi - 1];
  }
  for (std::size_t jj = n_; jj-- > 0;) {
    T s = w[jj];
    for (std::size_t p = l_col_ptr_[jj]; p < l_col_ptr_[jj + 1]; ++p)
      s -= l_values_[p] * w[perm_inv_[l_row_idx_[p]]];
    w[jj] = s;
  }
  std::vector<T> x(n_);
  for (std::size_t j = 0; j < n_; ++j) x[perm_[j]] = w[j];
  return x;
}

template class TripletMatrix<double>;
template class TripletMatrix<std::complex<double>>;
template class CscMatrix<double>;
template class CscMatrix<std::complex<double>>;
template class TripletCscMap<double>;
template class TripletCscMap<std::complex<double>>;
template class SparseLuSymbolic<double>;
template class SparseLuSymbolic<std::complex<double>>;
template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace rfmix::mathx
