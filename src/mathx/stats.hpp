// Small descriptive-statistics helpers for Monte-Carlo and sweep results.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rfmix::mathx {

struct SampleStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Descriptive statistics of a sample. Throws on empty input.
inline SampleStats sample_stats(std::vector<double> xs) {
  if (xs.empty()) throw std::invalid_argument("sample_stats: empty sample");
  SampleStats s;
  s.count = xs.size();
  double sum = 0.0;
  for (const double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (const double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(ss / static_cast<double>(xs.size() - 1)) : 0.0;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  const std::size_t n = xs.size();
  s.median = n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
  return s;
}

/// Linear-interpolated percentile (p in [0, 100]) of a sample.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double t = idx - static_cast<double>(lo);
  return xs[lo] + t * (xs[hi] - xs[lo]);
}

}  // namespace rfmix::mathx
