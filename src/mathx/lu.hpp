// Dense LU factorization with partial pivoting and solve, templated over
// real/complex scalars. This is the workhorse linear solver for MNA
// systems produced by the circuit simulator.
#pragma once

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mathx/matrix.hpp"

namespace rfmix::mathx {

/// Thrown when a factorization encounters a (numerically) singular matrix.
/// In circuit terms this usually means a floating node or a voltage-source
/// loop; the message carries the pivot index to aid netlist debugging.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t pivot)
      : std::runtime_error("singular matrix at pivot " + std::to_string(pivot)),
        pivot_(pivot) {}
  std::size_t pivot() const { return pivot_; }

 private:
  std::size_t pivot_;
};

template <typename T>
class LuFactorization {
 public:
  /// Factor `a` in place (a copy is taken). Throws SingularMatrixError if a
  /// pivot column has no entry with magnitude above `pivot_tol`.
  explicit LuFactorization(Matrix<T> a, double pivot_tol = 0.0)
      : lu_(std::move(a)), perm_(lu_.rows()) {
    if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LU requires square matrix");
    const std::size_t n = lu_.rows();
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});
    for (std::size_t k = 0; k < n; ++k) {
      // Partial pivoting: largest magnitude in column k at/below diagonal.
      std::size_t piv = k;
      double best = std::abs(lu_(k, k));
      for (std::size_t i = k + 1; i < n; ++i) {
        const double mag = std::abs(lu_(i, k));
        if (mag > best) {
          best = mag;
          piv = i;
        }
      }
      if (!(best > pivot_tol)) throw SingularMatrixError(k);
      if (piv != k) {
        std::swap(perm_[k], perm_[piv]);
        for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
        sign_flips_ ^= 1;
      }
      const T pivot = lu_(k, k);
      for (std::size_t i = k + 1; i < n; ++i) {
        const T m = lu_(i, k) / pivot;
        lu_(i, k) = m;
        if (m == T{}) continue;
        for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
      }
    }
  }

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.
  std::vector<T> solve(const std::vector<T>& b) const {
    const std::size_t n = size();
    if (b.size() != n) throw std::invalid_argument("LU solve rhs size mismatch");
    std::vector<T> x(n);
    // Apply permutation, forward substitution (L has unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
      x[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
      x[ii] = acc / lu_(ii, ii);
    }
    return x;
  }

  /// Solve A^T x = b (needed by adjoint noise analysis).
  std::vector<T> solve_transposed(const std::vector<T>& b) const {
    const std::size_t n = size();
    if (b.size() != n) throw std::invalid_argument("LU solve rhs size mismatch");
    // A = P^T L U  =>  A^T = U^T L^T P. Solve U^T y = b, then L^T z = y,
    // then x = P^T z (i.e. x[perm[i]] = z[i]).
    std::vector<T> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[i];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * y[j];
      y[i] = acc / lu_(i, i);
    }
    std::vector<T> z(n);
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = y[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * z[j];
      z[ii] = acc;
    }
    std::vector<T> x(n);
    for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
    return x;
  }

  /// Determinant (product of U diagonal with permutation sign).
  T determinant() const {
    T d = sign_flips_ ? T{-1} : T{1};
    for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
    return d;
  }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int sign_flips_ = 0;
};

/// One-shot convenience: solve A x = b.
template <typename T>
std::vector<T> lu_solve(const Matrix<T>& a, const std::vector<T>& b) {
  return LuFactorization<T>(a).solve(b);
}

}  // namespace rfmix::mathx
