// Process-wide numeric solver mode. `kReuse` enables the analyze-once/
// refactor-per-step sparse LU fast path (see docs/solver.md); `kClassic`
// re-analyzes every factorization. Results are byte-identical in both modes
// by construction — the switch exists so the parity test harness, CI lanes
// and benchmarks can pin either path.
//
// The default comes from the RFMIX_SOLVER environment variable
// ("classic" | "reuse"; unset means "reuse"); tests and benchmarks override
// it at runtime through set_solver_mode / ScopedSolverMode.
#pragma once

namespace rfmix::mathx {

enum class SolverMode { kClassic, kReuse };

/// Current mode; first call reads RFMIX_SOLVER (throws std::invalid_argument
/// on an unrecognized value).
SolverMode solver_mode();

void set_solver_mode(SolverMode m);

/// Stable wire name of `m` ("classic" / "reuse") — the same spelling
/// RFMIX_SOLVER accepts, reported by the rfmixd stats op.
const char* solver_mode_name(SolverMode m);

/// RAII mode override for tests and benchmarks.
class ScopedSolverMode {
 public:
  explicit ScopedSolverMode(SolverMode m) : saved_(solver_mode()) { set_solver_mode(m); }
  ~ScopedSolverMode() { set_solver_mode(saved_); }
  ScopedSolverMode(const ScopedSolverMode&) = delete;
  ScopedSolverMode& operator=(const ScopedSolverMode&) = delete;

 private:
  SolverMode saved_;
};

}  // namespace rfmix::mathx
