// Transient analysis.
//
// Two stepping modes:
//  * fixed-step (the default for RF measurements): uniform samples make the
//    downstream FFT-based spectral measurements exact under coherent
//    sampling, with trapezoidal integration after a backward-Euler start.
//  * adaptive: local-truncation-error controlled step doubling/halving for
//    general circuits (start-up transients, switching studies).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/op.hpp"

namespace rfmix::spice {

struct TranOptions {
  NewtonOptions newton;
  Integrator integrator = Integrator::kTrapezoidal;
  bool adaptive = false;
  double lte_tol = 1e-4;       // adaptive: target local truncation error [V]
  double dt_min_factor = 1e-4; // adaptive: smallest dt as fraction of nominal
  /// Skip the DC operating point and start from a provided state.
  const Solution* initial_state = nullptr;
};

struct TranResult {
  std::vector<double> time_s;
  /// One waveform per probed node, in the order probes were given.
  std::vector<std::vector<double>> waveforms;
  /// Final state, usable as the next run's initial_state.
  Solution final_state;

  const std::vector<double>& waveform(std::size_t probe_index) const {
    return waveforms.at(probe_index);
  }
};

/// A probe: differential voltage v(p) - v(m).
struct Probe {
  NodeId p = kGround;
  NodeId m = kGround;
  std::string label;
};

/// Run transient from t=0 to t_stop with nominal step dt, recording the
/// probed differential voltages at every accepted step (uniform grid in
/// fixed-step mode).
TranResult transient(Circuit& ckt, double t_stop, double dt, const std::vector<Probe>& probes,
                     const TranOptions& opts = {});

}  // namespace rfmix::spice
