// Circuit: a named-node netlist owning its devices.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/device.hpp"
#include "spice/types.hpp"

namespace rfmix::spice {

class Circuit {
 public:
  Circuit() {
    node_names_.push_back("0");
    node_index_["0"] = kGround;
    node_index_["gnd"] = kGround;
  }

  /// Get or create a node by name. "0" and "gnd" are ground.
  NodeId node(const std::string& name) {
    auto it = node_index_.find(name);
    if (it != node_index_.end()) return it->second;
    const NodeId id = static_cast<NodeId>(node_names_.size());
    node_names_.push_back(name);
    node_index_[name] = id;
    return id;
  }

  /// Look up an existing node; throws if absent.
  NodeId find_node(const std::string& name) const {
    auto it = node_index_.find(name);
    if (it == node_index_.end())
      throw std::invalid_argument("unknown node: " + name);
    return it->second;
  }

  bool has_node(const std::string& name) const {
    return node_index_.find(name) != node_index_.end();
  }

  const std::string& node_name(NodeId n) const {
    return node_names_.at(static_cast<std::size_t>(n));
  }

  int num_nodes() const { return static_cast<int>(node_names_.size()); }

  /// Construct and register a device; returns a reference that stays valid
  /// for the circuit's lifetime.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    devices_.push_back(std::move(dev));
    finalized_ = false;
    return ref;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Find a device by name; returns nullptr if absent.
  Device* find_device(const std::string& name) {
    for (auto& d : devices_)
      if (d->name() == name) return d.get();
    return nullptr;
  }

  /// Assign branch indices. Called automatically by analyses.
  MnaLayout finalize() {
    int next_branch = 0;
    for (auto& d : devices_) {
      if (d->num_branches() > 0) {
        d->set_branch_base(next_branch);
        next_branch += d->num_branches();
      }
    }
    finalized_ = true;
    layout_ = MnaLayout{num_nodes(), next_branch};
    return layout_;
  }

  MnaLayout layout() const {
    if (!finalized_) throw std::logic_error("Circuit::finalize not called");
    return layout_;
  }

 private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::vector<std::unique_ptr<Device>> devices_;
  bool finalized_ = false;
  MnaLayout layout_{};
};

}  // namespace rfmix::spice
