#include "spice/ac.hpp"

#include <cmath>

#include "mathx/lu.hpp"
#include "mathx/units.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "spice/mna.hpp"
#include "spice/solver.hpp"

namespace rfmix::spice {

std::vector<double> log_space(double f_start, double f_stop, int points) {
  std::vector<double> f;
  f.reserve(static_cast<std::size_t>(points));
  if (points == 1) {
    f.push_back(f_start);
    return f;
  }
  const double l0 = std::log10(f_start);
  const double l1 = std::log10(f_stop);
  for (int i = 0; i < points; ++i)
    f.push_back(std::pow(10.0, l0 + (l1 - l0) * i / (points - 1)));
  return f;
}

std::vector<double> lin_space(double f_start, double f_stop, int points) {
  std::vector<double> f;
  f.reserve(static_cast<std::size_t>(points));
  if (points == 1) {
    f.push_back(f_start);
    return f;
  }
  for (int i = 0; i < points; ++i)
    f.push_back(f_start + (f_stop - f_start) * i / (points - 1));
  return f;
}

AcResult ac_sweep(Circuit& ckt, const Solution& op, const std::vector<double>& freqs_hz,
                  double gmin) {
  RFMIX_OBS_SCOPED_TIMER("spice.ac");
  RFMIX_OBS_TRACE_SCOPE("spice.ac");
  RFMIX_OBS_COUNT_N("spice.ac.points", freqs_hz.size());
  const MnaLayout layout = ckt.finalize();
  const std::size_t n = static_cast<std::size_t>(layout.size());

  AcResult result;
  result.freqs_hz = freqs_hz;
  result.layout = layout;
  result.solutions.resize(freqs_hz.size());

  if (freqs_hz.empty()) return result;

  // Frequency points are independent: stamping is const on the finalized
  // circuit, and each point writes only its own solution slot, so the
  // parallel run is bit-identical to the serial loop.
  const Circuit& stamped = ckt;
  using Cplx = std::complex<double>;
  auto assemble = [&](std::size_t i, mathx::TripletMatrix<Cplx>& y, mathx::VectorC& b) {
    const double omega = mathx::kTwoPi * freqs_hz[i];
    assemble_ac(stamped, op, omega, gmin, y, b);
  };

  if (solver_mode() == SolverMode::kClassic) {
    runtime::parallel_for(0, freqs_hz.size(), [&](std::size_t i) {
      mathx::TripletMatrix<Cplx> y(n, n);
      mathx::VectorC b(n, Cplx{});
      assemble(i, y, b);
      RFMIX_OBS_COUNT("spice.lu.factorizations");
      RFMIX_OBS_COUNT("spice.lu.analyze");
      result.solutions[i] = mathx::SparseLu<Cplx>(mathx::CscMatrix<Cplx>(y)).solve(b);
    });
    return result;
  }

  // Reuse mode: prime the stamp map and symbolic LU serially at the first
  // point, then refactor every other point in parallel against the shared
  // read-only symbolic. A point whose pattern or pivots disagree falls back
  // to a private analysis without touching the shared state, so the result
  // — byte-identical either way — and the per-point counters do not depend
  // on scheduling.
  mathx::TripletCscMap<Cplx> map;
  mathx::SparseLuSymbolic<Cplx> sym;
  {
    mathx::TripletMatrix<Cplx> y(n, n);
    mathx::VectorC b(n, Cplx{});
    assemble(0, y, b);
    map.build(y);
    mathx::CscMatrix<Cplx> a;
    map.fill(y, a);
    RFMIX_OBS_COUNT("spice.lu.factorizations");
    RFMIX_OBS_COUNT("spice.lu.analyze");
    result.solutions[0] = mathx::SparseLu<Cplx>(a, sym).solve(b);
  }
  runtime::parallel_for(1, freqs_hz.size(), [&](std::size_t i) {
    mathx::TripletMatrix<Cplx> y(n, n);
    mathx::VectorC b(n, Cplx{});
    assemble(i, y, b);
    RFMIX_OBS_COUNT("spice.lu.factorizations");
    mathx::CscMatrix<Cplx> a;
    if (map.matches(y)) {
      map.fill(y, a);
      mathx::SparseLu<Cplx> lu;
      if (lu.refactor_from(sym, a)) {
        RFMIX_OBS_COUNT("spice.lu.refactor");
        result.solutions[i] = lu.solve(b);
        return;
      }
    } else {
      a = mathx::CscMatrix<Cplx>(y);
    }
    RFMIX_OBS_COUNT("spice.lu.fallback");
    RFMIX_OBS_COUNT("spice.lu.analyze");
    result.solutions[i] = mathx::SparseLu<Cplx>(a).solve(b);
  });
  return result;
}

}  // namespace rfmix::spice
