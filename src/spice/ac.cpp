#include "spice/ac.hpp"

#include <cmath>

#include "mathx/lu.hpp"
#include "mathx/units.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "spice/mna.hpp"

namespace rfmix::spice {

std::vector<double> log_space(double f_start, double f_stop, int points) {
  std::vector<double> f;
  f.reserve(static_cast<std::size_t>(points));
  if (points == 1) {
    f.push_back(f_start);
    return f;
  }
  const double l0 = std::log10(f_start);
  const double l1 = std::log10(f_stop);
  for (int i = 0; i < points; ++i)
    f.push_back(std::pow(10.0, l0 + (l1 - l0) * i / (points - 1)));
  return f;
}

std::vector<double> lin_space(double f_start, double f_stop, int points) {
  std::vector<double> f;
  f.reserve(static_cast<std::size_t>(points));
  if (points == 1) {
    f.push_back(f_start);
    return f;
  }
  for (int i = 0; i < points; ++i)
    f.push_back(f_start + (f_stop - f_start) * i / (points - 1));
  return f;
}

AcResult ac_sweep(Circuit& ckt, const Solution& op, const std::vector<double>& freqs_hz,
                  double gmin) {
  RFMIX_OBS_SCOPED_TIMER("spice.ac");
  RFMIX_OBS_TRACE_SCOPE("spice.ac");
  RFMIX_OBS_COUNT_N("spice.ac.points", freqs_hz.size());
  const MnaLayout layout = ckt.finalize();
  const std::size_t n = static_cast<std::size_t>(layout.size());

  AcResult result;
  result.freqs_hz = freqs_hz;
  result.layout = layout;
  result.solutions.resize(freqs_hz.size());

  // Frequency points are independent: stamping is const on the finalized
  // circuit, and each point writes only its own solution slot, so the
  // parallel run is bit-identical to the serial loop.
  const Circuit& stamped = ckt;
  runtime::parallel_for(0, freqs_hz.size(), [&](std::size_t i) {
    const double omega = mathx::kTwoPi * freqs_hz[i];
    mathx::TripletMatrix<std::complex<double>> y(n, n);
    mathx::VectorC b(n, std::complex<double>{});
    assemble_ac(stamped, op, omega, gmin, y, b);
    RFMIX_OBS_COUNT("spice.lu.factorizations");
    result.solutions[i] =
        mathx::LuFactorization<std::complex<double>>(y.to_dense()).solve(b);
  });
  return result;
}

}  // namespace rfmix::spice
