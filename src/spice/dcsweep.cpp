#include "spice/dcsweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "spice/solver.hpp"

namespace rfmix::spice {

namespace {

/// Solve sweep points [i0, i1) on `ckt`, warm-starting within the range
/// from a cold first point, writing each result into its fixed slot. This
/// is the unit of work both overloads share: identical inputs produce
/// identical solutions whether ranges run in sequence or concurrently.
void sweep_range(Circuit& ckt, VoltageSource& source, double start, double stop,
                 int points, const OpOptions& opts, int i0, int i1,
                 DcSweepResult& result) {
  const MnaLayout layout = ckt.finalize();
  StampParams params;
  params.mode = AnalysisMode::kDc;

  // One session per chunk: chunk boundaries are fixed by kDcSweepChunk, so
  // the analyze/refactor counter totals are identical at any thread count.
  SolverSession session;

  Solution guess = Solution::zeros(layout);
  for (int i = i0; i < i1; ++i) {
    RFMIX_OBS_COUNT("spice.dcsweep.points");
    const double v = start + (stop - start) * i / (points - 1);
    source.set_waveform(Waveform::dc(v));
    NewtonResult nr = solve_newton(ckt, guess, params, opts.newton, &session);
    if (!nr.converged) {
      // Cold restart through the full homotopy machinery.
      try {
        nr.solution = dc_operating_point(ckt, opts, &session);
      } catch (const ConvergenceError&) {
        throw ConvergenceError("dc_sweep: no convergence at value " + std::to_string(v));
      }
    }
    guess = nr.solution;
    result.values[static_cast<std::size_t>(i)] = v;
    result.solutions[static_cast<std::size_t>(i)] = std::move(nr.solution);
  }
}

DcSweepResult make_result(int points) {
  if (points < 2) throw std::invalid_argument("dc_sweep: need at least 2 points");
  DcSweepResult result;
  result.values.resize(static_cast<std::size_t>(points));
  result.solutions.resize(static_cast<std::size_t>(points));
  return result;
}

}  // namespace

DcSweepResult dc_sweep(Circuit& ckt, VoltageSource& source, double start, double stop,
                       int points, const OpOptions& opts) {
  RFMIX_OBS_SCOPED_TIMER("spice.dcsweep");
  RFMIX_OBS_TRACE_SCOPE("spice.dcsweep");
  DcSweepResult result = make_result(points);
  const Waveform saved = source.waveform();
  try {
    for (int i0 = 0; i0 < points; i0 += kDcSweepChunk)
      sweep_range(ckt, source, start, stop, points, opts, i0,
                  std::min(points, i0 + kDcSweepChunk), result);
  } catch (...) {
    source.set_waveform(saved);
    throw;
  }
  source.set_waveform(saved);
  return result;
}

DcSweepResult dc_sweep(const DcSweepFactory& make, double start, double stop,
                       int points, const OpOptions& opts) {
  RFMIX_OBS_SCOPED_TIMER("spice.dcsweep");
  RFMIX_OBS_TRACE_SCOPE("spice.dcsweep");
  DcSweepResult result = make_result(points);
  const int chunks = (points + kDcSweepChunk - 1) / kDcSweepChunk;
  runtime::parallel_for(0, static_cast<std::size_t>(chunks), [&](std::size_t c) {
    DcSweepInstance inst = make();
    if (!inst.circuit || inst.source == nullptr)
      throw std::invalid_argument("dc_sweep: factory must supply a circuit and its source");
    const int i0 = static_cast<int>(c) * kDcSweepChunk;
    sweep_range(*inst.circuit, *inst.source, start, stop, points, opts, i0,
                std::min(points, i0 + kDcSweepChunk), result);
  });
  return result;
}

}  // namespace rfmix::spice
