#include "spice/dcsweep.hpp"

#include <stdexcept>

namespace rfmix::spice {

DcSweepResult dc_sweep(Circuit& ckt, VoltageSource& source, double start, double stop,
                       int points, const OpOptions& opts) {
  if (points < 2) throw std::invalid_argument("dc_sweep: need at least 2 points");
  const Waveform saved = source.waveform();

  DcSweepResult result;
  result.values.reserve(static_cast<std::size_t>(points));
  result.solutions.reserve(static_cast<std::size_t>(points));

  const MnaLayout layout = ckt.finalize();
  StampParams params;
  params.mode = AnalysisMode::kDc;

  Solution guess = Solution::zeros(layout);
  bool have_guess = false;
  for (int i = 0; i < points; ++i) {
    const double v = start + (stop - start) * i / (points - 1);
    source.set_waveform(Waveform::dc(v));
    NewtonResult nr = solve_newton(ckt, guess, params, opts.newton);
    if (!nr.converged) {
      // Cold restart through the full homotopy machinery.
      try {
        nr.solution = dc_operating_point(ckt, opts);
        nr.converged = true;
      } catch (const ConvergenceError&) {
        source.set_waveform(saved);
        throw ConvergenceError("dc_sweep: no convergence at value " + std::to_string(v));
      }
    }
    guess = nr.solution;
    have_guess = true;
    result.values.push_back(v);
    result.solutions.push_back(nr.solution);
  }
  (void)have_guess;
  source.set_waveform(saved);
  return result;
}

}  // namespace rfmix::spice
