// Monte-Carlo device mismatch and process corners for the tech65 models.
//
// Mismatch follows the Pelgrom model: threshold and current-factor
// mismatch standard deviations scale with 1/sqrt(W*L). This is what turns
// the idealized "perfectly balanced" differential circuits into realistic
// ones — critically, IIP2 of a double-balanced mixer is mismatch-limited,
// so the paper's "IIP2 > 65 dBm" claim can only be stress-tested with this
// machinery (see bench_iip2_mismatch).
#pragma once

#include <cstdint>
#include <vector>

#include "mathx/rng.hpp"
#include "runtime/parallel_for.hpp"
#include "spice/mosfet.hpp"

namespace rfmix::spice::tech65 {

/// Pelgrom matching coefficients for the 65 nm-class process.
struct MismatchSpec {
  double avt = 3.5e-9;   // threshold mismatch coefficient [V*m] (3.5 mV*um)
  double akp = 0.01e-6;  // relative current-factor mismatch [m] (1 %*um)
};

/// Draw a mismatched copy of `nominal`: vto and kp get independent normal
/// perturbations with sigma = A/sqrt(W*L).
inline MosParams with_mismatch(const MosParams& nominal, mathx::Rng& rng,
                               const MismatchSpec& spec = {}) {
  MosParams p = nominal;
  const double sqrt_area = std::sqrt(p.w * p.l);
  const double sigma_vt = spec.avt / sqrt_area;
  const double sigma_kp_rel = spec.akp / sqrt_area;
  p.vto += rng.normal() * sigma_vt;
  p.kp *= 1.0 + rng.normal() * sigma_kp_rel;
  return p;
}

/// Process corners: global (fully correlated) shifts of both device types.
enum class Corner { kTT, kSS, kFF, kSF, kFS };

inline const char* corner_name(Corner c) {
  switch (c) {
    case Corner::kTT: return "TT";
    case Corner::kSS: return "SS";
    case Corner::kFF: return "FF";
    case Corner::kSF: return "SF";
    case Corner::kFS: return "FS";
  }
  return "?";
}

/// Apply a corner to a nominal parameter set. Slow: +8% |vto|, -12% kp;
/// fast: -8% |vto|, +12% kp. SF = slow NMOS / fast PMOS, FS the reverse.
inline MosParams at_corner(const MosParams& nominal, Corner corner) {
  MosParams p = nominal;
  auto slow = [&] {
    p.vto += 0.028;
    p.kp *= 0.88;
  };
  auto fast = [&] {
    p.vto -= 0.028;
    p.kp *= 1.12;
  };
  const bool is_nmos = p.type == MosType::kNmos;
  switch (corner) {
    case Corner::kTT: break;
    case Corner::kSS: slow(); break;
    case Corner::kFF: fast(); break;
    case Corner::kSF: is_nmos ? slow() : fast(); break;
    case Corner::kFS: is_nmos ? fast() : slow(); break;
  }
  return p;
}

/// Deterministic parallel Monte-Carlo driver. Trial i computes
/// fn(i, rng_i) with rng_i = Rng(seed).fork(i): every trial owns an
/// independent counter-derived stream and writes one fixed output slot, so
/// the returned vector is bit-identical for any thread count or schedule
/// (the contract tests/runtime/test_determinism.cpp enforces). `fn` must
/// not share mutable state across trials — build a fresh circuit inside.
template <typename Fn>
auto monte_carlo_trials(int n_trials, std::uint64_t seed, Fn&& fn)
    -> std::vector<decltype(fn(0, std::declval<mathx::Rng&>()))> {
  const mathx::Rng base(seed);
  return runtime::parallel_map(
      static_cast<std::size_t>(n_trials < 0 ? 0 : n_trials), [&](std::size_t i) {
        mathx::Rng rng = base.fork(i);
        return fn(static_cast<int>(i), rng);
      });
}

}  // namespace rfmix::spice::tech65
