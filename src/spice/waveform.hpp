// Source waveforms: DC, sine, multi-tone, pulse and piecewise-linear.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <variant>
#include <vector>

#include "mathx/units.hpp"

namespace rfmix::spice {

struct DcWave {
  double value = 0.0;
};

struct SineWave {
  double offset = 0.0;
  double amplitude = 0.0;
  double freq_hz = 0.0;
  double phase_rad = 0.0;
  double delay_s = 0.0;
};

/// Sum of sines on a common DC offset — the natural RF two-tone stimulus.
struct MultiToneWave {
  struct Tone {
    double amplitude = 0.0;
    double freq_hz = 0.0;
    double phase_rad = 0.0;
  };
  double offset = 0.0;
  std::vector<Tone> tones;
};

struct PulseWave {
  double v1 = 0.0;       // initial value
  double v2 = 0.0;       // pulsed value
  double delay_s = 0.0;
  double rise_s = 1e-12;
  double fall_s = 1e-12;
  double width_s = 0.0;  // time at v2
  double period_s = 0.0; // 0 = single pulse
};

struct PwlWave {
  std::vector<std::pair<double, double>> points;  // (time, value), increasing time
};

class Waveform {
 public:
  Waveform() : w_(DcWave{}) {}
  Waveform(DcWave w) : w_(w) {}                       // NOLINT implicit by design
  Waveform(SineWave w) : w_(w) {}                     // NOLINT
  Waveform(MultiToneWave w) : w_(std::move(w)) {}     // NOLINT
  Waveform(PulseWave w) : w_(w) {}                    // NOLINT
  Waveform(PwlWave w) : w_(std::move(w)) {}           // NOLINT

  static Waveform dc(double v) { return Waveform(DcWave{v}); }
  static Waveform sine(double amplitude, double freq_hz, double offset = 0.0,
                       double phase_rad = 0.0, double delay_s = 0.0) {
    return Waveform(SineWave{offset, amplitude, freq_hz, phase_rad, delay_s});
  }

  double value(double t) const {
    return std::visit([t](const auto& w) { return eval(w, t); }, w_);
  }

  /// Value used by the DC operating point (time-zero / average level).
  double dc_value() const {
    return std::visit([](const auto& w) { return dc_of(w); }, w_);
  }

  /// Append a canonical encoding (type tag + every parameter that shapes
  /// value()/dc_value()) for content-addressed hashing. Field order is part
  /// of the persisted cache-key format — append only.
  void describe(std::vector<std::pair<std::string, std::string>>& text,
                std::vector<std::pair<std::string, double>>& params) const {
    std::visit([&](const auto& w) { describe_of(w, text, params); }, w_);
  }

 private:
  using TextFields = std::vector<std::pair<std::string, std::string>>;
  using NumFields = std::vector<std::pair<std::string, double>>;

  static void describe_of(const DcWave& w, TextFields& text, NumFields& params) {
    text.emplace_back("wave", "dc");
    params.emplace_back("v", w.value);
  }
  static void describe_of(const SineWave& w, TextFields& text, NumFields& params) {
    text.emplace_back("wave", "sine");
    params.emplace_back("off", w.offset);
    params.emplace_back("amp", w.amplitude);
    params.emplace_back("freq", w.freq_hz);
    params.emplace_back("phase", w.phase_rad);
    params.emplace_back("delay", w.delay_s);
  }
  static void describe_of(const MultiToneWave& w, TextFields& text, NumFields& params) {
    text.emplace_back("wave", "multitone");
    params.emplace_back("off", w.offset);
    for (std::size_t i = 0; i < w.tones.size(); ++i) {
      const std::string tag = "t" + std::to_string(i) + ".";
      params.emplace_back(tag + "amp", w.tones[i].amplitude);
      params.emplace_back(tag + "freq", w.tones[i].freq_hz);
      params.emplace_back(tag + "phase", w.tones[i].phase_rad);
    }
  }
  static void describe_of(const PulseWave& w, TextFields& text, NumFields& params) {
    text.emplace_back("wave", "pulse");
    params.emplace_back("v1", w.v1);
    params.emplace_back("v2", w.v2);
    params.emplace_back("delay", w.delay_s);
    params.emplace_back("rise", w.rise_s);
    params.emplace_back("fall", w.fall_s);
    params.emplace_back("width", w.width_s);
    params.emplace_back("period", w.period_s);
  }
  static void describe_of(const PwlWave& w, TextFields& text, NumFields& params) {
    text.emplace_back("wave", "pwl");
    for (std::size_t i = 0; i < w.points.size(); ++i) {
      const std::string tag = "p" + std::to_string(i) + ".";
      params.emplace_back(tag + "t", w.points[i].first);
      params.emplace_back(tag + "v", w.points[i].second);
    }
  }
  static double eval(const DcWave& w, double) { return w.value; }

  static double eval(const SineWave& w, double t) {
    if (t < w.delay_s) return w.offset + w.amplitude * std::sin(w.phase_rad);
    return w.offset +
           w.amplitude *
               std::sin(mathx::kTwoPi * w.freq_hz * (t - w.delay_s) + w.phase_rad);
  }

  static double eval(const MultiToneWave& w, double t) {
    double v = w.offset;
    for (const auto& tone : w.tones)
      v += tone.amplitude * std::sin(mathx::kTwoPi * tone.freq_hz * t + tone.phase_rad);
    return v;
  }

  static double eval(const PulseWave& w, double t) {
    if (t < w.delay_s) return w.v1;
    double tl = t - w.delay_s;
    if (w.period_s > 0.0) tl = std::fmod(tl, w.period_s);
    if (tl < w.rise_s) return w.v1 + (w.v2 - w.v1) * tl / w.rise_s;
    tl -= w.rise_s;
    if (tl < w.width_s) return w.v2;
    tl -= w.width_s;
    if (tl < w.fall_s) return w.v2 + (w.v1 - w.v2) * tl / w.fall_s;
    return w.v1;
  }

  static double eval(const PwlWave& w, double t) {
    if (w.points.empty()) return 0.0;
    if (t <= w.points.front().first) return w.points.front().second;
    if (t >= w.points.back().first) return w.points.back().second;
    for (std::size_t i = 1; i < w.points.size(); ++i) {
      if (t <= w.points[i].first) {
        const auto& [t0, v0] = w.points[i - 1];
        const auto& [t1, v1] = w.points[i];
        if (t1 == t0) return v1;
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
      }
    }
    return w.points.back().second;
  }

  static double dc_of(const DcWave& w) { return w.value; }
  static double dc_of(const SineWave& w) { return w.offset; }
  static double dc_of(const MultiToneWave& w) { return w.offset; }
  static double dc_of(const PulseWave& w) { return w.v1; }
  static double dc_of(const PwlWave& w) {
    return w.points.empty() ? 0.0 : w.points.front().second;
  }

  std::variant<DcWave, SineWave, MultiToneWave, PulseWave, PwlWave> w_;
};

}  // namespace rfmix::spice
