// Text netlist parser for a compact SPICE dialect.
//
// Supported cards (case-insensitive, '*' comments, engineering suffixes
// f p n u m k meg g t on every number):
//   Rname  n+ n-  value
//   Cname  n+ n-  value
//   Lname  n+ n-  value
//   Vname  n+ n-  [DC v] [SIN(off amp freq [phase_deg [delay]])] [AC mag [phase_deg]]
//   Iname  n+ n-  (same source syntax)
//   Dname  a  c   [IS=.. N=..]
//   Mname  d g s b NMOS|PMOS [W=..] [L=..]
//   Ename  p m c d gain            (VCVS)
//   Gname  p m c d gm              (VCCS)
//   .end (optional)
//
// MOS devices use the tech65 parameter set for the named type.
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace rfmix::spice {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& what)
      : std::runtime_error("netlist line " + std::to_string(line) + ": " + what) {}
};

/// Parse engineering-notation number ("1.5k", "10u", "2meg"). Throws
/// std::invalid_argument on malformed input.
double parse_spice_number(const std::string& token);

/// Parse a netlist into a fresh Circuit.
Circuit parse_netlist(const std::string& text);

}  // namespace rfmix::spice
