// "umc65-like" technology parameter set.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): the paper used the proprietary UMC
// 65 nm RFCMOS PDK. These parameters are chosen from public 65 nm-class
// characteristics: |VTH| ~ 0.35 V, mu_n*Cox ~ 400 uA/V^2, mu_p*Cox ~
// 150 uA/V^2, Cox ~ 15 fF/um^2, 1.2 V nominal supply. Mixer-level behaviour
// depends on gm, Ron, and parasitic capacitance ratios, which these values
// reproduce.
#pragma once

#include "spice/mosfet.hpp"

namespace rfmix::spice::tech65 {

inline constexpr double kVdd = 1.2;       // nominal supply [V]
inline constexpr double kLmin = 65e-9;    // minimum channel length [m]

/// NMOS parameters for a device of the given geometry.
inline MosParams nmos(double w, double l = kLmin) {
  MosParams p;
  p.type = MosType::kNmos;
  p.level = MosModelLevel::kEkv;
  p.w = w;
  p.l = l;
  p.vto = 0.35;
  p.kp = 400e-6;
  p.n_slope = 1.35;
  // Channel-length modulation worsens at short L; normalize to 1/V at
  // 4x minimum length.
  p.lambda = 0.15 * (4.0 * kLmin / l) * 0.25 + 0.05;
  p.cox = 1.5e-2;
  p.cov = 3e-10;
  p.cj_sd = 8e-10;
  p.noise_gamma = 1.0;   // short-channel excess noise
  // Chosen to place the 1/f corner of a typical RF-sized device (tens of um
  // wide, minimum length, gm of a few mS) around 1 MHz, consistent with
  // published 65 nm data.
  p.kf = 3e-26;
  p.af = 1.0;
  return p;
}

/// PMOS parameters for a device of the given geometry.
inline MosParams pmos(double w, double l = kLmin) {
  MosParams p = nmos(w, l);
  p.type = MosType::kPmos;
  p.vto = 0.35;
  p.kp = 150e-6;
  p.kf = 8e-27;  // PMOS flicker is typically a few times lower
  return p;
}

}  // namespace rfmix::spice::tech65
