#include "spice/noise.hpp"

#include <cmath>

#include "mathx/lu.hpp"
#include "mathx/units.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "spice/mna.hpp"
#include "spice/solver.hpp"

namespace rfmix::spice {

double NoiseResult::output_density(std::size_t i) const {
  return std::sqrt(points.at(i).total_output_psd_v2_hz);
}

double NoiseResult::contribution_psd(std::size_t i, const std::string& substr) const {
  double s = 0.0;
  for (const auto& c : points.at(i).contributions)
    if (c.label.find(substr) != std::string::npos) s += c.output_psd_v2_hz;
  return s;
}

NoiseResult noise_analysis(Circuit& ckt, const Solution& op, NodeId out_p, NodeId out_m,
                           const std::vector<double>& freqs_hz, double gmin) {
  RFMIX_OBS_SCOPED_TIMER("spice.noise");
  RFMIX_OBS_TRACE_SCOPE("spice.noise");
  RFMIX_OBS_COUNT_N("spice.noise.points", freqs_hz.size());
  const MnaLayout layout = ckt.finalize();
  const std::size_t n = static_cast<std::size_t>(layout.size());

  // Collect noise sources once; PSDs are functions of frequency.
  std::vector<NoiseSource> sources;
  for (const auto& dev : ckt.devices()) dev->append_noise(sources, op);

  NoiseResult result;
  result.points.resize(freqs_hz.size());
  if (freqs_hz.empty()) return result;

  using Cplx = std::complex<double>;
  auto assemble = [&](std::size_t fi, mathx::TripletMatrix<Cplx>& y) {
    mathx::VectorC b_unused(n, Cplx{});
    assemble_ac(ckt, op, mathx::kTwoPi * freqs_hz[fi], gmin, y, b_unused);
  };
  auto output_selector = [&]() {
    mathx::VectorC e(n, Cplx{});
    const int up = layout.node_unknown(out_p);
    const int um = layout.node_unknown(out_m);
    if (up >= 0) e[static_cast<std::size_t>(up)] += 1.0;
    if (um >= 0) e[static_cast<std::size_t>(um)] -= 1.0;
    return e;
  };

  // Analyze-once/refactor-per-point, mirroring ac_sweep: in reuse mode the
  // first point pins the stamp map and symbolic serially, every other point
  // refactors in parallel (private fallback on disagreement). In classic
  // mode every point analyzes.
  const bool reuse = solver_mode() == SolverMode::kReuse;
  mathx::TripletCscMap<Cplx> map;
  mathx::SparseLuSymbolic<Cplx> sym;
  // Adjoint solve at point fi: yv = Y^{-T} e_out.
  auto adjoint_at = [&](std::size_t fi, bool primed) {
    mathx::TripletMatrix<Cplx> y(n, n);
    assemble(fi, y);
    RFMIX_OBS_COUNT("spice.lu.factorizations");
    mathx::CscMatrix<Cplx> a;
    if (!primed) {
      if (reuse) {
        map.build(y);
        map.fill(y, a);
        RFMIX_OBS_COUNT("spice.lu.analyze");
        return mathx::SparseLu<Cplx>(a, sym).solve_transposed(output_selector());
      }
      RFMIX_OBS_COUNT("spice.lu.analyze");
      return mathx::SparseLu<Cplx>(mathx::CscMatrix<Cplx>(y)).solve_transposed(output_selector());
    }
    if (map.matches(y)) {
      map.fill(y, a);
      mathx::SparseLu<Cplx> lu;
      if (lu.refactor_from(sym, a)) {
        RFMIX_OBS_COUNT("spice.lu.refactor");
        return lu.solve_transposed(output_selector());
      }
    } else {
      a = mathx::CscMatrix<Cplx>(y);
    }
    RFMIX_OBS_COUNT("spice.lu.fallback");
    RFMIX_OBS_COUNT("spice.lu.analyze");
    return mathx::SparseLu<Cplx>(a).solve_transposed(output_selector());
  };

  // Each frequency point assembles and solves independently (stamping and
  // the source PSD callbacks are const), so points run concurrently and
  // land in fixed slots — bit-identical to the serial loop.
  auto solve_point = [&](std::size_t fi, bool primed) {
    const double f = freqs_hz[fi];
    const mathx::VectorC yv = adjoint_at(fi, primed);

    NoisePoint point;
    point.freq_hz = f;
    for (const auto& src : sources) {
      const int sp = layout.node_unknown(src.p);
      const int sm = layout.node_unknown(src.m);
      std::complex<double> transfer{};
      // A unit current injected from src.p to src.m through the source
      // enters node m and leaves node p: rhs contribution (-1 at p, +1 at m).
      if (sp >= 0) transfer -= yv[static_cast<std::size_t>(sp)];
      if (sm >= 0) transfer += yv[static_cast<std::size_t>(sm)];
      const double t2 = std::norm(transfer);
      const double psd = src.psd(f) * t2;
      point.total_output_psd_v2_hz += psd;
      point.contributions.push_back(NoiseContribution{src.label, psd});
    }
    result.points[fi] = std::move(point);
  };

  if (reuse) {
    solve_point(0, false);
    runtime::parallel_for(1, freqs_hz.size(), [&](std::size_t fi) { solve_point(fi, true); });
  } else {
    runtime::parallel_for(0, freqs_hz.size(), [&](std::size_t fi) { solve_point(fi, false); });
  }
  return result;
}

}  // namespace rfmix::spice
