#include "spice/twoport.hpp"

#include <cmath>

#include "mathx/units.hpp"
#include "spice/ac.hpp"
#include "spice/devices_sources.hpp"
#include "spice/op.hpp"

namespace rfmix::spice {

double TwoPortResult::s_db(std::size_t i, std::size_t j, std::size_t point) const {
  return mathx::db_from_voltage_ratio(std::abs(points.at(point).s[i][j]));
}

TwoPortResult measure_two_port(Circuit& ckt, const Solution& op, PortSpec port1,
                               PortSpec port2, const std::vector<double>& freqs_hz) {
  // Injection sources (magnitude set per solve). Current from m to p drives
  // the port positively.
  auto& inj1 = ckt.add<CurrentSource>("_twoport_inj1", port1.m, port1.p,
                                      Waveform::dc(0.0));
  auto& inj2 = ckt.add<CurrentSource>("_twoport_inj2", port2.m, port2.p,
                                      Waveform::dc(0.0));
  // The extra devices change the layout; the operating point must be
  // re-expressed in it. Zero-current sources don't alter the DC solution,
  // so re-solving is cheap and exact — but we only have the old Solution.
  // Simplest correct path: the caller's op was computed on the same circuit
  // *before* these sources existed, so recompute here.
  const Solution op2 = dc_operating_point(ckt);
  (void)op;

  TwoPortResult result;
  result.points.reserve(freqs_hz.size());

  for (const double f : freqs_hz) {
    TwoPortPoint pt;
    pt.freq_hz = f;
    // Column j of Z: inject at port j, read both ports.
    for (int j = 0; j < 2; ++j) {
      inj1.set_ac(j == 0 ? 1.0 : 0.0);
      inj2.set_ac(j == 1 ? 1.0 : 0.0);
      const AcResult ac = ac_sweep(ckt, op2, {f});
      pt.z[0][static_cast<std::size_t>(j)] = ac.vd(0, port1.p, port1.m);
      pt.z[1][static_cast<std::size_t>(j)] = ac.vd(0, port2.p, port2.m);
    }
    inj1.set_ac(0.0);
    inj2.set_ac(0.0);

    // S = (Z - Z0)(Z + Z0)^{-1}, Z0 = diag(z01, z02). With the customary
    // normalization for unequal reference impedances:
    //   S = R^{-1/2} (Z - Z0)(Z + Z0)^{-1} R^{1/2},  R = diag(z01, z02).
    using C = std::complex<double>;
    const double r1 = port1.z0, r2 = port2.z0;
    const C zp[2][2] = {{pt.z[0][0] + r1, pt.z[0][1]}, {pt.z[1][0], pt.z[1][1] + r2}};
    const C zm[2][2] = {{pt.z[0][0] - r1, pt.z[0][1]}, {pt.z[1][0], pt.z[1][1] - r2}};
    const C det = zp[0][0] * zp[1][1] - zp[0][1] * zp[1][0];
    const C inv[2][2] = {{zp[1][1] / det, -zp[0][1] / det},
                         {-zp[1][0] / det, zp[0][0] / det}};
    C s_raw[2][2];
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j)
        s_raw[i][j] = zm[i][0] * inv[0][j] + zm[i][1] * inv[1][j];
    const double sr1 = std::sqrt(r1), sr2 = std::sqrt(r2);
    const double rs[2] = {sr1, sr2};
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 2; ++j)
        pt.s[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            s_raw[i][j] * rs[j] / rs[i];
    result.points.push_back(pt);
  }
  return result;
}

}  // namespace rfmix::spice
