// Linear passive devices: resistor, capacitor, inductor, and an ideal
// voltage-controlled switch.
#pragma once

#include <cmath>
#include <stdexcept>

#include "mathx/units.hpp"
#include "spice/device.hpp"

namespace rfmix::spice {

class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId p, NodeId m, double ohms, double temperature_k = mathx::kT0)
      : Device(std::move(name)), p_(p), m_(m), ohms_(ohms), temp_(temperature_k) {
    if (!(ohms > 0.0)) throw std::invalid_argument("Resistor requires positive resistance");
  }

  NodeId p() const { return p_; }
  NodeId m() const { return m_; }
  double resistance() const { return ohms_; }
  void set_resistance(double ohms) {
    if (!(ohms > 0.0)) throw std::invalid_argument("Resistor requires positive resistance");
    ohms_ = ohms;
  }

  void stamp(RealStamper& s, const Solution&, const StampParams&) const override {
    s.add_conductance(p_, m_, 1.0 / ohms_);
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double) const override {
    s.add_admittance(p_, m_, 1.0 / ohms_);
  }

  void append_noise(std::vector<NoiseSource>& out, const Solution&) const override {
    const double psd = 4.0 * mathx::kBoltzmann * temp_ / ohms_;  // A^2/Hz
    out.push_back(NoiseSource{p_, m_, [psd](double) { return psd; }, name() + ".thermal"});
  }

  double dissipated_power(const Solution& op) const override {
    const double v = op.vd(p_, m_);
    return v * v / ohms_;
  }

  DeviceDesc describe() const override {
    return {"resistor", {p_, m_}, {{"r", ohms_}, {"temp", temp_}}, {}};
  }

 private:
  NodeId p_, m_;
  double ohms_;
  double temp_;
};

class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId p, NodeId m, double farads)
      : Device(std::move(name)), p_(p), m_(m), farads_(farads) {
    if (!(farads >= 0.0)) throw std::invalid_argument("Capacitor requires non-negative value");
  }

  double capacitance() const { return farads_; }
  void set_capacitance(double farads) { farads_ = farads; }

  void stamp(RealStamper& s, const Solution&, const StampParams& p) const override {
    if (p.mode == AnalysisMode::kDc || farads_ == 0.0) return;  // open in DC
    if (p.integrator == Integrator::kBackwardEuler) {
      const double geq = farads_ / p.dt;
      s.add_conductance(p_, m_, geq);
      s.add_device_current(p_, m_, -geq * v_prev_);
    } else {
      const double geq = 2.0 * farads_ / p.dt;
      s.add_conductance(p_, m_, geq);
      s.add_device_current(p_, m_, -geq * v_prev_ - i_prev_);
    }
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double omega) const override {
    s.add_admittance(p_, m_, std::complex<double>(0.0, omega * farads_));
  }

  void tran_begin(const Solution& op) override {
    v_prev_ = op.vd(p_, m_);
    i_prev_ = 0.0;
  }

  void tran_accept(const Solution& x, const StampParams& p) override {
    const double v = x.vd(p_, m_);
    // Update the branch current consistent with the companion model that the
    // accepted step actually used.
    if (p.integrator == Integrator::kBackwardEuler) {
      i_prev_ = farads_ / p.dt * (v - v_prev_);
    } else {
      i_prev_ = 2.0 * farads_ / p.dt * (v - v_prev_) - i_prev_;
    }
    v_prev_ = v;
  }

  DeviceDesc describe() const override {
    return {"capacitor", {p_, m_}, {{"c", farads_}}, {}};
  }

 private:
  NodeId p_, m_;
  double farads_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

class Inductor : public Device {
 public:
  Inductor(std::string name, NodeId p, NodeId m, double henries)
      : Device(std::move(name)), p_(p), m_(m), henries_(henries) {
    if (!(henries > 0.0)) throw std::invalid_argument("Inductor requires positive value");
  }

  int num_branches() const override { return 1; }

  void stamp(RealStamper& s, const Solution&, const StampParams& p) const override {
    const int b = branch_base();
    s.add_branch_incidence(p_, m_, b);
    const int ub = s.layout().branch_unknown(b);
    if (p.mode == AnalysisMode::kDc) {
      // Branch row reads v_p - v_m = 0 (short) — nothing more to add.
      return;
    }
    if (p.integrator == Integrator::kBackwardEuler) {
      const double r = henries_ / p.dt;
      s.add_entry(ub, ub, -r);
      s.add_rhs(ub, -r * i_prev_);
    } else {
      const double r = 2.0 * henries_ / p.dt;
      s.add_entry(ub, ub, -r);
      s.add_rhs(ub, -r * i_prev_ - v_prev_);
    }
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double omega) const override {
    const int b = branch_base();
    s.add_branch_incidence(p_, m_, b);
    const int ub = s.layout().branch_unknown(b);
    s.add_entry(ub, ub, std::complex<double>(0.0, -omega * henries_));
  }

  void tran_begin(const Solution& op) override {
    i_prev_ = op.branch_current(branch_base());
    v_prev_ = op.vd(p_, m_);
  }

  void tran_accept(const Solution& x, const StampParams&) override {
    i_prev_ = x.branch_current(branch_base());
    v_prev_ = x.vd(p_, m_);
  }

  DeviceDesc describe() const override {
    return {"inductor", {p_, m_}, {{"l", henries_}}, {}};
  }

 private:
  NodeId p_, m_;
  double henries_;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

/// Ideal voltage-controlled switch: conductance g_on when v(c)-v(d) exceeds
/// the threshold, g_off otherwise. Deliberately memoryless (no hysteresis) —
/// intended for behavioral experiments and tests, not for convergence-critical
/// paths (use MOS switches there).
class IdealSwitch : public Device {
 public:
  IdealSwitch(std::string name, NodeId p, NodeId m, NodeId c, NodeId d,
              double threshold_v, double r_on, double r_off)
      : Device(std::move(name)), p_(p), m_(m), c_(c), d_(d), vth_(threshold_v),
        g_on_(1.0 / r_on), g_off_(1.0 / r_off) {}

  void stamp(RealStamper& s, const Solution& x, const StampParams&) const override {
    // The control dependence is intentionally not linearized (derivative is
    // zero almost everywhere); the switch state is frozen per NR iteration.
    const double g = x.vd(c_, d_) > vth_ ? g_on_ : g_off_;
    s.add_conductance(p_, m_, g);
  }

  void stamp_ac(ComplexStamper& s, const Solution& op, double) const override {
    const double g = op.vd(c_, d_) > vth_ ? g_on_ : g_off_;
    s.add_admittance(p_, m_, g);
  }

  void append_noise(std::vector<NoiseSource>& out, const Solution& op) const override {
    const double g = op.vd(c_, d_) > vth_ ? g_on_ : g_off_;
    const double psd = 4.0 * mathx::kBoltzmann * mathx::kT0 * g;
    out.push_back(NoiseSource{p_, m_, [psd](double) { return psd; }, name() + ".thermal"});
  }

  DeviceDesc describe() const override {
    return {"switch",
            {p_, m_, c_, d_},
            {{"vth", vth_}, {"gon", g_on_}, {"goff", g_off_}},
            {}};
  }

 private:
  NodeId p_, m_, c_, d_;
  double vth_;
  double g_on_, g_off_;
};

}  // namespace rfmix::spice
