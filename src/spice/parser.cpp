#include "spice/parser.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "mathx/units.hpp"
#include "spice/devices_diode.hpp"
#include "spice/devices_magnetics.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/mosfet.hpp"
#include "spice/tech65.hpp"
#include "spice/waveform.hpp"

namespace rfmix::spice {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Split a line into tokens; '(' ')' ',' become separate tokens and '=' is
/// isolated so key=value pairs tokenize as {key, "=", value}.
std::vector<std::string> tokenize(const std::string& line) {
  std::string norm;
  norm.reserve(line.size() + 8);
  for (const char c : line) {
    if (c == '(' || c == ')' || c == ',' || c == '=') {
      norm.push_back(' ');
      if (c == '=') norm.push_back('=');
      if (c == '=') norm.push_back(' ');
      if (c == '(') norm.push_back('(');
      if (c == '(') norm.push_back(' ');
      if (c == ')') norm.push_back(')');
      if (c == ')') norm.push_back(' ');
    } else {
      norm.push_back(c);
    }
  }
  std::vector<std::string> tokens;
  std::istringstream iss(norm);
  std::string tok;
  while (iss >> tok) tokens.push_back(to_lower(tok));
  return tokens;
}

}  // namespace

double parse_spice_number(const std::string& token) {
  std::size_t pos = 0;
  double base = 0.0;
  try {
    base = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed number: '" + token + "'");
  }
  std::string suffix = to_lower(token.substr(pos));
  // Trailing unit letters after the scale (e.g. "10uF") are ignored, as in
  // SPICE.
  double scale = 1.0;
  if (suffix.rfind("meg", 0) == 0) {
    scale = 1e6;
  } else if (!suffix.empty()) {
    switch (suffix[0]) {
      case 'f': scale = 1e-15; break;
      case 'p': scale = 1e-12; break;
      case 'n': scale = 1e-9; break;
      case 'u': scale = 1e-6; break;
      case 'm': scale = 1e-3; break;
      case 'k': scale = 1e3; break;
      case 'g': scale = 1e9; break;
      case 't': scale = 1e12; break;
      default: scale = 1.0; break;
    }
  }
  return base * scale;
}

namespace {

struct KeyValues {
  std::vector<std::pair<std::string, std::string>> kv;
  double get(const std::string& key, double fallback) const {
    for (const auto& [k, v] : kv)
      if (k == key) return parse_spice_number(v);
    return fallback;
  }
};

KeyValues extract_kv(const std::vector<std::string>& t, std::size_t from) {
  KeyValues out;
  for (std::size_t i = from; i + 2 < t.size() + 1; ++i) {
    if (i + 2 < t.size() && t[i + 1] == "=") out.kv.emplace_back(t[i], t[i + 2]);
  }
  return out;
}

/// Collect numeric arguments of a function-style token list: name ( a b c ).
std::vector<double> paren_args(const std::vector<std::string>& t, std::size_t& i,
                               int line_no, const char* what) {
  if (i >= t.size() || t[i] != "(")
    throw ParseError(line_no, std::string(what) + " must be followed by (");
  std::vector<double> args;
  std::size_t j = i + 1;
  while (j < t.size() && t[j] != ")") args.push_back(parse_spice_number(t[j++]));
  if (j >= t.size()) throw ParseError(line_no, std::string(what) + " missing )");
  i = j + 1;
  return args;
}

struct SourceSpec {
  Waveform wave = Waveform::dc(0.0);
  double ac_mag = 0.0;
  double ac_phase = 0.0;
};

SourceSpec parse_source(const std::vector<std::string>& t, std::size_t i, int line_no) {
  SourceSpec spec;
  bool have_wave = false;
  while (i < t.size()) {
    if (t[i] == "dc") {
      if (i + 1 >= t.size()) throw ParseError(line_no, "DC needs a value");
      spec.wave = Waveform::dc(parse_spice_number(t[i + 1]));
      have_wave = true;
      i += 2;
    } else if (t[i] == "sin") {
      ++i;
      const auto args = paren_args(t, i, line_no, "SIN");
      if (args.size() < 3) throw ParseError(line_no, "SIN needs offset amp freq");
      SineWave sw;
      sw.offset = args[0];
      sw.amplitude = args[1];
      sw.freq_hz = args[2];
      sw.phase_rad = args.size() > 3 ? args[3] * mathx::kPi / 180.0 : 0.0;
      sw.delay_s = args.size() > 4 ? args[4] : 0.0;
      spec.wave = Waveform(sw);
      have_wave = true;
    } else if (t[i] == "pulse") {
      ++i;
      const auto args = paren_args(t, i, line_no, "PULSE");
      if (args.size() < 2) throw ParseError(line_no, "PULSE needs v1 v2 ...");
      PulseWave pw;
      pw.v1 = args[0];
      pw.v2 = args[1];
      pw.delay_s = args.size() > 2 ? args[2] : 0.0;
      pw.rise_s = args.size() > 3 ? std::max(args[3], 1e-15) : 1e-12;
      pw.fall_s = args.size() > 4 ? std::max(args[4], 1e-15) : 1e-12;
      pw.width_s = args.size() > 5 ? args[5] : 0.0;
      pw.period_s = args.size() > 6 ? args[6] : 0.0;
      spec.wave = Waveform(pw);
      have_wave = true;
    } else if (t[i] == "pwl") {
      ++i;
      const auto args = paren_args(t, i, line_no, "PWL");
      if (args.size() < 2 || args.size() % 2 != 0)
        throw ParseError(line_no, "PWL needs t/v pairs");
      PwlWave pw;
      for (std::size_t k = 0; k + 1 < args.size(); k += 2)
        pw.points.emplace_back(args[k], args[k + 1]);
      spec.wave = Waveform(pw);
      have_wave = true;
    } else if (t[i] == "ac") {
      if (i + 1 >= t.size()) throw ParseError(line_no, "AC needs a magnitude");
      spec.ac_mag = parse_spice_number(t[i + 1]);
      i += 2;
      if (i < t.size()) {
        try {
          spec.ac_phase = parse_spice_number(t[i]) * mathx::kPi / 180.0;
          ++i;
        } catch (const std::exception&) {
          // Next token is not a number — leave it for the caller.
        }
      }
    } else if (!have_wave) {
      spec.wave = Waveform::dc(parse_spice_number(t[i]));  // bare value = DC
      have_wave = true;
      ++i;
    } else {
      ++i;
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Deck structure: tokenized cards, with .subckt bodies collected separately
// and expanded on X-card instantiation (flattening with hierarchical names).

struct Card {
  int line_no = 0;
  std::vector<std::string> tokens;
};

struct Subckt {
  std::vector<std::string> ports;
  std::vector<Card> cards;
};

class DeckBuilder {
 public:
  DeckBuilder(Circuit& ckt, const std::map<std::string, Subckt>& subckts)
      : ckt_(ckt), subckts_(subckts) {}

  void emit(const std::vector<Card>& cards, const std::map<std::string, std::string>& ports,
            const std::string& prefix, int depth) {
    if (depth > 20) throw ParseError(0, "subcircuit nesting too deep (recursion?)");
    for (const auto& card : cards) emit_card(card, ports, prefix, depth);
  }

 private:
  /// Map a node token through the port map / hierarchical prefix.
  NodeId node(const std::string& tok, const std::map<std::string, std::string>& ports,
              const std::string& prefix) {
    if (tok == "0" || tok == "gnd") return kGround;
    const auto it = ports.find(tok);
    if (it != ports.end()) return ckt_.node(it->second);
    return ckt_.node(prefix.empty() ? tok : prefix + "." + tok);
  }

  void emit_card(const Card& card, const std::map<std::string, std::string>& ports,
                 const std::string& prefix, int depth) {
    const auto& t = card.tokens;
    const int line_no = card.line_no;
    try {
      emit_card_impl(card, ports, prefix, depth);
    } catch (const ParseError&) {
      throw;  // already carries its line number
    } catch (const std::exception& e) {
      // Value/model errors thrown below card level (number parsing, device
      // constructor validation) get the card's line number attached here.
      throw ParseError(line_no, std::string(e.what()) + " (card " + t[0] + ")");
    }
  }

  void emit_card_impl(const Card& card, const std::map<std::string, std::string>& ports,
                      const std::string& prefix, int depth) {
    const auto& t = card.tokens;
    const int line_no = card.line_no;
    const std::string name = prefix.empty() ? t[0] : prefix + "." + t[0];
    // Reject duplicate device / instance names: Circuit::find_device
    // silently returns the first match and the svc/ cache keys assume names
    // are unique, so a colliding card is always a netlist bug. Subcircuit
    // instances get distinct hierarchical prefixes, so legitimate reuse of a
    // subcircuit is unaffected.
    const auto [dup_it, inserted] = device_lines_.emplace(name, line_no);
    if (!inserted)
      throw ParseError(line_no, "duplicate device name '" + name +
                                    "' (first defined at line " +
                                    std::to_string(dup_it->second) + ")");
    auto need = [&](std::size_t n) {
      if (t.size() < n) throw ParseError(line_no, "too few fields for " + t[0]);
    };
    auto nd = [&](std::size_t i) { return node(t[i], ports, prefix); };

    switch (t[0][0]) {
      case 'r': {
        need(4);
        ckt_.add<Resistor>(name, nd(1), nd(2), parse_spice_number(t[3]));
        break;
      }
      case 'c': {
        need(4);
        ckt_.add<Capacitor>(name, nd(1), nd(2), parse_spice_number(t[3]));
        break;
      }
      case 'l': {
        need(4);
        ckt_.add<Inductor>(name, nd(1), nd(2), parse_spice_number(t[3]));
        break;
      }
      case 'k': {
        // Kname p1 m1 p2 m2 L1 L2 coupling [resr]: coupled inductor pair.
        need(8);
        const double resr = t.size() > 8 ? parse_spice_number(t[8]) : 0.1;
        ckt_.add<CoupledInductors>(name, nd(1), nd(2), nd(3), nd(4),
                                   parse_spice_number(t[5]), parse_spice_number(t[6]),
                                   parse_spice_number(t[7]), resr);
        break;
      }
      case 'v': {
        need(3);
        const SourceSpec spec = parse_source(t, 3, line_no);
        auto& v = ckt_.add<VoltageSource>(name, nd(1), nd(2), spec.wave);
        if (spec.ac_mag != 0.0) v.set_ac(spec.ac_mag, spec.ac_phase);
        break;
      }
      case 'i': {
        need(3);
        const SourceSpec spec = parse_source(t, 3, line_no);
        auto& src = ckt_.add<CurrentSource>(name, nd(1), nd(2), spec.wave);
        if (spec.ac_mag != 0.0) src.set_ac(spec.ac_mag, spec.ac_phase);
        break;
      }
      case 'd': {
        need(3);
        const KeyValues kv = extract_kv(t, 3);
        DiodeParams dp;
        dp.is = kv.get("is", dp.is);
        dp.n = kv.get("n", dp.n);
        ckt_.add<Diode>(name, nd(1), nd(2), dp);
        break;
      }
      case 'm': {
        need(6);
        const std::string& model = t[5];
        const KeyValues kv = extract_kv(t, 6);
        const double w = kv.get("w", 1e-6);
        const double l = kv.get("l", tech65::kLmin);
        MosParams mp;
        if (model == "nmos") {
          mp = tech65::nmos(w, l);
        } else if (model == "pmos") {
          mp = tech65::pmos(w, l);
        } else {
          throw ParseError(line_no, "unknown MOS model: " + model);
        }
        ckt_.add<Mosfet>(name, nd(1), nd(2), nd(3), nd(4), mp);
        break;
      }
      case 'e': {
        need(6);
        ckt_.add<Vcvs>(name, nd(1), nd(2), nd(3), nd(4), parse_spice_number(t[5]));
        break;
      }
      case 'g': {
        need(6);
        ckt_.add<Vccs>(name, nd(1), nd(2), nd(3), nd(4), parse_spice_number(t[5]));
        break;
      }
      case 'x': {
        // Xname n1 n2 ... subname: instantiate a subcircuit.
        need(3);
        const std::string& subname = t.back();
        const auto it = subckts_.find(subname);
        if (it == subckts_.end())
          throw ParseError(line_no, "unknown subcircuit: " + subname);
        const Subckt& sub = it->second;
        const std::size_t given = t.size() - 2;
        if (given != sub.ports.size())
          throw ParseError(line_no, "subcircuit " + subname + " expects " +
                                        std::to_string(sub.ports.size()) + " nodes, got " +
                                        std::to_string(given));
        std::map<std::string, std::string> port_map;
        for (std::size_t k = 0; k < sub.ports.size(); ++k) {
          const NodeId outer = nd(k + 1);
          port_map[sub.ports[k]] = ckt_.node_name(outer);
        }
        emit(sub.cards, port_map, name, depth + 1);
        break;
      }
      default:
        throw ParseError(line_no, "unknown card: " + t[0]);
    }
  }

  Circuit& ckt_;
  const std::map<std::string, Subckt>& subckts_;
  std::map<std::string, int> device_lines_;  // flattened name -> defining line
};

}  // namespace

Circuit parse_netlist(const std::string& text) {
  // Pass 1: tokenize all lines, splitting .subckt bodies out of the main
  // deck.
  std::vector<Card> main_cards;
  std::map<std::string, Subckt> subckts;

  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  Subckt* open_sub = nullptr;
  bool ended = false;
  while (std::getline(stream, line) && !ended) {
    ++line_no;
    const std::size_t star = line.find('*');
    if (star != std::string::npos) line = line.substr(0, star);
    const auto t = tokenize(line);
    if (t.empty()) continue;
    if (t[0][0] == '.') {
      if (t[0] == ".subckt") {
        if (open_sub != nullptr)
          throw ParseError(line_no, "nested .subckt definitions are not supported");
        if (t.size() < 3)
          throw ParseError(line_no, ".subckt needs a name and at least one port");
        if (subckts.count(t[1]) != 0)
          throw ParseError(line_no, "duplicate .subckt name '" + t[1] + "'");
        Subckt sub;
        sub.ports.assign(t.begin() + 2, t.end());
        open_sub = &subckts.emplace(t[1], std::move(sub)).first->second;
      } else if (t[0] == ".ends") {
        if (open_sub == nullptr) throw ParseError(line_no, ".ends without .subckt");
        open_sub = nullptr;
      } else if (t[0] == ".end") {
        if (open_sub != nullptr) throw ParseError(line_no, ".end inside .subckt");
        ended = true;
      }
      continue;  // other directives ignored
    }
    Card card;
    card.line_no = line_no;
    card.tokens = t;
    if (open_sub != nullptr) {
      open_sub->cards.push_back(std::move(card));
    } else {
      main_cards.push_back(std::move(card));
    }
  }
  if (open_sub != nullptr) throw ParseError(line_no, "unterminated .subckt");

  // Pass 2: emit, expanding subcircuits.
  Circuit ckt;
  DeckBuilder builder(ckt, subckts);
  builder.emit(main_cards, {}, "", 0);
  return ckt;
}

}  // namespace rfmix::spice
