#include "spice/parser.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "mathx/units.hpp"
#include "spice/devices_diode.hpp"
#include "spice/devices_magnetics.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/mosfet.hpp"
#include "spice/tech65.hpp"
#include "spice/waveform.hpp"

namespace rfmix::spice {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Split a line into tokens; '(' ')' ',' become separate tokens and '=' is
/// isolated so key=value pairs tokenize as {key, "=", value}.
std::vector<std::string> tokenize(const std::string& line) {
  std::string norm;
  norm.reserve(line.size() + 8);
  for (const char c : line) {
    if (c == '(' || c == ')' || c == ',' || c == '=') {
      norm.push_back(' ');
      if (c == '=') norm.push_back('=');
      if (c == '=') norm.push_back(' ');
      if (c == '(') norm.push_back('(');
      if (c == '(') norm.push_back(' ');
      if (c == ')') norm.push_back(')');
      if (c == ')') norm.push_back(' ');
    } else {
      norm.push_back(c);
    }
  }
  std::vector<std::string> tokens;
  std::istringstream iss(norm);
  std::string tok;
  while (iss >> tok) tokens.push_back(to_lower(tok));
  return tokens;
}

}  // namespace

double parse_spice_number(const std::string& token) {
  std::size_t pos = 0;
  double base = 0.0;
  try {
    base = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed number: '" + token + "'");
  }
  std::string suffix = to_lower(token.substr(pos));
  // Trailing unit letters after the scale (e.g. "10uF") are ignored, as in
  // SPICE.
  double scale = 1.0;
  if (suffix.rfind("meg", 0) == 0) {
    scale = 1e6;
  } else if (!suffix.empty()) {
    switch (suffix[0]) {
      case 'f': scale = 1e-15; break;
      case 'p': scale = 1e-12; break;
      case 'n': scale = 1e-9; break;
      case 'u': scale = 1e-6; break;
      case 'm': scale = 1e-3; break;
      case 'k': scale = 1e3; break;
      case 'g': scale = 1e9; break;
      case 't': scale = 1e12; break;
      default: scale = 1.0; break;
    }
  }
  return base * scale;
}

namespace {

struct KeyValues {
  std::vector<std::pair<std::string, std::string>> kv;
  double get(const std::string& key, double fallback) const {
    for (const auto& [k, v] : kv)
      if (k == key) return parse_spice_number(v);
    return fallback;
  }
};

KeyValues extract_kv(const std::vector<std::string>& t, std::size_t from) {
  KeyValues out;
  for (std::size_t i = from; i + 2 < t.size() + 1; ++i) {
    if (i + 2 < t.size() && t[i + 1] == "=") out.kv.emplace_back(t[i], t[i + 2]);
  }
  return out;
}

/// Collect numeric arguments of a function-style token list: name ( a b c ).
std::vector<double> paren_args(const std::vector<std::string>& t, std::size_t& i,
                               int line_no, const char* what) {
  if (i >= t.size() || t[i] != "(")
    throw ParseError(line_no, std::string(what) + " must be followed by (");
  std::vector<double> args;
  std::size_t j = i + 1;
  while (j < t.size() && t[j] != ")") args.push_back(parse_spice_number(t[j++]));
  if (j >= t.size()) throw ParseError(line_no, std::string(what) + " missing )");
  i = j + 1;
  return args;
}

struct SourceSpec {
  Waveform wave = Waveform::dc(0.0);
  double ac_mag = 0.0;
  double ac_phase = 0.0;
};

SourceSpec parse_source(const std::vector<std::string>& t, std::size_t i, int line_no) {
  SourceSpec spec;
  bool have_wave = false;
  while (i < t.size()) {
    if (t[i] == "dc") {
      if (i + 1 >= t.size()) throw ParseError(line_no, "DC needs a value");
      spec.wave = Waveform::dc(parse_spice_number(t[i + 1]));
      have_wave = true;
      i += 2;
    } else if (t[i] == "sin") {
      ++i;
      const auto args = paren_args(t, i, line_no, "SIN");
      if (args.size() < 3) throw ParseError(line_no, "SIN needs offset amp freq");
      SineWave sw;
      sw.offset = args[0];
      sw.amplitude = args[1];
      sw.freq_hz = args[2];
      sw.phase_rad = args.size() > 3 ? args[3] * mathx::kPi / 180.0 : 0.0;
      sw.delay_s = args.size() > 4 ? args[4] : 0.0;
      spec.wave = Waveform(sw);
      have_wave = true;
    } else if (t[i] == "pulse") {
      ++i;
      const auto args = paren_args(t, i, line_no, "PULSE");
      if (args.size() < 2) throw ParseError(line_no, "PULSE needs v1 v2 ...");
      PulseWave pw;
      pw.v1 = args[0];
      pw.v2 = args[1];
      pw.delay_s = args.size() > 2 ? args[2] : 0.0;
      pw.rise_s = args.size() > 3 ? std::max(args[3], 1e-15) : 1e-12;
      pw.fall_s = args.size() > 4 ? std::max(args[4], 1e-15) : 1e-12;
      pw.width_s = args.size() > 5 ? args[5] : 0.0;
      pw.period_s = args.size() > 6 ? args[6] : 0.0;
      spec.wave = Waveform(pw);
      have_wave = true;
    } else if (t[i] == "pwl") {
      ++i;
      const auto args = paren_args(t, i, line_no, "PWL");
      if (args.size() < 2 || args.size() % 2 != 0)
        throw ParseError(line_no, "PWL needs t/v pairs");
      PwlWave pw;
      for (std::size_t k = 0; k + 1 < args.size(); k += 2)
        pw.points.emplace_back(args[k], args[k + 1]);
      spec.wave = Waveform(pw);
      have_wave = true;
    } else if (t[i] == "ac") {
      if (i + 1 >= t.size()) throw ParseError(line_no, "AC needs a magnitude");
      spec.ac_mag = parse_spice_number(t[i + 1]);
      i += 2;
      if (i < t.size()) {
        try {
          spec.ac_phase = parse_spice_number(t[i]) * mathx::kPi / 180.0;
          ++i;
        } catch (const std::exception&) {
          // Next token is not a number — leave it for the caller.
        }
      }
    } else if (!have_wave) {
      spec.wave = Waveform::dc(parse_spice_number(t[i]));  // bare value = DC
      have_wave = true;
      ++i;
    } else {
      ++i;
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Deck structure: tokenized cards, with .subckt bodies collected separately
// and expanded on X-card instantiation (flattening with hierarchical names).
//
// Elaboration is two-stage with structural sharing: each scope (the main
// deck, or one .subckt body) is COMPILED exactly once — tokens are type-
// dispatched, numbers parsed, model parameters resolved, and node tokens
// interned into scope-local slots — into a list of device prototypes.
// Instantiating a subcircuit then only maps slots to global NodeIds and
// replays the prototypes, so an M-instance array pays the string/parse
// work once, not M times, and elaboration cost stays linear in the number
// of *emitted* devices. Subcircuit bodies compile lazily on first
// instantiation (a never-instantiated body is never validated, matching
// the historical flattening semantics).

struct Card {
  int line_no = 0;
  std::vector<std::string> tokens;
};

struct Subckt {
  std::vector<std::string> ports;
  std::vector<Card> cards;
};

/// Scope-local node reference: slot index into the instance's NodeId
/// table, or kGroundSlot for "0"/"gnd" (ground never needs mapping).
inline constexpr int kGroundSlot = -1;
inline constexpr NodeId kNoNode = -1;

struct CompiledScope;

class Elaborator;

/// Per-instance emission state: the global circuit, this instance's
/// hierarchical prefix, and the lazily resolved slot -> NodeId table.
/// Slots resolve on first use, so global node-creation order is identical
/// to parsing the equivalent flattened deck card by card — which is what
/// makes flat and hierarchical expansions of the same array solve
/// bit-identically (same NodeIds, same matrix ordering).
struct EmitCtx {
  Circuit& ckt;
  const CompiledScope& scope;
  Elaborator& elab;
  std::string prefix;  // "" at top level, "x1.x2" inside instances
  std::vector<NodeId> slots;
  int depth = 0;

  NodeId node(int slot);
  std::string qualify(const std::string& local) const {
    return prefix.empty() ? local : prefix + "." + local;
  }
};

struct Proto {
  int line_no = 0;
  std::string card0;  // original first token, for error framing
  std::function<void(EmitCtx&)> emit;
};

struct CompiledScope {
  std::vector<std::string> slot_names;  // local node token per slot
  std::vector<Proto> protos;            // in card order
};

NodeId EmitCtx::node(int slot) {
  if (slot == kGroundSlot) return kGround;
  NodeId& id = slots[static_cast<std::size_t>(slot)];
  if (id == kNoNode)
    id = ckt.node(qualify(scope.slot_names[static_cast<std::size_t>(slot)]));
  return id;
}

/// Compiles scopes on demand and memoizes them; owns nothing else.
class Elaborator {
 public:
  explicit Elaborator(const std::map<std::string, Subckt>& subckts)
      : subckts_(subckts) {}

  /// Compile the cards of one scope. `label` is empty for the main deck,
  /// the subckt name otherwise (cited in duplicate-name errors).
  std::unique_ptr<CompiledScope> compile(const std::vector<Card>& cards,
                                         const std::vector<std::string>& ports,
                                         const std::string& label);

  /// Memoized lazy compilation of a subckt body.
  const CompiledScope& compiled_subckt(const std::string& name, const Subckt& sub) {
    auto it = compiled_.find(name);
    if (it != compiled_.end()) return *it->second;
    auto scope = compile(sub.cards, sub.ports, name);
    return *compiled_.emplace(name, std::move(scope)).first->second;
  }

  const std::map<std::string, Subckt>& subckts() const { return subckts_; }

 private:
  const std::map<std::string, Subckt>& subckts_;
  std::unordered_map<std::string, std::unique_ptr<CompiledScope>> compiled_;
};

/// Emit every prototype of a compiled scope into `ctx`, framing non-parse
/// errors (device constructor validation) with the card's line number.
void emit_scope(EmitCtx& ctx) {
  if (ctx.depth > 20) throw ParseError(0, "subcircuit nesting too deep (recursion?)");
  for (const Proto& p : ctx.scope.protos) {
    try {
      p.emit(ctx);
    } catch (const ParseError&) {
      throw;  // already carries its line number
    } catch (const std::exception& e) {
      throw ParseError(p.line_no, std::string(e.what()) + " (card " + p.card0 + ")");
    }
  }
}

std::unique_ptr<CompiledScope> Elaborator::compile(const std::vector<Card>& cards,
                                                   const std::vector<std::string>& ports,
                                                   const std::string& label) {
  auto scope = std::make_unique<CompiledScope>();
  std::unordered_map<std::string, int> slot_index;
  // Ports own the leading slots. Assignment (not emplace) keeps the
  // historical "last port wins" behavior for a degenerate duplicated port
  // name.
  for (const std::string& p : ports) {
    slot_index[p] = static_cast<int>(scope->slot_names.size());
    scope->slot_names.push_back(p);
  }
  const std::size_t num_ports = ports.size();
  // Locals append in first-reference order, which (with lazy resolution in
  // EmitCtx::node) reproduces flat parsing's node-creation order exactly.
  const auto slot = [&](const std::string& tok) -> int {
    if (tok == "0" || tok == "gnd") return kGroundSlot;
    const auto it = slot_index.find(tok);
    if (it != slot_index.end()) return it->second;
    const int s = static_cast<int>(scope->slot_names.size());
    slot_index.emplace(tok, s);
    scope->slot_names.push_back(tok);
    return s;
  };
  (void)num_ports;

  // Duplicate device / instance names are rejected per scope at compile
  // time: Circuit::find_device silently returns the first match and the
  // svc/ cache keys assume names are unique, so a colliding card is always
  // a netlist bug. Distinct instance prefixes keep legitimate subcircuit
  // reuse collision-free, and a body-level duplicate is reported once,
  // citing the subckt it lives in.
  std::unordered_map<std::string, int> device_lines;

  for (const Card& card : cards) {
    const auto& t = card.tokens;
    const int line_no = card.line_no;
    try {
      const auto [dup_it, inserted] = device_lines.emplace(t[0], line_no);
      if (!inserted)
        throw ParseError(line_no,
                         "duplicate device name '" + t[0] + "'" +
                             (label.empty() ? std::string()
                                            : " in .subckt '" + label + "'") +
                             " (first defined at line " +
                             std::to_string(dup_it->second) + ")");
      auto need = [&](std::size_t n) {
        if (t.size() < n) throw ParseError(line_no, "too few fields for " + t[0]);
      };
      const std::string nm = t[0];
      // Hierarchical device names (as produced by elaboration, or written
      // directly in a generated flat deck) are typed by their leaf
      // segment: "xe0.rsw" is a resistor named xe0.rsw, so a flattened
      // deck round-trips through the parser with elaboration-identical
      // names.
      const std::size_t dot = nm.rfind('.');
      const char type_char = (dot == std::string::npos || dot + 1 >= nm.size())
                                 ? nm[0]
                                 : nm[dot + 1];

      switch (type_char) {
        case 'r': {
          need(4);
          const int a = slot(t[1]), b = slot(t[2]);
          const double val = parse_spice_number(t[3]);
          scope->protos.push_back({line_no, nm, [nm, a, b, val](EmitCtx& c) {
            c.ckt.add<Resistor>(c.qualify(nm), c.node(a), c.node(b), val);
          }});
          break;
        }
        case 'c': {
          need(4);
          const int a = slot(t[1]), b = slot(t[2]);
          const double val = parse_spice_number(t[3]);
          scope->protos.push_back({line_no, nm, [nm, a, b, val](EmitCtx& c) {
            c.ckt.add<Capacitor>(c.qualify(nm), c.node(a), c.node(b), val);
          }});
          break;
        }
        case 'l': {
          need(4);
          const int a = slot(t[1]), b = slot(t[2]);
          const double val = parse_spice_number(t[3]);
          scope->protos.push_back({line_no, nm, [nm, a, b, val](EmitCtx& c) {
            c.ckt.add<Inductor>(c.qualify(nm), c.node(a), c.node(b), val);
          }});
          break;
        }
        case 'k': {
          // Kname p1 m1 p2 m2 L1 L2 coupling [resr]: coupled inductor pair.
          need(8);
          const int n1 = slot(t[1]), n2 = slot(t[2]), n3 = slot(t[3]), n4 = slot(t[4]);
          const double l1 = parse_spice_number(t[5]);
          const double l2 = parse_spice_number(t[6]);
          const double coup = parse_spice_number(t[7]);
          const double resr = t.size() > 8 ? parse_spice_number(t[8]) : 0.1;
          scope->protos.push_back(
              {line_no, nm, [nm, n1, n2, n3, n4, l1, l2, coup, resr](EmitCtx& c) {
                c.ckt.add<CoupledInductors>(c.qualify(nm), c.node(n1), c.node(n2),
                                            c.node(n3), c.node(n4), l1, l2, coup, resr);
              }});
          break;
        }
        case 'v': {
          need(3);
          const int a = slot(t[1]), b = slot(t[2]);
          const SourceSpec spec = parse_source(t, 3, line_no);
          scope->protos.push_back({line_no, nm, [nm, a, b, spec](EmitCtx& c) {
            auto& v = c.ckt.add<VoltageSource>(c.qualify(nm), c.node(a), c.node(b),
                                               spec.wave);
            if (spec.ac_mag != 0.0) v.set_ac(spec.ac_mag, spec.ac_phase);
          }});
          break;
        }
        case 'i': {
          need(3);
          const int a = slot(t[1]), b = slot(t[2]);
          const SourceSpec spec = parse_source(t, 3, line_no);
          scope->protos.push_back({line_no, nm, [nm, a, b, spec](EmitCtx& c) {
            auto& src = c.ckt.add<CurrentSource>(c.qualify(nm), c.node(a), c.node(b),
                                                 spec.wave);
            if (spec.ac_mag != 0.0) src.set_ac(spec.ac_mag, spec.ac_phase);
          }});
          break;
        }
        case 'd': {
          need(3);
          const int a = slot(t[1]), b = slot(t[2]);
          const KeyValues kv = extract_kv(t, 3);
          DiodeParams dp;
          dp.is = kv.get("is", dp.is);
          dp.n = kv.get("n", dp.n);
          scope->protos.push_back({line_no, nm, [nm, a, b, dp](EmitCtx& c) {
            c.ckt.add<Diode>(c.qualify(nm), c.node(a), c.node(b), dp);
          }});
          break;
        }
        case 'm': {
          need(6);
          const std::string& model = t[5];
          const KeyValues kv = extract_kv(t, 6);
          const double w = kv.get("w", 1e-6);
          const double l = kv.get("l", tech65::kLmin);
          MosParams mp;
          if (model == "nmos") {
            mp = tech65::nmos(w, l);
          } else if (model == "pmos") {
            mp = tech65::pmos(w, l);
          } else {
            throw ParseError(line_no, "unknown MOS model: " + model);
          }
          const int d = slot(t[1]), g = slot(t[2]), s = slot(t[3]), bl = slot(t[4]);
          scope->protos.push_back({line_no, nm, [nm, d, g, s, bl, mp](EmitCtx& c) {
            c.ckt.add<Mosfet>(c.qualify(nm), c.node(d), c.node(g), c.node(s),
                              c.node(bl), mp);
          }});
          break;
        }
        case 'e': {
          need(6);
          const int n1 = slot(t[1]), n2 = slot(t[2]), n3 = slot(t[3]), n4 = slot(t[4]);
          const double gain = parse_spice_number(t[5]);
          scope->protos.push_back({line_no, nm, [nm, n1, n2, n3, n4, gain](EmitCtx& c) {
            c.ckt.add<Vcvs>(c.qualify(nm), c.node(n1), c.node(n2), c.node(n3),
                            c.node(n4), gain);
          }});
          break;
        }
        case 'g': {
          need(6);
          const int n1 = slot(t[1]), n2 = slot(t[2]), n3 = slot(t[3]), n4 = slot(t[4]);
          const double gm = parse_spice_number(t[5]);
          scope->protos.push_back({line_no, nm, [nm, n1, n2, n3, n4, gm](EmitCtx& c) {
            c.ckt.add<Vccs>(c.qualify(nm), c.node(n1), c.node(n2), c.node(n3),
                            c.node(n4), gm);
          }});
          break;
        }
        case 'x': {
          // Xname n1 n2 ... subname: instantiate a subcircuit. The body
          // compiles lazily (memoized) at first emission; the port-count
          // contract is checkable now from the definition header alone.
          need(3);
          const std::string subname = t.back();
          const auto it = subckts_.find(subname);
          if (it == subckts_.end())
            throw ParseError(line_no, "unknown subcircuit: " + subname);
          const Subckt& sub = it->second;
          const std::size_t given = t.size() - 2;
          if (given != sub.ports.size())
            throw ParseError(line_no, "subcircuit " + subname + " expects " +
                                          std::to_string(sub.ports.size()) +
                                          " nodes, got " + std::to_string(given));
          std::vector<int> args;
          args.reserve(given);
          for (std::size_t k = 0; k < given; ++k) args.push_back(slot(t[k + 1]));
          const Subckt* subp = &sub;
          scope->protos.push_back({line_no, nm, [nm, subname, subp, args](EmitCtx& c) {
            const CompiledScope& child = c.elab.compiled_subckt(subname, *subp);
            EmitCtx cc{c.ckt,
                       child,
                       c.elab,
                       c.qualify(nm),
                       std::vector<NodeId>(child.slot_names.size(), kNoNode),
                       c.depth + 1};
            for (std::size_t k = 0; k < args.size(); ++k)
              cc.slots[k] = c.node(args[k]);
            emit_scope(cc);
          }});
          break;
        }
        default:
          throw ParseError(line_no, "unknown card: " + t[0]);
      }
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception& e) {
      // Value/model errors thrown below card level (number parsing, model
      // table lookups) get the card's line number attached here.
      throw ParseError(line_no, std::string(e.what()) + " (card " + t[0] + ")");
    }
  }
  return scope;
}

}  // namespace

Circuit parse_netlist(const std::string& text) {
  // Pass 1: tokenize all lines, splitting .subckt bodies out of the main
  // deck.
  std::vector<Card> main_cards;
  std::map<std::string, Subckt> subckts;

  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  Subckt* open_sub = nullptr;
  bool ended = false;
  while (std::getline(stream, line) && !ended) {
    ++line_no;
    const std::size_t star = line.find('*');
    if (star != std::string::npos) line = line.substr(0, star);
    const auto t = tokenize(line);
    if (t.empty()) continue;
    if (t[0][0] == '.') {
      if (t[0] == ".subckt") {
        if (open_sub != nullptr)
          throw ParseError(line_no, "nested .subckt definitions are not supported");
        if (t.size() < 3)
          throw ParseError(line_no, ".subckt needs a name and at least one port");
        if (subckts.count(t[1]) != 0)
          throw ParseError(line_no, "duplicate .subckt name '" + t[1] + "'");
        Subckt sub;
        sub.ports.assign(t.begin() + 2, t.end());
        open_sub = &subckts.emplace(t[1], std::move(sub)).first->second;
      } else if (t[0] == ".ends") {
        if (open_sub == nullptr) throw ParseError(line_no, ".ends without .subckt");
        open_sub = nullptr;
      } else if (t[0] == ".end") {
        if (open_sub != nullptr) throw ParseError(line_no, ".end inside .subckt");
        ended = true;
      }
      continue;  // other directives ignored
    }
    Card card;
    card.line_no = line_no;
    card.tokens = t;
    if (open_sub != nullptr) {
      open_sub->cards.push_back(std::move(card));
    } else {
      main_cards.push_back(std::move(card));
    }
  }
  if (open_sub != nullptr) throw ParseError(line_no, "unterminated .subckt");

  // Pass 2: compile the main scope, then emit (subckt bodies compile
  // lazily, once each, however many times they are instantiated).
  Circuit ckt;
  Elaborator elab(subckts);
  const std::unique_ptr<CompiledScope> main_scope = elab.compile(main_cards, {}, "");
  EmitCtx ctx{ckt, *main_scope, elab, "",
              std::vector<NodeId>(main_scope->slot_names.size(), kNoNode), 0};
  emit_scope(ctx);
  return ckt;
}

}  // namespace rfmix::spice
