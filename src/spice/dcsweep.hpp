// DC sweep analysis: step a source through a range of values, warm-starting
// each Newton solve from the previous solution — the standard way to trace
// I-V curves and transfer characteristics.
//
// The sweep is cut into fixed chunks of kDcSweepChunk points; warm starts
// chain only within a chunk and every chunk begins cold. That makes chunks
// independent of one another, so the parallel overload (which runs chunks
// concurrently on private circuit copies) is bit-identical to the serial
// one at any thread count.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/devices_sources.hpp"
#include "spice/op.hpp"

namespace rfmix::spice {

struct DcSweepResult {
  std::vector<double> values;      // swept source values
  std::vector<Solution> solutions; // operating point at each value

  std::size_t size() const { return values.size(); }

  /// Node voltage trace across the sweep.
  std::vector<double> v(NodeId n) const {
    std::vector<double> out;
    out.reserve(solutions.size());
    for (const auto& s : solutions) out.push_back(s.v(n));
    return out;
  }

  /// Branch current trace of a voltage source (by pointer).
  std::vector<double> source_current(const VoltageSource& src) const {
    std::vector<double> out;
    out.reserve(solutions.size());
    for (const auto& s : solutions) out.push_back(src.current(s));
    return out;
  }
};

/// Points per warm-start chain; chosen small enough that a cold restart at
/// a chunk head converges from the homotopy machinery, large enough that
/// chunk startup cost amortizes.
inline constexpr int kDcSweepChunk = 8;

/// Sweep the DC value of `source` over [start, stop] in `points` steps.
/// The source's waveform is replaced by DC values during the sweep and
/// restored afterwards. Throws ConvergenceError if any point fails after
/// the warm start and a cold restart. Runs chunks serially on this one
/// circuit; use the factory overload to run them concurrently.
DcSweepResult dc_sweep(Circuit& ckt, VoltageSource& source, double start, double stop,
                       int points, const OpOptions& opts = {});

/// A private circuit plus a pointer to its swept source, built fresh for
/// each parallel chunk so chunks never share mutable device state.
struct DcSweepInstance {
  std::shared_ptr<Circuit> circuit;
  VoltageSource* source = nullptr;  // must belong to `circuit`
};

using DcSweepFactory = std::function<DcSweepInstance()>;

/// Parallel sweep: chunks of kDcSweepChunk points run concurrently on the
/// runtime pool, each on a circuit freshly built by `make`. Results are
/// bit-identical to the serial overload applied to the same circuit.
DcSweepResult dc_sweep(const DcSweepFactory& make, double start, double stop,
                       int points, const OpOptions& opts = {});

}  // namespace rfmix::spice
