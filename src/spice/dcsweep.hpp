// DC sweep analysis: step a source through a range of values, warm-starting
// each Newton solve from the previous solution — the standard way to trace
// I-V curves and transfer characteristics.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/devices_sources.hpp"
#include "spice/op.hpp"

namespace rfmix::spice {

struct DcSweepResult {
  std::vector<double> values;      // swept source values
  std::vector<Solution> solutions; // operating point at each value

  std::size_t size() const { return values.size(); }

  /// Node voltage trace across the sweep.
  std::vector<double> v(NodeId n) const {
    std::vector<double> out;
    out.reserve(solutions.size());
    for (const auto& s : solutions) out.push_back(s.v(n));
    return out;
  }

  /// Branch current trace of a voltage source (by pointer).
  std::vector<double> source_current(const VoltageSource& src) const {
    std::vector<double> out;
    out.reserve(solutions.size());
    for (const auto& s : solutions) out.push_back(src.current(s));
    return out;
  }
};

/// Sweep the DC value of `source` over [start, stop] in `points` steps.
/// The source's waveform is replaced by DC values during the sweep and
/// restored afterwards. Throws ConvergenceError if any point fails after
/// the warm start and a cold restart.
DcSweepResult dc_sweep(Circuit& ckt, VoltageSource& source, double start, double stop,
                       int points, const OpOptions& opts = {});

}  // namespace rfmix::spice
