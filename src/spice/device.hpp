// Device base class: every circuit element implements the stamp interface.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "spice/stamper.hpp"
#include "spice/types.hpp"

namespace rfmix::spice {

/// Canonical self-description of a device, consumed by the svc/ layer to
/// build content-addressed cache keys. The encoding contract:
///  * `kind` is a stable type tag ("resistor", "mosfet", ...) that never
///    changes once shipped — it is part of every persisted cache key.
///  * `nodes` lists the terminals in the device's defining order (terminal
///    order is electrically meaningful and therefore part of the identity).
///  * `params` / `text` enumerate EVERY value that influences the device's
///    stamps or noise, in a fixed per-type order. A device whose behavior
///    can change without its description changing would poison the cache.
/// An empty `kind` marks the device as non-describable; canonical
/// serialization refuses such circuits instead of hashing them wrongly.
struct DeviceDesc {
  std::string kind;
  std::vector<NodeId> nodes;
  std::vector<std::pair<std::string, double>> params;
  std::vector<std::pair<std::string, std::string>> text;
};

/// A small-signal noise current source between two nodes, produced by a
/// device at a given operating point. `psd` returns the one-sided current
/// noise power spectral density [A^2/Hz] at frequency f.
struct NoiseSource {
  NodeId p = kGround;
  NodeId m = kGround;
  std::function<double(double f)> psd;
  std::string label;
};

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Number of extra branch-current unknowns this device needs.
  virtual int num_branches() const { return 0; }

  /// Called by Circuit::finalize with the first branch index reserved for
  /// this device (only when num_branches() > 0).
  void set_branch_base(int base) { branch_base_ = base; }
  int branch_base() const { return branch_base_; }

  /// Stamp the (linearized) model at candidate solution `x`. Nonlinear
  /// devices stamp their Newton companion model: Jacobian entries plus the
  /// equivalent current i0 - J*x0.
  virtual void stamp(RealStamper& s, const Solution& x, const StampParams& p) const = 0;

  /// Stamp the small-signal model at operating point `op` and angular
  /// frequency `omega`. Independent sources stamp their AC magnitude.
  virtual void stamp_ac(ComplexStamper& s, const Solution& op, double omega) const = 0;

  /// Append this device's noise sources at the operating point.
  virtual void append_noise(std::vector<NoiseSource>&, const Solution&) const {}

  /// Transient lifecycle: called once before time stepping with the DC
  /// operating point, and after each accepted step with the converged
  /// solution. Devices with memory (C, L) keep their companion state here.
  virtual void tran_begin(const Solution&) {}
  virtual void tran_accept(const Solution&, const StampParams&) {}

  /// Canonical description for content-addressed hashing (see DeviceDesc).
  /// The default marks the device opaque; every device the netlist parser
  /// can emit overrides this.
  virtual DeviceDesc describe() const { return {}; }

  /// DC power drawn from the circuit by this device at the operating point
  /// (positive = dissipates / delivers from supply; sources return the power
  /// they *deliver* as negative dissipation). Used for Table I power rows.
  virtual double dissipated_power(const Solution&) const { return 0.0; }

 private:
  std::string name_;
  int branch_base_ = -1;
};

}  // namespace rfmix::spice
