// Periodic steady state (PSS) by the brute-force method: integrate the
// circuit with its periodic (LO) drive until the state repeats from one
// period to the next, then record one period of uniformly sampled
// solutions. Those samples are the large-signal orbit that periodic AC
// (PAC) analyses linearize around — see lptv/matrix_conversion.hpp and
// core/pac_transistor.hpp for that pipeline.
#pragma once

#include "spice/circuit.hpp"
#include "spice/op.hpp"

namespace rfmix::spice {

struct PssOptions {
  int samples_per_period = 64;
  int min_periods = 4;       // always integrate at least this many periods
  int max_periods = 400;
  /// Periodicity criterion: max |x(t+T) - x(t)| over node voltages [V].
  double tol_v = 50e-6;
  NewtonOptions newton;
};

struct PssResult {
  bool converged = false;
  int periods_used = 0;
  double period_s = 0.0;
  double residual_v = 0.0;   // achieved period-to-period deviation
  /// One period of the steady-state orbit: samples_per_period solutions at
  /// t = k * T / samples_per_period (the first sample is the period start).
  std::vector<Solution> samples;
};

/// Find the periodic steady state of `ckt` under its own periodic sources
/// with fundamental period `period_s`. All sources must be periodic in
/// `period_s` (or constant). Throws ConvergenceError if a transient step
/// fails; returns converged=false if the orbit has not settled within
/// max_periods (the best available period is still returned).
PssResult periodic_steady_state(Circuit& ckt, double period_s,
                                const PssOptions& opts = {});

}  // namespace rfmix::spice
