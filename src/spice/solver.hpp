// Per-engine solver state for the analyze-once/refactor-per-step fast path
// (see docs/solver.md).
//
// A SolverSession owns everything a Newton/sweep loop reuses between
// factorizations: the cached triplet->CSC stamp mapping, the symbolic LU
// structure with its pinned pivot order, the numeric factor's buffers, and
// the batch device evaluator. Engines create one session per independent
// work unit (a transient run, a PSS run, one DC-sweep chunk) so obs counter
// totals are identical at any thread count.
//
// In classic mode the session still factors — it just re-analyzes every
// time and skips the batch evaluator, reproducing the cold path exactly.
// Both modes produce byte-identical factors: refactor_from() replays the
// analyze arithmetic and falls back to a full analysis whenever the stamp
// pattern changes or the pinned pivot sequence stops winning the pivot
// scan.
#pragma once

#include <memory>

#include "mathx/solver_config.hpp"
#include "mathx/sparse.hpp"

namespace rfmix::spice {

class Circuit;
class MosBatchEvaluator;

using mathx::ScopedSolverMode;
using mathx::set_solver_mode;
using mathx::solver_mode;
using mathx::SolverMode;

class SolverSession {
 public:
  SolverSession();
  ~SolverSession();
  SolverSession(const SolverSession&) = delete;
  SolverSession& operator=(const SolverSession&) = delete;

  /// Mode latched at construction, so one work unit never mixes paths.
  SolverMode mode() const { return mode_; }

  /// Factor the assembled real system. Counts spice.lu.factorizations plus
  /// spice.lu.analyze / spice.lu.refactor / spice.lu.fallback /
  /// spice.lu.pattern_rebuild; throws mathx::SingularMatrixError exactly
  /// like a cold factorization.
  const mathx::SparseLu<double>& factor(const mathx::TripletMatrix<double>& g);

  /// The session's batch device evaluator for `ckt` (created on first use;
  /// null in classic mode or when `ckt` has no MOSFETs).
  MosBatchEvaluator* batch(const Circuit& ckt);

 private:
  SolverMode mode_;
  mathx::TripletCscMap<double> map_;
  mathx::CscMatrix<double> csc_;
  mathx::SparseLuSymbolic<double> sym_;
  mathx::SparseLu<double> lu_;
  bool have_map_ = false;
  bool have_sym_ = false;
  std::unique_ptr<MosBatchEvaluator> batch_;
  const Circuit* batch_ckt_ = nullptr;
};

}  // namespace rfmix::spice
