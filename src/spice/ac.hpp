// Small-signal AC sweep: linearize at the DC operating point and solve the
// complex MNA system over a list of frequencies.
#pragma once

#include <complex>
#include <vector>

#include "spice/circuit.hpp"

namespace rfmix::spice {

struct AcResult {
  std::vector<double> freqs_hz;
  // One solution vector per frequency, in MNA unknown order.
  std::vector<mathx::VectorC> solutions;
  MnaLayout layout;

  std::complex<double> v(std::size_t freq_index, NodeId node) const {
    const int u = layout.node_unknown(node);
    return u < 0 ? std::complex<double>{} : solutions[freq_index][static_cast<std::size_t>(u)];
  }
  std::complex<double> vd(std::size_t freq_index, NodeId p, NodeId m) const {
    return v(freq_index, p) - v(freq_index, m);
  }
};

/// Logarithmically spaced frequency grid (inclusive of endpoints).
std::vector<double> log_space(double f_start, double f_stop, int points);

/// Linearly spaced frequency grid (inclusive of endpoints).
std::vector<double> lin_space(double f_start, double f_stop, int points);

/// Run the AC sweep. Sources with a nonzero AC magnitude drive the system.
AcResult ac_sweep(Circuit& ckt, const Solution& op, const std::vector<double>& freqs_hz,
                  double gmin = 1e-12);

}  // namespace rfmix::spice
