// Independent and controlled sources.
#pragma once

#include <complex>

#include "spice/device.hpp"
#include "spice/waveform.hpp"

namespace rfmix::spice {

/// Independent voltage source with an optional AC magnitude/phase used by
/// the small-signal analyses.
class VoltageSource : public Device {
 public:
  VoltageSource(std::string name, NodeId p, NodeId m, Waveform w)
      : Device(std::move(name)), p_(p), m_(m), wave_(std::move(w)) {}

  int num_branches() const override { return 1; }

  void set_waveform(Waveform w) { wave_ = std::move(w); }
  const Waveform& waveform() const { return wave_; }

  void set_ac(double magnitude, double phase_rad = 0.0) {
    ac_mag_ = magnitude;
    ac_phase_ = phase_rad;
  }
  double ac_magnitude() const { return ac_mag_; }

  void stamp(RealStamper& s, const Solution&, const StampParams& p) const override {
    const int b = branch_base();
    s.add_branch_incidence(p_, m_, b);
    const double v = (p.mode == AnalysisMode::kDc ? wave_.dc_value() : wave_.value(p.time));
    s.add_rhs(s.layout().branch_unknown(b), v * p.source_scale);
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double) const override {
    const int b = branch_base();
    s.add_branch_incidence(p_, m_, b);
    if (ac_mag_ != 0.0) {
      s.add_rhs(s.layout().branch_unknown(b),
                std::polar(ac_mag_, ac_phase_));
    }
  }

  /// Current flowing from p through the source to m.
  double current(const Solution& x) const { return x.branch_current(branch_base()); }

  double dissipated_power(const Solution& op) const override {
    // Negative when the source delivers power to the circuit.
    return op.vd(p_, m_) * op.branch_current(branch_base());
  }

  DeviceDesc describe() const override {
    DeviceDesc d{"vsource", {p_, m_}, {}, {}};
    wave_.describe(d.text, d.params);
    d.params.emplace_back("acmag", ac_mag_);
    d.params.emplace_back("acphase", ac_phase_);
    return d;
  }

 private:
  NodeId p_, m_;
  Waveform wave_;
  double ac_mag_ = 0.0;
  double ac_phase_ = 0.0;
};

/// Independent current source; current flows from p to m through the device.
class CurrentSource : public Device {
 public:
  CurrentSource(std::string name, NodeId p, NodeId m, Waveform w)
      : Device(std::move(name)), p_(p), m_(m), wave_(std::move(w)) {}

  void set_waveform(Waveform w) { wave_ = std::move(w); }
  void set_ac(double magnitude, double phase_rad = 0.0) {
    ac_mag_ = magnitude;
    ac_phase_ = phase_rad;
  }

  void stamp(RealStamper& s, const Solution&, const StampParams& p) const override {
    const double i = (p.mode == AnalysisMode::kDc ? wave_.dc_value() : wave_.value(p.time));
    s.add_device_current(p_, m_, i * p.source_scale);
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double) const override {
    if (ac_mag_ != 0.0) s.add_current_source(p_, m_, std::polar(ac_mag_, ac_phase_));
  }

  DeviceDesc describe() const override {
    DeviceDesc d{"isource", {p_, m_}, {}, {}};
    wave_.describe(d.text, d.params);
    d.params.emplace_back("acmag", ac_mag_);
    d.params.emplace_back("acphase", ac_phase_);
    return d;
  }

 private:
  NodeId p_, m_;
  Waveform wave_;
  double ac_mag_ = 0.0;
  double ac_phase_ = 0.0;
};

/// Voltage-controlled current source: i(p->m) = gm * (v(c) - v(d)).
class Vccs : public Device {
 public:
  Vccs(std::string name, NodeId p, NodeId m, NodeId c, NodeId d, double gm)
      : Device(std::move(name)), p_(p), m_(m), c_(c), d_(d), gm_(gm) {}

  double gm() const { return gm_; }
  void set_gm(double gm) { gm_ = gm; }

  void stamp(RealStamper& s, const Solution&, const StampParams&) const override {
    s.add_vccs(p_, m_, c_, d_, gm_);
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double) const override {
    s.add_vccs(p_, m_, c_, d_, gm_);
  }

  DeviceDesc describe() const override {
    return {"vccs", {p_, m_, c_, d_}, {{"gm", gm_}}, {}};
  }

 private:
  NodeId p_, m_, c_, d_;
  double gm_;
};

/// Voltage-controlled voltage source: v(p) - v(m) = gain * (v(c) - v(d)).
class Vcvs : public Device {
 public:
  Vcvs(std::string name, NodeId p, NodeId m, NodeId c, NodeId d, double gain)
      : Device(std::move(name)), p_(p), m_(m), c_(c), d_(d), gain_(gain) {}

  int num_branches() const override { return 1; }

  double gain() const { return gain_; }
  void set_gain(double gain) { gain_ = gain; }

  void stamp(RealStamper& s, const Solution&, const StampParams&) const override {
    const int b = branch_base();
    s.add_branch_incidence(p_, m_, b);
    const int ub = s.layout().branch_unknown(b);
    s.add_entry(ub, s.layout().node_unknown(c_), -gain_);
    s.add_entry(ub, s.layout().node_unknown(d_), gain_);
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double) const override {
    const int b = branch_base();
    s.add_branch_incidence(p_, m_, b);
    const int ub = s.layout().branch_unknown(b);
    s.add_entry(ub, s.layout().node_unknown(c_), std::complex<double>(-gain_));
    s.add_entry(ub, s.layout().node_unknown(d_), std::complex<double>(gain_));
  }

  DeviceDesc describe() const override {
    return {"vcvs", {p_, m_, c_, d_}, {{"gain", gain_}}, {}};
  }

 private:
  NodeId p_, m_, c_, d_;
  double gain_;
};

/// Current-controlled current source: i(p->m) = gain * i(ctrl), where the
/// controlling current is the branch current of another device (typically a
/// 0 V voltage source used as an ammeter).
class Cccs : public Device {
 public:
  Cccs(std::string name, NodeId p, NodeId m, const Device* control, double gain)
      : Device(std::move(name)), p_(p), m_(m), control_(control), gain_(gain) {
    if (control_ == nullptr || control_->num_branches() == 0)
      throw std::invalid_argument("Cccs control device must own a branch current");
  }

  void stamp(RealStamper& s, const Solution&, const StampParams&) const override {
    const int ub = s.layout().branch_unknown(control_->branch_base());
    const int up = s.layout().node_unknown(p_);
    const int um = s.layout().node_unknown(m_);
    if (up >= 0) s.add_entry(up, ub, gain_);
    if (um >= 0) s.add_entry(um, ub, -gain_);
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double) const override {
    const int ub = s.layout().branch_unknown(control_->branch_base());
    const int up = s.layout().node_unknown(p_);
    const int um = s.layout().node_unknown(m_);
    if (up >= 0) s.add_entry(up, ub, std::complex<double>(gain_));
    if (um >= 0) s.add_entry(um, ub, std::complex<double>(-gain_));
  }

  DeviceDesc describe() const override {
    return {"cccs", {p_, m_}, {{"gain", gain_}}, {{"control", control_->name()}}};
  }

 private:
  NodeId p_, m_;
  const Device* control_;
  double gain_;
};

/// Current-controlled voltage source: v(p) - v(m) = r * i(ctrl).
class Ccvs : public Device {
 public:
  Ccvs(std::string name, NodeId p, NodeId m, const Device* control, double r)
      : Device(std::move(name)), p_(p), m_(m), control_(control), r_(r) {
    if (control_ == nullptr || control_->num_branches() == 0)
      throw std::invalid_argument("Ccvs control device must own a branch current");
  }

  int num_branches() const override { return 1; }

  void stamp(RealStamper& s, const Solution&, const StampParams&) const override {
    const int b = branch_base();
    s.add_branch_incidence(p_, m_, b);
    const int ub = s.layout().branch_unknown(b);
    s.add_entry(ub, s.layout().branch_unknown(control_->branch_base()), -r_);
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double) const override {
    const int b = branch_base();
    s.add_branch_incidence(p_, m_, b);
    const int ub = s.layout().branch_unknown(b);
    s.add_entry(ub, s.layout().branch_unknown(control_->branch_base()),
                std::complex<double>(-r_));
  }

  DeviceDesc describe() const override {
    return {"ccvs", {p_, m_}, {{"r", r_}}, {{"control", control_->name()}}};
  }

 private:
  NodeId p_, m_;
  const Device* control_;
  double r_;
};

}  // namespace rfmix::spice
