// Stamping helpers: devices describe their linearized contributions through
// these, and never touch matrix indices directly. Ground rows/columns are
// dropped here, so device code can stamp node 0 freely.
#pragma once

#include <complex>

#include "mathx/matrix.hpp"
#include "mathx/sparse.hpp"
#include "spice/types.hpp"

namespace rfmix::spice {

/// Real-valued stamper for DC and transient Newton iterations.
/// Builds G (triplets) and b for the linear system G x = b. Sign
/// conventions:
///  * add_conductance(p, m, g): conductance g between p and m.
///  * add_device_current(p, m, i): constant current i flowing from p to m
///    *through the device* (so it leaves node p and enters node m).
///  * add_entry(row_unknown, col_unknown, v): raw matrix access for branch
///    equations.
class RealStamper {
 public:
  RealStamper(mathx::TripletMatrix<double>& g, mathx::VectorD& b, MnaLayout layout)
      : g_(g), b_(b), layout_(layout) {}

  const MnaLayout& layout() const { return layout_; }

  void add_conductance(NodeId p, NodeId m, double g) {
    const int up = layout_.node_unknown(p);
    const int um = layout_.node_unknown(m);
    if (up >= 0) g_.add(up, up, g);
    if (um >= 0) g_.add(um, um, g);
    if (up >= 0 && um >= 0) {
      g_.add(up, um, -g);
      g_.add(um, up, -g);
    }
  }

  /// Transconductance: current gm * (v(c) - v(d)) flows from p to m through
  /// the device.
  void add_vccs(NodeId p, NodeId m, NodeId c, NodeId d, double gm) {
    const int up = layout_.node_unknown(p);
    const int um = layout_.node_unknown(m);
    const int uc = layout_.node_unknown(c);
    const int ud = layout_.node_unknown(d);
    if (up >= 0 && uc >= 0) g_.add(up, uc, gm);
    if (up >= 0 && ud >= 0) g_.add(up, ud, -gm);
    if (um >= 0 && uc >= 0) g_.add(um, uc, -gm);
    if (um >= 0 && ud >= 0) g_.add(um, ud, gm);
  }

  void add_device_current(NodeId p, NodeId m, double i) {
    const int up = layout_.node_unknown(p);
    const int um = layout_.node_unknown(m);
    if (up >= 0) b_[static_cast<std::size_t>(up)] -= i;
    if (um >= 0) b_[static_cast<std::size_t>(um)] += i;
  }

  /// Raw matrix entry by unknown index (use layout() to compute indices).
  void add_entry(int row_unknown, int col_unknown, double v) {
    if (row_unknown >= 0 && col_unknown >= 0)
      g_.add(static_cast<std::size_t>(row_unknown), static_cast<std::size_t>(col_unknown), v);
  }

  void add_rhs(int row_unknown, double v) {
    if (row_unknown >= 0) b_[static_cast<std::size_t>(row_unknown)] += v;
  }

  /// Branch coupling for a voltage-defined device: current unknown ib flows
  /// from p to m; KCL rows get +-1 in the branch column.
  void add_branch_incidence(NodeId p, NodeId m, int branch) {
    const int ub = layout_.branch_unknown(branch);
    const int up = layout_.node_unknown(p);
    const int um = layout_.node_unknown(m);
    if (up >= 0) {
      g_.add(up, ub, 1.0);
      g_.add(ub, up, 1.0);
    }
    if (um >= 0) {
      g_.add(um, ub, -1.0);
      g_.add(ub, um, -1.0);
    }
  }

 private:
  mathx::TripletMatrix<double>& g_;
  mathx::VectorD& b_;
  MnaLayout layout_;
};

/// Complex stamper for AC analysis (same conventions, complex admittances).
class ComplexStamper {
 public:
  ComplexStamper(mathx::TripletMatrix<std::complex<double>>& y, mathx::VectorC& b,
                 MnaLayout layout)
      : y_(y), b_(b), layout_(layout) {}

  const MnaLayout& layout() const { return layout_; }

  void add_admittance(NodeId p, NodeId m, std::complex<double> y) {
    const int up = layout_.node_unknown(p);
    const int um = layout_.node_unknown(m);
    if (up >= 0) y_.add(up, up, y);
    if (um >= 0) y_.add(um, um, y);
    if (up >= 0 && um >= 0) {
      y_.add(up, um, -y);
      y_.add(um, up, -y);
    }
  }

  void add_vccs(NodeId p, NodeId m, NodeId c, NodeId d, std::complex<double> gm) {
    const int up = layout_.node_unknown(p);
    const int um = layout_.node_unknown(m);
    const int uc = layout_.node_unknown(c);
    const int ud = layout_.node_unknown(d);
    if (up >= 0 && uc >= 0) y_.add(up, uc, gm);
    if (up >= 0 && ud >= 0) y_.add(up, ud, -gm);
    if (um >= 0 && uc >= 0) y_.add(um, uc, -gm);
    if (um >= 0 && ud >= 0) y_.add(um, ud, gm);
  }

  void add_current_source(NodeId p, NodeId m, std::complex<double> i) {
    const int up = layout_.node_unknown(p);
    const int um = layout_.node_unknown(m);
    if (up >= 0) b_[static_cast<std::size_t>(up)] -= i;
    if (um >= 0) b_[static_cast<std::size_t>(um)] += i;
  }

  void add_entry(int row_unknown, int col_unknown, std::complex<double> v) {
    if (row_unknown >= 0 && col_unknown >= 0)
      y_.add(static_cast<std::size_t>(row_unknown), static_cast<std::size_t>(col_unknown), v);
  }

  void add_rhs(int row_unknown, std::complex<double> v) {
    if (row_unknown >= 0) b_[static_cast<std::size_t>(row_unknown)] += v;
  }

  void add_branch_incidence(NodeId p, NodeId m, int branch) {
    const int ub = layout_.branch_unknown(branch);
    const int up = layout_.node_unknown(p);
    const int um = layout_.node_unknown(m);
    if (up >= 0) {
      y_.add(up, ub, 1.0);
      y_.add(ub, up, 1.0);
    }
    if (um >= 0) {
      y_.add(um, ub, -1.0);
      y_.add(ub, um, -1.0);
    }
  }

 private:
  mathx::TripletMatrix<std::complex<double>>& y_;
  mathx::VectorC& b_;
  MnaLayout layout_;
};

}  // namespace rfmix::spice
