// Fundamental types shared across the circuit simulator: node handles,
// solution vectors, and unknown-vector layout.
//
// MNA unknown ordering: node voltages for nodes 1..N-1 (ground, node 0, is
// eliminated) followed by branch currents for devices that need them
// (voltage sources, inductors, VCVS, CCVS).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace rfmix::spice {

/// Index into a Circuit's node table. Node 0 is always ground.
using NodeId = int;

inline constexpr NodeId kGround = 0;

/// Layout of the MNA unknown vector.
struct MnaLayout {
  int num_nodes = 0;     // including ground
  int num_branches = 0;  // extra current unknowns

  int size() const { return (num_nodes - 1) + num_branches; }

  /// Unknown index for a node voltage, or -1 for ground.
  int node_unknown(NodeId n) const {
    if (n == kGround) return -1;
    if (n < 0 || n >= num_nodes) throw std::out_of_range("node id out of range");
    return n - 1;
  }

  /// Unknown index for a branch current.
  int branch_unknown(int b) const {
    if (b < 0 || b >= num_branches) throw std::out_of_range("branch id out of range");
    return (num_nodes - 1) + b;
  }
};

/// A solved MNA vector with convenient accessors.
class Solution {
 public:
  Solution() = default;
  Solution(MnaLayout layout, std::vector<double> x)
      : layout_(layout), x_(std::move(x)) {
    if (static_cast<int>(x_.size()) != layout_.size())
      throw std::invalid_argument("Solution size mismatch");
  }

  static Solution zeros(MnaLayout layout) {
    return Solution(layout, std::vector<double>(static_cast<std::size_t>(layout.size()), 0.0));
  }

  const MnaLayout& layout() const { return layout_; }

  double v(NodeId n) const {
    const int u = layout_.node_unknown(n);
    return u < 0 ? 0.0 : x_[static_cast<std::size_t>(u)];
  }

  /// Differential voltage v(p) - v(m).
  double vd(NodeId p, NodeId m) const { return v(p) - v(m); }

  double branch_current(int b) const {
    return x_[static_cast<std::size_t>(layout_.branch_unknown(b))];
  }

  const std::vector<double>& raw() const { return x_; }
  std::vector<double>& raw() { return x_; }

 private:
  MnaLayout layout_;
  std::vector<double> x_;
};

/// Which analysis a stamp request belongs to; devices with dynamic elements
/// (C, L) behave differently in DC (open/short) and transient (companion
/// models).
enum class AnalysisMode { kDc, kTransient };

/// Integration method for transient companion models.
enum class Integrator { kBackwardEuler, kTrapezoidal };

class MosBatchEvaluator;

/// Parameters handed to Device::stamp each Newton iteration.
struct StampParams {
  AnalysisMode mode = AnalysisMode::kDc;
  double time = 0.0;       // current timepoint (transient) or 0 (DC)
  double dt = 0.0;         // step size (transient)
  Integrator integrator = Integrator::kBackwardEuler;
  double source_scale = 1.0;  // source stepping homotopy factor in [0,1]
  // Pre-computed batch device evaluations for this iteration (reuse solver
  // mode); devices covered by the batch read their linearization from it
  // instead of re-deriving the model. Null on the classic path.
  const MosBatchEvaluator* batch = nullptr;
};

}  // namespace rfmix::spice
