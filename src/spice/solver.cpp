#include "spice/solver.hpp"

#include "obs/obs.hpp"
#include "spice/circuit.hpp"
#include "spice/mosfet.hpp"

namespace rfmix::spice {

SolverSession::SolverSession() : mode_(solver_mode()) {}

SolverSession::~SolverSession() = default;

const mathx::SparseLu<double>& SolverSession::factor(const mathx::TripletMatrix<double>& g) {
  // Counted before the attempt: a singular pivot still did the work.
  RFMIX_OBS_COUNT("spice.lu.factorizations");
  if (mode_ == SolverMode::kClassic) {
    RFMIX_OBS_COUNT("spice.lu.analyze");
    csc_ = mathx::CscMatrix<double>(g);
    lu_ = mathx::SparseLu<double>(csc_);
    return lu_;
  }
  if (!have_map_ || !map_.matches(g)) {
    if (have_map_) RFMIX_OBS_COUNT("spice.lu.pattern_rebuild");
    map_.build(g);
    have_map_ = true;
    have_sym_ = false;  // the symbolic is tied to the old pattern
  }
  map_.fill(g, csc_);
  if (have_sym_) {
    // Repair mode: on pivot drift the factorization continues as a fresh
    // analysis from the drift column (rewriting sym_ in place) instead of
    // throwing away the columns already eliminated and restarting — without
    // it, drift-heavy circuits pay a wasted partial refactor plus a full
    // re-analysis and reuse can lose to classic.
    bool repaired = false;
    if (lu_.refactor_from(sym_, csc_, 0.0, &sym_, &repaired)) {
      if (repaired) {
        RFMIX_OBS_COUNT("spice.lu.fallback");
        RFMIX_OBS_COUNT("spice.lu.analyze");
      } else {
        RFMIX_OBS_COUNT("spice.lu.refactor");
      }
      return lu_;
    }
    RFMIX_OBS_COUNT("spice.lu.fallback");
  }
  RFMIX_OBS_COUNT("spice.lu.analyze");
  lu_ = mathx::SparseLu<double>(csc_, sym_);
  have_sym_ = true;
  return lu_;
}

MosBatchEvaluator* SolverSession::batch(const Circuit& ckt) {
  if (mode_ == SolverMode::kClassic) return nullptr;
  if (batch_ckt_ != &ckt) {
    batch_ = std::make_unique<MosBatchEvaluator>(ckt);
    batch_ckt_ = &ckt;
  }
  return batch_->device_count() > 0 ? batch_.get() : nullptr;
}

}  // namespace rfmix::spice
