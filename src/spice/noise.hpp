// LTI noise analysis via the adjoint (transposed-system) method.
//
// For each analysis frequency the complex MNA matrix Y is assembled at the
// operating point and the transposed system Y^T y = e_out is solved once,
// where e_out selects the differential output. The transfer magnitude from a
// noise current source injected between nodes (p, m) to the output voltage is
// then |y_p - y_m|, so the total output noise is a single pass over all
// device noise sources per frequency — the textbook adjoint-network method.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace rfmix::spice {

struct NoiseContribution {
  std::string label;
  double output_psd_v2_hz = 0.0;  // contribution to output voltage noise [V^2/Hz]
};

struct NoisePoint {
  double freq_hz = 0.0;
  double total_output_psd_v2_hz = 0.0;
  std::vector<NoiseContribution> contributions;
};

struct NoiseResult {
  std::vector<NoisePoint> points;

  /// Output noise voltage density [V/sqrt(Hz)] at point i.
  double output_density(std::size_t i) const;

  /// Sum of contributions whose label contains `substr` at point i.
  double contribution_psd(std::size_t i, const std::string& substr) const;
};

/// Compute output noise at the differential output (out_p, out_m) across
/// `freqs_hz`.
NoiseResult noise_analysis(Circuit& ckt, const Solution& op, NodeId out_p, NodeId out_m,
                           const std::vector<double>& freqs_hz, double gmin = 1e-12);

}  // namespace rfmix::spice
