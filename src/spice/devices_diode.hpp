// Junction diode with exponential I-V, Newton companion stamping and shot
// noise. Used in tests and in ESD/clamp structures of example circuits.
#pragma once

#include <algorithm>
#include <cmath>

#include "mathx/units.hpp"
#include "spice/device.hpp"

namespace rfmix::spice {

struct DiodeParams {
  double is = 1e-14;       // saturation current [A]
  double n = 1.0;          // ideality factor
  double temperature_k = 300.0;
};

class Diode : public Device {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params = {})
      : Device(std::move(name)), a_(anode), c_(cathode), p_(params) {}

  void stamp(RealStamper& s, const Solution& x, const StampParams&) const override {
    const double vt = p_.n * mathx::kBoltzmann * p_.temperature_k / mathx::kElementaryCharge;
    // Exponent limiting keeps the Newton iteration finite for wild trial
    // points; the limited model is still C1-continuous.
    const double v = x.vd(a_, c_);
    const double vmax = 40.0 * vt;
    double id, gd;
    if (v < vmax) {
      const double e = std::exp(v / vt);
      id = p_.is * (e - 1.0);
      gd = p_.is * e / vt;
    } else {
      const double e = std::exp(vmax / vt);
      gd = p_.is * e / vt;
      id = p_.is * (e - 1.0) + gd * (v - vmax);
    }
    gd = std::max(gd, 1e-12);
    s.add_conductance(a_, c_, gd);
    s.add_device_current(a_, c_, id - gd * v);
  }

  void stamp_ac(ComplexStamper& s, const Solution& op, double) const override {
    const double vt = p_.n * mathx::kBoltzmann * p_.temperature_k / mathx::kElementaryCharge;
    const double v = std::min(op.vd(a_, c_), 40.0 * vt);
    const double gd = std::max(p_.is * std::exp(v / vt) / vt, 1e-12);
    s.add_admittance(a_, c_, gd);
  }

  void append_noise(std::vector<NoiseSource>& out, const Solution& op) const override {
    const double vt = p_.n * mathx::kBoltzmann * p_.temperature_k / mathx::kElementaryCharge;
    const double v = std::min(op.vd(a_, c_), 40.0 * vt);
    const double id = p_.is * (std::exp(v / vt) - 1.0);
    const double psd = 2.0 * mathx::kElementaryCharge * std::abs(id);
    out.push_back(NoiseSource{a_, c_, [psd](double) { return psd; }, name() + ".shot"});
  }

  DeviceDesc describe() const override {
    return {"diode",
            {a_, c_},
            {{"is", p_.is}, {"n", p_.n}, {"temp", p_.temperature_k}},
            {}};
  }

 private:
  NodeId a_, c_;
  DiodeParams p_;
};

}  // namespace rfmix::spice
