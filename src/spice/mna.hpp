// MNA system assembly shared by the DC, transient, AC and noise analyses.
#pragma once

#include "mathx/lu.hpp"
#include "mathx/sparse.hpp"
#include "spice/circuit.hpp"

namespace rfmix::spice {

/// Assemble the real linearized system G x = b at candidate solution `x`.
inline void assemble_real(const Circuit& ckt, const Solution& x, const StampParams& p,
                          double gmin, mathx::TripletMatrix<double>& g,
                          mathx::VectorD& b) {
  const MnaLayout layout = ckt.layout();
  RealStamper stamper(g, b, layout);
  for (const auto& dev : ckt.devices()) dev->stamp(stamper, x, p);
  // gmin from every node to ground keeps floating subnets solvable.
  if (gmin > 0.0) {
    for (int n = 1; n < layout.num_nodes; ++n)
      g.add(static_cast<std::size_t>(layout.node_unknown(n)),
            static_cast<std::size_t>(layout.node_unknown(n)), gmin);
  }
}

/// Assemble the complex small-signal system Y x = b at operating point `op`
/// and angular frequency `omega`.
inline void assemble_ac(const Circuit& ckt, const Solution& op, double omega, double gmin,
                        mathx::TripletMatrix<std::complex<double>>& y, mathx::VectorC& b) {
  const MnaLayout layout = ckt.layout();
  ComplexStamper stamper(y, b, layout);
  for (const auto& dev : ckt.devices()) dev->stamp_ac(stamper, op, omega);
  if (gmin > 0.0) {
    for (int n = 1; n < layout.num_nodes; ++n)
      y.add(static_cast<std::size_t>(layout.node_unknown(n)),
            static_cast<std::size_t>(layout.node_unknown(n)), gmin);
  }
}

}  // namespace rfmix::spice
