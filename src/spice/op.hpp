// DC operating-point solver: Newton-Raphson with step damping, plus gmin
// stepping and source stepping homotopies for hard bias points.
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace rfmix::spice {

class SolverSession;

struct NewtonOptions {
  int max_iterations = 200;
  double reltol = 1e-4;
  double abstol_v = 1e-7;   // volts
  double abstol_i = 1e-10;  // amps (branch unknowns)
  double gmin = 1e-12;
  double max_step_v = 0.5;  // per-iteration Newton step clamp [V]
};

struct OpOptions {
  NewtonOptions newton;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
};

struct NewtonResult {
  Solution solution;
  bool converged = false;
  int iterations = 0;
};

/// One Newton solve at fixed StampParams, starting from `initial`. Pass a
/// SolverSession to reuse the stamp mapping / symbolic LU / batch device
/// caches across calls (timesteps, sweep points); with no session each call
/// opens a private one.
NewtonResult solve_newton(const Circuit& ckt, const Solution& initial,
                          const StampParams& params, const NewtonOptions& opts,
                          SolverSession* session = nullptr);

/// Full DC operating point with homotopy fallbacks. Throws
/// ConvergenceError if every strategy fails.
Solution dc_operating_point(Circuit& ckt, const OpOptions& opts = {},
                            SolverSession* session = nullptr);

/// Total power delivered by sources / dissipated in devices at `op` [W].
double total_dissipated_power(const Circuit& ckt, const Solution& op);

class ConvergenceError : public std::runtime_error {
 public:
  explicit ConvergenceError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace rfmix::spice
