// Magnetically coupled inductors and the ideal-transformer limit — the
// substrate for the RF balun at the head of the Fig. 2 front end ("the
// differential ended RF input is taken by RF balun using 50 ohm input
// impedance termination").
#pragma once

#include <cmath>
#include <stdexcept>

#include "spice/circuit.hpp"
#include "spice/device.hpp"

namespace rfmix::spice {

/// Two coupled inductors with coupling factor k:
///   v1 = L1 di1/dt + M di2/dt,   v2 = M di1/dt + L2 di2/dt,  M = k sqrt(L1 L2).
/// Two branch-current unknowns. DC: both windings are shorts. Transient
/// uses the backward-Euler/trapezoidal companion of the full 2x2 inductance
/// matrix; AC stamps the complex impedance matrix.
class CoupledInductors : public Device {
 public:
  CoupledInductors(std::string name, NodeId p1, NodeId m1, NodeId p2, NodeId m2,
                   double l1, double l2, double k, double r_winding = 0.1)
      : Device(std::move(name)), p1_(p1), m1_(m1), p2_(p2), m2_(m2), l1_(l1), l2_(l2),
        k_(k), resr_(r_winding) {
    if (!(r_winding > 0.0))
      throw std::invalid_argument(
          "CoupledInductors: winding resistance must be positive (a perfect "
          "winding in parallel with a voltage source is structurally singular)");
    if (!(l1 > 0.0) || !(l2 > 0.0))
      throw std::invalid_argument("CoupledInductors: inductances must be positive");
    if (!(k >= 0.0) || !(k < 1.0))
      throw std::invalid_argument("CoupledInductors: need 0 <= k < 1");
    m_ = k_ * std::sqrt(l1_ * l2_);
  }

  int num_branches() const override { return 2; }

  double mutual() const { return m_; }

  void stamp(RealStamper& s, const Solution&, const StampParams& p) const override {
    const int b1 = branch_base();
    const int b2 = branch_base() + 1;
    s.add_branch_incidence(p1_, m1_, b1);
    s.add_branch_incidence(p2_, m2_, b2);
    const int u1 = s.layout().branch_unknown(b1);
    const int u2 = s.layout().branch_unknown(b2);
    // Winding resistance keeps the DC system nonsingular and models copper
    // loss: v = i*resr + L di/dt.
    s.add_entry(u1, u1, -resr_);
    s.add_entry(u2, u2, -resr_);
    if (p.mode == AnalysisMode::kDc) return;  // otherwise shorts in DC

    // Companion: v = (L/h') (i - i_prev) [+ v_prev for trapezoidal], with
    // h' = dt (BE) or dt/2 (trap), applied to the full inductance matrix.
    const double hp =
        p.integrator == Integrator::kBackwardEuler ? p.dt : p.dt / 2.0;
    const double r11 = l1_ / hp, r22 = l2_ / hp, r12 = m_ / hp;
    s.add_entry(u1, u1, -r11);
    s.add_entry(u1, u2, -r12);
    s.add_entry(u2, u1, -r12);
    s.add_entry(u2, u2, -r22);
    double rhs1 = -(r11 * i1_prev_ + r12 * i2_prev_);
    double rhs2 = -(r12 * i1_prev_ + r22 * i2_prev_);
    if (p.integrator == Integrator::kTrapezoidal) {
      rhs1 -= v1_prev_;
      rhs2 -= v2_prev_;
    }
    s.add_rhs(u1, rhs1);
    s.add_rhs(u2, rhs2);
  }

  void stamp_ac(ComplexStamper& s, const Solution&, double omega) const override {
    const int b1 = branch_base();
    const int b2 = branch_base() + 1;
    s.add_branch_incidence(p1_, m1_, b1);
    s.add_branch_incidence(p2_, m2_, b2);
    const int u1 = s.layout().branch_unknown(b1);
    const int u2 = s.layout().branch_unknown(b2);
    const std::complex<double> jw(0.0, omega);
    s.add_entry(u1, u1, -(resr_ + jw * l1_));
    s.add_entry(u1, u2, -jw * m_);
    s.add_entry(u2, u1, -jw * m_);
    s.add_entry(u2, u2, -(resr_ + jw * l2_));
  }

  void tran_begin(const Solution& op) override {
    i1_prev_ = op.branch_current(branch_base());
    i2_prev_ = op.branch_current(branch_base() + 1);
    v1_prev_ = op.vd(p1_, m1_);
    v2_prev_ = op.vd(p2_, m2_);
  }

  void tran_accept(const Solution& x, const StampParams&) override {
    i1_prev_ = x.branch_current(branch_base());
    i2_prev_ = x.branch_current(branch_base() + 1);
    v1_prev_ = x.vd(p1_, m1_);
    v2_prev_ = x.vd(p2_, m2_);
  }

  DeviceDesc describe() const override {
    return {"coupledind",
            {p1_, m1_, p2_, m2_},
            {{"l1", l1_}, {"l2", l2_}, {"k", k_}, {"resr", resr_}},
            {}};
  }

 private:
  NodeId p1_, m1_, p2_, m2_;
  double l1_, l2_, k_, m_;
  double resr_;
  double i1_prev_ = 0.0, i2_prev_ = 0.0;
  double v1_prev_ = 0.0, v2_prev_ = 0.0;
};

/// Convenience: add a 1:n balun (single-ended input, differential output
/// around a center-tap node) built from two tightly coupled secondaries.
struct BalunNodes {
  NodeId out_p, out_m;
};

inline BalunNodes add_balun(Circuit& ckt, const std::string& name, NodeId in,
                            NodeId center_tap, double l_primary = 5e-9,
                            double turns_ratio = 1.0, double k = 0.98) {
  const NodeId out_p = ckt.node(name + "_p");
  const NodeId out_m = ckt.node(name + "_m");
  const double l_half = l_primary * turns_ratio * turns_ratio / 2.0;
  ckt.add<CoupledInductors>(name + "_t1", in, kGround, out_p, center_tap, l_primary,
                            l_half, k);
  ckt.add<CoupledInductors>(name + "_t2", kGround, in, out_m, center_tap, l_primary,
                            l_half, k);
  return {out_p, out_m};
}

}  // namespace rfmix::spice
