#include "spice/op.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "mathx/lu.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "spice/mna.hpp"
#include "spice/mosfet.hpp"
#include "spice/solver.hpp"

namespace rfmix::spice {

namespace {

bool step_converged(const MnaLayout& layout, const mathx::VectorD& x_old,
                    const mathx::VectorD& x_new, const NewtonOptions& opts) {
  const int nv = layout.num_nodes - 1;
  for (int i = 0; i < layout.size(); ++i) {
    const double dx = std::abs(x_new[static_cast<std::size_t>(i)] -
                               x_old[static_cast<std::size_t>(i)]);
    const double mag = std::max(std::abs(x_new[static_cast<std::size_t>(i)]),
                                std::abs(x_old[static_cast<std::size_t>(i)]));
    const double abstol = i < nv ? opts.abstol_v : opts.abstol_i;
    if (dx > abstol + opts.reltol * mag) return false;
  }
  return true;
}

}  // namespace

NewtonResult solve_newton(const Circuit& ckt, const Solution& initial,
                          const StampParams& params, const NewtonOptions& opts,
                          SolverSession* session) {
  const MnaLayout layout = ckt.layout();
  const std::size_t n = static_cast<std::size_t>(layout.size());

  std::unique_ptr<SolverSession> local;
  if (session == nullptr) {
    local = std::make_unique<SolverSession>();
    session = local.get();
  }
  MosBatchEvaluator* batch = session->batch(ckt);
  StampParams sp = params;
  sp.batch = batch;

  NewtonResult result;
  result.solution = initial;

  RFMIX_OBS_COUNT("spice.newton.solves");

  mathx::TripletMatrix<double> g(n, n);
  mathx::VectorD b;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    RFMIX_OBS_COUNT("spice.newton.iterations");
    g.clear();
    b.assign(n, 0.0);
    if (batch != nullptr) batch->evaluate(result.solution);
    assemble_real(ckt, result.solution, sp, opts.gmin, g, b);

    mathx::VectorD x_new;
    try {
      x_new = session->factor(g).solve(b);
    } catch (const mathx::SingularMatrixError&) {
      // Singular Jacobian mid-iteration: bail out; the caller's homotopy
      // (larger gmin) usually repairs this.
      RFMIX_OBS_COUNT("spice.newton.singular");
      result.converged = false;
      result.iterations = iter + 1;
      return result;
    }

    // Damping: clamp the largest voltage move to max_step_v. This is the
    // global-convergence guard for the exponential EKV/diode models.
    const mathx::VectorD& x_old = result.solution.raw();
    double max_dv = 0.0;
    const int nv = layout.num_nodes - 1;
    for (int i = 0; i < nv; ++i)
      max_dv = std::max(max_dv, std::abs(x_new[static_cast<std::size_t>(i)] -
                                         x_old[static_cast<std::size_t>(i)]));
    double alpha = 1.0;
    if (max_dv > opts.max_step_v) alpha = opts.max_step_v / max_dv;

    mathx::VectorD x_next(n);
    for (std::size_t i = 0; i < n; ++i)
      x_next[i] = x_old[i] + alpha * (x_new[i] - x_old[i]);

    const bool full_step = alpha == 1.0;
    const bool converged = full_step && step_converged(layout, x_old, x_new, opts);
    result.solution = Solution(layout, std::move(x_next));
    result.iterations = iter + 1;
    if (converged) {
      if (batch != nullptr && batch->tol_bypass_used()) {
        // Convergence was reached with stale (within-tolerance) device
        // linearizations; re-certify with a fully evaluated iteration.
        RFMIX_OBS_COUNT("spice.newton.bypass_recheck");
        batch->invalidate();
        continue;
      }
      result.converged = true;
      return result;
    }
  }
  RFMIX_OBS_COUNT("spice.newton.nonconverged");
  result.converged = false;
  return result;
}

Solution dc_operating_point(Circuit& ckt, const OpOptions& opts, SolverSession* session) {
  RFMIX_OBS_SCOPED_TIMER("spice.op");
  RFMIX_OBS_TRACE_SCOPE("spice.op");
  RFMIX_OBS_COUNT("spice.op.calls");
  const MnaLayout layout = ckt.finalize();
  std::unique_ptr<SolverSession> local;
  if (session == nullptr) {
    local = std::make_unique<SolverSession>();
    session = local.get();
  }
  StampParams params;
  params.mode = AnalysisMode::kDc;

  // Plain Newton from zero.
  NewtonResult r = solve_newton(ckt, Solution::zeros(layout), params, opts.newton, session);
  if (r.converged) return r.solution;

  // gmin stepping: start heavily damped, relax gmin geometrically, warm-
  // starting each stage from the previous solution.
  if (opts.allow_gmin_stepping) {
    NewtonOptions n = opts.newton;
    Solution x = Solution::zeros(layout);
    bool ok = true;
    for (double gmin = 1e-2; gmin >= opts.newton.gmin; gmin /= 10.0) {
      RFMIX_OBS_COUNT("spice.op.gmin_steps");
      n.gmin = gmin;
      NewtonResult stage = solve_newton(ckt, x, params, n, session);
      if (!stage.converged) {
        ok = false;
        break;
      }
      x = stage.solution;
    }
    if (ok) {
      n.gmin = opts.newton.gmin;
      NewtonResult final = solve_newton(ckt, x, params, n, session);
      if (final.converged) return final.solution;
    }
  }

  // Source stepping: ramp all independent sources from 0 to full value.
  if (opts.allow_source_stepping) {
    Solution x = Solution::zeros(layout);
    bool ok = true;
    for (double scale : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      RFMIX_OBS_COUNT("spice.op.source_steps");
      StampParams sp = params;
      sp.source_scale = scale;
      NewtonResult stage = solve_newton(ckt, x, sp, opts.newton, session);
      if (!stage.converged) {
        ok = false;
        break;
      }
      x = stage.solution;
    }
    if (ok) return x;
  }

  throw ConvergenceError("dc_operating_point: no convergence (plain, gmin, source stepping)");
}

double total_dissipated_power(const Circuit& ckt, const Solution& op) {
  double p = 0.0;
  for (const auto& dev : ckt.devices()) p += dev->dissipated_power(op);
  return p;
}

}  // namespace rfmix::spice
