// MOSFET device with two model levels:
//  * kEkv  — simplified EKV all-region model. Smooth (C-infinity) in every
//            operating region, which is what lets Newton iterate through the
//            reconfigurable mixer's mode-switching bias points without
//            region-boundary chatter. Includes channel-length modulation via
//            a smooth |vds| factor, channel thermal noise and flicker noise.
//  * kLevel1 — classic square-law model (cutoff/triode/saturation) used by
//            tests as an independent cross-check of the EKV implementation.
//
// Terminal capacitances (Cgs/Cgd/Cdb/Csb) are constant, geometry-derived
// linear capacitors owned by the device (the C-V nonlinearity of a real
// BSIM model is a documented substitution — see DESIGN.md). They are stamped
// in transient and AC, and ignored in DC.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/device.hpp"
#include "spice/devices_passive.hpp"

namespace rfmix::spice {

class Circuit;

enum class MosType { kNmos, kPmos };
enum class MosModelLevel { kEkv, kLevel1 };

struct MosParams {
  MosType type = MosType::kNmos;
  MosModelLevel level = MosModelLevel::kEkv;

  double w = 1e-6;        // channel width [m]
  double l = 65e-9;       // channel length [m]

  double vto = 0.35;      // threshold voltage magnitude [V]
  double kp = 400e-6;     // transconductance parameter mu*Cox [A/V^2]
  double n_slope = 1.35;  // subthreshold slope factor (EKV n)
  double lambda = 0.15;   // channel-length modulation [1/V]
  double cox = 1.5e-2;    // gate oxide capacitance per area [F/m^2]
  double cov = 3e-10;     // overlap capacitance per width [F/m]
  double cj_sd = 8e-10;   // junction capacitance per width (drain/source) [F/m]

  double temperature_k = 300.0;
  double noise_gamma = 1.0;  // channel thermal noise excess factor
  double kf = 2e-31;         // flicker coefficient: Sid = kf*gm^2/(Cox*W*L*f^af)
  double af = 1.0;           // flicker frequency exponent

  double beta() const { return kp * w / l; }
};

/// One linearization of the DC drain-current model: the signed drain
/// current plus its partials wrt the absolute terminal voltages. This is
/// what a Newton iteration stamps; the batch evaluator produces one per
/// bound transistor per iteration.
struct MosEval {
  double ids = 0.0;        // current into drain, out of source (signed)
  double dg = 0.0, dd = 0.0, ds = 0.0, db = 0.0;  // d ids / d v{g,d,s,b}
};

/// Operating-point summary of one transistor, exposed for tests, power
/// accounting and design scripts.
struct MosOperatingPoint {
  double ids = 0.0;  // drain current, positive into drain for NMOS convention
  double gm = 0.0;   // d ids / d vg
  double gds = 0.0;  // d ids / d vd
  double gmb = 0.0;  // d ids / d vb
  double vgs = 0.0;
  double vds = 0.0;
};

class Mosfet : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b, MosParams params);

  const MosParams& params() const { return p_; }
  MosParams& mutable_params() { return p_; }

  NodeId drain() const { return d_; }
  NodeId gate() const { return g_; }
  NodeId source() const { return s_; }
  NodeId bulk() const { return b_; }

  void stamp(RealStamper& s, const Solution& x, const StampParams& sp) const override;
  void stamp_ac(ComplexStamper& s, const Solution& op, double omega) const override;
  void append_noise(std::vector<NoiseSource>& out, const Solution& op) const override;
  void tran_begin(const Solution& op) override;
  void tran_accept(const Solution& x, const StampParams& sp) override;
  double dissipated_power(const Solution& op) const override;

  /// Evaluate the DC model at the operating point (terminal voltages taken
  /// from `op`).
  MosOperatingPoint evaluate(const Solution& op) const;

  /// Linearize the DC drain-current model at the given absolute terminal
  /// voltages. The batch evaluator routes through this same model core, so
  /// batch and per-device results are bitwise identical.
  MosEval eval(double vg, double vd, double vs, double vb) const;

  DeviceDesc describe() const override {
    return {"mosfet",
            {d_, g_, s_, b_},
            {{"w", p_.w},
             {"l", p_.l},
             {"vto", p_.vto},
             {"kp", p_.kp},
             {"n", p_.n_slope},
             {"lambda", p_.lambda},
             {"cox", p_.cox},
             {"cov", p_.cov},
             {"cjsd", p_.cj_sd},
             {"temp", p_.temperature_k},
             {"gamma", p_.noise_gamma},
             {"kf", p_.kf},
             {"af", p_.af}},
            {{"type", p_.type == MosType::kNmos ? "nmos" : "pmos"},
             {"level", p_.level == MosModelLevel::kEkv ? "ekv" : "level1"}}};
  }

 private:
  NodeId d_, g_, s_, b_;
  MosParams p_;
  // Geometry-derived constant parasitics, composed (not registered in the
  // circuit; this device forwards stamp/transient calls).
  std::unique_ptr<Capacitor> cgs_, cgd_, cdb_, csb_;
};

/// Structure-of-arrays batch evaluator: binds every Mosfet in a circuit
/// once, grouped by model class (EKV/level-1 x NMOS/PMOS), and linearizes
/// each group in one tight loop per Newton iteration. Each per-element
/// computation calls the same model core as Mosfet::eval, so the batch is
/// bitwise identical to the per-device path.
///
/// Device bypass: a transistor whose four terminal voltages are bitwise
/// unchanged since its last evaluation keeps the cached linearization
/// (exact by definition). With RFMIX_BYPASS_TOL > 0 (see docs/solver.md) a
/// device additionally bypasses when every terminal moved by less than the
/// tolerance; that result is approximate, so tol_bypass_used() reports it
/// and the Newton loop re-certifies convergence with a full evaluation.
class MosBatchEvaluator {
 public:
  /// Bind all Mosfet devices currently registered in `ckt`.
  explicit MosBatchEvaluator(const Circuit& ckt);

  std::size_t device_count() const { return count_; }

  /// Linearize every bound device at `x` (counts spice.dev.evaluated and
  /// spice.dev.bypassed).
  void evaluate(const Solution& x);

  /// True if the last evaluate() reused any within-tolerance (inexact)
  /// cached result.
  bool tol_bypass_used() const { return tol_bypassed_; }

  /// Drop all cached linearizations, forcing the next evaluate() to be full.
  void invalidate();

  /// Cached linearization for `m`, or null if `m` is not bound.
  const MosEval* lookup(const Mosfet* m) const;

 private:
  struct Group {
    std::vector<const Mosfet*> devs;
    // SoA inputs/outputs, index-aligned with `devs`.
    std::vector<double> vg, vd, vs, vb;
    std::vector<MosEval> out;
    std::vector<char> valid;
  };
  Group groups_[4];  // [level][type]
  std::unordered_map<const Mosfet*, std::pair<int, std::size_t>> index_;
  std::size_t count_ = 0;
  bool tol_bypassed_ = false;
  double tol_ = 0.0;  // RFMIX_BYPASS_TOL; 0 = exact-only bypass
};

}  // namespace rfmix::spice
