#include "spice/tran.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "spice/mna.hpp"
#include "spice/solver.hpp"

namespace rfmix::spice {

namespace {

NewtonResult solve_timepoint(const Circuit& ckt, const Solution& guess, double time,
                             double dt, const TranOptions& opts, SolverSession& session) {
  StampParams sp;
  sp.mode = AnalysisMode::kTransient;
  sp.time = time;
  sp.dt = dt;
  sp.integrator = opts.integrator;
  return solve_newton(ckt, guess, sp, opts.newton, &session);
}

void accept_step(Circuit& ckt, const Solution& x, double time, double dt,
                 const TranOptions& opts) {
  StampParams sp;
  sp.mode = AnalysisMode::kTransient;
  sp.time = time;
  sp.dt = dt;
  sp.integrator = opts.integrator;
  for (const auto& dev : ckt.devices()) dev->tran_accept(x, sp);
}

}  // namespace

TranResult transient(Circuit& ckt, double t_stop, double dt, const std::vector<Probe>& probes,
                     const TranOptions& opts) {
  if (!(dt > 0.0) || !(t_stop > 0.0))
    throw std::invalid_argument("transient: t_stop and dt must be positive");

  RFMIX_OBS_SCOPED_TIMER("spice.tran");
  RFMIX_OBS_TRACE_SCOPE("spice.tran");
  RFMIX_OBS_COUNT("spice.tran.calls");

  // One session for the whole run: the DC pattern differs from the
  // transient pattern (companion stamps), so the map rebuilds once at the
  // first timestep and is then reused across every step and iteration.
  SolverSession session;

  Solution x0;
  if (opts.initial_state != nullptr) {
    ckt.finalize();
    x0 = *opts.initial_state;
  } else {
    OpOptions op_opts;
    op_opts.newton = opts.newton;
    x0 = dc_operating_point(ckt, op_opts, &session);
  }

  for (const auto& dev : ckt.devices()) dev->tran_begin(x0);

  TranResult result;
  result.waveforms.resize(probes.size());
  auto record = [&](double t, const Solution& x) {
    result.time_s.push_back(t);
    for (std::size_t i = 0; i < probes.size(); ++i)
      result.waveforms[i].push_back(x.vd(probes[i].p, probes[i].m));
  };
  record(0.0, x0);

  Solution x = x0;
  double t = 0.0;

  if (!opts.adaptive) {
    // Fixed grid. The first step uses backward Euler regardless of the
    // requested integrator (the trapezoidal companion needs a consistent
    // initial branch current, which BE establishes).
    const long steps = static_cast<long>(std::llround(t_stop / dt));
    TranOptions step_opts = opts;
    for (long k = 1; k <= steps; ++k) {
      step_opts.integrator =
          (k == 1) ? Integrator::kBackwardEuler : opts.integrator;
      const double t_new = static_cast<double>(k) * dt;
      RFMIX_OBS_COUNT("spice.tran.steps_attempted");
      NewtonResult nr = solve_timepoint(ckt, x, t_new, dt, step_opts, session);
      if (!nr.converged) {
        // One retry from a damped restart before giving up: freeze the
        // previous solution as the guess with a tighter step clamp.
        RFMIX_OBS_COUNT("spice.tran.steps_rejected");
        RFMIX_OBS_COUNT("spice.tran.steps_attempted");
        TranOptions retry = step_opts;
        retry.newton.max_step_v = std::min(0.05, step_opts.newton.max_step_v);
        retry.newton.max_iterations = step_opts.newton.max_iterations * 2;
        nr = solve_timepoint(ckt, x, t_new, dt, retry, session);
        if (!nr.converged) {
          RFMIX_OBS_COUNT("spice.tran.steps_rejected");
          throw ConvergenceError("transient: Newton failed at t=" + std::to_string(t_new));
        }
      }
      RFMIX_OBS_COUNT("spice.tran.steps_accepted");
      x = nr.solution;
      accept_step(ckt, x, t_new, dt, step_opts);
      record(t_new, x);
    }
    result.final_state = x;
    return result;
  }

  // Adaptive stepping: LTE estimated from the divided difference of the two
  // most recent derivative estimates (standard trapezoidal LTE ~ dt^3 x''' /12
  // approximated by comparing with the BE prediction).
  double h = dt;
  const double h_min = dt * opts.dt_min_factor;
  Solution x_prev = x0;
  while (t < t_stop - 1e-18) {
    h = std::min(h, t_stop - t);
    const double t_new = t + h;
    RFMIX_OBS_COUNT("spice.tran.steps_attempted");
    NewtonResult nr = solve_timepoint(ckt, x, t_new, h, opts, session);
    if (!nr.converged) {
      RFMIX_OBS_COUNT("spice.tran.steps_rejected");
      h *= 0.5;
      if (h < h_min)
        throw ConvergenceError("transient(adaptive): step underflow at t=" + std::to_string(t));
      continue;
    }
    // LTE proxy: difference between trapezoidal result and the linear
    // extrapolation from the previous two points.
    double err = 0.0;
    const int nv = ckt.layout().num_nodes - 1;
    for (int i = 0; i < nv; ++i) {
      const double pred = 2.0 * x.raw()[static_cast<std::size_t>(i)] -
                          x_prev.raw()[static_cast<std::size_t>(i)];
      err = std::max(err, std::abs(nr.solution.raw()[static_cast<std::size_t>(i)] - pred));
    }
    if (err > opts.lte_tol && h > h_min * 2.0) {
      RFMIX_OBS_COUNT("spice.tran.steps_rejected");
      h *= 0.5;
      continue;
    }
    RFMIX_OBS_COUNT("spice.tran.steps_accepted");
    x_prev = x;
    x = nr.solution;
    t = t_new;
    accept_step(ckt, x, t_new, h, opts);
    record(t, x);
    if (err < opts.lte_tol * 0.1) h *= 1.5;
  }
  result.final_state = x;
  return result;
}

}  // namespace rfmix::spice
