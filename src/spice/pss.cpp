#include "spice/pss.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "spice/mna.hpp"
#include "spice/solver.hpp"

namespace rfmix::spice {

PssResult periodic_steady_state(Circuit& ckt, double period_s, const PssOptions& opts) {
  if (!(period_s > 0.0)) throw std::invalid_argument("PSS: period must be positive");
  if (opts.samples_per_period < 4)
    throw std::invalid_argument("PSS: need >= 4 samples per period");

  RFMIX_OBS_SCOPED_TIMER("spice.pss");
  RFMIX_OBS_TRACE_SCOPE("spice.pss");
  RFMIX_OBS_COUNT("spice.pss.calls");

  // One session across the DC start and every shooting period.
  SolverSession session;

  OpOptions op_opts;
  op_opts.newton = opts.newton;
  Solution x = dc_operating_point(ckt, op_opts, &session);
  for (const auto& dev : ckt.devices()) dev->tran_begin(x);

  const MnaLayout layout = ckt.layout();
  const int nv = layout.num_nodes - 1;
  const double dt = period_s / opts.samples_per_period;

  PssResult result;
  result.period_s = period_s;

  std::vector<Solution> period(static_cast<std::size_t>(opts.samples_per_period),
                               Solution::zeros(layout));
  std::vector<Solution> prev_period;

  StampParams sp;
  sp.mode = AnalysisMode::kTransient;
  sp.dt = dt;

  long step = 0;
  for (int p = 0; p < opts.max_periods; ++p) {
    RFMIX_OBS_COUNT("spice.pss.periods");
    for (int k = 0; k < opts.samples_per_period; ++k) {
      ++step;
      sp.time = static_cast<double>(step) * dt;
      // First step backward Euler (consistent start), trapezoidal after.
      sp.integrator = step == 1 ? Integrator::kBackwardEuler : Integrator::kTrapezoidal;
      NewtonResult nr = solve_newton(ckt, x, sp, opts.newton, &session);
      if (!nr.converged) {
        NewtonOptions retry = opts.newton;
        retry.max_step_v = 0.05;
        retry.max_iterations = opts.newton.max_iterations * 2;
        nr = solve_newton(ckt, x, sp, retry, &session);
        if (!nr.converged)
          throw ConvergenceError("PSS: transient Newton failed at t=" +
                                 std::to_string(sp.time));
      }
      x = nr.solution;
      for (const auto& dev : ckt.devices()) dev->tran_accept(x, sp);
      period[static_cast<std::size_t>(k)] = x;
    }
    result.periods_used = p + 1;

    if (!prev_period.empty() && p + 1 >= opts.min_periods) {
      double dev_max = 0.0;
      for (int k = 0; k < opts.samples_per_period; ++k) {
        const auto& a = period[static_cast<std::size_t>(k)].raw();
        const auto& b = prev_period[static_cast<std::size_t>(k)].raw();
        for (int i = 0; i < nv; ++i)
          dev_max = std::max(dev_max, std::abs(a[static_cast<std::size_t>(i)] -
                                               b[static_cast<std::size_t>(i)]));
      }
      result.residual_v = dev_max;
      if (dev_max < opts.tol_v) {
        result.converged = true;
        result.samples = period;
        return result;
      }
    }
    prev_period = period;
  }
  result.samples = period;
  return result;
}

}  // namespace rfmix::spice
