#include "spice/mosfet.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "mathx/units.hpp"
#include "obs/obs.hpp"
#include "spice/circuit.hpp"

namespace rfmix::spice {

namespace {

/// ln(1 + e^x) computed without overflow.
double softplus(double x) {
  if (x > 40.0) return x;
  if (x < -40.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

/// Logistic sigmoid.
double sigmoid(double x) {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

/// EKV interpolation function F(u) = ln^2(1 + e^{u/2}) and its derivative
/// F'(u) = ln(1 + e^{u/2}) * sigmoid(u/2).
void ekv_f(double u, double& f, double& fp) {
  const double sp = softplus(u / 2.0);
  f = sp * sp;
  fp = sp * sigmoid(u / 2.0);
}

/// Smooth |x|: sqrt(x^2 + eps^2) - eps, zero with zero slope at x = 0.
void smooth_abs(double x, double eps, double& w, double& wp) {
  const double r = std::sqrt(x * x + eps * eps);
  w = r - eps;
  wp = x / r;
}

MosEval ekv_core(const MosParams& p, double vg, double vd, double vs, double vb) {
  const double vt = mathx::kBoltzmann * p.temperature_k / mathx::kElementaryCharge;
  const double is = 2.0 * p.n_slope * p.beta() * vt * vt;

  // Bulk-referenced voltages.
  const double vgb = vg - vb;
  const double vdb = vd - vb;
  const double vsb = vs - vb;

  const double vp = (vgb - p.vto) / p.n_slope;
  const double uf = (vp - vsb) / vt;
  const double ur = (vp - vdb) / vt;

  double ff, ffp, fr, frp;
  ekv_f(uf, ff, ffp);
  ekv_f(ur, fr, frp);

  const double di = ff - fr;

  // Channel-length modulation with a smooth |vds| so drain/source symmetry
  // (ids(vd<->vs) = -ids) is preserved exactly.
  const double vds = vdb - vsb;
  double w, wp;
  smooth_abs(vds, 0.01, w, wp);
  const double m = 1.0 + p.lambda * w;

  MosEval e{};
  e.ids = is * di * m;
  // Partials wrt bulk-referenced voltages, then map to absolute terminals.
  const double d_vgb = is * m * (ffp - frp) / (p.n_slope * vt);
  const double d_vdb = is * (m * frp / vt + di * p.lambda * wp);
  const double d_vsb = is * (-m * ffp / vt - di * p.lambda * wp);
  e.dg = d_vgb;
  e.dd = d_vdb;
  e.ds = d_vsb;
  e.db = -(d_vgb + d_vdb + d_vsb);
  return e;
}

MosEval level1_core(const MosParams& p, double vg, double vd, double vs, double vb) {
  (void)vb;  // Level-1 here omits body effect; EKV handles it through n.
  // Handle vds < 0 by the symmetry ids(d<->s) = -ids.
  const bool swapped = vd < vs;
  const double vds = swapped ? vs - vd : vd - vs;
  const double vgs = swapped ? vg - vd : vg - vs;
  const double beta = p.beta();
  const double vov = vgs - p.vto;

  double ids = 0.0, gm = 0.0, gds = 0.0;
  if (vov <= 0.0) {
    // Cutoff: tiny leakage keeps the Jacobian nonsingular.
    gds = 1e-12;
    ids = gds * vds;
  } else if (vds < vov) {
    // Triode.
    const double clm = 1.0 + p.lambda * vds;
    ids = beta * (vov * vds - 0.5 * vds * vds) * clm;
    gm = beta * vds * clm;
    gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * p.lambda;
  } else {
    // Saturation.
    const double clm = 1.0 + p.lambda * vds;
    ids = 0.5 * beta * vov * vov * clm;
    gm = beta * vov * clm;
    gds = 0.5 * beta * vov * vov * p.lambda;
  }

  MosEval e{};
  if (!swapped) {
    e.ids = ids;
    e.dg = gm;
    e.dd = gds;
    e.ds = -(gm + gds);
  } else {
    // Roles swapped: ids' was computed with vgs' = vg - vd, vds' = vs - vd,
    // and the actual drain current is -ids'. Chain rule:
    //   d(actual)/d vg = -gm,  d(actual)/d vd = gm + gds,  d(actual)/d vs = -gds.
    e.ids = -ids;
    e.dg = -gm;
    e.dd = gm + gds;
    e.ds = -gds;
  }
  e.db = -(e.dg + e.dd + e.ds);
  return e;
}

// The single model entry point shared by the per-device and batch paths.
// noinline keeps exactly one compiled instance: if the two call sites each
// inlined a copy, the optimizer could contract/reassociate them differently
// and silently break the classic-vs-reuse bit-exactness contract.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
MosEval model_core(const MosParams& p, double vg, double vd, double vs, double vb) {
  if (p.type == MosType::kNmos) {
    return p.level == MosModelLevel::kEkv ? ekv_core(p, vg, vd, vs, vb)
                                          : level1_core(p, vg, vd, vs, vb);
  }
  // PMOS: I_D(V) = -ids_n(-V). The chain rule gives dI_D/dV_k = +d ids_n/d v_k
  // evaluated at the negated voltages.
  const MosEval en = p.level == MosModelLevel::kEkv ? ekv_core(p, -vg, -vd, -vs, -vb)
                                                    : level1_core(p, -vg, -vd, -vs, -vb);
  MosEval e{};
  e.ids = -en.ids;
  e.dg = en.dg;
  e.dd = en.dd;
  e.ds = en.ds;
  e.db = en.db;
  return e;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

double bypass_tol_from_env() {
  const char* e = std::getenv("RFMIX_BYPASS_TOL");
  if (e == nullptr || *e == '\0') return 0.0;
  const double tol = std::strtod(e, nullptr);
  return tol > 0.0 ? tol : 0.0;
}

}  // namespace

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b, MosParams params)
    : Device(std::move(name)), d_(d), g_(g), s_(s), b_(b), p_(params) {
  const double cox_area = p_.cox * p_.w * p_.l;
  // Saturation-region split: 2/3 of the channel charge to the source side.
  const double c_gs = (2.0 / 3.0) * cox_area + p_.cov * p_.w;
  const double c_gd = p_.cov * p_.w;
  const double c_db = p_.cj_sd * p_.w;
  const double c_sb = p_.cj_sd * p_.w;
  cgs_ = std::make_unique<Capacitor>(this->name() + ".cgs", g_, s_, c_gs);
  cgd_ = std::make_unique<Capacitor>(this->name() + ".cgd", g_, d_, c_gd);
  cdb_ = std::make_unique<Capacitor>(this->name() + ".cdb", d_, b_, c_db);
  csb_ = std::make_unique<Capacitor>(this->name() + ".csb", s_, b_, c_sb);
}

MosEval Mosfet::eval(double vg, double vd, double vs, double vb) const {
  return model_core(p_, vg, vd, vs, vb);
}

void Mosfet::stamp(RealStamper& s, const Solution& x, const StampParams& sp) const {
  const double vg = x.v(g_), vd = x.v(d_), vs = x.v(s_), vb = x.v(b_);
  const MosEval* cached = sp.batch != nullptr ? sp.batch->lookup(this) : nullptr;
  const MosEval e = cached != nullptr ? *cached : model_core(p_, vg, vd, vs, vb);

  const auto& lay = s.layout();
  const int ud = lay.node_unknown(d_);
  const int us = lay.node_unknown(s_);
  const int ug = lay.node_unknown(g_);
  const int ub = lay.node_unknown(b_);

  // Jacobian rows for drain (+ids) and source (-ids).
  auto stamp_row = [&](int row, double sign) {
    if (row < 0) return;
    if (ug >= 0) s.add_entry(row, ug, sign * e.dg);
    if (ud >= 0) s.add_entry(row, ud, sign * e.dd);
    if (us >= 0) s.add_entry(row, us, sign * e.ds);
    if (ub >= 0) s.add_entry(row, ub, sign * e.db);
  };
  stamp_row(ud, +1.0);
  stamp_row(us, -1.0);

  const double ieq = e.ids - (e.dg * vg + e.dd * vd + e.ds * vs + e.db * vb);
  s.add_device_current(d_, s_, ieq);

  if (sp.mode == AnalysisMode::kTransient) {
    cgs_->stamp(s, x, sp);
    cgd_->stamp(s, x, sp);
    cdb_->stamp(s, x, sp);
    csb_->stamp(s, x, sp);
  }
}

void Mosfet::stamp_ac(ComplexStamper& s, const Solution& op, double omega) const {
  const MosEval e = model_core(p_, op.v(g_), op.v(d_), op.v(s_), op.v(b_));
  const auto& lay = s.layout();
  const int ud = lay.node_unknown(d_);
  const int us = lay.node_unknown(s_);
  const int ug = lay.node_unknown(g_);
  const int ub = lay.node_unknown(b_);
  auto stamp_row = [&](int row, double sign) {
    if (row < 0) return;
    if (ug >= 0) s.add_entry(row, ug, sign * e.dg);
    if (ud >= 0) s.add_entry(row, ud, sign * e.dd);
    if (us >= 0) s.add_entry(row, us, sign * e.ds);
    if (ub >= 0) s.add_entry(row, ub, sign * e.db);
  };
  stamp_row(ud, +1.0);
  stamp_row(us, -1.0);

  cgs_->stamp_ac(s, op, omega);
  cgd_->stamp_ac(s, op, omega);
  cdb_->stamp_ac(s, op, omega);
  csb_->stamp_ac(s, op, omega);
}

void Mosfet::append_noise(std::vector<NoiseSource>& out, const Solution& op) const {
  const MosEval e = model_core(p_, op.v(g_), op.v(d_), op.v(s_), op.v(b_));
  // Channel thermal noise: 4kT*gamma*(|gm| + |gds|) covers both saturation
  // (gm dominates) and deep triode where the channel acts as a resistor of
  // conductance ~gds (passive-mixer switches). A single-expression
  // approximation; see DESIGN.md.
  const double gn = std::abs(e.dg) + std::abs(e.dd);
  const double thermal = 4.0 * mathx::kBoltzmann * p_.temperature_k * p_.noise_gamma * gn;
  out.push_back(
      NoiseSource{d_, s_, [thermal](double) { return thermal; }, name() + ".thermal"});

  // Flicker noise referred to the drain: Sid = kf*gm^2 / (Cox*W*L*f^af).
  const double gm2 = e.dg * e.dg;
  const double denom = p_.cox * p_.w * p_.l;
  const double kf = p_.kf;
  const double af = p_.af;
  if (kf > 0.0 && gm2 > 0.0) {
    out.push_back(NoiseSource{d_, s_,
                              [kf, gm2, denom, af](double f) {
                                return kf * gm2 / (denom * std::pow(std::max(f, 1e-3), af));
                              },
                              name() + ".flicker"});
  }
}

void Mosfet::tran_begin(const Solution& op) {
  cgs_->tran_begin(op);
  cgd_->tran_begin(op);
  cdb_->tran_begin(op);
  csb_->tran_begin(op);
}

void Mosfet::tran_accept(const Solution& x, const StampParams& sp) {
  cgs_->tran_accept(x, sp);
  cgd_->tran_accept(x, sp);
  cdb_->tran_accept(x, sp);
  csb_->tran_accept(x, sp);
}

double Mosfet::dissipated_power(const Solution& op) const {
  const MosEval e = model_core(p_, op.v(g_), op.v(d_), op.v(s_), op.v(b_));
  return e.ids * op.vd(d_, s_);
}

MosOperatingPoint Mosfet::evaluate(const Solution& op) const {
  const MosEval e = model_core(p_, op.v(g_), op.v(d_), op.v(s_), op.v(b_));
  MosOperatingPoint r;
  r.ids = e.ids;
  r.gm = e.dg;
  r.gds = e.dd;
  r.gmb = e.db;
  r.vgs = op.vd(g_, s_);
  r.vds = op.vd(d_, s_);
  return r;
}

// ---------------------------------------------------------------------------

MosBatchEvaluator::MosBatchEvaluator(const Circuit& ckt) : tol_(bypass_tol_from_env()) {
  for (const auto& dev : ckt.devices()) {
    const auto* m = dynamic_cast<const Mosfet*>(dev.get());
    if (m == nullptr) continue;
    const MosParams& p = m->params();
    const int gi = (p.level == MosModelLevel::kEkv ? 0 : 2) +
                   (p.type == MosType::kNmos ? 0 : 1);
    Group& g = groups_[gi];
    index_.emplace(m, std::make_pair(gi, g.devs.size()));
    g.devs.push_back(m);
    ++count_;
  }
  for (Group& g : groups_) {
    const std::size_t n = g.devs.size();
    g.vg.assign(n, 0.0);
    g.vd.assign(n, 0.0);
    g.vs.assign(n, 0.0);
    g.vb.assign(n, 0.0);
    g.out.assign(n, MosEval{});
    g.valid.assign(n, 0);
  }
}

void MosBatchEvaluator::evaluate(const Solution& x) {
  tol_bypassed_ = false;
  std::size_t bypassed = 0, evaluated = 0;
  for (Group& g : groups_) {
    const std::size_t n = g.devs.size();
    // Gather terminal voltages and decide per device whether the cached
    // linearization still stands.
    for (std::size_t i = 0; i < n; ++i) {
      const Mosfet* m = g.devs[i];
      const double vg = x.v(m->gate());
      const double vd = x.v(m->drain());
      const double vs = x.v(m->source());
      const double vb = x.v(m->bulk());
      if (g.valid[i] && same_bits(vg, g.vg[i]) && same_bits(vd, g.vd[i]) &&
          same_bits(vs, g.vs[i]) && same_bits(vb, g.vb[i])) {
        ++bypassed;  // exact bypass: recomputing would reproduce g.out[i]
        continue;
      }
      if (tol_ > 0.0 && g.valid[i] && std::abs(vg - g.vg[i]) < tol_ &&
          std::abs(vd - g.vd[i]) < tol_ && std::abs(vs - g.vs[i]) < tol_ &&
          std::abs(vb - g.vb[i]) < tol_) {
        // Approximate bypass: keep the stale linearization, flag it so the
        // Newton loop re-certifies convergence with a full evaluation.
        tol_bypassed_ = true;
        ++bypassed;
        continue;
      }
      g.vg[i] = vg;
      g.vd[i] = vd;
      g.vs[i] = vs;
      g.vb[i] = vb;
      g.valid[i] = 2;  // mark for the evaluation loop below
      ++evaluated;
    }
    // One tight loop per model class over the packed SoA arrays; every
    // element routes through the shared model_core, so results are bitwise
    // identical to the per-device path.
    for (std::size_t i = 0; i < n; ++i) {
      if (g.valid[i] != 2) continue;
      g.out[i] = model_core(g.devs[i]->params(), g.vg[i], g.vd[i], g.vs[i], g.vb[i]);
      g.valid[i] = 1;
    }
  }
  if (bypassed > 0) RFMIX_OBS_COUNT_N("spice.dev.bypassed", bypassed);
  if (evaluated > 0) RFMIX_OBS_COUNT_N("spice.dev.evaluated", evaluated);
}

void MosBatchEvaluator::invalidate() {
  for (Group& g : groups_) std::fill(g.valid.begin(), g.valid.end(), char{0});
  tol_bypassed_ = false;
}

const MosEval* MosBatchEvaluator::lookup(const Mosfet* m) const {
  const auto it = index_.find(m);
  if (it == index_.end()) return nullptr;
  const Group& g = groups_[it->second.first];
  if (!g.valid[it->second.second]) return nullptr;
  return &g.out[it->second.second];
}

}  // namespace rfmix::spice
