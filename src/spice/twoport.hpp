// Two-port S-parameter extraction from the AC engine.
//
// The Z-parameters are measured by injecting a unit AC current at each
// port in turn (the other port open) and reading both port voltages; the
// scattering matrix follows from S = (Z - Z0)(Z + Z0)^{-1} with the
// diagonal reference-impedance matrix Z0. Injection uses two current
// sources added to the circuit with zero magnitude, so the circuit's
// behaviour outside this analysis is untouched.
#pragma once

#include <array>
#include <complex>
#include <vector>

#include "spice/circuit.hpp"

namespace rfmix::spice {

struct PortSpec {
  NodeId p = kGround;
  NodeId m = kGround;
  double z0 = 50.0;
};

struct TwoPortPoint {
  double freq_hz = 0.0;
  // s[i][j]: S_{i+1, j+1}.
  std::array<std::array<std::complex<double>, 2>, 2> s{};
  std::array<std::array<std::complex<double>, 2>, 2> z{};
};

struct TwoPortResult {
  std::vector<TwoPortPoint> points;

  double s_db(std::size_t i, std::size_t j, std::size_t point) const;
};

/// Measure S-parameters of the two-port formed by (port1, port2) at the
/// given operating point and frequencies. The circuit must not already be
/// driven by AC sources (their magnitudes are not modified but would
/// superpose); internal DC sources are fine.
TwoPortResult measure_two_port(Circuit& ckt, const Solution& op, PortSpec port1,
                               PortSpec port2, const std::vector<double>& freqs_hz);

}  // namespace rfmix::spice
