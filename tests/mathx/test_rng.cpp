#include "mathx/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfmix::mathx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform_index(10)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace rfmix::mathx
