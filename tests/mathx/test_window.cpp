#include "mathx/window.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfmix::mathx {
namespace {

class WindowProperties : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowProperties, SamplesAreFinite) {
  const auto w = make_window(GetParam(), 257);
  for (const double v : w) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, -0.1);  // flattop dips slightly below zero; others don't
    EXPECT_LE(v, 1.05);
  }
}

TEST_P(WindowProperties, CoherentGainMatchesMean) {
  const std::size_t n = 128;
  const auto w = make_window(GetParam(), n);
  double mean = 0.0;
  for (const double v : w) mean += v;
  mean /= static_cast<double>(n);
  EXPECT_NEAR(coherent_gain(GetParam(), n), mean, 1e-12);
}

TEST_P(WindowProperties, EnbwAtLeastOneBin) {
  // Rectangular window has ENBW exactly 1 bin; every taper widens it.
  EXPECT_GE(equivalent_noise_bandwidth(GetParam(), 256), 1.0 - 1e-12);
}

TEST_P(WindowProperties, HasAName) {
  EXPECT_FALSE(window_name(GetParam()).empty());
  EXPECT_NE(window_name(GetParam()), "unknown");
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowProperties,
                         ::testing::Values(WindowKind::kRect, WindowKind::kHann,
                                           WindowKind::kHamming, WindowKind::kBlackman,
                                           WindowKind::kBlackmanHarris,
                                           WindowKind::kFlatTop));

TEST(Window, KnownEnbwValues) {
  EXPECT_NEAR(equivalent_noise_bandwidth(WindowKind::kRect, 1024), 1.0, 1e-9);
  EXPECT_NEAR(equivalent_noise_bandwidth(WindowKind::kHann, 4096), 1.5, 1e-2);
  EXPECT_NEAR(equivalent_noise_bandwidth(WindowKind::kBlackmanHarris, 4096), 2.0, 0.05);
}

TEST(Window, HannEndpointsNearZero) {
  const auto w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
}

TEST(Window, ZeroLengthThrows) {
  EXPECT_THROW(make_window(WindowKind::kHann, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::mathx
