#include "mathx/interp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rfmix::mathx {
namespace {

TEST(Interp, MidpointsAreLinear) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.0), 10.0);
}

TEST(Interp, ClampsOutsideRange) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{3.0, 7.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 9.0), 7.0);
}

TEST(Interp, BadTableThrows) {
  EXPECT_THROW(interp_linear({}, {}, 1.0), std::invalid_argument);
  EXPECT_THROW(interp_linear({1.0, 2.0}, {1.0}, 1.0), std::invalid_argument);
}

TEST(FirstCrossing, FindsDownwardCrossing) {
  // Bandwidth extraction: gain falls through (peak - 3 dB).
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{10.0, 9.0, 6.0, 2.0};
  const double x = first_crossing(xs, ys, 7.0);
  EXPECT_NEAR(x, 2.0 + (9.0 - 7.0) / (9.0 - 6.0), 1e-12);
}

TEST(FirstCrossing, NoCrossingReturnsNan) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_TRUE(std::isnan(first_crossing(xs, ys, 5.0)));
}

TEST(FirstCrossing, ExactHitReturnsPoint) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(first_crossing(xs, ys, 5.0), 1.0);
}

}  // namespace
}  // namespace rfmix::mathx
