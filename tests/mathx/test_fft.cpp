#include "mathx/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/rng.hpp"
#include "mathx/units.hpp"

namespace rfmix::mathx {
namespace {

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> x(8, Complex{});
  x[0] = 1.0;
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - Complex{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsOnItsBin) {
  const std::size_t n = 64;
  const int k = 5;
  std::vector<Complex> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = kTwoPi * k * static_cast<double>(i) / static_cast<double>(n);
    x[i] = Complex(std::cos(ph), std::sin(ph));
  }
  fft(x);
  for (std::size_t b = 0; b < n; ++b) {
    if (b == static_cast<std::size_t>(k)) {
      EXPECT_NEAR(std::abs(x[b]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[b]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RealSineSplitsIntoConjugateBins) {
  const std::size_t n = 128;
  const int k = 9;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(kTwoPi * k * static_cast<double>(i) / static_cast<double>(n));
  const auto spec = fft_real(x);
  EXPECT_NEAR(std::abs(spec[k]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spec[n - k]), static_cast<double>(n) / 2.0, 1e-9);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftInvertsFft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  auto y = x;
  fft(y);
  ifft(y);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(1000u + n);
  std::vector<Complex> x(n);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = {rng.normal(), rng.normal()};
    time_energy += std::norm(v);
  }
  auto y = x;
  fft(y);
  double freq_energy = 0.0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy + 1e-12);
}

// Mix of power-of-two (radix-2 path) and arbitrary sizes (Bluestein path),
// including primes.
INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 64, 256, 3, 5, 7, 12, 100, 101,
                                           255, 1000, 1009));

TEST(Fft, BluesteinMatchesRadix2OnPowerOfTwo) {
  // Force comparison: compute a 16-point DFT directly (O(n^2)) and compare
  // against both code paths via a 15-point embedded check is impossible, so
  // instead compare fft(16) vs direct DFT, and fft(15) vs direct DFT.
  for (const std::size_t n : {15u, 16u}) {
    Rng rng(42u + n);
    std::vector<Complex> x(n);
    for (auto& v : x) v = {rng.normal(), rng.normal()};
    // Direct DFT reference.
    std::vector<Complex> ref(n, Complex{});
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t i = 0; i < n; ++i) {
        const double ph = -kTwoPi * static_cast<double>(k * i) / static_cast<double>(n);
        ref[k] += x[i] * Complex(std::cos(ph), std::sin(ph));
      }
    auto y = x;
    fft(y);
    for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(std::abs(y[k] - ref[k]), 0.0, 1e-9);
  }
}

TEST(SingleBinDft, MatchesFftBin) {
  const std::size_t n = 200;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(kTwoPi * 7.0 * static_cast<double>(i) / static_cast<double>(n)) +
           0.3 * std::cos(kTwoPi * 31.0 * static_cast<double>(i) / static_cast<double>(n));
  const auto spec = fft_real(x);
  const Complex b7 = single_bin_dft(x, 7.0);
  const Complex b31 = single_bin_dft(x, 31.0);
  EXPECT_NEAR(std::abs(b7 - spec[7]), 0.0, 1e-8);
  EXPECT_NEAR(std::abs(b31 - spec[31]), 0.0, 1e-8);
}

TEST(SingleBinDft, RecoverToneAmplitudeOffGrid) {
  // Coherent measurement at a non-integer "bin": amplitude = 2|X|/N.
  const std::size_t n = 4096;
  const double cycles = 12.25;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = 0.7 * std::cos(kTwoPi * cycles * static_cast<double>(i) / static_cast<double>(n));
  const Complex b = single_bin_dft(x, cycles);
  EXPECT_NEAR(2.0 * std::abs(b) / static_cast<double>(n), 0.7, 2e-3);
}

TEST(Fft, HelperPredicates) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(8), 8u);
}

}  // namespace
}  // namespace rfmix::mathx
