#include "mathx/stats.hpp"

#include <gtest/gtest.h>

#include "mathx/rng.hpp"

namespace rfmix::mathx {
namespace {

TEST(Stats, KnownSample) {
  const SampleStats s = sample_stats({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(Stats, EvenCountMedianInterpolates) {
  EXPECT_DOUBLE_EQ(sample_stats({1.0, 2.0, 3.0, 10.0}).median, 2.5);
}

TEST(Stats, SingleElement) {
  const SampleStats s = sample_stats({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(sample_stats({}), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Percentile, Anchors) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_THROW(percentile(xs, -1.0), std::invalid_argument);
}

TEST(Percentile, NormalSampleQuantiles) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(percentile(xs, 50.0), 0.0, 0.02);
  EXPECT_NEAR(percentile(xs, 84.13), 1.0, 0.04);
  EXPECT_NEAR(percentile(xs, 15.87), -1.0, 0.04);
}

}  // namespace
}  // namespace rfmix::mathx
