#include "mathx/lu.hpp"

#include <gtest/gtest.h>

#include "mathx/rng.hpp"

namespace rfmix::mathx {
namespace {

TEST(Lu, SolvesKnownSystem) {
  MatrixD a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  const VectorD b{5.0, 10.0};
  const VectorD x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  MatrixD a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const VectorD x = lu_solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  MatrixD a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(lu_solve(a, {1.0, 2.0}), SingularMatrixError);
}

TEST(Lu, Determinant) {
  MatrixD a(2, 2);
  a(0, 0) = 3; a(0, 1) = 1;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_NEAR(LuFactorization<double>(a).determinant(), 10.0, 1e-12);
}

// Property: A * solve(A, b) == b for random well-conditioned matrices.
class LuRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomProperty, ResidualIsTiny) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 20;
  MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    a(i, i) += 5.0;  // diagonal dominance keeps conditioning benign
  }
  VectorD b(n);
  for (auto& v : b) v = rng.normal();
  const VectorD x = lu_solve(a, b);
  const VectorD r = a * x;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-9);
}

TEST_P(LuRandomProperty, TransposedSolveMatchesExplicitTranspose) {
  Rng rng(17u + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 4 + static_cast<std::size_t>(GetParam()) % 12;
  MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    a(i, i) += 4.0;
  }
  VectorD b(n);
  for (auto& v : b) v = rng.normal();
  const VectorD xt = LuFactorization<double>(a).solve_transposed(b);
  const VectorD xt_ref = lu_solve(a.transposed(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xt[i], xt_ref[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRandomProperty, ::testing::Range(0, 12));

TEST(LuComplex, SolvesComplexSystem) {
  MatrixC a(2, 2);
  a(0, 0) = {1.0, 1.0};
  a(0, 1) = {0.0, -1.0};
  a(1, 0) = {2.0, 0.0};
  a(1, 1) = {3.0, 1.0};
  const VectorC b{{1.0, 0.0}, {0.0, 1.0}};
  const VectorC x = lu_solve(a, b);
  // Verify residual.
  const VectorC r = a * x;
  EXPECT_NEAR(std::abs(r[0] - b[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(r[1] - b[1]), 0.0, 1e-12);
}

}  // namespace
}  // namespace rfmix::mathx
