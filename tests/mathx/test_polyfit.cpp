#include "mathx/polyfit.hpp"

#include <gtest/gtest.h>

#include "mathx/rng.hpp"

namespace rfmix::mathx {
namespace {

TEST(FitLine, ExactLineRecovered) {
  const std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y;
  for (const double xi : x) y.push_back(2.5 * xi - 1.0);
  const LineFit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 2.5, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.rms_residual, 0.0, 1e-12);
}

TEST(FitLine, FixedSlopeRecoversIntercept) {
  // IIP3 extraction uses exactly this: force slope 3 on the IM3 line.
  const std::vector<double> x{-40, -35, -30};
  std::vector<double> y;
  for (const double xi : x) y.push_back(3.0 * xi + 12.0);
  const LineFit f = fit_line_fixed_slope(x, y, 3.0);
  EXPECT_NEAR(f.intercept, 12.0, 1e-12);
}

TEST(FitLine, IntersectionOfFundamentalAndIm3) {
  // Fundamental: y = x + 20 (gain 20 dB). IM3: y = 3x - 20.
  // Intercept: x + 20 = 3x - 20 -> x = 20 dBm.
  const LineFit fund{1.0, 20.0, 0.0};
  const LineFit im3{3.0, -20.0, 0.0};
  EXPECT_NEAR(line_intersection_x(fund, im3), 20.0, 1e-12);
}

TEST(FitLine, ParallelLinesThrow) {
  const LineFit a{1.0, 0.0, 0.0};
  const LineFit b{1.0, 5.0, 0.0};
  EXPECT_THROW(line_intersection_x(a, b), std::invalid_argument);
}

TEST(FitLine, TooFewPointsThrows) {
  EXPECT_THROW(fit_line({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1.0, 2.0}, {2.0}), std::invalid_argument);
}

TEST(FitPolynomial, RecoversCubicCoefficients) {
  const std::vector<double> coeffs{1.0, -2.0, 0.5, 0.25};
  std::vector<double> x, y;
  for (int i = -5; i <= 5; ++i) {
    x.push_back(i * 0.4);
    y.push_back(eval_polynomial(coeffs, i * 0.4));
  }
  const auto fit = fit_polynomial(x, y, 3);
  ASSERT_EQ(fit.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(fit[i], coeffs[i], 1e-9);
}

TEST(FitPolynomial, NoisyLineSlopeWithinTolerance) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = i * 0.05;
    x.push_back(xi);
    y.push_back(3.0 * xi + 1.0 + rng.normal() * 0.01);
  }
  const LineFit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 3.0, 0.01);
  EXPECT_NEAR(f.intercept, 1.0, 0.01);
  EXPECT_LT(f.rms_residual, 0.02);
}

TEST(EvalPolynomial, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(eval_polynomial({}, 3.0), 0.0);
}

}  // namespace
}  // namespace rfmix::mathx
