#include "mathx/units.hpp"

#include <gtest/gtest.h>

namespace rfmix::mathx {
namespace {

TEST(Units, DbRoundTrip) {
  EXPECT_NEAR(db_from_power_ratio(power_ratio_from_db(13.7)), 13.7, 1e-12);
  EXPECT_NEAR(db_from_voltage_ratio(voltage_ratio_from_db(-6.0)), -6.0, 1e-12);
}

TEST(Units, KnownAnchors) {
  EXPECT_NEAR(db_from_power_ratio(2.0), 3.0103, 1e-4);
  EXPECT_NEAR(db_from_voltage_ratio(10.0), 20.0, 1e-12);
  EXPECT_NEAR(dbm_from_watts(1e-3), 0.0, 1e-12);
  EXPECT_NEAR(dbm_from_watts(1.0), 30.0, 1e-12);
}

TEST(Units, NonPositiveRatioClamps) {
  EXPECT_DOUBLE_EQ(db_from_power_ratio(0.0), -400.0);
  EXPECT_DOUBLE_EQ(db_from_voltage_ratio(-1.0), -400.0);
}

TEST(Units, SineAmplitudeDbmRoundTrip) {
  // 0 dBm into 50 ohm is a 316.2 mV peak sine.
  const double a = sine_amplitude_from_dbm(0.0);
  EXPECT_NEAR(a, 0.3162, 1e-3);
  EXPECT_NEAR(dbm_from_sine_amplitude(a), 0.0, 1e-12);
  // Round trip at another impedance.
  EXPECT_NEAR(dbm_from_sine_amplitude(sine_amplitude_from_dbm(-17.0, 100.0), 100.0), -17.0,
              1e-12);
}

TEST(Units, NoiseFloorAnchor) {
  // kT at 290 K is -174 dBm/Hz: the most-quoted RF constant.
  EXPECT_NEAR(dbm_from_watts(thermal_noise_psd()), -173.98, 0.02);
}

TEST(Units, NfConversionsRoundTrip) {
  EXPECT_NEAR(nf_db_from_factor(nf_factor_from_db(7.6)), 7.6, 1e-12);
  EXPECT_NEAR(nf_factor_from_db(0.0), 1.0, 1e-12);
}

TEST(Units, RmsOfSine) {
  EXPECT_NEAR(rms_from_sine_amplitude(1.0), 0.70710678, 1e-8);
}

}  // namespace
}  // namespace rfmix::mathx
