// Analyze-once/refactor-per-step contract of the sparse LU (docs/solver.md):
// a successful refactor_from() must be byte-identical to a fresh analyzing
// factorization of the same matrix, and any disagreement — pattern change,
// pivot drift, singular pinned pivot — must abort the refactor so the caller
// can re-analyze.
#include "mathx/sparse.hpp"

#include <cstring>
#include <gtest/gtest.h>

#include "mathx/lu.hpp"
#include "mathx/rng.hpp"

namespace rfmix::mathx {
namespace {

/// Bitwise equality of two double vectors (0.0 vs -0.0 and NaN payloads
/// matter for the bit-exactness contract, so no operator== here).
bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// A diagonally-dominant random sparse matrix: dense diagonal plus `extra`
/// random off-diagonal entries (duplicates allowed — they must merge the
/// same way through the map as through the constructor).
TripletMatrix<double> random_system(Rng& rng, std::size_t n, std::size_t extra) {
  TripletMatrix<double> t(n, n);
  for (std::size_t i = 0; i < n; ++i)
    t.add(i, i, 4.0 + rng.uniform());
  for (std::size_t k = 0; k < extra; ++k) {
    const std::size_t r = rng.next_u64() % n;
    const std::size_t c = rng.next_u64() % n;
    t.add(r, c, rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// New values on the exact entry sequence of `t` (same pattern by
/// construction), keeping the diagonal dominant so pivots stay pinned.
TripletMatrix<double> revalue(Rng& rng, const TripletMatrix<double>& t) {
  TripletMatrix<double> out(t.rows(), t.cols());
  for (std::size_t k = 0; k < t.entry_count(); ++k) {
    const bool diag = t.row_indices()[k] == t.col_indices()[k];
    out.add(t.row_indices()[k], t.col_indices()[k],
            diag ? 4.0 + rng.uniform() : rng.uniform(-1.0, 1.0));
  }
  return out;
}

std::vector<double> rhs(Rng& rng, std::size_t n) {
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  return b;
}

TEST(TripletCscMapTest, FillIsByteIdenticalToConstructor) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const auto t = random_system(rng, 12, 40);
    TripletCscMap<double> map;
    map.build(t);
    ASSERT_TRUE(map.matches(t));
    CscMatrix<double> filled;
    map.fill(t, filled);
    const CscMatrix<double> fresh(t);
    EXPECT_EQ(filled.col_ptr(), fresh.col_ptr());
    EXPECT_EQ(filled.row_idx(), fresh.row_idx());
    EXPECT_TRUE(same_bits(filled.values(), fresh.values()));
  }
}

TEST(TripletCscMapTest, SignedZeroDuplicateMergeMatchesConstructor) {
  // First hit must assign, not accumulate into T{}: 0.0 + (-0.0) == +0.0,
  // so an accumulate-from-zero fill would flip the sign bit.
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, -0.0);
  t.add(1, 1, 1.0);
  t.add(0, 1, -0.0);
  t.add(0, 1, -0.0);  // duplicate merge: -0.0 + -0.0 = -0.0
  TripletCscMap<double> map;
  map.build(t);
  CscMatrix<double> filled;
  map.fill(t, filled);
  const CscMatrix<double> fresh(t);
  EXPECT_TRUE(same_bits(filled.values(), fresh.values()));
  EXPECT_TRUE(std::signbit(filled.values()[0]));
}

TEST(TripletCscMapTest, MatchesRejectsPatternChange) {
  Rng rng(7);
  const auto t = random_system(rng, 8, 10);
  TripletCscMap<double> map;
  map.build(t);
  TripletMatrix<double> grown = t;
  grown.add(0, 7, 0.5);  // one extra stamp: different entry sequence
  EXPECT_FALSE(map.matches(grown));
  TripletMatrix<double> reordered(t.rows(), t.cols());
  for (std::size_t k = t.entry_count(); k-- > 0;)
    reordered.add(t.row_indices()[k], t.col_indices()[k], t.values()[k]);
  EXPECT_FALSE(map.matches(reordered));
}

TEST(SparseLuRefactorTest, RefactorReproducesAnalyzeBitExactly) {
  Rng rng(1);
  const auto t0 = random_system(rng, 16, 60);
  SparseLuSymbolic<double> sym;
  const SparseLu<double> first(CscMatrix<double>(t0), sym);
  ASSERT_FALSE(sym.empty());

  TripletCscMap<double> map;
  map.build(t0);
  for (int step = 0; step < 10; ++step) {
    const auto t = revalue(rng, t0);
    ASSERT_TRUE(map.matches(t));
    CscMatrix<double> a;
    map.fill(t, a);
    ASSERT_TRUE(sym.pattern_matches(a));

    SparseLu<double> fast;
    ASSERT_TRUE(fast.refactor_from(sym, a)) << "step " << step;
    const SparseLu<double> slow(a);

    const auto b = rhs(rng, 16);
    EXPECT_TRUE(same_bits(fast.solve(b), slow.solve(b))) << "step " << step;
    EXPECT_TRUE(same_bits(fast.solve_transposed(b), slow.solve_transposed(b)))
        << "step " << step;
  }
}

TEST(SparseLuRefactorTest, RefactorTargetBuffersAreReusable) {
  // A Newton loop refactors into the same SparseLu object every iteration.
  Rng rng(2);
  const auto t0 = random_system(rng, 10, 30);
  SparseLuSymbolic<double> sym;
  const SparseLu<double> analyzed(CscMatrix<double>(t0), sym);
  SparseLu<double> lu;
  for (int step = 0; step < 5; ++step) {
    const CscMatrix<double> a(revalue(rng, t0));
    ASSERT_TRUE(lu.refactor_from(sym, a));
    const auto b = rhs(rng, 10);
    EXPECT_TRUE(same_bits(lu.solve(b), SparseLu<double>(a).solve(b)));
  }
}

TEST(SparseLuRefactorTest, PatternMismatchRefusesToRefactor) {
  Rng rng(3);
  const auto t0 = random_system(rng, 8, 12);
  SparseLuSymbolic<double> sym;
  const SparseLu<double> analyzed(CscMatrix<double>(t0), sym);

  TripletMatrix<double> grown = t0;
  grown.add(0, 7, 1e-3);
  const CscMatrix<double> a(grown);
  if (a.nnz() != CscMatrix<double>(t0).nnz()) {
    EXPECT_FALSE(sym.pattern_matches(a));
    SparseLu<double> lu;
    EXPECT_FALSE(lu.refactor_from(sym, a));
    EXPECT_EQ(lu.size(), 0u);
  }
}

TEST(SparseLuRefactorTest, PivotDriftRefusesToRefactor) {
  // Analyze pins the pivot of column 0 at row 1 (|3| > |1|); the new values
  // reverse the magnitudes, so honest partial pivoting would now choose row
  // 0. Producing factors with the stale pivot order would deviate from the
  // analyzing path, so the refactor must refuse.
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 0, 3.0);
  t.add(0, 1, 2.0);
  t.add(1, 1, 1.0);
  SparseLuSymbolic<double> sym;
  const SparseLu<double> analyzed(CscMatrix<double>(t), sym);

  TripletMatrix<double> flipped(2, 2);
  flipped.add(0, 0, 3.0);
  flipped.add(1, 0, 1.0);
  flipped.add(0, 1, 2.0);
  flipped.add(1, 1, 1.0);
  SparseLu<double> lu;
  EXPECT_FALSE(lu.refactor_from(sym, CscMatrix<double>(flipped)));

  // The caller's fallback — a fresh analysis — handles the same matrix.
  const CscMatrix<double> a(flipped);
  const SparseLu<double> fresh(a);
  const std::vector<double> b{1.0, 2.0};
  const auto x = fresh.solve(b);
  const auto ax = a.multiply(x);
  EXPECT_NEAR(ax[0], b[0], 1e-12);
  EXPECT_NEAR(ax[1], b[1], 1e-12);
}

TEST(SparseLuRefactorTest, PivotDriftRepairsWhenAsked) {
  // Same drifting system as above, but with a repair symbolic supplied: the
  // factorization must adopt the freshly scanned pivot, produce factors
  // byte-identical to a fresh analysis, and rewrite the repair symbolic so
  // the *next* refactor of the new value regime replays strictly.
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 0, 3.0);
  t.add(0, 1, 2.0);
  t.add(1, 1, 1.0);
  SparseLuSymbolic<double> sym;
  const SparseLu<double> analyzed(CscMatrix<double>(t), sym);

  TripletMatrix<double> flipped(2, 2);
  flipped.add(0, 0, 3.0);
  flipped.add(1, 0, 1.0);
  flipped.add(0, 1, 2.0);
  flipped.add(1, 1, 1.0);
  const CscMatrix<double> a(flipped);

  SparseLu<double> lu;
  bool repaired = false;
  ASSERT_TRUE(lu.refactor_from(sym, a, 0.0, &sym, &repaired));  // aliased, as
  EXPECT_TRUE(repaired);  // SolverSession passes its own symbolic as repair
  const SparseLu<double> fresh(a);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_TRUE(same_bits(lu.solve(b), fresh.solve(b)));
  EXPECT_TRUE(same_bits(lu.solve_transposed(b), fresh.solve_transposed(b)));

  // The repaired symbolic now pins the new pivot order: a strict replay of
  // the same values succeeds, and of the *original* values drifts again.
  SparseLu<double> again;
  EXPECT_TRUE(again.refactor_from(sym, a));
  EXPECT_TRUE(same_bits(again.solve(b), fresh.solve(b)));
  EXPECT_FALSE(again.refactor_from(sym, CscMatrix<double>(t)));
}

TEST(SparseLuRefactorTest, CleanReplayLeavesRepairSymbolicUntouched) {
  Rng rng(11);
  const auto t0 = random_system(rng, 12, 30);
  SparseLuSymbolic<double> sym;
  const SparseLu<double> analyzed(CscMatrix<double>(t0), sym);
  // Dominant diagonals keep the pivots pinned, so the repair path must not
  // engage — and `repaired` is the only way callers count analyze vs
  // refactor, so a false positive would corrupt the obs counters.
  for (int step = 0; step < 5; ++step) {
    const CscMatrix<double> a(revalue(rng, t0));
    SparseLu<double> lu;
    bool repaired = true;
    ASSERT_TRUE(lu.refactor_from(sym, a, 0.0, &sym, &repaired));
    EXPECT_FALSE(repaired) << "step " << step;
    const auto b = rhs(rng, 12);
    EXPECT_TRUE(same_bits(lu.solve(b), SparseLu<double>(a).solve(b)));
  }
}

TEST(SparseLuRefactorTest, RepairSingularDriftColumnThrowsLikeAnalyze) {
  // If the drift column has no admissible pivot, repair must surface the
  // same SingularMatrixError the analyzing constructor would, not return a
  // half-factored object.
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, 2.0);
  t.add(1, 1, 2.0);
  SparseLuSymbolic<double> sym;
  const SparseLu<double> analyzed(CscMatrix<double>(t), sym);

  TripletMatrix<double> degenerate(2, 2);
  degenerate.add(0, 0, 0.0);
  degenerate.add(1, 1, 2.0);
  const CscMatrix<double> a(degenerate);
  SparseLu<double> lu;
  SparseLuSymbolic<double> repair_target = sym;
  EXPECT_THROW(lu.refactor_from(sym, a, 0.0, &repair_target), SingularMatrixError);
  EXPECT_THROW(SparseLu<double>{a}, SingularMatrixError);
}

TEST(SparseLuRefactorTest, FuzzRepairAgainstAnalyze) {
  // Adversarial twin of FuzzRefactorAgainstAnalyze: weak diagonals make
  // pivot drift common, and every repaired factorization must still be
  // byte-identical to a fresh analysis of the same values.
  Rng rng(0xBADD1E);
  int repairs = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.next_u64() % 16;
    TripletMatrix<double> t0(n, n);
    for (std::size_t i = 0; i < n; ++i) t0.add(i, i, rng.uniform(0.5, 1.5));
    for (std::size_t k = 0; k < 2 * n; ++k)
      t0.add(rng.next_u64() % n, rng.next_u64() % n, rng.uniform(-2.0, 2.0));
    SparseLuSymbolic<double> sym;
    const SparseLu<double> analyzed(CscMatrix<double>(t0), sym);
    TripletCscMap<double> map;
    map.build(t0);
    for (int step = 0; step < 4; ++step) {
      TripletMatrix<double> t(n, n);
      for (std::size_t k = 0; k < t0.entry_count(); ++k)
        t.add(t0.row_indices()[k], t0.col_indices()[k],
              t0.row_indices()[k] == t0.col_indices()[k] ? rng.uniform(0.5, 1.5)
                                                         : rng.uniform(-2.0, 2.0));
      CscMatrix<double> a;
      map.fill(t, a);
      SparseLu<double> lu;
      bool repaired = false;
      ASSERT_TRUE(lu.refactor_from(sym, a, 0.0, &sym, &repaired))
          << "trial " << trial << " step " << step;
      if (repaired) ++repairs;
      const auto b = rhs(rng, n);
      EXPECT_TRUE(same_bits(lu.solve(b), SparseLu<double>(a).solve(b)))
          << "trial " << trial << " step " << step << " repaired=" << repaired;
    }
  }
  EXPECT_GT(repairs, 20) << "weak diagonals should have drifted often";
}

TEST(SparseLuRefactorTest, SingularPinnedPivotRefusesToRefactor) {
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, 2.0);
  t.add(1, 1, 2.0);
  SparseLuSymbolic<double> sym;
  const SparseLu<double> analyzed(CscMatrix<double>(t), sym);

  TripletMatrix<double> degenerate(2, 2);
  degenerate.add(0, 0, 0.0);  // pinned pivot value collapses to zero
  degenerate.add(1, 1, 2.0);
  SparseLu<double> lu;
  EXPECT_FALSE(lu.refactor_from(sym, CscMatrix<double>(degenerate)));
  // And the analyzing path agrees the matrix is singular.
  EXPECT_THROW(SparseLu<double>(CscMatrix<double>(degenerate)),
               SingularMatrixError);
}

TEST(SparseLuRefactorTest, FuzzRefactorAgainstAnalyze) {
  // Randomized sweep with a fixed seed: many shapes and densities, each
  // analyzed once and refactored through several value changes. Every
  // refactor either succeeds byte-exactly or refuses; refusal is only
  // acceptable here for pivot drift, which dominant diagonals make rare —
  // when it happens, the fallback analyze must still solve correctly.
  Rng rng(0xC0FFEE);
  int refactors = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.next_u64() % 20;
    const std::size_t extra = rng.next_u64() % (3 * n);
    const auto t0 = random_system(rng, n, extra);
    SparseLuSymbolic<double> sym;
    const SparseLu<double> analyzed(CscMatrix<double>(t0), sym);
    TripletCscMap<double> map;
    map.build(t0);
    for (int step = 0; step < 4; ++step) {
      const auto t = revalue(rng, t0);
      CscMatrix<double> a;
      map.fill(t, a);
      SparseLu<double> lu;
      const auto b = rhs(rng, n);
      if (lu.refactor_from(sym, a)) {
        ++refactors;
        EXPECT_TRUE(same_bits(lu.solve(b), SparseLu<double>(a).solve(b)))
            << "trial " << trial << " step " << step;
      } else {
        const auto x = SparseLu<double>(a).solve(b);
        const auto ax = a.multiply(x);
        for (std::size_t i = 0; i < n; ++i)
          EXPECT_NEAR(ax[i], b[i], 1e-9) << "trial " << trial;
      }
    }
  }
  // The dominant diagonal keeps pivots pinned, so nearly every step should
  // have taken the fast path; a refactor that never engages would make this
  // whole suite vacuous.
  EXPECT_GT(refactors, 100);
}

}  // namespace
}  // namespace rfmix::mathx
