#include "mathx/matrix.hpp"

#include <gtest/gtest.h>

namespace rfmix::mathx {
namespace {

TEST(Matrix, IdentityMultiplyIsNoOp) {
  MatrixD a(3, 3);
  double v = 1.0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  const MatrixD i3 = MatrixD::identity(3);
  const MatrixD prod = a * i3;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(prod(i, j), a(i, j));
}

TEST(Matrix, MatrixVectorMultiply) {
  MatrixD a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const VectorD x{1.0, 1.0, 1.0};
  const VectorD y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  MatrixD a(2, 3), b(2, 3);
  EXPECT_THROW((void)(a * b), std::invalid_argument);
  MatrixD c(2, 2);
  EXPECT_THROW((void)(a += c), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  MatrixD a(2, 4);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = static_cast<double>(i * 10 + j);
  const MatrixD att = a.transposed().transposed();
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
}

TEST(Matrix, AdditionAndScaling) {
  MatrixD a(2, 2), b(2, 2);
  a(0, 0) = 1; a(1, 1) = 2;
  b(0, 0) = 3; b(1, 1) = 4;
  const MatrixD c = a + b * 2.0;
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
}

TEST(Matrix, Norms) {
  const VectorD v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(two_norm(v), 5.0);
  EXPECT_DOUBLE_EQ(inf_norm(v), 4.0);
  const VectorC vc{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(inf_norm(vc), 5.0);
}

}  // namespace
}  // namespace rfmix::mathx
