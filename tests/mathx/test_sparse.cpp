#include "mathx/sparse.hpp"

#include <gtest/gtest.h>

#include "mathx/lu.hpp"
#include "mathx/rng.hpp"

namespace rfmix::mathx {
namespace {

TEST(Triplet, DuplicatesMergeInCsc) {
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(1, 1, 4.0);
  const CscMatrix<double> csc(t);
  EXPECT_EQ(csc.nnz(), 2u);
  const MatrixD d = csc.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 4.0);
}

TEST(Triplet, KeepsStructuralZeros) {
  // Regression: add() used to silently drop exact-zero values, which let
  // the sparsity pattern depend on the numerical values being stamped — a
  // device whose conductance passes through 0.0 during a Newton iteration
  // would change the matrix structure between factorizations.
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 0.0);  // structural zero: must stay in the pattern
  t.add(1, 1, 2.0);
  EXPECT_EQ(t.entry_count(), 3u);
  const CscMatrix<double> csc(t);
  EXPECT_EQ(csc.nnz(), 3u);
  const MatrixD d = csc.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
}

TEST(Triplet, ZeroEntriesStillMergeWithDuplicates) {
  // A zero followed by a value at the same position must sum, exactly as
  // two nonzero duplicates would.
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, 0.0);
  t.add(0, 0, 5.0);
  t.add(1, 1, 1.0);
  const CscMatrix<double> csc(t);
  const MatrixD d = csc.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 5.0);
}

TEST(Triplet, OutOfRangeThrows) {
  TripletMatrix<double> t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(t.add(0, 5, 1.0), std::out_of_range);
}

TEST(Csc, MultiplyMatchesDense) {
  TripletMatrix<double> t(3, 3);
  t.add(0, 0, 2.0);
  t.add(1, 2, -1.0);
  t.add(2, 1, 5.0);
  t.add(2, 2, 1.0);
  const CscMatrix<double> csc(t);
  const VectorD x{1.0, 2.0, 3.0};
  const VectorD y = csc.multiply(x);
  const VectorD y_ref = t.to_dense() * x;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-14);
}

TEST(SparseLu, SolvesSmallSystem) {
  TripletMatrix<double> t(3, 3);
  t.add(0, 0, 4.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 3.0);
  t.add(1, 2, 1.0);
  t.add(2, 1, 1.0);
  t.add(2, 2, 2.0);
  const CscMatrix<double> a(t);
  const SparseLu<double> lu{a};
  const VectorD b{1.0, 2.0, 3.0};
  const VectorD x = lu.solve(b);
  const VectorD r = a.multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(r[i], b[i], 1e-12);
}

TEST(SparseLu, RequiresPivotingPattern) {
  // Zero diagonal head forces row exchange.
  TripletMatrix<double> t(2, 2);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  const CscMatrix<double> a(t);
  const SparseLu<double> lu{a};
  const VectorD x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(SparseLu, SingularThrows) {
  TripletMatrix<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 0, 2.0);  // column 1 empty -> singular
  EXPECT_THROW(SparseLu<double>{CscMatrix<double>(t)}, SingularMatrixError);
}

// Property: sparse solve matches dense solve on random sparse systems.
class SparseVsDense : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDense, RealSystems) {
  Rng rng(100u + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + static_cast<std::size_t>(GetParam()) * 3;
  TripletMatrix<double> t(n, n);
  // Random sparse pattern with guaranteed nonsingular diagonal.
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 3.0 + rng.uniform());
    for (int k = 0; k < 3; ++k) {
      const std::size_t j = rng.uniform_index(n);
      t.add(i, j, rng.normal() * 0.4);
    }
  }
  VectorD b(n);
  for (auto& v : b) v = rng.normal();

  const CscMatrix<double> a(t);
  const VectorD x_sparse = SparseLu<double>(a).solve(b);
  const VectorD x_dense = lu_solve(t.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_sparse[i], x_dense[i], 1e-8);
}

TEST_P(SparseVsDense, ComplexSystems) {
  Rng rng(200u + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 4 + static_cast<std::size_t>(GetParam()) * 2;
  TripletMatrix<std::complex<double>> t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, {3.0 + rng.uniform(), rng.normal()});
    for (int k = 0; k < 2; ++k) {
      const std::size_t j = rng.uniform_index(n);
      t.add(i, j, {rng.normal() * 0.3, rng.normal() * 0.3});
    }
  }
  VectorC b(n);
  for (auto& v : b) v = {rng.normal(), rng.normal()};

  const CscMatrix<std::complex<double>> a(t);
  const VectorC x_sparse = SparseLu<std::complex<double>>(a).solve(b);
  const VectorC x_dense = lu_solve(t.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(x_sparse[i] - x_dense[i]), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVsDense, ::testing::Range(0, 10));

}  // namespace
}  // namespace rfmix::mathx
