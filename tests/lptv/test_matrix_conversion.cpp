// Matrix-based conversion analysis tests: equivalence with plain AC for
// time-invariant systems and with the element-based LPTV engine for a
// chopper.
#include "lptv/matrix_conversion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lptv/lptv.hpp"
#include "mathx/units.hpp"

namespace rfmix::lptv {
namespace {

TEST(MatrixConversion, StaticSystemReducesToAc) {
  // One node, conductance 1/250 to ground: injecting unit current gives
  // 250 V at sideband 0 and nothing elsewhere.
  const int m_samp = 32;
  mathx::MatrixD g(1, 1);
  g(0, 0) = 1.0 / 250.0;
  std::vector<mathx::MatrixD> samples(m_samp, g);
  mathx::MatrixD c(1, 1);
  MatrixConversionAnalysis an(samples, c, 1e9, 4);
  const MatrixPacSolution sol = an.solve_injection(1e6, -1, 0, 0);
  EXPECT_NEAR(std::abs(sol.at(0, 0)), 250.0, 1e-6);
  for (int k = -4; k <= 4; ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(sol.at(k, 0)), 0.0, 1e-9) << k;
  }
}

TEST(MatrixConversion, RcPoleMatchesAcTheory) {
  const int m_samp = 32;
  const double r = 1e3, cval = 1e-9;
  mathx::MatrixD g(1, 1);
  g(0, 0) = 1.0 / r;
  std::vector<mathx::MatrixD> samples(m_samp, g);
  mathx::MatrixD c(1, 1);
  c(0, 0) = cval;
  MatrixConversionAnalysis an(samples, c, 1e9, 3);
  const double fc = 1.0 / (mathx::kTwoPi * r * cval);
  const MatrixPacSolution sol = an.solve_injection(fc, -1, 0, 0);
  EXPECT_NEAR(std::abs(sol.at(0, 0)), r / std::sqrt(2.0), r * 1e-3);
}

TEST(MatrixConversion, ChopperMatchesElementEngine) {
  // Two-node chopper: node 0 = input (rs), node 1 = output (rl), with a
  // commutated transconductance gm(t) = +-gm. Build the same system both
  // ways and compare the conversion transimpedance.
  const double rs = 50.0, rl = 1e3, gm = 10e-3;
  const double f_lo = 1e9, f_if = 5e6;
  const int k_hi = 6;

  // Element-based engine.
  LptvCircuit ckt(256);
  const int nin = ckt.add_node();
  const int nout = ckt.add_node();
  ckt.add_resistor(nin, 0, rs);
  ckt.add_resistor(nout, 0, rl);
  ckt.add_periodic_vccs(0, nout, nin, 0, square_wave(256, -gm, gm, 1e-6));
  ConversionAnalysis ref(ckt, {f_lo, k_hi});
  const double h_ref = std::abs(
      ref.conversion_transimpedance(f_if, 0, nin, +1, nout, 0, 0));

  // Matrix-based engine: sampled 2x2 Jacobians.
  const int m_samp = 256;
  std::vector<mathx::MatrixD> samples;
  samples.reserve(m_samp);
  const PeriodicWave gm_wave = square_wave(m_samp, -gm, gm, 1e-6);
  for (int s = 0; s < m_samp; ++s) {
    mathx::MatrixD g(2, 2);
    g(0, 0) = 1.0 / rs;
    g(1, 1) = 1.0 / rl;
    // VCCS from (0 -> nout) controlled by v(nin): current gm(t)*v_in enters
    // node 1: row 1 gets -gm(t) * v0? Convention: current leaves ground,
    // enters out -> KCL row of out: -gm(t)*v_in.
    g(1, 0) = -gm_wave[static_cast<std::size_t>(s)];
    samples.push_back(g);
  }
  mathx::MatrixD c(2, 2);
  MatrixConversionAnalysis an(samples, c, f_lo, k_hi);
  // Unit current into node 0 (from ground): rhs +1 at unknown 0.
  const MatrixPacSolution sol = an.solve_injection(f_if, -1, 0, +1);
  const double h_mat = std::abs(sol.at(0, 1));
  EXPECT_NEAR(h_mat, h_ref, h_ref * 0.01);
  // Sanity: textbook value (2/pi) gm rs rl.
  EXPECT_NEAR(h_mat, 2.0 / mathx::kPi * gm * rs * rl, h_mat * 0.02);
}

TEST(MatrixConversion, ValidatesArguments) {
  mathx::MatrixD g(1, 1);
  g(0, 0) = 1.0;
  mathx::MatrixD c(1, 1);
  EXPECT_THROW(MatrixConversionAnalysis({}, c, 1e9, 3), std::invalid_argument);
  EXPECT_THROW(MatrixConversionAnalysis(std::vector<mathx::MatrixD>(8, g), c, 1e9, 3),
               std::invalid_argument);  // 8 < 4*3+2
  mathx::MatrixD c_bad(2, 2);
  EXPECT_THROW(MatrixConversionAnalysis(std::vector<mathx::MatrixD>(32, g), c_bad, 1e9, 3),
               std::invalid_argument);
  MatrixConversionAnalysis ok(std::vector<mathx::MatrixD>(32, g), c, 1e9, 3);
  EXPECT_THROW(ok.solve_injection(1e6, -1, 0, 9), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::lptv
