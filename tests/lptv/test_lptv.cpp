// Conversion-matrix engine tests: reduction to plain AC for static
// circuits, textbook chopper conversion gain (2/pi), noise folding
// conservation, and cyclostationary-vs-stationary consistency.
#include "lptv/lptv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"

namespace rfmix::lptv {
namespace {

using mathx::kBoltzmann;
using mathx::kPi;
using mathx::kT0;

TEST(SquareWave, LevelsAndMean) {
  const auto w = square_wave(256, 0.0, 1.0, 0.01);
  double mean = 0.0, mn = 1e9, mx = -1e9;
  for (const double v : w) {
    mean += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  mean /= static_cast<double>(w.size());
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(mn, 0.0, 1e-9);
  EXPECT_NEAR(mx, 1.0, 1e-9);
}

TEST(SquareWave, PhaseShiftRotatesWave) {
  const auto a = square_wave(128, -1.0, 1.0, 0.01, 0.0);
  const auto b = square_wave(128, -1.0, 1.0, 0.01, 0.5);
  // Half-period shift inverts the wave.
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], -b[i], 1e-9);
}

TEST(CosineWave, Values) {
  const auto w = cosine_wave(4, 1.0, 0.5);
  EXPECT_NEAR(w[0], 1.5, 1e-12);
  EXPECT_NEAR(w[1], 1.0, 1e-12);
  EXPECT_NEAR(w[2], 0.5, 1e-12);
}

TEST(ConversionMatrix, StaticCircuitReducesToAc) {
  // Resistor to ground: transimpedance at sideband 0 is R; no cross-sideband
  // coupling.
  LptvCircuit ckt;
  const int n1 = ckt.add_node();
  ckt.add_resistor(n1, 0, 250.0);
  ConversionAnalysis an(ckt, {1e9, 4});
  const PacSolution sol = an.solve_current_injection(1e6, 0, n1, 0);
  EXPECT_NEAR(std::abs(sol.v(0, n1)), 250.0, 1e-6);
  for (int k = -4; k <= 4; ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(sol.v(k, n1)), 0.0, 1e-9) << "k=" << k;
  }
}

TEST(ConversionMatrix, StaticRcPoleMatchesAcTheory) {
  LptvCircuit ckt;
  const int n1 = ckt.add_node();
  const double r = 1e3, c = 1e-9;
  ckt.add_resistor(n1, 0, r);
  ckt.add_capacitance(n1, 0, c);
  ConversionAnalysis an(ckt, {1e9, 3});
  const double fc = 1.0 / (mathx::kTwoPi * r * c);
  const Complex z = an.conversion_transimpedance(fc, 0, n1, 0, n1, 0, 0);
  EXPECT_NEAR(std::abs(z), r / std::sqrt(2.0), r * 1e-3);
}

TEST(ConversionMatrix, SidebandFrequenciesAreReported) {
  LptvCircuit ckt;
  const int n1 = ckt.add_node();
  ckt.add_resistor(n1, 0, 1.0);
  ConversionAnalysis an(ckt, {2.4e9, 2});
  const PacSolution sol = an.solve_current_injection(5e6, 0, n1, 0);
  EXPECT_NEAR(sol.sideband_freq(0), 5e6, 1.0);
  EXPECT_NEAR(sol.sideband_freq(1), 2.405e9, 1.0);
  EXPECT_NEAR(sol.sideband_freq(-1), -2.395e9, 1.0);
}

/// Double-balanced commutating transconductor: gm(t) toggles between +gm and
/// -gm. Conversion gain from input sideband +1 to output sideband 0 is
/// (2/pi) * gm * Rl * Rs (transimpedance form with the Norton input).
TEST(ConversionMatrix, ChopperVccsConversionGainIsTwoOverPi) {
  LptvCircuit ckt;
  const int in = ckt.add_node();
  const int out = ckt.add_node();
  const double rs = 50.0, rl = 1e3, gm = 10e-3;
  ckt.add_resistor(in, 0, rs);
  ckt.add_resistor(out, 0, rl);
  ckt.add_periodic_vccs(out, 0, in, 0,
                        square_wave(256, -gm, gm, 1e-6));
  ConversionAnalysis an(ckt, {2.4e9, 8});
  const Complex h = an.conversion_transimpedance(5e6, 0, in, 1, out, 0, 0);
  // v_in(+1) = rs; i_out(0) = gm_{-1} * v_in; v_out = -i/gl... magnitudes:
  const double expected = (2.0 / kPi) * gm * rs * rl;
  EXPECT_NEAR(std::abs(h), expected, expected * 0.01);
}

TEST(ConversionMatrix, ChopperHarmonicConversionFollowsOneOverM) {
  // Square-wave commutation converts from sideband 3 with 1/3 the gain of
  // sideband 1 (odd harmonics of the LO).
  LptvCircuit ckt;
  const int in = ckt.add_node();
  const int out = ckt.add_node();
  ckt.add_resistor(in, 0, 50.0);
  ckt.add_resistor(out, 0, 1e3);
  ckt.add_periodic_vccs(out, 0, in, 0, square_wave(256, -5e-3, 5e-3, 1e-6));
  ConversionAnalysis an(ckt, {1e9, 8});
  const double h1 = std::abs(an.conversion_transimpedance(1e6, 0, in, 1, out, 0, 0));
  const double h3 = std::abs(an.conversion_transimpedance(1e6, 0, in, 3, out, 0, 0));
  const double h2 = std::abs(an.conversion_transimpedance(1e6, 0, in, 2, out, 0, 0));
  EXPECT_NEAR(h3 / h1, 1.0 / 3.0, 0.02);
  EXPECT_LT(h2, h1 * 1e-3);  // even harmonics ideally vanish
}

TEST(ConversionMatrix, PassiveSwitchConversionLoss) {
  // Single series switch (periodic conductance, 50% duty) between a Norton
  // source and a load: fundamental conversion involves the g(theta)
  // fundamental coefficient (1/pi for a 0..g0 square).
  LptvCircuit ckt;
  const int a = ckt.add_node();
  const int b = ckt.add_node();
  const double rs = 50.0, rl = 50.0;
  ckt.add_resistor(a, 0, rs);
  ckt.add_resistor(b, 0, rl);
  ckt.add_periodic_conductance(a, b, square_wave(256, 1e-9, 1.0 / 5.0, 1e-6));
  ConversionAnalysis an(ckt, {1e9, 8});
  const Complex h_conv = an.conversion_transimpedance(1e6, 0, a, 1, b, 0, 0);
  const Complex h_thru = an.conversion_transimpedance(1e6, 0, a, 1, b, 0, 1);
  // Through-path (same sideband) must dominate the converted path.
  EXPECT_GT(std::abs(h_thru), std::abs(h_conv) * 1.2);
  EXPECT_GT(std::abs(h_conv), 0.0);
}

TEST(LptvNoise, StaticResistorMatchesNyquist) {
  LptvCircuit ckt;
  const int n1 = ckt.add_node();
  const double r = 10e3;
  ckt.add_resistor(n1, 0, r);
  const double psd_i = 4.0 * kBoltzmann * kT0 / r;
  ckt.add_noise_current(n1, 0, [psd_i](double) { return psd_i; }, "r.thermal");
  ConversionAnalysis an(ckt, {1e9, 4});
  const LptvNoiseResult res = an.output_noise(1e6, n1, 0);
  EXPECT_NEAR(res.total_output_psd_v2_hz, 4.0 * kBoltzmann * kT0 * r,
              4.0 * kBoltzmann * kT0 * r * 1e-3);
}

TEST(LptvNoise, CycloWithConstantIntensityEqualsStationary) {
  // A "cyclostationary" source with flat intensity must reproduce the
  // stationary result exactly.
  const double r = 5e3;
  const double psd_i = 4.0 * kBoltzmann * kT0 / r;

  LptvCircuit a;
  const int na = a.add_node();
  a.add_resistor(na, 0, r);
  a.add_noise_current(na, 0, [psd_i](double) { return psd_i; }, "stat");
  ConversionAnalysis ana(a, {1e9, 5});
  const double stationary = ana.output_noise(1e6, na, 0).total_output_psd_v2_hz;

  LptvCircuit b;
  const int nb = b.add_node();
  b.add_resistor(nb, 0, r);
  b.add_cyclo_noise_current(nb, 0, PeriodicWave(256, psd_i), "cyclo");
  ConversionAnalysis anb(b, {1e9, 5});
  const double cyclo = anb.output_noise(1e6, nb, 0).total_output_psd_v2_hz;

  EXPECT_NEAR(cyclo, stationary, stationary * 1e-6);
}

TEST(LptvNoise, ChopperConservesWhiteNoisePower) {
  // White stationary noise passed through a +-1 chopper keeps its total
  // power: sum over sidebands of |c_m|^2 = mean(square) = 1.
  LptvCircuit ckt(512);
  const int in = ckt.add_node();
  const int out = ckt.add_node();
  const double rs = 100.0, rl = 1e3, gm = 1e-3;
  ckt.add_resistor(in, 0, rs);
  ckt.add_resistor(out, 0, rl);
  ckt.add_periodic_vccs(out, 0, in, 0, square_wave(512, -gm, gm, 1e-6));
  const double psd_i = 1e-22;  // white test source at the input node
  ckt.add_noise_current(in, 0, [psd_i](double) { return psd_i; }, "src");
  // High harmonic count so the folded tail is captured.
  ConversionAnalysis an(ckt, {1e9, 25});
  const LptvNoiseResult res = an.output_noise(1e6, out, 0);
  // Input voltage noise psd_i*rs^2 times (gm*rl)^2, total over sidebands = 1x.
  const double expected = psd_i * rs * rs * gm * gm * rl * rl;
  // Sum |c_m|^2 over |m|<=25 odd: (2/pi)^2 * sum 1/m^2 ~ 0.9676 of unity.
  EXPECT_GT(res.total_output_psd_v2_hz, expected * 0.93);
  EXPECT_LT(res.total_output_psd_v2_hz, expected * 1.01);
}

TEST(LptvNoise, FlickerFoldsFromLoSidebands) {
  // 1/f noise at the input of a chopper appears at the output around DC
  // *folded from the LO sidebands*: at f_base far below f_lo the folded
  // flicker evaluated at ~f_lo is tiny, so output noise is white-ish and
  // much smaller than the unchopped case.
  const double gm = 1e-3, rs = 100.0, rl = 1e3;
  auto flicker = [](double f) { return 1e-18 / f; };

  // Unchopped reference: static vccs.
  LptvCircuit a;
  const int ia = a.add_node();
  const int oa = a.add_node();
  a.add_resistor(ia, 0, rs);
  a.add_resistor(oa, 0, rl);
  a.add_vccs(oa, 0, ia, 0, gm);
  a.add_noise_current(ia, 0, flicker, "flicker");
  ConversionAnalysis ana(a, {1e9, 4});
  const double unchopped = ana.output_noise(100.0, oa, 0).total_output_psd_v2_hz;

  // Chopped: same flicker source, commutated gm.
  LptvCircuit b;
  const int ib = b.add_node();
  const int ob = b.add_node();
  b.add_resistor(ib, 0, rs);
  b.add_resistor(ob, 0, rl);
  b.add_periodic_vccs(ob, 0, ib, 0, square_wave(256, -gm, gm, 1e-6));
  b.add_noise_current(ib, 0, flicker, "flicker");
  ConversionAnalysis anb(b, {1e9, 4});
  const double chopped = anb.output_noise(100.0, ob, 0).total_output_psd_v2_hz;

  EXPECT_LT(chopped, unchopped * 1e-4);  // chopping removes input 1/f
}

TEST(ConversionAnalysis, ValidatesArguments) {
  LptvCircuit ckt;
  const int n1 = ckt.add_node();
  ckt.add_resistor(n1, 0, 1.0);
  EXPECT_THROW(ConversionAnalysis(ckt, {1e9, 0}), std::invalid_argument);
  EXPECT_THROW(ConversionAnalysis(ckt, {1e9, 200}), std::invalid_argument);
  ConversionAnalysis an(ckt, {1e9, 4});
  EXPECT_THROW(an.solve_current_injection(1e6, 0, n1, 9), std::invalid_argument);
}

TEST(LptvCircuit, WaveformSizeValidated) {
  LptvCircuit ckt(128);
  const int n1 = ckt.add_node();
  EXPECT_THROW(ckt.add_periodic_conductance(n1, 0, PeriodicWave(64, 1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::lptv
