// Telemetry registry semantics: counter/timer identity and aggregation,
// thread-local timer slabs under the work-stealing pool, snapshot ordering,
// and RunReport serialization. Every test also compiles (and the
// API-surface ones still run) with RFMIX_OBS=OFF, where the registry
// collapses to shared no-ops.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

namespace rfmix::obs {
namespace {

TEST(Telemetry, CounterAccumulatesAndReads) {
  Counter& c = counter("test.telemetry.basic");
  const std::uint64_t before = c.value();
  c.increment();
  c.add(41);
#if RFMIX_OBS_ENABLED
  EXPECT_EQ(c.value(), before + 42);
  EXPECT_EQ(counter_value("test.telemetry.basic"), before + 42);
#else
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(counter_value("test.telemetry.basic"), 0u);
#endif
  (void)before;
}

TEST(Telemetry, LookupReturnsStableIdentity) {
  Counter& a = counter("test.telemetry.identity");
  Counter& b = counter("test.telemetry.identity");
  EXPECT_EQ(&a, &b);
  Timer& ta = timer("test.telemetry.identity.t");
  Timer& tb = timer("test.telemetry.identity.t");
  EXPECT_EQ(&ta, &tb);
#if RFMIX_OBS_ENABLED
  // Distinct names are distinct instruments.
  EXPECT_NE(&a, &counter("test.telemetry.identity2"));
#endif
}

TEST(Telemetry, MacroCountsThroughCachedReference) {
  const std::uint64_t before = counter_value("test.telemetry.macro");
  for (int i = 0; i < 3; ++i) RFMIX_OBS_COUNT("test.telemetry.macro");
  RFMIX_OBS_COUNT_N("test.telemetry.macro", 7);
#if RFMIX_OBS_ENABLED
  EXPECT_EQ(counter_value("test.telemetry.macro"), before + 10);
#else
  EXPECT_EQ(counter_value("test.telemetry.macro"), 0u);
#endif
  (void)before;
}

TEST(Telemetry, TimerRecordsCallsAndTime) {
  Timer& t = timer("test.telemetry.timer");
  const std::uint64_t calls_before = t.calls();
  const std::uint64_t ns_before = t.total_ns();
  t.record(1500);
  t.record(500);
#if RFMIX_OBS_ENABLED
  EXPECT_EQ(t.calls(), calls_before + 2);
  EXPECT_EQ(t.total_ns(), ns_before + 2000);
  EXPECT_DOUBLE_EQ(t.total_s(), static_cast<double>(ns_before + 2000) * 1e-9);
#else
  EXPECT_EQ(t.calls(), 0u);
  EXPECT_EQ(t.total_ns(), 0u);
#endif
  (void)calls_before;
  (void)ns_before;
}

TEST(Telemetry, ScopedTimerCreditsOneCall) {
  Timer& t = timer("test.telemetry.scoped");
  const std::uint64_t before = t.calls();
  {
    ScopedTimer scope(t);
  }
#if RFMIX_OBS_ENABLED
  EXPECT_EQ(t.calls(), before + 1);
#endif
  (void)before;
}

#if RFMIX_OBS_ENABLED

TEST(Telemetry, SnapshotIsSortedByName) {
  counter("test.telemetry.zzz").increment();
  counter("test.telemetry.aaa").increment();
  timer("test.telemetry.zzz.t").record(1);
  const TelemetrySnapshot s = snapshot();
  ASSERT_FALSE(s.counters.empty());
  for (std::size_t i = 1; i < s.counters.size(); ++i)
    EXPECT_LT(s.counters[i - 1].name, s.counters[i].name);
  for (std::size_t i = 1; i < s.timers.size(); ++i)
    EXPECT_LT(s.timers[i - 1].name, s.timers[i].name);
}

TEST(Telemetry, SnapshotCarriesValues) {
  Counter& c = counter("test.telemetry.snapvalue");
  const std::uint64_t target = c.value() + 5;
  c.add(5);
  const TelemetrySnapshot s = snapshot();
  bool found = false;
  for (const CounterSnapshot& cs : s.counters) {
    if (cs.name == "test.telemetry.snapvalue") {
      EXPECT_EQ(cs.value, target);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Telemetry, CounterValueOfUnknownNameIsZeroWithoutCreating) {
  const std::size_t n_before = snapshot().counters.size();
  EXPECT_EQ(counter_value("test.telemetry.never_created"), 0u);
  EXPECT_EQ(snapshot().counters.size(), n_before);
}

// The slab design's core claim: concurrent ScopedTimers on many pool
// workers aggregate without losing calls. Runs the scopes through
// parallel_for on a private pool so worker threads (not just the caller)
// hit the thread-local slabs, including threads created after the timer.
TEST(Telemetry, TimerAggregatesAcrossPoolWorkers) {
  Timer& t = timer("test.telemetry.pool_aggregate");
  const std::uint64_t calls_before = t.calls();
  constexpr std::size_t kTasks = 256;
  runtime::ScopedPool pool(4);
  runtime::ParallelOptions opts;
  opts.grain = 1;
  runtime::parallel_for(
      0, kTasks,
      [&](std::size_t) {
        ScopedTimer scope(t);
        std::atomic_signal_fence(std::memory_order_seq_cst);  // keep the scope
      },
      opts);
  EXPECT_EQ(t.calls(), calls_before + kTasks);
}

// Totals recorded on a thread must survive that thread's exit (slabs are
// retired into the registry, not dropped).
TEST(Telemetry, DeadThreadTotalsAreRetained) {
  Timer& t = timer("test.telemetry.retired");
  const std::uint64_t calls_before = t.calls();
  const std::uint64_t ns_before = t.total_ns();
  std::thread worker([&] { t.record(12345); });
  worker.join();
  EXPECT_EQ(t.calls(), calls_before + 1);
  EXPECT_EQ(t.total_ns(), ns_before + 12345);
}

TEST(Telemetry, ResetAllZeroesCountersAndTimers) {
  counter("test.telemetry.reset").add(9);
  timer("test.telemetry.reset.t").record(9);
  reset_all();
  EXPECT_EQ(counter_value("test.telemetry.reset"), 0u);
  EXPECT_EQ(timer("test.telemetry.reset.t").calls(), 0u);
  EXPECT_EQ(timer("test.telemetry.reset.t").total_ns(), 0u);
}

#endif  // RFMIX_OBS_ENABLED

TEST(RunReportTest, EmitsSchemaFields) {
  RunReport report("unit_test_tool");
  report.set_config("points", 29.0);
  report.set_config("mode", std::string("active"));
  report.add_metric("gain_db", 29.2);
  report.add_metric("verdict", std::string("pass"));
  std::ostringstream os;
  report.write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"unit_test_tool\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"started_utc\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_s\""), std::string::npos);
  EXPECT_NE(json.find("\"gain_db\": 29.2"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"pass\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"active\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
}

TEST(RunReportTest, ReportsObsBuildFlag) {
  RunReport report("unit_test_tool");
  std::ostringstream os;
  report.write(os);
#if RFMIX_OBS_ENABLED
  EXPECT_NE(os.str().find("\"obs_enabled\": true"), std::string::npos);
#else
  EXPECT_NE(os.str().find("\"obs_enabled\": false"), std::string::npos);
#endif
}

TEST(RunReportTest, TelemetrySectionTracksRegistry) {
  counter("test.report.counter").add(3);
  RunReport report("unit_test_tool");
  std::ostringstream os;
  report.write(os);
#if RFMIX_OBS_ENABLED
  EXPECT_NE(os.str().find("\"test.report.counter\""), std::string::npos);
#else
  // Disabled builds still produce the sections, just empty of instruments.
  EXPECT_EQ(os.str().find("\"test.report.counter\""), std::string::npos);
#endif
}

}  // namespace
}  // namespace rfmix::obs
