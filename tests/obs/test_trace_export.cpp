// Trace recorder contract: enable/disable gating, per-thread event
// ordering, the nesting invariant (same-tid intervals are disjoint or
// strictly nested), and well-formed Chrome trace-event JSON. The JSON
// checks use a tiny recursive-descent validator instead of a parser
// dependency — the exporter's output is small and fully specified.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

namespace rfmix::obs {
namespace {

// Minimal structural JSON validator: accepts exactly the RFC 8259 grammar
// for objects/arrays/strings/numbers/true/false/null. Returns true iff the
// whole input is one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_)
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Fresh recorder state for every test; recording stays off on exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::disable();
    trace::clear();
  }
  void TearDown() override {
    trace::disable();
    trace::clear();
  }
};

TEST_F(TraceTest, DisabledRecorderCapturesNothing) {
  {
    RFMIX_OBS_TRACE_SCOPE("trace.test.off");
  }
  EXPECT_TRUE(trace::events().empty());
}

TEST_F(TraceTest, ExportWithoutEventsIsValidEmptyTrace) {
  std::ostringstream os;
  trace::export_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

#if RFMIX_OBS_ENABLED

TEST_F(TraceTest, EnableCapturesCompleteEvents) {
  trace::enable();
  EXPECT_TRUE(trace::enabled());
  {
    RFMIX_OBS_TRACE_SCOPE("trace.test.outer");
    { RFMIX_OBS_TRACE_SCOPE("trace.test.inner"); }
  }
  trace::disable();
  const std::vector<TraceEvent> ev = trace::events();
  ASSERT_EQ(ev.size(), 2u);
  // Same thread, sorted by start time: outer starts first.
  EXPECT_EQ(ev[0].tid, ev[1].tid);
  EXPECT_EQ(ev[0].name, "trace.test.outer");
  EXPECT_EQ(ev[1].name, "trace.test.inner");
}

TEST_F(TraceTest, ScopesOpenedWhileDisabledDoNotRecord) {
  {
    RFMIX_OBS_TRACE_SCOPE("trace.test.pre");  // armed? no — recording off
    trace::enable();
  }
  // The scope above entered before enable(), so it must not have recorded.
  EXPECT_TRUE(trace::events().empty());
  trace::disable();
}

TEST_F(TraceTest, ClearDropsEvents) {
  trace::enable();
  { RFMIX_OBS_TRACE_SCOPE("trace.test.cleared"); }
  trace::disable();
  ASSERT_FALSE(trace::events().empty());
  trace::clear();
  EXPECT_TRUE(trace::events().empty());
}

// Per-tid interval invariant: RAII scopes on one thread unwind LIFO, so two
// events with the same tid are either disjoint or one strictly contains the
// other. Violations would mean tid assignment is mixing threads together.
TEST_F(TraceTest, SameThreadEventsNestOrAreDisjoint) {
  trace::enable();
  runtime::ScopedPool pool(4);
  runtime::ParallelOptions opts;
  opts.grain = 1;
  runtime::parallel_for(
      0, 64,
      [](std::size_t) {
        RFMIX_OBS_TRACE_SCOPE("trace.test.task");
        { RFMIX_OBS_TRACE_SCOPE("trace.test.subtask"); }
      },
      opts);
  trace::disable();
  const std::vector<TraceEvent> ev = trace::events();
  ASSERT_EQ(ev.size(), 128u);
  for (std::size_t i = 0; i < ev.size(); ++i) {
    for (std::size_t j = i + 1; j < ev.size(); ++j) {
      if (ev[i].tid != ev[j].tid) continue;
      const std::uint64_t a0 = ev[i].ts_ns, a1 = ev[i].ts_ns + ev[i].dur_ns;
      const std::uint64_t b0 = ev[j].ts_ns, b1 = ev[j].ts_ns + ev[j].dur_ns;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_contains_b = a0 <= b0 && b1 <= a1;
      const bool b_contains_a = b0 <= a0 && a1 <= b1;
      EXPECT_TRUE(disjoint || a_contains_b || b_contains_a)
          << "tid " << ev[i].tid << ": [" << a0 << "," << a1 << ") vs ["
          << b0 << "," << b1 << ")";
    }
  }
}

TEST_F(TraceTest, EventsSortedByTidThenTime) {
  trace::enable();
  for (int i = 0; i < 5; ++i) {
    RFMIX_OBS_TRACE_SCOPE("trace.test.seq");
  }
  trace::disable();
  const std::vector<TraceEvent> ev = trace::events();
  ASSERT_EQ(ev.size(), 5u);
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_TRUE(ev[i - 1].tid < ev[i].tid ||
                (ev[i - 1].tid == ev[i].tid && ev[i - 1].ts_ns <= ev[i].ts_ns));
  }
}

TEST_F(TraceTest, ExportedJsonIsWellFormedAndCarriesEvents) {
  trace::enable();
  { RFMIX_OBS_TRACE_SCOPE("trace.test.json \"quoted\\name\""); }
  trace::disable();
  std::ostringstream os;
  trace::export_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\\name\\\""), std::string::npos);
}

#else  // !RFMIX_OBS_ENABLED

TEST_F(TraceTest, DisabledBuildRecordsNothingEvenWhenEnabled) {
  trace::enable();
  EXPECT_FALSE(trace::enabled());
  { RFMIX_OBS_TRACE_SCOPE("trace.test.compiled_out"); }
  trace::disable();
  EXPECT_TRUE(trace::events().empty());
  std::ostringstream os;
  trace::export_json(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

#endif  // RFMIX_OBS_ENABLED

}  // namespace
}  // namespace rfmix::obs
