// NetlistBuilder: the emitted deck must parse back through
// spice::parse_netlist with bit-identical values, and name/type discipline
// must fail fast on template bugs.
#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/netlist_builder.hpp"
#include "spice/circuit.hpp"
#include "spice/parser.hpp"

namespace rfmix::gen {
namespace {

TEST(NetlistBuilderTest, EmitsParsableDeck) {
  NetlistBuilder b;
  b.comment("two-element divider");
  b.vsource_dc("vin", "in", "0", 1.5);
  b.resistor("r1", "in", "mid", 1e3);
  b.resistor("r2", "mid", "0", 2e3);
  b.capacitor("c1", "mid", "0", 1e-12);
  EXPECT_EQ(b.cards(), 4u);
  const spice::Circuit ckt = spice::parse_netlist(std::move(b).str());
  EXPECT_EQ(ckt.devices().size(), 4u);
  EXPECT_NE(ckt.find_node("mid"), spice::kGround);
}

TEST(NetlistBuilderTest, ValueTokenRoundTrips) {
  // Shortest-round-trip printing: an "ugly" double must survive
  // print -> parse exactly, or flat/hier solves could diverge in the
  // last ulp.
  const double ugly = 1.0 / 3.0 * 1e-12;
  NetlistBuilder b;
  b.vsource_dc("v1", "a", "0", 1.0);
  b.capacitor("c1", "a", "0", ugly);
  const spice::Circuit ckt = spice::parse_netlist(std::move(b).str());
  bool found = false;
  for (const auto& d : ckt.devices()) {
    if (d->name() == "c1") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NetlistBuilderTest, SubcktBlocksAndInstances) {
  NetlistBuilder b;
  b.begin_subckt("cell", {"p", "q"});
  b.resistor("r1", "p", "q", 50.0);
  b.end_subckt();
  b.vsource_dc("vin", "top", "0", 1.0);
  b.instance("x0", {"top", "0"}, "cell");
  const spice::Circuit ckt = spice::parse_netlist(std::move(b).str());
  // One elaborated resistor under the instance prefix + the source.
  EXPECT_EQ(ckt.devices().size(), 2u);
}

TEST(NetlistBuilderTest, LeafTypeMismatchThrows) {
  NetlistBuilder b;
  EXPECT_THROW(b.resistor("c1", "a", "0", 1.0), std::invalid_argument);
  // Leaf-segment rule: a flat elaboration-style name types by the segment
  // after the last dot, so "xe0.rsw0" is a valid *resistor* name.
  EXPECT_NO_THROW(b.resistor("xe0.rsw0", "a", "0", 1.0));
  EXPECT_THROW(b.capacitor("xe0.rsw0", "a", "0", 1.0), std::invalid_argument);
}

TEST(NetlistBuilderTest, NestedSubcktDefinitionRejected) {
  NetlistBuilder b;
  b.begin_subckt("outer", {"a"});
  EXPECT_THROW(b.begin_subckt("inner", {"b"}), std::invalid_argument);
  b.end_subckt();
  EXPECT_THROW(b.end_subckt(), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::gen
