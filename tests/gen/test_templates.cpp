// GenSpec templates: closed-form device counts must match what the parser
// elaborates, probe nodes must exist, mismatch draws must be deterministic
// per (seed, element), and validation must reject out-of-range specs
// before any rendering happens.
#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/templates.hpp"
#include "spice/circuit.hpp"
#include "spice/parser.hpp"

namespace rfmix::gen {
namespace {

spice::Circuit elaborate(GenSpec spec, bool hierarchical) {
  spec.hierarchical = hierarchical;
  return spice::parse_netlist(render_netlist(spec));
}

TEST(GenTemplatesTest, DeviceCountMatchesElaboration) {
  for (const char* id : {"rx_array", "mixer_slice", "ladder"}) {
    GenSpec spec;
    spec.template_id = id;
    spec.elements = 3;
    spec.paths = 4;
    spec.sections = 5;
    spec.depth = 3;
    for (const bool hier : {false, true}) {
      const spice::Circuit ckt = elaborate(spec, hier);
      EXPECT_EQ(ckt.devices().size(), device_count(spec))
          << id << (hier ? " hierarchical" : " flat");
    }
  }
}

TEST(GenTemplatesTest, DeviceCountWithBasebandCaps) {
  GenSpec spec;
  spec.zbb_c = 2e-12;  // adds one cap per ladder section
  spec.elements = 2;
  for (const bool hier : {false, true}) {
    const spice::Circuit ckt = elaborate(spec, hier);
    EXPECT_EQ(ckt.devices().size(), device_count(spec));
  }
}

TEST(GenTemplatesTest, ProbeNodesExistInBothRenderings) {
  for (const char* id : {"rx_array", "mixer_slice", "ladder"}) {
    GenSpec spec;
    spec.template_id = id;
    for (const bool hier : {false, true}) {
      const spice::Circuit ckt = elaborate(spec, hier);
      for (const std::string& node : probe_nodes(spec))
        EXPECT_TRUE(ckt.has_node(node))
            << id << (hier ? " hierarchical" : " flat") << " missing " << node;
    }
  }
}

TEST(GenTemplatesTest, MismatchDrawsAreDeterministic) {
  GenSpec spec;
  spec.mismatch = 0.05;
  spec.seed = 42;
  for (int e = 0; e < 8; ++e) {
    const ElementDraw a = element_draw(spec, e);
    const ElementDraw b = element_draw(spec, e);
    // Bitwise: the draw is fork(element) off the seed, no shared stream.
    EXPECT_EQ(a.switch_ron, b.switch_ron);
    EXPECT_EQ(a.zbb_r, b.zbb_r);
  }
  // Different elements (and different seeds) draw different values.
  EXPECT_NE(element_draw(spec, 0).switch_ron, element_draw(spec, 1).switch_ron);
  GenSpec other = spec;
  other.seed = 43;
  EXPECT_NE(element_draw(spec, 0).switch_ron, element_draw(other, 0).switch_ron);
}

TEST(GenTemplatesTest, MismatchedRenderingIsSeedStable) {
  GenSpec spec;
  spec.elements = 3;
  spec.mismatch = 0.1;
  spec.seed = 7;
  EXPECT_EQ(render_netlist(spec), render_netlist(spec));
  GenSpec other = spec;
  other.seed = 8;
  EXPECT_NE(render_netlist(spec), render_netlist(other));
}

TEST(GenTemplatesTest, NominalDrawsAreExact) {
  GenSpec spec;  // mismatch = 0
  const ElementDraw d = element_draw(spec, 3);
  EXPECT_EQ(d.switch_ron, spec.switch_ron);
  EXPECT_EQ(d.zbb_r, spec.zbb_r);
}

TEST(GenTemplatesTest, ElementNpathSpecCarriesMismatch) {
  GenSpec spec;
  spec.mismatch = 0.1;
  spec.seed = 5;
  const npath::NpathSpec s0 = element_npath_spec(spec, 0);
  const npath::NpathSpec s1 = element_npath_spec(spec, 1);
  EXPECT_EQ(s0.lo.phases, spec.paths);
  EXPECT_NE(s0.switch_ron, s1.switch_ron);
  EXPECT_EQ(s0.switch_ron, element_draw(spec, 0).switch_ron);

  GenSpec ladder;
  ladder.template_id = "ladder";
  EXPECT_THROW(element_npath_spec(ladder, 0), std::invalid_argument);
}

TEST(GenTemplatesTest, ValidateRejectsBadSpecs) {
  GenSpec spec;
  spec.template_id = "nonsense";
  EXPECT_THROW(validate(spec), std::invalid_argument);

  GenSpec range;
  range.paths = 0;
  EXPECT_THROW(validate(range), std::invalid_argument);

  GenSpec ladder_mm;
  ladder_mm.template_id = "ladder";
  ladder_mm.mismatch = 0.1;
  EXPECT_THROW(validate(ladder_mm), std::invalid_argument);

  GenSpec huge;
  huge.elements = 65536;
  huge.paths = 32;
  huge.sections = 64;
  EXPECT_THROW(validate(huge), std::invalid_argument);  // device cap

  EXPECT_NO_THROW(validate(GenSpec{}));
}

}  // namespace
}  // namespace rfmix::gen
