// The property the gen subsystem is built on: flat and hierarchical
// renderings of the same GenSpec elaborate to the *same* circuit —
// identical canonical cache records and bit-identical DC solves — at any
// thread count and under both solver modes. memcmp over raw solution
// vectors, not EXPECT_DOUBLE_EQ: structural sharing is only trustworthy if
// instance replay performs the exact arithmetic of the flat deck.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "gen/templates.hpp"
#include "mathx/solver_config.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/circuit.hpp"
#include "spice/op.hpp"
#include "spice/parser.hpp"
#include "svc/canonical.hpp"

namespace rfmix::gen {
namespace {

std::string canonical_of(const GenSpec& spec, bool hierarchical) {
  GenSpec s = spec;
  s.hierarchical = hierarchical;
  const spice::Circuit ckt = spice::parse_netlist(render_netlist(s));
  svc::CanonicalWriter w;
  svc::append_canonical_circuit(w, ckt);
  return w.str();
}

std::vector<double> solve(const GenSpec& spec, bool hierarchical,
                          mathx::SolverMode mode, int threads) {
  mathx::ScopedSolverMode scoped(mode);
  runtime::ScopedPool pool(threads);
  GenSpec s = spec;
  s.hierarchical = hierarchical;
  // Fresh parse per run: devices carry companion state, so sharing a
  // circuit between solves would entangle the runs under comparison.
  spice::Circuit ckt = spice::parse_netlist(render_netlist(s));
  return spice::dc_operating_point(ckt).raw();
}

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::vector<GenSpec> parity_specs() {
  std::vector<GenSpec> specs;

  GenSpec rx;
  rx.template_id = "rx_array";
  rx.elements = 5;
  rx.paths = 4;
  rx.sections = 3;
  rx.zbb_c = 1e-12;
  specs.push_back(rx);

  GenSpec rx_mm = rx;  // per-element mismatch: every slice subckt distinct
  rx_mm.mismatch = 0.08;
  rx_mm.seed = 1234;
  specs.push_back(rx_mm);

  GenSpec mixer;
  mixer.template_id = "mixer_slice";
  mixer.elements = 3;
  mixer.mismatch = 0.05;
  mixer.seed = 9;
  specs.push_back(mixer);

  GenSpec ladder;
  ladder.template_id = "ladder";
  ladder.depth = 5;  // 127 devices from a ~24-line deck
  specs.push_back(ladder);

  return specs;
}

TEST(ElaborationParityTest, CanonicalRecordsIdentical) {
  for (const GenSpec& spec : parity_specs()) {
    EXPECT_EQ(canonical_of(spec, false), canonical_of(spec, true))
        << spec.template_id;
  }
}

TEST(ElaborationParityTest, SolvesBitIdenticalAcrossRenderings) {
  for (const GenSpec& spec : parity_specs()) {
    const std::vector<double> baseline =
        solve(spec, /*hierarchical=*/false, mathx::SolverMode::kClassic, 1);
    ASSERT_FALSE(baseline.empty());
    for (const bool hier : {false, true}) {
      for (const auto mode :
           {mathx::SolverMode::kClassic, mathx::SolverMode::kReuse}) {
        for (const int threads : {1, 8}) {
          EXPECT_TRUE(same_bits(baseline, solve(spec, hier, mode, threads)))
              << spec.template_id << " hier=" << hier
              << " mode=" << mathx::solver_mode_name(mode)
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(ElaborationParityTest, MismatchSeedReproducesBitwise) {
  GenSpec spec;
  spec.elements = 4;
  spec.mismatch = 0.1;
  spec.seed = 77;
  const std::vector<double> a =
      solve(spec, /*hierarchical=*/true, mathx::SolverMode::kClassic, 1);
  const std::vector<double> b =
      solve(spec, /*hierarchical=*/true, mathx::SolverMode::kClassic, 1);
  EXPECT_TRUE(same_bits(a, b));
  GenSpec other = spec;
  other.seed = 78;
  EXPECT_FALSE(same_bits(
      a, solve(other, /*hierarchical=*/true, mathx::SolverMode::kClassic, 1)));
}

}  // namespace
}  // namespace rfmix::gen
