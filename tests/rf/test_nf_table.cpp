// NF helper and console table tests.
#include <gtest/gtest.h>

#include <sstream>

#include "mathx/units.hpp"
#include "rf/nf.hpp"
#include "rf/table.hpp"

namespace rfmix::rf {
namespace {

TEST(NfHelpers, NoiselessNetworkHasZeroNf) {
  // Output noise exactly equal to amplified source noise -> F = 1 -> 0 dB.
  const double rs = 50.0, av = 10.0;
  const double sout = 4.0 * mathx::kBoltzmann * mathx::kT0 * rs * av * av;
  EXPECT_NEAR(nf_db_from_output_noise(sout, av, rs), 0.0, 1e-9);
}

TEST(NfHelpers, ThreeDbWhenNoiseDoubles) {
  const double rs = 50.0, av = 4.0;
  const double source = 4.0 * mathx::kBoltzmann * mathx::kT0 * rs * av * av;
  EXPECT_NEAR(nf_db_from_output_noise(2.0 * source, av, rs), 3.0103, 1e-3);
}

TEST(NfHelpers, InputReferredDensity) {
  EXPECT_NEAR(input_referred_density(1e-16, 10.0), 1e-9, 1e-15);
  EXPECT_THROW(input_referred_density(1e-16, 0.0), std::invalid_argument);
}

TEST(NfHelpers, SsbIsDsbPlus3dB) {
  EXPECT_NEAR(ssb_nf_from_dsb(7.6), 10.61, 0.01);
}

TEST(NfHelpers, InvalidInputsThrow) {
  EXPECT_THROW(nf_db_from_output_noise(-1.0, 1.0, 50.0), std::invalid_argument);
  EXPECT_THROW(nf_db_from_output_noise(1.0, 0.0, 50.0), std::invalid_argument);
  EXPECT_THROW(nf_db_from_output_noise(1.0, 1.0, -50.0), std::invalid_argument);
}

TEST(ConsoleTable, AlignsAndPrints) {
  ConsoleTable t({"Param", "Active", "Passive"});
  t.add_row({"Gain (dB)", ConsoleTable::num(29.2, 1), ConsoleTable::num(25.5, 1)});
  t.add_row({"NF (dB)", "7.6", "10.2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Gain (dB)"), std::string::npos);
  EXPECT_NE(s.find("29.2"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(ConsoleTable, CsvOutput) {
  ConsoleTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ConsoleTable, Validation) {
  EXPECT_THROW(ConsoleTable({}), std::invalid_argument);
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(ConsoleTable, NumFormatsNan) {
  EXPECT_EQ(ConsoleTable::num(std::nan(""), 2), "n/a");
  EXPECT_EQ(ConsoleTable::num(1.23456, 3), "1.235");
}

}  // namespace
}  // namespace rfmix::rf
