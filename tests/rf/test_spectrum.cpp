// Spectrum measurement tests with synthetic waveforms of known content.
#include "rf/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"

namespace rfmix::rf {
namespace {

using mathx::kTwoPi;

SampledWaveform make_tone(double amp, double freq, double fs, std::size_t n,
                          double phase = 0.0) {
  SampledWaveform w;
  w.sample_rate_hz = fs;
  w.samples.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    w.samples[i] = amp * std::cos(kTwoPi * freq * static_cast<double>(i) / fs + phase);
  return w;
}

TEST(Spectrum, ToneAmplitudeCoherent) {
  // 5 MHz tone, fs = 1 GHz, 2000 samples = 10 full periods: coherent.
  const auto w = make_tone(0.25, 5e6, 1e9, 2000);
  EXPECT_NEAR(tone_amplitude(w, 5e6), 0.25, 1e-9);
}

TEST(Spectrum, ToneAmplitudeRejectsOtherTones) {
  auto w = make_tone(0.25, 5e6, 1e9, 2000);
  const auto w2 = make_tone(1.0, 25e6, 1e9, 2000);
  for (std::size_t i = 0; i < w.samples.size(); ++i) w.samples[i] += w2.samples[i];
  EXPECT_NEAR(tone_amplitude(w, 5e6), 0.25, 1e-9);
  EXPECT_NEAR(tone_amplitude(w, 25e6), 1.0, 1e-9);
  EXPECT_NEAR(tone_amplitude(w, 15e6), 0.0, 1e-9);
}

TEST(Spectrum, TonePhaseRecovered) {
  const auto w = make_tone(1.0, 10e6, 1e9, 1000, 0.7);
  // cos(wt + 0.7) as measured with exp(-jwt) correlation: phase = +0.7.
  EXPECT_NEAR(std::arg(tone_phasor(w, 10e6)), 0.7, 1e-6);
}

TEST(Spectrum, TonePowerDbmAnchor) {
  // 316.2 mV peak across 50 ohm is 0 dBm.
  const auto w = make_tone(0.3162277, 5e6, 1e9, 2000);
  EXPECT_NEAR(tone_power_dbm(w, 5e6), 0.0, 1e-4);
}

TEST(Spectrum, DcComponentHandled) {
  auto w = make_tone(0.1, 5e6, 1e9, 2000);
  for (auto& s : w.samples) s += 0.6;
  EXPECT_NEAR(tone_amplitude(w, 0.0), 0.6, 1e-9);
  EXPECT_NEAR(tone_amplitude(w, 5e6), 0.1, 1e-9);
}

TEST(Spectrum, AmplitudeSpectrumFindsPeaks) {
  auto w = make_tone(0.5, 50e6, 1e9, 4096);
  const auto w2 = make_tone(0.05, 150e6, 1e9, 4096);
  for (std::size_t i = 0; i < w.samples.size(); ++i) w.samples[i] += w2.samples[i];
  const auto spec = amplitude_spectrum(w, mathx::WindowKind::kBlackmanHarris);
  const auto p1 = peak_in_band(spec, 30e6, 70e6);
  const auto p2 = peak_in_band(spec, 130e6, 170e6);
  EXPECT_NEAR(p1.freq_hz, 50e6, 1e9 / 4096.0);
  EXPECT_NEAR(p1.amplitude, 0.5, 0.02);
  EXPECT_NEAR(p2.amplitude, 0.05, 0.005);
}

TEST(Spectrum, PeakInEmptyBandThrows) {
  const auto w = make_tone(0.5, 50e6, 1e9, 1024);
  const auto spec = amplitude_spectrum(w, mathx::WindowKind::kHann);
  EXPECT_THROW(peak_in_band(spec, 2e9, 3e9), std::invalid_argument);
}

TEST(Spectrum, TrimKeepsIntegerPeriods) {
  // 1.5 MHz fundamental, fs 300 MHz -> 200 samples/period; 3000 samples.
  const auto w = make_tone(1.0, 1.5e6, 300e6, 3000);
  const auto t = trim_to_coherent_window(w, 0.30, 1.5e6);
  // After skipping 900 samples, 2100 remain; 10 periods = 2000 samples kept.
  EXPECT_EQ(t.samples.size(), 2000u);
  EXPECT_NEAR(tone_amplitude(t, 1.5e6), 1.0, 1e-9);
}

TEST(Spectrum, TrimValidation) {
  const auto w = make_tone(1.0, 1e6, 100e6, 1000);
  EXPECT_THROW(trim_to_coherent_window(w, 1.5, 1e6), std::invalid_argument);
  EXPECT_THROW(trim_to_coherent_window(w, 0.0, 1e3), std::invalid_argument);
}

TEST(Spectrum, EmptyWaveformThrows) {
  SampledWaveform w;
  w.sample_rate_hz = 1e9;
  EXPECT_THROW(tone_amplitude(w, 1e6), std::invalid_argument);
  EXPECT_THROW(amplitude_spectrum(w, mathx::WindowKind::kHann), std::invalid_argument);
}

TEST(Sfdr, CleanToneHasHighSfdr) {
  const auto w = make_tone(1.0, 50e6, 1e9, 4096);
  EXPECT_GT(sfdr_db(w, 50e6, 5e6), 80.0);
}

TEST(Sfdr, SpurLimitsSfdr) {
  auto w = make_tone(1.0, 50e6, 1e9, 4096);
  const auto spur = make_tone(0.01, 150e6, 1e9, 4096);  // -40 dBc spur
  for (std::size_t i = 0; i < w.samples.size(); ++i) w.samples[i] += spur.samples[i];
  EXPECT_NEAR(sfdr_db(w, 50e6, 5e6), 40.0, 1.5);
}

TEST(Sfdr, ExclusionWindowIgnoresSkirt) {
  auto w = make_tone(1.0, 50e6, 1e9, 4096);
  const auto close_spur = make_tone(0.1, 52e6, 1e9, 4096);
  for (std::size_t i = 0; i < w.samples.size(); ++i)
    w.samples[i] += close_spur.samples[i];
  // With the 5 MHz exclusion the 52 MHz tone is "part of the signal".
  EXPECT_GT(sfdr_db(w, 50e6, 5e6), 60.0);
  // With a 1 MHz exclusion it counts as a spur (-20 dBc).
  EXPECT_NEAR(sfdr_db(w, 50e6, 1e6), 20.0, 1.5);
}

}  // namespace
}  // namespace rfmix::rf
