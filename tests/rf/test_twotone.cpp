// Intercept-point extraction tests using an analytic memoryless
// polynomial nonlinearity, where IIP3/IIP2 have closed forms.
#include "rf/twotone.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"

namespace rfmix::rf {
namespace {

using mathx::dbm_from_sine_amplitude;
using mathx::sine_amplitude_from_dbm;

/// y = a1 x + a2 x^2 + a3 x^3 driven by two equal tones of amplitude A:
///   fundamental: a1 A (small-signal), IM3: (3/4) a3 A^3, IM2: a2 A^2.
/// Closed forms: AIIP3 = sqrt(4/3 * |a1/a3|), AIIP2 = |a1/a2|.
ToneLevels polynomial_two_tone(double pin_dbm, double a1, double a2, double a3) {
  const double a = sine_amplitude_from_dbm(pin_dbm);
  ToneLevels t;
  t.pin_dbm = pin_dbm;
  t.fund_dbm = dbm_from_sine_amplitude(a1 * a);
  t.im3_dbm = dbm_from_sine_amplitude(0.75 * std::abs(a3) * a * a * a);
  t.im2_dbm = dbm_from_sine_amplitude(std::abs(a2) * a * a);
  return t;
}

TEST(TwoTone, RecoversAnalyticIip3) {
  const double a1 = 10.0, a3 = -300.0;
  std::vector<double> pins;
  for (double p = -45.0; p <= -25.0; p += 2.0) pins.push_back(p);
  const InterceptResult r = sweep_and_extract(
      pins, [&](double pin) { return polynomial_two_tone(pin, a1, 0.0, a3); });
  const double aiip3 = std::sqrt(4.0 / 3.0 * std::abs(a1 / a3));
  const double iip3_expected = dbm_from_sine_amplitude(aiip3);
  EXPECT_NEAR(r.iip3_dbm, iip3_expected, 0.05);
  EXPECT_NEAR(r.gain_db, 20.0, 0.01);  // 20*log10(a1)
  EXPECT_NEAR(r.oip3_dbm, r.iip3_dbm + r.gain_db, 1e-9);
  EXPECT_FALSE(r.has_iip2);
  EXPECT_LT(r.fund_fit_rms, 0.01);
  EXPECT_LT(r.im3_fit_rms, 0.01);
}

TEST(TwoTone, RecoversAnalyticIip2) {
  const double a1 = 5.0, a2 = 0.5, a3 = -50.0;
  std::vector<double> pins;
  for (double p = -50.0; p <= -30.0; p += 2.5) pins.push_back(p);
  const InterceptResult r = sweep_and_extract(
      pins, [&](double pin) { return polynomial_two_tone(pin, a1, a2, a3); });
  ASSERT_TRUE(r.has_iip2);
  const double aiip2 = std::abs(a1 / a2);
  EXPECT_NEAR(r.iip2_dbm, dbm_from_sine_amplitude(aiip2), 0.05);
}

TEST(TwoTone, HigherIip3ForMoreLinearDevice) {
  std::vector<double> pins{-45, -40, -35, -30};
  auto iip3_of = [&](double a3) {
    return sweep_and_extract(pins, [&](double pin) {
             return polynomial_two_tone(pin, 10.0, 0.0, a3);
           }).iip3_dbm;
  };
  EXPECT_GT(iip3_of(-30.0), iip3_of(-300.0));
  EXPECT_NEAR(iip3_of(-30.0) - iip3_of(-300.0), 10.0, 0.1);  // 10x a3 = 10 dB
}

TEST(TwoTone, FloorExcludesGarbagePoints) {
  std::vector<ToneLevels> sweep;
  for (double p = -45.0; p <= -25.0; p += 5.0)
    sweep.push_back(polynomial_two_tone(p, 10.0, 0.0, -300.0));
  // Append a garbage point below the floor; it must not affect the result.
  ToneLevels junk;
  junk.pin_dbm = -20.0;
  junk.fund_dbm = -300.0;
  junk.im3_dbm = -300.0;
  sweep.push_back(junk);
  const InterceptResult with_junk = extract_intercepts(sweep, -250.0);
  sweep.pop_back();
  const InterceptResult without = extract_intercepts(sweep, -250.0);
  EXPECT_NEAR(with_junk.iip3_dbm, without.iip3_dbm, 1e-9);
}

TEST(TwoTone, TooFewPointsThrows) {
  std::vector<ToneLevels> sweep{polynomial_two_tone(-40.0, 10.0, 0.0, -300.0)};
  EXPECT_THROW(extract_intercepts(sweep), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::rf
