// 1 dB compression tests on an analytic compressive nonlinearity.
#include "rf/compression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"

namespace rfmix::rf {
namespace {

using mathx::dbm_from_sine_amplitude;
using mathx::sine_amplitude_from_dbm;

/// Compressive cubic: y = a1 x - a3 x^3. Gain compresses 1 dB when
/// (3/4)(a3/a1) A^2 = 1 - 10^(-1/20) => A1dB = sqrt(0.145 * 4/3 * a1/a3).
double cubic_pout(double pin_dbm, double a1, double a3) {
  const double a = sine_amplitude_from_dbm(pin_dbm);
  const double fund = a1 * a - 0.75 * a3 * a * a * a;
  return dbm_from_sine_amplitude(std::max(fund, 1e-30));
}

TEST(Compression, MatchesAnalyticP1db) {
  const double a1 = 10.0, a3 = 100.0;
  std::vector<double> pins;
  for (double p = -40.0; p <= 5.0; p += 0.5) pins.push_back(p);
  const CompressionResult r =
      find_p1db(pins, [&](double pin) { return cubic_pout(pin, a1, a3); });
  ASSERT_TRUE(r.found);
  const double delta = 1.0 - std::pow(10.0, -1.0 / 20.0);
  const double a_1db = std::sqrt(delta * 4.0 / 3.0 * a1 / a3);
  EXPECT_NEAR(r.p1db_in_dbm, dbm_from_sine_amplitude(a_1db), 0.1);
  EXPECT_NEAR(r.small_signal_gain_db, 20.0, 0.05);
  EXPECT_NEAR(r.p1db_out_dbm, r.p1db_in_dbm + 19.0, 0.1);
}

TEST(Compression, LinearDeviceNeverCompresses) {
  std::vector<double> pins{-30, -20, -10, 0, 10};
  const CompressionResult r = find_p1db(pins, [](double pin) { return pin + 6.0; });
  EXPECT_FALSE(r.found);
  EXPECT_NEAR(r.small_signal_gain_db, 6.0, 1e-9);
}

TEST(Compression, P1dbScalesWithLinearity) {
  std::vector<double> pins;
  for (double p = -40.0; p <= 10.0; p += 0.5) pins.push_back(p);
  auto p1 = find_p1db(pins, [&](double pin) { return cubic_pout(pin, 10.0, 50.0); });
  auto p2 = find_p1db(pins, [&](double pin) { return cubic_pout(pin, 10.0, 500.0); });
  ASSERT_TRUE(p1.found);
  ASSERT_TRUE(p2.found);
  EXPECT_NEAR(p1.p1db_in_dbm - p2.p1db_in_dbm, 10.0, 0.2);
}

TEST(Compression, SweepTooShortThrows) {
  EXPECT_THROW(find_p1db({-10.0, -5.0}, [](double p) { return p; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::rf
