// Table I baseline-data tests.
#include "core/baselines.hpp"

#include <gtest/gtest.h>

namespace rfmix::core {
namespace {

TEST(Baselines, AllEightReferencesPresent) {
  const auto rows = table1_baselines();
  ASSERT_EQ(rows.size(), 8u);
  const std::vector<std::string> expected{"[2]", "[3]", "[5]", "[6]",
                                          "[4]", "[10]", "[11]", "[12]"};
  for (std::size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i].label, expected[i]);
}

TEST(Baselines, PrintedFieldsNonEmpty) {
  for (const auto& r : table1_baselines()) {
    EXPECT_FALSE(r.gain_db.empty()) << r.label;
    EXPECT_FALSE(r.power_mw.empty()) << r.label;
    EXPECT_FALSE(r.technology.empty()) << r.label;
    EXPECT_FALSE(r.supply_v.empty()) << r.label;
  }
}

TEST(Baselines, ThisWorkGainBeatsMostReferences) {
  // The paper's headline claim: 29.2 dB active gain exceeds every
  // comparison design except [4] (35 dB).
  int beaten = 0;
  for (const auto& r : table1_baselines())
    if (29.2 > r.gain_mid_db) ++beaten;
  EXPECT_GE(beaten, 7);
}

TEST(Baselines, SixtyFiveNmReferencesRunAt1V2) {
  for (const auto& r : table1_baselines()) {
    if (r.technology == "65nm") EXPECT_EQ(r.supply_v, "1.2") << r.label;
  }
}

}  // namespace
}  // namespace rfmix::core
