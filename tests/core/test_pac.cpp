// PSS+PAC engine tests: the zero-hand-modeling periodic AC of the
// transistor mixer must agree with the transient-FFT measurement on the
// same circuit — the strongest cross-engine validation in the repo.
#include "core/pac_transistor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/measurements.hpp"

namespace rfmix::core {
namespace {

class PacVsTransient : public ::testing::TestWithParam<MixerMode> {};

TEST_P(PacVsTransient, ConversionGainsAgree) {
  MixerConfig cfg;
  cfg.mode = GetParam();

  const PacResult pac = pac_conversion_gain(cfg, 5e6);
  EXPECT_TRUE(pac.pss_converged);

  MixerConfig tcfg = cfg;
  tcfg.rf_series_r = 50.0;  // same circuit the PAC harness analyzed
  auto mixer = build_transistor_mixer(tcfg);
  TransientMeasureOptions topt;
  topt.grid_hz = 5e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 20;
  const double g_tran = measure_conversion_gain_db(*mixer, 5e6, 2e-3, topt);

  EXPECT_NEAR(pac.conversion_gain_db, g_tran, 1.0) << frontend::mode_name(GetParam());
}

TEST_P(PacVsTransient, ImageGainNearlyEqualAtLowIf) {
  // A single (non-quadrature) path converts the image with nearly the same
  // gain as the wanted channel at low IF — the reason the front end needs
  // the I/Q extension of image_reject.hpp.
  MixerConfig cfg;
  cfg.mode = GetParam();
  const PacResult pac = pac_conversion_gain(cfg, 5e6);
  EXPECT_NEAR(pac.image_gain_db, pac.conversion_gain_db, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Modes, PacVsTransient,
                         ::testing::Values(MixerMode::kActive, MixerMode::kPassive));

TEST(Pac, PssSettlesFasterInPassiveMode) {
  // The passive path has no slow bias nodes (the TIA virtual grounds are
  // stiff), so its orbit settles in a handful of periods, whereas the
  // active mode's Cc output poles need tens of LO periods.
  MixerConfig a;
  a.mode = MixerMode::kActive;
  MixerConfig p;
  p.mode = MixerMode::kPassive;
  const PacResult ra = pac_conversion_gain(a, 5e6);
  const PacResult rp = pac_conversion_gain(p, 5e6);
  EXPECT_LT(rp.pss_periods, ra.pss_periods);
}

TEST(Pac, GainStableAcrossHarmonicCount) {
  // Truncation convergence: K = 4 and K = 8 must agree closely.
  MixerConfig cfg;
  cfg.mode = MixerMode::kPassive;
  PacOptions k4;
  k4.harmonics = 4;
  PacOptions k8;
  k8.harmonics = 8;
  const double g4 = pac_conversion_gain(cfg, 5e6, k4).conversion_gain_db;
  const double g8 = pac_conversion_gain(cfg, 5e6, k8).conversion_gain_db;
  EXPECT_NEAR(g4, g8, 0.3);
}

TEST(Pnoise, OrderingAndPlausibility) {
  MixerConfig a;
  a.mode = MixerMode::kActive;
  MixerConfig p;
  p.mode = MixerMode::kPassive;
  const PnoiseResult ra = pac_nf_dsb(a, 5e6);
  const PnoiseResult rp = pac_nf_dsb(p, 5e6);
  EXPECT_TRUE(ra.pss_converged);
  EXPECT_TRUE(rp.pss_converged);
  // The transistor netlist's macromodeled TIA/bias are noiseless, so the
  // absolute NF reads low; the paper's mode ordering must still hold and
  // the values must be physical (> 0 dB, < 15 dB).
  EXPECT_LT(ra.nf_dsb_db, rp.nf_dsb_db);
  EXPECT_GT(ra.nf_dsb_db, 0.5);
  EXPECT_LT(rp.nf_dsb_db, 15.0);
  EXPECT_GT(ra.output_noise_v2_hz, 0.0);
}

TEST(Pnoise, NoiseRisesAtLowIfFromFlicker) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  const PnoiseResult lo = pac_nf_dsb(cfg, 30e3);
  const PnoiseResult hi = pac_nf_dsb(cfg, 5e6);
  EXPECT_GT(lo.nf_dsb_db, hi.nf_dsb_db + 1.0);  // 1/f corner visible
}

}  // namespace
}  // namespace rfmix::core
