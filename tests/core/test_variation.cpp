// Device-variation integration tests: mismatched and cornered mixers must
// still converge and behave plausibly.
#include <gtest/gtest.h>

#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "mathx/rng.hpp"
#include "spice/op.hpp"

namespace rfmix::core {
namespace {

TEST(Variation, MismatchedMixerConverges) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    mathx::Rng rng(seed);
    DeviceVariation var;
    var.mismatch_rng = &rng;
    auto mixer = build_transistor_mixer(cfg, var);
    EXPECT_NO_THROW(spice::dc_operating_point(mixer->circuit)) << "seed " << seed;
  }
}

TEST(Variation, MismatchBreaksPerfectBalance) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  // Matched: IF nodes identical. Mismatched: a systematic offset appears.
  auto matched = build_transistor_mixer(cfg);
  const spice::Solution op0 = spice::dc_operating_point(matched->circuit);
  EXPECT_NEAR(op0.v(matched->if_p), op0.v(matched->if_m), 1e-6);

  mathx::Rng rng(7);
  DeviceVariation var;
  var.mismatch_rng = &rng;
  auto mm = build_transistor_mixer(cfg, var);
  const spice::Solution op1 = spice::dc_operating_point(mm->circuit);
  EXPECT_GT(std::abs(op1.v(mm->if_p) - op1.v(mm->if_m)), 1e-5);
}

TEST(Variation, CornersShiftSupplyCurrent) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  auto idd_at = [&](spice::tech65::Corner corner) {
    DeviceVariation var;
    var.corner = corner;
    auto mixer = build_transistor_mixer(cfg, var);
    const spice::Solution op = spice::dc_operating_point(mixer->circuit);
    return -mixer->vdd->current(op);
  };
  const double i_tt = idd_at(spice::tech65::Corner::kTT);
  const double i_ss = idd_at(spice::tech65::Corner::kSS);
  const double i_ff = idd_at(spice::tech65::Corner::kFF);
  // The tail currents are fixed sources, so the core current barely moves,
  // but the TG load leg (device-limited) must order FF >= TT >= SS.
  EXPECT_GE(i_ff, i_tt - 1e-5);
  EXPECT_GE(i_tt, i_ss - 1e-5);
}

TEST(Variation, AllCornersConvergeInBothModes) {
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    for (const auto corner :
         {spice::tech65::Corner::kTT, spice::tech65::Corner::kSS,
          spice::tech65::Corner::kFF, spice::tech65::Corner::kSF,
          spice::tech65::Corner::kFS}) {
      DeviceVariation var;
      var.corner = corner;
      auto mixer = build_transistor_mixer(cfg, var);
      EXPECT_NO_THROW(spice::dc_operating_point(mixer->circuit))
          << frontend::mode_name(mode) << " " << spice::tech65::corner_name(corner);
    }
  }
}

}  // namespace
}  // namespace rfmix::core
