// LPTV-model tests: the conversion-matrix engine applied to the paper's
// topology must land on the published numbers (within the tolerance one
// expects of independent re-implementation) and reproduce every shape
// claim: mode ordering, band edges, flicker corners, TIA physics.
#include "core/lptv_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lptv/lptv.hpp"
#include "mathx/interp.hpp"
#include "mathx/solver_config.hpp"
#include "mathx/units.hpp"
#include "obs/obs.hpp"

namespace rfmix::core {
namespace {

MixerConfig config_for(MixerMode mode) {
  MixerConfig cfg;
  cfg.mode = mode;
  return cfg;
}

TEST(LptvMixer, ActiveGainNearPaper) {
  EXPECT_NEAR(lptv_conversion_gain_db(config_for(MixerMode::kActive)), 29.2, 1.0);
}

TEST(LptvMixer, PassiveGainNearPaper) {
  EXPECT_NEAR(lptv_conversion_gain_db(config_for(MixerMode::kPassive)), 25.5, 1.0);
}

TEST(LptvMixer, ActiveNfNearPaper) {
  EXPECT_NEAR(lptv_nf_dsb(config_for(MixerMode::kActive), 5e6).nf_dsb_db, 7.6, 1.0);
}

TEST(LptvMixer, PassiveNfNearPaper) {
  EXPECT_NEAR(lptv_nf_dsb(config_for(MixerMode::kPassive), 5e6).nf_dsb_db, 10.2, 1.0);
}

TEST(LptvMixer, ModeOrderingMatchesFig1Tradeoff) {
  const double ga = lptv_conversion_gain_db(config_for(MixerMode::kActive));
  const double gp = lptv_conversion_gain_db(config_for(MixerMode::kPassive));
  EXPECT_GT(ga, gp);          // active has more gain...
  EXPECT_NEAR(ga - gp, 3.7, 1.5);  // ...by roughly Table I's 3.7 dB

  const double nfa = lptv_nf_dsb(config_for(MixerMode::kActive), 5e6).nf_dsb_db;
  const double nfp = lptv_nf_dsb(config_for(MixerMode::kPassive), 5e6).nf_dsb_db;
  EXPECT_LT(nfa, nfp);        // ...and lower noise figure
  EXPECT_NEAR(nfp - nfa, 2.6, 1.2);
}

TEST(LptvMixer, ActiveBandEdges) {
  const MixerConfig cfg = config_for(MixerMode::kActive);
  const double peak = lptv_conversion_gain_at_rf_db(cfg, 2.45e9);
  // -3 dB (rel. 2.45 GHz) at ~1 and ~5.5 GHz, within half an octave.
  EXPECT_NEAR(lptv_conversion_gain_at_rf_db(cfg, 1.0e9), peak - 3.0, 1.2);
  EXPECT_NEAR(lptv_conversion_gain_at_rf_db(cfg, 5.5e9), peak - 3.0, 1.2);
  // Well outside the band the response keeps falling.
  EXPECT_LT(lptv_conversion_gain_at_rf_db(cfg, 0.4e9),
            lptv_conversion_gain_at_rf_db(cfg, 1.0e9) - 2.0);
}

TEST(LptvMixer, PassiveBandExtendsLower) {
  const MixerConfig a = config_for(MixerMode::kActive);
  const MixerConfig p = config_for(MixerMode::kPassive);
  // Paper: passive band reaches 0.5 GHz where active is already -3 dB at 1.
  const double rel_a =
      lptv_conversion_gain_at_rf_db(a, 0.5e9) - lptv_conversion_gain_at_rf_db(a, 2.45e9);
  const double rel_p =
      lptv_conversion_gain_at_rf_db(p, 0.5e9) - lptv_conversion_gain_at_rf_db(p, 2.45e9);
  EXPECT_LT(rel_a, rel_p - 2.0);
  EXPECT_NEAR(rel_p, -3.0, 1.2);
}

TEST(LptvMixer, PassiveFlickerCornerBelow100kHz) {
  const MixerConfig cfg = config_for(MixerMode::kPassive);
  const double floor_db = lptv_nf_dsb(cfg, 10e6).nf_dsb_db;
  EXPECT_LT(lptv_nf_dsb(cfg, 100e3).nf_dsb_db, floor_db + 3.0);
  EXPECT_GT(lptv_nf_dsb(cfg, 8e3).nf_dsb_db, floor_db + 3.0);
}

TEST(LptvMixer, ActiveFlickerCornerHigherThanPassive) {
  const MixerConfig a = config_for(MixerMode::kActive);
  const MixerConfig p = config_for(MixerMode::kPassive);
  const double rise_a =
      lptv_nf_dsb(a, 100e3).nf_dsb_db - lptv_nf_dsb(a, 10e6).nf_dsb_db;
  const double rise_p =
      lptv_nf_dsb(p, 100e3).nf_dsb_db - lptv_nf_dsb(p, 10e6).nf_dsb_db;
  EXPECT_GT(rise_a, rise_p + 1.0);
}

TEST(LptvMixer, IfBandwidthFromTiaAndCc) {
  // Gain vs IF drops ~3 dB around the 10-12 MHz pole in both modes.
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    const MixerConfig cfg = config_for(mode);
    const double g_low = lptv_conversion_gain_db(cfg, 1e6);
    const double g_pole = lptv_conversion_gain_db(cfg, 11e6);
    EXPECT_NEAR(g_low - g_pole, 3.0, 1.3) << frontend::mode_name(mode);
  }
}

TEST(LptvMixer, PassiveGainFollowsPaperFormula) {
  // Eq. (3): VCG = (2/pi) * gm * ZF, before input-network losses. Measured
  // gain must sit within ~2 dB of the formula (losses) and never above it.
  const MixerConfig cfg = config_for(MixerMode::kPassive);
  const double formula_db =
      20.0 * std::log10(2.0 / mathx::kPi * cfg.tca_gm * cfg.tia_rf);
  const double measured = lptv_conversion_gain_db(cfg, 1e6);
  EXPECT_LT(measured, formula_db + 0.1);
  EXPECT_GT(measured, formula_db - 5.0);
}

TEST(LptvMixer, GainScalesWithTgResistance) {
  // The paper's active-mode tuning knob: gain follows the TG load.
  MixerConfig cfg = config_for(MixerMode::kActive);
  const double g1 = lptv_conversion_gain_db(cfg, 5e6);
  cfg.tg_resistance *= 2.0;
  cfg.cc_load /= 2.0;  // keep the IF pole fixed
  const double g2 = lptv_conversion_gain_db(cfg, 5e6);
  EXPECT_NEAR(g2 - g1, 6.0, 0.8);
}

TEST(LptvMixer, GainScalesWithTiaRf) {
  // Eq. (4) discussion: "gain of the TIA can be tuned by changing RF".
  MixerConfig cfg = config_for(MixerMode::kPassive);
  const double g1 = lptv_conversion_gain_db(cfg, 1e6);
  cfg.tia_rf *= 2.0;
  cfg.tia_cf /= 2.0;
  const double g2 = lptv_conversion_gain_db(cfg, 1e6);
  EXPECT_NEAR(g2 - g1, 6.0, 1.0);
}

TEST(LptvMixer, NoiseBreakdownCoversExpectedSources) {
  const auto model = build_lptv_mixer(config_for(MixerMode::kPassive));
  lptv::ConversionAnalysis an(model->circuit, {2.4e9, 8});
  const auto noise = an.output_noise(5e6, model->out_p, model->out_m);
  auto has = [&](const std::string& s) {
    for (const auto& c : noise.contributions)
      if (c.label.find(s) != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(has("source"));
  EXPECT_TRUE(has("tca.m1"));
  EXPECT_TRUE(has("quad.m3"));
  EXPECT_TRUE(has("tia.ota"));
  EXPECT_TRUE(has("sw12.rdeg"));
  for (const auto& c : noise.contributions) EXPECT_GE(c.output_psd_v2_hz, 0.0);
}

TEST(LptvMixer, GainConvergesWithHarmonicCount) {
  // Truncation study on the element engine: the K = 6 -> 8 -> 12 ladder
  // must contract (each refinement changes the answer less).
  const MixerConfig cfg = config_for(MixerMode::kPassive);
  auto gain_at = [&](int k) {
    const auto model = build_lptv_mixer(cfg);
    lptv::ConversionAnalysis an(model->circuit, {cfg.f_lo_hz, k});
    return 20.0 * std::log10(std::abs(an.conversion_transimpedance(
               5e6, 0, model->in, 1, model->out_p, model->out_m, 0)));
  };
  const double g6 = gain_at(6), g8 = gain_at(8), g12 = gain_at(12);
  EXPECT_LT(std::abs(g12 - g8), std::abs(g8 - g6) + 0.02);
  EXPECT_NEAR(g8, g12, 0.25);
}

TEST(LptvMixer, RfSweepRequiresRfAboveIf) {
  EXPECT_THROW(lptv_conversion_gain_at_rf_db(config_for(MixerMode::kActive), 1e6, 5e6),
               std::invalid_argument);
}

#if RFMIX_OBS_ENABLED

TEST(LptvMixer, NfPointCostsExactlyTwoFactorizations) {
  // Regression for the Factored caching contract: one NF point = one
  // forward LU (shared by both sideband injections) plus one adjoint LU
  // (the noise solve) — never one per solve, and the analyze/refactor
  // migration must not change this accounting.
  for (const auto m : {mathx::SolverMode::kClassic, mathx::SolverMode::kReuse}) {
    mathx::ScopedSolverMode scoped(m);
    const std::uint64_t before = obs::counter_value("lptv.lu.factorizations");
    (void)lptv_nf_dsb(config_for(MixerMode::kActive), 5e6);
    EXPECT_EQ(obs::counter_value("lptv.lu.factorizations") - before, 2u)
        << (m == mathx::SolverMode::kClassic ? "classic" : "reuse");
  }
}

TEST(LptvMixer, BaseFrequencySweepAnalyzesOncePerDirection) {
  // One ConversionAnalysis factored at several base frequencies: in reuse
  // mode only the first point pays a forward analysis; the rest refactor
  // against the shared symbolic (the block-system pattern is fixed by the
  // circuit and K, not by f_base).
  mathx::ScopedSolverMode scoped(mathx::SolverMode::kReuse);
  const auto model = build_lptv_mixer(config_for(MixerMode::kActive));
  lptv::ConversionAnalysis an(model->circuit, {config_for(MixerMode::kActive).f_lo_hz, 6});
  const std::uint64_t fact0 = obs::counter_value("lptv.lu.factorizations");
  const std::uint64_t analyze0 = obs::counter_value("lptv.lu.analyze");
  const std::uint64_t refactor0 = obs::counter_value("lptv.lu.refactor");
  const std::uint64_t fallback0 = obs::counter_value("lptv.lu.fallback");
  const std::vector<double> f_ifs = {1e6, 2e6, 5e6, 10e6};
  for (const double f : f_ifs)
    (void)an.conversion_transimpedance(f, 0, model->in, +1, model->out_p,
                                       model->out_m, 0);
  EXPECT_EQ(obs::counter_value("lptv.lu.factorizations") - fact0, f_ifs.size());
  const std::uint64_t fallbacks = obs::counter_value("lptv.lu.fallback") - fallback0;
  EXPECT_EQ(obs::counter_value("lptv.lu.analyze") - analyze0, 1u + fallbacks);
  EXPECT_EQ(obs::counter_value("lptv.lu.refactor") - refactor0,
            f_ifs.size() - 1u - fallbacks);
}

#endif  // RFMIX_OBS_ENABLED

TEST(LptvMixer, SolverModesAgreeBitExactlyOnConversionGain) {
  // The LPTV engine's solves must be byte-identical across solver modes —
  // same contract the spice engines pin in test_solver_parity.
  auto gain = [](mathx::SolverMode m) {
    mathx::ScopedSolverMode scoped(m);
    const auto model = build_lptv_mixer(config_for(MixerMode::kPassive));
    lptv::ConversionAnalysis an(model->circuit,
                                {config_for(MixerMode::kPassive).f_lo_hz, 8});
    std::vector<double> bits;
    for (const double f : {1e6, 5e6}) {
      const lptv::Complex h = an.conversion_transimpedance(
          f, 0, model->in, +1, model->out_p, model->out_m, 0);
      bits.push_back(h.real());
      bits.push_back(h.imag());
    }
    return bits;
  };
  EXPECT_EQ(gain(mathx::SolverMode::kClassic), gain(mathx::SolverMode::kReuse));
}

}  // namespace
}  // namespace rfmix::core
