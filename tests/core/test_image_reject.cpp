// I/Q image-rejection tests: the LPTV quadrature combination must match
// the closed-form IRR bound and behave physically at the limits.
#include "core/image_reject.hpp"

#include <gtest/gtest.h>

namespace rfmix::core {
namespace {

MixerConfig cfg_for(MixerMode mode) {
  MixerConfig cfg;
  cfg.mode = mode;
  return cfg;
}

TEST(ImageReject, IdealQuadratureRejectsDeeply) {
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    const auto r = lptv_image_rejection(cfg_for(mode));
    EXPECT_GT(r.irr_db, 80.0) << frontend::mode_name(mode);
  }
}

TEST(ImageReject, WantedGainMatchesSinglePath) {
  // The per-path-equivalent wanted gain must equal the FIG8 conversion gain.
  const auto r = lptv_image_rejection(cfg_for(MixerMode::kActive));
  EXPECT_NEAR(r.wanted_gain_db, 29.1, 0.6);
}

struct IrrCase {
  double phase_deg;
  double gain_db;
};

class IrrMatchesAnalytic : public ::testing::TestWithParam<IrrCase> {};

TEST_P(IrrMatchesAnalytic, WithinHalfDb) {
  const auto c = GetParam();
  const auto r =
      lptv_image_rejection(cfg_for(MixerMode::kPassive), 5e6, c.phase_deg, c.gain_db);
  EXPECT_NEAR(r.irr_db, analytic_irr_db(c.gain_db, c.phase_deg), 0.5)
      << "phase " << c.phase_deg << " gain " << c.gain_db;
}

INSTANTIATE_TEST_SUITE_P(ErrorGrid, IrrMatchesAnalytic,
                         ::testing::Values(IrrCase{0.5, 0.0}, IrrCase{1.0, 0.0},
                                           IrrCase{3.0, 0.0}, IrrCase{0.0, 0.2},
                                           IrrCase{0.0, 0.5}, IrrCase{2.0, 0.3}));

TEST(ImageReject, IrrDegradesMonotonicallyWithPhaseError) {
  const MixerConfig cfg = cfg_for(MixerMode::kActive);
  double prev = 1e9;
  for (const double ph : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double irr = lptv_image_rejection(cfg, 5e6, ph, 0.0).irr_db;
    EXPECT_LT(irr, prev) << "phase " << ph;
    prev = irr;
  }
}

TEST(AnalyticIrr, KnownAnchors) {
  // 1 degree phase error alone: ~41.2 dB. 0.5 dB gain error alone: ~30.8 dB.
  EXPECT_NEAR(analytic_irr_db(0.0, 1.0), 41.2, 0.1);
  EXPECT_NEAR(analytic_irr_db(0.5, 0.0), 30.8, 0.1);
  // Combined errors are worse than either alone.
  EXPECT_LT(analytic_irr_db(0.5, 1.0), analytic_irr_db(0.0, 1.0));
  EXPECT_LT(analytic_irr_db(0.5, 1.0), analytic_irr_db(0.5, 0.0));
}

}  // namespace
}  // namespace rfmix::core
