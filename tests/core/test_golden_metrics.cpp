// Golden-metrics regression suite: every headline Table I number, pinned
// with an explicit tolerance, through the same measurement paths the
// benches use. The LPTV engine carries gain and NF (physics-derived, so the
// paper tolerance is ±1 dB); the calibrated behavioral engine carries the
// large-signal metrics through the rf:: extraction machinery (calibrated,
// so the tolerances are tight). A refactor that silently shifts any
// headline metric fails here, not in a bench someone has to eyeball.
#include <gtest/gtest.h>

#include <vector>

#include "core/behavioral.hpp"
#include "core/lptv_model.hpp"
#include "core/mixer_config.hpp"
#include "mathx/solver_config.hpp"
#include "rf/compression.hpp"
#include "rf/twotone.hpp"

namespace rfmix::core {
namespace {

MixerConfig config_for(MixerMode mode) {
  MixerConfig cfg;
  cfg.mode = mode;
  return cfg;
}

/// Run `metric` under both solver modes; the pin must hold in each, and —
/// stronger — the two modes must agree bit-for-bit (docs/solver.md).
void expect_pin_in_both_modes(double expected, double tol,
                              double (*metric)(MixerMode), MixerMode mode) {
  double got[2];
  int i = 0;
  for (const auto m : {mathx::SolverMode::kClassic, mathx::SolverMode::kReuse}) {
    mathx::ScopedSolverMode scoped(m);
    got[i] = metric(mode);
    EXPECT_NEAR(got[i], expected, tol)
        << (m == mathx::SolverMode::kClassic ? "classic" : "reuse");
    ++i;
  }
  EXPECT_EQ(got[0], got[1]) << "solver modes disagree on a headline metric";
}

std::vector<double> lin_pins(double lo, double hi, int n) {
  std::vector<double> pins;
  for (int i = 0; i < n; ++i)
    pins.push_back(lo + (hi - lo) * static_cast<double>(i) / (n - 1));
  return pins;
}

// ------------------------------------------------- conversion gain (LPTV)

// Table I: 29.2 dB active, 25.5 dB passive, at 2.45 GHz RF / 5 MHz IF.
// ±1.0 dB: the engine derives these from element values, not curve fits.
// Each pin runs under both solver modes: the LPTV block solves go through
// the analyze-once/refactor machinery, and a headline metric is exactly
// where a silent mode divergence would hurt most.
double gain_metric(MixerMode m) {
  return lptv_conversion_gain_db(config_for(m), 5e6);
}

TEST(GoldenMetrics, ActiveConversionGain) {
  expect_pin_in_both_modes(29.2, 1.0, &gain_metric, MixerMode::kActive);
}

TEST(GoldenMetrics, PassiveConversionGain) {
  expect_pin_in_both_modes(25.5, 1.0, &gain_metric, MixerMode::kPassive);
}

// ------------------------------------------------------ NF at 5 MHz (LPTV)

// Table I: 7.6 dB active, 10.2 dB passive (DSB, 5 MHz IF). ±1.0 dB.
double nf_metric(MixerMode m) { return lptv_nf_dsb(config_for(m), 5e6).nf_dsb_db; }

TEST(GoldenMetrics, ActiveNfAt5Mhz) {
  expect_pin_in_both_modes(7.6, 1.0, &nf_metric, MixerMode::kActive);
}

TEST(GoldenMetrics, PassiveNfAt5Mhz) {
  expect_pin_in_both_modes(10.2, 1.0, &nf_metric, MixerMode::kPassive);
}

// The batch sweep APIs must agree exactly with the pointwise calls they
// parallelize — this is what lets the Fig. 8/9 benches switch over.
TEST(GoldenMetrics, BatchSweepsMatchPointwise) {
  const MixerConfig cfg = config_for(MixerMode::kActive);
  const std::vector<double> rfs = {1.5e9, 2.45e9, 4.0e9};
  const std::vector<double> gains = lptv_gain_vs_rf_sweep_db(cfg, rfs);
  ASSERT_EQ(gains.size(), rfs.size());
  for (std::size_t i = 0; i < rfs.size(); ++i)
    EXPECT_EQ(gains[i], lptv_conversion_gain_at_rf_db(cfg, rfs[i]));

  const std::vector<double> ifs = {1e6, 5e6};
  const std::vector<LptvNfPoint> nf = lptv_nf_sweep(cfg, ifs);
  ASSERT_EQ(nf.size(), ifs.size());
  for (std::size_t i = 0; i < ifs.size(); ++i) {
    EXPECT_EQ(nf[i].nf_dsb_db, lptv_nf_dsb(cfg, ifs[i]).nf_dsb_db);
    EXPECT_EQ(nf[i].gain_db, lptv_nf_dsb(cfg, ifs[i]).gain_db);
  }
}

// ------------------------------------------- IIP3 (behavioral + rf:: fit)

// Table I: -11.9 dBm active, +6.57 dBm passive. The behavioral polynomial
// is calibrated to these, and the rf:: two-tone fit must recover them
// through the full measurement path; ±0.3 dB covers fit residuals only.
double measured_iip3_dbm(MixerMode mode) {
  const BehavioralMixer mixer(config_for(mode));
  const auto sweep = lin_pins(-70.0, -45.0, 9);
  return rf::sweep_and_extract(sweep, [&](double pin) { return mixer.two_tone(pin); })
      .iip3_dbm;
}

TEST(GoldenMetrics, ActiveIip3) {
  expect_pin_in_both_modes(-11.9, 0.3, &measured_iip3_dbm, MixerMode::kActive);
}

TEST(GoldenMetrics, PassiveIip3) {
  expect_pin_in_both_modes(6.57, 0.3, &measured_iip3_dbm, MixerMode::kPassive);
}

// Section IV: "IIP2 > 65 dBm for both cases".
TEST(GoldenMetrics, Iip2AbovePaperFloor) {
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    const BehavioralMixer mixer(config_for(mode));
    const auto sweep = lin_pins(-70.0, -45.0, 9);
    const rf::InterceptResult fit =
        rf::sweep_and_extract(sweep, [&](double pin) { return mixer.two_tone(pin); });
    ASSERT_TRUE(fit.has_iip2);
    EXPECT_GT(fit.iip2_dbm, 65.0);
  }
}

// ------------------------------------------- P1dB (behavioral + rf:: fit)

// Section IV quotes the 1 dB compression points; the compression sweep must
// land on the spec anchors within the interpolation error of find_p1db.
double measured_p1db_dbm(MixerMode mode) {
  const BehavioralMixer mixer(config_for(mode));
  const auto sweep = lin_pins(-60.0, -5.0, 111);
  const rf::CompressionResult res = rf::find_p1db(
      sweep, [&](double pin) { return mixer.single_tone_pout_dbm(pin); });
  EXPECT_TRUE(res.found);
  return res.p1db_in_dbm;
}

TEST(GoldenMetrics, ActiveP1db) {
  EXPECT_NEAR(measured_p1db_dbm(MixerMode::kActive),
              paper_active_spec().p1db_dbm, 0.5);
}

TEST(GoldenMetrics, PassiveP1db) {
  EXPECT_NEAR(measured_p1db_dbm(MixerMode::kPassive),
              paper_passive_spec().p1db_dbm, 0.5);
}

// The paper's mode asymmetry in large-signal handling: passive mode trades
// gain for markedly better linearity in both metrics.
TEST(GoldenMetrics, PassiveModeIsMoreLinear) {
  EXPECT_GT(measured_iip3_dbm(MixerMode::kPassive),
            measured_iip3_dbm(MixerMode::kActive) + 15.0);
  EXPECT_GT(measured_p1db_dbm(MixerMode::kPassive),
            measured_p1db_dbm(MixerMode::kActive) + 8.0);
}

}  // namespace
}  // namespace rfmix::core
