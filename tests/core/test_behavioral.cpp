// Behavioral-model tests: the calibrated engine must reproduce every
// Table I / section III anchor through the same measurement pipeline the
// benches use (two-tone extraction, compression sweep), not just echo its
// own spec fields.
#include "core/behavioral.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rf/compression.hpp"
#include "rf/twotone.hpp"

namespace rfmix::core {
namespace {

BehavioralMixer make(MixerMode mode) {
  MixerConfig cfg;
  cfg.mode = mode;
  return BehavioralMixer(cfg);
}

TEST(Behavioral, MidbandGainAnchors) {
  EXPECT_NEAR(make(MixerMode::kActive).conversion_gain_db(2.45e9), 29.2, 1e-9);
  EXPECT_NEAR(make(MixerMode::kPassive).conversion_gain_db(2.45e9), 25.5, 1e-9);
}

TEST(Behavioral, NfAnchorsAt5Mhz) {
  EXPECT_NEAR(make(MixerMode::kActive).nf_dsb_db(5e6), 7.6, 1e-9);
  EXPECT_NEAR(make(MixerMode::kPassive).nf_dsb_db(5e6), 10.2, 1e-9);
}

TEST(Behavioral, PowerAnchors) {
  EXPECT_NEAR(make(MixerMode::kActive).power_mw(), 9.36, 0.01);
  EXPECT_NEAR(make(MixerMode::kPassive).power_mw(), 9.24, 0.01);
}

TEST(Behavioral, BandEdgesAreMinus3dB) {
  const BehavioralMixer active = make(MixerMode::kActive);
  const double peak_a = active.conversion_gain_db(2.45e9);
  EXPECT_NEAR(active.conversion_gain_db(1.0e9), peak_a - 3.0, 0.6);
  EXPECT_NEAR(active.conversion_gain_db(5.5e9), peak_a - 3.0, 0.6);

  const BehavioralMixer passive = make(MixerMode::kPassive);
  const double peak_p = passive.conversion_gain_db(2.45e9);
  EXPECT_NEAR(passive.conversion_gain_db(0.5e9), peak_p - 3.0, 0.6);
  EXPECT_NEAR(passive.conversion_gain_db(5.1e9), peak_p - 3.0, 0.6);
}

TEST(Behavioral, ActiveBandIsNarrowerAtLowEnd) {
  // Paper: active band starts at 1 GHz, passive already works at 0.5 GHz.
  const double a = make(MixerMode::kActive).conversion_gain_db(0.6e9) -
                   make(MixerMode::kActive).conversion_gain_db(2.45e9);
  const double p = make(MixerMode::kPassive).conversion_gain_db(0.6e9) -
                   make(MixerMode::kPassive).conversion_gain_db(2.45e9);
  EXPECT_LT(a, p);
}

TEST(Behavioral, IfRollOffSinglePole) {
  const BehavioralMixer m = make(MixerMode::kActive);
  const double g5 = m.gain_vs_if_db(5e6);
  const double g50 = m.gain_vs_if_db(50e6);
  // A decade above the 12 MHz pole: ~ -12.7 dB vs 5 MHz value.
  EXPECT_LT(g50, g5 - 9.0);
  EXPECT_GT(g50, g5 - 16.0);
}

TEST(Behavioral, PassiveFlickerCornerBelow100kHz) {
  const BehavioralMixer m = make(MixerMode::kPassive);
  const double floor_db = m.nf_dsb_db(10e6);
  // +3 dB point of the NF curve must be below 100 kHz (section III).
  EXPECT_LT(m.nf_dsb_db(100e3), floor_db + 3.0);
  EXPECT_GT(m.nf_dsb_db(10e3), floor_db + 3.0);
}

TEST(Behavioral, ActiveFlickerWorseThanPassiveAtLowIf) {
  // Active Gilbert commutation leaves more 1/f at low IF: its corner is
  // around 1 MHz vs < 100 kHz for the passive mode.
  const double rise_active = make(MixerMode::kActive).nf_dsb_db(50e3) -
                             make(MixerMode::kActive).nf_dsb_db(10e6);
  const double rise_passive = make(MixerMode::kPassive).nf_dsb_db(50e3) -
                              make(MixerMode::kPassive).nf_dsb_db(10e6);
  EXPECT_GT(rise_active, rise_passive);
}

TEST(Behavioral, TwoToneSweepRecoversIip3Anchors) {
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    const BehavioralMixer m = make(mode);
    std::vector<double> pins;
    for (double p = -60.0; p <= -45.0; p += 2.5) pins.push_back(p);
    const rf::InterceptResult r = rf::sweep_and_extract(
        pins, [&](double pin) { return m.two_tone(pin); });
    EXPECT_NEAR(r.iip3_dbm, m.spec().iip3_dbm, 0.2) << frontend::mode_name(mode);
    EXPECT_NEAR(r.gain_db, m.spec().gain_db, 0.2);
    ASSERT_TRUE(r.has_iip2);
    EXPECT_NEAR(r.iip2_dbm, m.spec().iip2_dbm, 0.5);
    EXPECT_GT(r.iip2_dbm, 65.0);  // section IV claim
  }
}

TEST(Behavioral, CompressionSweepRecoversP1dbAnchors) {
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    const BehavioralMixer m = make(mode);
    std::vector<double> pins;
    for (double p = -60.0; p <= 0.0; p += 0.25) pins.push_back(p);
    const rf::CompressionResult r = rf::find_p1db(
        pins, [&](double pin) { return m.single_tone_pout_dbm(pin); });
    ASSERT_TRUE(r.found) << frontend::mode_name(mode);
    EXPECT_NEAR(r.p1db_in_dbm, m.spec().p1db_dbm, 0.4) << frontend::mode_name(mode);
  }
}

TEST(Behavioral, PassiveMoreLinearActiveMoreGain) {
  const BehavioralMixer a = make(MixerMode::kActive);
  const BehavioralMixer p = make(MixerMode::kPassive);
  EXPECT_GT(a.spec().gain_db, p.spec().gain_db);
  EXPECT_GT(p.spec().iip3_dbm, a.spec().iip3_dbm);
  EXPECT_LT(a.spec().nf_db_at_5mhz, p.spec().nf_db_at_5mhz);
  // The Fig. 1 trade-off: roughly 18 dB of linearity for ~4 dB of gain.
  EXPECT_NEAR(p.spec().iip3_dbm - a.spec().iip3_dbm, 18.5, 1.0);
}

TEST(Behavioral, PerfSummaryMatchesSpec) {
  const BehavioralMixer m = make(MixerMode::kActive);
  const frontend::MixerModePerf perf = m.perf();
  EXPECT_DOUBLE_EQ(perf.gain_db, m.spec().gain_db);
  EXPECT_DOUBLE_EQ(perf.nf_db, m.spec().nf_db_at_5mhz);
  EXPECT_DOUBLE_EQ(perf.iip3_dbm, m.spec().iip3_dbm);
  EXPECT_NEAR(perf.power_mw, 9.36, 0.01);
}

TEST(Behavioral, CustomSpecForAblations) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  BehavioralModeSpec spec = paper_active_spec();
  spec.gain_db = 20.0;
  const BehavioralMixer m(cfg, spec);
  EXPECT_NEAR(m.conversion_gain_db(2.45e9), 20.0, 1e-9);
}

TEST(Behavioral, InvalidSpecThrows) {
  MixerConfig cfg;
  BehavioralModeSpec bad = paper_active_spec();
  bad.f_high_3db_hz = bad.f_low_3db_hz;  // degenerate band
  EXPECT_THROW(BehavioralMixer(cfg, bad), std::invalid_argument);
  BehavioralModeSpec bad2 = paper_active_spec();
  bad2.flicker_corner_hz = 0.0;
  EXPECT_THROW(BehavioralMixer(cfg, bad2), std::invalid_argument);
  const BehavioralMixer m(cfg);
  EXPECT_THROW(m.conversion_gain_db(-1.0), std::invalid_argument);
  EXPECT_THROW(m.nf_dsb_db(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::core
