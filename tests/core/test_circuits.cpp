// Transistor-level circuit tests: operating points, commutation, mode
// ordering, OTA performance. Transient checks use a coarse 5 MHz grid to
// stay fast; the benches run the full-resolution versions.
#include "core/circuits.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/measurements.hpp"
#include "spice/ac.hpp"
#include "spice/mosfet.hpp"
#include "spice/op.hpp"

namespace rfmix::core {
namespace {

TransientMeasureOptions quick_opts() {
  TransientMeasureOptions o;
  o.grid_hz = 5e6;
  o.grid_periods = 1;
  o.settle_periods = 0.4;
  o.samples_per_lo = 16;
  return o;
}

TEST(TransistorMixer, ActiveOperatingPointHasHeadroom) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  auto m = build_transistor_mixer(cfg);
  const spice::Solution op = spice::dc_operating_point(m->circuit);
  // IF nodes must sit between mid-rail and VDD (TG load drop is modest).
  EXPECT_GT(op.v(m->if_p), 0.35);
  EXPECT_LT(op.v(m->if_p), 1.15);
  EXPECT_NEAR(op.v(m->if_p), op.v(m->if_m), 1e-6);  // balanced
  // TCA output common mode near VDD/2 (section II-A).
  EXPECT_NEAR(op.v(m->circuit.find_node("tca_out_p")), 0.6, 0.15);
}

TEST(TransistorMixer, PassiveOperatingPointSitsAtVcm) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kPassive;
  auto m = build_transistor_mixer(cfg);
  const spice::Solution op = spice::dc_operating_point(m->circuit);
  // TIA virtual grounds and outputs settle at the 0.6 V common mode.
  EXPECT_NEAR(op.v(m->if_p), 0.6, 0.05);
  EXPECT_NEAR(op.v(m->if_m), 0.6, 0.05);
}

TEST(TransistorMixer, SupplyCurrentIsMilliampScale) {
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    auto m = build_transistor_mixer(cfg);
    const spice::Solution op = spice::dc_operating_point(m->circuit);
    const double i_vdd = -m->vdd->current(op);  // current delivered by VDD
    EXPECT_GT(i_vdd, 0.5e-3) << frontend::mode_name(mode);
    EXPECT_LT(i_vdd, 20e-3) << frontend::mode_name(mode);
  }
}

TEST(TransistorMixer, ActiveModeConverts) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  auto m = build_transistor_mixer(cfg);
  const double gain = measure_conversion_gain_db(*m, 5e6, 2e-3, quick_opts());
  EXPECT_GT(gain, 15.0);  // real conversion gain
  EXPECT_LT(gain, 40.0);
}

TEST(TransistorMixer, PassiveModeConverts) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kPassive;
  auto m = build_transistor_mixer(cfg);
  const double gain = measure_conversion_gain_db(*m, 5e6, 2e-3, quick_opts());
  EXPECT_GT(gain, 8.0);
  EXPECT_LT(gain, 30.0);
}

TEST(TransistorMixer, ActiveHasMoreGainThanPassive) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  auto ma = build_transistor_mixer(cfg);
  cfg.mode = MixerMode::kPassive;
  auto mp = build_transistor_mixer(cfg);
  const double ga = measure_conversion_gain_db(*ma, 5e6, 2e-3, quick_opts());
  const double gp = measure_conversion_gain_db(*mp, 5e6, 2e-3, quick_opts());
  EXPECT_GT(ga, gp + 2.0);
}

TEST(TransistorMixer, OutputIsDownconvertedNotLeakage) {
  // With the RF tone at f_lo + 5 MHz, the IF record must contain far more
  // energy at 5 MHz than at 10 MHz (no tone there).
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  auto m = build_transistor_mixer(cfg);
  RfStimulus stim;
  stim.freqs_hz = {cfg.f_lo_hz + 5e6};
  stim.amplitude = 2e-3;
  const rf::SampledWaveform w = capture_if_output(*m, stim, quick_opts());
  EXPECT_GT(rf::tone_amplitude(w, 5e6), 20.0 * rf::tone_amplitude(w, 10e6));
}

TEST(TransistorMixer, GilbertBaselineIsActive) {
  MixerConfig cfg;
  auto m = build_gilbert_baseline(cfg);
  EXPECT_EQ(m->config.mode, MixerMode::kActive);
  const double gain = measure_conversion_gain_db(*m, 5e6, 2e-3, quick_opts());
  EXPECT_GT(gain, 15.0);
}

TEST(TransistorMixer, PassiveBaselineHasLessGainThanReconfigurable) {
  // No TCA in front: only the switch/TIA conversion remains, so the
  // baseline trails the reconfigurable passive mode.
  MixerConfig cfg;
  auto base = build_passive_baseline(cfg);
  const double g_base = measure_conversion_gain_db(*base, 5e6, 20e-3, quick_opts());
  cfg.mode = MixerMode::kPassive;
  auto full = build_transistor_mixer(cfg);
  const double g_full = measure_conversion_gain_db(*full, 5e6, 2e-3, quick_opts());
  EXPECT_LT(g_base, g_full);
  EXPECT_GT(g_base, 0.0);  // still a working mixer
}

TEST(Measurements, OffGridStimulusRejected) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  auto m = build_transistor_mixer(cfg);
  RfStimulus stim;
  stim.freqs_hz = {cfg.f_lo_hz + 5.37e6};  // not on the 5 MHz grid
  EXPECT_THROW(capture_if_output(*m, stim, quick_opts()), std::invalid_argument);
}

TEST(Measurements, OffGridLoRejected) {
  MixerConfig cfg;
  cfg.mode = MixerMode::kActive;
  cfg.f_lo_hz = 2.4e9 + 1234.0;
  auto m = build_transistor_mixer(cfg);
  RfStimulus stim;
  stim.freqs_hz = {cfg.f_lo_hz + 5e6};
  EXPECT_THROW(capture_if_output(*m, stim, quick_opts()), std::invalid_argument);
}

TEST(TwoStageOta, UnityBufferTracksInput) {
  // High loop gain pulls the output to the non-inverting input; the
  // residual error measures the open-loop gain (must be > 40 dB).
  auto ota = build_two_stage_ota();
  const spice::Solution op = spice::dc_operating_point(ota->circuit);
  EXPECT_NEAR(op.v(ota->out), 0.6, 0.01);
  // Move the input: output follows.
  ota->vin_p->set_waveform(spice::Waveform::dc(0.75));
  const spice::Solution op2 = spice::dc_operating_point(ota->circuit);
  EXPECT_NEAR(op2.v(ota->out), 0.75, 0.01);
}

TEST(TwoStageOta, ClosedLoopBandwidthFinite) {
  auto ota = build_two_stage_ota();
  ota->vin_p->set_ac(1.0);
  const spice::Solution op = spice::dc_operating_point(ota->circuit);
  const spice::AcResult res =
      spice::ac_sweep(ota->circuit, op, {1e4, 1e6, 30e9});
  EXPECT_NEAR(std::abs(res.v(0, ota->out)), 1.0, 0.02);  // unity in-band
  EXPECT_NEAR(std::abs(res.v(1, ota->out)), 1.0, 0.10);
  EXPECT_LT(std::abs(res.v(2, ota->out)), 0.7);          // rolls off eventually
}

TEST(TwoStageOta, OpenLoopConfigurationAvailable) {
  // Open-loop build exposes both inputs; with both forced to the same bias
  // the first stage balances (d1 ~ d2 within the mirror's systematic
  // offset).
  auto ota = build_two_stage_ota(1.2, /*unity_feedback=*/false);
  ASSERT_NE(ota->vin_m, nullptr);
  const spice::Solution op = spice::dc_operating_point(ota->circuit);
  EXPECT_NEAR(op.v(ota->circuit.find_node("d1")),
              op.v(ota->circuit.find_node("d2")), 0.3);
}

}  // namespace
}  // namespace rfmix::core
