// In-process protocol tests for the rfmixd server session: request
// parsing, JSON round trips, cache flags, and error reporting for both
// the legacy v1 surface and the v2 envelope.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "runtime/thread_pool.hpp"
#include "svc/json_parse.hpp"

namespace rfmix::svc {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : pool_(2), cache_(64), session_(cache_, pool_.pool()) {}

  JsonValue handle(const std::string& line) {
    const Response resp = session_.handle_line(line);
    EXPECT_EQ(resp.line.find('\n'), std::string::npos) << resp.line;  // one line out
    const JsonValue doc = json_parse(resp.line);
    EXPECT_EQ(resp.ok, doc.find("ok")->as_bool()) << resp.line;
    return doc;
  }

  runtime::ScopedPool pool_;
  ResultCache cache_;
  ServerSession session_;
};

TEST_F(ServerTest, Ping) {
  const JsonValue r = handle(R"({"id":7,"kind":"ping"})");
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 7.0);
  EXPECT_TRUE(r.find("ok")->as_bool());
  EXPECT_TRUE(r.find("result")->find("pong")->as_bool());
  // Version-less requests are v1: answered, but flagged deprecated.
  EXPECT_TRUE(r.find("deprecated")->as_bool());
}

TEST_F(ServerTest, PingV2) {
  const JsonValue r = handle(R"({"v":2,"id":7,"kind":"ping"})");
  EXPECT_DOUBLE_EQ(r.find("v")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 7.0);
  EXPECT_TRUE(r.find("ok")->as_bool());
  EXPECT_TRUE(r.find("result")->find("pong")->as_bool());
  EXPECT_EQ(r.find("deprecated"), nullptr);
}

TEST_F(ServerTest, OpRoundTrip) {
  const JsonValue r = handle(
      R"({"id":"op-1","kind":"op","netlist":"V1 in 0 DC 10\nR1 in mid 6k\nR2 mid 0 4k\n"})");
  ASSERT_TRUE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("id")->as_string(), "op-1");
  EXPECT_FALSE(r.find("cached")->as_bool());
  EXPECT_EQ(r.find("key")->as_string().size(), 32u);
  const JsonValue* nodes = r.find("result")->find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_NEAR(nodes->find("mid")->as_number(), 4.0, 1e-6);
  EXPECT_NEAR(nodes->find("in")->as_number(), 10.0, 1e-9);
}

TEST_F(ServerTest, OpRoundTripV2ParamsEnvelope) {
  // The same request as a v2 envelope: analysis fields live under params.
  const JsonValue r = handle(
      R"({"v":2,"id":"op-1","kind":"op","params":{"netlist":"V1 in 0 DC 10\nR1 in mid 6k\nR2 mid 0 4k\n"}})");
  ASSERT_TRUE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("id")->as_string(), "op-1");
  const JsonValue* nodes = r.find("result")->find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_NEAR(nodes->find("mid")->as_number(), 4.0, 1e-6);
}

TEST_F(ServerTest, V1AndV2ProduceTheSameCacheKey) {
  const JsonValue v1 = handle(
      R"({"id":1,"kind":"mixer_metric","metric":"gain_db","config":{"mode":"passive"}})");
  const JsonValue v2 = handle(
      R"({"v":2,"id":2,"kind":"mixer_metric","params":{"metric":"gain_db","config":{"mode":"passive"}}})");
  ASSERT_TRUE(v1.find("ok")->as_bool());
  ASSERT_TRUE(v2.find("ok")->as_bool());
  EXPECT_EQ(v1.find("key")->as_string(), v2.find("key")->as_string());
  EXPECT_TRUE(v2.find("cached")->as_bool());  // the envelope is not keyed
}

TEST_F(ServerTest, AcRoundTrip) {
  const std::string line =
      R"({"id":2,"kind":"ac","netlist":"V1 in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1u\n",)"
      R"("ac":{"f_start_hz":159.154943,"f_stop_hz":159.154943,"points":2,"log_scale":false,"probe":"out"}})";
  const JsonValue r = handle(line);
  ASSERT_TRUE(r.find("ok")->as_bool());
  const JsonValue* res = r.find("result");
  ASSERT_EQ(res->find("freqs_hz")->as_array().size(), 2u);
  // At f = 1/(2*pi*R*C) the RC divider sits at -3 dB with -45 degrees.
  const double re = res->find("real")->as_array()[0].as_number();
  const double im = res->find("imag")->as_array()[0].as_number();
  EXPECT_NEAR(re, 0.5, 1e-6);
  EXPECT_NEAR(im, -0.5, 1e-6);
}

TEST_F(ServerTest, MixerMetricAndCacheFlags) {
  const std::string line =
      R"({"id":3,"kind":"mixer_metric","metric":"gain_db","config":{"mode":"passive"}})";
  const JsonValue first = handle(line);
  ASSERT_TRUE(first.find("ok")->as_bool());
  EXPECT_FALSE(first.find("cached")->as_bool());
  const double v1 = first.find("result")->find("value")->as_number();
  EXPECT_TRUE(std::isfinite(v1));
  EXPECT_EQ(first.find("result")->find("mode")->as_string(), "passive");

  const JsonValue second = handle(line);
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_TRUE(second.find("cached")->as_bool());
  EXPECT_EQ(second.find("key")->as_string(), first.find("key")->as_string());
  EXPECT_DOUBLE_EQ(second.find("result")->find("value")->as_number(), v1);
}

TEST_F(ServerTest, ConfigFieldsReachTheModel) {
  // Same metric at two LO frequencies must produce different keys (and
  // generally different gains) — proving config JSON flows into the key.
  const JsonValue a = handle(
      R"({"id":1,"kind":"mixer_metric","metric":"gain_db","config":{"f_lo_hz":2.4e9}})");
  const JsonValue b = handle(
      R"({"id":2,"kind":"mixer_metric","metric":"gain_db","config":{"f_lo_hz":1.0e9}})");
  ASSERT_TRUE(a.find("ok")->as_bool());
  ASSERT_TRUE(b.find("ok")->as_bool());
  EXPECT_NE(a.find("key")->as_string(), b.find("key")->as_string());
}

TEST_F(ServerTest, StatsReflectTraffic) {
  handle(R"({"id":1,"kind":"mixer_metric","metric":"gain_db"})");
  handle(R"({"id":2,"kind":"mixer_metric","metric":"gain_db"})");
  const JsonValue r = handle(R"({"id":3,"kind":"stats"})");
  ASSERT_TRUE(r.find("ok")->as_bool());
  const JsonValue* jobs = r.find("result")->find("jobs");
  EXPECT_DOUBLE_EQ(jobs->find("submitted")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(jobs->find("executed")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(jobs->find("cache_hits")->as_number(), 1.0);
  const JsonValue* cache = r.find("result")->find("cache");
  EXPECT_DOUBLE_EQ(cache->find("entries")->as_number(), 1.0);
}

TEST_F(ServerTest, V1ErrorsAreStrings) {
  // Unknown kind, id still echoed; v1 keeps the legacy string error.
  JsonValue r = handle(R"({"id":9,"kind":"explode"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 9.0);
  EXPECT_NE(r.find("error")->as_string().find("unknown request kind"), std::string::npos);
  // Missing netlist.
  r = handle(R"({"id":10,"kind":"op"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("netlist"), std::string::npos);
  // Netlist parse errors carry line numbers through the protocol.
  r = handle(R"({"id":11,"kind":"op","netlist":"V1 a 0 1\nR1 a 0\n"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("line 2"), std::string::npos);
  // Unknown config field (silently ignoring it would corrupt cache keys).
  r = handle(R"({"id":12,"kind":"mixer_metric","metric":"gain_db","config":{"tca_gn":1}})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("tca_gn"), std::string::npos);
  // AC without a probe.
  r = handle(R"({"id":13,"kind":"ac","netlist":"V1 a 0 DC 1\nR1 a 0 1k\n","ac":{}})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  // Bad mode string.
  r = handle(R"({"id":14,"kind":"mixer_metric","metric":"gain_db","config":{"mode":"both"}})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("mode"), std::string::npos);
}

TEST_F(ServerTest, V2ErrorsAreStructured) {
  // Malformed JSON: no version to recover, answered as v2 with an offset.
  JsonValue r = handle("{nope");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_TRUE(r.find("id")->is_null());
  EXPECT_EQ(r.find("error")->find("code")->as_string(), "parse_error");
  EXPECT_FALSE(r.find("error")->find("message")->as_string().empty());
  EXPECT_TRUE(r.find("error")->find("offset")->is_number());
  // Unknown kind under v2: stable code, id echoed.
  r = handle(R"({"v":2,"id":9,"kind":"explode"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 9.0);
  EXPECT_EQ(r.find("error")->find("code")->as_string(), "unknown_kind");
  // Unknown protocol version: stable code, id echoed.
  r = handle(R"({"v":3,"id":1,"kind":"ping"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("error")->find("code")->as_string(), "unsupported_version");
  // v2 analysis fields must live under params.
  r = handle(R"({"v":2,"id":1,"kind":"op","netlist":"V1 a 0 1\n"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("error")->find("code")->as_string(), "invalid_request");
  EXPECT_NE(r.find("error")->find("message")->as_string().find("params"),
            std::string::npos);
  // Bad params keep their own code.
  r = handle(R"({"v":2,"id":1,"kind":"op","params":{}})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("error")->find("code")->as_string(), "bad_params");
  // A request id must round-trip exactly; 1e999 would echo as null.
  r = handle(R"({"v":2,"id":1e999,"kind":"ping"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("error")->find("code")->as_string(), "invalid_request");
  // cancel is v2-only vocabulary.
  r = handle(R"({"id":1,"kind":"cancel","params":{"target":2}})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("unknown request kind"),
            std::string::npos);
}

TEST_F(ServerTest, ServeLoopsOverStream) {
  std::istringstream in(
      "{\"id\":1,\"kind\":\"ping\"}\n"
      "\n"
      "{\"id\":2,\"kind\":\"ping\"}\n");
  std::ostringstream out;
  session_.serve(in, out);
  const std::string text = out.str();
  // Two responses, one per line, blank input line skipped.
  ASSERT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  const std::string first = text.substr(0, text.find('\n'));
  const JsonValue r = json_parse(first);
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 1.0);
  EXPECT_TRUE(r.find("ok")->as_bool());
}

TEST_F(ServerTest, ServeSurvivesEveryMalformedLine) {
  // A session must never exit on bad input: every line gets exactly one
  // response and the session still answers afterwards.
  const std::string garbage[] = {
      "{nope",
      "[1,2,3",
      "\"lone string\"",
      "42",
      "{\"v\":2,\"id\":{},\"kind\":\"ping\"}",
      "{\"v\":\"two\",\"id\":1,\"kind\":\"ping\"}",
      "{\"id\":1e999,\"kind\":\"ping\"}",
      "{\"id\":1}",
      "{\"id\":1,\"kind\":42}",
      "\xff\xfe not even text",
      "{\"v\":2,\"id\":1,\"kind\":\"op\",\"params\":3}",
      "{\"v\":2,\"id\":1,\"kind\":\"ping\",\"stray\":1}",
  };
  std::string input;
  for (const std::string& g : garbage) input += g + "\n";
  input += "{\"v\":2,\"id\":\"alive\",\"kind\":\"ping\"}\n";
  std::istringstream in(input);
  std::ostringstream out;
  session_.serve(in, out);
  const std::string text = out.str();
  ASSERT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            std::size(garbage) + 1)
      << text;
  // Every garbage line produced a parseable, failed response.
  std::istringstream lines(text);
  std::string line;
  for (std::size_t i = 0; i < std::size(garbage); ++i) {
    ASSERT_TRUE(std::getline(lines, line));
    const JsonValue r = json_parse(line);
    EXPECT_FALSE(r.find("ok")->as_bool()) << line;
  }
  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue last = json_parse(line);
  EXPECT_TRUE(last.find("ok")->as_bool()) << line;
  EXPECT_EQ(last.find("id")->as_string(), "alive");
}

TEST_F(ServerTest, CrlfAndWhitespaceLinesAreTolerated) {
  std::istringstream in(
      "{\"v\":2,\"id\":1,\"kind\":\"ping\"}\r\n"
      "   \t\n"
      "{\"v\":2,\"id\":2,\"kind\":\"ping\"}\n");
  std::ostringstream out;
  session_.serve(in, out);
  const std::string text = out.str();
  ASSERT_EQ(std::count(text.begin(), text.end(), '\n'), 2) << text;
  EXPECT_EQ(text.find('\r'), std::string::npos);
}

TEST_F(ServerTest, ApplyMixerConfigParsesEveryFieldKind) {
  core::MixerConfig cfg;
  const JsonValue obj = json_parse(
      R"({"mode":"passive","vdd":1.1,"f_lo_hz":3.0e9,"quad_ron":40.5,"tia_rf":2000})");
  apply_mixer_config(obj, cfg);
  EXPECT_EQ(cfg.mode, core::MixerMode::kPassive);
  EXPECT_DOUBLE_EQ(cfg.vdd, 1.1);
  EXPECT_DOUBLE_EQ(cfg.f_lo_hz, 3.0e9);
  EXPECT_DOUBLE_EQ(cfg.quad_ron, 40.5);
  EXPECT_DOUBLE_EQ(cfg.tia_rf, 2000.0);
  EXPECT_THROW(apply_mixer_config(json_parse(R"({"nope":1})"), cfg), RequestError);
}

TEST_F(ServerTest, ParseRequestClassifiesVersions) {
  ParsedRequest req = parse_request(json_parse(R"({"id":1,"kind":"ping"})"));
  EXPECT_EQ(req.version, 1);
  req = parse_request(json_parse(R"({"v":1,"id":1,"kind":"ping"})"));
  EXPECT_EQ(req.version, 1);
  req = parse_request(json_parse(R"({"v":2,"id":1,"kind":"ping"})"));
  EXPECT_EQ(req.version, 2);
  try {
    parse_request(json_parse(R"({"v":7,"id":1,"kind":"ping"})"));
    FAIL() << "expected RequestError";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnsupportedVersion);
  }
  // v2 cancel parses into the dedicated fields.
  req = parse_request(
      json_parse(R"({"v":2,"id":3,"kind":"cancel","params":{"target":"job-7"}})"));
  EXPECT_EQ(req.kind, "cancel");
  EXPECT_EQ(req.cancel_target, "\"job-7\"");
  // timeout_ms and priority ride the envelope.
  req = parse_request(json_parse(
      R"({"v":2,"id":4,"kind":"ping","priority":9,"timeout_ms":1500})"));
  EXPECT_EQ(req.priority, 9);
  EXPECT_DOUBLE_EQ(req.timeout_ms, 1500.0);
}

}  // namespace
}  // namespace rfmix::svc
