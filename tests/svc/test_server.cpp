// In-process protocol tests for the rfmixd server session: request
// parsing, JSON round trips, cache flags, and error reporting.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "runtime/thread_pool.hpp"
#include "svc/json_parse.hpp"

namespace rfmix::svc {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : pool_(2), cache_(64), session_(cache_, pool_.pool()) {}

  JsonValue handle(const std::string& line) {
    const std::string raw = session_.handle_line(line);
    EXPECT_EQ(raw.find('\n'), std::string::npos) << raw;  // one line out
    return json_parse(raw);
  }

  runtime::ScopedPool pool_;
  ResultCache cache_;
  ServerSession session_;
};

TEST_F(ServerTest, Ping) {
  const JsonValue r = handle(R"({"id":7,"kind":"ping"})");
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 7.0);
  EXPECT_TRUE(r.find("ok")->as_bool());
  EXPECT_TRUE(r.find("result")->find("pong")->as_bool());
}

TEST_F(ServerTest, OpRoundTrip) {
  const JsonValue r = handle(
      R"({"id":"op-1","kind":"op","netlist":"V1 in 0 DC 10\nR1 in mid 6k\nR2 mid 0 4k\n"})");
  ASSERT_TRUE(r.find("ok")->as_bool()) << session_.handle_line("x");
  EXPECT_EQ(r.find("id")->as_string(), "op-1");
  EXPECT_FALSE(r.find("cached")->as_bool());
  EXPECT_EQ(r.find("key")->as_string().size(), 32u);
  const JsonValue* nodes = r.find("result")->find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_NEAR(nodes->find("mid")->as_number(), 4.0, 1e-6);
  EXPECT_NEAR(nodes->find("in")->as_number(), 10.0, 1e-9);
}

TEST_F(ServerTest, AcRoundTrip) {
  const std::string line =
      R"({"id":2,"kind":"ac","netlist":"V1 in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1u\n",)"
      R"("ac":{"f_start_hz":159.154943,"f_stop_hz":159.154943,"points":2,"log_scale":false,"probe":"out"}})";
  const JsonValue r = handle(line);
  ASSERT_TRUE(r.find("ok")->as_bool());
  const JsonValue* res = r.find("result");
  ASSERT_EQ(res->find("freqs_hz")->as_array().size(), 2u);
  // At f = 1/(2*pi*R*C) the RC divider sits at -3 dB with -45 degrees.
  const double re = res->find("real")->as_array()[0].as_number();
  const double im = res->find("imag")->as_array()[0].as_number();
  EXPECT_NEAR(re, 0.5, 1e-6);
  EXPECT_NEAR(im, -0.5, 1e-6);
}

TEST_F(ServerTest, MixerMetricAndCacheFlags) {
  const std::string line =
      R"({"id":3,"kind":"mixer_metric","metric":"gain_db","config":{"mode":"passive"}})";
  const JsonValue first = handle(line);
  ASSERT_TRUE(first.find("ok")->as_bool());
  EXPECT_FALSE(first.find("cached")->as_bool());
  const double v1 = first.find("result")->find("value")->as_number();
  EXPECT_TRUE(std::isfinite(v1));
  EXPECT_EQ(first.find("result")->find("mode")->as_string(), "passive");

  const JsonValue second = handle(line);
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_TRUE(second.find("cached")->as_bool());
  EXPECT_EQ(second.find("key")->as_string(), first.find("key")->as_string());
  EXPECT_DOUBLE_EQ(second.find("result")->find("value")->as_number(), v1);
}

TEST_F(ServerTest, ConfigFieldsReachTheModel) {
  // Same metric at two LO frequencies must produce different keys (and
  // generally different gains) — proving config JSON flows into the key.
  const JsonValue a = handle(
      R"({"id":1,"kind":"mixer_metric","metric":"gain_db","config":{"f_lo_hz":2.4e9}})");
  const JsonValue b = handle(
      R"({"id":2,"kind":"mixer_metric","metric":"gain_db","config":{"f_lo_hz":1.0e9}})");
  ASSERT_TRUE(a.find("ok")->as_bool());
  ASSERT_TRUE(b.find("ok")->as_bool());
  EXPECT_NE(a.find("key")->as_string(), b.find("key")->as_string());
}

TEST_F(ServerTest, StatsReflectTraffic) {
  handle(R"({"id":1,"kind":"mixer_metric","metric":"gain_db"})");
  handle(R"({"id":2,"kind":"mixer_metric","metric":"gain_db"})");
  const JsonValue r = handle(R"({"id":3,"kind":"stats"})");
  ASSERT_TRUE(r.find("ok")->as_bool());
  const JsonValue* jobs = r.find("result")->find("jobs");
  EXPECT_DOUBLE_EQ(jobs->find("submitted")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(jobs->find("executed")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(jobs->find("cache_hits")->as_number(), 1.0);
  const JsonValue* cache = r.find("result")->find("cache");
  EXPECT_DOUBLE_EQ(cache->find("entries")->as_number(), 1.0);
}

TEST_F(ServerTest, ErrorsAreStructured) {
  // Malformed JSON.
  JsonValue r = handle("{nope");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_TRUE(r.find("id")->is_null());
  EXPECT_FALSE(r.find("error")->as_string().empty());
  // Unknown kind, id still echoed.
  r = handle(R"({"id":9,"kind":"explode"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 9.0);
  EXPECT_NE(r.find("error")->as_string().find("unknown request kind"), std::string::npos);
  // Missing netlist.
  r = handle(R"({"id":10,"kind":"op"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("netlist"), std::string::npos);
  // Netlist parse errors carry line numbers through the protocol.
  r = handle(R"({"id":11,"kind":"op","netlist":"V1 a 0 1\nR1 a 0\n"})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("line 2"), std::string::npos);
  // Unknown config field (silently ignoring it would corrupt cache keys).
  r = handle(R"({"id":12,"kind":"mixer_metric","metric":"gain_db","config":{"tca_gn":1}})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("tca_gn"), std::string::npos);
  // AC without a probe.
  r = handle(R"({"id":13,"kind":"ac","netlist":"V1 a 0 DC 1\nR1 a 0 1k\n","ac":{}})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  // Bad mode string.
  r = handle(R"({"id":14,"kind":"mixer_metric","metric":"gain_db","config":{"mode":"both"}})");
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_NE(r.find("error")->as_string().find("mode"), std::string::npos);
}

TEST_F(ServerTest, ServeLoopsOverStream) {
  std::istringstream in(
      "{\"id\":1,\"kind\":\"ping\"}\n"
      "\n"
      "{\"id\":2,\"kind\":\"ping\"}\n");
  std::ostringstream out;
  session_.serve(in, out);
  const std::string text = out.str();
  // Two responses, one per line, blank input line skipped.
  ASSERT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  const std::string first = text.substr(0, text.find('\n'));
  const JsonValue r = json_parse(first);
  EXPECT_DOUBLE_EQ(r.find("id")->as_number(), 1.0);
  EXPECT_TRUE(r.find("ok")->as_bool());
}

TEST_F(ServerTest, ApplyMixerConfigParsesEveryFieldKind) {
  core::MixerConfig cfg;
  const JsonValue obj = json_parse(
      R"({"mode":"passive","vdd":1.1,"f_lo_hz":3.0e9,"quad_ron":40.5,"tia_rf":2000})");
  apply_mixer_config(obj, cfg);
  EXPECT_EQ(cfg.mode, core::MixerMode::kPassive);
  EXPECT_DOUBLE_EQ(cfg.vdd, 1.1);
  EXPECT_DOUBLE_EQ(cfg.f_lo_hz, 3.0e9);
  EXPECT_DOUBLE_EQ(cfg.quad_ron, 40.5);
  EXPECT_DOUBLE_EQ(cfg.tia_rf, 2000.0);
  EXPECT_THROW(apply_mixer_config(json_parse(R"({"nope":1})"), cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::svc
