// JSON parser tests for the rfmixd request protocol.
#include "svc/json_parse.hpp"

#include <gtest/gtest.h>

namespace rfmix::svc {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool());
  EXPECT_FALSE(json_parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(json_parse("2.4e9").as_number(), 2.4e9);
  EXPECT_DOUBLE_EQ(json_parse("1E-15").as_number(), 1e-15);
  EXPECT_EQ(json_parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(json_parse("  \"ws\"  ").as_string(), "ws");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(json_parse(R"("\b\f\n\r\t")").as_string(), "\b\f\n\r\t");
  EXPECT_EQ(json_parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(json_parse(R"("\u00e9")").as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(json_parse(R"("\u20ac")").as_string(), "\xe2\x82\xac");      // €
  EXPECT_EQ(json_parse(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, ArraysAndObjects) {
  const JsonValue v = json_parse(R"({"a":[1,2,3],"b":{"c":true},"d":null})");
  ASSERT_TRUE(v.is_object());
  const auto& arr = v.find("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.0);
  EXPECT_TRUE(v.find("b")->find("c")->as_bool());
  EXPECT_TRUE(v.find("d")->is_null());
  EXPECT_EQ(v.find("nope"), nullptr);
  EXPECT_TRUE(json_parse("[]").as_array().empty());
  EXPECT_TRUE(json_parse("{}").as_object().empty());
}

TEST(JsonParse, ObjectKeepsInsertionOrder) {
  const JsonValue v = json_parse(R"({"z":1,"a":2,"m":3})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(json_parse(""), JsonParseError);
  EXPECT_THROW(json_parse("{"), JsonParseError);
  EXPECT_THROW(json_parse("[1,"), JsonParseError);
  EXPECT_THROW(json_parse("tru"), JsonParseError);
  EXPECT_THROW(json_parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(json_parse("\"bad\\q\""), JsonParseError);
  EXPECT_THROW(json_parse("\"\\u12g4\""), JsonParseError);
  EXPECT_THROW(json_parse("\"\\ud800\""), JsonParseError);  // lone surrogate
  EXPECT_THROW(json_parse("01"), JsonParseError);           // leading zero
  EXPECT_THROW(json_parse("1. "), JsonParseError);
  EXPECT_THROW(json_parse("{} trailing"), JsonParseError);
  EXPECT_THROW(json_parse("{1:2}"), JsonParseError);
  EXPECT_THROW(json_parse("\"raw\ncontrol\""), JsonParseError);
  try {
    json_parse("[1, x]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("offset 4"), std::string::npos);
  }
}

TEST(JsonParse, KindMismatchThrows) {
  const JsonValue v = json_parse("3");
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_bool(), std::runtime_error);
  EXPECT_EQ(v.find("k"), nullptr);  // find on non-object is a safe no
}

TEST(JsonParse, DeepNestingRejected) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW(json_parse(deep), JsonParseError);
}

}  // namespace
}  // namespace rfmix::svc
