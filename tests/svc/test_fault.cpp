// Unit tests for the deterministic fault-injection layer: spec parsing
// (loud failures on typos), and the injection-site semantics that can be
// observed in-process (stall, torn writes, drop_conn). crash_after calls
// _exit and is exercised end-to-end in test_router.cpp via worker
// environments.
#include "svc/fault.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

namespace rfmix::svc::fault {
namespace {

/// Every test leaves the process fault-free.
struct FaultGuard {
  ~FaultGuard() { install(Spec{}); }
};

TEST(FaultSpec, ParsesEveryKind) {
  EXPECT_EQ(parse_spec("crash_after:3").kind, Kind::kCrashAfter);
  EXPECT_EQ(parse_spec("crash_after:3").n, 3u);
  EXPECT_EQ(parse_spec("stall_ms:250").kind, Kind::kStallMs);
  EXPECT_DOUBLE_EQ(parse_spec("stall_ms:250").ms, 250.0);
  EXPECT_EQ(parse_spec("torn_write").kind, Kind::kTornWrite);
  EXPECT_EQ(parse_spec("drop_conn").kind, Kind::kDropConn);
}

TEST(FaultSpec, ParsesSeed) {
  const Spec s = parse_spec("crash_after:10;seed:7");
  EXPECT_EQ(s.kind, Kind::kCrashAfter);
  EXPECT_EQ(s.n, 10u);
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(parse_spec("torn_write;seed:3").seed, 3u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_spec("crash_after"), std::invalid_argument);
  EXPECT_THROW(parse_spec("crash_after:"), std::invalid_argument);
  EXPECT_THROW(parse_spec("crash_after:0"), std::invalid_argument);
  EXPECT_THROW(parse_spec("crash_after:abc"), std::invalid_argument);
  EXPECT_THROW(parse_spec("stall_ms"), std::invalid_argument);
  EXPECT_THROW(parse_spec("stall_ms:-1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("stall_ms:0.5"), std::invalid_argument);
  EXPECT_THROW(parse_spec("torn_write:1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("drop_conn:1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("explode"), std::invalid_argument);
  EXPECT_THROW(parse_spec("torn_write;seed"), std::invalid_argument);
  EXPECT_THROW(parse_spec("torn_write;frobnicate:1"), std::invalid_argument);
  // One fault per spec: composing faults would make runs order-dependent.
  EXPECT_THROW(parse_spec("torn_write;drop_conn"), std::invalid_argument);
}

TEST(FaultSites, NoSpecMeansNoEffect) {
  FaultGuard guard;
  install(Spec{});
  EXPECT_FALSE(enabled());
  EXPECT_EQ(clamp_write(4096), 4096u);
  EXPECT_FALSE(should_drop_conn());
  on_response_write();  // must not crash with no spec
  maybe_stall();        // must not sleep with no spec
}

TEST(FaultSites, TornWriteClampsToOneByte) {
  FaultGuard guard;
  install(parse_spec("torn_write"));
  EXPECT_TRUE(enabled());
  EXPECT_EQ(clamp_write(4096), 1u);
  EXPECT_EQ(clamp_write(1), 1u);
  EXPECT_EQ(clamp_write(0), 0u);
  EXPECT_FALSE(should_drop_conn());
}

TEST(FaultSites, DropConnFlagsEveryFlush) {
  FaultGuard guard;
  install(parse_spec("drop_conn"));
  EXPECT_TRUE(should_drop_conn());
  EXPECT_EQ(clamp_write(4096), 4096u);
}

TEST(FaultSites, StallSleepsForTheConfiguredTime) {
  FaultGuard guard;
  install(parse_spec("stall_ms:30"));
  const auto start = std::chrono::steady_clock::now();
  maybe_stall();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 25);
}

TEST(FaultSites, SeedShiftsTheHitCounter) {
  // With crash_after:N and seed:K, hit K+1 through N-1 are safe; we can
  // only observe the non-firing side in-process (firing is _exit), so
  // install a spec whose threshold is far away and count some hits.
  FaultGuard guard;
  install(parse_spec("crash_after:1000000;seed:999"));
  EXPECT_TRUE(enabled());
  for (int i = 0; i < 100; ++i) on_response_write();  // far from threshold
}

}  // namespace
}  // namespace rfmix::svc::fault
