// ResultCache tests: LRU behavior, stats, and the disk persistence tier.
#include "svc/cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace rfmix::svc {
namespace {

namespace fs = std::filesystem;

Hash128 key_of(const std::string& s) { return hash128(s); }

/// Fresh directory under the test temp root, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::path(::testing::TempDir()) / ("rfmix_" + tag + "_" +
                                                std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(ResultCache, PutGetRoundTripIsBitIdentical) {
  ResultCache cache(8);
  const std::string payload = "{\"v\":0.1000000000000000055511151231257827}";
  cache.put(key_of("a"), payload);
  const auto hit = cache.get(key_of("a"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);  // byte-for-byte
  EXPECT_FALSE(cache.get(key_of("b")).has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.put(key_of("a"), "A");
  cache.put(key_of("b"), "B");
  ASSERT_TRUE(cache.get(key_of("a")).has_value());  // promote a over b
  cache.put(key_of("c"), "C");                      // evicts b
  EXPECT_TRUE(cache.get(key_of("a")).has_value());
  EXPECT_FALSE(cache.get(key_of("b")).has_value());
  EXPECT_TRUE(cache.get(key_of("c")).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, OverwriteSameKeyKeepsOneEntry) {
  ResultCache cache(4);
  cache.put(key_of("a"), "old");
  cache.put(key_of("a"), "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.get(key_of("a")), "new");
}

TEST(ResultCache, DiskTierPersistsAcrossInstances) {
  TempDir dir("disk");
  {
    ResultCache cache(8, dir.str());
    cache.put(key_of("persist"), "PAYLOAD");
    EXPECT_EQ(cache.stats().disk_stores, 1u);
  }
  ResultCache fresh(8, dir.str());
  const auto hit = fresh.get(key_of("persist"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "PAYLOAD");
  const auto s = fresh.stats();
  EXPECT_EQ(s.disk_hits, 1u);
  EXPECT_EQ(s.hits, 1u);
  // The disk hit re-populated the memory tier: next get is a memory hit.
  ASSERT_TRUE(fresh.get(key_of("persist")).has_value());
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
}

TEST(ResultCache, ClearDropsMemoryButNotDisk) {
  TempDir dir("clear");
  ResultCache cache(8, dir.str());
  cache.put(key_of("k"), "V");
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  const auto hit = cache.get(key_of("k"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "V");
  EXPECT_EQ(cache.stats().disk_hits, 1u);
}

TEST(ResultCache, DiskEntryFormatIsSelfValidating) {
  TempDir dir("fmt");
  ResultCache cache(8, dir.str());
  cache.put(key_of("k"), "PAYLOAD\nWITH\nNEWLINES");
  // One entry file, header + payload + trailing newline.
  ResultCache fresh(8, dir.str());
  const auto hit = fresh.get(key_of("k"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "PAYLOAD\nWITH\nNEWLINES");  // embedded newlines survive
  EXPECT_EQ(fresh.stats().disk_corrupt, 0u);
}

TEST(ResultCache, CorruptDiskEntriesAreQuarantinedAndMiss) {
  TempDir dir("corrupt");
  fs::create_directories(dir.str());
  struct Case {
    const char* name;
    std::string bytes;
  };
  const std::vector<Case> cases = {
      {"empty", ""},
      {"garbage", "not a cache entry at all"},
      {"pre-header legacy payload", "{\"v\":1}"},
      {"truncated payload", "rfmix-cache 1 100\nonly a few bytes\n"},
      {"missing trailing newline", "rfmix-cache 1 4\nBODY"},
      {"length too short", "rfmix-cache 1 2\nBODY\n"},
      {"bad version", "rfmix-cache 9 4\nBODY\n"},
      {"no length", "rfmix-cache 1 \nBODY\n"},
  };
  int quarantined = 0;
  for (const Case& c : cases) {
    ResultCache cache(8, dir.str());
    const Hash128 key = key_of(c.name);
    const std::string path = dir.str() + "/" + key.hex() + ".json";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << c.bytes;
    }
    EXPECT_FALSE(cache.get(key).has_value()) << c.name;
    EXPECT_EQ(cache.stats().disk_corrupt, 1u) << c.name;
    EXPECT_EQ(cache.stats().misses, 1u) << c.name;
    // Quarantined, not deleted and not retried: the entry file is gone,
    // a .bad file holds the original bytes for post-mortems.
    EXPECT_FALSE(fs::exists(path)) << c.name;
    ASSERT_TRUE(fs::exists(path + ".bad")) << c.name;
    std::ifstream in(path + ".bad", std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), c.bytes) << c.name;
    ++quarantined;
    // A re-put heals the slot: the next get hits cleanly.
    cache.clear();
    cache.put(key, "healed");
    ResultCache fresh(8, dir.str());
    const auto hit = fresh.get(key);
    ASSERT_TRUE(hit.has_value()) << c.name;
    EXPECT_EQ(*hit, "healed") << c.name;
  }
  EXPECT_EQ(quarantined, static_cast<int>(cases.size()));
}

TEST(ResultCache, CorruptEntryDoesNotMaskMemoryTier) {
  TempDir dir("mask");
  ResultCache cache(8, dir.str());
  cache.put(key_of("k"), "GOOD");
  // Vandalize the disk file behind the cache's back; the memory tier
  // still answers and the disk file is untouched until a disk probe.
  const std::string path = dir.str() + "/" + key_of("k").hex() + ".json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "junk";
  }
  const auto hit = cache.get(key_of("k"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "GOOD");
  EXPECT_EQ(cache.stats().disk_corrupt, 0u);
}

TEST(ResultCache, ConcurrentMixedUseIsSafe) {
  ResultCache cache(32);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const Hash128 k = key_of("k" + std::to_string((t + i) % 48));
        if (i % 3 == 0) {
          cache.put(k, "payload" + std::to_string(i));
        } else {
          (void)cache.get(k);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache.size(), 32u);
  const auto s = cache.stats();
  EXPECT_GT(s.stores, 0u);
  EXPECT_EQ(s.hits + s.misses, 8u * 200u - s.stores);
}

TEST(ResultCache, ZeroCapacityClampsToOne) {
  ResultCache cache(0);
  cache.put(key_of("a"), "A");
  EXPECT_EQ(cache.size(), 1u);
  cache.put(key_of("b"), "B");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.get(key_of("a")).has_value());
  EXPECT_TRUE(cache.get(key_of("b")).has_value());
}

}  // namespace
}  // namespace rfmix::svc
