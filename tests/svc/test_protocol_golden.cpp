// Protocol golden tests: pin the exact response bytes of the rfmixd wire
// protocol, v1 and v2, per op and per error code. A client matches
// responses by byte-level conventions (field order, deprecation marker,
// structured error shape), so any change here is a wire-format break and
// must be deliberate.
#include <gtest/gtest.h>

#include <string>

#include "mathx/solver_config.hpp"
#include "runtime/thread_pool.hpp"
#include "svc/json_parse.hpp"
#include "svc/request.hpp"
#include "svc/server.hpp"

namespace rfmix::svc {
namespace {

class ProtocolGoldenTest : public ::testing::Test {
 protected:
  ProtocolGoldenTest() : pool_(1), cache_(64), session_(cache_, pool_.pool()) {}

  std::string reply(const std::string& line) { return session_.handle_line(line).line; }

  runtime::ScopedPool pool_;
  ResultCache cache_;
  ServerSession session_;
};

TEST_F(ProtocolGoldenTest, PingV1) {
  EXPECT_EQ(reply(R"json({"id":7,"kind":"ping"})json"),
            R"json({"id":7,"ok":true,"deprecated":true,"result":{"pong":true}})json");
  EXPECT_EQ(reply(R"json({"v":1,"id":"a","kind":"ping"})json"),
            R"json({"id":"a","ok":true,"deprecated":true,"result":{"pong":true}})json");
  // No id: echoed as null, never omitted.
  EXPECT_EQ(reply(R"json({"kind":"ping"})json"),
            R"json({"id":null,"ok":true,"deprecated":true,"result":{"pong":true}})json");
}

TEST_F(ProtocolGoldenTest, PingV2) {
  EXPECT_EQ(reply(R"json({"v":2,"id":7,"kind":"ping"})json"),
            R"json({"v":2,"id":7,"ok":true,"result":{"pong":true}})json");
  EXPECT_EQ(reply(R"json({"v":2,"id":"client-1","kind":"ping"})json"),
            R"json({"v":2,"id":"client-1","ok":true,"result":{"pong":true}})json");
}

TEST_F(ProtocolGoldenTest, StatsOnFreshSession) {
  // stats reports numeric provenance after the counters: the active solver
  // mode (whatever RFMIX_SOLVER pinned — both spellings are wire format)
  // and the canonicalization epoch behind every cache key.
  mathx::ScopedSolverMode reuse(mathx::SolverMode::kReuse);
  EXPECT_EQ(
      reply(R"json({"v":2,"id":1,"kind":"stats"})json"),
      R"json({"v":2,"id":1,"ok":true,"result":{"jobs":{"submitted":0,"cache_hits":0,)json"
      R"json("deduped":0,"executed":0,"failed":0},"cache":{"hits":0,"misses":0,)json"
      R"json("evictions":0,"stores":0,"disk_hits":0,"disk_stores":0,"disk_corrupt":0,)json"
      R"json("entries":0},"solver_mode":"reuse","canonical_epoch":2}})json");
}

TEST_F(ProtocolGoldenTest, StatsReportsClassicSolverMode) {
  mathx::ScopedSolverMode classic(mathx::SolverMode::kClassic);
  const std::string r = reply(R"json({"v":2,"id":1,"kind":"stats"})json");
  EXPECT_NE(r.find(R"json("solver_mode":"classic","canonical_epoch":2}})json"),
            std::string::npos)
      << r;
}

TEST_F(ProtocolGoldenTest, CancelWithNothingPending) {
  EXPECT_EQ(reply(R"json({"v":2,"id":9,"kind":"cancel","params":{"target":4}})json"),
            R"json({"v":2,"id":9,"ok":true,"result":{"cancelled":false,"target":4}})json");
  EXPECT_EQ(reply(R"json({"v":2,"id":9,"kind":"cancel","params":{"target":"j-1"}})json"),
            R"json({"v":2,"id":9,"ok":true,"result":{"cancelled":false,"target":"j-1"}})json");
}

TEST_F(ProtocolGoldenTest, ParseErrorV2) {
  EXPECT_EQ(reply("{nope"),
            R"json({"v":2,"id":null,"ok":false,"error":{"code":"parse_error",)json"
            R"json("message":"json offset 1: expected object key string",)json"
            R"json("offset":1}})json");
}

TEST_F(ProtocolGoldenTest, UnsupportedVersion) {
  EXPECT_EQ(reply(R"json({"v":3,"id":2,"kind":"ping"})json"),
            R"json({"v":2,"id":2,"ok":false,"error":{"code":"unsupported_version",)json"
            R"json("message":"unsupported protocol version (this server speaks v1 and v2)json" R"x()"}})x");
}

TEST_F(ProtocolGoldenTest, UnknownKind) {
  EXPECT_EQ(reply(R"json({"v":2,"id":3,"kind":"explode"})json"),
            R"json({"v":2,"id":3,"ok":false,"error":{"code":"unknown_kind",)json"
            R"json("message":"unknown request kind 'explode' (expected ping, stats, cancel, op, ac, mixer_metric, npath_zin, or gen)json" R"x()"}})x");
  EXPECT_EQ(reply(R"json({"id":3,"kind":"explode"})json"),
            R"json({"id":3,"ok":false,"deprecated":true,)json"
            R"json("error":"unknown request kind 'explode' (expected ping, stats, op, ac, or mixer_metric)json" R"x()"})x");
}

TEST_F(ProtocolGoldenTest, BadParamsV2) {
  EXPECT_EQ(reply(R"json({"v":2,"id":4,"kind":"op","params":{}})json"),
            R"json({"v":2,"id":4,"ok":false,"error":{"code":"bad_params",)json"
            R"json("message":"missing required field 'netlist'"}})json");
}

TEST_F(ProtocolGoldenTest, InvalidRequestV2) {
  EXPECT_EQ(reply(R"json({"v":2,"id":5,"kind":"op","netlist":"x"})json"),
            R"json({"v":2,"id":5,"ok":false,"error":{"code":"invalid_request",)json"
            R"json("message":"unknown envelope field 'netlist' (v2 request parameters live under \"params\)json" R"x(")"}})x");
}

TEST_F(ProtocolGoldenTest, ExecFailedV1KeepsStringError) {
  const std::string r = reply(R"json({"id":6,"kind":"op","netlist":"R1 a 0\n"})json");
  EXPECT_EQ(r.find(R"json({"id":6,"ok":false,"deprecated":true,"error":")json"), 0u) << r;
}

TEST_F(ProtocolGoldenTest, AnalysisEnvelopeV2) {
  // The physics payload is pinned by the golden-metrics suite; here the
  // envelope around it is pinned byte-for-byte: echoed id, cache/dedup
  // provenance, content key, then the result.
  const std::string netlist = "V1 in 0 DC 10\nR1 in mid 6k\nR2 mid 0 4k\n";
  const ParsedRequest req = parse_request(json_parse(
      R"json({"v":2,"id":"op-9","kind":"op","params":{"netlist":"V1 in 0 DC 10\nR1 in mid 6k\nR2 mid 0 4k\n"}})json"));
  const std::string expected = std::string(R"json({"v":2,"id":"op-9","ok":true,)json") +
                               R"json("cached":false,"deduped":false,"key":")json" +
                               request_key(req.request).hex() + R"json(","result":)json" +
                               execute_request(req.request) + "}";
  EXPECT_EQ(reply(R"json({"v":2,"id":"op-9","kind":"op","params":{"netlist":"V1 in 0 DC 10\nR1 in mid 6k\nR2 mid 0 4k\n"}})json"),
            expected);
  // Identical request again: only the cached flag may change.
  std::string cached_expected = expected;
  cached_expected.replace(cached_expected.find(R"json("cached":false)json"),
                          std::string(R"json("cached":false)json").size(),
                          R"json("cached":true)json");
  EXPECT_EQ(reply(R"json({"v":2,"id":"op-9","kind":"op","params":{"netlist":"V1 in 0 DC 10\nR1 in mid 6k\nR2 mid 0 4k\n"}})json"),
            cached_expected);
}

TEST_F(ProtocolGoldenTest, NpathZinEnvelopeV2) {
  // Same envelope contract as op/ac/mixer_metric: cold run carries
  // cached:false plus the content key; the identical request again returns
  // the byte-identical payload with only the cached flag flipped.
  const std::string line =
      R"json({"v":2,"id":"np-1","kind":"npath_zin","params":{"phases":4,"harmonics":8,)json"
      R"json("samples":64,"f_lo_hz":1e9,"sweep":{"f_start_hz":9e8,"f_stop_hz":1.1e9,"points":3}}})json";
  const ParsedRequest req = parse_request(json_parse(line));
  const std::string expected = std::string(R"json({"v":2,"id":"np-1","ok":true,)json") +
                               R"json("cached":false,"deduped":false,"key":")json" +
                               request_key(req.request).hex() + R"json(","result":)json" +
                               execute_request(req.request) + "}";
  EXPECT_EQ(reply(line), expected);
  std::string cached_expected = expected;
  cached_expected.replace(cached_expected.find(R"json("cached":false)json"),
                          std::string(R"json("cached":false)json").size(),
                          R"json("cached":true)json");
  EXPECT_EQ(reply(line), cached_expected);
}

TEST_F(ProtocolGoldenTest, NpathZinRejectedInV1) {
  // npath_zin postdates the v1 freeze: a version-less request gets the
  // unchanged v1 unknown-kind message, which does not advertise it.
  EXPECT_EQ(reply(R"json({"id":8,"kind":"npath_zin"})json"),
            R"json({"id":8,"ok":false,"deprecated":true,)json"
            R"json("error":"unknown request kind 'npath_zin' (expected ping, stats, op, ac, or mixer_metric)json" R"x()"})x");
}

TEST_F(ProtocolGoldenTest, NpathZinStrictParams) {
  const std::string r = reply(
      R"json({"v":2,"id":9,"kind":"npath_zin","params":{"phasez":4}})json");
  EXPECT_EQ(r.find(R"json({"v":2,"id":9,"ok":false,"error":{"code":"bad_params",)json"
                   R"json("message":"unknown npath_zin field 'phasez'")json"),
            0u)
      << r;
}

TEST_F(ProtocolGoldenTest, GenEnvelopeV2) {
  // gen requests ride the same envelope: cold run carries cached:false
  // plus the content key (derived from the GenSpec, not the rendered
  // deck); the identical request replays as a cache hit with only the
  // cached flag flipped.
  const std::string line =
      R"json({"v":2,"id":"g-1","kind":"gen","params":{"template":"ladder",)json"
      R"json("depth":3,"analysis":"op"}})json";
  const ParsedRequest req = parse_request(json_parse(line));
  const std::string expected = std::string(R"json({"v":2,"id":"g-1","ok":true,)json") +
                               R"json("cached":false,"deduped":false,"key":")json" +
                               request_key(req.request).hex() + R"json(","result":)json" +
                               execute_request(req.request) + "}";
  EXPECT_EQ(reply(line), expected);
  std::string cached_expected = expected;
  cached_expected.replace(cached_expected.find(R"json("cached":false)json"),
                          std::string(R"json("cached":false)json").size(),
                          R"json("cached":true)json");
  EXPECT_EQ(reply(line), cached_expected);
}

TEST_F(ProtocolGoldenTest, GenFlatAndHierarchicalKeysDiffer) {
  // hierarchical is part of the canonical record: the solved results are
  // bit-identical, but the netlist payload differs, so the two renderings
  // must not collide on one cache entry.
  const std::string hier = reply(
      R"json({"v":2,"id":1,"kind":"gen","params":{"template":"ladder","depth":2,)json"
      R"json("hierarchical":true}})json");
  const std::string flat = reply(
      R"json({"v":2,"id":1,"kind":"gen","params":{"template":"ladder","depth":2,)json"
      R"json("hierarchical":false}})json");
  const auto key = [](const std::string& s) {
    const std::size_t at = s.find(R"json("key":)json");
    return s.substr(at, s.find(',', at) - at);
  };
  EXPECT_NE(key(hier), key(flat));
}

TEST_F(ProtocolGoldenTest, GenRejectedInV1) {
  // gen postdates the v1 freeze: a version-less request gets the
  // unchanged v1 unknown-kind message, which does not advertise it.
  EXPECT_EQ(reply(R"json({"id":8,"kind":"gen"})json"),
            R"json({"id":8,"ok":false,"deprecated":true,)json"
            R"json("error":"unknown request kind 'gen' (expected ping, stats, op, ac, or mixer_metric)json" R"x()"})x");
}

TEST_F(ProtocolGoldenTest, GenBadParams) {
  EXPECT_EQ(reply(R"json({"v":2,"id":9,"kind":"gen","params":{}})json"),
            R"json({"v":2,"id":9,"ok":false,"error":{"code":"bad_params",)json"
            R"json("message":"missing required field 'template'"}})json");
  const std::string unknown = reply(
      R"json({"v":2,"id":9,"kind":"gen","params":{"template":"ladder","depthh":3}})json");
  EXPECT_EQ(unknown.find(R"json({"v":2,"id":9,"ok":false,"error":{"code":"bad_params",)json"
                         R"json("message":"unknown gen field 'depthh'")json"),
            0u)
      << unknown;
  const std::string bad_template = reply(
      R"json({"v":2,"id":9,"kind":"gen","params":{"template":"nonsense"}})json");
  EXPECT_EQ(
      bad_template.find(
          R"json({"v":2,"id":9,"ok":false,"error":{"code":"bad_params",)json"
          R"json("message":"unknown gen template 'nonsense' (expected rx_array, mixer_slice, or ladder)json"),
      0u)
      << bad_template;
}

TEST_F(ProtocolGoldenTest, AnalysisEnvelopeV1AndV2ShareKeyAndPayload) {
  const std::string v1 = reply(
      R"json({"id":1,"kind":"mixer_metric","metric":"gain_db","config":{"mode":"passive"}})json");
  const std::string v2 = reply(
      R"json({"v":2,"id":1,"kind":"mixer_metric","params":{"metric":"gain_db","config":{"mode":"passive"}}})json");
  // Same key, same payload; the envelopes differ exactly by version marker,
  // deprecation flag, and cache provenance.
  EXPECT_EQ(v1.find(R"json({"id":1,"ok":true,"deprecated":true,"cached":false,)json"), 0u) << v1;
  EXPECT_EQ(v2.find(R"json({"v":2,"id":1,"ok":true,"cached":true,)json"), 0u) << v2;
  const auto tail = [](const std::string& s) { return s.substr(s.find(R"json("key":)json")); };
  EXPECT_EQ(tail(v1), tail(v2));
}

TEST_F(ProtocolGoldenTest, TimeoutAndCancelledShapes) {
  // These codes are produced by the event loop (deadline expiry, cancel op);
  // pin the exact formatter output the loop sends.
  EXPECT_EQ(make_error_response(2, "11", ErrorCode::kTimeout,
                                "request deadline exceeded")
                .line,
            R"json({"v":2,"id":11,"ok":false,"error":{"code":"timeout",)json"
            R"json("message":"request deadline exceeded"}})json");
  EXPECT_EQ(make_error_response(2, "\"j-3\"", ErrorCode::kCancelled,
                                "request cancelled by client")
                .line,
            R"json({"v":2,"id":"j-3","ok":false,"error":{"code":"cancelled",)json"
            R"json("message":"request cancelled by client"}})json");
}

TEST_F(ProtocolGoldenTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(error_code_name(ErrorCode::kParseError), "parse_error");
  EXPECT_EQ(error_code_name(ErrorCode::kInvalidRequest), "invalid_request");
  EXPECT_EQ(error_code_name(ErrorCode::kUnsupportedVersion), "unsupported_version");
  EXPECT_EQ(error_code_name(ErrorCode::kUnknownKind), "unknown_kind");
  EXPECT_EQ(error_code_name(ErrorCode::kBadParams), "bad_params");
  EXPECT_EQ(error_code_name(ErrorCode::kExecFailed), "exec_failed");
  EXPECT_EQ(error_code_name(ErrorCode::kTimeout), "timeout");
  EXPECT_EQ(error_code_name(ErrorCode::kCancelled), "cancelled");
}

}  // namespace
}  // namespace rfmix::svc
