// The declarative op registry: table invariants (lookup, v1/v2 kind
// lists, duplicate rejection) and Schema behavior (order, required,
// ranges, int validation, strict unknown scan) — the machinery every op's
// parsing now rides on. Exact error bytes are pinned here because they are
// protocol surface (test_protocol_golden.cpp pins them end-to-end).
#include <gtest/gtest.h>

#include <stdexcept>

#include "svc/json_parse.hpp"
#include "svc/op_registry.hpp"

namespace rfmix::svc {
namespace {

TEST(OpRegistryTest, FindsBuiltinsByNameAndKind) {
  const OpRegistry& r = OpRegistry::instance();
  for (const char* name :
       {"ping", "stats", "cancel", "op", "ac", "mixer_metric", "npath_zin", "gen"})
    EXPECT_NE(r.find(name), nullptr) << name;
  EXPECT_EQ(r.find("explode"), nullptr);

  EXPECT_EQ(r.find(RequestKind::kOp)->name, "op");
  EXPECT_EQ(r.find(RequestKind::kAc)->name, "ac");
  EXPECT_EQ(r.find(RequestKind::kMixerMetric)->name, "mixer_metric");
  EXPECT_EQ(r.find(RequestKind::kNpathZin)->name, "npath_zin");
  EXPECT_EQ(r.find(RequestKind::kGen)->name, "gen");
}

TEST(OpRegistryTest, V1SurfaceIsFrozen) {
  const OpRegistry& r = OpRegistry::instance();
  // The v1 protocol is frozen: exactly these five ops, nothing newer.
  EXPECT_EQ(r.kinds_list(1), "ping, stats, op, ac, or mixer_metric");
  EXPECT_EQ(r.kinds_list(2),
            "ping, stats, cancel, op, ac, mixer_metric, npath_zin, or gen");
  EXPECT_FALSE(r.find("npath_zin")->in_v1);
  EXPECT_FALSE(r.find("gen")->in_v1);
  EXPECT_FALSE(r.find("cancel")->in_v1);
}

TEST(OpRegistryTest, AnalysisFlagsMatchDispatch) {
  const OpRegistry& r = OpRegistry::instance();
  for (const char* name : {"op", "ac", "mixer_metric", "npath_zin", "gen"}) {
    const OpSpec* spec = r.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_TRUE(spec->analysis) << name;
    EXPECT_TRUE(bool(spec->canonical)) << name;
    EXPECT_TRUE(bool(spec->execute)) << name;
    EXPECT_TRUE(bool(spec->serialize_params)) << name;
  }
  for (const char* name : {"ping", "stats", "cancel"})
    EXPECT_FALSE(r.find(name)->analysis) << name;
}

Request apply(const Schema& s, const std::string& json, bool strict) {
  Request req;
  s.apply(json_parse(json), req, strict);
  return req;
}

Schema test_schema(double* num, int* count, std::string* str) {
  Schema s("test");
  s.number("x", [num](double v, Request&) { *num = v; });
  s.integer("n", [count](double v, Request&) { *count = int(v); });
  s.range(1, 10);
  s.string("name", [str](const std::string& v, Request&) { *str = v; });
  s.required();
  return s;
}

TEST(SchemaTest, AppliesFieldsAndDefaults) {
  double num = -1.0;
  int count = -1;
  std::string str;
  const Schema s = test_schema(&num, &count, &str);
  apply(s, R"({"x":2.5,"n":3,"name":"abc"})", /*strict=*/true);
  EXPECT_EQ(num, 2.5);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(str, "abc");

  // Missing optional fields keep their prior values.
  num = -1.0;
  count = -1;
  apply(s, R"({"name":"only"})", /*strict=*/true);
  EXPECT_EQ(num, -1.0);
  EXPECT_EQ(count, -1);
}

TEST(SchemaTest, ErrorBytesArePinned) {
  double num;
  int count;
  std::string str;
  const Schema s = test_schema(&num, &count, &str);
  const auto message = [&](const std::string& json, bool strict) {
    try {
      apply(s, json, strict);
    } catch (const std::exception& e) {
      return std::string(e.what());
    }
    return std::string("(no throw)");
  };
  EXPECT_EQ(message(R"({})", false), "missing required field 'name'");
  EXPECT_EQ(message(R"({"name":"a","n":2.5})", false),
            "field 'n' must be an integer in int range");
  EXPECT_EQ(message(R"({"name":"a","n":1e19})", false),
            "field 'n' must be an integer in int range");
  EXPECT_EQ(message(R"({"name":"a","n":11})", false),
            "field 'n' must be in [1, 10]");
  EXPECT_EQ(message(R"({"name":"a","zzz":1})", true),
            "unknown test field 'zzz'");
  // Lenient mode ignores unknowns (the v1 layout and the v2 lenient ops).
  EXPECT_EQ(message(R"({"name":"a","zzz":1})", false), "(no throw)");
}

TEST(SchemaTest, CustomMissingMessage) {
  Schema s("outer");
  s.object("ac", [](const JsonValue&, Request&) {});
  s.required("ac request requires an 'ac' object");
  try {
    apply(s, R"({})", false);
    FAIL() << "expected throw";
  } catch (const std::exception& e) {
    EXPECT_STREQ(e.what(), "ac request requires an 'ac' object");
  }
}

TEST(OpRegistryTest, DuplicateRegistrationThrows) {
  OpRegistry& r = OpRegistry::instance();
  OpSpec dup;
  dup.name = "ping";
  EXPECT_THROW(r.register_op(std::move(dup)), std::logic_error);
}

}  // namespace
}  // namespace rfmix::svc
